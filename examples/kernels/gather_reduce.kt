# A gather-reduce kernel in the declarative .kt format:
#   strided index stream -> irregular gather -> hot coefficient table
# Run it with:
#   apres_sim --kernel-file examples/kernels/gather_reduce.kt --apres
kernel gather_reduce 64
gen 0 strided base=268435456 warp=1024 iter=49152
gen 1 irregular base=536870912 lines=8192 sharewarps=8 shareiters=2 seed=42
gen 2 zipf base=805306368 lines=96 alpha=1.0 seed=7
gen 3 strided base=1073741824 warp=128 iter=6144
load r0 pc=0x40 gen=0
alu r1 r0
load r2 pc=0x48 gen=1 dep=r1
alu r3 r2
load r4 pc=0x50 gen=2 dep=r3
alu r5 r4 lat=8
alu r6 r5 lat=8
store gen=3 src=r6
