/**
 * @file
 * Example: compare all six warp schedulers (and their prefetcher
 * pairings) on one benchmark, printing IPC, L1 behaviour, latency and
 * traffic — a miniature of the paper's Section V.
 *
 * Usage: scheduler_comparison [workload] [scale]
 *
 * Note: cache-sensitive contrasts (especially KM's CCWS-vs-APRES
 * story) need scale 1.0 — scaled-down loops reduce each line's reuse
 * count, not just the runtime.
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "sim/gpu.hpp"
#include "workloads/workload.hpp"

using namespace apres;

int
main(int argc, char** argv)
{
    const std::string name = argc > 1 ? argv[1] : "SRAD";
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;
    const Workload wl = makeWorkload(name, scale);

    std::cout << "Workload " << wl.abbr << " (" << wl.fullName << ", "
              << categoryName(wl.category) << "), scale " << scale
              << "\n\n";

    struct Entry
    {
        const char* sched;
        const char* pf;
    };
    const std::vector<Entry> entries = {
        {"lrr", "none"},
        {"gto", "none"},
        {"pa", "none"},
        {"mascar", "none"},
        {"ccws", "none"},
        {"laws", "none"},
        {"ccws", "str"},
        {"laws", "sap"}, // = APRES
    };

    std::cout << std::left << std::setw(10) << "config" << std::right
              << std::setw(10) << "IPC" << std::setw(10) << "speedup"
              << std::setw(10) << "L1 hit" << std::setw(11) << "load lat"
              << std::setw(13) << "traffic MiB" << '\n';

    double base_ipc = 0.0;
    for (const Entry& e : entries) {
        GpuConfig cfg;
        cfg.scheduler = e.sched;
        cfg.prefetcher = e.pf;
        const RunResult r = simulate(cfg, wl.kernel);
        if (base_ipc == 0.0)
            base_ipc = r.ipc;
        std::cout << std::left << std::setw(10) << cfg.label()
                  << std::right << std::fixed << std::setw(10)
                  << std::setprecision(2) << r.ipc << std::setw(10)
                  << std::setprecision(3) << r.ipc / base_ipc
                  << std::setw(9) << std::setprecision(1)
                  << 100.0 * r.l1HitRate() << "%" << std::setw(11)
                  << std::setprecision(0) << r.avgLoadLatency
                  << std::setw(13) << std::setprecision(1)
                  << r.traffic.interconnectBytes() / (1024.0 * 1024.0)
                  << '\n';
    }
    return 0;
}
