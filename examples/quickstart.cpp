/**
 * @file
 * Quickstart: build a kernel, run it under the baseline scheduler and
 * under APRES, and compare the headline numbers.
 *
 * Usage: quickstart [workload] [scale]
 *   workload  Table IV abbreviation (default PA)
 *   scale     trip-count multiplier (default 1.0; the cache-sensitive
 *             behaviours need full-length loops to show up — reduced
 *             scales shrink the reuse density, not just the runtime)
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "sim/gpu.hpp"
#include "workloads/workload.hpp"

using namespace apres;

namespace {

void
printRow(const std::string& label, const RunResult& r)
{
    std::cout << std::left << std::setw(10) << label << std::right
              << std::setw(10) << r.cycles << std::setw(10)
              << std::fixed << std::setprecision(3) << r.ipc
              << std::setw(12) << std::setprecision(1)
              << 100.0 * r.l1HitRate() << "%" << std::setw(12)
              << std::setprecision(0) << r.avgLoadLatency << std::setw(14)
              << r.traffic.interconnectBytes() / 1024 << " KiB\n";
}

} // namespace

int
main(int argc, char** argv)
{
    const std::string name = argc > 1 ? argv[1] : "PA";
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

    const Workload wl = makeWorkload(name, scale);
    std::cout << "Workload: " << wl.abbr << " (" << wl.fullName << ", "
              << categoryName(wl.category) << ")\n"
              << "Kernel: " << wl.kernel.numLoads() << " static loads, "
              << wl.kernel.tripCount() << " iterations/warp\n\n";

    std::cout << std::left << std::setw(10) << "config" << std::right
              << std::setw(10) << "cycles" << std::setw(10) << "IPC"
              << std::setw(13) << "L1 hit" << std::setw(12) << "load lat"
              << std::setw(18) << "traffic\n";

    GpuConfig base; // Table III defaults: LRR, no prefetching
    const RunResult baseline = simulate(base, wl.kernel);
    printRow("LRR", baseline);

    GpuConfig apres_cfg;
    apres_cfg.useApres(); // LAWS + SAP
    const RunResult apres_run = simulate(apres_cfg, wl.kernel);
    printRow("APRES", apres_run);

    std::cout << "\nAPRES speedup over baseline: " << std::setprecision(2)
              << apres_run.ipc / baseline.ipc << "x\n";
    return 0;
}
