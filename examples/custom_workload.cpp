/**
 * @file
 * Example: build a custom kernel with the public KernelBuilder /
 * AddressGen API, characterize its static loads (the Table I
 * methodology), and measure how much APRES helps it.
 *
 * The kernel models a gather-reduce: a hot lookup table (high
 * locality), a strided input stream (prefetchable), and an indirect
 * gather (irregular), chained like real index arithmetic.
 */

#include <cstdint>
#include <iomanip>
#include <iostream>

#include "sim/gpu.hpp"
#include "workloads/characterize.hpp"

using namespace apres;

int
main()
{
    // ---- 1. Describe the kernel. -----------------------------------
    KernelBuilder b("gather-reduce");

    // A strided row index stream: adjacent warps 1 KB apart, fresh
    // rows every iteration — zero reuse but a perfect inter-warp
    // stride for SAP/STR.
    const int idx = b.load(std::make_unique<StridedGen>(
                               /*base=*/0x1000'0000, /*warp_stride=*/1024,
                               /*iter_stride=*/1024 * 48),
                           /*lane_stride=*/4, /*pc=*/0x40);

    // The gathered values: irregular, but groups of 8 warps share
    // lines (graph-style locality). Address depends on the index load.
    const int x = b.alu({idx}, 1);
    const int val = b.load(std::make_unique<IrregularGen>(
                               /*base=*/0x2000'0000,
                               /*footprint=*/1 * 1024 * 1024,
                               /*share_warps=*/8, /*share_iters=*/2,
                               /*seed=*/42),
                           4, 0x48, x);

    // A small coefficient table that lives in the L1.
    const int y = b.alu({val}, 1);
    const int coef = b.load(std::make_unique<ZipfGen>(
                                /*base=*/0x3000'0000, /*num_lines=*/96,
                                /*alpha=*/1.0, /*seed=*/7),
                            4, 0x50, y);

    // Reduce and write back.
    const int acc = b.alu({coef}, 2);
    b.store(std::make_unique<StridedGen>(0x4000'0000, 128, 128 * 48), acc);

    const Kernel kernel = b.build(/*trip_count=*/64);

    // ---- 2. Characterize the static loads (Table I style). ---------
    std::cout << "Static load characterization:\n";
    for (const LoadProfile& p : characterizeKernel(kernel)) {
        std::cout << "  pc=0x" << std::hex << p.pc << std::dec
                  << std::fixed << std::setprecision(2)
                  << "  #L/#R=" << p.uniqueLinesPerRef
                  << "  stride=" << p.dominantStride << " ("
                  << std::setprecision(0)
                  << 100.0 * p.dominantStrideShare << "% of pairs)\n";
    }

    // ---- 3. Simulate under the baseline and under APRES. -----------
    GpuConfig base; // Table III defaults, LRR
    const RunResult rb = simulate(base, kernel);

    GpuConfig apres_cfg;
    apres_cfg.useApres();
    const RunResult ra = simulate(apres_cfg, kernel);

    std::cout << std::setprecision(3) << "\nbaseline : IPC " << rb.ipc
              << ", L1 hit " << std::setprecision(1)
              << 100.0 * rb.l1HitRate() << "%, load latency "
              << std::setprecision(0) << rb.avgLoadLatency << "\n"
              << "APRES    : IPC " << std::setprecision(3) << ra.ipc
              << ", L1 hit " << std::setprecision(1)
              << 100.0 * ra.l1HitRate() << "%, load latency "
              << std::setprecision(0) << ra.avgLoadLatency << "\n"
              << "speedup  : " << std::setprecision(2) << ra.ipc / rb.ipc
              << "x\n\nAPRES internals: "
              << static_cast<std::uint64_t>(
                     ra.policy.get("laws.groupsFormed"))
              << " groups formed, "
              << static_cast<std::uint64_t>(
                     ra.policy.get("sap.strideMatches"))
              << " stride matches, " << ra.prefetchesIssued
              << " prefetches issued, early eviction ratio "
              << std::setprecision(3) << ra.earlyEvictionRatio() << "\n";
    return 0;
}
