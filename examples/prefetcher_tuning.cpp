/**
 * @file
 * Example: sweep prefetcher parameters on a streaming workload —
 * STR's degree and table size, SAP's prefetch-table size, and the
 * MSHR saturation gate — and print speedup plus prefetch-quality
 * metrics (accuracy-relevant counters and early evictions).
 *
 * Usage: prefetcher_tuning [workload] [scale]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/gpu.hpp"
#include "workloads/workload.hpp"

using namespace apres;

namespace {

void
report(const std::string& label, const RunResult& r, double base_ipc)
{
    std::cout << std::left << std::setw(16) << label << std::right
              << std::fixed << std::setw(9) << std::setprecision(3)
              << r.ipc / base_ipc << std::setw(11) << r.prefetchesIssued
              << std::setw(10) << r.l1.usefulPrefetches << std::setw(10)
              << r.l1.demandMergedIntoPrefetch << std::setw(9)
              << std::setprecision(3) << r.earlyEvictionRatio() << '\n';
}

} // namespace

int
main(int argc, char** argv)
{
    const std::string name = argc > 1 ? argv[1] : "PA";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;
    const Workload wl = makeWorkload(name, scale);

    std::cout << "Prefetcher tuning on " << wl.abbr << " (scale " << scale
              << ")\n\n";
    std::cout << std::left << std::setw(16) << "config" << std::right
              << std::setw(9) << "speedup" << std::setw(11) << "issued"
              << std::setw(10) << "useful" << std::setw(10) << "merged"
              << std::setw(9) << "earlyEv" << '\n';

    GpuConfig base;
    const RunResult rb = simulate(base, wl.kernel);
    report("LRR (no pf)", rb, rb.ipc);

    for (const int degree : {2, 4, 8, 16}) {
        GpuConfig cfg;
        cfg.scheduler = "ccws";
        cfg.prefetcher = "str";
        cfg.str.degree = degree;
        const RunResult r = simulate(cfg, wl.kernel);
        report("CCWS+STR d=" + std::to_string(degree), r, rb.ipc);
    }

    for (const int pt : {2, 5, 10, 20}) {
        GpuConfig cfg;
        cfg.useApres();
        cfg.sap.ptEntries = pt;
        const RunResult r = simulate(cfg, wl.kernel);
        report("APRES pt=" + std::to_string(pt), r, rb.ipc);
    }

    for (const double gate : {0.5, 0.85, 1.0}) {
        GpuConfig cfg;
        cfg.useApres();
        cfg.sm.prefetchMshrGate = gate;
        const RunResult r = simulate(cfg, wl.kernel);
        std::ostringstream label;
        label << "APRES gate=" << std::setprecision(2) << gate;
        report(label.str(), r, rb.ipc);
    }
    return 0;
}
