/**
 * @file
 * Minimal streaming JSON writer for self-describing result output.
 *
 * apres_sim --json emits every run as one JSON document (echoed
 * config + flattened stats), so downstream tooling never has to guess
 * column meanings the way positional CSV forces it to. The writer is
 * deliberately tiny: objects, arrays, string/number/bool fields,
 * two-space indentation, correct escaping. Values are emitted in
 * call order; keys within one level are the caller's responsibility.
 *
 * Correctness contract (documents become persistent cache entries in
 * apres_serve, so truncation is data corruption, not a cosmetic bug):
 *
 *  - scope misuse (endObject/endArray without a matching begin) throws
 *    SimError(kSerialization) immediately, in every build type;
 *  - finish() verifies the document closed every scope it opened and
 *    throws SimError(kSerialization) otherwise — call it before
 *    trusting the output stream;
 *  - destroying a writer with open scopes outside of stack unwinding
 *    is fail-loud driver misuse (fatal()), never a silently truncated
 *    document;
 *  - doubles are canonical: shortest round-trip, locale-independent
 *    (std::to_chars via formatDouble), so serialized results reparse
 *    bitwise-equal and content hashes are stable across hosts;
 *  - non-finite doubles become the tagged string sentinels "NaN",
 *    "Infinity" and "-Infinity" (JSON has no non-finite literals;
 *    null would be indistinguishable from a missing measurement).
 */

#ifndef APRES_COMMON_JSON_HPP
#define APRES_COMMON_JSON_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace apres {

/** JSON string-escape @p text (no surrounding quotes). */
std::string jsonEscape(const std::string& text);

/**
 * Streaming JSON emitter. Scopes must be closed in LIFO order;
 * finish() (and, loudly, the destructor) verifies completion.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream& os);
    ~JsonWriter();

    JsonWriter(const JsonWriter&) = delete;
    JsonWriter& operator=(const JsonWriter&) = delete;

    /** Open the root object or an anonymous object (array element). */
    void beginObject();

    /** Open an object-valued field. */
    void beginObject(const std::string& key);

    void endObject();

    /** Open an array-valued field. */
    void beginArray(const std::string& key);

    void endArray();

    void field(const std::string& key, const std::string& value);
    void field(const std::string& key, const char* value);
    void field(const std::string& key, double value);
    void field(const std::string& key, bool value);

    /** 64-bit integers exceed double precision: emit them verbatim. */
    void field(const std::string& key, std::uint64_t value);

    /**
     * Splice @p json_text — which must itself be a complete JSON
     * value — verbatim as the value of @p key. apres_serve uses this
     * to return cached result payloads bitwise-identical to the run
     * that produced them.
     */
    void raw(const std::string& key, const std::string& json_text);

    /**
     * Assert the document is structurally complete (every opened
     * scope closed); throws SimError(kSerialization) otherwise.
     * Idempotent — every writer should end with a finish() call.
     */
    void finish();

  private:
    void separator();
    void indent();
    void keyPrefix(const std::string& key);

    std::ostream& os_;
    std::vector<bool> scopeHasEntries;
};

} // namespace apres

#endif // APRES_COMMON_JSON_HPP
