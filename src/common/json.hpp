/**
 * @file
 * Minimal streaming JSON writer for self-describing result output.
 *
 * apres_sim --json emits every run as one JSON document (echoed
 * config + flattened stats), so downstream tooling never has to guess
 * column meanings the way positional CSV forces it to. The writer is
 * deliberately tiny: objects, arrays, string/number/bool fields,
 * two-space indentation, correct escaping. Values are emitted in
 * call order; keys within one level are the caller's responsibility.
 */

#ifndef APRES_COMMON_JSON_HPP
#define APRES_COMMON_JSON_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace apres {

/** JSON string-escape @p text (no surrounding quotes). */
std::string jsonEscape(const std::string& text);

/**
 * Streaming JSON emitter. Scopes must be closed in LIFO order; the
 * destructor asserts the document was completed.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream& os);
    ~JsonWriter();

    JsonWriter(const JsonWriter&) = delete;
    JsonWriter& operator=(const JsonWriter&) = delete;

    /** Open the root object or an anonymous object (array element). */
    void beginObject();

    /** Open an object-valued field. */
    void beginObject(const std::string& key);

    void endObject();

    /** Open an array-valued field. */
    void beginArray(const std::string& key);

    void endArray();

    void field(const std::string& key, const std::string& value);
    void field(const std::string& key, const char* value);
    void field(const std::string& key, double value);
    void field(const std::string& key, bool value);

    /** 64-bit integers exceed double precision: emit them verbatim. */
    void field(const std::string& key, std::uint64_t value);

  private:
    void separator();
    void indent();
    void keyPrefix(const std::string& key);

    std::ostream& os_;
    std::vector<bool> scopeHasEntries;
};

} // namespace apres

#endif // APRES_COMMON_JSON_HPP
