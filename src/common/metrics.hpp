/**
 * @file
 * Opt-in metrics: named counters plus fixed-bucket histograms with
 * explicit underflow/overflow bins.
 *
 * Where the tracer (trace.hpp) answers "what happened, in order", the
 * metrics registry answers "how is it distributed": load-to-use
 * latency, MSHR occupancy at access time, WGT group lifetime, and
 * prefetch timeliness (issue-to-demand-arrival distance). Components
 * sample through a nullable MetricsRegistry pointer, so when metrics
 * are off (the default) every site is a single null test and nothing
 * is allocated.
 *
 * The registry folds into RunResult::policy under a "metrics." key
 * prefix, which flows through toStatSet(), --json and --csv like any
 * other stat. Sampling is pure observation: enabling metrics changes
 * no simulation outcome (tests/ff_equivalence_test.cpp pins this).
 *
 * Unlike the reporting-side Histogram in stats.hpp (double-valued,
 * overflow-only), MetricsHistogram is integer-valued with a distinct
 * underflow bin, and its bucket arithmetic is exact at the edges of
 * the uint64 range.
 */

#ifndef APRES_COMMON_METRICS_HPP
#define APRES_COMMON_METRICS_HPP

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/stats.hpp"

namespace apres {

/**
 * Fixed-bucket histogram over uint64 samples.
 *
 * Regular bucket i covers [lo + i*width, lo + (i+1)*width); samples
 * below @p lo land in the underflow bin, samples at or past the last
 * regular bucket in the overflow bin. Index arithmetic subtracts @p lo
 * before dividing, so a sample of UINT64_MAX classifies correctly
 * instead of wrapping.
 */
class MetricsHistogram
{
  public:
    /**
     * @param name        reporting key stem ("loadToUse", ...)
     * @param lo          lower bound of the first regular bucket
     * @param width       width of each regular bucket (> 0)
     * @param num_buckets number of regular buckets (> 0)
     */
    MetricsHistogram(std::string name, std::uint64_t lo,
                     std::uint64_t width, std::size_t num_buckets)
        : name_(std::move(name)), lo_(lo), width_(width),
          buckets_(num_buckets, 0)
    {
        assert(width > 0);
        assert(num_buckets > 0);
    }

    /** Record one sample. */
    void
    add(std::uint64_t x)
    {
        ++count_;
        sum_ += static_cast<double>(x);
        if (x < lo_) {
            ++underflow_;
            return;
        }
        const std::uint64_t idx = (x - lo_) / width_;
        if (idx >= buckets_.size())
            ++overflow_;
        else
            ++buckets_[static_cast<std::size_t>(idx)];
    }

    const std::string& name() const { return name_; }

    /** Total samples (all bins). */
    std::uint64_t count() const { return count_; }

    /** Sum of all samples (double: may lose ulps, never wraps). */
    double sum() const { return sum_; }

    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /** Regular (non-under/overflow) bucket count. */
    std::size_t numBuckets() const { return buckets_.size(); }

    /** Samples in regular bucket @p i. */
    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return buckets_.at(i);
    }

    /** Inclusive lower bound of regular bucket @p i. */
    std::uint64_t bucketLo(std::size_t i) const
    {
        return lo_ + static_cast<std::uint64_t>(i) * width_;
    }

    /** Half-open interval label of regular bucket @p i: "[lo,hi)". */
    std::string
    bucketLabel(std::size_t i) const
    {
        return "[" + std::to_string(bucketLo(i)) + "," +
               std::to_string(bucketLo(i) + width_) + ")";
    }

    /** Accumulate @p other (must have the identical shape). */
    void
    merge(const MetricsHistogram& other)
    {
        assert(other.lo_ == lo_ && other.width_ == width_ &&
               other.buckets_.size() == buckets_.size());
        count_ += other.count_;
        sum_ += other.sum_;
        underflow_ += other.underflow_;
        overflow_ += other.overflow_;
        for (std::size_t i = 0; i < buckets_.size(); ++i)
            buckets_[i] += other.buckets_[i];
    }

    /**
     * Fold into @p out as "<prefix><name>.count|sum|underflow|b<i>|
     * overflow" keys.
     */
    void
    report(StatSet& out, const std::string& prefix) const
    {
        const std::string stem = prefix + name_;
        out.set(stem + ".count", static_cast<double>(count_));
        out.set(stem + ".sum", sum_);
        out.set(stem + ".underflow", static_cast<double>(underflow_));
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            out.set(stem + ".b" + std::to_string(i),
                    static_cast<double>(buckets_[i]));
        }
        out.set(stem + ".overflow", static_cast<double>(overflow_));
    }

    /** Emit as one anonymous JSON object (inside an open array). */
    void
    writeJson(JsonWriter& json) const
    {
        json.beginObject();
        json.field("name", name_);
        json.field("count", count_);
        json.field("sum", sum_);
        json.field("underflow", underflow_);
        json.beginArray("buckets");
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            json.beginObject();
            json.field("range", bucketLabel(i));
            json.field("count", buckets_[i]);
            json.endObject();
        }
        json.endArray();
        json.field("overflow", overflow_);
        json.endObject();
    }

  private:
    std::string name_;
    std::uint64_t lo_;
    std::uint64_t width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    double sum_ = 0.0;
};

/**
 * The set of histograms and counters one simulation (or one SM, in
 * tests that merge) accumulates. Histogram members are public so
 * sampling sites write `m->loadToUse.add(x)` directly; counters are
 * name-keyed and created on first touch.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry()
        : loadToUse("loadToUse", 0, 32, 24),
          mshrOccupancy("mshrOccupancy", 0, 4, 16),
          wgtGroupLifetime("wgtGroupLifetime", 0, 64, 16),
          prefetchTimeliness("prefetchTimeliness", 0, 64, 16)
    {
    }

    /// Cycles from LSU accept to last-line completion of a load.
    MetricsHistogram loadToUse;
    /// Allocated L1 MSHR entries observed at each demand access.
    MetricsHistogram mshrOccupancy;
    /// Cycles a WGT group lived before its outcome-driven move.
    MetricsHistogram wgtGroupLifetime;
    /// Cycles between prefetch issue and first demand hit on the line.
    MetricsHistogram prefetchTimeliness;

    /** Bump named counter @p name by @p delta. */
    void
    count(const std::string& name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Current value of counter @p name (0 when never touched). */
    std::uint64_t
    counterValue(const std::string& name) const
    {
        const auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Accumulate @p other's histograms and counters. */
    void
    merge(const MetricsRegistry& other)
    {
        loadToUse.merge(other.loadToUse);
        mshrOccupancy.merge(other.mshrOccupancy);
        wgtGroupLifetime.merge(other.wgtGroupLifetime);
        prefetchTimeliness.merge(other.prefetchTimeliness);
        for (const auto& [name, value] : other.counters_)
            counters_[name] += value;
    }

    /** Visit every histogram in declaration order. */
    template <typename Fn>
    void
    forEachHistogram(Fn&& fn) const
    {
        fn(loadToUse);
        fn(mshrOccupancy);
        fn(wgtGroupLifetime);
        fn(prefetchTimeliness);
    }

    /**
     * Fold everything into @p out under "metrics." keys — histograms
     * as "metrics.<name>.*", counters as "metrics.ctr.<name>".
     */
    void
    report(StatSet& out) const
    {
        forEachHistogram([&](const MetricsHistogram& h) {
            h.report(out, "metrics.");
        });
        for (const auto& [name, value] : counters_)
            out.set("metrics.ctr." + name, static_cast<double>(value));
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace apres

#endif // APRES_COMMON_METRICS_HPP
