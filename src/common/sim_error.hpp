/**
 * @file
 * Typed simulator error model.
 *
 * Library code throws SimError for every recoverable failure class a
 * driver may want to distinguish, so sweep runners can catch, record
 * and retry a single job instead of losing the whole sweep, and the
 * CLI can translate a failure into a machine-readable error row.
 * fatal() (log.hpp) remains for unrecoverable *driver* misuse only
 * (malformed command lines, API contract violations).
 *
 * The five kinds form the error taxonomy (DESIGN.md "Hardening"):
 *  - ConfigError:        rejected configuration (unknown key, out of
 *                        bounds, invalid policy combination)
 *  - KernelError:        malformed kernel IR or kernel text
 *  - DeadlockError:      forward progress lost (watchdog, job timeout)
 *  - InvariantViolation: a runtime audit found corrupted state
 *  - SerializationError: malformed JSON input, or a writer asked to
 *                        finish a structurally incomplete document
 */

#ifndef APRES_COMMON_SIM_ERROR_HPP
#define APRES_COMMON_SIM_ERROR_HPP

#include <stdexcept>
#include <string>

namespace apres {

/** Failure classes drivers can tell apart. */
enum class SimErrorKind {
    kConfig,
    kKernel,
    kDeadlock,
    kInvariant,
    kSerialization,
};

/** Stable machine-readable name ("ConfigError", "KernelError", ...). */
const char* simErrorKindName(SimErrorKind kind);

/**
 * The simulator's exception type. what() is "<KindName>: <detail>";
 * detail() is the bare message for error rows and reports.
 */
class SimError : public std::runtime_error
{
  public:
    SimError(SimErrorKind kind, std::string detail);

    SimErrorKind kind() const { return kind_; }

    /** The message without the kind prefix. */
    const std::string& detail() const { return detail_; }

    /** simErrorKindName(kind()). */
    const char* kindName() const { return simErrorKindName(kind_); }

  private:
    SimErrorKind kind_;
    std::string detail_;
};

/** Throw helpers, one per kind (keep call sites one line). */
[[noreturn]] void throwConfigError(const std::string& detail);
[[noreturn]] void throwKernelError(const std::string& detail);
[[noreturn]] void throwDeadlockError(const std::string& detail);
[[noreturn]] void throwInvariantViolation(const std::string& detail);
[[noreturn]] void throwSerializationError(const std::string& detail);

} // namespace apres

#endif // APRES_COMMON_SIM_ERROR_HPP
