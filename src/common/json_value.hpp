/**
 * @file
 * Minimal strict JSON parser for the simulation-service protocol.
 *
 * apres_serve accepts batched run requests as JSON over a local
 * socket, so the simulator needs a reader to match its JsonWriter.
 * The parser is deliberately small and strict (RFC 8259 structure, no
 * extensions: no comments, no trailing commas, no unquoted keys) and
 * throws SimError(kSerialization) with a byte offset on malformed
 * input — a garbled request must become a protocol error, never a
 * half-parsed job.
 *
 * Numbers keep their source lexeme alongside the parsed double, so
 * 64-bit integers (seeds, cycle counts) survive exactly: asUint64()
 * re-parses the lexeme instead of rounding through a double.
 */

#ifndef APRES_COMMON_JSON_VALUE_HPP
#define APRES_COMMON_JSON_VALUE_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace apres {

/** One parsed JSON value (a tree; cheap to move, dear to copy). */
class JsonValue
{
  public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    /**
     * Parse @p text as one complete JSON document (trailing
     * whitespace allowed, trailing garbage rejected). Throws
     * SimError(kSerialization) on any syntax error.
     */
    static JsonValue parse(const std::string& text);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::kNull; }
    bool isBool() const { return type_ == Type::kBool; }
    bool isNumber() const { return type_ == Type::kNumber; }
    bool isString() const { return type_ == Type::kString; }
    bool isArray() const { return type_ == Type::kArray; }
    bool isObject() const { return type_ == Type::kObject; }

    /** Typed accessors; throw SimError(kSerialization) on mismatch. */
    bool asBool() const;
    double asDouble() const;
    std::uint64_t asUint64() const;
    const std::string& asString() const;

    /** A number's exact source text (e.g. for re-parsing as uint64). */
    const std::string& numberLexeme() const;

    /** Array/object element count; throws on other types. */
    std::size_t size() const;

    /** Array element @p index; throws when out of range. */
    const JsonValue& at(std::size_t index) const;

    /** True when this object has member @p key. */
    bool has(const std::string& key) const;

    /** Object member @p key; throws when absent. */
    const JsonValue& at(const std::string& key) const;

    /** Object member @p key, or null when absent (optional fields). */
    const JsonValue* find(const std::string& key) const;

    /** Object members in document order. */
    const std::vector<std::pair<std::string, JsonValue>>& members() const;

    /** Array elements in document order. */
    const std::vector<JsonValue>& elements() const;

  private:
    friend class JsonParser;

    Type type_ = Type::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string lexeme_; ///< number source text (exact 64-bit ints)
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

} // namespace apres

#endif // APRES_COMMON_JSON_VALUE_HPP
