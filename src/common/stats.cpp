/**
 * @file
 * Implementation of histogram and named stat set.
 */

#include "stats.hpp"

#include <cassert>
#include <cmath>

namespace apres {

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : width(bucket_width), buckets(num_buckets + 1, 0)
{
    assert(bucket_width > 0.0);
    assert(num_buckets > 0);
}

void
Histogram::add(double x)
{
    std::size_t idx = buckets.size() - 1; // overflow by default
    if (x >= 0.0) {
        const auto b = static_cast<std::size_t>(x / width);
        if (b < buckets.size() - 1)
            idx = b;
    }
    ++buckets[idx];
    ++samples;
}

double
Histogram::bucketFraction(std::size_t i) const
{
    if (samples == 0)
        return 0.0;
    return static_cast<double>(buckets.at(i)) / static_cast<double>(samples);
}

void
StatSet::set(const std::string& name, double value)
{
    values[name] = value;
}

void
StatSet::accumulate(const std::string& name, double value)
{
    values[name] += value;
}

double
StatSet::get(const std::string& name, double fallback) const
{
    const auto it = values.find(name);
    return it != values.end() ? it->second : fallback;
}

bool
StatSet::has(const std::string& name) const
{
    return values.count(name) != 0;
}

void
StatSet::mergeSum(const StatSet& other)
{
    for (const auto& [k, v] : other.values)
        values[k] += v;
}

void
StatSet::dump(std::ostream& os) const
{
    for (const auto& [k, v] : values)
        os << k << " = " << v << '\n';
}

} // namespace apres
