/**
 * @file
 * SimError implementation.
 */

#include "sim_error.hpp"

namespace apres {

const char*
simErrorKindName(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::kConfig:    return "ConfigError";
      case SimErrorKind::kKernel:    return "KernelError";
      case SimErrorKind::kDeadlock:  return "DeadlockError";
      case SimErrorKind::kInvariant: return "InvariantViolation";
      case SimErrorKind::kSerialization: return "SerializationError";
    }
    return "SimError";
}

SimError::SimError(SimErrorKind kind, std::string detail)
    : std::runtime_error(std::string(simErrorKindName(kind)) + ": " +
                         detail),
      kind_(kind), detail_(std::move(detail))
{
}

void
throwConfigError(const std::string& detail)
{
    throw SimError(SimErrorKind::kConfig, detail);
}

void
throwKernelError(const std::string& detail)
{
    throw SimError(SimErrorKind::kKernel, detail);
}

void
throwDeadlockError(const std::string& detail)
{
    throw SimError(SimErrorKind::kDeadlock, detail);
}

void
throwInvariantViolation(const std::string& detail)
{
    throw SimError(SimErrorKind::kInvariant, detail);
}

void
throwSerializationError(const std::string& detail)
{
    throw SimError(SimErrorKind::kSerialization, detail);
}

} // namespace apres
