/**
 * @file
 * Deterministic fault injection for robustness tests and the chaos
 * harness (scripts/chaos_serve.py).
 *
 * Library code marks *sites* where the environment can fail — a cache
 * write hitting ENOSPC, accept() running out of file descriptors, a
 * job crashing mid-run — by calling faultInjectAt("site.name") right
 * before the real operation. The registry decides, purely from a
 * per-site call counter and the configured plan, whether that
 * occurrence fails and how:
 *
 *   - errno faults: the call returns a non-zero errno and the site
 *     behaves exactly as if the syscall had failed with it (the real
 *     operation must not be attempted);
 *   - throw faults: the call throws std::runtime_error, modelling a
 *     crash inside the operation;
 *   - sleep faults: the call blocks for a fixed duration and returns
 *     0, modelling a slow operation (the real operation proceeds).
 *
 * Plans are written as a spec string, driven by the APRES_FAULT_INJECT
 * environment variable (read by apres_serve at startup), the
 * --fault-inject flag, or programmatically by tests:
 *
 *   site=action[@occurrences][;site=action[@occurrences]...]
 *
 *   action:       enospc | eio | emfile | enfile | eagain | enoent |
 *                 epipe | econnreset | enomem | throw | sleep:<ms>
 *   occurrences:  N      fire on the Nth call only (1-based)
 *                 N-M    fire on calls N through M
 *                 N+     fire on every call from the Nth onward
 *                 (omitted: fire on every call)
 *
 *   e.g.  "cache.write=enospc@3+;socket.accept=emfile@1-3"
 *
 * Determinism: firing depends only on the per-site call count, so a
 * test that performs the same sequence of operations sees the same
 * failures every run. Observation purity: when no plan is configured
 * the whole mechanism is one relaxed atomic load per site — it
 * injects nothing, counts nothing and allocates nothing, which is
 * what lets the seam live on hot-ish paths without a build flag.
 *
 * Canonical sites (grep for faultInjectAt to enumerate):
 *   cache.read, cache.write, cache.fsync, cache.rename,
 *   socket.accept, socket.read, socket.write, job.execute
 */

#ifndef APRES_COMMON_FAULT_INJECT_HPP
#define APRES_COMMON_FAULT_INJECT_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace apres {

/** What happens when a site's occurrence window matches. */
struct FaultAction
{
    enum class Kind { kErrno, kThrow, kSleep };
    Kind kind = Kind::kErrno;
    int err = 0;                ///< kErrno: the errno to simulate
    std::uint32_t sleepMs = 0;  ///< kSleep: how long to block
};

/**
 * Process-global fault plan. Configure/reset from one thread (test
 * setup, daemon startup); faultInjectAt is safe from any thread.
 */
class FaultInjector
{
  public:
    static FaultInjector& instance();

    /**
     * Replace the current plan with @p spec (see the grammar above).
     * An empty spec disables injection. Throws SimError(kConfig) on a
     * malformed spec — the daemon must refuse a typo'd chaos plan
     * instead of silently running faultless.
     */
    void configure(const std::string& spec);

    /** Disable injection and clear all plans and counters. */
    void reset();

    /** True when any plan is configured. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Consult the plan at @p site. Returns 0 when nothing fires;
     * returns the errno for errno faults; sleeps then returns 0 for
     * sleep faults; throws std::runtime_error for throw faults.
     * Prefer the faultInjectAt() free function at call sites.
     */
    int at(const char* site);

    /** Calls observed at @p site while a plan was configured. */
    std::uint64_t calls(const std::string& site) const;

    /** Faults actually fired at @p site. */
    std::uint64_t fired(const std::string& site) const;

  private:
    FaultInjector() = default;

    struct Rule
    {
        FaultAction action;
        std::uint64_t first = 1; ///< 1-based occurrence window
        std::uint64_t last = UINT64_MAX;
    };

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::map<std::string, std::vector<Rule>> rules_;
    std::map<std::string, std::uint64_t> calls_;
    std::map<std::string, std::uint64_t> fired_;
};

/**
 * The one call a site makes. Returns 0 (proceed normally) or an errno
 * the site must simulate; may sleep or throw per the plan. When no
 * plan is configured this is a single relaxed atomic load.
 */
int faultInjectAt(const char* site);

} // namespace apres

#endif // APRES_COMMON_FAULT_INJECT_HPP
