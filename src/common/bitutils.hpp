/**
 * @file
 * Small bit-manipulation helpers used across the memory system.
 */

#ifndef APRES_COMMON_BITUTILS_HPP
#define APRES_COMMON_BITUTILS_HPP

#include <bit>
#include <cassert>
#include <cstdint>

#include "types.hpp"

namespace apres {

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Align @p addr down to a multiple of the power-of-two @p align. */
constexpr Addr
alignDown(Addr addr, std::uint64_t align)
{
    return addr & ~(align - 1);
}

/** Align @p addr up to a multiple of the power-of-two @p align. */
constexpr Addr
alignUp(Addr addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** Ceiling division for unsigned integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace apres

#endif // APRES_COMMON_BITUTILS_HPP
