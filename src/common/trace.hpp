/**
 * @file
 * Structured event tracing: compact per-lane ring buffers flushed to
 * Chrome trace_event JSON.
 *
 * The tracer is the simulator's flight recorder. Components emit
 * typed events (warp issue, L1 hit/miss/bypass, MSHR merge, DRAM
 * service, LAWS group promotion/demotion, SAP training and prefetch
 * issue, fast-forward idle spans) into fixed-capacity ring buffers —
 * one lane per SM plus one for the memory side and one for the
 * simulation engine. When the buffer of a lane fills, the oldest
 * events are overwritten (and counted as dropped), so tracing a long
 * run keeps the most recent window instead of aborting or growing
 * without bound.
 *
 * Two consumers:
 *
 *  - writeChromeTrace() emits the Chrome trace_event JSON format
 *    (loadable in chrome://tracing or https://ui.perfetto.dev), one
 *    process per lane, one thread per warp, 1 simulated cycle = 1 us;
 *  - eventSummary() renders the cycle-free event *sequence*
 *    ("sm0 warp-issue pc=4 warp=3" lines, engine lane excluded),
 *    which is what the golden-trace regression suite pins: the order
 *    of typed events is part of the simulator's contract, wall
 *    timestamps are not.
 *
 * Tracing is pure observation: recording an event never feeds back
 * into simulation state, so every statistic is bitwise identical with
 * tracing on or off (tests/ff_equivalence_test.cpp enforces this).
 * When tracing is off no Tracer exists and every emit site is a
 * single null-pointer test.
 */

#ifndef APRES_COMMON_TRACE_HPP
#define APRES_COMMON_TRACE_HPP

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace apres {

/** Every event type the simulator can emit. */
enum class TraceEventType : std::uint8_t {
    kWarpIssue,        ///< an instruction issued (pc, warp)
    kSchedulerIdle,    ///< scheduler idled deliberately with ready warps
    kL1Hit,            ///< first-line L1 demand hit (pc, warp)
    kL1Miss,           ///< first-line L1 demand miss (pc, warp)
    kL1Bypass,         ///< adaptive-bypass line skipped the L1
    kMshrMerge,        ///< demand line merged into an outstanding MSHR
    kDramService,      ///< request scheduled on a DRAM channel
    kLawsGroupPromote, ///< LAWS moved a hit group to the queue head
    kLawsGroupDemote,  ///< LAWS moved a miss group to the queue tail
    kSapPtTrain,       ///< SAP trained its PT with an inter-warp stride
    kSapStrideMatch,   ///< grouped miss matched the stored stride
    kSapPrefetchIssue, ///< SAP prefetch accepted into the memory system
    kSapWqDrain,       ///< SAP drained a WQ walk (arg = warps walked)
    kFfIdleSpan,       ///< fast-forward bulk idle skip (arg = cycles)
};

/** Number of TraceEventType values (array-sizing helper). */
inline constexpr std::size_t kNumTraceEventTypes =
    static_cast<std::size_t>(TraceEventType::kFfIdleSpan) + 1;

/** Stable lower-case name of @p type ("warp-issue", "l1-miss", ...). */
const char* traceEventTypeName(TraceEventType type);

/** One recorded event; compact, fixed-size. */
struct TraceRecord
{
    Cycle cycle = 0;             ///< emission cycle
    std::uint64_t arg = 0;       ///< event-specific payload (addr/mask/count)
    Pc pc = kInvalidPc;          ///< static PC, kInvalidPc when n/a
    WarpId warp = kInvalidWarp;  ///< warp, kInvalidWarp when n/a
    TraceEventType type = TraceEventType::kWarpIssue;
};

/**
 * The event recorder. Lanes 0..numSms-1 belong to the SMs; two extra
 * lanes hold memory-side and engine-level events.
 */
class Tracer
{
  public:
    /**
     * @param num_sms           SM lane count
     * @param capacity_per_lane ring capacity per lane (>= 1)
     */
    Tracer(int num_sms, std::size_t capacity_per_lane);

    /** Lane of memory-side events (DRAM service). */
    int memLane() const { return numSms_; }

    /** Lane of engine events (fast-forward idle spans). */
    int engineLane() const { return numSms_ + 1; }

    /** Total lanes (SMs + mem + engine). */
    int numLanes() const { return numSms_ + 2; }

    /** Record one event into @p lane's ring. */
    void record(int lane, TraceEventType type, Cycle cycle,
                Pc pc = kInvalidPc, WarpId warp = kInvalidWarp,
                std::uint64_t arg = 0);

    /** Events recorded over the run (including later-overwritten). */
    std::uint64_t recorded() const;

    /** Events lost to ring overwrites. */
    std::uint64_t dropped() const;

    /** Events currently retained across all lanes. */
    std::uint64_t retained() const;

    /**
     * Events of @p type ever recorded on the SM and memory lanes (the
     * engine lane is excluded, matching eventSummary()). Unlike the
     * rings these counters survive overwrites, so they summarize the
     * whole run — the behavioral-coverage layer (src/explore) bins on
     * them.
     */
    std::uint64_t eventTypeCount(TraceEventType type) const;

    /**
     * Every event type with a non-zero recorded count, in enum order,
     * as (stable type name, count) pairs. The machine-readable twin of
     * eventSummary()'s per-event lines.
     */
    std::vector<std::pair<std::string, std::uint64_t>>
    eventTypeCounts() const;

    /**
     * Emit the retained events as one Chrome trace_event JSON
     * document (chrome://tracing / Perfetto). Lanes map to processes,
     * warps to threads; 1 simulated cycle is rendered as 1 us.
     */
    void writeChromeTrace(std::ostream& os) const;

    /**
     * Timestamp-free event sequence, lane-major: one
     * "<lane> <type> pc=<pc|-> warp=<warp|->" line per retained
     * event, oldest first within each lane. The engine lane is
     * excluded — fast-forward spans describe how fast the wall clock
     * moved, not what the machine did, and their absence keeps golden
     * files valid across engine changes. @p max_per_lane truncates
     * each lane (0 = unlimited).
     */
    std::string eventSummary(std::size_t max_per_lane = 0) const;

    /** Human-readable lane label ("sm3", "mem", "engine"). */
    std::string laneLabel(int lane) const;

  private:
    /** Drop-oldest ring of one lane. */
    struct Lane
    {
        std::vector<TraceRecord> buf; ///< grows to capacity, then rings
        std::size_t head = 0;         ///< next overwrite slot once full
        std::uint64_t total = 0;      ///< events ever recorded
    };

    /** Visit @p lane's retained records, oldest first. */
    template <typename Fn>
    void forEachRetained(const Lane& lane, Fn&& fn) const;

    int numSms_;
    std::size_t capacity_;
    std::vector<Lane> lanes_;

    /** Per-type totals over SM+mem lanes; overwrite-proof. */
    std::array<std::uint64_t, kNumTraceEventTypes> typeCounts_{};
};

} // namespace apres

#endif // APRES_COMMON_TRACE_HPP
