/**
 * @file
 * Fundamental scalar types shared by every apres-sim module.
 *
 * All simulator time is expressed in SM core cycles (@ref apres::Cycle)
 * and all memory addresses are byte addresses in the GPU global address
 * space (@ref apres::Addr). Warp, lane and SM identifiers are small
 * integers; distinct aliases keep interfaces self-documenting.
 */

#ifndef APRES_COMMON_TYPES_HPP
#define APRES_COMMON_TYPES_HPP

#include <cstdint>
#include <limits>

namespace apres {

/** Simulation time in SM core clock cycles. */
using Cycle = std::uint64_t;

/** Byte address in the GPU global memory address space. */
using Addr = std::uint64_t;

/** Program counter of a static instruction inside a kernel. */
using Pc = std::uint32_t;

/** Warp identifier within one SM (0 .. maxWarpsPerSm-1). */
using WarpId = std::int32_t;

/** Lane (thread slot) identifier within a warp (0 .. warpSize-1). */
using LaneId = std::int32_t;

/** Streaming Multiprocessor identifier. */
using SmId = std::int32_t;

/** Sentinel for "no warp". */
inline constexpr WarpId kInvalidWarp = -1;

/** Sentinel for "no address". */
inline constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "no PC". */
inline constexpr Pc kInvalidPc = std::numeric_limits<Pc>::max();

/** Number of threads per warp (NVIDIA-style SIMT width). */
inline constexpr int kWarpSize = 32;

} // namespace apres

#endif // APRES_COMMON_TYPES_HPP
