/**
 * @file
 * Minimal severity-gated logging for the simulator.
 *
 * Logging is off (kWarn) by default so tests and benches stay quiet;
 * examples raise the level to narrate what the pipeline is doing.
 * fatal() mirrors gem5's convention: an unrecoverable *user* error
 * (bad configuration) that terminates with a message, while internal
 * invariant violations use assert().
 */

#ifndef APRES_COMMON_LOG_HPP
#define APRES_COMMON_LOG_HPP

#include <sstream>
#include <string>

namespace apres {

/** Log severity, in increasing order of importance. */
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kNone = 3 };

/** Global log threshold; messages below it are dropped. */
LogLevel logLevel();

/** Set the global log threshold. */
void setLogLevel(LogLevel level);

/** Emit one message at @p level (appends a newline). */
void logMessage(LogLevel level, const std::string& msg);

/** Print @p msg to stderr and terminate with exit code 1. */
[[noreturn]] void fatal(const std::string& msg);

namespace detail {

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(const Args&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/** Convenience: debug-level message from streamable pieces. */
template <typename... Args>
void
logDebug(const Args&... args)
{
    if (logLevel() <= LogLevel::kDebug)
        logMessage(LogLevel::kDebug, detail::concat(args...));
}

/** Convenience: info-level message from streamable pieces. */
template <typename... Args>
void
logInfo(const Args&... args)
{
    if (logLevel() <= LogLevel::kInfo)
        logMessage(LogLevel::kInfo, detail::concat(args...));
}

/** Convenience: warning-level message from streamable pieces. */
template <typename... Args>
void
logWarn(const Args&... args)
{
    if (logLevel() <= LogLevel::kWarn)
        logMessage(LogLevel::kWarn, detail::concat(args...));
}

} // namespace apres

#endif // APRES_COMMON_LOG_HPP
