/**
 * @file
 * Content hasher implementation.
 */

#include "hash.hpp"

#include <cstdio>

namespace apres {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
} // namespace

void
ContentHasher::updateByte(std::uint8_t byte)
{
    lo_ = (lo_ ^ byte) * kFnvPrime;
    // The second lane sees a rotated byte so the lanes never agree.
    hi_ = (hi_ ^ static_cast<std::uint8_t>((byte << 3) | (byte >> 5))) *
        kFnvPrime;
}

ContentHasher&
ContentHasher::update(const std::string& text)
{
    // Length prefix: update("ab").update("c") must differ from
    // update("a").update("bc").
    update(static_cast<std::uint64_t>(text.size()));
    for (const char c : text)
        updateByte(static_cast<std::uint8_t>(c));
    return *this;
}

ContentHasher&
ContentHasher::update(std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        updateByte(static_cast<std::uint8_t>(value >> (8 * i)));
    return *this;
}

std::string
ContentHasher::hexDigest() const
{
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(hi_),
                  static_cast<unsigned long long>(lo_));
    return std::string(buf, 32);
}

std::string
contentHash(const std::string& text)
{
    return ContentHasher().update(text).hexDigest();
}

} // namespace apres
