/**
 * @file
 * Stable content hashing for the content-addressed result cache.
 *
 * Cache keys must be identical across hosts, builds and runs for the
 * same semantic input, so the hash is defined purely over bytes — no
 * pointers, no std::hash (whose value is unspecified per
 * implementation). Two independent 64-bit FNV-1a lanes (different
 * offset bases, the second lane salted) give a 128-bit digest:
 * collisions at cache scale (millions of entries) are vanishingly
 * unlikely, and the implementation stays dependency-free.
 */

#ifndef APRES_COMMON_HASH_HPP
#define APRES_COMMON_HASH_HPP

#include <cstdint>
#include <string>

namespace apres {

/** Streaming 128-bit content hasher (two independent FNV-1a lanes). */
class ContentHasher
{
  public:
    /** Fold @p text's bytes (plus a length prefix) into the digest. */
    ContentHasher& update(const std::string& text);

    /** Fold one 64-bit value (little-endian bytes) into the digest. */
    ContentHasher& update(std::uint64_t value);

    /** 32 lowercase hex chars; the hasher may keep being updated. */
    std::string hexDigest() const;

  private:
    void updateByte(std::uint8_t byte);

    std::uint64_t lo_ = 0xcbf29ce484222325ull; ///< FNV-1a offset basis
    std::uint64_t hi_ = 0x6c62272e07bb0142ull; ///< salted second lane
};

/** One-shot convenience: hexDigest of @p text. */
std::string contentHash(const std::string& text);

} // namespace apres

#endif // APRES_COMMON_HASH_HPP
