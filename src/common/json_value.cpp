/**
 * @file
 * Recursive-descent JSON parser implementation.
 */

#include "json_value.hpp"

#include <cstdio>

#include "common/parse.hpp"
#include "common/sim_error.hpp"

namespace apres {

namespace {

const char*
typeName(JsonValue::Type type)
{
    switch (type) {
      case JsonValue::Type::kNull:   return "null";
      case JsonValue::Type::kBool:   return "bool";
      case JsonValue::Type::kNumber: return "number";
      case JsonValue::Type::kString: return "string";
      case JsonValue::Type::kArray:  return "array";
      case JsonValue::Type::kObject: return "object";
    }
    return "value";
}

} // namespace

/** Single-pass parser over the whole document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    JsonValue
    document()
    {
        JsonValue v = value();
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing garbage after the JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string& what) const
    {
        throwSerializationError("JSON parse error at byte " +
                                std::to_string(pos_) + ": " + what);
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() +
                 "'");
        ++pos_;
    }

    bool
    consumeKeyword(const char* word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    value()
    {
        skipWhitespace();
        const char c = peek();
        switch (c) {
          case '{': return object();
          case '[': return array();
          case '"': return stringValue();
          case 't':
          case 'f': return boolValue();
          case 'n': return nullValue();
          default:  return numberValue();
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.type_ = JsonValue::Type::kObject;
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWhitespace();
            if (peek() != '"')
                fail("object keys must be quoted strings");
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            v.object_.emplace_back(std::move(key), value());
            skipWhitespace();
            const char next = peek();
            ++pos_;
            if (next == '}')
                return v;
            if (next != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.type_ = JsonValue::Type::kArray;
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array_.push_back(value());
            skipWhitespace();
            const char next = peek();
            ++pos_;
            if (next == ']')
                return v;
            if (next != ',')
                fail("expected ',' or ']' in array");
        }
    }

    JsonValue
    stringValue()
    {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parseString();
        return v;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape sequence");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u':  out += parseUnicodeEscape(); break;
              default:   fail("unknown escape sequence");
            }
        }
    }

    std::string
    parseUnicodeEscape()
    {
        if (pos_ + 4 > text_.size())
            fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("non-hex digit in \\u escape");
        }
        // UTF-8 encode the code point. Surrogate pairs are not
        // reassembled — the writer only ever escapes control bytes,
        // so this covers everything the protocol emits.
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
        return out;
    }

    JsonValue
    boolValue()
    {
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        if (consumeKeyword("true"))
            v.bool_ = true;
        else if (consumeKeyword("false"))
            v.bool_ = false;
        else
            fail("expected 'true' or 'false'");
        return v;
    }

    JsonValue
    nullValue()
    {
        if (!consumeKeyword("null"))
            fail("expected 'null'");
        return JsonValue{};
    }

    JsonValue
    numberValue()
    {
        const std::size_t start = pos_;
        // JSON numbers start with '-' or a digit — never '+'.
        if (peek() != '-' && (peek() < '0' || peek() > '9'))
            fail("unexpected character");
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                c == 'E' || c == '+' || c == '-') {
                ++pos_;
            } else {
                break;
            }
        }
        JsonValue v;
        v.type_ = JsonValue::Type::kNumber;
        v.lexeme_ = text_.substr(start, pos_ - start);
        // RFC 8259: no leading zeros ("01" is two tokens, i.e. a
        // syntax error, not the number 1).
        const std::size_t first =
            v.lexeme_.size() > 0 && v.lexeme_[0] == '-' ? 1 : 0;
        if (v.lexeme_.size() > first + 1 && v.lexeme_[first] == '0' &&
            v.lexeme_[first + 1] >= '0' && v.lexeme_[first + 1] <= '9') {
            pos_ = start;
            fail("leading zero in number \"" + v.lexeme_ + "\"");
        }
        if (!parseDoubleStrict(v.lexeme_, &v.number_)) {
            pos_ = start;
            fail("malformed number \"" + v.lexeme_ + "\"");
        }
        return v;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

JsonValue
JsonValue::parse(const std::string& text)
{
    return JsonParser(text).document();
}

bool
JsonValue::asBool() const
{
    if (type_ != Type::kBool)
        throwSerializationError(std::string("expected a bool, got ") +
                                typeName(type_));
    return bool_;
}

double
JsonValue::asDouble() const
{
    if (type_ != Type::kNumber)
        throwSerializationError(std::string("expected a number, got ") +
                                typeName(type_));
    return number_;
}

std::uint64_t
JsonValue::asUint64() const
{
    if (type_ != Type::kNumber)
        throwSerializationError(std::string("expected a number, got ") +
                                typeName(type_));
    std::uint64_t out = 0;
    if (!parseUint64Strict(lexeme_, &out))
        throwSerializationError("number \"" + lexeme_ +
                                "\" is not an unsigned 64-bit integer");
    return out;
}

const std::string&
JsonValue::numberLexeme() const
{
    if (type_ != Type::kNumber)
        throwSerializationError(std::string("expected a number, got ") +
                                typeName(type_));
    return lexeme_;
}

const std::string&
JsonValue::asString() const
{
    if (type_ != Type::kString)
        throwSerializationError(std::string("expected a string, got ") +
                                typeName(type_));
    return string_;
}

std::size_t
JsonValue::size() const
{
    if (type_ == Type::kArray)
        return array_.size();
    if (type_ == Type::kObject)
        return object_.size();
    throwSerializationError(std::string("expected array/object, got ") +
                            typeName(type_));
}

const JsonValue&
JsonValue::at(std::size_t index) const
{
    if (type_ != Type::kArray)
        throwSerializationError(std::string("expected an array, got ") +
                                typeName(type_));
    if (index >= array_.size())
        throwSerializationError("array index " + std::to_string(index) +
                                " out of range (size " +
                                std::to_string(array_.size()) + ")");
    return array_[index];
}

bool
JsonValue::has(const std::string& key) const
{
    return find(key) != nullptr;
}

const JsonValue&
JsonValue::at(const std::string& key) const
{
    const JsonValue* v = find(key);
    if (!v)
        throwSerializationError("missing object member \"" + key + "\"");
    return *v;
}

const JsonValue*
JsonValue::find(const std::string& key) const
{
    if (type_ != Type::kObject)
        throwSerializationError(std::string("expected an object, got ") +
                                typeName(type_));
    for (const auto& [name, value] : object_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>&
JsonValue::members() const
{
    if (type_ != Type::kObject)
        throwSerializationError(std::string("expected an object, got ") +
                                typeName(type_));
    return object_;
}

const std::vector<JsonValue>&
JsonValue::elements() const
{
    if (type_ != Type::kArray)
        throwSerializationError(std::string("expected an array, got ") +
                                typeName(type_));
    return array_;
}

} // namespace apres
