/**
 * @file
 * Lightweight statistics containers.
 *
 * Hot paths keep plain integer counters inside module-local stat
 * structs; this header provides the aggregation side: a running
 * mean/min/max accumulator, a fixed-bucket histogram, and a named
 * key/value set used when a simulation run is reported or compared.
 */

#ifndef APRES_COMMON_STATS_HPP
#define APRES_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace apres {

/**
 * Incremental mean/min/max accumulator (no sample storage).
 *
 * Used for request latency tracking: millions of samples, only the
 * aggregate moments are reported.
 */
class RunningStat
{
  public:
    /** Record one sample. */
    void
    add(double x)
    {
        if (n == 0 || x < lo)
            lo = x;
        if (n == 0 || x > hi)
            hi = x;
        ++n;
        total += x;
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return n; }

    /** Mean of all samples; 0 when empty. */
    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }

    /** Smallest sample; 0 when empty. */
    double min() const { return n ? lo : 0.0; }

    /** Largest sample; 0 when empty. */
    double max() const { return n ? hi : 0.0; }

    /** Sum of all samples. */
    double sum() const { return total; }

    /** Forget all samples. */
    void
    reset()
    {
        n = 0;
        total = 0.0;
        lo = 0.0;
        hi = 0.0;
    }

  private:
    std::uint64_t n = 0;
    double total = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Histogram over fixed-width buckets with an overflow bucket.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket (> 0)
     * @param num_buckets  number of regular buckets before overflow
     */
    Histogram(double bucket_width, std::size_t num_buckets);

    /** Record one sample. */
    void add(double x);

    /** Count in bucket @p i (the last bucket is the overflow bucket). */
    std::uint64_t bucketCount(std::size_t i) const { return buckets.at(i); }

    /** Number of buckets including overflow. */
    std::size_t numBuckets() const { return buckets.size(); }

    /** Total number of samples. */
    std::uint64_t count() const { return samples; }

    /** Fraction of samples in bucket @p i; 0 when empty. */
    double bucketFraction(std::size_t i) const;

  private:
    double width;
    std::vector<std::uint64_t> buckets;
    std::uint64_t samples = 0;
};

/**
 * Named scalar statistics, used to report and diff simulation runs.
 *
 * Keys are dotted paths ("l1.missRate", "sm0.ipc"). Insertion order is
 * not preserved; dumps are sorted for stable diffs.
 */
class StatSet
{
  public:
    /** Set (or overwrite) a named value. */
    void set(const std::string& name, double value);

    /** Add @p value to a named value (creating it at 0). */
    void accumulate(const std::string& name, double value);

    /** Fetch a value; @p fallback when absent. */
    double get(const std::string& name, double fallback = 0.0) const;

    /** True when the stat exists. */
    bool has(const std::string& name) const;

    /** Merge another set, summing overlapping keys. */
    void mergeSum(const StatSet& other);

    /** All entries, sorted by key. */
    const std::map<std::string, double>& entries() const { return values; }

    /** Human-readable sorted dump, one "key = value" per line. */
    void dump(std::ostream& os) const;

  private:
    std::map<std::string, double> values;
};

/** Safe ratio: returns 0 when the denominator is 0. */
inline double
ratio(double num, double den)
{
    return den != 0.0 ? num / den : 0.0;
}

} // namespace apres

#endif // APRES_COMMON_STATS_HPP
