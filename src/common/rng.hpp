/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * apres-sim never uses std::random_device or wall-clock seeding: every
 * simulation is a pure function of its configuration, which the test
 * suite relies on. Xorshift128+ is used because it is fast, has a long
 * period, and its output is reproducible across platforms.
 */

#ifndef APRES_COMMON_RNG_HPP
#define APRES_COMMON_RNG_HPP

#include <cstdint>
#include <vector>

namespace apres {

/**
 * Deterministic xorshift128+ generator.
 *
 * Seeding with the same value always yields the same stream on every
 * platform (unlike std::mt19937's distribution wrappers).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; seed 0 is remapped internally. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Reset to an exact seed (same effect as re-construction). */
    void reseed(std::uint64_t seed);

  private:
    std::uint64_t s0;
    std::uint64_t s1;
};

/**
 * Zipf-distributed sampler over {0, .., n-1}.
 *
 * Used to synthesise irregular-but-skewed access patterns (e.g. the BFS
 * and MUM frontier loads, whose footprint is large yet a small set of
 * lines absorbs most references). Uses the classic inverse-CDF walk
 * with a precomputed table, so sampling is O(log n).
 */
class ZipfSampler
{
  public:
    /**
     * @param n     population size (number of distinct items)
     * @param alpha skew exponent; 0 degenerates to uniform
     */
    ZipfSampler(std::size_t n, double alpha);

    /** Draw one item index in [0, n). */
    std::size_t sample(Rng& rng) const;

    /** Population size. */
    std::size_t size() const { return cdf.size(); }

  private:
    std::vector<double> cdf; // cumulative probability per rank
};

} // namespace apres

#endif // APRES_COMMON_RNG_HPP
