/**
 * @file
 * Streaming JSON writer implementation.
 */

#include "json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

#include "common/parse.hpp"

namespace apres {

std::string
jsonEscape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

JsonWriter::~JsonWriter()
{
    assert(scopeHasEntries.empty() && "unclosed JSON scope");
}

void
JsonWriter::separator()
{
    if (!scopeHasEntries.empty()) {
        if (scopeHasEntries.back())
            os_ << ',';
        scopeHasEntries.back() = true;
        os_ << '\n';
        indent();
    }
}

void
JsonWriter::indent()
{
    for (std::size_t i = 0; i < scopeHasEntries.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::keyPrefix(const std::string& key)
{
    separator();
    os_ << '"' << jsonEscape(key) << "\": ";
}

void
JsonWriter::beginObject()
{
    separator();
    os_ << '{';
    scopeHasEntries.push_back(false);
}

void
JsonWriter::beginObject(const std::string& key)
{
    keyPrefix(key);
    os_ << '{';
    scopeHasEntries.push_back(false);
}

void
JsonWriter::endObject()
{
    assert(!scopeHasEntries.empty());
    const bool had_entries = scopeHasEntries.back();
    scopeHasEntries.pop_back();
    if (had_entries) {
        os_ << '\n';
        indent();
    }
    os_ << '}';
    if (scopeHasEntries.empty())
        os_ << '\n';
}

void
JsonWriter::beginArray(const std::string& key)
{
    keyPrefix(key);
    os_ << '[';
    scopeHasEntries.push_back(false);
}

void
JsonWriter::endArray()
{
    assert(!scopeHasEntries.empty());
    const bool had_entries = scopeHasEntries.back();
    scopeHasEntries.pop_back();
    if (had_entries) {
        os_ << '\n';
        indent();
    }
    os_ << ']';
}

void
JsonWriter::field(const std::string& key, const std::string& value)
{
    keyPrefix(key);
    os_ << '"' << jsonEscape(value) << '"';
}

void
JsonWriter::field(const std::string& key, const char* value)
{
    field(key, std::string(value));
}

void
JsonWriter::field(const std::string& key, double value)
{
    keyPrefix(key);
    // JSON has no Inf/NaN literals; emit null so the document stays
    // parseable when a ratio degenerates.
    if (!std::isfinite(value))
        os_ << "null";
    else
        os_ << formatDouble(value);
}

void
JsonWriter::field(const std::string& key, bool value)
{
    keyPrefix(key);
    os_ << (value ? "true" : "false");
}

void
JsonWriter::field(const std::string& key, std::uint64_t value)
{
    keyPrefix(key);
    os_ << value;
}

} // namespace apres
