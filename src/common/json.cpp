/**
 * @file
 * Streaming JSON writer implementation.
 */

#include "json.hpp"

#include <cmath>
#include <cstdio>
#include <exception>

#include "common/log.hpp"
#include "common/parse.hpp"
#include "common/sim_error.hpp"

namespace apres {

std::string
jsonEscape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

JsonWriter::~JsonWriter()
{
    if (scopeHasEntries.empty())
        return;
    // An exception is already unwinding the stack: the document is
    // lost anyway, and throwing here would terminate. Warn and let the
    // original error propagate.
    if (std::uncaught_exceptions() > 0) {
        logWarn("JsonWriter destroyed with ",
                scopeHasEntries.size(),
                " unclosed scope(s) during exception unwinding; "
                "the JSON document is truncated");
        return;
    }
    // No exception in flight: the driver simply forgot to close the
    // document. Silently emitting truncated JSON (the old Release
    // behavior of the assert) corrupts persisted cache entries, so
    // this is unrecoverable driver misuse.
    fatal("JsonWriter destroyed with " +
          std::to_string(scopeHasEntries.size()) +
          " unclosed JSON scope(s) — the document would be truncated; "
          "close every scope and call finish()");
}

void
JsonWriter::finish()
{
    if (!scopeHasEntries.empty()) {
        throwSerializationError(
            "JSON document incomplete: " +
            std::to_string(scopeHasEntries.size()) +
            " scope(s) still open at finish()");
    }
}

void
JsonWriter::separator()
{
    if (!scopeHasEntries.empty()) {
        if (scopeHasEntries.back())
            os_ << ',';
        scopeHasEntries.back() = true;
        os_ << '\n';
        indent();
    }
}

void
JsonWriter::indent()
{
    for (std::size_t i = 0; i < scopeHasEntries.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::keyPrefix(const std::string& key)
{
    separator();
    os_ << '"' << jsonEscape(key) << "\": ";
}

void
JsonWriter::beginObject()
{
    separator();
    os_ << '{';
    scopeHasEntries.push_back(false);
}

void
JsonWriter::beginObject(const std::string& key)
{
    keyPrefix(key);
    os_ << '{';
    scopeHasEntries.push_back(false);
}

void
JsonWriter::endObject()
{
    if (scopeHasEntries.empty())
        throwSerializationError("endObject without a matching begin");
    const bool had_entries = scopeHasEntries.back();
    scopeHasEntries.pop_back();
    if (had_entries) {
        os_ << '\n';
        indent();
    }
    os_ << '}';
    if (scopeHasEntries.empty())
        os_ << '\n';
}

void
JsonWriter::beginArray(const std::string& key)
{
    keyPrefix(key);
    os_ << '[';
    scopeHasEntries.push_back(false);
}

void
JsonWriter::endArray()
{
    if (scopeHasEntries.empty())
        throwSerializationError("endArray without a matching begin");
    const bool had_entries = scopeHasEntries.back();
    scopeHasEntries.pop_back();
    if (had_entries) {
        os_ << '\n';
        indent();
    }
    os_ << ']';
}

void
JsonWriter::field(const std::string& key, const std::string& value)
{
    keyPrefix(key);
    os_ << '"' << jsonEscape(value) << '"';
}

void
JsonWriter::field(const std::string& key, const char* value)
{
    field(key, std::string(value));
}

void
JsonWriter::field(const std::string& key, double value)
{
    keyPrefix(key);
    // JSON has no Inf/NaN literals; a tagged string sentinel keeps the
    // document parseable *and* distinguishes a degenerate ratio from a
    // missing value (null), which strict consumers need.
    if (std::isnan(value))
        os_ << "\"NaN\"";
    else if (std::isinf(value))
        os_ << (value > 0 ? "\"Infinity\"" : "\"-Infinity\"");
    else
        os_ << formatDouble(value);
}

void
JsonWriter::field(const std::string& key, bool value)
{
    keyPrefix(key);
    os_ << (value ? "true" : "false");
}

void
JsonWriter::field(const std::string& key, std::uint64_t value)
{
    keyPrefix(key);
    os_ << value;
}

void
JsonWriter::raw(const std::string& key, const std::string& json_text)
{
    if (json_text.empty())
        throwSerializationError("raw(\"" + key + "\"): empty JSON value");
    keyPrefix(key);
    os_ << json_text;
}

} // namespace apres
