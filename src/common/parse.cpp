/**
 * @file
 * Strict parsing helpers.
 */

#include "parse.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>

#include "common/log.hpp"

namespace apres {

bool
parseInt64Strict(const std::string& text, std::int64_t* out)
{
    if (text.empty())
        return false;
    errno = 0;
    char* end = nullptr;
    const long long parsed = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    *out = static_cast<std::int64_t>(parsed);
    return true;
}

bool
parseUint64Strict(const std::string& text, std::uint64_t* out)
{
    if (text.empty() || text[0] == '-')
        return false;
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    *out = static_cast<std::uint64_t>(parsed);
    return true;
}

bool
parseDoubleStrict(const std::string& text, double* out)
{
    if (text.empty())
        return false;
    // std::from_chars is locale-independent (the decimal separator is
    // always '.'), unlike strtod, so config files and serialized
    // results parse identically on every host. It rejects the leading
    // '+' strtod accepted; keep accepting it for config compatibility.
    const char* first = text.data();
    const char* last = text.data() + text.size();
    if (*first == '+')
        ++first;
    double parsed = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, parsed);
    if (ec != std::errc{} || ptr != last || !std::isfinite(parsed))
        return false;
    *out = parsed;
    return true;
}

bool
parseBoolStrict(const std::string& text, bool* out)
{
    if (text == "true" || text == "1" || text == "on" || text == "yes") {
        *out = true;
        return true;
    }
    if (text == "false" || text == "0" || text == "off" || text == "no") {
        *out = false;
        return true;
    }
    return false;
}

std::uint64_t
parseUintOption(const std::string& option, const std::string& text,
                std::uint64_t min_value)
{
    std::uint64_t value = 0;
    if (!parseUint64Strict(text, &value))
        fatal(option + ": \"" + text + "\" is not an unsigned integer");
    if (value < min_value)
        fatal(option + ": " + text + " is below the minimum of " +
              std::to_string(min_value));
    return value;
}

std::uint64_t
parsePositiveUintOption(const std::string& option, const std::string& text)
{
    return parseUintOption(option, text, 1);
}

double
parsePositiveDoubleOption(const std::string& option, const std::string& text)
{
    double value = 0.0;
    if (!parseDoubleStrict(text, &value))
        fatal(option + ": \"" + text + "\" is not a finite number");
    if (value <= 0.0)
        fatal(option + ": " + text + " must be > 0");
    return value;
}

std::string
formatDouble(double value)
{
    // std::to_chars emits the shortest decimal form that parses back
    // to exactly this double, independent of the global locale — the
    // canonical representation content-addressed caching hashes.
    char buf[64];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
    if (ec != std::errc{})
        fatal("formatDouble: std::to_chars failed"); // 64 bytes suffice
    return std::string(buf, ptr);
}

} // namespace apres
