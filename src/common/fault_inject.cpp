/**
 * @file
 * Fault-injection registry implementation.
 */

#include "fault_inject.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/parse.hpp"
#include "common/sim_error.hpp"

namespace apres {

namespace {

/** Map a lowercase errno mnemonic to its value. */
int
errnoByName(const std::string& name)
{
    if (name == "enospc") return ENOSPC;
    if (name == "eio") return EIO;
    if (name == "emfile") return EMFILE;
    if (name == "enfile") return ENFILE;
    if (name == "eagain") return EAGAIN;
    if (name == "enoent") return ENOENT;
    if (name == "epipe") return EPIPE;
    if (name == "econnreset") return ECONNRESET;
    if (name == "enomem") return ENOMEM;
    return 0;
}

} // namespace

FaultInjector&
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::configure(const std::string& spec)
{
    std::map<std::string, std::vector<Rule>> rules;

    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(';', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string clause = spec.substr(pos, end - pos);
        pos = end + 1;
        if (clause.empty())
            continue;

        const std::size_t eq = clause.find('=');
        if (eq == std::string::npos || eq == 0) {
            throwConfigError("fault injection: clause \"" + clause +
                             "\" is not site=action[@occurrences]");
        }
        const std::string site = clause.substr(0, eq);
        std::string action_text = clause.substr(eq + 1);

        Rule rule;
        const std::size_t at = action_text.find('@');
        if (at != std::string::npos) {
            const std::string range = action_text.substr(at + 1);
            action_text.resize(at);
            const std::size_t dash = range.find('-');
            std::uint64_t first = 0;
            if (dash != std::string::npos) {
                std::uint64_t last = 0;
                if (!parseUint64Strict(range.substr(0, dash), &first) ||
                    !parseUint64Strict(range.substr(dash + 1), &last) ||
                    first == 0 || last < first) {
                    throwConfigError(
                        "fault injection: bad occurrence range \"" +
                        range + "\" in clause \"" + clause + "\"");
                }
                rule.first = first;
                rule.last = last;
            } else if (!range.empty() && range.back() == '+') {
                if (!parseUint64Strict(
                        range.substr(0, range.size() - 1), &first) ||
                    first == 0) {
                    throwConfigError(
                        "fault injection: bad occurrence range \"" +
                        range + "\" in clause \"" + clause + "\"");
                }
                rule.first = first;
            } else {
                if (!parseUint64Strict(range, &first) || first == 0) {
                    throwConfigError(
                        "fault injection: bad occurrence \"" + range +
                        "\" in clause \"" + clause + "\"");
                }
                rule.first = first;
                rule.last = first;
            }
        }

        if (action_text == "throw") {
            rule.action.kind = FaultAction::Kind::kThrow;
        } else if (action_text.rfind("sleep:", 0) == 0) {
            std::uint64_t ms = 0;
            if (!parseUint64Strict(action_text.substr(6), &ms) ||
                ms > 600000) {
                throwConfigError(
                    "fault injection: bad sleep duration in \"" +
                    clause + "\" (want sleep:<ms>, ms <= 600000)");
            }
            rule.action.kind = FaultAction::Kind::kSleep;
            rule.action.sleepMs = static_cast<std::uint32_t>(ms);
        } else {
            const int err = errnoByName(action_text);
            if (err == 0) {
                throwConfigError("fault injection: unknown action \"" +
                                 action_text + "\" in clause \"" +
                                 clause + "\"");
            }
            rule.action.kind = FaultAction::Kind::kErrno;
            rule.action.err = err;
        }
        rules[site].push_back(rule);
    }

    const std::lock_guard<std::mutex> lock(mu_);
    rules_ = std::move(rules);
    calls_.clear();
    fired_.clear();
    enabled_.store(!rules_.empty(), std::memory_order_relaxed);
}

void
FaultInjector::reset()
{
    const std::lock_guard<std::mutex> lock(mu_);
    rules_.clear();
    calls_.clear();
    fired_.clear();
    enabled_.store(false, std::memory_order_relaxed);
}

int
FaultInjector::at(const char* site)
{
    FaultAction action;
    bool fire = false;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        if (rules_.empty())
            return 0; // raced with reset()
        const std::uint64_t count = ++calls_[site];
        const auto it = rules_.find(site);
        if (it != rules_.end()) {
            for (const Rule& rule : it->second) {
                if (count >= rule.first && count <= rule.last) {
                    action = rule.action;
                    fire = true;
                    ++fired_[site];
                    break;
                }
            }
        }
    }
    if (!fire)
        return 0;
    switch (action.kind) {
      case FaultAction::Kind::kErrno:
        return action.err;
      case FaultAction::Kind::kThrow:
        throw std::runtime_error(std::string("injected fault at ") +
                                 site);
      case FaultAction::Kind::kSleep:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(action.sleepMs));
        return 0;
    }
    return 0;
}

std::uint64_t
FaultInjector::calls(const std::string& site) const
{
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = calls_.find(site);
    return it == calls_.end() ? 0 : it->second;
}

std::uint64_t
FaultInjector::fired(const std::string& site) const
{
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = fired_.find(site);
    return it == fired_.end() ? 0 : it->second;
}

int
faultInjectAt(const char* site)
{
    FaultInjector& injector = FaultInjector::instance();
    if (!injector.enabled())
        return 0;
    return injector.at(site);
}

} // namespace apres
