/**
 * @file
 * Implementation of the deterministic RNG and Zipf sampler.
 */

#include "rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace apres {

namespace {

/** SplitMix64 step, used to expand one seed into two xorshift words. */
std::uint64_t
splitMix64(std::uint64_t& state)
{
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    reseed(seed);
}

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t state = seed ? seed : 0xDEADBEEFCAFEF00Dull;
    s0 = splitMix64(state);
    s1 = splitMix64(state);
    if (s0 == 0 && s1 == 0)
        s1 = 1;
}

std::uint64_t
Rng::next()
{
    std::uint64_t x = s0;
    const std::uint64_t y = s1;
    s0 = y;
    x ^= x << 23;
    s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1 + y;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    assert(bound > 0);
    // Modulo bias is negligible for the bounds used in workload
    // synthesis (all far below 2^63) and keeps the stream portable.
    return next() % bound;
}

double
Rng::nextDouble()
{
    // 53 high bits -> [0, 1) with full double precision.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha)
{
    assert(n > 0);
    cdf.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf[i] = sum;
    }
    for (auto& c : cdf)
        c /= sum;
}

std::size_t
ZipfSampler::sample(Rng& rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cdf.begin(),
                                 static_cast<std::ptrdiff_t>(cdf.size()) - 1));
}

} // namespace apres
