/**
 * @file
 * Self-profiling harness: rdtsc-backed phase timers for the engines.
 *
 * The simulator's hot loops are too fine-grained for an external
 * profiler to attribute cheaply (gprof's call counting alone costs
 * 2-3x), so the engines carry their own section timers. A handful of
 * `prof::Scope` guards mark the interesting phases:
 *
 *   issue    SM-side work: ready scan, scheduler pick, operand fetch
 *   cache    L1/L2 tag probes and fills
 *   dram     DRAM channel scheduling
 *   barrier  epoch-barrier waits (parallel engine only)
 *   drain    canonical replay of staged memory traffic
 *   other    everything between instrumented sections
 *
 * Attribution is *exclusive*: each thread keeps a current-phase
 * register, and entering a nested scope banks the elapsed cycles into
 * the enclosing phase before switching. drain time therefore does NOT
 * double-count the cache/dram work it triggers — the per-phase
 * seconds sum to wall time spent inside the instrumented region.
 *
 * Off by default and observation-pure: a disabled Scope is one
 * relaxed atomic load and a predictable branch; no timer ever feeds
 * back into simulation state, so enabling the profiler cannot perturb
 * a single statistic. Per-thread counters are plain (single-writer)
 * and only aggregated by report() after worker threads have joined.
 *
 * Timestamps use rdtsc on x86 (a serializing fence would distort the
 * short sections being measured; monotonic-enough on any host this
 * project targets) and steady_clock elsewhere. tsc-to-seconds
 * calibration happens over the enable()..report() interval itself.
 */

#ifndef APRES_COMMON_PROFILE_HPP
#define APRES_COMMON_PROFILE_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace apres::prof {

enum class Phase : int
{
    kIssue = 0,
    kCache,
    kDram,
    kBarrier,
    kDrain,
    kOther,
    kCount,
};

inline constexpr std::array<const char*,
                            static_cast<std::size_t>(Phase::kCount)>
    kPhaseNames{"issue", "cache", "dram", "barrier", "drain", "other"};

namespace detail {

inline std::uint64_t
timestamp()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_ia32_rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/** Per-thread phase accumulators (single-writer; read after join). */
struct Counters
{
    std::array<std::uint64_t, static_cast<std::size_t>(Phase::kCount)>
        ticks{};
    std::array<std::uint64_t, static_cast<std::size_t>(Phase::kCount)>
        calls{};
    Phase current = Phase::kOther;
    std::uint64_t lastStamp = 0;
    bool touched = false;
};

struct Registry
{
    std::mutex mutex;
    // Counters outlive their threads so report() after join is safe.
    std::vector<std::unique_ptr<Counters>> all;
};

inline Registry&
registry()
{
    static Registry r;
    return r;
}

inline Counters&
threadCounters()
{
    thread_local Counters* tls = [] {
        auto owned = std::make_unique<Counters>();
        Counters* raw = owned.get();
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        r.all.push_back(std::move(owned));
        return raw;
    }();
    return *tls;
}

struct State
{
    std::atomic<bool> enabled{false};
    std::uint64_t enableStamp = 0;
    std::chrono::steady_clock::time_point enableTime{};
};

inline State&
state()
{
    static State s;
    return s;
}

} // namespace detail

inline bool
enabled()
{
    return detail::state().enabled.load(std::memory_order_relaxed);
}

/**
 * Bank elapsed ticks into the thread's current phase and switch to
 * @p next. The first touch per thread starts the clock (time before
 * it is not attributed to anything).
 */
inline void
switchPhase(detail::Counters& c, Phase next, std::uint64_t now)
{
    if (c.touched) {
        c.ticks[static_cast<std::size_t>(c.current)] += now - c.lastStamp;
    } else {
        c.touched = true;
    }
    c.lastStamp = now;
    c.current = next;
}

/**
 * Marks a phase for the duration of a C++ scope. Nesting banks the
 * elapsed time into the enclosing phase and restores it on exit
 * (exclusive attribution).
 */
class Scope
{
  public:
    explicit Scope(Phase phase)
    {
        if (!enabled())
            return;
        on_ = true;
        detail::Counters& c = detail::threadCounters();
        prev_ = c.touched ? c.current : Phase::kOther;
        switchPhase(c, phase, detail::timestamp());
        ++c.calls[static_cast<std::size_t>(phase)];
    }

    ~Scope()
    {
        if (!on_)
            return;
        switchPhase(detail::threadCounters(), prev_, detail::timestamp());
    }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

  private:
    Phase prev_ = Phase::kOther;
    bool on_ = false;
};

/** Zero all counters and start profiling. */
inline void
enable()
{
    detail::Registry& r = detail::registry();
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        for (auto& c : r.all)
            *c = detail::Counters{};
    }
    detail::State& s = detail::state();
    s.enableStamp = detail::timestamp();
    s.enableTime = std::chrono::steady_clock::now();
    s.enabled.store(true, std::memory_order_release);
}

inline void
disable()
{
    detail::state().enabled.store(false, std::memory_order_release);
}

/** One phase's aggregated totals across threads. */
struct PhaseReport
{
    std::string name;
    double seconds = 0.0;
    std::uint64_t calls = 0;
};

struct Report
{
    std::vector<PhaseReport> phases; ///< indexed by Phase order
    double wallSeconds = 0.0;        ///< enable() .. report() interval
};

/**
 * Aggregate all threads' counters. Call only after worker threads
 * have joined (their counters are plain loads/stores).
 */
inline Report
report()
{
    detail::State& s = detail::state();
    const std::uint64_t now_stamp = detail::timestamp();
    const auto now_time = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double>(now_time - s.enableTime).count();
    const double ticks_elapsed =
        static_cast<double>(now_stamp - s.enableStamp);
    // tsc Hz measured over the profiled interval itself; the fallback
    // clock path makes timestamp() nanoseconds, which this calibration
    // converts just the same.
    const double secs_per_tick =
        ticks_elapsed > 0.0 ? wall / ticks_elapsed : 0.0;

    Report rep;
    rep.wallSeconds = wall;
    constexpr auto n = static_cast<std::size_t>(Phase::kCount);
    std::array<std::uint64_t, n> ticks{};
    std::array<std::uint64_t, n> calls{};
    detail::Registry& r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (const auto& c : r.all) {
        for (std::size_t i = 0; i < n; ++i) {
            ticks[i] += c->ticks[i];
            calls[i] += c->calls[i];
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        rep.phases.push_back(
            PhaseReport{kPhaseNames[i],
                        static_cast<double>(ticks[i]) * secs_per_tick,
                        calls[i]});
    }
    return rep;
}

} // namespace apres::prof

#endif // APRES_COMMON_PROFILE_HPP
