/**
 * @file
 * Tiny CSV writer for simulation results.
 *
 * Rows are StatSet snapshots; the header is the union of keys seen by
 * the first row (later rows must carry the same keys, which RunResult
 * snapshots always do). Values are written with full double precision
 * so downstream tooling can recompute ratios exactly.
 */

#ifndef APRES_COMMON_CSV_HPP
#define APRES_COMMON_CSV_HPP

#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace apres {

/**
 * RFC 4180 field quoting: returns @p field unchanged unless it
 * contains a comma, double quote, CR or LF, in which case it is
 * wrapped in double quotes with embedded quotes doubled. Labels built
 * from kernel-file paths or config labels can contain any of these.
 */
std::string csvEscapeField(const std::string& field);

/**
 * Accumulates labelled StatSet rows and writes them as CSV.
 */
class CsvWriter
{
  public:
    /** @param label_column name of the first (label) column. */
    explicit CsvWriter(std::string label_column = "label")
        : labelColumn(std::move(label_column))
    {
    }

    /** Append one row. */
    void
    addRow(const std::string& label, const StatSet& stats)
    {
        rows.emplace_back(label, stats);
    }

    /** Number of accumulated rows. */
    std::size_t size() const { return rows.size(); }

    /** Write header + all rows. */
    void write(std::ostream& os) const;

  private:
    std::string labelColumn;
    std::vector<std::pair<std::string, StatSet>> rows;
};

} // namespace apres

#endif // APRES_COMMON_CSV_HPP
