/**
 * @file
 * WarpMask: a dynamically sized warp bit-set.
 *
 * The APRES structures (WGT member vectors, LLT match masks, the
 * cache's per-line toucher tracking) historically used raw
 * std::uint64_t bitmasks, which silently dropped warps 64+ and forced
 * the Gpu constructor to reject wider machines. WarpMask removes that
 * cap: bit w = warp w for any non-negative warp ID, with a small-mask
 * optimization so configurations of at most 64 warps per SM (every
 * paper-sized machine) stay allocation-free — one inline word, the
 * overflow vector untouched.
 *
 * Semantics are value-like and size-agnostic: two masks are equal when
 * they have the same set bits, regardless of how wide either has ever
 * grown. Negative warp IDs (kInvalidWarp) are ignored by set(), the
 * same contract the old warpBit() helper had.
 */

#ifndef APRES_COMMON_WARP_MASK_HPP
#define APRES_COMMON_WARP_MASK_HPP

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace apres {

/**
 * Dynamic warp bit-set (bit w = warp w).
 */
class WarpMask
{
  public:
    WarpMask() = default;

    /** Mask holding the low 64 warps given as a raw word. */
    static WarpMask
    ofWord(std::uint64_t word)
    {
        WarpMask m;
        m.low_ = word;
        return m;
    }

    /** Set bit @p warp. Negative IDs (kInvalidWarp) are ignored. */
    void
    set(WarpId warp)
    {
        if (warp < 0)
            return;
        if (warp < 64) {
            low_ |= std::uint64_t{1} << warp;
            return;
        }
        const std::size_t word = highWordIndex(warp);
        if (word >= high_.size())
            high_.resize(word + 1, 0);
        high_[word] |= bitInWord(warp);
    }

    /** Clear bit @p warp (no-op when out of range or negative). */
    void
    reset(WarpId warp)
    {
        if (warp < 0)
            return;
        if (warp < 64) {
            low_ &= ~(std::uint64_t{1} << warp);
            return;
        }
        const std::size_t word = highWordIndex(warp);
        if (word < high_.size())
            high_[word] &= ~bitInWord(warp);
    }

    /** True when bit @p warp is set (false when negative/out of range). */
    bool
    test(WarpId warp) const
    {
        if (warp < 0)
            return false;
        if (warp < 64)
            return (low_ >> warp) & 1;
        const std::size_t word = highWordIndex(warp);
        return word < high_.size() && (high_[word] & bitInWord(warp)) != 0;
    }

    /** True when no bit is set. */
    bool
    none() const
    {
        if (low_ != 0)
            return false;
        for (const std::uint64_t w : high_) {
            if (w != 0)
                return false;
        }
        return true;
    }

    /** True when any bit is set. */
    bool any() const { return !none(); }

    /** Number of set bits. */
    int
    count() const
    {
        int n = std::popcount(low_);
        for (const std::uint64_t w : high_)
            n += std::popcount(w);
        return n;
    }

    /** True when any set bit is at position >= @p bound. */
    bool
    anyAtOrAbove(int bound) const
    {
        if (bound <= 0)
            return any();
        if (bound < 64 && (low_ >> bound) != 0)
            return true;
        for (std::size_t word = 0; word < high_.size(); ++word) {
            std::uint64_t bits = high_[word];
            if (bits == 0)
                continue;
            const int base = 64 * (static_cast<int>(word) + 1);
            if (base >= bound)
                return true;
            if (bound - base < 64 && (bits >> (bound - base)) != 0)
                return true;
        }
        return false;
    }

    /** Clear every bit (keeps any grown capacity). */
    void
    clear()
    {
        low_ = 0;
        for (std::uint64_t& w : high_)
            w = 0;
    }

    WarpMask&
    operator|=(const WarpMask& other)
    {
        low_ |= other.low_;
        if (other.high_.size() > high_.size())
            high_.resize(other.high_.size(), 0);
        for (std::size_t i = 0; i < other.high_.size(); ++i)
            high_[i] |= other.high_[i];
        return *this;
    }

    bool
    operator==(const WarpMask& other) const
    {
        if (low_ != other.low_)
            return false;
        const std::size_t common =
            high_.size() < other.high_.size() ? high_.size()
                                              : other.high_.size();
        for (std::size_t i = 0; i < common; ++i) {
            if (high_[i] != other.high_[i])
                return false;
        }
        for (std::size_t i = common; i < high_.size(); ++i) {
            if (high_[i] != 0)
                return false;
        }
        for (std::size_t i = common; i < other.high_.size(); ++i) {
            if (other.high_[i] != 0)
                return false;
        }
        return true;
    }

    bool operator!=(const WarpMask& other) const { return !(*this == other); }

    /**
     * The low 64 bits as a raw word. Display/trace convenience: trace
     * event args are fixed-width integers, so wide masks are truncated
     * to their first word there (the full mask is never truncated in
     * simulation state).
     */
    std::uint64_t lowWord() const { return low_; }

    /** Invoke @p fn(WarpId) for every set bit, in ascending order. */
    template <typename Fn>
    void
    forEachSet(Fn&& fn) const
    {
        forWord(low_, 0, fn);
        for (std::size_t word = 0; word < high_.size(); ++word)
            forWord(high_[word], 64 * (static_cast<int>(word) + 1), fn);
    }

    /**
     * Hex rendering without leading zeros (matches what
     * `std::hex << mask` printed for the old raw-word masks).
     */
    std::string
    toHex() const
    {
        std::string out;
        bool started = false;
        for (std::size_t word = high_.size(); word-- > 0;)
            appendWordHex(out, high_[word], started);
        appendWordHex(out, low_, started);
        if (!started)
            out = "0";
        return out;
    }

  private:
    static std::size_t
    highWordIndex(WarpId warp)
    {
        return static_cast<std::size_t>(warp / 64) - 1;
    }

    static std::uint64_t
    bitInWord(WarpId warp)
    {
        return std::uint64_t{1} << (warp % 64);
    }

    template <typename Fn>
    static void
    forWord(std::uint64_t bits, int base, Fn&& fn)
    {
        while (bits != 0) {
            const int b = std::countr_zero(bits);
            fn(static_cast<WarpId>(base + b));
            bits &= bits - 1;
        }
    }

    static void
    appendWordHex(std::string& out, std::uint64_t word, bool& started)
    {
        static const char digits[] = "0123456789abcdef";
        for (int nibble = 15; nibble >= 0; --nibble) {
            const auto d =
                static_cast<unsigned>((word >> (4 * nibble)) & 0xF);
            if (!started && d == 0)
                continue;
            started = true;
            out.push_back(digits[d]);
        }
    }

    std::uint64_t low_ = 0;              ///< warps 0..63 (inline)
    std::vector<std::uint64_t> high_;    ///< warps 64+ (word i = 64*(i+1)..)
};

} // namespace apres

#endif // APRES_COMMON_WARP_MASK_HPP
