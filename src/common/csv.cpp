/**
 * @file
 * CSV writer implementation.
 */

#include "csv.hpp"

#include <iomanip>
#include <limits>

namespace apres {

void
CsvWriter::write(std::ostream& os) const
{
    if (rows.empty())
        return;
    os << labelColumn;
    for (const auto& [key, value] : rows.front().second.entries())
        os << ',' << key;
    os << '\n';
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (const auto& [label, stats] : rows) {
        os << label;
        // Iterate the first row's keys so columns stay aligned even if
        // a later row carries extras.
        for (const auto& [key, value] : rows.front().second.entries())
            os << ',' << stats.get(key);
        os << '\n';
    }
}

} // namespace apres
