/**
 * @file
 * CSV writer implementation.
 */

#include "csv.hpp"

#include <iomanip>
#include <limits>

namespace apres {

std::string
csvEscapeField(const std::string& field)
{
    if (field.find_first_of(",\"\r\n") == std::string::npos)
        return field;
    std::string out;
    out.reserve(field.size() + 2);
    out += '"';
    for (const char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::write(std::ostream& os) const
{
    if (rows.empty())
        return;
    os << csvEscapeField(labelColumn);
    for (const auto& [key, value] : rows.front().second.entries())
        os << ',' << csvEscapeField(key);
    os << '\n';
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (const auto& [label, stats] : rows) {
        os << csvEscapeField(label);
        // Iterate the first row's keys so columns stay aligned even if
        // a later row carries extras.
        for (const auto& [key, value] : rows.front().second.entries())
            os << ',' << stats.get(key);
        os << '\n';
    }
}

} // namespace apres
