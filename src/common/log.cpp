/**
 * @file
 * Logging implementation.
 */

#include "log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace apres {

namespace {

// Parallel sweeps log from worker threads: the threshold is an atomic
// (lock-free fast path for the level checks inlined in the header) and
// the sink is serialized so concurrent messages never interleave.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

std::mutex&
sinkMutex()
{
    static std::mutex mu;
    return mu;
}

const char*
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo:  return "info";
      case LogLevel::kWarn:  return "warn";
      case LogLevel::kNone:  return "none";
    }
    return "?";
}

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string& msg)
{
    if (level < logLevel())
        return;
    const std::lock_guard<std::mutex> lock(sinkMutex());
    std::cerr << "[apres:" << levelTag(level) << "] " << msg << '\n';
}

void
fatal(const std::string& msg)
{
    {
        const std::lock_guard<std::mutex> lock(sinkMutex());
        std::cerr << "[apres:fatal] " << msg << '\n';
    }
    std::exit(1);
}

} // namespace apres
