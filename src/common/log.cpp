/**
 * @file
 * Logging implementation.
 */

#include "log.hpp"

#include <cstdlib>
#include <iostream>

namespace apres {

namespace {

LogLevel g_level = LogLevel::kWarn;

const char*
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo:  return "info";
      case LogLevel::kWarn:  return "warn";
      case LogLevel::kNone:  return "none";
    }
    return "?";
}

} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

void
logMessage(LogLevel level, const std::string& msg)
{
    if (level < g_level)
        return;
    std::cerr << "[apres:" << levelTag(level) << "] " << msg << '\n';
}

void
fatal(const std::string& msg)
{
    std::cerr << "[apres:fatal] " << msg << '\n';
    std::exit(1);
}

} // namespace apres
