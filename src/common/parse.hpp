/**
 * @file
 * Strict text-to-value parsing shared by every user-facing input
 * path: the config registry, the apres_sim flag handling and the
 * bench drivers' environment knobs.
 *
 * The *Strict parsers consume the whole string or fail: trailing
 * garbage, empty input, overflow and non-finite doubles are all
 * rejected, unlike the atoi/atof family that silently returns 0.
 * The parseX(option, ...) wrappers add the range checks CLI flags
 * need and terminate via fatal() with the offending flag named.
 */

#ifndef APRES_COMMON_PARSE_HPP
#define APRES_COMMON_PARSE_HPP

#include <cstdint>
#include <string>

namespace apres {

/** Parse a decimal signed integer; false on garbage/partial/overflow. */
bool parseInt64Strict(const std::string& text, std::int64_t* out);

/** Parse a decimal unsigned integer; rejects a leading '-'. */
bool parseUint64Strict(const std::string& text, std::uint64_t* out);

/** Parse a finite double (decimal or scientific notation). */
bool parseDoubleStrict(const std::string& text, double* out);

/** Parse a boolean: true/false, 1/0, on/off, yes/no (lowercase). */
bool parseBoolStrict(const std::string& text, bool* out);

/**
 * CLI helper: parse @p text as an unsigned integer in
 * [@p min_value, max]; fatal() naming @p option on any violation.
 */
std::uint64_t parseUintOption(const std::string& option,
                              const std::string& text,
                              std::uint64_t min_value = 0);

/** CLI helper: strictly positive integer (>= 1). */
std::uint64_t parsePositiveUintOption(const std::string& option,
                                      const std::string& text);

/** CLI helper: strictly positive finite double. */
double parsePositiveDoubleOption(const std::string& option,
                                 const std::string& text);

/**
 * Shortest decimal representation of @p value that parses back to
 * exactly the same double (for config echoes and JSON output).
 */
std::string formatDouble(double value);

} // namespace apres

#endif // APRES_COMMON_PARSE_HPP
