/**
 * @file
 * Tracer implementation: ring bookkeeping and the two renderers.
 */

#include "trace.hpp"

#include <cassert>
#include <sstream>

#include "common/json.hpp"

namespace apres {

const char*
traceEventTypeName(TraceEventType type)
{
    switch (type) {
      case TraceEventType::kWarpIssue: return "warp-issue";
      case TraceEventType::kSchedulerIdle: return "scheduler-idle";
      case TraceEventType::kL1Hit: return "l1-hit";
      case TraceEventType::kL1Miss: return "l1-miss";
      case TraceEventType::kL1Bypass: return "l1-bypass";
      case TraceEventType::kMshrMerge: return "mshr-merge";
      case TraceEventType::kDramService: return "dram-service";
      case TraceEventType::kLawsGroupPromote: return "laws-group-promote";
      case TraceEventType::kLawsGroupDemote: return "laws-group-demote";
      case TraceEventType::kSapPtTrain: return "sap-pt-train";
      case TraceEventType::kSapStrideMatch: return "sap-stride-match";
      case TraceEventType::kSapPrefetchIssue: return "sap-prefetch-issue";
      case TraceEventType::kSapWqDrain: return "sap-wq-drain";
      case TraceEventType::kFfIdleSpan: return "ff-idle-span";
    }
    return "?";
}

Tracer::Tracer(int num_sms, std::size_t capacity_per_lane)
    : numSms_(num_sms), capacity_(capacity_per_lane)
{
    assert(num_sms >= 1);
    assert(capacity_per_lane >= 1);
    lanes_.resize(static_cast<std::size_t>(numLanes()));
}

void
Tracer::record(int lane, TraceEventType type, Cycle cycle, Pc pc,
               WarpId warp, std::uint64_t arg)
{
    assert(lane >= 0 && lane < numLanes());
    Lane& l = lanes_[static_cast<std::size_t>(lane)];
    TraceRecord rec;
    rec.cycle = cycle;
    rec.arg = arg;
    rec.pc = pc;
    rec.warp = warp;
    rec.type = type;
    if (l.buf.size() < capacity_) {
        l.buf.push_back(rec);
    } else {
        // Ring full: overwrite the oldest record (head) and advance.
        l.buf[l.head] = rec;
        l.head = (l.head + 1) % capacity_;
    }
    ++l.total;
    if (lane != engineLane())
        ++typeCounts_[static_cast<std::size_t>(type)];
}

std::uint64_t
Tracer::eventTypeCount(TraceEventType type) const
{
    return typeCounts_[static_cast<std::size_t>(type)];
}

std::vector<std::pair<std::string, std::uint64_t>>
Tracer::eventTypeCounts() const
{
    std::vector<std::pair<std::string, std::uint64_t>> counts;
    for (std::size_t i = 0; i < kNumTraceEventTypes; ++i) {
        if (typeCounts_[i] == 0)
            continue;
        counts.emplace_back(
            traceEventTypeName(static_cast<TraceEventType>(i)),
            typeCounts_[i]);
    }
    return counts;
}

std::uint64_t
Tracer::recorded() const
{
    std::uint64_t n = 0;
    for (const Lane& l : lanes_)
        n += l.total;
    return n;
}

std::uint64_t
Tracer::dropped() const
{
    std::uint64_t n = 0;
    for (const Lane& l : lanes_)
        n += l.total - l.buf.size();
    return n;
}

std::uint64_t
Tracer::retained() const
{
    std::uint64_t n = 0;
    for (const Lane& l : lanes_)
        n += l.buf.size();
    return n;
}

std::string
Tracer::laneLabel(int lane) const
{
    if (lane < numSms_)
        return "sm" + std::to_string(lane);
    return lane == memLane() ? "mem" : "engine";
}

template <typename Fn>
void
Tracer::forEachRetained(const Lane& lane, Fn&& fn) const
{
    // Oldest-first: once the ring wrapped, `head` is the oldest slot.
    const std::size_t n = lane.buf.size();
    const std::size_t start = lane.total > n ? lane.head : 0;
    for (std::size_t i = 0; i < n; ++i)
        fn(lane.buf[(start + i) % n]);
}

void
Tracer::writeChromeTrace(std::ostream& os) const
{
    JsonWriter json(os);
    json.beginObject();
    // 1 cycle = 1 us keeps sub-cycle zoom available in the viewers.
    json.field("displayTimeUnit", "ms");
    json.beginArray("traceEvents");

    // Metadata: name each lane's process so the viewer shows "sm0",
    // "mem", "engine" instead of bare pids.
    for (int lane = 0; lane < numLanes(); ++lane) {
        json.beginObject();
        json.field("name", "process_name");
        json.field("ph", "M");
        json.field("pid", static_cast<std::uint64_t>(lane));
        json.beginObject("args");
        json.field("name", laneLabel(lane));
        json.endObject();
        json.endObject();
    }

    for (int lane = 0; lane < numLanes(); ++lane) {
        forEachRetained(
            lanes_[static_cast<std::size_t>(lane)],
            [&](const TraceRecord& rec) {
                const bool span = rec.type == TraceEventType::kFfIdleSpan;
                json.beginObject();
                json.field("name", traceEventTypeName(rec.type));
                json.field("ph", span ? "X" : "i");
                if (!span)
                    json.field("s", "t"); // instant scope: thread
                json.field("ts", static_cast<std::uint64_t>(rec.cycle));
                if (span)
                    json.field("dur", rec.arg); // arg = skipped cycles
                json.field("pid", static_cast<std::uint64_t>(lane));
                json.field("tid",
                           static_cast<std::uint64_t>(
                               rec.warp >= 0 ? rec.warp : 0));
                json.beginObject("args");
                if (rec.pc != kInvalidPc)
                    json.field("pc", static_cast<std::uint64_t>(rec.pc));
                if (rec.warp != kInvalidWarp) {
                    json.field("warp", static_cast<std::uint64_t>(
                                           static_cast<std::uint32_t>(
                                               rec.warp)));
                }
                if (!span && rec.arg != 0)
                    json.field("arg", rec.arg);
                json.endObject();
                json.endObject();
            });
    }
    json.endArray();

    json.beginObject("stats");
    json.field("recorded", recorded());
    json.field("retained", retained());
    json.field("dropped", dropped());
    json.endObject();
    json.endObject();
    json.finish();
}

std::string
Tracer::eventSummary(std::size_t max_per_lane) const
{
    std::ostringstream out;
    for (int lane = 0; lane < numLanes(); ++lane) {
        if (lane == engineLane())
            continue; // timing artifacts, not machine behaviour
        const std::string label = laneLabel(lane);
        std::size_t emitted = 0;
        forEachRetained(
            lanes_[static_cast<std::size_t>(lane)],
            [&](const TraceRecord& rec) {
                if (max_per_lane != 0 && emitted >= max_per_lane)
                    return;
                ++emitted;
                out << label << ' ' << traceEventTypeName(rec.type)
                    << " pc=";
                if (rec.pc != kInvalidPc)
                    out << rec.pc;
                else
                    out << '-';
                out << " warp=";
                if (rec.warp != kInvalidWarp)
                    out << rec.warp;
                else
                    out << '-';
                out << '\n';
            });
    }
    return out.str();
}

} // namespace apres
