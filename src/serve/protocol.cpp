/**
 * @file
 * Wire-protocol implementation: request parsing, cache keys and the
 * canonical RunResult serialization.
 */

#include "protocol.hpp"

#include <cstdlib>
#include <sstream>

#include "common/hash.hpp"
#include "common/json.hpp"
#include "common/parse.hpp"
#include "common/sim_error.hpp"

namespace apres {

std::string
serveFingerprint()
{
    if (const char* env = std::getenv("APRES_SERVE_FINGERPRINT")) {
        if (*env != '\0')
            return env;
    }
    return kStatsSchemaVersion;
}

namespace {

/**
 * An override value may arrive as a JSON string, number or bool; the
 * registry wants the string form. Numbers use their exact source
 * lexeme so 64-bit seeds survive untouched.
 */
std::string
overrideValueToString(const std::string& key, const JsonValue& value)
{
    switch (value.type()) {
      case JsonValue::Type::kString: return value.asString();
      case JsonValue::Type::kBool:   return value.asBool() ? "true"
                                                           : "false";
      // The exact source lexeme, so 64-bit seeds survive untouched
      // (the registry's strict parsers re-validate per key type).
      case JsonValue::Type::kNumber: return value.numberLexeme();
      default:
        throwSerializationError(
            "override \"" + key +
            "\" must be a string, number or bool");
    }
}

ServeJobSpec
parseJob(const JsonValue& v, std::size_t index)
{
    if (!v.isObject())
        throwSerializationError("jobs[" + std::to_string(index) +
                                "] must be an object");
    ServeJobSpec job;
    const bool has_workload = v.has("workload");
    const bool has_text = v.has("kernelText");
    if (has_workload == has_text) {
        throwSerializationError(
            "jobs[" + std::to_string(index) +
            "] must carry exactly one of \"workload\" or \"kernelText\"");
    }
    if (has_workload)
        job.workload = v.at("workload").asString();
    else
        job.kernelText = v.at("kernelText").asString();
    if (const JsonValue* scale = v.find("scale")) {
        job.scale = scale->asDouble();
        if (!(job.scale > 0.0))
            throwConfigError("jobs[" + std::to_string(index) +
                             "].scale must be > 0");
    }
    if (const JsonValue* label = v.find("label"))
        job.label = label->asString();
    if (job.label.empty())
        job.label = has_workload ? job.workload
                                 : ("kernel-" + std::to_string(index));
    if (const JsonValue* overrides = v.find("overrides")) {
        for (const auto& [key, value] : overrides->members())
            job.overrides.emplace_back(key,
                                       overrideValueToString(key, value));
    }
    return job;
}

} // namespace

ServeRequest
parseServeRequest(const std::string& text)
{
    const JsonValue doc = JsonValue::parse(text);
    if (!doc.isObject())
        throwSerializationError("request must be a JSON object");
    const std::string& type = doc.at("type").asString();

    ServeRequest req;
    if (type == "ping") {
        req.type = ServeRequest::Type::kPing;
        return req;
    }
    if (type == "stats") {
        req.type = ServeRequest::Type::kStats;
        return req;
    }
    if (type == "shutdown") {
        req.type = ServeRequest::Type::kShutdown;
        return req;
    }
    if (type != "run")
        throwSerializationError("unknown request type \"" + type + "\"");

    req.type = ServeRequest::Type::kRun;
    if (const JsonValue* options = doc.find("options")) {
        if (const JsonValue* t = options->find("timeoutSeconds")) {
            req.timeoutSeconds = t->asDouble();
            if (req.timeoutSeconds < 0.0)
                throwConfigError("options.timeoutSeconds must be >= 0");
        }
        if (const JsonValue* r = options->find("retries")) {
            const std::uint64_t retries = r->asUint64();
            if (retries > 100)
                throwConfigError("options.retries must be <= 100");
            req.retries = static_cast<int>(retries);
        }
    }
    const JsonValue& jobs = doc.at("jobs");
    if (!jobs.isArray() || jobs.size() == 0)
        throwSerializationError("\"jobs\" must be a non-empty array");
    for (std::size_t i = 0; i < jobs.size(); ++i)
        req.jobs.push_back(parseJob(jobs.at(i), i));
    return req;
}

void
writeServeJob(JsonWriter& json, const ServeJobSpec& job)
{
    json.beginObject();
    json.field("label", job.label);
    if (!job.kernelText.empty()) {
        json.field("kernelText", job.kernelText);
    } else {
        json.field("workload", job.workload);
        json.field("scale", job.scale);
    }
    if (!job.overrides.empty()) {
        json.beginObject("overrides");
        for (const auto& [key, value] : job.overrides)
            json.field(key, value);
        json.endObject();
    }
    json.endObject();
}

std::string
kernelFingerprint(const ServeJobSpec& job)
{
    if (!job.kernelText.empty())
        return "text:" + contentHash(job.kernelText);
    return "workload:" + job.workload + "@" + formatDouble(job.scale);
}

std::string
computeCacheKey(const std::string& fingerprint,
                const std::string& kernel_fp,
                const std::map<std::string, std::string>& semantic_config)
{
    ContentHasher hasher;
    hasher.update(fingerprint);
    hasher.update(kernel_fp);
    hasher.update(static_cast<std::uint64_t>(semantic_config.size()));
    for (const auto& [key, value] : semantic_config) {
        hasher.update(key);
        hasher.update(value);
    }
    return hasher.hexDigest();
}

std::string
errorResponse(const std::string& kind, const std::string& detail)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.field("type", "error");
    json.field("kind", kind);
    json.field("detail", detail);
    json.endObject();
    json.finish();
    return os.str();
}

std::string
overloadedResponse(const std::string& reason,
                   std::uint64_t retry_after_ms)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.field("type", "overloaded");
    json.field("reason", reason);
    json.field("retryAfterMs", retry_after_ms);
    json.endObject();
    json.finish();
    return os.str();
}

std::string
serializeRunResult(const RunResult& r)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.field("completed", r.completed);
    json.field("status", r.status);
    if (r.status != "ok") {
        json.beginObject("error");
        json.field("kind", r.errorKind);
        json.field("detail", r.errorDetail);
        json.endObject();
    }
    json.beginObject("config");
    for (const auto& [key, value] : r.config)
        json.field(key, value);
    json.endObject();
    json.beginObject("stats");
    const StatSet stats = r.toStatSet();
    for (const auto& [key, value] : stats.entries())
        json.field(key, value);
    json.endObject();
    json.endObject();
    json.finish();
    return os.str();
}

} // namespace apres
