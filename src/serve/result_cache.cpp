/**
 * @file
 * Result-cache implementation.
 */

#include "result_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include <unistd.h>

#include "common/json_value.hpp"
#include "common/log.hpp"
#include "common/sim_error.hpp"

namespace apres {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string disk_dir)
    : diskDir_(std::move(disk_dir))
{
    if (diskDir_.empty())
        return;
    std::error_code ec;
    fs::create_directories(diskDir_, ec);
    if (ec) {
        throwConfigError("result cache: cannot create directory \"" +
                         diskDir_ + "\": " + ec.message());
    }
}

std::string
ResultCache::diskPath(const std::string& key) const
{
    return diskDir_ + "/" + key + ".json";
}

std::optional<std::string>
ResultCache::lookup(const std::string& key)
{
    const std::lock_guard<std::mutex> lock(mu_);

    const auto it = memory_.find(key);
    if (it != memory_.end()) {
        ++stats_.memoryHits;
        return it->second;
    }

    if (!diskDir_.empty()) {
        std::ifstream in(diskPath(key), std::ios::binary);
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            std::string payload = buf.str();
            // Validate before serving: a truncated or corrupted file
            // spliced verbatim into a response would poison the whole
            // batch document.
            bool valid = !payload.empty();
            if (valid) {
                try {
                    (void)JsonValue::parse(payload);
                } catch (const SimError&) {
                    valid = false;
                }
            }
            if (valid) {
                ++stats_.diskHits;
                memory_.emplace(key, payload);
                return payload;
            }
            ++stats_.invalidDiskEntries;
            logWarn("result cache: discarding corrupt entry ", key);
            std::error_code ec;
            fs::remove(diskPath(key), ec);
        }
    }

    ++stats_.misses;
    return std::nullopt;
}

void
ResultCache::store(const std::string& key, const std::string& payload)
{
    const std::lock_guard<std::mutex> lock(mu_);
    memory_[key] = payload;
    ++stats_.stores;

    if (diskDir_.empty())
        return;
    // Atomic publish: write a process-unique temp file, then rename.
    // Readers either see the complete entry or none at all.
    const std::string final_path = diskPath(key);
    const std::string tmp_path =
        final_path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        if (!out) {
            logWarn("result cache: cannot write ", tmp_path,
                    "; entry stays memory-only");
            return;
        }
        out << payload;
        out.flush();
        if (!out) {
            logWarn("result cache: short write to ", tmp_path,
                    "; entry stays memory-only");
            std::error_code ec;
            fs::remove(tmp_path, ec);
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        logWarn("result cache: cannot publish ", final_path, ": ",
                ec.message());
        fs::remove(tmp_path, ec);
    }
}

ResultCacheStats
ResultCache::stats() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::size_t
ResultCache::memoryEntries() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return memory_.size();
}

} // namespace apres
