/**
 * @file
 * Result-cache implementation: bounded LRU disk tier with a crash-safe
 * journal, startup scrub and a one-way degradation ladder.
 */

#include "result_cache.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "common/fault_inject.hpp"
#include "common/json_value.hpp"
#include "common/log.hpp"
#include "common/sim_error.hpp"

namespace apres {

namespace fs = std::filesystem;

namespace {

/** Key of an entry file name ("<key>.json"), or empty. */
std::string
entryKey(const std::string& filename)
{
    const std::string suffix = ".json";
    if (filename.size() <= suffix.size() ||
        filename.compare(filename.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
        return "";
    }
    return filename.substr(0, filename.size() - suffix.size());
}

/** A non-empty, well-formed JSON document? */
bool
validPayload(const std::string& payload)
{
    if (payload.empty())
        return false;
    try {
        (void)JsonValue::parse(payload);
        return true;
    } catch (const SimError&) {
        return false;
    }
}

} // namespace

const char*
cacheDiskModeName(CacheDiskMode mode)
{
    switch (mode) {
      case CacheDiskMode::kReadWrite: return "readWrite";
      case CacheDiskMode::kReadOnly: return "readOnly";
      case CacheDiskMode::kMemoryOnly: return "memoryOnly";
    }
    return "unknown";
}

ResultCache::ResultCache(std::string disk_dir, CacheLimits limits)
    : diskDir_(std::move(disk_dir)), limits_(limits)
{
    if (diskDir_.empty()) {
        mode_ = CacheDiskMode::kMemoryOnly;
        return;
    }
    std::error_code ec;
    fs::create_directories(diskDir_, ec);
    if (ec) {
        throwConfigError("result cache: cannot create directory \"" +
                         diskDir_ + "\": " + ec.message());
    }
    const std::lock_guard<std::mutex> lock(mu_);
    scrubLocked();
}

ResultCache::~ResultCache()
{
    const std::lock_guard<std::mutex> lock(mu_);
    if (mode_ == CacheDiskMode::kReadWrite)
        persistJournalLocked();
}

std::string
ResultCache::diskPath(const std::string& key) const
{
    return diskDir_ + "/" + key + ".json";
}

std::string
ResultCache::journalPath() const
{
    return diskDir_ + "/journal.lru";
}

void
ResultCache::scrubLocked()
{
    // Pass 1: walk the directory. Crashed writers leave "*.tmp.*"
    // files (the rename never happened) and possibly nothing else;
    // torn filesystems leave zero-length or truncated entries. All of
    // them are repaired away here, before anything can be served.
    std::vector<std::pair<fs::file_time_type, std::string>> unjournaled;
    std::unordered_map<std::string, std::uint64_t> found;
    std::error_code ec;
    for (const auto& dirent : fs::directory_iterator(diskDir_, ec)) {
        if (!dirent.is_regular_file())
            continue;
        const std::string name = dirent.path().filename().string();
        if (name == "journal.lru" || name == "journal.lru.tmp")
            continue;
        if (name.find(".tmp.") != std::string::npos) {
            std::error_code rm;
            fs::remove(dirent.path(), rm);
            ++stats_.scrubOrphanTmps;
            logWarn("result cache: scrub removed orphan temp file ",
                    name);
            continue;
        }
        const std::string key = entryKey(name);
        if (key.empty())
            continue; // not ours; leave unknown files alone
        std::string payload;
        {
            std::ifstream in(dirent.path(), std::ios::binary);
            std::ostringstream buf;
            buf << in.rdbuf();
            payload = buf.str();
        }
        if (!validPayload(payload)) {
            std::error_code rm;
            fs::remove(dirent.path(), rm);
            ++stats_.scrubCorruptEntries;
            // invalidDiskEntries is the total-corruption counter no
            // matter who discovered the entry (scrub or lookup).
            ++stats_.invalidDiskEntries;
            logWarn("result cache: scrub removed corrupt entry ", key);
            continue;
        }
        found.emplace(key, payload.size());
        unjournaled.emplace_back(dirent.last_write_time(ec), key);
    }
    if (ec) {
        logWarn("result cache: scrub could not walk ", diskDir_, ": ",
                ec.message());
    }

    // Pass 2: rebuild recency. Journaled keys keep their recorded
    // order; survivors the journal never saw (a crash before the
    // journal write, or another process's entries) are appended
    // oldest-first by mtime so they evict before journaled entries of
    // the same age class.
    std::unordered_map<std::string, bool> journaled;
    {
        std::ifstream journal(journalPath());
        std::string line;
        while (std::getline(journal, line)) {
            if (line.empty() || journaled.count(line) ||
                found.find(line) == found.end()) {
                continue; // stale or duplicate journal line
            }
            journaled.emplace(line, true);
            lru_.push_back(line);
            diskIndex_[line] = {std::prev(lru_.end()), found[line]};
            diskBytes_ += found[line];
        }
    }
    std::sort(unjournaled.begin(), unjournaled.end());
    // Iterate newest-first so push_front leaves the oldest unjournaled
    // entry at the very front of the LRU (first victim).
    for (auto it = unjournaled.rbegin(); it != unjournaled.rend();
         ++it) {
        const std::string& key = it->second;
        if (journaled.count(key))
            continue;
        lru_.push_front(key);
        diskIndex_[key] = {lru_.begin(), found[key]};
        diskBytes_ += found[key];
        journalDirty_ = true;
    }

    // Pass 3: a cap may have shrunk since the last run.
    evictToFitLocked();
    persistJournalLocked();
}

void
ResultCache::touchLocked(const std::string& key, std::uint64_t bytes)
{
    const auto it = diskIndex_.find(key);
    if (it == diskIndex_.end()) {
        lru_.push_back(key);
        diskIndex_[key] = {std::prev(lru_.end()), bytes};
        diskBytes_ += bytes;
    } else {
        lru_.splice(lru_.end(), lru_, it->second.lruIt);
        diskBytes_ += bytes - it->second.bytes;
        it->second.bytes = bytes;
    }
    journalDirty_ = true;
}

void
ResultCache::forgetLocked(const std::string& key)
{
    const auto it = diskIndex_.find(key);
    if (it == diskIndex_.end())
        return;
    diskBytes_ -= it->second.bytes;
    lru_.erase(it->second.lruIt);
    diskIndex_.erase(it);
    journalDirty_ = true;
}

void
ResultCache::evictToFitLocked()
{
    if (mode_ != CacheDiskMode::kReadWrite)
        return; // a degraded tier must not churn the directory
    const auto overCap = [this] {
        if (limits_.maxBytes != 0 && diskBytes_ > limits_.maxBytes)
            return true;
        return limits_.maxEntries != 0 &&
               diskIndex_.size() > limits_.maxEntries;
    };
    while (overCap() && !lru_.empty()) {
        const std::string victim = lru_.front();
        const std::uint64_t bytes = diskIndex_[victim].bytes;
        std::error_code ec;
        fs::remove(diskPath(victim), ec);
        if (ec) {
            logWarn("result cache: cannot evict ", victim, ": ",
                    ec.message());
        }
        // Drop the accounting even when the unlink failed — retrying
        // the same victim forever would wedge the store path, and the
        // scrub of the next start re-adopts any survivor.
        forgetLocked(victim);
        ++stats_.evictions;
        stats_.evictedBytes += bytes;
    }
}

void
ResultCache::persistJournalLocked()
{
    if (!journalDirty_ || diskDir_.empty() ||
        mode_ != CacheDiskMode::kReadWrite) {
        return;
    }
    const std::string tmp = journalPath() + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        for (const std::string& key : lru_)
            out << key << '\n';
        out.flush();
        if (!out) {
            logWarn("result cache: cannot write access journal ", tmp);
            std::error_code rm;
            fs::remove(tmp, rm);
            return; // stays dirty; retried on the next store/evict
        }
    }
    std::error_code ec;
    fs::rename(tmp, journalPath(), ec);
    if (ec) {
        logWarn("result cache: cannot publish access journal: ",
                ec.message());
        fs::remove(tmp, ec);
        return;
    }
    journalDirty_ = false;
}

void
ResultCache::degradeLocked(CacheDiskMode target, int err, const char* op)
{
    if (static_cast<int>(target) <= static_cast<int>(mode_))
        return;
    mode_ = target;
    ++stats_.degradations;
    logWarn("result cache: ", op, " failed (", std::strerror(err),
            "); degrading disk tier to ", cacheDiskModeName(target));
}

std::optional<std::string>
ResultCache::lookup(const std::string& key)
{
    const std::lock_guard<std::mutex> lock(mu_);

    const auto it = memory_.find(key);
    if (it != memory_.end()) {
        ++stats_.memoryHits;
        // Keep disk recency honest even for hot keys: the disk copy
        // of a frequently-hit entry must not be the next LRU victim.
        if (mode_ == CacheDiskMode::kReadWrite &&
            diskIndex_.count(key)) {
            touchLocked(key, diskIndex_[key].bytes);
        }
        return it->second;
    }

    if (mode_ != CacheDiskMode::kMemoryOnly) {
        const std::string path = diskPath(key);
        int fd = -1;
        int err = faultInjectAt("cache.read");
        if (err == 0) {
            fd = ::open(path.c_str(), O_RDONLY);
            if (fd < 0)
                err = errno;
        }
        if (fd < 0) {
            if (err != ENOENT) {
                if (err == EIO) {
                    degradeLocked(CacheDiskMode::kMemoryOnly, err,
                                  "disk read");
                } else {
                    logWarn("result cache: cannot read ", path, ": ",
                            std::strerror(err));
                }
                ++stats_.misses;
                return std::nullopt;
            }
            // ENOENT: plain miss, falls through.
        } else {
            std::string payload;
            char buf[65536];
            bool read_failed = false;
            for (;;) {
                const ssize_t n = ::read(fd, buf, sizeof buf);
                if (n < 0) {
                    if (errno == EINTR)
                        continue;
                    read_failed = true;
                    if (errno == EIO) {
                        degradeLocked(CacheDiskMode::kMemoryOnly,
                                      errno, "disk read");
                    }
                    break;
                }
                if (n == 0)
                    break;
                payload.append(buf, static_cast<std::size_t>(n));
            }
            ::close(fd);
            if (!read_failed) {
                // Validate before serving: a truncated or corrupted
                // file spliced verbatim into a response would poison
                // the whole batch document.
                if (validPayload(payload)) {
                    ++stats_.diskHits;
                    memory_.emplace(key, payload);
                    if (mode_ == CacheDiskMode::kReadWrite) {
                        touchLocked(key, payload.size());
                        evictToFitLocked();
                        persistJournalLocked();
                    }
                    return payload;
                }
                ++stats_.invalidDiskEntries;
                logWarn("result cache: discarding corrupt entry ", key);
                std::error_code ec;
                fs::remove(path, ec);
                forgetLocked(key);
            }
        }
    }

    ++stats_.misses;
    return std::nullopt;
}

bool
ResultCache::writeDiskEntryLocked(const std::string& key,
                                  const std::string& payload)
{
    // Atomic, durable publish: write a process-unique temp file, fsync
    // it, then rename. Readers (and the post-crash scrub) either see
    // the complete entry or none at all. Every step consults the
    // fault-injection seam so the chaos harness can script ENOSPC/EIO
    // at exactly this boundary.
    const std::string final_path = diskPath(key);
    const std::string tmp_path =
        final_path + ".tmp." + std::to_string(::getpid());

    int err = faultInjectAt("cache.write");
    int fd = -1;
    if (err == 0) {
        fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
        if (fd < 0)
            err = errno;
    }
    if (fd < 0) {
        ++stats_.writeFailures;
        degradeLocked(err == ENOSPC || err == EIO
                          ? CacheDiskMode::kReadOnly
                          : mode_,
                      err, "disk write");
        if (mode_ == CacheDiskMode::kReadWrite) {
            logWarn("result cache: cannot write ", tmp_path, ": ",
                    std::strerror(err), "; entry stays memory-only");
        }
        return false;
    }

    const auto fail = [&](const char* op, std::uint64_t* counter) {
        const int saved = errno;
        ++*counter;
        if (fd >= 0)
            ::close(fd);
        ::unlink(tmp_path.c_str());
        degradeLocked(saved == ENOSPC || saved == EIO
                          ? CacheDiskMode::kReadOnly
                          : mode_,
                      saved, op);
        if (mode_ == CacheDiskMode::kReadWrite) {
            logWarn("result cache: ", op, " failed for ", key, ": ",
                    std::strerror(saved), "; entry stays memory-only");
        }
        return false;
    };

    std::size_t off = 0;
    while (off < payload.size()) {
        const ssize_t n =
            ::write(fd, payload.data() + off, payload.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return fail("disk write", &stats_.writeFailures);
        }
        off += static_cast<std::size_t>(n);
    }

    if ((err = faultInjectAt("cache.fsync")) != 0 || ::fsync(fd) != 0) {
        if (err != 0)
            errno = err;
        return fail("disk fsync", &stats_.fsyncFailures);
    }
    if (::close(fd) != 0) {
        fd = -1; // already closed (even on error)
        return fail("disk close", &stats_.writeFailures);
    }
    fd = -1;

    if ((err = faultInjectAt("cache.rename")) != 0 ||
        ::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
        if (err != 0)
            errno = err;
        return fail("disk rename", &stats_.renameFailures);
    }
    return true;
}

void
ResultCache::store(const std::string& key, const std::string& payload)
{
    const std::lock_guard<std::mutex> lock(mu_);
    memory_[key] = payload;
    ++stats_.stores;

    if (diskDir_.empty())
        return;
    if (mode_ != CacheDiskMode::kReadWrite) {
        ++stats_.storesSkippedDegraded;
        return;
    }
    if (!writeDiskEntryLocked(key, payload))
        return;
    touchLocked(key, payload.size());
    evictToFitLocked();
    persistJournalLocked();
}

ResultCacheStats
ResultCache::stats() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::size_t
ResultCache::memoryEntries() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return memory_.size();
}

std::size_t
ResultCache::diskEntries() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return diskIndex_.size();
}

std::uint64_t
ResultCache::diskBytes() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return diskBytes_;
}

CacheDiskMode
ResultCache::diskMode() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return mode_;
}

} // namespace apres
