/**
 * @file
 * Dotted-key string access to every ServeOptions field — the serving
 * layer's mirror of ConfigRegistry (sim/config_registry.hpp).
 *
 * One override path for both front ends:
 *
 *  - CLI sugar:    apres_serve --queue-depth 32
 *  - generic:      apres_serve --set serve.queueDepth=32
 *
 * Parsing is strict (parse.hpp): garbage, wrong types, out-of-range
 * and unknown keys throw SimError(kConfig) with the offending key in
 * the message, never silently ignored. snapshot() serializes the full
 * serving configuration back to strings for logs and diagnostics.
 *
 * The registry holds a reference to the options it was built over and
 * must not outlive them; construction is cheap, so build one on
 * demand.
 */

#ifndef APRES_SERVE_SERVE_CONFIG_HPP
#define APRES_SERVE_SERVE_CONFIG_HPP

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "serve/daemon.hpp"

namespace apres {

/** String-keyed view over one ServeOptions. */
class ServeConfigRegistry
{
  public:
    /** Register every field of @p opts (must outlive the registry). */
    explicit ServeConfigRegistry(ServeOptions& opts);

    /**
     * Set @p key from @p value. Throws SimError(kConfig) on unknown
     * key, parse failure or range violation; the options are
     * untouched in that case.
     */
    void set(const std::string& key, const std::string& value);

    /** Current value of @p key; throws SimError(kConfig) if unknown. */
    std::string get(const std::string& key) const;

    /** All keys, sorted. */
    std::vector<std::string> keys() const;

    /** Full configuration as sorted key -> value strings. */
    std::map<std::string, std::string> snapshot() const;

  private:
    struct Entry
    {
        std::function<void(const std::string&)> set;
        std::function<std::string()> get;
    };

    const Entry& entryFor(const std::string& key) const;

    std::map<std::string, Entry> entries_;
};

} // namespace apres

#endif // APRES_SERVE_SERVE_CONFIG_HPP
