/**
 * @file
 * serve.* key bindings over ServeOptions.
 */

#include "serve_config.hpp"

#include <limits>

#include "common/parse.hpp"
#include "common/sim_error.hpp"

namespace apres {

namespace {

/** Strict u64 in [@p min_value, @p max_value]; throws naming @p key. */
std::uint64_t
parseU64Key(const std::string& key, const std::string& value,
            std::uint64_t min_value, std::uint64_t max_value)
{
    std::uint64_t parsed = 0;
    if (!parseUint64Strict(value, &parsed))
        throwConfigError("serve config key \"" + key +
                         "\": not an unsigned integer: \"" + value +
                         "\"");
    if (parsed < min_value || parsed > max_value) {
        throwConfigError("serve config key \"" + key + "\": value " +
                         value + " out of range [" +
                         std::to_string(min_value) + ", " +
                         std::to_string(max_value) + "]");
    }
    return parsed;
}

} // namespace

ServeConfigRegistry::ServeConfigRegistry(ServeOptions& opts)
{
    const auto bindString = [this](const std::string& key,
                                   std::string& field) {
        entries_[key] = Entry{
            [&field](const std::string& v) { field = v; },
            [&field] { return field; },
        };
    };
    const auto bindInt = [this](const std::string& key, int& field,
                                int min_value, int max_value) {
        entries_[key] = Entry{
            [key, &field, min_value, max_value](const std::string& v) {
                field = static_cast<int>(parseU64Key(
                    key, v, static_cast<std::uint64_t>(min_value),
                    static_cast<std::uint64_t>(max_value)));
            },
            [&field] { return std::to_string(field); },
        };
    };
    const auto bindU64 = [this](const std::string& key,
                                std::uint64_t& field,
                                std::uint64_t min_value,
                                std::uint64_t max_value) {
        entries_[key] = Entry{
            [key, &field, min_value, max_value](const std::string& v) {
                field = parseU64Key(key, v, min_value, max_value);
            },
            [&field] { return std::to_string(field); },
        };
    };

    constexpr std::uint64_t kU64Max =
        std::numeric_limits<std::uint64_t>::max();

    bindString("serve.socket", opts.socketPath);
    bindString("serve.cacheDir", opts.cacheDir);
    bindString("serve.fingerprint", opts.fingerprint);
    bindInt("serve.threads", opts.threads, 0, 4096);
    bindInt("serve.queueDepth", opts.queueDepth, 1, 1 << 20);
    bindInt("serve.dispatchThreads", opts.dispatchThreads, 1, 256);
    bindU64("serve.requestDeadlineMs", opts.requestDeadlineMs, 0,
            kU64Max);
    bindU64("serve.retryAfterMs", opts.retryAfterMs, 1, 3600000);
    bindU64("serve.maxRequestBytes", opts.maxRequestBytes, 1, kU64Max);
    bindU64("serve.ioTimeoutMs", opts.ioTimeoutMs, 0, kU64Max);
    bindU64("serve.cacheMaxBytes", opts.cacheMaxBytes, 0, kU64Max);
    bindU64("serve.cacheMaxEntries", opts.cacheMaxEntries, 0, kU64Max);
}

const ServeConfigRegistry::Entry&
ServeConfigRegistry::entryFor(const std::string& key) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        throwConfigError("unknown serve config key \"" + key +
                         "\" (apres_serve --list-keys)");
    return it->second;
}

void
ServeConfigRegistry::set(const std::string& key, const std::string& value)
{
    entryFor(key).set(value);
}

std::string
ServeConfigRegistry::get(const std::string& key) const
{
    return entryFor(key).get();
}

std::vector<std::string>
ServeConfigRegistry::keys() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [key, entry] : entries_)
        out.push_back(key);
    return out;
}

std::map<std::string, std::string>
ServeConfigRegistry::snapshot() const
{
    std::map<std::string, std::string> out;
    for (const auto& [key, entry] : entries_)
        out.emplace(key, entry.get());
    return out;
}

} // namespace apres
