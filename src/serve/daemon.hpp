/**
 * @file
 * apres_serve: a long-running simulation service over a local socket.
 *
 * The daemon accepts batched run requests as JSON over an AF_UNIX
 * stream socket (protocol.hpp), answers cache hits straight from the
 * two-tier content-addressed ResultCache, and queues the misses
 * across the existing sweep worker pool (SweepRunner in
 * SeedMode::kUseConfigSeed, so a job's identity never depends on its
 * batch position). Every uncached "ok" result is serialized
 * canonically, stored under its content hash, and — on every later
 * request for the same semantic configuration — returned
 * bitwise-identical with zero re-simulation.
 *
 * Framing: one request per connection. The client writes the request
 * document and shuts down its write side; the daemon reads to EOF,
 * responds, and closes.
 *
 * Overload control: the accept loop only admits a connection when the
 * bounded admission queue (serve.queueDepth) has room; otherwise the
 * client gets a typed {"type":"overloaded","retryAfterMs":...} shed
 * response immediately instead of queueing silently. Dispatcher
 * threads (serve.dispatchThreads, default 1 — batch parallelism lives
 * inside the worker pool) drain the queue; a request that waited past
 * serve.requestDeadlineMs is shed the same way without being parsed.
 * Socket reads and writes carry deadlines (serve.ioTimeoutMs) so a
 * slow or half-open client cannot pin a dispatcher, and requests over
 * serve.maxRequestBytes are rejected with a typed RequestTooLarge
 * error. accept() running out of file descriptors (EMFILE/ENFILE)
 * backs off exponentially instead of log-spamming at poll frequency.
 *
 * ServeDaemon::handleRequest is the transport-free core: tests and
 * the socket loop share it, so protocol/cache behavior is exercised
 * without sockets.
 */

#ifndef APRES_SERVE_DAEMON_HPP
#define APRES_SERVE_DAEMON_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"

namespace apres {

/**
 * Daemon configuration. Every field is reachable as a serve.* key
 * through ServeConfigRegistry (serve_config.hpp); the apres_serve
 * flags are sugar over the same keys.
 */
struct ServeOptions
{
    /** Filesystem path of the AF_UNIX listening socket. */
    std::string socketPath;

    /** Persistent cache directory; empty keeps the cache in memory. */
    std::string cacheDir;

    /** Worker threads per batch; <= 0 selects defaultJobCount(). */
    int threads = 0;

    /**
     * Schema fingerprint embedded in every cache key; empty selects
     * serveFingerprint(). Tests flip this to prove invalidation.
     */
    std::string fingerprint;

    /** Admission-queue depth; connections beyond it are shed. */
    int queueDepth = 16;

    /** Threads draining the admission queue. */
    int dispatchThreads = 1;

    /**
     * Maximum time a connection may wait in the queue before it is
     * shed with reason "deadline" instead of served; 0 disables.
     */
    std::uint64_t requestDeadlineMs = 0;

    /** Base of the backlog-scaled retryAfterMs hint in sheds. */
    std::uint64_t retryAfterMs = 250;

    /** Requests larger than this are rejected (RequestTooLarge). */
    std::uint64_t maxRequestBytes = 16ull * 1024 * 1024;

    /** Per-connection socket read/write deadline; 0 disables. */
    std::uint64_t ioTimeoutMs = 10000;

    /** Disk-cache size cap in payload bytes; 0 = unlimited. */
    std::uint64_t cacheMaxBytes = 0;

    /** Disk-cache entry-count cap; 0 = unlimited. */
    std::uint64_t cacheMaxEntries = 0;
};

/** Serving-layer counters (one snapshot; monotonically growing). */
struct ServeLoadStats
{
    std::uint64_t requestsServed = 0;   ///< connections fully handled
    std::uint64_t shedQueueFull = 0;    ///< rejected at admission
    std::uint64_t shedDeadline = 0;     ///< expired waiting in queue
    std::uint64_t shedShutdown = 0;     ///< queued at shutdown
    std::uint64_t rejectedOversize = 0; ///< over maxRequestBytes
    std::uint64_t ioTimeouts = 0;       ///< read/write deadline hit
    std::uint64_t acceptBackoffs = 0;   ///< EMFILE/ENFILE backoff naps
};

class ServeDaemon
{
  public:
    /** Builds the cache (and its directory); does not open sockets. */
    explicit ServeDaemon(ServeOptions options);
    ~ServeDaemon();

    ServeDaemon(const ServeDaemon&) = delete;
    ServeDaemon& operator=(const ServeDaemon&) = delete;

    /**
     * Bind the socket, start the dispatcher pool and the background
     * accept loop. Throws SimError(kConfig) when the socket cannot be
     * bound (stale paths are unlinked first).
     */
    void start();

    /** Stop accepting, join all threads, unlink the socket. Idempotent. */
    void stop();

    /**
     * Ask the accept loop to exit without blocking or allocating —
     * safe from a signal handler. Follow with stop()/wait() to join.
     */
    void requestStop() { stopRequested_.store(true); }

    /** Block until a shutdown request (or stop()) ends the loop. */
    void wait();

    /** True from start() until shutdown/stop. */
    bool running() const { return running_.load(); }

    /**
     * The transport-free request handler: one request document in,
     * one response document out. Malformed requests become
     * {"type":"error", ...} responses; only transport failures and
     * daemon-construction errors throw.
     */
    std::string handleRequest(const std::string& request_json);

    const ResultCache& cache() const { return cache_; }

    /** Serving-layer counters (sheds, rejects, timeouts). */
    ServeLoadStats loadStats() const;

    /**
     * Simulations actually executed since construction — the
     * instrumented counter behind the "zero re-simulation on a warm
     * batch" guarantee (it must not move when every job hits).
     */
    std::uint64_t simulationsRun() const
    {
        return simulations_.load(std::memory_order_relaxed);
    }

    const ServeOptions& options() const { return opts_; }

  private:
    struct PendingConn
    {
        int fd = -1;
        std::chrono::steady_clock::time_point enqueuedAt;
    };

    void acceptLoop();
    void dispatchLoop();
    void handleConnection(int fd);
    std::string handleRun(const ServeRequest& request);

    /** Best-effort typed shed response + close. */
    void shedConnection(int fd, const char* reason);

    /** Backlog-scaled retryAfterMs hint. */
    std::uint64_t retryHintMs() const;

    void joinAll();

    ServeOptions opts_;
    std::string fingerprint_;
    ResultCache cache_;
    std::atomic<std::uint64_t> simulations_{0};
    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};
    int listenFd_ = -1;
    std::thread loop_;

    // Admission queue, fed by the accept loop, drained by dispatchers.
    mutable std::mutex qmu_;
    std::condition_variable qcv_;
    std::deque<PendingConn> queue_;
    bool queueClosed_ = false;
    std::vector<std::thread> dispatchers_;

    std::atomic<std::uint64_t> requestsServed_{0};
    std::atomic<std::uint64_t> shedQueueFull_{0};
    std::atomic<std::uint64_t> shedDeadline_{0};
    std::atomic<std::uint64_t> shedShutdown_{0};
    std::atomic<std::uint64_t> rejectedOversize_{0};
    std::atomic<std::uint64_t> ioTimeouts_{0};
    std::atomic<std::uint64_t> acceptBackoffs_{0};
};

/**
 * Client side: connect to @p socket_path, send @p request_json, shut
 * down the write side and return the daemon's response document.
 * Throws SimError(kConfig) on connection/transport failure.
 */
std::string serveRoundTrip(const std::string& socket_path,
                           const std::string& request_json);

/**
 * Client-side retry policy for serveRoundTripWithRetry: jittered
 * exponential backoff with a bounded budget, honoring the daemon's
 * retryAfterMs hint as a lower bound on every nap.
 */
struct ServeRetryPolicy
{
    /** Retries after the first attempt; 0 = plain serveRoundTrip. */
    int budget = 0;

    /** First backoff nap; doubles per retry (before jitter). */
    std::uint64_t baseMs = 100;

    /** Backoff ceiling. */
    std::uint64_t maxMs = 5000;

    /** Jitter seed; 0 derives one from pid + clock. */
    std::uint64_t seed = 0;
};

/**
 * serveRoundTrip that retries on typed overloaded responses and on
 * transport failures (daemon restarting), sleeping
 * max(retryAfterMs hint, jittered exponential backoff) between
 * attempts. Returns the final response (possibly still "overloaded"
 * when the budget ran out); rethrows the final transport failure.
 * @p attempts_out, when non-null, receives the attempt count.
 */
std::string serveRoundTripWithRetry(const std::string& socket_path,
                                    const std::string& request_json,
                                    const ServeRetryPolicy& policy,
                                    int* attempts_out = nullptr);

} // namespace apres

#endif // APRES_SERVE_DAEMON_HPP
