/**
 * @file
 * apres_serve: a long-running simulation service over a local socket.
 *
 * The daemon accepts batched run requests as JSON over an AF_UNIX
 * stream socket (protocol.hpp), answers cache hits straight from the
 * two-tier content-addressed ResultCache, and queues the misses
 * across the existing sweep worker pool (SweepRunner in
 * SeedMode::kUseConfigSeed, so a job's identity never depends on its
 * batch position). Every uncached "ok" result is serialized
 * canonically, stored under its content hash, and — on every later
 * request for the same semantic configuration — returned
 * bitwise-identical with zero re-simulation.
 *
 * Framing: one request per connection. The client writes the request
 * document and shuts down its write side; the daemon reads to EOF,
 * responds, and closes. Connections are accepted sequentially —
 * parallelism lives inside a batch (the worker pool), which is where
 * the simulation hours are.
 *
 * ServeDaemon::handleRequest is the transport-free core: tests and
 * the socket loop share it, so protocol/cache behavior is exercised
 * without sockets.
 */

#ifndef APRES_SERVE_DAEMON_HPP
#define APRES_SERVE_DAEMON_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"

namespace apres {

/** Daemon configuration. */
struct ServeOptions
{
    /** Filesystem path of the AF_UNIX listening socket. */
    std::string socketPath;

    /** Persistent cache directory; empty keeps the cache in memory. */
    std::string cacheDir;

    /** Worker threads per batch; <= 0 selects defaultJobCount(). */
    int threads = 0;

    /**
     * Schema fingerprint embedded in every cache key; empty selects
     * serveFingerprint(). Tests flip this to prove invalidation.
     */
    std::string fingerprint;
};

class ServeDaemon
{
  public:
    /** Builds the cache (and its directory); does not open sockets. */
    explicit ServeDaemon(ServeOptions options);
    ~ServeDaemon();

    ServeDaemon(const ServeDaemon&) = delete;
    ServeDaemon& operator=(const ServeDaemon&) = delete;

    /**
     * Bind the socket and start the background accept loop. Throws
     * SimError(kConfig) when the socket cannot be bound (stale paths
     * are unlinked first).
     */
    void start();

    /** Stop accepting, join the loop, unlink the socket. Idempotent. */
    void stop();

    /**
     * Ask the accept loop to exit without blocking or allocating —
     * safe from a signal handler. Follow with stop()/wait() to join.
     */
    void requestStop() { stopRequested_.store(true); }

    /** Block until a shutdown request (or stop()) ends the loop. */
    void wait();

    /** True from start() until shutdown/stop. */
    bool running() const { return running_.load(); }

    /**
     * The transport-free request handler: one request document in,
     * one response document out. Malformed requests become
     * {"type":"error", ...} responses; only transport failures and
     * daemon-construction errors throw.
     */
    std::string handleRequest(const std::string& request_json);

    const ResultCache& cache() const { return cache_; }

    /**
     * Simulations actually executed since construction — the
     * instrumented counter behind the "zero re-simulation on a warm
     * batch" guarantee (it must not move when every job hits).
     */
    std::uint64_t simulationsRun() const
    {
        return simulations_.load(std::memory_order_relaxed);
    }

    const ServeOptions& options() const { return opts_; }

  private:
    void acceptLoop();
    void handleConnection(int fd);
    std::string handleRun(const ServeRequest& request);

    ServeOptions opts_;
    std::string fingerprint_;
    ResultCache cache_;
    std::atomic<std::uint64_t> simulations_{0};
    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};
    int listenFd_ = -1;
    std::thread loop_;
};

/**
 * Client side: connect to @p socket_path, send @p request_json, shut
 * down the write side and return the daemon's response document.
 * Throws SimError(kConfig) on connection/transport failure.
 */
std::string serveRoundTrip(const std::string& socket_path,
                           const std::string& request_json);

} // namespace apres

#endif // APRES_SERVE_DAEMON_HPP
