/**
 * @file
 * apres_serve wire protocol: batched run requests and results as
 * JSON, plus the canonical serialization and cache-key anatomy the
 * content-addressed result cache is built on.
 *
 * A request is one JSON object:
 *
 *   {"type": "ping"}                     -> {"type": "pong"}
 *   {"type": "stats"}                    -> cache/executor counters
 *   {"type": "shutdown"}                 -> ack, then the daemon stops
 *   {"type": "run",
 *    "options": {"timeoutSeconds": 5.0, "retries": 1},   (optional)
 *    "jobs": [
 *      {"label": "km-64k",                               (optional)
 *       "workload": "KM", "scale": 1.0,    (or "kernelText": "...")
 *       "overrides": {"l1.sizeBytes": 65536,             (optional)
 *                     "scheduler": "laws"}}, ...]}
 *
 * The run response carries one entry per job, in request order:
 *
 *   {"type": "result",
 *    "fingerprint": "<schema fingerprint>",
 *    "cache": {"memoryHits": 3, "diskHits": 1, "misses": 4, ...},
 *    "simulations": 4,
 *    "runs": [{"label": "km-64k", "key": "<32 hex>", "cached": true,
 *              "result": { ...RunResult document... }}, ...]}
 *
 * Cache-key anatomy — the "result" payload of a job is memoized under
 * contentHash over, in order:
 *
 *   1. the schema fingerprint (serveFingerprint()): stats-schema
 *      version + protocol version; bumping either orphan-invalidates
 *      every existing entry, so results can never leak across
 *      code changes that alter what a RunResult means;
 *   2. the kernel fingerprint: "workload:<name>@<scale>" for named
 *      workloads, "text:<contentHash(kernel text)>" for inline
 *      kernels — kernel identity, not kernel pointer;
 *   3. the *semantic* ConfigRegistry snapshot (sorted key=value
 *      lines). Observation-only keys (sim.trace*, sim.metrics,
 *      sim.audit*, ...) are excluded; see ConfigKeyKind.
 *
 * Only status=="ok" results are cached: errors and timeouts are
 * environmental or diagnostic, and re-running them is the point.
 *
 * Overload control: a daemon whose bounded admission queue is full,
 * or that picks a request off the queue after its queue-wait deadline
 * expired, answers with a typed shed document instead of queueing
 * silently:
 *
 *   {"type": "overloaded", "reason": "queueFull" | "deadline" |
 *    "shutdown", "retryAfterMs": 500}
 *
 * retryAfterMs is the daemon's backlog-scaled hint; well-behaved
 * clients (apres_sim --connect, serveRoundTripWithRetry) honor it as
 * a lower bound on their jittered exponential backoff. Oversized
 * requests (serve.maxRequestBytes) are rejected with
 * {"type":"error","kind":"RequestTooLarge",...} and slow or half-open
 * clients are cut off by the socket deadlines (serve.ioTimeoutMs).
 */

#ifndef APRES_SERVE_PROTOCOL_HPP
#define APRES_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json_value.hpp"
#include "sim/gpu.hpp"

namespace apres {

/**
 * Version of the RunResult stats schema + wire protocol. Bump
 * whenever serialized results change meaning (new/renamed stats,
 * changed config keys, changed serialization): the fingerprint is
 * part of every cache key, so a bump invalidates all cached entries
 * at once instead of serving stale documents.
 */
inline constexpr const char* kStatsSchemaVersion = "apres-results-v1";

/**
 * The fingerprint cache keys embed: kStatsSchemaVersion, unless the
 * APRES_SERVE_FINGERPRINT environment variable overrides it (tests
 * and operators use the override to force whole-cache invalidation).
 */
std::string serveFingerprint();

/** One job of a batched run request. */
struct ServeJobSpec
{
    std::string label;      ///< defaults to the workload name
    std::string workload;   ///< Table IV abbreviation; empty for text
    double scale = 1.0;     ///< workload trip-count multiplier
    std::string kernelText; ///< declarative .kt text; empty for named

    /** Dotted config keys -> value strings, applied over defaults. */
    std::vector<std::pair<std::string, std::string>> overrides;
};

/** A parsed request. */
struct ServeRequest
{
    enum class Type { kPing, kStats, kShutdown, kRun };
    Type type = Type::kPing;

    std::vector<ServeJobSpec> jobs; ///< kRun only
    double timeoutSeconds = 0.0;    ///< kRun option
    int retries = 0;                ///< kRun option
};

/**
 * Parse one request document. Throws SimError(kSerialization) on
 * malformed JSON or protocol shape, SimError(kConfig) on bad option
 * values — either way the daemon answers with an error response
 * instead of running anything.
 */
ServeRequest parseServeRequest(const std::string& text);

/** Serialize @p job back to its request JSON (client side). */
void writeServeJob(class JsonWriter& json, const ServeJobSpec& job);

/**
 * Kernel identity for cache keys: "workload:<name>@<scale>" or
 * "text:<contentHash(kernel text)>".
 */
std::string kernelFingerprint(const ServeJobSpec& job);

/**
 * The content-addressed cache key of one job: contentHash over the
 * schema fingerprint, the kernel fingerprint and the semantic config
 * snapshot (see the anatomy above). 32 lowercase hex chars.
 */
std::string computeCacheKey(
    const std::string& fingerprint, const std::string& kernel_fp,
    const std::map<std::string, std::string>& semantic_config);

/**
 * Canonical serialization of one RunResult: a complete JSON object
 * (completed/status/error, echoed config, flattened stats) with
 * canonical doubles, suitable both as a response payload and as the
 * bitwise-stable cached document.
 */
std::string serializeRunResult(const RunResult& result);

/** {"type":"error","kind":...,"detail":...} */
std::string errorResponse(const std::string& kind,
                          const std::string& detail);

/**
 * The typed shed document: {"type":"overloaded","reason":...,
 * "retryAfterMs":...}. @p reason is "queueFull", "deadline" or
 * "shutdown".
 */
std::string overloadedResponse(const std::string& reason,
                               std::uint64_t retry_after_ms);

} // namespace apres

#endif // APRES_SERVE_PROTOCOL_HPP
