/**
 * @file
 * Two-tier content-addressed result cache with bounded, crash-safe
 * persistence.
 *
 * Tier 1 is an in-process map (hot keys answer without touching the
 * filesystem); tier 2 is a directory of "<key>.json" files that
 * survives daemon restarts, so many clients sweeping overlapping
 * design spaces share one warm cache across sessions. Keys are
 * content hashes (protocol.hpp documents their anatomy), values are
 * the canonical serialized RunResult documents — the cache returns
 * the stored bytes verbatim, which is what makes repeated requests
 * bitwise-identical to the run that produced them.
 *
 * The disk tier is bounded and self-repairing:
 *
 *  - Size/entry caps (CacheLimits) with LRU eviction. Recency lives
 *    in an access-order journal ("journal.lru", one key per line,
 *    oldest first) persisted with the same atomic temp+rename
 *    discipline as the entries, so eviction order survives restarts.
 *  - A startup scrub walks the directory before serving: orphaned
 *    temp files from a crashed writer are deleted, zero-length and
 *    truncated/corrupt entries are repaired away, and every repair is
 *    counted in stats (scrubOrphanTmps / scrubCorruptEntries).
 *  - Entry writes go through open/write/fsync/rename with every
 *    failure counted (writeFailures / fsyncFailures / renameFailures)
 *    instead of silently losing the entry — the payload always stays
 *    served from the memory tier.
 *  - Resource exhaustion degrades instead of failing requests: the
 *    first ENOSPC/EIO on the write path drops the disk tier to
 *    read-only (existing entries still serve, nothing new persists);
 *    an EIO on the read path drops it to memory-only. The ladder is
 *    one-way per process and counted in stats.degradations.
 *
 * Caching is sound because a simulation is a pure function of its
 * semantic configuration (bitwise determinism pinned by the
 * ff-equivalence and sweep-determinism suites), and stale entries
 * cannot leak across code changes because every key embeds the
 * stats-schema fingerprint.
 *
 * Thread safety: all operations are serialized by one internal mutex;
 * the payloads are immutable once stored.
 */

#ifndef APRES_SERVE_RESULT_CACHE_HPP
#define APRES_SERVE_RESULT_CACHE_HPP

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace apres {

/** Disk-tier bounds; 0 means unlimited. */
struct CacheLimits
{
    std::uint64_t maxBytes = 0;   ///< total payload bytes on disk
    std::uint64_t maxEntries = 0; ///< number of disk entries
};

/**
 * The degradation ladder, in order. Transitions are one-way: a cache
 * never silently re-arms a tier the environment just proved broken.
 */
enum class CacheDiskMode {
    kReadWrite,  ///< normal: disk tier reads and persists
    kReadOnly,   ///< write path failed (ENOSPC/EIO): serve, don't store
    kMemoryOnly, ///< read path failed (EIO) or no directory configured
};

/** Stable lowercase name ("readWrite", "readOnly", "memoryOnly"). */
const char* cacheDiskModeName(CacheDiskMode mode);

/** Hit/miss counters (one snapshot; monotonically growing). */
struct ResultCacheStats
{
    std::uint64_t memoryHits = 0;
    std::uint64_t diskHits = 0;  ///< found on disk, promoted to memory
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t invalidDiskEntries = 0; ///< corrupt files discarded

    std::uint64_t evictions = 0;     ///< disk entries evicted by caps
    std::uint64_t evictedBytes = 0;  ///< payload bytes reclaimed

    std::uint64_t writeFailures = 0;  ///< open/write/close failures
    std::uint64_t fsyncFailures = 0;  ///< fsync failures before publish
    std::uint64_t renameFailures = 0; ///< atomic-publish rename failures

    std::uint64_t scrubOrphanTmps = 0;     ///< startup: temp files removed
    std::uint64_t scrubCorruptEntries = 0; ///< startup: bad entries removed

    std::uint64_t degradations = 0;          ///< ladder transitions taken
    std::uint64_t storesSkippedDegraded = 0; ///< stores not persisted

    std::uint64_t hits() const { return memoryHits + diskHits; }
};

class ResultCache
{
  public:
    /**
     * @param disk_dir  directory for the persistent tier (created on
     *                  demand); empty string keeps the cache
     *                  memory-only.
     * @param limits    disk-tier caps; enforced by LRU eviction.
     * Throws SimError(kConfig) when the directory cannot be created.
     * Construction scrubs the directory (see the file comment).
     */
    explicit ResultCache(std::string disk_dir = "",
                         CacheLimits limits = {});

    /** Persists the access journal when it has unsaved recency. */
    ~ResultCache();

    ResultCache(const ResultCache&) = delete;
    ResultCache& operator=(const ResultCache&) = delete;

    /**
     * Fetch the payload stored under @p key, consulting memory first,
     * then disk (a disk hit is promoted into memory). A disk entry
     * that fails JSON validation is deleted and counted as
     * invalidDiskEntries, then reported as a miss — a corrupt file
     * must never be spliced into a response. An I/O error reading the
     * disk tier degrades it to memory-only and reports a miss.
     */
    std::optional<std::string> lookup(const std::string& key);

    /**
     * Store @p payload (a complete JSON document) under @p key in
     * both tiers. The disk write is atomic and durable (temp file +
     * fsync + rename), so a crashed daemon never leaves a half-written
     * entry behind; write-path failures are counted and — on
     * ENOSPC/EIO — degrade the disk tier to read-only.
     */
    void store(const std::string& key, const std::string& payload);

    ResultCacheStats stats() const;

    /** Entries currently resident in the memory tier. */
    std::size_t memoryEntries() const;

    /** Entries currently accounted on disk. */
    std::size_t diskEntries() const;

    /** Payload bytes currently accounted on disk. */
    std::uint64_t diskBytes() const;

    /** Current rung of the degradation ladder. */
    CacheDiskMode diskMode() const;

    const std::string& diskDir() const { return diskDir_; }
    const CacheLimits& limits() const { return limits_; }

  private:
    std::string diskPath(const std::string& key) const;
    std::string journalPath() const;

    /** Startup: repair the directory and rebuild the LRU index. */
    void scrubLocked();

    /** Record @p key as most recently used (inserting if new). */
    void touchLocked(const std::string& key, std::uint64_t bytes);

    /** Drop @p key from the LRU index (file already handled). */
    void forgetLocked(const std::string& key);

    /** Evict oldest entries until the caps are satisfied. */
    void evictToFitLocked();

    /** Atomically rewrite the access journal when dirty. */
    void persistJournalLocked();

    /** open/write/fsync/rename one entry; false on any failure. */
    bool writeDiskEntryLocked(const std::string& key,
                              const std::string& payload);

    /** Take the ladder down to @p target (one-way; counted). */
    void degradeLocked(CacheDiskMode target, int err, const char* op);

    const std::string diskDir_; ///< empty = memory-only
    const CacheLimits limits_;
    mutable std::mutex mu_;
    std::unordered_map<std::string, std::string> memory_;
    ResultCacheStats stats_;

    CacheDiskMode mode_ = CacheDiskMode::kReadWrite;

    /** Disk-entry recency: oldest at front, newest at back. */
    std::list<std::string> lru_;
    struct DiskEntry
    {
        std::list<std::string>::iterator lruIt;
        std::uint64_t bytes = 0;
    };
    std::unordered_map<std::string, DiskEntry> diskIndex_;
    std::uint64_t diskBytes_ = 0;
    bool journalDirty_ = false;
};

} // namespace apres

#endif // APRES_SERVE_RESULT_CACHE_HPP
