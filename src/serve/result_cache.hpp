/**
 * @file
 * Two-tier content-addressed result cache.
 *
 * Tier 1 is an in-process map (hot keys answer without touching the
 * filesystem); tier 2 is a directory of "<key>.json" files that
 * survives daemon restarts, so many clients sweeping overlapping
 * design spaces share one warm cache across sessions. Keys are
 * content hashes (protocol.hpp documents their anatomy), values are
 * the canonical serialized RunResult documents — the cache returns
 * the stored bytes verbatim, which is what makes repeated requests
 * bitwise-identical to the run that produced them.
 *
 * Caching is sound because a simulation is a pure function of its
 * semantic configuration (bitwise determinism pinned by the
 * ff-equivalence and sweep-determinism suites), and stale entries
 * cannot leak across code changes because every key embeds the
 * stats-schema fingerprint.
 *
 * Thread safety: all operations are serialized by one internal mutex;
 * the payloads are immutable once stored.
 */

#ifndef APRES_SERVE_RESULT_CACHE_HPP
#define APRES_SERVE_RESULT_CACHE_HPP

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace apres {

/** Hit/miss counters (one snapshot; monotonically growing). */
struct ResultCacheStats
{
    std::uint64_t memoryHits = 0;
    std::uint64_t diskHits = 0;  ///< found on disk, promoted to memory
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t invalidDiskEntries = 0; ///< corrupt files discarded

    std::uint64_t hits() const { return memoryHits + diskHits; }
};

class ResultCache
{
  public:
    /**
     * @param disk_dir  directory for the persistent tier (created on
     *                  demand); empty string keeps the cache
     *                  memory-only.
     * Throws SimError(kConfig) when the directory cannot be created.
     */
    explicit ResultCache(std::string disk_dir = "");

    /**
     * Fetch the payload stored under @p key, consulting memory first,
     * then disk (a disk hit is promoted into memory). A disk entry
     * that fails JSON validation is deleted and counted as
     * invalidDiskEntries, then reported as a miss — a corrupt file
     * must never be spliced into a response.
     */
    std::optional<std::string> lookup(const std::string& key);

    /**
     * Store @p payload (a complete JSON document) under @p key in
     * both tiers. The disk write is atomic (temp file + rename), so a
     * crashed daemon never leaves a half-written entry behind.
     */
    void store(const std::string& key, const std::string& payload);

    ResultCacheStats stats() const;

    /** Entries currently resident in the memory tier. */
    std::size_t memoryEntries() const;

    const std::string& diskDir() const { return diskDir_; }

  private:
    std::string diskPath(const std::string& key) const;

    const std::string diskDir_; ///< empty = memory-only
    mutable std::mutex mu_;
    std::unordered_map<std::string, std::string> memory_;
    ResultCacheStats stats_;
};

} // namespace apres

#endif // APRES_SERVE_RESULT_CACHE_HPP
