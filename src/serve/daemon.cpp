/**
 * @file
 * Daemon implementation: socket loop + batch handling over the
 * result cache and the sweep worker pool.
 */

#include "daemon.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/json.hpp"
#include "common/log.hpp"
#include "common/sim_error.hpp"
#include "isa/kernel_text.hpp"
#include "sim/config_registry.hpp"
#include "sim/runner.hpp"
#include "workloads/workload.hpp"

namespace apres {

namespace {

/** Wrap errno into a config-kind SimError with a prefix. */
[[noreturn]] void
throwErrno(const std::string& what)
{
    throwConfigError(what + ": " + std::strerror(errno));
}

sockaddr_un
socketAddress(const std::string& path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path)
        throwConfigError("socket path too long (max " +
                         std::to_string(sizeof addr.sun_path - 1) +
                         " bytes): " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

/** Read until EOF (the peer shut down its write side). */
std::string
readAll(int fd)
{
    std::string out;
    char buf[16384];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("read");
        }
        if (n == 0)
            return out;
        out.append(buf, static_cast<std::size_t>(n));
    }
}

void
writeAll(int fd, const std::string& text)
{
    std::size_t off = 0;
    while (off < text.size()) {
        const ssize_t n =
            ::write(fd, text.data() + off, text.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("write");
        }
        off += static_cast<std::size_t>(n);
    }
}

/** {"type":"error","kind":...,"detail":...} */
std::string
errorResponse(const std::string& kind, const std::string& detail)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.field("type", "error");
    json.field("kind", kind);
    json.field("detail", detail);
    json.endObject();
    json.finish();
    return os.str();
}

bool
knownWorkload(const std::string& name)
{
    const auto& names = allWorkloadNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

/** Per-job batch bookkeeping. */
struct BatchEntry
{
    std::string key;      ///< cache key; empty when the job is invalid
    std::string payload;  ///< serialized result (hit or fresh)
    bool cached = false;
    std::size_t runIndex = static_cast<std::size_t>(-1); ///< miss slot
};

} // namespace

ServeDaemon::ServeDaemon(ServeOptions options)
    : opts_(std::move(options)),
      fingerprint_(opts_.fingerprint.empty() ? serveFingerprint()
                                             : opts_.fingerprint),
      cache_(opts_.cacheDir)
{
}

ServeDaemon::~ServeDaemon()
{
    stop();
}

void
ServeDaemon::start()
{
    if (running_.load())
        fatal("ServeDaemon::start called twice");
    if (opts_.socketPath.empty())
        throwConfigError("apres_serve: no socket path configured");

    const sockaddr_un addr = socketAddress(opts_.socketPath);
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throwErrno("socket");
    // A stale socket file from a dead daemon would make bind fail;
    // unlink first (a live daemon on the path will still conflict at
    // connect time, which is the better failure mode).
    ::unlink(opts_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
        const int saved = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        errno = saved;
        throwErrno("bind " + opts_.socketPath);
    }
    if (::listen(listenFd_, 64) != 0) {
        const int saved = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        errno = saved;
        throwErrno("listen " + opts_.socketPath);
    }

    stopRequested_.store(false);
    running_.store(true);
    loop_ = std::thread([this] { acceptLoop(); });
}

void
ServeDaemon::stop()
{
    stopRequested_.store(true);
    if (loop_.joinable())
        loop_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(opts_.socketPath.c_str());
    }
    running_.store(false);
}

void
ServeDaemon::wait()
{
    if (loop_.joinable())
        loop_.join();
}

void
ServeDaemon::acceptLoop()
{
    while (!stopRequested_.load()) {
        // Poll with a timeout so a stop()/shutdown request is noticed
        // even when no client ever connects.
        pollfd pfd{listenFd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200 /* ms */);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            logWarn("apres_serve: poll failed: ", std::strerror(errno));
            break;
        }
        if (ready == 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            logWarn("apres_serve: accept failed: ", std::strerror(errno));
            continue;
        }
        handleConnection(fd);
        ::close(fd);
    }
    running_.store(false);
}

void
ServeDaemon::handleConnection(int fd)
{
    std::string response;
    try {
        const std::string request = readAll(fd);
        response = handleRequest(request);
    } catch (const SimError& e) {
        response = errorResponse(e.kindName(), e.detail());
    } catch (const std::exception& e) {
        response = errorResponse("InternalError", e.what());
    }
    try {
        writeAll(fd, response);
    } catch (const SimError& e) {
        logWarn("apres_serve: client went away mid-response: ",
                e.detail());
    }
}

std::string
ServeDaemon::handleRequest(const std::string& request_json)
{
    ServeRequest request;
    try {
        request = parseServeRequest(request_json);
    } catch (const SimError& e) {
        return errorResponse(e.kindName(), e.detail());
    }

    std::ostringstream os;
    JsonWriter json(os);
    switch (request.type) {
      case ServeRequest::Type::kPing:
        json.beginObject();
        json.field("type", "pong");
        json.field("fingerprint", fingerprint_);
        json.endObject();
        json.finish();
        return os.str();

      case ServeRequest::Type::kStats: {
        const ResultCacheStats stats = cache_.stats();
        json.beginObject();
        json.field("type", "stats");
        json.field("fingerprint", fingerprint_);
        json.beginObject("cache");
        json.field("memoryHits", stats.memoryHits);
        json.field("diskHits", stats.diskHits);
        json.field("misses", stats.misses);
        json.field("stores", stats.stores);
        json.field("invalidDiskEntries", stats.invalidDiskEntries);
        json.field("memoryEntries",
                   static_cast<std::uint64_t>(cache_.memoryEntries()));
        json.endObject();
        json.field("simulations", simulationsRun());
        json.endObject();
        json.finish();
        return os.str();
      }

      case ServeRequest::Type::kShutdown:
        stopRequested_.store(true);
        json.beginObject();
        json.field("type", "bye");
        json.endObject();
        json.finish();
        return os.str();

      case ServeRequest::Type::kRun:
        return handleRun(request);
    }
    return errorResponse("InternalError", "unreachable request type");
}

std::string
ServeDaemon::handleRun(const ServeRequest& request)
{
    std::vector<BatchEntry> entries(request.jobs.size());

    // Phase 1: resolve each job to a cache key and try the cache.
    // Invalid jobs (bad override, unknown workload, malformed kernel
    // text) become error payloads immediately — they are never keyed,
    // cached or executed.
    RunnerOptions runner_opts;
    runner_opts.threads = opts_.threads;
    runner_opts.seedMode = SeedMode::kUseConfigSeed;
    runner_opts.keepGoing = true; // errors become rows, batch completes
    runner_opts.retries = request.retries;
    runner_opts.jobTimeoutSeconds = request.timeoutSeconds;
    SweepRunner runner(runner_opts);
    std::vector<std::size_t> missEntry; // runner index -> entry index

    for (std::size_t i = 0; i < request.jobs.size(); ++i) {
        const ServeJobSpec& spec = request.jobs[i];
        BatchEntry& entry = entries[i];
        try {
            SweepJob job;
            job.label = spec.label;
            ConfigRegistry registry(job.config);
            for (const auto& [key, value] : spec.overrides)
                registry.set(key, value);

            std::shared_ptr<const Kernel> kernel;
            if (!spec.kernelText.empty()) {
                kernel = std::make_shared<const Kernel>(
                    parseKernelText(spec.kernelText));
            } else {
                if (!knownWorkload(spec.workload))
                    throwConfigError("unknown workload \"" +
                                     spec.workload + "\"");
                kernel = std::make_shared<const Kernel>(
                    makeWorkload(spec.workload, spec.scale).kernel);
            }
            job.kernel = std::move(kernel);

            entry.key = computeCacheKey(fingerprint_,
                                        kernelFingerprint(spec),
                                        registry.semanticSnapshot());
            if (std::optional<std::string> hit = cache_.lookup(entry.key)) {
                entry.cached = true;
                entry.payload = std::move(*hit);
            } else {
                entry.runIndex = runner.submit(std::move(job));
                missEntry.push_back(i);
            }
        } catch (const SimError& e) {
            RunResult r;
            r.status = "error";
            r.errorKind = e.kindName();
            r.errorDetail = e.detail();
            entry.payload = serializeRunResult(r);
        }
    }

    // Phase 2: simulate the misses across the worker pool.
    if (runner.size() > 0) {
        simulations_.fetch_add(runner.size(), std::memory_order_relaxed);
        const std::vector<SweepResult> results = runner.runAll();
        for (std::size_t m = 0; m < missEntry.size(); ++m) {
            BatchEntry& entry = entries[missEntry[m]];
            const RunResult& r = results[entry.runIndex].result;
            entry.payload = serializeRunResult(r);
            // Only clean results are memoized: an error or timeout is
            // environmental/diagnostic and must re-run next time.
            if (r.status == "ok")
                cache_.store(entry.key, entry.payload);
        }
    }

    // Phase 3: assemble the response; cached payloads are spliced
    // verbatim so repeated requests stay bitwise identical.
    const ResultCacheStats stats = cache_.stats();
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.field("type", "result");
    json.field("fingerprint", fingerprint_);
    json.beginObject("cache");
    json.field("memoryHits", stats.memoryHits);
    json.field("diskHits", stats.diskHits);
    json.field("misses", stats.misses);
    json.endObject();
    json.field("simulations", simulationsRun());
    json.beginArray("runs");
    for (std::size_t i = 0; i < entries.size(); ++i) {
        json.beginObject();
        json.field("label", request.jobs[i].label);
        if (!entries[i].key.empty())
            json.field("key", entries[i].key);
        json.field("cached", entries[i].cached);
        json.raw("result", entries[i].payload);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    json.finish();
    return os.str();
}

std::string
serveRoundTrip(const std::string& socket_path,
               const std::string& request_json)
{
    const sockaddr_un addr = socketAddress(socket_path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throwErrno("connect " + socket_path);
    }
    try {
        writeAll(fd, request_json);
        if (::shutdown(fd, SHUT_WR) != 0)
            throwErrno("shutdown");
        std::string response = readAll(fd);
        ::close(fd);
        return response;
    } catch (...) {
        ::close(fd);
        throw;
    }
}

} // namespace apres
