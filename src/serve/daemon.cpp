/**
 * @file
 * Daemon implementation: overload-controlled socket plumbing (bounded
 * admission queue, dispatcher pool, deadlines, typed sheds) + batch
 * handling over the result cache and the sweep worker pool.
 */

#include "daemon.hpp"

#include <algorithm>
#include <cstring>
#include <random>
#include <sstream>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/fault_inject.hpp"
#include "common/json.hpp"
#include "common/json_value.hpp"
#include "common/log.hpp"
#include "common/sim_error.hpp"
#include "isa/kernel_text.hpp"
#include "sim/config_registry.hpp"
#include "sim/runner.hpp"
#include "workloads/workload.hpp"

namespace apres {

namespace {

using Clock = std::chrono::steady_clock;

/** Wrap errno into a config-kind SimError with a prefix. */
[[noreturn]] void
throwErrno(const std::string& what)
{
    throwConfigError(what + ": " + std::strerror(errno));
}

sockaddr_un
socketAddress(const std::string& path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path)
        throwConfigError("socket path too long (max " +
                         std::to_string(sizeof addr.sun_path - 1) +
                         " bytes): " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

/** Client side: read until EOF (the peer shut down its write side). */
std::string
readAll(int fd)
{
    std::string out;
    char buf[16384];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("read");
        }
        if (n == 0)
            return out;
        out.append(buf, static_cast<std::size_t>(n));
    }
}

/**
 * Write all of @p text. MSG_NOSIGNAL: a peer that hung up turns into
 * an EPIPE error instead of a process-killing SIGPIPE.
 */
void
writeAll(int fd, const std::string& text)
{
    std::size_t off = 0;
    while (off < text.size()) {
        const ssize_t n = ::send(fd, text.data() + off,
                                 text.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("write");
        }
        off += static_cast<std::size_t>(n);
    }
}

/** Arm SO_RCVTIMEO/SO_SNDTIMEO for the next blocking call. */
void
armSocketTimeout(int fd, int option, std::uint64_t ms)
{
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof tv);
}

enum class ReadOutcome { kOk, kTooLarge, kTimeout, kError };

/**
 * Daemon side: read one request to EOF under a total deadline and a
 * size limit. An oversized request keeps being drained (discarded)
 * until EOF so the client can finish writing and still receive the
 * typed reject, but nothing past the limit is buffered.
 */
ReadOutcome
readRequest(int fd, std::uint64_t max_bytes, std::uint64_t timeout_ms,
            std::string* out, int* err_out)
{
    *err_out = 0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    bool too_large = false;
    char buf[16384];
    for (;;) {
        if (const int injected = faultInjectAt("socket.read")) {
            *err_out = injected;
            return injected == EAGAIN ? ReadOutcome::kTimeout
                                      : ReadOutcome::kError;
        }
        if (timeout_ms > 0) {
            const auto remaining =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
            if (remaining <= 0)
                return ReadOutcome::kTimeout;
            armSocketTimeout(
                fd, SO_RCVTIMEO,
                static_cast<std::uint64_t>(remaining));
        }
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return ReadOutcome::kTimeout;
            *err_out = errno;
            return ReadOutcome::kError;
        }
        if (n == 0)
            return too_large ? ReadOutcome::kTooLarge : ReadOutcome::kOk;
        if (!too_large) {
            out->append(buf, static_cast<std::size_t>(n));
            if (out->size() > max_bytes) {
                too_large = true;
                out->clear();
            }
        }
    }
}

/**
 * Daemon side: write one response under a total deadline. Returns
 * kOk, kTimeout or kError (the connection is torn down either way).
 */
ReadOutcome
writeResponse(int fd, const std::string& text, std::uint64_t timeout_ms,
              int* err_out)
{
    *err_out = 0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    std::size_t off = 0;
    while (off < text.size()) {
        if (const int injected = faultInjectAt("socket.write")) {
            *err_out = injected;
            return injected == EAGAIN ? ReadOutcome::kTimeout
                                      : ReadOutcome::kError;
        }
        if (timeout_ms > 0) {
            const auto remaining =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
            if (remaining <= 0)
                return ReadOutcome::kTimeout;
            armSocketTimeout(
                fd, SO_SNDTIMEO,
                static_cast<std::uint64_t>(remaining));
        }
        const ssize_t n = ::send(fd, text.data() + off,
                                 text.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return ReadOutcome::kTimeout;
            *err_out = errno;
            return ReadOutcome::kError;
        }
        off += static_cast<std::size_t>(n);
    }
    return ReadOutcome::kOk;
}

bool
knownWorkload(const std::string& name)
{
    const auto& names = allWorkloadNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

/** Per-job batch bookkeeping. */
struct BatchEntry
{
    std::string key;      ///< cache key; empty when the job is invalid
    std::string payload;  ///< serialized result (hit or fresh)
    bool cached = false;
    std::size_t runIndex = static_cast<std::size_t>(-1); ///< miss slot
};

} // namespace

ServeDaemon::ServeDaemon(ServeOptions options)
    : opts_(std::move(options)),
      fingerprint_(opts_.fingerprint.empty() ? serveFingerprint()
                                             : opts_.fingerprint),
      cache_(opts_.cacheDir,
             CacheLimits{opts_.cacheMaxBytes, opts_.cacheMaxEntries})
{
}

ServeDaemon::~ServeDaemon()
{
    stop();
}

void
ServeDaemon::start()
{
    if (running_.load())
        fatal("ServeDaemon::start called twice");
    if (opts_.socketPath.empty())
        throwConfigError("apres_serve: no socket path configured");

    const sockaddr_un addr = socketAddress(opts_.socketPath);
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throwErrno("socket");
    // A stale socket file from a dead daemon would make bind fail;
    // unlink first (a live daemon on the path will still conflict at
    // connect time, which is the better failure mode).
    ::unlink(opts_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
        const int saved = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        errno = saved;
        throwErrno("bind " + opts_.socketPath);
    }
    if (::listen(listenFd_, 64) != 0) {
        const int saved = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        errno = saved;
        throwErrno("listen " + opts_.socketPath);
    }

    stopRequested_.store(false);
    {
        const std::lock_guard<std::mutex> lock(qmu_);
        queueClosed_ = false;
    }
    running_.store(true);
    const int dispatchers = std::max(1, opts_.dispatchThreads);
    dispatchers_.reserve(static_cast<std::size_t>(dispatchers));
    for (int i = 0; i < dispatchers; ++i)
        dispatchers_.emplace_back([this] { dispatchLoop(); });
    loop_ = std::thread([this] { acceptLoop(); });
}

void
ServeDaemon::joinAll()
{
    if (loop_.joinable())
        loop_.join();
    {
        const std::lock_guard<std::mutex> lock(qmu_);
        queueClosed_ = true;
    }
    qcv_.notify_all();
    for (std::thread& t : dispatchers_) {
        if (t.joinable())
            t.join();
    }
    dispatchers_.clear();
}

void
ServeDaemon::stop()
{
    stopRequested_.store(true);
    joinAll();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(opts_.socketPath.c_str());
    }
    running_.store(false);
}

void
ServeDaemon::wait()
{
    joinAll();
}

std::uint64_t
ServeDaemon::retryHintMs() const
{
    std::size_t backlog;
    {
        const std::lock_guard<std::mutex> lock(qmu_);
        backlog = queue_.size();
    }
    const std::uint64_t hint =
        opts_.retryAfterMs * (1 + static_cast<std::uint64_t>(backlog));
    return std::min<std::uint64_t>(hint, 30000);
}

void
ServeDaemon::shedConnection(int fd, const char* reason)
{
    const std::string response =
        overloadedResponse(reason, retryHintMs());
    int err = 0;
    // Short deadline: a shed exists to protect the daemon; a client
    // too slow to take the hint is not worth waiting for.
    const std::uint64_t deadline_ms =
        opts_.ioTimeoutMs > 0 ? std::min<std::uint64_t>(
                                    opts_.ioTimeoutMs, 1000)
                              : 1000;
    (void)writeResponse(fd, response, deadline_ms, &err);
    ::shutdown(fd, SHUT_WR);
    // Drain (discard) whatever request the client is still writing so
    // it never sees EPIPE before it can read the shed document; the
    // same deadline bounds a client that never finishes.
    const Clock::time_point drain_deadline =
        Clock::now() + std::chrono::milliseconds(deadline_ms);
    char scratch[4096];
    for (;;) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                drain_deadline - Clock::now())
                .count();
        if (remaining <= 0)
            break;
        armSocketTimeout(fd, SO_RCVTIMEO,
                         static_cast<std::uint64_t>(remaining));
        const ssize_t n = ::read(fd, scratch, sizeof scratch);
        if (n > 0)
            continue;
        if (n < 0 && errno == EINTR)
            continue;
        break; // EOF, timeout or error: done either way
    }
    ::close(fd);
}

void
ServeDaemon::acceptLoop()
{
    // EMFILE/ENFILE backoff state: fd exhaustion is an environmental
    // episode, not a per-iteration event — log it once and nap with
    // exponential growth instead of spamming at poll frequency.
    std::uint64_t fdBackoffMs = 0;
    bool fdEpisodeLogged = false;

    while (!stopRequested_.load()) {
        // Poll with a timeout so a stop()/shutdown request is noticed
        // even when no client ever connects.
        pollfd pfd{listenFd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200 /* ms */);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            logWarn("apres_serve: poll failed: ", std::strerror(errno));
            break;
        }
        if (ready == 0)
            continue;

        int err = faultInjectAt("socket.accept");
        int fd = -1;
        if (err == 0) {
            fd = ::accept(listenFd_, nullptr, nullptr);
            if (fd < 0)
                err = errno;
        }
        if (fd < 0) {
            if (err == EINTR)
                continue;
            if (err == EMFILE || err == ENFILE || err == ENOMEM ||
                err == ENOBUFS) {
                if (!fdEpisodeLogged) {
                    logWarn("apres_serve: accept failed (",
                            std::strerror(err),
                            "); backing off until descriptors free up");
                    fdEpisodeLogged = true;
                }
                fdBackoffMs = std::min<std::uint64_t>(
                    fdBackoffMs == 0 ? 25 : fdBackoffMs * 2, 1000);
                acceptBackoffs_.fetch_add(1,
                                          std::memory_order_relaxed);
                // Nap in slices so a stop request stays responsive.
                for (std::uint64_t slept = 0;
                     slept < fdBackoffMs && !stopRequested_.load();
                     slept += 25) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(25));
                }
                continue;
            }
            logWarn("apres_serve: accept failed: ", std::strerror(err));
            continue;
        }
        if (fdEpisodeLogged)
            logWarn("apres_serve: accept recovered");
        fdBackoffMs = 0;
        fdEpisodeLogged = false;

        // Admission control: a full queue sheds immediately with a
        // typed response instead of queueing without bound.
        bool admitted = false;
        {
            const std::lock_guard<std::mutex> lock(qmu_);
            if (static_cast<int>(queue_.size()) <
                std::max(1, opts_.queueDepth)) {
                queue_.push_back({fd, Clock::now()});
                admitted = true;
            }
        }
        if (admitted) {
            qcv_.notify_one();
        } else {
            shedQueueFull_.fetch_add(1, std::memory_order_relaxed);
            shedConnection(fd, "queueFull");
        }
    }
    {
        const std::lock_guard<std::mutex> lock(qmu_);
        queueClosed_ = true;
    }
    qcv_.notify_all();
    running_.store(false);
}

void
ServeDaemon::dispatchLoop()
{
    for (;;) {
        PendingConn conn;
        bool closed = false;
        {
            std::unique_lock<std::mutex> lk(qmu_);
            qcv_.wait(lk, [this] {
                return queueClosed_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // closed and drained
            conn = queue_.front();
            queue_.pop_front();
            closed = queueClosed_;
        }
        if (closed) {
            // Shutting down: shed the backlog instead of serving it —
            // a queued simulation batch could hold the stop for
            // minutes.
            shedShutdown_.fetch_add(1, std::memory_order_relaxed);
            shedConnection(conn.fd, "shutdown");
            continue;
        }
        if (opts_.requestDeadlineMs > 0) {
            const auto waited =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    Clock::now() - conn.enqueuedAt)
                    .count();
            if (waited > static_cast<long long>(
                             opts_.requestDeadlineMs)) {
                shedDeadline_.fetch_add(1, std::memory_order_relaxed);
                shedConnection(conn.fd, "deadline");
                continue;
            }
        }
        handleConnection(conn.fd);
        ::close(conn.fd);
        requestsServed_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
ServeDaemon::handleConnection(int fd)
{
    std::string response;
    try {
        std::string request;
        int err = 0;
        switch (readRequest(fd, opts_.maxRequestBytes, opts_.ioTimeoutMs,
                            &request, &err)) {
          case ReadOutcome::kOk:
            response = handleRequest(request);
            break;
          case ReadOutcome::kTooLarge:
            rejectedOversize_.fetch_add(1, std::memory_order_relaxed);
            response = errorResponse(
                "RequestTooLarge",
                "request exceeds serve.maxRequestBytes = " +
                    std::to_string(opts_.maxRequestBytes) + " bytes");
            break;
          case ReadOutcome::kTimeout:
            ioTimeouts_.fetch_add(1, std::memory_order_relaxed);
            response = errorResponse(
                "Timeout",
                "request not complete within serve.ioTimeoutMs = " +
                    std::to_string(opts_.ioTimeoutMs) + " ms");
            break;
          case ReadOutcome::kError:
            logWarn("apres_serve: request read failed: ",
                    std::strerror(err));
            response = errorResponse("InternalError",
                                     std::string("request read failed: ") +
                                         std::strerror(err));
            break;
        }
    } catch (const SimError& e) {
        response = errorResponse(e.kindName(), e.detail());
    } catch (const std::exception& e) {
        response = errorResponse("InternalError", e.what());
    }

    int err = 0;
    switch (writeResponse(fd, response, opts_.ioTimeoutMs, &err)) {
      case ReadOutcome::kOk:
        break;
      case ReadOutcome::kTimeout:
        ioTimeouts_.fetch_add(1, std::memory_order_relaxed);
        logWarn("apres_serve: response write timed out; client too "
                "slow or gone");
        break;
      default:
        logWarn("apres_serve: client went away mid-response: ",
                std::strerror(err));
        break;
    }
}

ServeLoadStats
ServeDaemon::loadStats() const
{
    ServeLoadStats s;
    s.requestsServed = requestsServed_.load(std::memory_order_relaxed);
    s.shedQueueFull = shedQueueFull_.load(std::memory_order_relaxed);
    s.shedDeadline = shedDeadline_.load(std::memory_order_relaxed);
    s.shedShutdown = shedShutdown_.load(std::memory_order_relaxed);
    s.rejectedOversize =
        rejectedOversize_.load(std::memory_order_relaxed);
    s.ioTimeouts = ioTimeouts_.load(std::memory_order_relaxed);
    s.acceptBackoffs = acceptBackoffs_.load(std::memory_order_relaxed);
    return s;
}

std::string
ServeDaemon::handleRequest(const std::string& request_json)
{
    ServeRequest request;
    try {
        request = parseServeRequest(request_json);
    } catch (const SimError& e) {
        return errorResponse(e.kindName(), e.detail());
    }

    std::ostringstream os;
    JsonWriter json(os);
    switch (request.type) {
      case ServeRequest::Type::kPing:
        json.beginObject();
        json.field("type", "pong");
        json.field("fingerprint", fingerprint_);
        json.endObject();
        json.finish();
        return os.str();

      case ServeRequest::Type::kStats: {
        const ResultCacheStats stats = cache_.stats();
        const ServeLoadStats load = loadStats();
        json.beginObject();
        json.field("type", "stats");
        json.field("fingerprint", fingerprint_);
        json.beginObject("cache");
        json.field("memoryHits", stats.memoryHits);
        json.field("diskHits", stats.diskHits);
        json.field("misses", stats.misses);
        json.field("stores", stats.stores);
        json.field("invalidDiskEntries", stats.invalidDiskEntries);
        json.field("memoryEntries",
                   static_cast<std::uint64_t>(cache_.memoryEntries()));
        json.field("evictions", stats.evictions);
        json.field("evictedBytes", stats.evictedBytes);
        json.field("writeFailures", stats.writeFailures);
        json.field("fsyncFailures", stats.fsyncFailures);
        json.field("renameFailures", stats.renameFailures);
        json.field("scrubOrphanTmps", stats.scrubOrphanTmps);
        json.field("scrubCorruptEntries", stats.scrubCorruptEntries);
        json.field("degradations", stats.degradations);
        json.field("storesSkippedDegraded",
                   stats.storesSkippedDegraded);
        json.field("diskEntries",
                   static_cast<std::uint64_t>(cache_.diskEntries()));
        json.field("diskBytes", cache_.diskBytes());
        json.field("diskMode", cacheDiskModeName(cache_.diskMode()));
        json.field("maxBytes", opts_.cacheMaxBytes);
        json.field("maxEntries", opts_.cacheMaxEntries);
        json.endObject();
        json.beginObject("server");
        json.field("queueDepth",
                   static_cast<std::uint64_t>(
                       std::max(1, opts_.queueDepth)));
        json.field("dispatchThreads",
                   static_cast<std::uint64_t>(
                       std::max(1, opts_.dispatchThreads)));
        json.field("requestsServed", load.requestsServed);
        json.field("shedQueueFull", load.shedQueueFull);
        json.field("shedDeadline", load.shedDeadline);
        json.field("shedShutdown", load.shedShutdown);
        json.field("rejectedOversize", load.rejectedOversize);
        json.field("ioTimeouts", load.ioTimeouts);
        json.field("acceptBackoffs", load.acceptBackoffs);
        json.endObject();
        json.field("simulations", simulationsRun());
        json.endObject();
        json.finish();
        return os.str();
      }

      case ServeRequest::Type::kShutdown:
        stopRequested_.store(true);
        json.beginObject();
        json.field("type", "bye");
        json.endObject();
        json.finish();
        return os.str();

      case ServeRequest::Type::kRun:
        return handleRun(request);
    }
    return errorResponse("InternalError", "unreachable request type");
}

std::string
ServeDaemon::handleRun(const ServeRequest& request)
{
    std::vector<BatchEntry> entries(request.jobs.size());

    // Phase 1: resolve each job to a cache key and try the cache.
    // Invalid jobs (bad override, unknown workload, malformed kernel
    // text) become error payloads immediately — they are never keyed,
    // cached or executed.
    RunnerOptions runner_opts;
    runner_opts.threads = opts_.threads;
    runner_opts.seedMode = SeedMode::kUseConfigSeed;
    runner_opts.keepGoing = true; // errors become rows, batch completes
    runner_opts.retries = request.retries;
    runner_opts.jobTimeoutSeconds = request.timeoutSeconds;
    SweepRunner runner(runner_opts);
    std::vector<std::size_t> missEntry; // runner index -> entry index

    for (std::size_t i = 0; i < request.jobs.size(); ++i) {
        const ServeJobSpec& spec = request.jobs[i];
        BatchEntry& entry = entries[i];
        try {
            SweepJob job;
            job.label = spec.label;
            ConfigRegistry registry(job.config);
            for (const auto& [key, value] : spec.overrides)
                registry.set(key, value);

            std::shared_ptr<const Kernel> kernel;
            if (!spec.kernelText.empty()) {
                kernel = std::make_shared<const Kernel>(
                    parseKernelText(spec.kernelText));
            } else {
                if (!knownWorkload(spec.workload))
                    throwConfigError("unknown workload \"" +
                                     spec.workload + "\"");
                kernel = std::make_shared<const Kernel>(
                    makeWorkload(spec.workload, spec.scale).kernel);
            }
            job.kernel = std::move(kernel);

            entry.key = computeCacheKey(fingerprint_,
                                        kernelFingerprint(spec),
                                        registry.semanticSnapshot());
            if (std::optional<std::string> hit = cache_.lookup(entry.key)) {
                entry.cached = true;
                entry.payload = std::move(*hit);
            } else {
                entry.runIndex = runner.submit(std::move(job));
                missEntry.push_back(i);
            }
        } catch (const SimError& e) {
            RunResult r;
            r.status = "error";
            r.errorKind = e.kindName();
            r.errorDetail = e.detail();
            entry.payload = serializeRunResult(r);
        }
    }

    // Phase 2: simulate the misses across the worker pool.
    if (runner.size() > 0) {
        simulations_.fetch_add(runner.size(), std::memory_order_relaxed);
        const std::vector<SweepResult> results = runner.runAll();
        for (std::size_t m = 0; m < missEntry.size(); ++m) {
            BatchEntry& entry = entries[missEntry[m]];
            const RunResult& r = results[entry.runIndex].result;
            entry.payload = serializeRunResult(r);
            // Only clean results are memoized: an error or timeout is
            // environmental/diagnostic and must re-run next time.
            if (r.status == "ok")
                cache_.store(entry.key, entry.payload);
        }
    }

    // Phase 3: assemble the response; cached payloads are spliced
    // verbatim so repeated requests stay bitwise identical.
    const ResultCacheStats stats = cache_.stats();
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.field("type", "result");
    json.field("fingerprint", fingerprint_);
    json.beginObject("cache");
    json.field("memoryHits", stats.memoryHits);
    json.field("diskHits", stats.diskHits);
    json.field("misses", stats.misses);
    json.endObject();
    json.field("simulations", simulationsRun());
    json.beginArray("runs");
    for (std::size_t i = 0; i < entries.size(); ++i) {
        json.beginObject();
        json.field("label", request.jobs[i].label);
        if (!entries[i].key.empty())
            json.field("key", entries[i].key);
        json.field("cached", entries[i].cached);
        json.raw("result", entries[i].payload);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    json.finish();
    return os.str();
}

std::string
serveRoundTrip(const std::string& socket_path,
               const std::string& request_json)
{
    const sockaddr_un addr = socketAddress(socket_path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throwErrno("connect " + socket_path);
    }
    try {
        writeAll(fd, request_json);
        if (::shutdown(fd, SHUT_WR) != 0)
            throwErrno("shutdown");
        std::string response = readAll(fd);
        ::close(fd);
        return response;
    } catch (...) {
        ::close(fd);
        throw;
    }
}

namespace {

/** Is @p response a typed overloaded shed? Extracts retryAfterMs. */
bool
isOverloadedResponse(const std::string& response,
                     std::uint64_t* retry_after_ms)
{
    *retry_after_ms = 0;
    try {
        const JsonValue doc = JsonValue::parse(response);
        if (!doc.isObject() ||
            doc.at("type").asString() != "overloaded") {
            return false;
        }
        if (const JsonValue* hint = doc.find("retryAfterMs"))
            *retry_after_ms = hint->asUint64();
        return true;
    } catch (const SimError&) {
        return false;
    }
}

} // namespace

std::string
serveRoundTripWithRetry(const std::string& socket_path,
                        const std::string& request_json,
                        const ServeRetryPolicy& policy,
                        int* attempts_out)
{
    std::uint64_t seed = policy.seed;
    if (seed == 0) {
        seed = static_cast<std::uint64_t>(::getpid()) ^
               static_cast<std::uint64_t>(
                   Clock::now().time_since_epoch().count());
    }
    std::minstd_rand rng(
        static_cast<std::uint32_t>(seed ^ (seed >> 32)) | 1u);

    std::string response;
    int attempts = 0;
    for (int attempt = 0;; ++attempt) {
        ++attempts;
        bool transport_failed = false;
        std::uint64_t hint_ms = 0;
        try {
            response = serveRoundTrip(socket_path, request_json);
        } catch (const SimError&) {
            // Daemon restarting or socket not up yet: retryable.
            if (attempt >= policy.budget) {
                if (attempts_out)
                    *attempts_out = attempts;
                throw;
            }
            transport_failed = true;
        }
        if (!transport_failed) {
            if (!isOverloadedResponse(response, &hint_ms))
                break; // a real answer (result, error, pong, ...)
            if (attempt >= policy.budget)
                break; // budget exhausted; caller sees the shed
        }

        // Jittered exponential backoff, floored by the daemon's hint:
        // full-jitter on [delay/2, delay] decorrelates a thundering
        // herd of clients all shed at the same instant.
        const int shift = std::min(attempt, 20);
        std::uint64_t delay = std::max<std::uint64_t>(policy.baseMs, 1)
                              << shift;
        delay = std::min(delay, std::max<std::uint64_t>(policy.maxMs, 1));
        const std::uint64_t jittered =
            delay / 2 + rng() % (delay / 2 + 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::max(jittered, hint_ms)));
    }
    if (attempts_out)
        *attempts_out = attempts;
    return response;
}

} // namespace apres
