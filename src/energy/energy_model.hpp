/**
 * @file
 * Event-based dynamic energy model (GPUWattch substitution).
 *
 * Figure 15 of the paper reports *relative dynamic energy*, which is
 * dominated by event counts: executed instructions, cache accesses,
 * DRAM transfers and execution time. This model charges a fixed energy
 * per event class (values are in the vicinity of published 40 nm GPU
 * numbers, but only their ratios matter for the reproduced figure) and
 * adds the APRES/prefetcher table overhead explicitly — the paper
 * reports it below 3% of total energy, which the defaults reproduce.
 */

#ifndef APRES_ENERGY_ENERGY_MODEL_HPP
#define APRES_ENERGY_ENERGY_MODEL_HPP

#include <cstdint>

namespace apres {

/** Per-event dynamic energies in picojoules. */
struct EnergyParams
{
    double aluOp = 25.0;          ///< per issued ALU/SFU instruction
    double registerAccess = 8.0;  ///< per instruction (RF read+write)
    double l1Access = 60.0;       ///< per L1 line access (hit or probe)
    double l2Access = 180.0;      ///< per L2 access
    double dramAccess = 2200.0;   ///< per DRAM line transfer
    double structureAccess = 3.0; ///< APRES/STR/SLD table event
    /**
     * Per SM per cycle: clock distribution, pipeline latches and the
     * leakage-like time-proportional component. GPUWattch attributes
     * 30-40% of GPU energy to time-proportional terms, which is what
     * makes execution-time reductions an energy win (Fig. 15).
     */
    double smCyclePipeline = 100.0;
};

/** Event counts extracted from a simulation run. */
struct EnergyInputs
{
    std::uint64_t instructions = 0;     ///< total issued instructions
    std::uint64_t l1Accesses = 0;       ///< demand + store + prefetch probes
    std::uint64_t l2Accesses = 0;       ///< reads + stores at L2
    std::uint64_t dramAccesses = 0;     ///< line transfers at DRAM
    std::uint64_t structureAccesses = 0;///< scheduler/prefetch table events
    std::uint64_t smCycles = 0;         ///< cycles summed over SMs
};

/** Dynamic energy split by component, in picojoules. */
struct EnergyBreakdown
{
    double core = 0.0;       ///< ALU + register file
    double l1 = 0.0;
    double l2 = 0.0;
    double dram = 0.0;
    double structures = 0.0; ///< APRES / prefetcher additions
    double pipeline = 0.0;   ///< per-cycle clocking

    /** Total dynamic energy in picojoules. */
    double
    total() const
    {
        return core + l1 + l2 + dram + structures + pipeline;
    }

    /** Fraction contributed by the added hardware structures. */
    double
    structureFraction() const
    {
        const double t = total();
        return t > 0.0 ? structures / t : 0.0;
    }
};

/** Charge the inputs against the per-event parameters. */
inline EnergyBreakdown
computeEnergy(const EnergyInputs& in, const EnergyParams& p = {})
{
    EnergyBreakdown out;
    out.core = static_cast<double>(in.instructions) *
        (p.aluOp + p.registerAccess);
    out.l1 = static_cast<double>(in.l1Accesses) * p.l1Access;
    out.l2 = static_cast<double>(in.l2Accesses) * p.l2Access;
    out.dram = static_cast<double>(in.dramAccesses) * p.dramAccess;
    out.structures =
        static_cast<double>(in.structureAccesses) * p.structureAccess;
    out.pipeline = static_cast<double>(in.smCycles) * p.smCyclePipeline;
    return out;
}

} // namespace apres

#endif // APRES_ENERGY_ENERGY_MODEL_HPP
