/**
 * @file
 * apres_serve — the simulation service daemon.
 *
 * Accepts batched run requests as JSON over a local AF_UNIX socket
 * and memoizes results in a two-tier content-addressed cache, so
 * repeated configurations are served in O(1) without re-simulating.
 *
 *   apres_serve --socket /tmp/apres.sock --cache-dir ~/.cache/apres
 *
 * Submit work with the apres_sim client mode:
 *
 *   apres_sim --connect /tmp/apres.sock --workload KM --apres --json
 *
 * or with any tool that speaks the protocol (see DESIGN.md
 * "Simulation service"). Stop it with a {"type":"shutdown"} request
 * or SIGINT/SIGTERM.
 *
 * Every serving knob is a serve.* config key (--set serve.key=value,
 * enumerable with --list-keys); the named flags below are sugar over
 * the same registry. --fault-inject (or the APRES_FAULT_INJECT env
 * var) arms the deterministic fault-injection seam for chaos testing
 * — never use it in production.
 */

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/fault_inject.hpp"
#include "common/log.hpp"
#include "common/parse.hpp"
#include "common/sim_error.hpp"
#include "serve/daemon.hpp"
#include "serve/serve_config.hpp"

using namespace apres;

namespace {

std::atomic<ServeDaemon*> g_daemon{nullptr};

void
onSignal(int)
{
    // async-signal-safe: just request the stop; the poll loop notices.
    if (ServeDaemon* daemon = g_daemon.load())
        daemon->requestStop();
}

void
printHelp()
{
    std::cout <<
        "apres_serve - APRES simulation service with a "
        "content-addressed result cache\n\n"
        "usage: apres_serve --socket PATH [options]\n\n"
        "  --socket PATH          AF_UNIX socket to listen on "
        "(required)\n"
        "  --cache-dir DIR        persistent cache directory (default: "
        "in-memory only)\n"
        "  --cache-max-bytes N    disk-cache size cap; LRU eviction "
        "(default: unlimited)\n"
        "  --cache-max-entries N  disk-cache entry cap (default: "
        "unlimited)\n"
        "  --threads N            worker threads per batch (default: "
        "hardware concurrency)\n"
        "  --queue-depth N        admission-queue depth; connections\n"
        "                         beyond it get a typed overloaded "
        "shed (default: 16)\n"
        "  --dispatch-threads N   threads draining the queue "
        "(default: 1)\n"
        "  --request-deadline-ms N  shed requests that waited longer "
        "(default: off)\n"
        "  --io-timeout-ms N      socket read/write deadline "
        "(default: 10000)\n"
        "  --max-request-bytes N  reject larger requests "
        "(default: 16 MiB)\n"
        "  --fingerprint S        override the cache schema "
        "fingerprint\n"
        "                         (also: APRES_SERVE_FINGERPRINT env "
        "var)\n"
        "  --set KEY=VALUE        set any serve.* key directly\n"
        "  --list-keys            print every serve.* key and exit\n"
        "  --fault-inject SPEC    arm deterministic fault injection\n"
        "                         (also: APRES_FAULT_INJECT env var; "
        "testing only)\n"
        "  --help                 this text\n\n"
        "Requests are one JSON document per connection; see DESIGN.md\n"
        "\"Simulation service\" for the protocol, overload control "
        "and cache-key anatomy.\n";
}

int
run(int argc, char** argv)
{
    ServeOptions opts;
    ServeConfigRegistry registry(opts);
    std::string faultSpec;
    if (const char* env = std::getenv("APRES_FAULT_INJECT"))
        faultSpec = env;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("option " + arg + " needs a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            printHelp();
            return 0;
        } else if (arg == "--list-keys") {
            for (const std::string& key : registry.keys())
                std::cout << key << " = " << registry.get(key) << "\n";
            return 0;
        } else if (arg == "--socket") {
            opts.socketPath = next();
        } else if (arg == "--cache-dir") {
            opts.cacheDir = next();
        } else if (arg == "--cache-max-bytes") {
            registry.set("serve.cacheMaxBytes", next());
        } else if (arg == "--cache-max-entries") {
            registry.set("serve.cacheMaxEntries", next());
        } else if (arg == "--threads") {
            registry.set("serve.threads", next());
        } else if (arg == "--queue-depth") {
            registry.set("serve.queueDepth", next());
        } else if (arg == "--dispatch-threads") {
            registry.set("serve.dispatchThreads", next());
        } else if (arg == "--request-deadline-ms") {
            registry.set("serve.requestDeadlineMs", next());
        } else if (arg == "--io-timeout-ms") {
            registry.set("serve.ioTimeoutMs", next());
        } else if (arg == "--max-request-bytes") {
            registry.set("serve.maxRequestBytes", next());
        } else if (arg == "--retry-after-ms") {
            registry.set("serve.retryAfterMs", next());
        } else if (arg == "--fingerprint") {
            opts.fingerprint = next();
        } else if (arg == "--set") {
            const std::string assignment = next();
            const std::size_t eq = assignment.find('=');
            if (eq == std::string::npos || eq == 0)
                fatal("--set expects KEY=VALUE, got \"" + assignment +
                      "\"");
            registry.set(assignment.substr(0, eq),
                         assignment.substr(eq + 1));
        } else if (arg == "--fault-inject") {
            faultSpec = next();
        } else {
            fatal("unknown option: " + arg + " (try --help)");
        }
    }
    if (opts.socketPath.empty())
        fatal("apres_serve: --socket PATH is required (try --help)");

    if (!faultSpec.empty()) {
        FaultInjector::instance().configure(faultSpec);
        std::cerr << "[apres-serve] FAULT INJECTION ARMED: "
                  << faultSpec << "\n";
    }

    ServeDaemon daemon(opts);
    daemon.start();
    g_daemon.store(&daemon);
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::cerr << "[apres-serve] listening on " << opts.socketPath
              << (opts.cacheDir.empty()
                      ? std::string(" (in-memory cache)")
                      : " (cache dir " + opts.cacheDir + ")")
              << "\n";
    daemon.wait();
    g_daemon.store(nullptr);
    daemon.stop();

    const ResultCacheStats stats = daemon.cache().stats();
    const ServeLoadStats load = daemon.loadStats();
    std::cerr << "[apres-serve] served " << stats.hits() << " hit(s), "
              << stats.misses << " miss(es), ran "
              << daemon.simulationsRun() << " simulation(s)";
    if (load.shedQueueFull + load.shedDeadline + load.shedShutdown > 0) {
        std::cerr << "; shed " << load.shedQueueFull << " queueFull / "
                  << load.shedDeadline << " deadline / "
                  << load.shedShutdown << " shutdown";
    }
    if (stats.evictions > 0)
        std::cerr << "; evicted " << stats.evictions << " entr(ies)";
    std::cerr << "\n";
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return run(argc, argv);
    } catch (const SimError& e) {
        std::cerr << "apres_serve: " << e.what() << '\n';
        return 1;
    }
}
