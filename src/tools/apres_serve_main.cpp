/**
 * @file
 * apres_serve — the simulation service daemon.
 *
 * Accepts batched run requests as JSON over a local AF_UNIX socket
 * and memoizes results in a two-tier content-addressed cache, so
 * repeated configurations are served in O(1) without re-simulating.
 *
 *   apres_serve --socket /tmp/apres.sock --cache-dir ~/.cache/apres
 *
 * Submit work with the apres_sim client mode:
 *
 *   apres_sim --connect /tmp/apres.sock --workload KM --apres --json
 *
 * or with any tool that speaks the protocol (see DESIGN.md
 * "Simulation service"). Stop it with a {"type":"shutdown"} request
 * or SIGINT/SIGTERM.
 */

#include <atomic>
#include <csignal>
#include <iostream>
#include <string>

#include "common/log.hpp"
#include "common/parse.hpp"
#include "common/sim_error.hpp"
#include "serve/daemon.hpp"

using namespace apres;

namespace {

std::atomic<ServeDaemon*> g_daemon{nullptr};

void
onSignal(int)
{
    // async-signal-safe: just request the stop; the poll loop notices.
    if (ServeDaemon* daemon = g_daemon.load())
        daemon->requestStop();
}

void
printHelp()
{
    std::cout <<
        "apres_serve - APRES simulation service with a "
        "content-addressed result cache\n\n"
        "usage: apres_serve --socket PATH [options]\n\n"
        "  --socket PATH     AF_UNIX socket to listen on (required)\n"
        "  --cache-dir DIR   persistent cache directory (default: "
        "in-memory only)\n"
        "  --threads N       worker threads per batch (default: "
        "hardware concurrency)\n"
        "  --fingerprint S   override the cache schema fingerprint\n"
        "                    (also: APRES_SERVE_FINGERPRINT env var)\n"
        "  --help            this text\n\n"
        "Requests are one JSON document per connection; see DESIGN.md\n"
        "\"Simulation service\" for the protocol and cache-key "
        "anatomy.\n";
}

int
run(int argc, char** argv)
{
    ServeOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("option " + arg + " needs a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            printHelp();
            return 0;
        } else if (arg == "--socket") {
            opts.socketPath = next();
        } else if (arg == "--cache-dir") {
            opts.cacheDir = next();
        } else if (arg == "--threads") {
            opts.threads = static_cast<int>(
                parsePositiveUintOption(arg, next()));
        } else if (arg == "--fingerprint") {
            opts.fingerprint = next();
        } else {
            fatal("unknown option: " + arg + " (try --help)");
        }
    }
    if (opts.socketPath.empty())
        fatal("apres_serve: --socket PATH is required (try --help)");

    ServeDaemon daemon(opts);
    daemon.start();
    g_daemon.store(&daemon);
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::cerr << "[apres-serve] listening on " << opts.socketPath
              << (opts.cacheDir.empty()
                      ? std::string(" (in-memory cache)")
                      : " (cache dir " + opts.cacheDir + ")")
              << "\n";
    daemon.wait();
    g_daemon.store(nullptr);
    daemon.stop();

    const ResultCacheStats stats = daemon.cache().stats();
    std::cerr << "[apres-serve] served " << stats.hits() << " hit(s), "
              << stats.misses << " miss(es), ran "
              << daemon.simulationsRun() << " simulation(s)\n";
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return run(argc, argv);
    } catch (const SimError& e) {
        std::cerr << "apres_serve: " << e.what() << '\n';
        return 1;
    }
}
