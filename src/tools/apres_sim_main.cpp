/**
 * @file
 * apres_sim — the command-line front end of the simulator.
 *
 * Runs one or more (workload, scheduler, prefetcher) combinations and
 * reports the full statistics as text or CSV.
 *
 *   apres_sim --workload KM --sched laws --pf sap
 *   apres_sim --workload all --sched ccws --pf str --csv results.csv
 *   apres_sim --workload SRAD --sched lrr --l1-bytes 1048576 --sms 4
 *
 * Run `apres_sim --help` for the full option list.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "isa/kernel_text.hpp"
#include "common/log.hpp"
#include "sim/gpu.hpp"
#include "sim/timeline.hpp"
#include "workloads/workload.hpp"

using namespace apres;

namespace {

void
printHelp()
{
    std::cout <<
        "apres_sim - APRES (ISCA 2016) GPU timing simulator\n\n"
        "usage: apres_sim [options]\n\n"
        "workload selection:\n"
        "  --workload NAME   Table IV abbreviation, or 'all' (default KM)\n"
        "  --kernel-file F   run a declarative .kt kernel file instead\n"
        "  --scale F         trip-count multiplier (default 1.0)\n\n"
        "policy selection:\n"
        "  --sched S         lrr|gto|ccws|mascar|pa|laws (default lrr)\n"
        "  --pf P            none|str|sld|sap (default none)\n"
        "  --apres           shorthand for --sched laws --pf sap\n\n"
        "machine configuration (Table III defaults):\n"
        "  --sms N           number of SMs (default 15)\n"
        "  --warps N         warps per SM (default 48)\n"
        "  --jobs N          blocks per warp slot (default 4)\n"
        "  --l1-bytes N      L1 capacity (default 32768)\n"
        "  --mshrs N         L1 MSHR entries (default 64)\n"
        "  --replacement P   L1 victim policy: lru|fifo|random\n"
        "  --dram-interval N cycles per DRAM line transfer (default 6)\n"
        "  --dram-rows       enable the bank/row-buffer DRAM model\n"
        "  --bypass          enable adaptive L1 bypass for streams\n"
        "  --max-cycles N    simulation cap (default 50000000)\n\n"
        "output:\n"
        "  --csv FILE        append rows as CSV instead of text\n"
        "  --timeline FILE   write per-interval samples as CSV\n"
        "  --interval N      timeline sampling interval (default 2000)\n"
        "  --quiet           print only 'workload config ipc'\n"
        "  --help            this text\n";
}

SchedulerKind
parseSched(const std::string& s)
{
    if (s == "lrr") return SchedulerKind::kLrr;
    if (s == "gto") return SchedulerKind::kGto;
    if (s == "ccws") return SchedulerKind::kCcws;
    if (s == "mascar") return SchedulerKind::kMascar;
    if (s == "pa") return SchedulerKind::kPa;
    if (s == "laws") return SchedulerKind::kLaws;
    fatal("unknown scheduler: " + s + " (try --help)");
}

PrefetcherKind
parsePf(const std::string& s)
{
    if (s == "none") return PrefetcherKind::kNone;
    if (s == "str") return PrefetcherKind::kStr;
    if (s == "sld") return PrefetcherKind::kSld;
    if (s == "sap") return PrefetcherKind::kSap;
    fatal("unknown prefetcher: " + s + " (try --help)");
}

} // namespace

int
main(int argc, char** argv)
{
    std::string workload = "KM";
    std::string kernel_file;
    double scale = 1.0;
    GpuConfig cfg;
    std::string csv_path;
    std::string timeline_path;
    Cycle timeline_interval = 2000;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("option " + arg + " needs a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            printHelp();
            return 0;
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--kernel-file") {
            kernel_file = next();
        } else if (arg == "--scale") {
            scale = std::atof(next().c_str());
        } else if (arg == "--sched") {
            cfg.scheduler = parseSched(next());
        } else if (arg == "--pf") {
            cfg.prefetcher = parsePf(next());
        } else if (arg == "--apres") {
            cfg.useApres();
        } else if (arg == "--sms") {
            cfg.numSms = std::atoi(next().c_str());
        } else if (arg == "--warps") {
            cfg.sm.warpsPerSm = std::atoi(next().c_str());
            cfg.sm.warpsPerBlock = cfg.sm.warpsPerSm;
        } else if (arg == "--jobs") {
            cfg.sm.jobsPerWarp = std::atoi(next().c_str());
        } else if (arg == "--l1-bytes") {
            cfg.sm.l1.sizeBytes = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--mshrs") {
            cfg.sm.l1.numMshrs =
                static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (arg == "--replacement") {
            const std::string p = next();
            if (p == "lru")
                cfg.sm.l1.replacement = ReplacementPolicy::kLru;
            else if (p == "fifo")
                cfg.sm.l1.replacement = ReplacementPolicy::kFifo;
            else if (p == "random")
                cfg.sm.l1.replacement = ReplacementPolicy::kRandom;
            else
                fatal("unknown replacement policy: " + p);
        } else if (arg == "--dram-interval") {
            cfg.mem.dram.serviceInterval =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--dram-rows") {
            cfg.mem.dram.rowBufferModel = true;
        } else if (arg == "--bypass") {
            cfg.sm.lsu.adaptiveBypass = true;
        } else if (arg == "--max-cycles") {
            cfg.maxCycles = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--csv") {
            csv_path = next();
        } else if (arg == "--timeline") {
            timeline_path = next();
        } else if (arg == "--interval") {
            timeline_interval = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            fatal("unknown option: " + arg + " (try --help)");
        }
    }

    struct Job
    {
        std::string label;
        Kernel kernel;
    };
    std::vector<Job> jobs;
    if (!kernel_file.empty()) {
        Job job;
        job.kernel = loadKernelFile(kernel_file);
        job.label = job.kernel.name();
        jobs.push_back(std::move(job));
    } else if (workload == "all") {
        for (const std::string& name : allWorkloadNames())
            jobs.push_back({name, makeWorkload(name, scale).kernel});
    } else {
        jobs.push_back({workload, makeWorkload(workload, scale).kernel});
    }

    CsvWriter csv("workload");
    CsvWriter timeline_csv("cycle");
    for (const Job& job : jobs) {
        const std::string& name = job.label;
        RunResult r;
        if (!timeline_path.empty()) {
            Gpu gpu(cfg, job.kernel);
            TimelineRecorder recorder(timeline_interval);
            r = recorder.record(gpu);
            recorder.toCsv(timeline_csv);
        } else {
            r = simulate(cfg, job.kernel);
        }
        if (!csv_path.empty()) {
            csv.addRow(name + ":" + cfg.label(), r.toStatSet());
        } else if (quiet) {
            std::cout << name << ' ' << cfg.label() << ' ' << r.ipc
                      << '\n';
        } else {
            std::cout << "== " << name << " under " << cfg.label()
                      << " ==\n";
            r.toStatSet().dump(std::cout);
            std::cout << '\n';
        }
    }

    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out)
            fatal("cannot open " + csv_path);
        csv.write(out);
        std::cout << "wrote " << csv.size() << " rows to " << csv_path
                  << '\n';
    }
    if (!timeline_path.empty()) {
        std::ofstream out(timeline_path);
        if (!out)
            fatal("cannot open " + timeline_path);
        timeline_csv.write(out);
        std::cout << "wrote " << timeline_csv.size()
                  << " timeline samples to " << timeline_path << '\n';
    }
    return 0;
}
