/**
 * @file
 * apres_sim — the command-line front end of the simulator.
 *
 * Runs one or more (workload, configuration) combinations and reports
 * the full statistics as text, CSV or JSON.
 *
 *   apres_sim --workload KM --apres
 *   apres_sim --workload all --sched ccws --pf str --csv results.csv
 *   apres_sim --workload SRAD --set l1.sizeBytes=1048576 --set numSms=4
 *   apres_sim --config paper.cfg --set scheduler=laws --json
 *
 * Configuration goes through the ConfigRegistry: every GpuConfig
 * field is reachable as a dotted key (`--list-keys` prints the
 * namespace), via `--set key=value` or a `--config` file of
 * `key = value` lines. Convenience flags (--sched, --l1-bytes, ...)
 * are sugar for the same keys. Precedence: defaults, then --config
 * files in order, then --set/convenience flags in command-line order.
 *
 * Run `apres_sim --help` for the full option list.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/csv.hpp"
#include "common/json.hpp"
#include "common/json_value.hpp"
#include "common/log.hpp"
#include "common/parse.hpp"
#include "common/sim_error.hpp"
#include "isa/kernel_text.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "sim/config_registry.hpp"
#include "sim/gpu.hpp"
#include "sim/policy_registry.hpp"
#include "sim/timeline.hpp"
#include "workloads/workload.hpp"

using namespace apres;

namespace {

void
printHelp()
{
    std::cout <<
        "apres_sim - APRES (ISCA 2016) GPU timing simulator\n\n"
        "usage: apres_sim [options]\n\n"
        "workload selection:\n"
        "  --workload NAME   Table IV abbreviation, or 'all' (default KM)\n"
        "  --kernel-file F   run a declarative .kt kernel file instead\n"
        "  --scale F         trip-count multiplier (default 1.0)\n\n"
        "configuration (applied in order: --config files, then flags):\n"
        "  --set KEY=VALUE   set any config key (repeatable)\n"
        "  --config FILE     read 'key = value' lines ('#' comments)\n"
        "  --list-keys       print every key with its current value\n\n"
        "policy selection (sugar for --set):\n"
        "  --sched S         scheduler name (= scheduler=S; default lrr)\n"
        "  --pf P            prefetcher name (= prefetcher=P; default none)\n"
        "  --apres           shorthand for --sched laws --pf sap\n\n"
        "machine configuration (sugar for --set; Table III defaults):\n"
        "  --sms N           number of SMs (default 15)\n"
        "  --warps N         warps per SM (default 48; block size"
        " clamps at 64)\n"
        "  --jobs N          blocks per warp slot (default 4)\n"
        "  --l1-bytes N      L1 capacity (default 32768)\n"
        "  --mshrs N         L1 MSHR entries (default 64)\n"
        "  --replacement P   L1 victim policy: lru|fifo|random\n"
        "  --dram-interval N cycles per DRAM line transfer (default 6)\n"
        "  --dram-rows       enable the bank/row-buffer DRAM model\n"
        "  --bypass          enable adaptive L1 bypass for streams\n"
        "  --max-cycles N    simulation cap (default 50000000)\n\n"
        "service mode:\n"
        "  --connect SOCKET  submit the batch to a running apres_serve\n"
        "                    daemon instead of simulating locally; the\n"
        "                    raw JSON response is printed to stdout and\n"
        "                    repeated configurations are answered from\n"
        "                    its content-addressed result cache\n"
        "  --retry-budget N  retries when the daemon sheds with a typed\n"
        "                    overloaded response or the connection\n"
        "                    fails (default 8; 0 disables)\n"
        "  --retry-base-ms N first backoff nap; doubles per retry with\n"
        "                    jitter, floored by the daemon's\n"
        "                    retryAfterMs hint (default 100)\n\n"
        "output:\n"
        "  --trace FILE      write a Chrome trace_event JSON of the run\n"
        "                    (open in chrome://tracing or Perfetto;\n"
        "                    = sim.trace=true sim.traceFile=FILE)\n"
        "  --metrics         collect histogram metrics into the stats\n"
        "                    (metrics.* keys; = sim.metrics=true)\n"
        "  --json            print one JSON document with all runs\n"
        "  --csv FILE        append rows as CSV instead of text\n"
        "  --timeline FILE   write per-interval samples as CSV\n"
        "  --interval N      timeline sampling interval (default 2000)\n"
        "  --quiet           print only 'workload config ipc'\n"
        "  --help            this text\n";
}

/** Emit one finished run into the --json document. */
void
writeRunJson(JsonWriter& json, const std::string& workload,
             const std::string& label, const RunResult& r)
{
    json.beginObject();
    json.field("workload", workload);
    json.field("label", label);
    json.field("completed", r.completed);
    json.field("status", r.status);
    if (r.status != "ok") {
        json.beginObject("error");
        json.field("kind", r.errorKind);
        json.field("detail", r.errorDetail);
        json.endObject();
    }
    json.beginObject("config");
    for (const auto& [key, value] : r.config)
        json.field(key, value);
    json.endObject();
    json.beginObject("stats");
    const StatSet stats = r.toStatSet();
    for (const auto& [key, value] : stats.entries())
        json.field(key, value);
    json.endObject();
    json.endObject();
}

/**
 * Service-mode client: ship the already-resolved batch to a running
 * apres_serve daemon and print its raw JSON response. The local
 * configuration is diffed against the defaults, so only explicit
 * settings travel as overrides; a kernel file travels as inline text.
 * Returns the process exit code (non-zero when any run is not "ok").
 */
int
runConnected(const std::string& socket_path, const ConfigRegistry& registry,
             const std::string& workload, const std::string& kernel_file,
             double scale, const ServeRetryPolicy& retry)
{
    GpuConfig defaults;
    const ConfigRegistry default_registry(defaults);
    const auto base = default_registry.snapshot();
    std::vector<std::pair<std::string, std::string>> overrides;
    for (const auto& [key, value] : registry.snapshot()) {
        const auto it = base.find(key);
        if (it == base.end() || it->second != value)
            overrides.emplace_back(key, value);
    }

    std::vector<ServeJobSpec> specs;
    const auto addWorkload = [&](const std::string& name) {
        ServeJobSpec spec;
        spec.label = name;
        spec.workload = name;
        spec.scale = scale;
        spec.overrides = overrides;
        specs.push_back(std::move(spec));
    };
    if (!kernel_file.empty()) {
        std::ifstream in(kernel_file);
        if (!in)
            fatal("cannot open " + kernel_file);
        std::ostringstream text;
        text << in.rdbuf();
        ServeJobSpec spec;
        spec.label = kernel_file;
        spec.kernelText = text.str();
        spec.overrides = overrides;
        specs.push_back(std::move(spec));
    } else if (workload == "all") {
        for (const std::string& name : allWorkloadNames())
            addWorkload(name);
    } else {
        addWorkload(workload);
    }

    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.field("type", "run");
    json.beginArray("jobs");
    for (const ServeJobSpec& spec : specs)
        writeServeJob(json, spec);
    json.endArray();
    json.endObject();
    json.finish();

    int attempts = 0;
    const std::string response =
        serveRoundTripWithRetry(socket_path, os.str(), retry, &attempts);
    std::cout << response << '\n';

    const JsonValue doc = JsonValue::parse(response);
    if (!doc.isObject() || doc.at("type").asString() != "result") {
        if (doc.isObject() && doc.find("type") &&
            doc.at("type").asString() == "overloaded") {
            std::cerr << "apres_sim: daemon still overloaded after "
                      << attempts << " attempt(s); raise --retry-budget "
                      << "or try again later\n";
        }
        return 1;
    }
    const JsonValue& runs = doc.at("runs");
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (runs.at(i).at("result").at("status").asString() != "ok")
            return 1;
    }
    return 0;
}

int run(int argc, char** argv);

} // namespace

int
main(int argc, char** argv)
{
    // Config, kernel and simulation failures are typed SimErrors now:
    // report them cleanly and exit non-zero (never std::terminate).
    try {
        return run(argc, argv);
    } catch (const SimError& e) {
        std::cerr << "apres_sim: " << e.what() << '\n';
        return 1;
    }
}

namespace {

int
run(int argc, char** argv)
{
    std::string workload = "KM";
    std::string kernel_file;
    std::string connect_path;
    ServeRetryPolicy retry;
    retry.budget = 8;
    double scale = 1.0;
    std::string csv_path;
    std::string timeline_path;
    Cycle timeline_interval = 2000;
    bool quiet = false;
    bool json_output = false;
    bool list_keys = false;
    std::vector<std::string> config_files;
    // "key=value" assignments from --set and the convenience flags,
    // in command-line order; applied after the --config files.
    std::vector<std::string> assignments;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("option " + arg + " needs a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            printHelp();
            return 0;
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--kernel-file") {
            kernel_file = next();
        } else if (arg == "--connect") {
            connect_path = next();
        } else if (arg == "--retry-budget") {
            retry.budget =
                static_cast<int>(parseUintOption(arg, next()));
        } else if (arg == "--retry-base-ms") {
            retry.baseMs = parsePositiveUintOption(arg, next());
        } else if (arg == "--scale") {
            scale = parsePositiveDoubleOption(arg, next());
        } else if (arg == "--set") {
            assignments.push_back(next());
        } else if (arg == "--config") {
            config_files.push_back(next());
        } else if (arg == "--list-keys") {
            list_keys = true;
        } else if (arg == "--sched") {
            assignments.push_back("scheduler=" + next());
        } else if (arg == "--pf") {
            assignments.push_back("prefetcher=" + next());
        } else if (arg == "--apres") {
            assignments.push_back("scheduler=laws");
            assignments.push_back("prefetcher=sap");
        } else if (arg == "--sms") {
            assignments.push_back("numSms=" + next());
        } else if (arg == "--warps") {
            const std::string n = next();
            assignments.push_back("sm.warpsPerSm=" + n);
            // warpsPerSm is unbounded but blocks cap at 64 warps, so
            // the shorthand clamps its block half; non-numeric values
            // pass through for the registry's typed rejection.
            char* end = nullptr;
            const long parsed = std::strtol(n.c_str(), &end, 10);
            const bool numeric = end != nullptr && *end == '\0' &&
                                 !n.empty();
            assignments.push_back(
                "sm.warpsPerBlock=" +
                (numeric && parsed > 64 ? std::string("64") : n));
        } else if (arg == "--jobs") {
            assignments.push_back("sm.jobsPerWarp=" + next());
        } else if (arg == "--l1-bytes") {
            assignments.push_back("l1.sizeBytes=" + next());
        } else if (arg == "--mshrs") {
            assignments.push_back("l1.numMshrs=" + next());
        } else if (arg == "--replacement") {
            assignments.push_back("l1.replacement=" + next());
        } else if (arg == "--dram-interval") {
            assignments.push_back("dram.serviceInterval=" + next());
        } else if (arg == "--dram-rows") {
            assignments.push_back("dram.rowBufferModel=true");
        } else if (arg == "--bypass") {
            assignments.push_back("lsu.adaptiveBypass=true");
        } else if (arg == "--max-cycles") {
            assignments.push_back("maxCycles=" + next());
        } else if (arg == "--trace") {
            assignments.push_back("sim.trace=true");
            assignments.push_back("sim.traceFile=" + next());
        } else if (arg == "--metrics") {
            assignments.push_back("sim.metrics=true");
        } else if (arg == "--json") {
            json_output = true;
        } else if (arg == "--csv") {
            csv_path = next();
        } else if (arg == "--timeline") {
            timeline_path = next();
        } else if (arg == "--interval") {
            timeline_interval =
                parsePositiveUintOption(arg, next());
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            fatal("unknown option: " + arg + " (try --help)");
        }
    }

    GpuConfig cfg;
    ConfigRegistry registry(cfg);
    for (const std::string& path : config_files)
        registry.loadFile(path);
    for (const std::string& assignment : assignments)
        registry.applyAssignment(assignment);

    if (list_keys) {
        for (const auto& [key, value] : registry.snapshot())
            std::cout << key << " = " << value << '\n';
        return 0;
    }

    if (!connect_path.empty())
        return runConnected(connect_path, registry, workload, kernel_file,
                            scale, retry);

    struct Job
    {
        std::string label;
        Kernel kernel;
    };
    std::vector<Job> jobs;
    if (!kernel_file.empty()) {
        Job job;
        job.kernel = loadKernelFile(kernel_file);
        job.label = job.kernel.name();
        jobs.push_back(std::move(job));
    } else if (workload == "all") {
        for (const std::string& name : allWorkloadNames())
            jobs.push_back({name, makeWorkload(name, scale).kernel});
    } else {
        jobs.push_back({workload, makeWorkload(workload, scale).kernel});
    }

    CsvWriter csv("workload");
    CsvWriter timeline_csv("cycle");
    std::unique_ptr<JsonWriter> json;
    if (json_output) {
        json = std::make_unique<JsonWriter>(std::cout);
        json->beginObject();
        json->beginArray("runs");
    }
    bool any_failed = false;
    for (const Job& job : jobs) {
        const std::string& name = job.label;
        RunResult r;
        try {
            if (!timeline_path.empty()) {
                Gpu gpu(cfg, job.kernel);
                TimelineRecorder recorder(timeline_interval);
                r = recorder.record(gpu);
                // run() flushes the trace itself; the step()-driven
                // timeline path must flush explicitly.
                gpu.writeTraceFile();
                recorder.toCsv(timeline_csv);
            } else {
                r = simulate(cfg, job.kernel);
            }
        } catch (const SimError& e) {
            // In --json mode a failed run becomes a machine-readable
            // error row and the remaining workloads still run; other
            // modes fail fast through the top-level handler.
            if (!json_output)
                throw;
            r = RunResult{};
            r.status = "error";
            r.errorKind = e.kindName();
            r.errorDetail = e.detail();
            any_failed = true;
        }
        if (json_output) {
            writeRunJson(*json, name, cfg.label(), r);
        } else if (!csv_path.empty()) {
            csv.addRow(name + ":" + cfg.label(), r.toStatSet());
        } else if (quiet) {
            std::cout << name << ' ' << cfg.label() << ' ' << r.ipc
                      << '\n';
        } else {
            std::cout << "== " << name << " under " << cfg.label()
                      << " ==\n";
            r.toStatSet().dump(std::cout);
            std::cout << '\n';
        }
    }
    if (json_output) {
        json->endArray();
        json->endObject();
        json->finish();
        json.reset();
    }

    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out)
            fatal("cannot open " + csv_path);
        csv.write(out);
        if (!json_output) {
            std::cout << "wrote " << csv.size() << " rows to " << csv_path
                      << '\n';
        }
    }
    if (!timeline_path.empty()) {
        std::ofstream out(timeline_path);
        if (!out)
            fatal("cannot open " + timeline_path);
        timeline_csv.write(out);
        if (!json_output) {
            std::cout << "wrote " << timeline_csv.size()
                      << " timeline samples to " << timeline_path << '\n';
        }
    }
    return any_failed ? 1 : 0;
}

} // namespace
