/**
 * @file
 * apres_explore — coverage-guided workload exploration and
 * statistical policy comparison.
 *
 * Two modes, selected by the first positional argument:
 *
 *   apres_explore explore --seed 7 --budget 50 --corpus tests/corpus \
 *       --report explore_report.json
 *
 * runs a deterministic coverage-guided campaign (src/explore): random
 * and mutated kernels over the Table-I signature space are probed
 * under a small set of machine shapes, scored by which behavioral
 * coverage bins they newly light, minimized, and written to the
 * corpus directory as self-describing .kt files.
 *
 *   apres_explore compare --seeds 20 --policy lrr+none \
 *       --policy laws+sap --workload KM,BFS --json compare.json
 *
 * runs every (kernel, policy) cell under N paired seeds through the
 * sweep runner and reports per-pair mean speedups with bootstrap 95%
 * confidence intervals (JSON and/or CSV) — error bars instead of
 * single-run deltas. With --cache-dir the cells are memoized in the
 * serve result cache, so warm re-runs cost zero simulations.
 *
 * Both modes are bitwise-deterministic given --seed.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/parse.hpp"
#include "common/sim_error.hpp"
#include "explore/explorer.hpp"
#include "explore/policy_compare.hpp"
#include "workloads/workload.hpp"

using namespace apres;

namespace {

void
printHelp()
{
    std::cout <<
        "apres_explore - coverage-guided exploration + policy statistics\n\n"
        "usage: apres_explore explore [options]\n"
        "       apres_explore compare [options]\n\n"
        "explore mode:\n"
        "  --seed N          campaign Rng seed (default 1); same seed =>\n"
        "                    same corpus, coverage map and report\n"
        "  --budget N        candidate kernels to evaluate (default 50)\n"
        "  --corpus DIR      load existing *.kt corpus and write new\n"
        "                    discoveries there (default: in-memory)\n"
        "  --report FILE     write the campaign report JSON (default\n"
        "                    stdout)\n"
        "  --fresh-bias F    chance of a fresh random kernel instead of\n"
        "                    a mutation (default 0.25)\n"
        "  --set KEY=VALUE   extra config override for every probe\n"
        "                    (repeatable)\n\n"
        "compare mode:\n"
        "  --seed N          base seed (default 1); seeds pair across\n"
        "                    policies\n"
        "  --seeds N         paired seeds per (kernel, policy) cell\n"
        "                    (default 20)\n"
        "  --resamples N     bootstrap resamples per pair (default 1000)\n"
        "  --policy S+P      scheduler+prefetcher contender (repeatable;\n"
        "                    default lrr+none, laws+sap)\n"
        "  --workload LIST   comma-separated Table IV names, or 'all'\n"
        "  --kernel-file F   add a .kt kernel (repeatable; corpus files\n"
        "                    work directly)\n"
        "  --scale F         workload trip multiplier (default 0.1)\n"
        "  --cache-dir DIR   memoize cells in a serve result cache\n"
        "  --threads N       sweep threads (default: all cores)\n"
        "  --json FILE       write the report JSON (default stdout)\n"
        "  --csv FILE        also write one CSV row per pair\n"
        "  --set KEY=VALUE   config override for every cell (repeatable)\n\n"
        "  --help            this text\n";
}

std::pair<std::string, std::string>
splitAssignment(const std::string& text)
{
    const std::size_t eq = text.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal("--set needs KEY=VALUE, got '" + text + "'");
    return {text.substr(0, eq), text.substr(eq + 1)};
}

int
runExplore(const std::vector<std::string>& args)
{
    ExploreOptions opts;
    std::string report_path;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        const auto next = [&]() -> const std::string& {
            if (i + 1 >= args.size())
                fatal("option " + arg + " needs a value");
            return args[++i];
        };
        if (arg == "--seed") {
            opts.seed = parseUintOption(arg, next());
        } else if (arg == "--budget") {
            opts.budget =
                static_cast<int>(parsePositiveUintOption(arg, next()));
        } else if (arg == "--corpus") {
            opts.corpusDir = next();
        } else if (arg == "--report") {
            report_path = next();
        } else if (arg == "--fresh-bias") {
            opts.freshBias = parsePositiveDoubleOption(arg, next());
        } else if (arg == "--set") {
            opts.overrides.push_back(splitAssignment(next()));
        } else if (arg == "--help") {
            printHelp();
            return 0;
        } else {
            fatal("unknown explore option '" + arg + "'");
        }
    }

    Explorer explorer(opts);
    const std::size_t new_bins = explorer.run();
    std::cerr << "apres_explore: " << new_bins << " new bin(s), corpus "
              << explorer.corpus().size() << " kernel(s), coverage "
              << explorer.coverage().size() << " bin(s)\n";

    if (report_path.empty()) {
        explorer.writeReport(std::cout);
        std::cout << '\n';
    } else {
        std::ofstream out(report_path);
        if (!out)
            fatal("cannot write " + report_path);
        explorer.writeReport(out);
        out << '\n';
    }
    return 0;
}

int
runCompare(const std::vector<std::string>& args)
{
    CompareOptions opts;
    std::string json_path;
    std::string csv_path;
    std::vector<std::string> workloads;
    std::vector<std::string> kernel_files;
    double scale = 0.1;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        const auto next = [&]() -> const std::string& {
            if (i + 1 >= args.size())
                fatal("option " + arg + " needs a value");
            return args[++i];
        };
        if (arg == "--seed") {
            opts.seed = parseUintOption(arg, next());
        } else if (arg == "--seeds") {
            opts.numSeeds =
                static_cast<int>(parsePositiveUintOption(arg, next()));
        } else if (arg == "--resamples") {
            opts.resamples =
                static_cast<int>(parsePositiveUintOption(arg, next()));
        } else if (arg == "--policy") {
            const std::string& spec = next();
            const std::size_t plus = spec.find('+');
            if (plus == std::string::npos || plus == 0 ||
                plus + 1 >= spec.size())
                fatal("--policy needs SCHED+PREFETCHER, got '" + spec +
                      "'");
            ComparePolicy p;
            p.scheduler = spec.substr(0, plus);
            p.prefetcher = spec.substr(plus + 1);
            opts.policies.push_back(std::move(p));
        } else if (arg == "--workload") {
            std::istringstream list(next());
            std::string name;
            while (std::getline(list, name, ','))
                if (!name.empty())
                    workloads.push_back(name);
        } else if (arg == "--kernel-file") {
            kernel_files.push_back(next());
        } else if (arg == "--scale") {
            scale = parsePositiveDoubleOption(arg, next());
        } else if (arg == "--cache-dir") {
            opts.cacheDir = next();
        } else if (arg == "--threads") {
            opts.threads =
                static_cast<int>(parsePositiveUintOption(arg, next()));
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--csv") {
            csv_path = next();
        } else if (arg == "--set") {
            opts.overrides.push_back(splitAssignment(next()));
        } else if (arg == "--help") {
            printHelp();
            return 0;
        } else {
            fatal("unknown compare option '" + arg + "'");
        }
    }

    if (opts.policies.empty()) {
        opts.policies.push_back({"lrr", "none"});
        opts.policies.push_back({"laws", "sap"});
    }
    if (workloads.size() == 1 && workloads[0] == "all")
        workloads = allWorkloadNames();
    if (workloads.empty() && kernel_files.empty())
        workloads = {"KM"};
    for (const std::string& name : workloads) {
        CompareKernel k;
        k.label = name;
        k.workload = name;
        k.scale = scale;
        opts.kernels.push_back(std::move(k));
    }
    for (const std::string& path : kernel_files) {
        std::ifstream in(path);
        if (!in)
            fatal("cannot open " + path);
        std::ostringstream text;
        text << in.rdbuf();
        CompareKernel k;
        k.label = path;
        k.kernelText = text.str();
        opts.kernels.push_back(std::move(k));
    }

    const CompareReport report = runComparison(opts);
    std::cerr << "apres_explore: " << report.pairs.size() << " pair(s), "
              << report.simulations << " simulation(s), "
              << report.cacheHits << " cache hit(s)\n";

    if (json_path.empty()) {
        report.writeJson(std::cout);
        std::cout << '\n';
    } else {
        std::ofstream out(json_path);
        if (!out)
            fatal("cannot write " + json_path);
        report.writeJson(out);
        out << '\n';
    }
    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out)
            fatal("cannot write " + csv_path);
        report.writeCsv(out);
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        std::vector<std::string> args(argv + 1, argv + argc);
        if (args.empty() || args[0] == "--help" || args[0] == "-h") {
            printHelp();
            return args.empty() ? 1 : 0;
        }
        const std::string mode = args[0];
        args.erase(args.begin());
        if (mode == "explore")
            return runExplore(args);
        if (mode == "compare")
            return runCompare(args);
        fatal("unknown mode '" + mode + "' (expected explore|compare)");
    } catch (const SimError& e) {
        std::cerr << "apres_explore: " << e.what() << '\n';
        return 1;
    }
}
