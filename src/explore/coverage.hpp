/**
 * @file
 * Behavioral coverage: turning one finished run into a set of
 * discrete "bins" and accumulating them across a campaign.
 *
 * A bin names one observable regime of the simulated machine — "the
 * SAP stride detector mismatched ~2^6 times under the tiny-L1 probe",
 * "the load-to-use histogram's 4th bucket is populated", "LAWS
 * demoted groups at all". The taxonomy (DESIGN.md §17) is built from
 * observation surfaces that already exist:
 *
 *  - policy counters (laws.*, sap.*, ccws.*, ...) and the structural
 *    L1/LSU/prefetch counters, binned by power-of-two magnitude —
 *    the regime matters (did MSHRs saturate once or constantly?),
 *    the exact count does not;
 *  - metrics.* histogram buckets (sim.metrics), binned by occupancy;
 *  - miss-rate-style ratios, binned by decile;
 *  - tracer event-type totals (folded into RunResult::policy as
 *    "trace.<event>" by the explorer's inspect hook), binned by
 *    magnitude — these light up paths like SAP WQ drains that no
 *    aggregate statistic exposes;
 *  - run status (completed, error kind).
 *
 * Every bin is prefixed with the probe label that produced it, so the
 * same kernel behaving differently under two machine shapes counts as
 * distinct coverage. Bins are plain strings: the map serializes to
 * JSON for reports, diffs cleanly in CI, and needs no registry.
 */

#ifndef APRES_EXPLORE_COVERAGE_HPP
#define APRES_EXPLORE_COVERAGE_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/gpu.hpp"

namespace apres {

class JsonWriter;

/**
 * The bins @p result lights up, each prefixed "<probe>/". Sorted and
 * deduplicated; pure function of its inputs.
 */
std::vector<std::string> coverageBins(const std::string& probe,
                                      const RunResult& result);

/** Accumulated campaign coverage: bin -> times lit. */
class CoverageMap
{
  public:
    /**
     * Fold @p bins in. @return the bins that were not covered before
     * this call (the candidate's novelty), in sorted order.
     */
    std::vector<std::string> add(const std::vector<std::string>& bins);

    /** True when @p bin has been lit at least once. */
    bool covers(const std::string& bin) const;

    /** Times @p bin has been lit (0 = never). */
    std::uint64_t timesLit(const std::string& bin) const;

    /** Distinct bins lit so far. */
    std::size_t size() const { return bins_.size(); }

    const std::map<std::string, std::uint64_t>& bins() const
    {
        return bins_;
    }

    /**
     * Rarity score of a bin set: sum of 1/timesLit over its covered
     * bins. Kernels holding rare bins score high and make better
     * mutation parents.
     */
    double rarity(const std::vector<std::string>& bins) const;

    /** Emit {"total": N, "bins": [{"name","count"}...]} (sorted). */
    void writeJson(JsonWriter& json) const;

  private:
    std::map<std::string, std::uint64_t> bins_;
};

} // namespace apres

#endif // APRES_EXPLORE_COVERAGE_HPP
