/**
 * @file
 * Exploration campaign: corpus loading, the steering loop, greedy
 * minimization, and the deterministic report.
 */

#include "explorer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/hash.hpp"
#include "common/json.hpp"
#include "common/sim_error.hpp"
#include "common/trace.hpp"
#include "sim/config_registry.hpp"
#include "sim/job_executor.hpp"

namespace apres {
namespace {

/** Candidate name: admission counter + signature content hash. */
std::string
candidateName(std::size_t index, const KernelSignature& sig)
{
    std::ostringstream os;
    os << "x";
    const std::string n = std::to_string(index);
    for (std::size_t i = n.size(); i < 3; ++i)
        os << '0';
    os << n << '_' << contentHash(serializeSignature(sig)).substr(0, 8);
    return os.str();
}

} // namespace

Explorer::Explorer(ExploreOptions options) : opts_(std::move(options))
{
    probes_ = opts_.probes.empty() ? defaultProbes() : opts_.probes;
}

std::vector<ProbeConfig>
Explorer::defaultProbes()
{
    // Three machine shapes chosen to expose different decision paths:
    // the full APRES stack on a small healthy machine, the same stack
    // squeezed (tiny L1, few MSHRs, adaptive bypass armed) so
    // saturation/bypass/early-eviction regimes light up, and a
    // non-APRES baseline so scheduler-independent bins (SLD walks,
    // plain MSHR behaviour) are reachable too.
    return {
        {"apres",
         {{"scheduler", "laws"}, {"prefetcher", "sap"}}},
        {"apres-tiny",
         {{"scheduler", "laws"},
          {"prefetcher", "sap"},
          {"l1.sizeBytes", "4096"},
          {"l1.numMshrs", "4"},
          {"lsu.adaptiveBypass", "true"}}},
        {"gto-sld",
         {{"scheduler", "gto"}, {"prefetcher", "sld"}}},
    };
}

std::vector<std::string>
Explorer::probeSignature(const KernelSignature& sig,
                         const std::string& name) const
{
    const auto kernel =
        std::make_shared<const Kernel>(buildKernel(sig, name));

    std::vector<std::string> bins;
    JobExecutor executor;
    for (std::size_t pi = 0; pi < probes_.size(); ++pi) {
        const ProbeConfig& probe = probes_[pi];
        GpuConfig cfg;
        ConfigRegistry reg(cfg);
        // A probe machine is small on purpose: candidate kernels are
        // tiny, and the regimes of interest (thrash, saturation,
        // stride detection) show up at any scale.
        reg.set("numSms", "2");
        reg.set("sm.warpsPerSm", "16");
        reg.set("sm.warpsPerBlock", "8");
        reg.set("maxCycles", "400000");
        reg.set("sim.metrics", "true");
        reg.set("sim.trace", "true");
        reg.set("sim.traceBufferEvents", "256");
        for (const auto& [key, value] : opts_.overrides)
            reg.set(key, value);
        for (const auto& [key, value] : probe.overrides)
            reg.set(key, value);
        // Fixed per-probe seed: a kernel's coverage is a function of
        // (kernel, probe) alone, never of campaign state, so corpus
        // regression tests can re-derive it exactly.
        cfg.seed = mix64(0xC0FFEE, pi, 0xBEEF) | 1;

        SweepJob job;
        job.label = probe.label + ":" + name;
        job.config = cfg;
        job.kernel = kernel;
        // The tracer's per-type totals are the only coverage source
        // RunResult does not already carry; fold them in as policy
        // stats so bin extraction needs nothing but the result row.
        job.inspect = [](const Gpu& gpu, RunResult& r) {
            if (const Tracer* t = gpu.tracer()) {
                for (const auto& [event, count] : t->eventTypeCounts())
                    r.policy.set("trace." + event,
                                 static_cast<double>(count));
            }
        };
        const JobOutcome outcome = executor.execute(job, cfg.seed);
        const auto probe_bins = coverageBins(probe.label, outcome.result);
        bins.insert(bins.end(), probe_bins.begin(), probe_bins.end());
    }
    std::sort(bins.begin(), bins.end());
    bins.erase(std::unique(bins.begin(), bins.end()), bins.end());
    return bins;
}

std::size_t
Explorer::loadCorpus()
{
    if (opts_.corpusDir.empty())
        return 0;
    namespace fs = std::filesystem;
    if (!fs::exists(opts_.corpusDir))
        return 0;

    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(opts_.corpusDir)) {
        if (entry.path().extension() == ".kt")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());

    for (const std::string& path : files) {
        std::ifstream in(path);
        if (!in)
            throwSerializationError("explore: cannot read corpus file " +
                                    path);
        std::string first_line;
        std::getline(in, first_line);
        const std::string marker = "# sig: ";
        if (first_line.rfind(marker, 0) != 0) {
            throwSerializationError(
                "explore: corpus file " + path +
                " has no '# sig:' header (not an explore corpus file)");
        }
        CorpusEntry entry;
        entry.signature = parseSignature(first_line.substr(marker.size()));
        entry.name = fs::path(path).stem().string();
        entry.loaded = true;
        entry.bins = probeSignature(entry.signature, entry.name);
        entry.newBins = coverage_.add(entry.bins);
        corpus_.push_back(std::move(entry));
    }
    return corpus_.size();
}

std::size_t
Explorer::pickParent(Rng& rng) const
{
    // Rarity-weighted tournament of 3: sample three members, keep the
    // one whose bins are rarest across the campaign so far.
    std::size_t best = rng.nextBounded(corpus_.size());
    double best_score = coverage_.rarity(corpus_[best].bins);
    for (int i = 0; i < 2; ++i) {
        const std::size_t cand = rng.nextBounded(corpus_.size());
        const double score = coverage_.rarity(corpus_[cand].bins);
        if (score > best_score) {
            best = cand;
            best_score = score;
        }
    }
    return best;
}

std::size_t
Explorer::run()
{
    loadedEntries_ = loadCorpus();
    initialCoverage_ = coverage_.size();

    Rng rng(opts_.seed);
    for (int round = 0; round < opts_.budget; ++round) {
        RoundRecord rec;
        rec.round = round;

        KernelSignature sig;
        if (corpus_.empty() || rng.nextDouble() < opts_.freshBias) {
            rec.mode = "fresh";
            sig = randomSignature(rng);
        } else {
            rec.mode = "mutate";
            const std::size_t parent = pickParent(rng);
            rec.parent = corpus_[parent].name;
            sig = corpus_[parent].signature;
            const int steps = 1 + static_cast<int>(rng.nextBounded(3));
            for (int s = 0; s < steps; ++s)
                sig = mutateSignature(sig, rng);
        }

        rec.name = candidateName(corpus_.size(), sig);
        const auto bins = probeSignature(sig, rec.name);
        rec.newBins = coverage_.add(bins);
        rec.accepted = !rec.newBins.empty();
        if (rec.accepted) {
            CorpusEntry entry;
            entry.name = rec.name;
            entry.signature = sig;
            entry.newBins = rec.newBins;
            entry.bins = bins;
            corpus_.push_back(std::move(entry));
        }
        rounds_.push_back(std::move(rec));
    }

    minimizeCorpus();
    writeCorpus();
    return coverage_.size() - initialCoverage_;
}

void
Explorer::minimizeCorpus()
{
    // Greedy backward elimination, newest first: an admitted kernel
    // is dropped when every bin it lights is lit by another kept
    // member. Loaded (checked-in) entries are never dropped — the
    // explorer must not invalidate an existing regression corpus.
    std::map<std::string, int> owners;
    for (const CorpusEntry& entry : corpus_) {
        for (const std::string& bin : entry.bins)
            ++owners[bin];
    }
    for (auto it = corpus_.rbegin(); it != corpus_.rend(); ++it) {
        if (it->loaded)
            continue;
        const bool redundant = std::all_of(
            it->bins.begin(), it->bins.end(),
            [&](const std::string& bin) { return owners[bin] >= 2; });
        if (redundant) {
            it->kept = false;
            for (const std::string& bin : it->bins)
                --owners[bin];
        }
    }
}

void
Explorer::writeCorpus() const
{
    if (opts_.corpusDir.empty())
        return;
    std::filesystem::create_directories(opts_.corpusDir);
    for (const CorpusEntry& entry : corpus_) {
        if (entry.loaded || !entry.kept)
            continue;
        const std::string path =
            opts_.corpusDir + "/" + entry.name + ".kt";
        std::ofstream out(path);
        if (!out)
            throwSerializationError("explore: cannot write corpus file " +
                                    path);
        out << kernelTextOf(entry.signature, entry.name);
    }
}

void
Explorer::writeReport(std::ostream& os) const
{
    JsonWriter json(os);
    json.beginObject();
    json.field("tool", "apres_explore");
    json.field("schema", "apres-explore-report-v1");
    json.field("mode", "explore");
    json.field("seed", opts_.seed);
    json.field("budget", static_cast<std::uint64_t>(opts_.budget));
    json.field("freshBias", opts_.freshBias);

    json.beginArray("probes");
    for (const ProbeConfig& probe : probes_) {
        json.beginObject();
        json.field("label", probe.label);
        json.beginObject("overrides");
        for (const auto& [key, value] : probe.overrides)
            json.field(key, value);
        json.endObject();
        json.endObject();
    }
    json.endArray();

    json.field("corpusLoaded",
               static_cast<std::uint64_t>(loadedEntries_));
    json.field("initialCoverage",
               static_cast<std::uint64_t>(initialCoverage_));
    json.field("finalCoverage",
               static_cast<std::uint64_t>(coverage_.size()));
    json.field("newBins", static_cast<std::uint64_t>(coverage_.size() -
                                                     initialCoverage_));

    json.beginArray("rounds");
    for (const RoundRecord& rec : rounds_) {
        json.beginObject();
        json.field("round", static_cast<std::uint64_t>(rec.round));
        json.field("mode", rec.mode);
        if (!rec.parent.empty())
            json.field("parent", rec.parent);
        json.field("name", rec.name);
        json.field("accepted", rec.accepted);
        json.beginArray("newBins");
        for (const std::string& bin : rec.newBins) {
            json.beginObject();
            json.field("bin", bin);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();

    json.beginArray("corpus");
    for (const CorpusEntry& entry : corpus_) {
        json.beginObject();
        json.field("name", entry.name);
        json.field("loaded", entry.loaded);
        json.field("kept", entry.kept);
        json.field("signature", serializeSignature(entry.signature));
        json.field("bins", static_cast<std::uint64_t>(entry.bins.size()));
        json.field("newBins",
                   static_cast<std::uint64_t>(entry.newBins.size()));
        json.endObject();
    }
    json.endArray();

    json.beginObject("coverage");
    coverage_.writeJson(json);
    json.endObject();
    json.endObject();
    json.finish();
}

} // namespace apres
