/**
 * @file
 * Coverage-bin extraction and the campaign coverage map.
 */

#include "coverage.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>

#include "common/json.hpp"

namespace apres {
namespace {

/** Policy/structural counter prefixes binned by magnitude. */
constexpr std::array<const char*, 8> kCounterPrefixes = {
    "laws.", "sap.", "ccws.", "mascar.", "pa.",
    "sld.",  "trace.", "metrics.ctr."};

/** Standalone structural counters binned by magnitude. */
constexpr std::array<const char*, 16> kCounterKeys = {
    "l1.mshrMerges",
    "l1.mshrFullEvents",
    "l1.earlyEvictions",
    "l1.usefulPrefetches",
    "l1.uselessPrefetchEvictions",
    "l1.prefetchDropHit",
    "l1.prefetchDropPending",
    "l1.prefetchDropMshrFull",
    "l1.demandMergedIntoPrefetch",
    "l1.hitAfterMiss",
    "l1.coldMisses",
    "l1.capacityConflictMisses",
    "lsu.mshrReplays",
    "prefetch.requested",
    "prefetch.issued",
    "dram.rowHits"};

/** Ratios binned by decile. */
constexpr std::array<const char*, 3> kRatioKeys = {
    "l1.missRate", "l2.missRate", "l1.earlyEvictionRatio"};

bool
startsWith(const std::string& s, const char* prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/** Per-SM breakdown keys ("sm3.l1.missRate") — machine-shape noise. */
bool
isPerSmKey(const std::string& key)
{
    return key.size() > 2 && key[0] == 's' && key[1] == 'm' &&
           std::isdigit(static_cast<unsigned char>(key[2]));
}

/** Magnitude regime of a counter: floor(log2(v)), clamped to [0,24]. */
int
magnitude(double value)
{
    int k = static_cast<int>(std::floor(std::log2(value)));
    return std::min(std::max(k, 0), 24);
}

/** "metrics.<hist>.b3" / ".underflow" / ".overflow" bucket keys. */
bool
isHistogramBucketKey(const std::string& key)
{
    const std::size_t dot = key.rfind('.');
    if (dot == std::string::npos)
        return false;
    const std::string leaf = key.substr(dot + 1);
    if (leaf == "underflow" || leaf == "overflow")
        return true;
    if (leaf.size() >= 2 && leaf[0] == 'b') {
        return std::all_of(leaf.begin() + 1, leaf.end(), [](char c) {
            return std::isdigit(static_cast<unsigned char>(c));
        });
    }
    return false;
}

} // namespace

std::vector<std::string>
coverageBins(const std::string& probe, const RunResult& result)
{
    std::vector<std::string> bins;
    const std::string head = probe + "/";

    bins.push_back(head + "status:" + result.status +
                   (result.status == "ok"
                        ? std::string()
                        : ":" + result.errorKind));
    bins.push_back(head + "completed:" +
                   (result.completed ? "1" : "0"));
    if (result.status != "ok") {
        // Failed rows carry no statistics worth binning.
        std::sort(bins.begin(), bins.end());
        return bins;
    }

    const StatSet stats = result.toStatSet();
    for (const auto& [key, value] : stats.entries()) {
        if (isPerSmKey(key))
            continue;

        for (const char* ratio : kRatioKeys) {
            if (key == ratio) {
                const int decile = std::min(
                    9, static_cast<int>(std::floor(value * 10.0)));
                bins.push_back(head + key + "@d" +
                               std::to_string(std::max(decile, 0)));
            }
        }

        if (value < 1.0)
            continue;

        bool counter = false;
        for (const char* prefix : kCounterPrefixes)
            counter = counter || startsWith(key, prefix);
        for (const char* exact : kCounterKeys)
            counter = counter || key == exact;
        // Histogram buckets matter by occupancy, not magnitude: which
        // bucket is populated is the signal, the count is not.
        if (!counter && startsWith(key, "metrics.") &&
            isHistogramBucketKey(key)) {
            bins.push_back(head + key + ">0");
            continue;
        }
        if (counter) {
            bins.push_back(head + key + "@2^" +
                           std::to_string(magnitude(value)));
        }
    }

    std::sort(bins.begin(), bins.end());
    bins.erase(std::unique(bins.begin(), bins.end()), bins.end());
    return bins;
}

std::vector<std::string>
CoverageMap::add(const std::vector<std::string>& bins)
{
    std::vector<std::string> fresh;
    for (const std::string& bin : bins) {
        auto [it, inserted] = bins_.emplace(bin, 0);
        if (inserted)
            fresh.push_back(bin);
        ++it->second;
    }
    std::sort(fresh.begin(), fresh.end());
    return fresh;
}

bool
CoverageMap::covers(const std::string& bin) const
{
    return bins_.count(bin) != 0;
}

std::uint64_t
CoverageMap::timesLit(const std::string& bin) const
{
    const auto it = bins_.find(bin);
    return it == bins_.end() ? 0 : it->second;
}

double
CoverageMap::rarity(const std::vector<std::string>& bins) const
{
    double score = 0.0;
    for (const std::string& bin : bins) {
        const std::uint64_t n = timesLit(bin);
        if (n > 0)
            score += 1.0 / static_cast<double>(n);
    }
    return score;
}

void
CoverageMap::writeJson(JsonWriter& json) const
{
    json.field("total", static_cast<std::uint64_t>(bins_.size()));
    json.beginArray("bins");
    for (const auto& [name, count] : bins_) {
        json.beginObject();
        json.field("name", name);
        json.field("count", count);
        json.endObject();
    }
    json.endArray();
}

} // namespace apres
