/**
 * @file
 * Statistical policy comparison: N-seed paired runs with bootstrap
 * confidence intervals, replacing single-run speedup deltas.
 *
 * For every (kernel, policy) cell the harness runs the same kernel
 * under numSeeds distinct seeds (paired across policies: seed index i
 * uses the identical GpuConfig::seed for every policy, so per-seed
 * speedup ratios cancel seed-induced variance). Per ordered policy
 * pair it reports the mean per-seed speedup and a percentile-bootstrap
 * 95% confidence interval over the paired ratios — a pair whose CI
 * straddles 1.0 has not demonstrated a win, however good its mean
 * looks.
 *
 * Runs go through the SweepRunner thread pool in kUseConfigSeed mode
 * (results in submission order, so parallelism never changes the
 * report) and are optionally memoized in the serve result cache:
 * the cell's cache key is the same computeCacheKey() the daemon uses,
 * so a warm re-run of a sweep costs zero simulations.
 *
 * Everything is deterministic: seeds derive from (base seed, kernel
 * index, seed index) via mix64, bootstrap resampling draws from an
 * apres::Rng seeded per cell, and reports carry no wall times.
 */

#ifndef APRES_EXPLORE_POLICY_COMPARE_HPP
#define APRES_EXPLORE_POLICY_COMPARE_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace apres {

/** One contender: a scheduler/prefetcher pairing. */
struct ComparePolicy
{
    std::string scheduler = "lrr";
    std::string prefetcher = "none";

    /** "laws+sap", "gto+none", ... (report and cell label). */
    std::string label() const { return scheduler + "+" + prefetcher; }
};

/** One workload under comparison: named workload or inline text. */
struct CompareKernel
{
    std::string label;
    std::string workload;   ///< Table IV abbreviation; empty for text
    double scale = 1.0;     ///< named-workload trip multiplier
    std::string kernelText; ///< .kt text (corpus kernels); empty for named
};

/** Harness options. */
struct CompareOptions
{
    std::uint64_t seed = 1;  ///< base seed; pairs cells across policies
    int numSeeds = 20;       ///< paired seeds per cell (>= 2)
    int resamples = 1000;    ///< bootstrap resamples per pair
    double confidence = 0.95;

    std::vector<ComparePolicy> policies; ///< >= 2
    std::vector<CompareKernel> kernels;  ///< >= 1

    /** Dotted overrides applied to every cell (machine shaping). */
    std::vector<std::pair<std::string, std::string>> overrides;

    /** Serve result-cache directory; empty disables memoization. */
    std::string cacheDir;

    /** Sweep threads; <= 0 selects defaultJobCount(). */
    int threads = 0;
};

/** One ordered policy pair on one kernel. */
struct ComparePair
{
    std::string kernel;
    std::string baseline;   ///< policy A label
    std::string candidate;  ///< policy B label
    int n = 0;              ///< paired seeds
    double meanIpcBaseline = 0.0;
    double meanIpcCandidate = 0.0;
    double meanSpeedup = 0.0; ///< mean of per-seed candidate/baseline
    double ciLow = 0.0;       ///< bootstrap CI lower bound
    double ciHigh = 0.0;      ///< bootstrap CI upper bound
    double winFraction = 0.0; ///< seeds with ratio > 1
    std::vector<double> speedups; ///< per-seed ratios, seed order
};

/** The full comparison result. */
struct CompareReport
{
    std::uint64_t seed = 0;
    int numSeeds = 0;
    int resamples = 0;
    double confidence = 0.95;
    std::vector<std::string> policies;
    std::vector<std::string> kernels;
    std::vector<ComparePair> pairs;
    std::uint64_t simulations = 0; ///< cells actually simulated
    std::uint64_t cacheHits = 0;   ///< cells served from the cache

    /** Deterministic JSON document (schema apres-compare-report-v1). */
    void writeJson(std::ostream& os) const;

    /** One CSV row per pair (spreadsheet-side consumption). */
    void writeCsv(std::ostream& os) const;
};

/**
 * Percentile bootstrap CI of the mean of @p samples: resample with
 * replacement @p resamples times, take the (1-confidence)/2 and
 * 1-(1-confidence)/2 quantiles of the resampled means. Deterministic
 * given @p rng's state. Throws SimError(kConfig) on empty samples or
 * out-of-range parameters.
 */
std::pair<double, double> bootstrapMeanCi(
    const std::vector<double>& samples, int resamples, double confidence,
    Rng& rng);

/**
 * Run the comparison. Throws SimError(kConfig) on malformed options
 * and propagates the first simulation failure (a statistics harness
 * must not average over error rows).
 */
CompareReport runComparison(const CompareOptions& options);

} // namespace apres

#endif // APRES_EXPLORE_POLICY_COMPARE_HPP
