/**
 * @file
 * Parameterized kernel signatures: the explore subsystem's genome.
 *
 * A KernelSignature is a compact, fully-value-typed description of one
 * synthetic kernel over the paper's Table-I load taxonomy: a list of
 * load slots (pattern kind, region, strides, footprint, sharing
 * factors, divergence shape, dependence on the previous load, trailing
 * ALU chain) plus kernel-level structure (barrier placement, trailing
 * store, trip count, generator seed). The signature — not the built
 * Kernel — is what the exploration loop mutates, serializes into the
 * corpus, and replays, because a signature is trivially hashable,
 * diffable and bounded while a Kernel is not.
 *
 * Everything here is deterministic: random generation and mutation
 * draw exclusively from apres::Rng (std:: distributions are
 * implementation-defined and would unpin the corpus across
 * platforms), every continuous axis is quantized to a small table of
 * values, and buildKernel() is a pure function of the signature.
 *
 * The emitted kernels always satisfy the kernel-text contract
 * (kernel_text.hpp): barriers are only placed when the preceding
 * memory op ran with full lanes, PCs are auto-assigned (no
 * collisions), and every generator is used exactly once — so
 * kernelText() output round-trips through parseKernelText() and can
 * be checked into tests/corpus as a regression workload.
 */

#ifndef APRES_EXPLORE_SIGNATURE_HPP
#define APRES_EXPLORE_SIGNATURE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "isa/kernel.hpp"

namespace apres {

/** Address-pattern class of one load slot (Table-I taxonomy). */
enum class LoadKind : std::uint8_t {
    kUniform,   ///< one shared address (extreme locality)
    kWindow,    ///< shared bounded window (KM-style thrasher)
    kStrided,   ///< inter-warp strided streaming (STR/SAP food)
    kIrregular, ///< stride-free with partial sharing (graph loads)
    kZipf,      ///< hot-set skewed (SPMV/PA-style locality)
};

/** Stable lower-case name of @p kind ("strided", "zipf", ...). */
const char* loadKindName(LoadKind kind);

/** One static load slot of a generated kernel. */
struct LoadSpec
{
    LoadKind kind = LoadKind::kStrided;

    /** Region selector; the slot's base address is region << 22. */
    std::uint32_t region = 1;

    /** Inter-warp stride / window skew in bytes (strided, window). */
    std::int64_t warpStride = 512;

    /** Per-iteration step in bytes (strided, window). */
    std::int64_t iterStride = 128;

    /** Footprint in 128 B lines (window, irregular, zipf). */
    std::uint64_t footprintLines = 512;

    int shareWarps = 2;    ///< irregular: warps per sharing group
    int shareIters = 2;    ///< irregular: iterations per shared line
    int lagIters = 0;      ///< irregular: iteration lag between partners

    /** Zipf skew in quarter units (alpha = alphaQuarters * 0.25). */
    int alphaQuarters = 4;

    int laneStride = 4;    ///< byte distance between lanes (4 = coalesced)
    int activeLanes = 32;  ///< divergence shape (kWarpSize = converged)

    /** Chain this load's address behind the previous load's value. */
    bool dependsOnPrev = false;

    /** Dependent ALU instructions consuming the loaded value (0..4). */
    int aluAfter = 1;
};

/** A complete kernel genome. */
struct KernelSignature
{
    std::vector<LoadSpec> loads;    ///< 1..6 slots
    int barrierEvery = 0;           ///< block barrier after every k-th
                                    ///< converged slot; 0 = none
    bool storeAtEnd = true;         ///< trailing strided store
    std::uint64_t tripCount = 16;   ///< loop iterations per warp
    std::uint64_t genSeed = 1;      ///< seeds irregular/zipf hashing
};

/**
 * Canonical one-line serialization ("sig v1 seed=.. trips=.. ... |
 * kind=strided region=..  | ..."). parseSignature() round-trips it;
 * corpus .kt files carry it as a leading `# sig:` comment so the
 * exploration loop can re-adopt checked-in kernels as parents.
 */
std::string serializeSignature(const KernelSignature& sig);

/**
 * Parse serializeSignature() output. Throws
 * SimError(kSerialization) on malformed input.
 */
KernelSignature parseSignature(const std::string& text);

/**
 * Build the kernel a signature describes. Pure; throws KernelError
 * only on signature shapes the builder rejects (never for signatures
 * produced by randomSignature/mutateSignature, whose value tables are
 * chosen to keep every genome buildable).
 */
Kernel buildKernel(const KernelSignature& sig, const std::string& name);

/**
 * Kernel-text form of the signature's kernel: a `# sig:` header
 * comment followed by writeKernelText() output. Parses back with
 * parseKernelText(); this is the corpus file format (DESIGN.md §13).
 */
std::string kernelTextOf(const KernelSignature& sig,
                         const std::string& name);

/** Draw a uniformly random (quantized) signature. */
KernelSignature randomSignature(Rng& rng);

/**
 * Return a copy of @p sig with one random mutation applied: a load
 * field tweaked, a slot added/removed/rekinded, or a kernel-level
 * knob (barrier cadence, store, trips, seed) changed. Callers stack
 * several calls for larger steps.
 */
KernelSignature mutateSignature(const KernelSignature& sig, Rng& rng);

} // namespace apres

#endif // APRES_EXPLORE_SIGNATURE_HPP
