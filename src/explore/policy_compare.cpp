/**
 * @file
 * The paired-seed comparison harness and its bootstrap machinery.
 */

#include "policy_compare.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "common/csv.hpp"
#include "common/json.hpp"
#include "common/json_value.hpp"
#include "common/parse.hpp"
#include "common/sim_error.hpp"
#include "isa/address_gen.hpp"
#include "isa/kernel_text.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "sim/config_registry.hpp"
#include "sim/runner.hpp"
#include "workloads/workload.hpp"

namespace apres {
namespace {

/** Per-cell seed: paired across policies (no policy term on purpose). */
std::uint64_t
cellSeed(std::uint64_t base, std::size_t kernel_index,
         std::size_t seed_index)
{
    return mix64(base, kernel_index, seed_index) | 1;
}

struct CellRef
{
    std::size_t kernel = 0;
    std::size_t policy = 0;
    std::size_t seedIndex = 0;
    std::string cacheKey; ///< empty when caching is off
};

} // namespace

std::pair<double, double>
bootstrapMeanCi(const std::vector<double>& samples, int resamples,
                double confidence, Rng& rng)
{
    if (samples.empty())
        throwConfigError("bootstrap: no samples");
    if (resamples < 1)
        throwConfigError("bootstrap: resamples must be >= 1");
    if (confidence <= 0.0 || confidence >= 1.0)
        throwConfigError("bootstrap: confidence must be in (0, 1)");

    const std::size_t n = samples.size();
    std::vector<double> means;
    means.reserve(static_cast<std::size_t>(resamples));
    for (int r = 0; r < resamples; ++r) {
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            sum += samples[rng.nextBounded(n)];
        means.push_back(sum / static_cast<double>(n));
    }
    std::sort(means.begin(), means.end());

    // Nearest-rank quantiles of the resampled means; clamping keeps
    // tiny resample counts from indexing past either end.
    const double tail = (1.0 - confidence) / 2.0;
    const auto rank = [&](double q) {
        const auto idx = static_cast<std::size_t>(
            q * static_cast<double>(means.size() - 1) + 0.5);
        return means[std::min(idx, means.size() - 1)];
    };
    return {rank(tail), rank(1.0 - tail)};
}

CompareReport
runComparison(const CompareOptions& options)
{
    if (options.policies.size() < 2)
        throwConfigError("compare: need at least two policies");
    if (options.kernels.empty())
        throwConfigError("compare: need at least one kernel");
    if (options.numSeeds < 2)
        throwConfigError("compare: need at least two seeds per cell");

    // Build every kernel once; cells share them immutably.
    std::vector<std::shared_ptr<const Kernel>> kernels;
    kernels.reserve(options.kernels.size());
    for (const CompareKernel& spec : options.kernels) {
        if (!spec.workload.empty()) {
            kernels.push_back(std::make_shared<const Kernel>(
                makeWorkload(spec.workload, spec.scale).kernel));
        } else if (!spec.kernelText.empty()) {
            kernels.push_back(std::make_shared<const Kernel>(
                parseKernelText(spec.kernelText)));
        } else {
            throwConfigError("compare: kernel '" + spec.label +
                             "' has neither a workload nor kernel text");
        }
    }

    CompareReport report;
    report.seed = options.seed;
    report.numSeeds = options.numSeeds;
    report.resamples = options.resamples;
    report.confidence = options.confidence;
    for (const ComparePolicy& p : options.policies)
        report.policies.push_back(p.label());
    for (const CompareKernel& k : options.kernels)
        report.kernels.push_back(k.label);

    std::unique_ptr<ResultCache> cache;
    if (!options.cacheDir.empty())
        cache = std::make_unique<ResultCache>(options.cacheDir);

    // ipc[kernel][policy][seedIndex]
    std::vector<std::vector<std::vector<double>>> ipc(
        options.kernels.size(),
        std::vector<std::vector<double>>(
            options.policies.size(),
            std::vector<double>(
                static_cast<std::size_t>(options.numSeeds), 0.0)));

    RunnerOptions runner_opts;
    runner_opts.threads = options.threads;
    runner_opts.seedMode = SeedMode::kUseConfigSeed;
    SweepRunner runner(runner_opts);
    std::vector<CellRef> submitted;

    for (std::size_t ki = 0; ki < options.kernels.size(); ++ki) {
        for (std::size_t pi = 0; pi < options.policies.size(); ++pi) {
            for (std::size_t si = 0;
                 si < static_cast<std::size_t>(options.numSeeds); ++si) {
                GpuConfig cfg;
                ConfigRegistry reg(cfg);
                for (const auto& [key, value] : options.overrides)
                    reg.set(key, value);
                reg.set("scheduler", options.policies[pi].scheduler);
                reg.set("prefetcher", options.policies[pi].prefetcher);
                cfg.seed = cellSeed(options.seed, ki, si);

                std::string key;
                if (cache) {
                    ServeJobSpec spec;
                    spec.workload = options.kernels[ki].workload;
                    spec.scale = options.kernels[ki].scale;
                    spec.kernelText = options.kernels[ki].kernelText;
                    key = computeCacheKey(serveFingerprint(),
                                          kernelFingerprint(spec),
                                          reg.semanticSnapshot());
                    if (const auto payload = cache->lookup(key)) {
                        const JsonValue doc = JsonValue::parse(*payload);
                        ipc[ki][pi][si] =
                            doc.at("stats").at("sim.ipc").asDouble();
                        ++report.cacheHits;
                        continue;
                    }
                }

                SweepJob job;
                job.label = options.kernels[ki].label + "/" +
                            options.policies[pi].label() + "/s" +
                            std::to_string(si);
                job.config = cfg;
                job.kernel = kernels[ki];
                runner.submit(std::move(job));
                submitted.push_back({ki, pi, si, key});
            }
        }
    }

    if (!submitted.empty()) {
        const std::vector<SweepResult> results = runner.runAll();
        for (std::size_t i = 0; i < results.size(); ++i) {
            const RunResult& r = results[i].result;
            if (r.status != "ok") {
                // Averaging over error rows would silently bias the
                // statistics; fail the whole comparison instead.
                throwConfigError("compare: job '" + results[i].label +
                                 "' failed (" + r.errorKind + ": " +
                                 r.errorDetail + ")");
            }
            const CellRef& ref = submitted[i];
            ipc[ref.kernel][ref.policy][ref.seedIndex] = r.ipc;
            ++report.simulations;
            if (cache && !ref.cacheKey.empty())
                cache->store(ref.cacheKey, serializeRunResult(r));
        }
    }

    std::size_t pair_index = 0;
    for (std::size_t ki = 0; ki < options.kernels.size(); ++ki) {
        for (std::size_t a = 0; a < options.policies.size(); ++a) {
            for (std::size_t b = a + 1; b < options.policies.size();
                 ++b, ++pair_index) {
                ComparePair pair;
                pair.kernel = options.kernels[ki].label;
                pair.baseline = options.policies[a].label();
                pair.candidate = options.policies[b].label();
                pair.n = options.numSeeds;

                double sum_a = 0.0;
                double sum_b = 0.0;
                int wins = 0;
                for (std::size_t si = 0;
                     si < static_cast<std::size_t>(options.numSeeds);
                     ++si) {
                    const double ia = ipc[ki][a][si];
                    const double ib = ipc[ki][b][si];
                    if (ia <= 0.0) {
                        throwConfigError(
                            "compare: baseline " + pair.baseline + " on " +
                            pair.kernel + " produced zero IPC (seed " +
                            std::to_string(si) + ")");
                    }
                    sum_a += ia;
                    sum_b += ib;
                    const double ratio = ib / ia;
                    pair.speedups.push_back(ratio);
                    if (ratio > 1.0)
                        ++wins;
                }
                const auto n = static_cast<double>(options.numSeeds);
                pair.meanIpcBaseline = sum_a / n;
                pair.meanIpcCandidate = sum_b / n;
                double ratio_sum = 0.0;
                for (double r : pair.speedups)
                    ratio_sum += r;
                pair.meanSpeedup = ratio_sum / n;
                pair.winFraction = wins / n;

                Rng rng(mix64(options.seed, 0xB007'57A9, pair_index));
                const auto [lo, hi] =
                    bootstrapMeanCi(pair.speedups, options.resamples,
                                    options.confidence, rng);
                pair.ciLow = lo;
                pair.ciHigh = hi;
                report.pairs.push_back(std::move(pair));
            }
        }
    }
    return report;
}

void
CompareReport::writeJson(std::ostream& os) const
{
    JsonWriter json(os);
    json.beginObject();
    json.field("tool", "apres_explore");
    json.field("schema", "apres-compare-report-v1");
    json.field("mode", "compare");
    json.field("seed", seed);
    json.field("numSeeds", static_cast<std::uint64_t>(numSeeds));
    json.field("resamples", static_cast<std::uint64_t>(resamples));
    json.field("confidence", confidence);

    json.beginArray("policies");
    for (const std::string& p : policies) {
        json.beginObject();
        json.field("label", p);
        json.endObject();
    }
    json.endArray();

    json.beginArray("kernels");
    for (const std::string& k : kernels) {
        json.beginObject();
        json.field("label", k);
        json.endObject();
    }
    json.endArray();

    json.beginArray("pairs");
    for (const ComparePair& pair : pairs) {
        json.beginObject();
        json.field("kernel", pair.kernel);
        json.field("baseline", pair.baseline);
        json.field("candidate", pair.candidate);
        json.field("n", static_cast<std::uint64_t>(pair.n));
        json.field("meanIpcBaseline", pair.meanIpcBaseline);
        json.field("meanIpcCandidate", pair.meanIpcCandidate);
        json.field("meanSpeedup", pair.meanSpeedup);
        json.field("ciLow", pair.ciLow);
        json.field("ciHigh", pair.ciHigh);
        json.field("winFraction", pair.winFraction);
        json.beginArray("speedups");
        for (double s : pair.speedups) {
            json.beginObject();
            json.field("value", s);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();

    json.field("simulations", simulations);
    json.field("cacheHits", cacheHits);
    json.endObject();
    json.finish();
}

void
CompareReport::writeCsv(std::ostream& os) const
{
    os << "kernel,baseline,candidate,n,meanIpcBaseline,meanIpcCandidate,"
          "meanSpeedup,ciLow,ciHigh,winFraction\n";
    for (const ComparePair& pair : pairs) {
        os << csvEscapeField(pair.kernel) << ','
           << csvEscapeField(pair.baseline) << ','
           << csvEscapeField(pair.candidate) << ',' << pair.n << ','
           << formatDouble(pair.meanIpcBaseline) << ','
           << formatDouble(pair.meanIpcCandidate) << ','
           << formatDouble(pair.meanSpeedup) << ','
           << formatDouble(pair.ciLow) << ',' << formatDouble(pair.ciHigh)
           << ',' << formatDouble(pair.winFraction) << '\n';
    }
}

} // namespace apres
