/**
 * @file
 * Signature serialization, kernel construction, and the quantized
 * random-generation / mutation operators.
 */

#include "signature.hpp"

#include <array>
#include <sstream>

#include "common/sim_error.hpp"
#include "isa/kernel_text.hpp"

namespace apres {
namespace {

// Quantized value tables. Every axis the explorer can touch draws
// from one of these, so the signature space is finite, every genome
// is buildable, and a mutation is always a legal value — the loop
// never wastes budget on rejected kernels.
constexpr std::array<std::int64_t, 9> kWarpStrides = {
    0, 4, 32, 128, 256, 512, 1024, 4096, 16384};
constexpr std::array<std::int64_t, 6> kIterStrides = {0,   4,    128,
                                                     256, 1024, 4096};
constexpr std::array<std::uint64_t, 6> kFootprints = {8,   32,   128,
                                                     512, 2048, 8192};
constexpr std::array<int, 5> kAlphaQuarters = {0, 2, 4, 6, 8};
constexpr std::array<int, 5> kLaneStrides = {4, 8, 32, 64, 128};
constexpr std::array<int, 6> kActiveLanes = {1, 2, 4, 8, 16, 32};
constexpr std::array<std::uint64_t, 5> kTripCounts = {4, 8, 16, 32, 64};
constexpr std::size_t kMaxLoads = 6;
constexpr std::uint32_t kMaxRegion = 63;

template <typename Table>
auto
pick(Rng& rng, const Table& table)
{
    return table[static_cast<std::size_t>(rng.nextBounded(table.size()))];
}

LoadKind
pickKind(Rng& rng)
{
    // Strided and irregular twice: they are the Table-I classes the
    // APRES mechanisms key on, so bias discovery toward them.
    constexpr std::array<LoadKind, 7> kKinds = {
        LoadKind::kUniform,   LoadKind::kWindow, LoadKind::kStrided,
        LoadKind::kStrided,   LoadKind::kIrregular,
        LoadKind::kIrregular, LoadKind::kZipf};
    return pick(rng, kKinds);
}

LoadSpec
randomLoad(Rng& rng)
{
    LoadSpec s;
    s.kind = pickKind(rng);
    s.region = 1 + static_cast<std::uint32_t>(rng.nextBounded(kMaxRegion));
    s.warpStride = pick(rng, kWarpStrides);
    s.iterStride = pick(rng, kIterStrides);
    s.footprintLines = pick(rng, kFootprints);
    s.shareWarps = 1 + static_cast<int>(rng.nextBounded(8));
    s.shareIters = 1 + static_cast<int>(rng.nextBounded(8));
    s.lagIters = static_cast<int>(rng.nextBounded(5));
    s.alphaQuarters = pick(rng, kAlphaQuarters);
    s.laneStride = pick(rng, kLaneStrides);
    s.activeLanes = pick(rng, kActiveLanes);
    s.dependsOnPrev = rng.nextBounded(2) != 0;
    s.aluAfter = static_cast<int>(rng.nextBounded(5));
    return s;
}

AddressGenPtr
makeGen(const LoadSpec& s, std::size_t slot, std::uint64_t gen_seed)
{
    const Addr base = static_cast<Addr>(s.region) << 22;
    const std::uint64_t seed = mix64(gen_seed, slot, 0xAD5E'ED);
    switch (s.kind) {
      case LoadKind::kUniform:
        return std::make_unique<UniformGen>(base + 0x40);
      case LoadKind::kWindow:
        return std::make_unique<SharedWindowGen>(
            base, s.footprintLines * 128, s.iterStride, s.warpStride);
      case LoadKind::kStrided:
        return std::make_unique<StridedGen>(base, s.warpStride,
                                            s.iterStride);
      case LoadKind::kIrregular:
        return std::make_unique<IrregularGen>(
            base, s.footprintLines * 128, s.shareWarps, s.shareIters,
            seed, s.lagIters);
      case LoadKind::kZipf:
        return std::make_unique<ZipfGen>(
            base, static_cast<std::size_t>(s.footprintLines),
            s.alphaQuarters * 0.25, seed);
    }
    throwKernelError("signature: unknown load kind");
}

std::uint64_t
parseField(const std::string& token, const std::string& key,
           bool* matched)
{
    const std::string prefix = key + "=";
    if (token.rfind(prefix, 0) != 0) {
        *matched = false;
        return 0;
    }
    *matched = true;
    const std::string value = token.substr(prefix.size());
    std::uint64_t out = 0;
    std::size_t pos = 0;
    try {
        out = std::stoull(value, &pos, 10);
    } catch (const std::exception&) {
        throwSerializationError("signature: bad value in '" + token + "'");
    }
    if (pos != value.size())
        throwSerializationError("signature: bad value in '" + token + "'");
    return out;
}

std::int64_t
parseSigned(const std::string& token, const std::string& key,
            bool* matched)
{
    const std::string prefix = key + "=";
    if (token.rfind(prefix, 0) != 0) {
        *matched = false;
        return 0;
    }
    *matched = true;
    const std::string value = token.substr(prefix.size());
    std::int64_t out = 0;
    std::size_t pos = 0;
    try {
        out = std::stoll(value, &pos, 10);
    } catch (const std::exception&) {
        throwSerializationError("signature: bad value in '" + token + "'");
    }
    if (pos != value.size())
        throwSerializationError("signature: bad value in '" + token + "'");
    return out;
}

LoadKind
parseKind(const std::string& name)
{
    for (LoadKind k :
         {LoadKind::kUniform, LoadKind::kWindow, LoadKind::kStrided,
          LoadKind::kIrregular, LoadKind::kZipf}) {
        if (name == loadKindName(k))
            return k;
    }
    throwSerializationError("signature: unknown load kind '" + name + "'");
}

} // namespace

const char*
loadKindName(LoadKind kind)
{
    switch (kind) {
      case LoadKind::kUniform: return "uniform";
      case LoadKind::kWindow: return "window";
      case LoadKind::kStrided: return "strided";
      case LoadKind::kIrregular: return "irregular";
      case LoadKind::kZipf: return "zipf";
    }
    return "?";
}

std::string
serializeSignature(const KernelSignature& sig)
{
    std::ostringstream os;
    os << "sig v1 seed=" << sig.genSeed << " trips=" << sig.tripCount
       << " barrier=" << sig.barrierEvery
       << " store=" << (sig.storeAtEnd ? 1 : 0);
    for (const LoadSpec& s : sig.loads) {
        os << " | kind=" << loadKindName(s.kind) << " region=" << s.region
           << " warp=" << s.warpStride << " iter=" << s.iterStride
           << " fp=" << s.footprintLines << " sw=" << s.shareWarps
           << " si=" << s.shareIters << " lag=" << s.lagIters
           << " aq=" << s.alphaQuarters << " ls=" << s.laneStride
           << " lanes=" << s.activeLanes
           << " dep=" << (s.dependsOnPrev ? 1 : 0) << " alu=" << s.aluAfter;
    }
    return os.str();
}

KernelSignature
parseSignature(const std::string& text)
{
    // Split on '|': segment 0 is the header, the rest are load slots.
    std::vector<std::string> segments;
    std::string current;
    std::istringstream in(text);
    std::string token;
    segments.emplace_back();
    while (in >> token) {
        if (token == "|")
            segments.emplace_back();
        else
            segments.back() += token + " ";
    }

    std::istringstream head(segments.front());
    std::string word;
    if (!(head >> word) || word != "sig")
        throwSerializationError("signature: missing 'sig' magic");
    if (!(head >> word) || word != "v1")
        throwSerializationError("signature: unsupported version '" + word +
                                "'");

    KernelSignature sig;
    sig.loads.clear();
    while (head >> token) {
        bool m = false;
        if (std::uint64_t v = parseField(token, "seed", &m); m)
            sig.genSeed = v;
        else if (std::uint64_t v2 = parseField(token, "trips", &m); m)
            sig.tripCount = v2;
        else if (std::int64_t v3 = parseSigned(token, "barrier", &m); m)
            sig.barrierEvery = static_cast<int>(v3);
        else if (std::uint64_t v4 = parseField(token, "store", &m); m)
            sig.storeAtEnd = v4 != 0;
        else
            throwSerializationError("signature: unknown header token '" +
                                    token + "'");
    }

    for (std::size_t i = 1; i < segments.size(); ++i) {
        std::istringstream seg(segments[i]);
        LoadSpec s;
        while (seg >> token) {
            bool m = false;
            if (token.rfind("kind=", 0) == 0) {
                s.kind = parseKind(token.substr(5));
                continue;
            }
            if (std::uint64_t v = parseField(token, "region", &m); m)
                s.region = static_cast<std::uint32_t>(v);
            else if (std::int64_t v2 = parseSigned(token, "warp", &m); m)
                s.warpStride = v2;
            else if (std::int64_t v3 = parseSigned(token, "iter", &m); m)
                s.iterStride = v3;
            else if (std::uint64_t v4 = parseField(token, "fp", &m); m)
                s.footprintLines = v4;
            else if (std::uint64_t v5 = parseField(token, "sw", &m); m)
                s.shareWarps = static_cast<int>(v5);
            else if (std::uint64_t v6 = parseField(token, "si", &m); m)
                s.shareIters = static_cast<int>(v6);
            else if (std::uint64_t v7 = parseField(token, "lag", &m); m)
                s.lagIters = static_cast<int>(v7);
            else if (std::uint64_t v8 = parseField(token, "aq", &m); m)
                s.alphaQuarters = static_cast<int>(v8);
            else if (std::uint64_t v9 = parseField(token, "ls", &m); m)
                s.laneStride = static_cast<int>(v9);
            else if (std::uint64_t va = parseField(token, "lanes", &m); m)
                s.activeLanes = static_cast<int>(va);
            else if (std::uint64_t vb = parseField(token, "dep", &m); m)
                s.dependsOnPrev = vb != 0;
            else if (std::uint64_t vc = parseField(token, "alu", &m); m)
                s.aluAfter = static_cast<int>(vc);
            else
                throwSerializationError("signature: unknown load token '" +
                                        token + "'");
        }
        sig.loads.push_back(s);
    }
    if (sig.loads.empty())
        throwSerializationError("signature: no load slots");
    if (sig.tripCount == 0)
        throwSerializationError("signature: trips must be >= 1");
    return sig;
}

Kernel
buildKernel(const KernelSignature& sig, const std::string& name)
{
    KernelBuilder b(name);
    int prev_reg = kNoReg;
    int converged_slots = 0;
    bool last_mem_full = true;
    for (std::size_t i = 0; i < sig.loads.size(); ++i) {
        const LoadSpec& s = sig.loads[i];
        const int src =
            (s.dependsOnPrev && prev_reg != kNoReg) ? prev_reg : kNoReg;
        int r = b.load(makeGen(s, i, sig.genSeed), s.laneStride,
                       kInvalidPc, src, s.activeLanes);
        last_mem_full = s.activeLanes >= kWarpSize;
        if (s.aluAfter > 0)
            r = b.alu({r}, s.aluAfter);
        prev_reg = r;
        // Barriers only make sense between converged phases: the text
        // format (and real hardware) rejects a block barrier while
        // part of the warp is masked off, so divergent slots simply
        // don't count toward the cadence.
        if (last_mem_full) {
            ++converged_slots;
            if (sig.barrierEvery > 0 &&
                converged_slots % sig.barrierEvery == 0 &&
                i + 1 < sig.loads.size()) {
                b.barrier();
            }
        }
    }
    if (sig.storeAtEnd && last_mem_full && prev_reg != kNoReg) {
        b.store(std::make_unique<StridedGen>(
                    static_cast<Addr>(kMaxRegion + 1) << 22, 4096, 128),
                prev_reg);
    }
    return b.build(sig.tripCount);
}

std::string
kernelTextOf(const KernelSignature& sig, const std::string& name)
{
    std::ostringstream os;
    os << "# sig: " << serializeSignature(sig) << "\n";
    writeKernelText(buildKernel(sig, name), os);
    return os.str();
}

KernelSignature
randomSignature(Rng& rng)
{
    KernelSignature sig;
    const std::size_t n = 1 + rng.nextBounded(kMaxLoads);
    sig.loads.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        sig.loads.push_back(randomLoad(rng));
    sig.barrierEvery = static_cast<int>(rng.nextBounded(4));
    sig.storeAtEnd = rng.nextBounded(2) != 0;
    sig.tripCount = pick(rng, kTripCounts);
    sig.genSeed = rng.next() | 1;
    return sig;
}

KernelSignature
mutateSignature(const KernelSignature& sig, Rng& rng)
{
    KernelSignature out = sig;
    const std::uint64_t op = rng.nextBounded(10);
    const std::size_t slot = rng.nextBounded(out.loads.size());
    LoadSpec& s = out.loads[slot];
    switch (op) {
      case 0: // structural: add a fresh slot
        if (out.loads.size() < kMaxLoads)
            out.loads.insert(
                out.loads.begin() +
                    static_cast<std::ptrdiff_t>(
                        rng.nextBounded(out.loads.size() + 1)),
                randomLoad(rng));
        else
            s.kind = pickKind(rng);
        break;
      case 1: // structural: drop a slot
        if (out.loads.size() > 1)
            out.loads.erase(out.loads.begin() +
                            static_cast<std::ptrdiff_t>(slot));
        else
            out.loads[0] = randomLoad(rng);
        break;
      case 2: s.kind = pickKind(rng); break;
      case 3:
        s.warpStride = pick(rng, kWarpStrides);
        s.iterStride = pick(rng, kIterStrides);
        break;
      case 4:
        s.footprintLines = pick(rng, kFootprints);
        s.region =
            1 + static_cast<std::uint32_t>(rng.nextBounded(kMaxRegion));
        break;
      case 5:
        s.shareWarps = 1 + static_cast<int>(rng.nextBounded(8));
        s.shareIters = 1 + static_cast<int>(rng.nextBounded(8));
        s.lagIters = static_cast<int>(rng.nextBounded(5));
        s.alphaQuarters = pick(rng, kAlphaQuarters);
        break;
      case 6:
        s.laneStride = pick(rng, kLaneStrides);
        s.activeLanes = pick(rng, kActiveLanes);
        break;
      case 7:
        s.dependsOnPrev = !s.dependsOnPrev;
        s.aluAfter = static_cast<int>(rng.nextBounded(5));
        break;
      case 8:
        out.barrierEvery = static_cast<int>(rng.nextBounded(4));
        out.storeAtEnd = rng.nextBounded(2) != 0;
        break;
      default:
        out.tripCount = pick(rng, kTripCounts);
        out.genSeed = rng.next() | 1;
        break;
    }
    return out;
}

} // namespace apres
