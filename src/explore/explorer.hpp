/**
 * @file
 * The coverage-guided exploration loop.
 *
 * Each round the explorer either draws a fresh random signature or
 * mutates a corpus parent (chosen by rarity-weighted tournament: a
 * kernel holding bins few others hold is the most promising thing to
 * perturb), builds the kernel, and runs it under a small set of probe
 * machine configurations through the pure JobExecutor core. The bins
 * the runs light up (coverage.hpp) are folded into the campaign
 * coverage map; a candidate that lights at least one previously-dark
 * bin is admitted to the corpus. After the budget drains, greedy
 * backward minimization drops admitted kernels whose bins are all
 * covered by the rest, and the survivors are written to the corpus
 * directory as self-describing kernel-text files (leading `# sig:`
 * comment), ready to be checked in as regression workloads.
 *
 * Determinism contract: given the same options (seed, budget, probes,
 * corpus directory contents), a campaign reproduces the same corpus,
 * the same coverage map and a bitwise-identical report. All
 * randomness flows from one apres::Rng stream, candidates run
 * serially in round order, probe configs embed fixed seeds (a
 * kernel's coverage is a function of the kernel and probe alone), and
 * the report contains no wall-clock times.
 */

#ifndef APRES_EXPLORE_EXPLORER_HPP
#define APRES_EXPLORE_EXPLORER_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "explore/coverage.hpp"
#include "explore/signature.hpp"

namespace apres {

/** One machine shape candidates are probed under. */
struct ProbeConfig
{
    std::string label; ///< coverage-bin prefix ("apres", "apres-tiny")

    /** Dotted overrides applied over GpuConfig defaults. */
    std::vector<std::pair<std::string, std::string>> overrides;
};

/** Campaign options. */
struct ExploreOptions
{
    std::uint64_t seed = 1;  ///< Rng stream; the determinism handle
    int budget = 50;         ///< candidate kernels to evaluate

    /**
     * Corpus directory: existing *.kt files seed the campaign (their
     * bins pre-populate the map, parseable `# sig:` headers make them
     * mutation parents), and newly admitted survivors are written
     * here. Empty = in-memory only.
     */
    std::string corpusDir;

    /** Chance of a fresh random draw instead of a mutation. */
    double freshBias = 0.25;

    /** Extra overrides applied to every probe (machine shaping). */
    std::vector<std::pair<std::string, std::string>> overrides;

    /** Probes; empty selects defaultProbes(). */
    std::vector<ProbeConfig> probes;
};

/** One corpus member. */
struct CorpusEntry
{
    std::string name;        ///< kernel + file stem ("x004_1a2b3c4d")
    KernelSignature signature;
    bool loaded = false;     ///< true when read from corpusDir
    bool kept = true;        ///< false when minimization dropped it
    std::vector<std::string> newBins; ///< bins dark before admission
    std::vector<std::string> bins;    ///< all bins it lights
};

/** One evaluated candidate (admitted or not). */
struct RoundRecord
{
    int round = 0;
    std::string mode;    ///< "fresh" or "mutate"
    std::string parent;  ///< parent entry name, empty for fresh
    std::string name;    ///< candidate name
    bool accepted = false;
    std::vector<std::string> newBins;
};

/** The campaign driver. */
class Explorer
{
  public:
    explicit Explorer(ExploreOptions options);

    /** The built-in probe set (see DESIGN.md §17). */
    static std::vector<ProbeConfig> defaultProbes();

    /**
     * Run the campaign: load the corpus, spend the budget, minimize,
     * write survivors. @return bins newly lit by this campaign
     * (excluding those the loaded corpus already covered).
     */
    std::size_t run();

    const CoverageMap& coverage() const { return coverage_; }
    const std::vector<CorpusEntry>& corpus() const { return corpus_; }
    const std::vector<RoundRecord>& rounds() const { return rounds_; }

    /**
     * Probe @p sig under every configured probe and return its bins.
     * Also the regression-side entry point: tests re-derive a corpus
     * kernel's coverage without running a campaign.
     */
    std::vector<std::string> probeSignature(const KernelSignature& sig,
                                            const std::string& name) const;

    /** Emit the deterministic campaign report JSON. */
    void writeReport(std::ostream& os) const;

  private:
    std::size_t loadCorpus();
    std::size_t pickParent(Rng& rng) const;
    void minimizeCorpus();
    void writeCorpus() const;

    ExploreOptions opts_;
    std::vector<ProbeConfig> probes_;
    CoverageMap coverage_;
    std::vector<CorpusEntry> corpus_;
    std::vector<RoundRecord> rounds_;
    std::size_t initialCoverage_ = 0;
    std::size_t loadedEntries_ = 0;
};

} // namespace apres

#endif // APRES_EXPLORE_EXPLORER_HPP
