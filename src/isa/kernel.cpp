/**
 * @file
 * Kernel builder implementation.
 */

#include "kernel.hpp"

#include <cassert>
#include <set>
#include <sstream>
#include <utility>

#include "common/sim_error.hpp"

namespace apres {

int
Kernel::numLoads() const
{
    int n = 0;
    for (const auto& instr : code_)
        if (instr.op == Opcode::kLoad)
            ++n;
    return n;
}

std::uint64_t
Kernel::dynamicInstructionsPerWarp() const
{
    // The body (everything except the trailing kExit) executes
    // tripCount times; kExit executes once.
    assert(!code_.empty());
    const std::uint64_t body = code_.size() - 1;
    return body * tripCount_ + 1;
}

KernelBuilder::KernelBuilder(std::string name)
{
    kernel.name_ = std::move(name);
}

int
KernelBuilder::freshReg()
{
    return kernel.numRegs_++;
}

Pc
KernelBuilder::nextPc(Pc explicit_pc)
{
    if (explicit_pc != kInvalidPc) {
        autoPc = explicit_pc + 8;
        return explicit_pc;
    }
    const Pc pc = autoPc;
    autoPc += 8;
    return pc;
}

int
KernelBuilder::addGen(AddressGenPtr gen)
{
    assert(gen != nullptr);
    kernel.addrGens_.push_back(std::move(gen));
    return static_cast<int>(kernel.addrGens_.size()) - 1;
}

int
KernelBuilder::load(AddressGenPtr gen, int lane_stride, Pc pc, int src_reg,
                    int active_lanes)
{
    assert(!built);
    assert(active_lanes >= 1 && active_lanes <= kWarpSize);
    Instruction instr;
    instr.op = Opcode::kLoad;
    instr.pc = nextPc(pc);
    instr.src[0] = src_reg;
    instr.dst = freshReg();
    instr.addrGenId = addGen(std::move(gen));
    instr.laneStride = lane_stride;
    instr.activeLanes = active_lanes;
    kernel.code_.push_back(instr);
    return instr.dst;
}

int
KernelBuilder::alu(const std::vector<int>& srcs, int count, int latency)
{
    assert(!built);
    assert(count >= 1);
    assert(srcs.size() <= static_cast<std::size_t>(kMaxSrcRegs));
    int last = kNoReg;
    for (int i = 0; i < count; ++i) {
        Instruction instr;
        instr.op = Opcode::kAlu;
        instr.pc = nextPc(kInvalidPc);
        instr.latency = latency;
        if (i == 0) {
            for (std::size_t s = 0; s < srcs.size(); ++s)
                instr.src[s] = srcs[s];
        } else {
            instr.src[0] = last;
        }
        instr.dst = freshReg();
        last = instr.dst;
        kernel.code_.push_back(instr);
    }
    return last;
}

int
KernelBuilder::sfu(const std::vector<int>& srcs, int latency)
{
    assert(!built);
    Instruction instr;
    instr.op = Opcode::kSfu;
    instr.pc = nextPc(kInvalidPc);
    instr.latency = latency;
    for (std::size_t s = 0; s < srcs.size(); ++s)
        instr.src[s] = srcs[s];
    instr.dst = freshReg();
    kernel.code_.push_back(instr);
    return instr.dst;
}

int
KernelBuilder::sharedLoad(AddressGenPtr gen, int lane_stride, int src_reg,
                          int active_lanes)
{
    assert(!built);
    assert(active_lanes >= 1 && active_lanes <= kWarpSize);
    Instruction instr;
    instr.op = Opcode::kSharedLoad;
    instr.pc = nextPc(kInvalidPc);
    instr.src[0] = src_reg;
    instr.dst = freshReg();
    instr.addrGenId = addGen(std::move(gen));
    instr.laneStride = lane_stride;
    instr.activeLanes = active_lanes;
    kernel.code_.push_back(instr);
    return instr.dst;
}

void
KernelBuilder::store(AddressGenPtr gen, int src, int lane_stride, Pc pc,
                     int active_lanes)
{
    assert(!built);
    assert(active_lanes >= 1 && active_lanes <= kWarpSize);
    Instruction instr;
    instr.op = Opcode::kStore;
    instr.pc = nextPc(pc);
    instr.src[0] = src;
    instr.addrGenId = addGen(std::move(gen));
    instr.laneStride = lane_stride;
    instr.activeLanes = active_lanes;
    kernel.code_.push_back(instr);
}

void
KernelBuilder::barrier()
{
    barrier(~std::uint64_t{0});
}

void
KernelBuilder::barrier(std::uint64_t participant_mask)
{
    assert(!built);
    Instruction instr;
    instr.op = Opcode::kBarrier;
    instr.pc = nextPc(kInvalidPc);
    instr.participantMask = participant_mask;
    kernel.code_.push_back(instr);
}

Kernel
KernelBuilder::build(std::uint64_t trip_count)
{
    assert(!built);
    assert(trip_count >= 1);
    built = true;

    // A body-less kernel is malformed input (e.g. a kernel-text file
    // that stops after the header), not driver misuse: reject it the
    // typed way so Release builds don't silently build a kernel no SM
    // can retire.
    if (kernel.code_.empty()) {
        throwKernelError("kernel '" + kernel.name_ +
                         "': body is empty (no instructions before "
                         "build)");
    }

    if (loopTarget < 0 ||
        loopTarget >= static_cast<int>(kernel.code_.size())) {
        throwKernelError(
            "kernel '" + kernel.name_ + "': loop target " +
            std::to_string(loopTarget) + " is outside the body [0, " +
            std::to_string(kernel.code_.size()) + ")");
    }

    // PCs key the hardware tables (LLT, STR table, SAP PT); a
    // collision would silently alias two static instructions.
    std::set<Pc> pcs;
    for (const Instruction& instr : kernel.code_) {
        if (!pcs.insert(instr.pc).second) {
            std::ostringstream oss;
            oss << "kernel '" << kernel.name_ << "': duplicate pc 0x"
                << std::hex << instr.pc
                << " (PCs must be unique per static instruction)";
            throwKernelError(oss.str());
        }
    }

    Instruction branch;
    branch.op = Opcode::kBranch;
    branch.pc = nextPc(kInvalidPc);
    branch.branchTarget = loopTarget;
    kernel.code_.push_back(branch);

    Instruction exit_instr;
    exit_instr.op = Opcode::kExit;
    exit_instr.pc = nextPc(kInvalidPc);
    kernel.code_.push_back(exit_instr);

    kernel.tripCount_ = trip_count;
    return std::move(kernel);
}

} // namespace apres
