/**
 * @file
 * Declarative text format for kernels.
 *
 * Lets users define workloads as data instead of C++ — the natural
 * interchange format for "bring your own access pattern" studies.
 * Example:
 *
 * ```
 * # gather-reduce, 64 iterations per block
 * kernel gather 64
 * gen 0 strided base=268435456 warp=1024 iter=49152 sm=0
 * gen 1 zipf base=536870912 lines=96 alpha=1.0 seed=7
 * load r0 pc=0x40 gen=0
 * alu r1 r0 lat=8
 * load r2 pc=0x48 gen=1 dep=r0 lanestride=4 lanes=32
 * alu r3 r2 lat=8
 * store gen=0 src=r3
 * ```
 *
 * `writeKernelText()` emits this form for any Kernel (round-trip safe);
 * `parseKernelText()` builds the Kernel back. Registers are named
 * `r<N>` in definition order; `dep=` chains a load's address
 * computation behind a producer; `alu` lines take 1-3 sources.
 * Malformed input terminates via fatal() with a line diagnostic (user
 * error, per the logging conventions).
 */

#ifndef APRES_ISA_KERNEL_TEXT_HPP
#define APRES_ISA_KERNEL_TEXT_HPP

#include <iosfwd>
#include <string>

#include "isa/kernel.hpp"

namespace apres {

/** Parse a kernel definition from @p input. */
Kernel parseKernelText(std::istream& input);

/** Convenience: parse from a string. */
Kernel parseKernelText(const std::string& text);

/** Load a kernel definition from a file (fatal() if unreadable). */
Kernel loadKernelFile(const std::string& path);

/** Emit the canonical text form of @p kernel. */
void writeKernelText(const Kernel& kernel, std::ostream& output);

} // namespace apres

#endif // APRES_ISA_KERNEL_TEXT_HPP
