/**
 * @file
 * Address generator implementations.
 */

#include "address_gen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "common/bitutils.hpp"

namespace apres {

namespace {

/** Cache line size assumed by generators that think in lines. */
constexpr std::uint64_t kLine = 128;

} // namespace

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
}

std::uint64_t
mix64(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    return mix64((a * 0x9E3779B97F4A7C15ull) ^
                 mix64((b + 0x6A09E667F3BCC909ull) ^ mix64(c)));
}

std::string
UniformGen::describe() const
{
    std::ostringstream oss;
    oss << "uniform(addr=0x" << std::hex << addr_ << ")";
    return oss.str();
}

SharedWindowGen::SharedWindowGen(Addr base, std::uint64_t footprint_bytes,
                                 std::int64_t iter_stride,
                                 std::int64_t warp_skew,
                                 std::int64_t sm_offset)
    : start(base), footprint(alignUp(footprint_bytes, kLine)),
      iterStride(iter_stride), warpSkew(warp_skew), smOffset(sm_offset)
{
    assert(footprint > 0);
}

Addr
SharedWindowGen::base(const AddrCtx& ctx) const
{
    const std::int64_t linear = iterStride * static_cast<std::int64_t>(ctx.iter)
        + warpSkew * static_cast<std::int64_t>(ctx.warp);
    // Euclidean modulo: offsets stay in [0, footprint) for negative
    // strides too.
    std::int64_t off = linear % static_cast<std::int64_t>(footprint);
    if (off < 0)
        off += static_cast<std::int64_t>(footprint);
    return start + static_cast<Addr>(smOffset * ctx.sm) +
        static_cast<Addr>(off);
}

std::string
SharedWindowGen::describe() const
{
    std::ostringstream oss;
    oss << "sharedWindow(footprint=" << footprint
        << "B, iterStride=" << iterStride << ", warpSkew=" << warpSkew << ")";
    return oss.str();
}

StridedGen::StridedGen(Addr base, std::int64_t warp_stride,
                       std::int64_t iter_stride, std::int64_t sm_offset)
    : start(base), warpStride(warp_stride), iterStride(iter_stride),
      smOffset(sm_offset)
{
}

Addr
StridedGen::base(const AddrCtx& ctx) const
{
    const std::int64_t delta = warpStride * static_cast<std::int64_t>(ctx.warp)
        + iterStride * static_cast<std::int64_t>(ctx.iter)
        + smOffset * static_cast<std::int64_t>(ctx.sm);
    return static_cast<Addr>(static_cast<std::int64_t>(start) + delta);
}

std::string
StridedGen::describe() const
{
    std::ostringstream oss;
    oss << "strided(warpStride=" << warpStride << ", iterStride=" << iterStride
        << ")";
    return oss.str();
}

IrregularGen::IrregularGen(Addr base, std::uint64_t footprint_bytes,
                           int share_warps, int share_iters,
                           std::uint64_t seed_value, int lag_iters)
    : start(base), footprintLines(divCeil(footprint_bytes, kLine)),
      shareWarps(share_warps), shareIters(share_iters), seed(seed_value),
      lagIters(lag_iters)
{
    assert(footprintLines > 0);
    assert(shareWarps >= 1);
    assert(shareIters >= 1);
}

Addr
IrregularGen::base(const AddrCtx& ctx) const
{
    // Sharing partners are warps congruent modulo the stripe count, so
    // the partners of warp w are w + stripes, w + 2*stripes, ... —
    // spread across the ID space. Adjacent warp IDs never share, which
    // keeps the access stream stride-free between consecutive warps
    // (Table I reports no usable stride for the irregular loads).
    const int stripes =
        shareWarps > 0 ? std::max(1, 48 / shareWarps) : 48;
    const std::uint64_t warp_group =
        static_cast<std::uint64_t>(ctx.warp) % stripes;
    // Partner slot within the sharing group; slot k lags the first
    // toucher by k * lagIters iterations.
    const std::uint64_t slot =
        static_cast<std::uint64_t>(ctx.warp) / stripes;
    const std::uint64_t lagged_iter =
        ctx.iter + slot * static_cast<std::uint64_t>(lagIters);
    const std::uint64_t iter_group = lagged_iter / shareIters;
    const std::uint64_t line =
        mix64(seed, iter_group, warp_group) % footprintLines;
    return start + line * kLine;
}

std::string
IrregularGen::describe() const
{
    std::ostringstream oss;
    oss << "irregular(lines=" << footprintLines << ", shareWarps="
        << shareWarps << ", shareIters=" << shareIters << ")";
    return oss.str();
}

ZipfGen::ZipfGen(Addr base, std::size_t num_lines, double alpha,
                 std::uint64_t seed_value)
    : start(base), alphaParam(alpha), seed(seed_value)
{
    assert(num_lines > 0);
    // Build a draw table so that line r is chosen with probability
    // proportional to 1/(r+1)^alpha. The table quantizes the CDF into
    // 4096 slots; sampling is then a single hash + lookup.
    constexpr std::size_t kSlots = 4096;
    std::vector<double> cdf(num_lines);
    double sum = 0.0;
    for (std::size_t i = 0; i < num_lines; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf[i] = sum;
    }
    rankOfDraw.resize(kSlots);
    std::size_t rank = 0;
    for (std::size_t s = 0; s < kSlots; ++s) {
        const double u = (static_cast<double>(s) + 0.5) / kSlots * sum;
        while (rank + 1 < num_lines && cdf[rank] < u)
            ++rank;
        rankOfDraw[s] = static_cast<std::uint32_t>(rank);
    }
    numLines = num_lines;
}

Addr
ZipfGen::base(const AddrCtx& ctx) const
{
    const std::uint64_t h = mix64(seed, ctx.iter, ctx.warp);
    const std::uint32_t rank = rankOfDraw[h % rankOfDraw.size()];
    // Scatter ranks over the region so the hottest lines do not all
    // land in the same cache set.
    const std::uint64_t line = mix64(seed ^ (rank + 1)) % numLines;
    return start + line * kLine;
}

std::string
ZipfGen::describe() const
{
    std::ostringstream oss;
    oss << "zipf(lines=" << numLines << ")";
    return oss.str();
}

// ---------------------------------------------------------------------
// Serialization: the canonical `<kind> key=value ...` forms consumed by
// parseAddressGen() and the kernel text format.
// ---------------------------------------------------------------------

std::string
UniformGen::serialize() const
{
    std::ostringstream oss;
    oss << "uniform addr=" << addr_;
    return oss.str();
}

std::string
SharedWindowGen::serialize() const
{
    std::ostringstream oss;
    oss << "window base=" << start << " footprint=" << footprint
        << " iter=" << iterStride << " skew=" << warpSkew
        << " sm=" << smOffset;
    return oss.str();
}

std::string
StridedGen::serialize() const
{
    std::ostringstream oss;
    oss << "strided base=" << start << " warp=" << warpStride
        << " iter=" << iterStride << " sm=" << smOffset;
    return oss.str();
}

std::string
IrregularGen::serialize() const
{
    std::ostringstream oss;
    oss << "irregular base=" << start << " lines=" << footprintLines
        << " sharewarps=" << shareWarps << " shareiters=" << shareIters
        << " seed=" << seed << " lag=" << lagIters;
    return oss.str();
}

std::string
ZipfGen::serialize() const
{
    std::ostringstream oss;
    oss << "zipf base=" << start << " lines=" << numLines
        << " alpha=" << alphaParam << " seed=" << seed;
    return oss.str();
}

} // namespace apres
