/**
 * @file
 * Kernel representation and a fluent builder.
 *
 * A kernel is a single loop body (the common shape of the evaluated
 * GPU benchmarks: each warp iterates over its share of the data).
 * The builder appends instructions in program order, wires register
 * dependencies, and finalizes the loop with a back-edge branch and an
 * exit instruction.
 */

#ifndef APRES_ISA_KERNEL_HPP
#define APRES_ISA_KERNEL_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/address_gen.hpp"
#include "isa/instruction.hpp"

namespace apres {

/**
 * A complete kernel: static code, per-load address generators, and
 * the loop trip count each warp executes.
 */
class Kernel
{
  public:
    /** Kernel name (used in reports). */
    const std::string& name() const { return name_; }

    /** Static instruction sequence (loop body + branch + exit). */
    const std::vector<Instruction>& code() const { return code_; }

    /** Instruction at @p index. */
    const Instruction& at(std::size_t index) const { return code_.at(index); }

    /** Address generator for load/store @p gen_id. */
    const AddressGen& addrGen(int gen_id) const
    {
        return *addrGens_.at(static_cast<std::size_t>(gen_id));
    }

    /** Loop iterations each warp executes. */
    std::uint64_t tripCount() const { return tripCount_; }

    /** Number of architectural registers referenced. */
    int numRegs() const { return numRegs_; }

    /** Number of static loads in the body. */
    int numLoads() const;

    /** Dynamic instruction count executed by one warp. */
    std::uint64_t dynamicInstructionsPerWarp() const;

  private:
    friend class KernelBuilder;

    std::string name_;
    std::vector<Instruction> code_;
    std::vector<AddressGenPtr> addrGens_;
    std::uint64_t tripCount_ = 1;
    int numRegs_ = 0;
};

/**
 * Fluent builder for kernels.
 *
 * Each load allocates a fresh destination register that later ALU
 * instructions may consume, which is how use-dependences (and thus
 * memory stalls) are expressed.
 */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name);

    /**
     * Append a global load.
     *
     * @param gen         address pattern of this static load
     * @param lane_stride byte distance between lanes (4 = coalesced)
     * @param pc          explicit PC, or kInvalidPc for auto-assign
     * @param src_reg     register the address computation consumes
     *                    (kNoReg = independent). Chaining loads behind
     *                    their producers models index/pointer
     *                    dependences and bounds per-warp MLP, which is
     *                    what leaves MSHR headroom for prefetching.
     * @return destination register holding the loaded value
     */
    int load(AddressGenPtr gen, int lane_stride = 4, Pc pc = kInvalidPc,
             int src_reg = kNoReg, int active_lanes = kWarpSize);

    /**
     * Append a chain of @p count dependent ALU instructions.
     *
     * The first instruction consumes @p srcs; each subsequent one
     * consumes its predecessor.
     * @return destination register of the last instruction
     */
    int alu(const std::vector<int>& srcs, int count = 1, int latency = 8);

    /** Append one long-latency SFU instruction consuming @p srcs. */
    int sfu(const std::vector<int>& srcs, int latency = 20);

    /**
     * Append a shared-memory (scratchpad) load. Never touches the
     * cache hierarchy; costs the shared-memory latency plus bank
     * conflict serialization derived from the lane stride.
     */
    int sharedLoad(AddressGenPtr gen, int lane_stride = 4,
                   int src_reg = kNoReg, int active_lanes = kWarpSize);

    /** Append a global store of register @p src through @p gen. */
    void store(AddressGenPtr gen, int src, int lane_stride = 4,
               Pc pc = kInvalidPc, int active_lanes = kWarpSize);

    /** Append a block-wide barrier. */
    void barrier();

    /**
     * Append a barrier only the warps in @p participant_mask (bit w =
     * warp w within its block) arrive at; the rest step over it.
     */
    void barrier(std::uint64_t participant_mask);

    /**
     * Set the loop head: the back-edge branch build() appends jumps to
     * body instruction @p body_index instead of index 0. Validated in
     * build(): an out-of-range target throws KernelError.
     */
    void setLoopTarget(int body_index) { loopTarget = body_index; }

    /** Number of instructions appended so far (label bookkeeping). */
    int bodySize() const { return static_cast<int>(kernel.code_.size()); }

    /**
     * Finalize: appends the loop branch and exit, and moves the kernel
     * out. The builder must not be reused afterwards. Throws
     * KernelError when the loop target is out of range or two static
     * instructions collide on one PC (PC-keyed hardware tables — LLT,
     * STR, SAP PT — would silently alias them).
     *
     * @param trip_count loop iterations per warp (>= 1)
     */
    Kernel build(std::uint64_t trip_count);

  private:
    int freshReg();
    Pc nextPc(Pc explicit_pc);
    int addGen(AddressGenPtr gen);

    Kernel kernel;
    Pc autoPc = 0;
    int loopTarget = 0;
    bool built = false;
};

} // namespace apres

#endif // APRES_ISA_KERNEL_HPP
