/**
 * @file
 * Stateless per-load address generators.
 *
 * Each static load in a kernel owns an AddressGen describing *where*
 * that load points as a pure function of (SM, warp, loop iteration).
 * Statelessness matters twice: the LSU may replay an access after an
 * MSHR-full stall and must observe identical addresses, and the
 * workload layer can re-derive oracle information (footprints, stride
 * tables) without running the pipeline.
 *
 * The generators directly mirror the load taxonomy of the paper's
 * Table I:
 *  - high-locality loads with a small shared footprint
 *    (@ref SharedWindowGen, @ref ZipfGen, @ref UniformGen), and
 *  - low-locality loads with a strong inter-warp stride
 *    (@ref StridedGen),
 *  - plus irregular loads with partial inter-warp sharing
 *    (@ref IrregularGen) for the graph-style applications.
 */

#ifndef APRES_ISA_ADDRESS_GEN_HPP
#define APRES_ISA_ADDRESS_GEN_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace apres {

/** Execution context an address generator may observe. */
struct AddrCtx
{
    SmId sm = 0;          ///< SM executing the access
    WarpId warp = 0;      ///< SM-local warp ID (paper's warp ID)
    std::uint64_t iter = 0; ///< loop iteration of the executing warp
};

/**
 * Interface: compute the base (lane 0) address of one warp access.
 *
 * Per-lane addresses are derived by the LSU as
 * `base + lane * laneStride` where laneStride comes from the load
 * instruction, so coalescing behaviour is a property of the load, not
 * of the pattern.
 */
class AddressGen
{
  public:
    virtual ~AddressGen() = default;

    /** Base address of the access performed by @p ctx. */
    virtual Addr base(const AddrCtx& ctx) const = 0;

    /** Short human-readable description for reports. */
    virtual std::string describe() const = 0;

    /**
     * Canonical machine-parseable form, e.g.
     * `strided base=0x1000 warp=1024 iter=49152 sm=0`.
     * parseAddressGen() round-trips this exactly.
     */
    virtual std::string serialize() const = 0;
};

/** Owning handle used by kernels. */
using AddressGenPtr = std::unique_ptr<AddressGen>;

/**
 * Parse the canonical generator form produced by
 * AddressGen::serialize(). Terminates via fatal() on malformed input
 * (user error).
 */
AddressGenPtr parseAddressGen(const std::string& text);

/** Deterministic 64-bit mixing hash (stateless pseudo-randomness). */
std::uint64_t mix64(std::uint64_t x);

/** Mix three values into one hash. */
std::uint64_t mix64(std::uint64_t a, std::uint64_t b, std::uint64_t c);

/**
 * Every warp reads the same single address (extreme locality; e.g. a
 * kernel argument or shared scalar).
 */
class UniformGen : public AddressGen
{
  public:
    explicit UniformGen(Addr addr) : addr_(addr) {}

    Addr base(const AddrCtx&) const override { return addr_; }
    std::string describe() const override;
    std::string serialize() const override;

  private:
    Addr addr_;
};

/**
 * All warps walk the same bounded window.
 *
 * `base + ((iter * iterStride + warp * warpSkew) mod footprint)`.
 * With footprint much larger than L1 this yields the KM-style
 * signature: tiny #L/#R (every line reused by many warps) yet a ~100%
 * miss rate under thrashing, and a detectable inter-warp stride of
 * @p warpSkew.
 */
class SharedWindowGen : public AddressGen
{
  public:
    /**
     * @param base       window start address
     * @param footprint  window size in bytes (rounded to lines)
     * @param iter_stride byte step per loop iteration
     * @param warp_skew  byte offset between consecutive warps
     * @param sm_offset  byte offset between SMs' windows (0 = shared)
     */
    SharedWindowGen(Addr base, std::uint64_t footprint,
                    std::int64_t iter_stride, std::int64_t warp_skew,
                    std::int64_t sm_offset = 0);

    Addr base(const AddrCtx& ctx) const override;
    std::string describe() const override;
    std::string serialize() const override;

  private:
    Addr start;
    std::uint64_t footprint;
    std::int64_t iterStride;
    std::int64_t warpSkew;
    std::int64_t smOffset;
};

/**
 * Classic inter-warp strided streaming access.
 *
 * `base + warp * warpStride + iter * iterStride (+ sm * smOffset)`.
 * This is the Table-I "stride" load class: #L/#R near 1 (no reuse),
 * near-100% miss rate, and a stable inter-warp stride that STR and SAP
 * can exploit.
 */
class StridedGen : public AddressGen
{
  public:
    StridedGen(Addr base, std::int64_t warp_stride, std::int64_t iter_stride,
               std::int64_t sm_offset = 0);

    Addr base(const AddrCtx& ctx) const override;
    std::string describe() const override;
    std::string serialize() const override;

    /** The inter-warp stride this pattern was built with. */
    std::int64_t warpStrideBytes() const { return warpStride; }

  private:
    Addr start;
    std::int64_t warpStride;
    std::int64_t iterStride;
    std::int64_t smOffset;
};

/**
 * Irregular accesses into a footprint with controllable inter-warp
 * sharing (graph-style loads: BFS frontier, MUM suffix-tree walk).
 *
 * Groups of @p shareWarps warps (striped across the warp-ID space, so
 * adjacent IDs never share) touch the same pseudo-random line for
 * @p shareIters consecutive iterations: #L/#R shrinks as either
 * sharing factor grows, while the address stream stays stride-free —
 * consecutive warps observe no usable stride, as Table I reports for
 * the irregular loads.
 */
class IrregularGen : public AddressGen
{
  public:
    /**
     * @param base        region start
     * @param footprint   region size in bytes
     * @param share_warps warps per sharing group (>= 1)
     * @param share_iters iterations per sharing group (>= 1)
     * @param seed        hash seed (distinguishes loads)
     * @param lag_iters   iteration lag between sharing partners: the
     *                    k-th partner touches a line @p lag_iters x k
     *                    iterations after the first, so the reuse
     *                    distance scales with the number of actively
     *                    progressing warps (thrash at full TLP,
     *                    recover under focused scheduling)
     */
    IrregularGen(Addr base, std::uint64_t footprint, int share_warps,
                 int share_iters, std::uint64_t seed, int lag_iters = 0);

    Addr base(const AddrCtx& ctx) const override;
    std::string describe() const override;
    std::string serialize() const override;

  private:
    Addr start;
    std::uint64_t footprintLines;
    int shareWarps;
    int shareIters;
    std::uint64_t seed;
    int lagIters;
};

/**
 * Zipf-skewed accesses: a small set of hot lines absorbs most
 * references while a long tail provides cold misses. Models the
 * high-locality loads of SPMV/PA where #L/#R is small but non-zero.
 */
class ZipfGen : public AddressGen
{
  public:
    /**
     * @param base      region start
     * @param num_lines population of distinct 128 B lines
     * @param alpha     Zipf skew (0 = uniform)
     * @param seed      hash seed
     */
    ZipfGen(Addr base, std::size_t num_lines, double alpha,
            std::uint64_t seed);

    Addr base(const AddrCtx& ctx) const override;
    std::string describe() const override;
    std::string serialize() const override;

  private:
    Addr start;
    std::vector<std::uint32_t> rankOfDraw; // precomputed inverse-CDF table
    std::size_t numLines = 0;
    double alphaParam = 0.0;
    std::uint64_t seed;
};

} // namespace apres

#endif // APRES_ISA_ADDRESS_GEN_HPP
