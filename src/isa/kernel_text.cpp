/**
 * @file
 * Kernel text format: parser, writer, and the AddressGen factory.
 */

#include "kernel_text.hpp"

#include <fstream>
#include <map>
#include <algorithm>
#include <sstream>
#include <vector>

#include "common/log.hpp"
#include "isa/address_gen.hpp"

namespace apres {

namespace {

/** key=value map from the tail of a generator/instruction line. */
class Params
{
  public:
    Params(std::istringstream& in, const std::string& context)
        : context_(context)
    {
        std::string token;
        while (in >> token) {
            const auto eq = token.find('=');
            if (eq == std::string::npos || eq == 0)
                fatal(context + ": expected key=value, got '" + token + "'");
            values[token.substr(0, eq)] = token.substr(eq + 1);
        }
    }

    bool has(const std::string& key) const { return values.count(key) != 0; }

    std::uint64_t
    getU64(const std::string& key, std::uint64_t fallback) const
    {
        const auto it = values.find(key);
        if (it == values.end())
            return fallback;
        return std::strtoull(it->second.c_str(), nullptr, 0);
    }

    std::uint64_t
    requireU64(const std::string& key) const
    {
        if (!has(key))
            fatal(context_ + ": missing required key '" + key + "'");
        return getU64(key, 0);
    }

    std::int64_t
    getI64(const std::string& key, std::int64_t fallback) const
    {
        const auto it = values.find(key);
        if (it == values.end())
            return fallback;
        return std::strtoll(it->second.c_str(), nullptr, 0);
    }

    double
    getDouble(const std::string& key, double fallback) const
    {
        const auto it = values.find(key);
        if (it == values.end())
            return fallback;
        return std::atof(it->second.c_str());
    }

    /** Register-valued key: accepts both `r3` and bare `3`. */
    int
    getReg(const std::string& key) const
    {
        const auto it = values.find(key);
        if (it == values.end())
            fatal(context_ + ": missing required key '" + key + "'");
        const std::string& v = it->second;
        return std::atoi(v[0] == 'r' ? v.c_str() + 1 : v.c_str());
    }

  private:
    std::string context_;
    std::map<std::string, std::string> values;
};

/** Parse an `r<N>` register name. */
int
parseReg(const std::string& token, const std::string& context)
{
    if (token.size() < 2 || token[0] != 'r')
        fatal(context + ": expected register rN, got '" + token + "'");
    return std::atoi(token.c_str() + 1);
}

} // namespace

AddressGenPtr
parseAddressGen(const std::string& text)
{
    std::istringstream in(text);
    std::string kind;
    in >> kind;
    Params p(in, "generator '" + kind + "'");

    if (kind == "uniform") {
        return std::make_unique<UniformGen>(p.requireU64("addr"));
    }
    if (kind == "window") {
        return std::make_unique<SharedWindowGen>(
            p.requireU64("base"), p.requireU64("footprint"),
            p.getI64("iter", 0), p.getI64("skew", 0), p.getI64("sm", 0));
    }
    if (kind == "strided") {
        return std::make_unique<StridedGen>(
            p.requireU64("base"), p.getI64("warp", 0), p.getI64("iter", 0),
            p.getI64("sm", 0));
    }
    if (kind == "irregular") {
        return std::make_unique<IrregularGen>(
            p.requireU64("base"), p.requireU64("lines") * 128,
            static_cast<int>(p.getU64("sharewarps", 1)),
            static_cast<int>(p.getU64("shareiters", 1)),
            p.getU64("seed", 1),
            static_cast<int>(p.getU64("lag", 0)));
    }
    if (kind == "zipf") {
        return std::make_unique<ZipfGen>(
            p.requireU64("base"),
            static_cast<std::size_t>(p.requireU64("lines")),
            p.getDouble("alpha", 1.0), p.getU64("seed", 1));
    }
    fatal("unknown address generator kind: '" + kind + "'");
}

Kernel
parseKernelText(std::istream& input)
{
    std::string name = "kernel";
    std::uint64_t trips = 1;
    std::vector<AddressGenPtr> gens;
    std::unique_ptr<KernelBuilder> builder;
    std::map<int, int> reg_map; // file register -> builder register

    const auto mapped = [&](int file_reg, const std::string& ctx) {
        if (file_reg < 0)
            return kNoReg;
        const auto it = reg_map.find(file_reg);
        if (it == reg_map.end())
            fatal(ctx + ": register r" + std::to_string(file_reg) +
                  " used before definition");
        return it->second;
    };

    std::string line;
    int line_no = 0;
    while (std::getline(input, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream in(line);
        std::string op;
        if (!(in >> op))
            continue;
        const std::string ctx = "line " + std::to_string(line_no);

        if (op == "kernel") {
            if (!(in >> name >> trips) || trips < 1)
                fatal(ctx + ": expected 'kernel NAME TRIPS'");
            builder = std::make_unique<KernelBuilder>(name);
        } else if (!builder) {
            fatal(ctx + ": '" + op + "' before the kernel header");
        } else if (op == "gen") {
            int id = 0;
            if (!(in >> id) || id != static_cast<int>(gens.size()))
                fatal(ctx + ": generators must be numbered in order");
            std::string rest;
            std::getline(in, rest);
            gens.push_back(parseAddressGen(rest));
        } else if (op == "load") {
            std::string reg_token;
            if (!(in >> reg_token))
                fatal(ctx + ": expected 'load rN key=value...'");
            const int file_reg = parseReg(reg_token, ctx);
            Params p(in, ctx);
            const auto gen_id = p.requireU64("gen");
            if (gen_id >= gens.size() || gens[gen_id] == nullptr)
                fatal(ctx + ": generator " + std::to_string(gen_id) +
                      " not defined (each may be used once)");
            const int dep =
                p.has("dep") ? mapped(p.getReg("dep"), ctx) : kNoReg;
            const int reg = builder->load(
                std::move(gens[gen_id]),
                static_cast<int>(p.getU64("lanestride", 4)),
                static_cast<Pc>(p.getU64("pc", kInvalidPc)), dep,
                static_cast<int>(p.getU64("lanes", kWarpSize)));
            reg_map[file_reg] = reg;
        } else if (op == "alu" || op == "sfu") {
            std::string dst_token;
            if (!(in >> dst_token))
                fatal(ctx + ": expected '" + op + " rDST [rSRC...]'");
            const int file_dst = parseReg(dst_token, ctx);
            std::vector<int> srcs;
            int latency = op == "alu" ? 8 : 20;
            std::string token;
            while (in >> token) {
                if (token.rfind("lat=", 0) == 0)
                    latency = std::atoi(token.c_str() + 4);
                else
                    srcs.push_back(mapped(parseReg(token, ctx), ctx));
            }
            const int reg = op == "alu" ? builder->alu(srcs, 1, latency)
                                        : builder->sfu(srcs, latency);
            reg_map[file_dst] = reg;
        } else if (op == "sload") {
            std::string reg_token;
            if (!(in >> reg_token))
                fatal(ctx + ": expected 'sload rN key=value...'");
            const int file_reg = parseReg(reg_token, ctx);
            Params p(in, ctx);
            const auto gen_id = p.requireU64("gen");
            if (gen_id >= gens.size() || gens[gen_id] == nullptr)
                fatal(ctx + ": generator " + std::to_string(gen_id) +
                      " not defined (each may be used once)");
            const int dep =
                p.has("dep") ? mapped(p.getReg("dep"), ctx) : kNoReg;
            const int reg = builder->sharedLoad(
                std::move(gens[gen_id]),
                static_cast<int>(p.getU64("lanestride", 4)), dep,
                static_cast<int>(p.getU64("lanes", kWarpSize)));
            reg_map[file_reg] = reg;
        } else if (op == "store") {
            Params p(in, ctx);
            const auto gen_id = p.requireU64("gen");
            if (gen_id >= gens.size() || gens[gen_id] == nullptr)
                fatal(ctx + ": generator " + std::to_string(gen_id) +
                      " not defined (each may be used once)");
            const int src =
                p.has("src") ? mapped(p.getReg("src"), ctx) : kNoReg;
            builder->store(std::move(gens[gen_id]), src,
                           static_cast<int>(p.getU64("lanestride", 4)),
                           static_cast<Pc>(p.getU64("pc", kInvalidPc)),
                           static_cast<int>(p.getU64("lanes", kWarpSize)));
        } else if (op == "barrier") {
            builder->barrier();
        } else {
            fatal(ctx + ": unknown directive '" + op + "'");
        }
    }

    if (!builder)
        fatal("kernel text: missing 'kernel NAME TRIPS' header");
    return builder->build(trips);
}

Kernel
parseKernelText(const std::string& text)
{
    std::istringstream in(text);
    return parseKernelText(in);
}

Kernel
loadKernelFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open kernel file: " + path);
    return parseKernelText(in);
}

void
writeKernelText(const Kernel& kernel, std::ostream& output)
{
    output << "kernel " << kernel.name() << ' ' << kernel.tripCount()
           << '\n';
    // Generators first, numbered in addrGen order.
    int num_gens = 0;
    for (const Instruction& instr : kernel.code()) {
        if (instr.addrGenId >= 0)
            num_gens = std::max(num_gens, instr.addrGenId + 1);
    }
    for (int g = 0; g < num_gens; ++g)
        output << "gen " << g << ' ' << kernel.addrGen(g).serialize()
               << '\n';

    for (const Instruction& instr : kernel.code()) {
        switch (instr.op) {
          case Opcode::kSharedLoad:
            output << "sload r" << instr.dst << " gen=" << instr.addrGenId
                   << " lanestride=" << instr.laneStride
                   << " lanes=" << instr.activeLanes;
            if (instr.src[0] != kNoReg)
                output << " dep=r" << instr.src[0];
            output << '\n';
            break;
          case Opcode::kLoad:
            output << "load r" << instr.dst << " pc=0x" << std::hex
                   << instr.pc << std::dec << " gen=" << instr.addrGenId
                   << " lanestride=" << instr.laneStride
                   << " lanes=" << instr.activeLanes;
            if (instr.src[0] != kNoReg)
                output << " dep=r" << instr.src[0];
            output << '\n';
            break;
          case Opcode::kAlu:
          case Opcode::kSfu:
            output << (instr.op == Opcode::kAlu ? "alu r" : "sfu r")
                   << instr.dst;
            for (const int src : instr.src) {
                if (src != kNoReg)
                    output << " r" << src;
            }
            output << " lat=" << instr.latency << '\n';
            break;
          case Opcode::kStore:
            output << "store gen=" << instr.addrGenId
                   << " lanestride=" << instr.laneStride
                   << " lanes=" << instr.activeLanes;
            if (instr.src[0] != kNoReg)
                output << " src=r" << instr.src[0];
            output << '\n';
            break;
          case Opcode::kBarrier:
            output << "barrier\n";
            break;
          case Opcode::kBranch:
          case Opcode::kExit:
            break; // implicit in the format
        }
    }
}

} // namespace apres
