/**
 * @file
 * Kernel text format: parser, writer, and the AddressGen factory.
 *
 * Every malformed input throws KernelError with the offending line
 * number, so a bad kernel file fails one job (or one CLI run) with a
 * machine-readable error instead of mis-executing or killing a sweep.
 */

#include "kernel_text.hpp"

#include <fstream>
#include <map>
#include <set>
#include <algorithm>
#include <sstream>
#include <vector>

#include "common/sim_error.hpp"
#include "isa/address_gen.hpp"

namespace apres {

namespace {

/** key=value map from the tail of a generator/instruction line. */
class Params
{
  public:
    Params(std::istringstream& in, const std::string& context)
        : context_(context)
    {
        std::string token;
        while (in >> token) {
            const auto eq = token.find('=');
            if (eq == std::string::npos || eq == 0)
                throwKernelError(context + ": expected key=value, got '" +
                                 token + "'");
            values[token.substr(0, eq)] = token.substr(eq + 1);
        }
    }

    bool has(const std::string& key) const { return values.count(key) != 0; }

    std::uint64_t
    getU64(const std::string& key, std::uint64_t fallback) const
    {
        const auto it = values.find(key);
        if (it == values.end())
            return fallback;
        return std::strtoull(it->second.c_str(), nullptr, 0);
    }

    std::uint64_t
    requireU64(const std::string& key) const
    {
        if (!has(key))
            throwKernelError(context_ + ": missing required key '" + key +
                             "'");
        return getU64(key, 0);
    }

    std::int64_t
    getI64(const std::string& key, std::int64_t fallback) const
    {
        const auto it = values.find(key);
        if (it == values.end())
            return fallback;
        return std::strtoll(it->second.c_str(), nullptr, 0);
    }

    double
    getDouble(const std::string& key, double fallback) const
    {
        const auto it = values.find(key);
        if (it == values.end())
            return fallback;
        return std::atof(it->second.c_str());
    }

    /** Register-valued key: accepts both `r3` and bare `3`. */
    int
    getReg(const std::string& key) const
    {
        const auto it = values.find(key);
        if (it == values.end())
            throwKernelError(context_ + ": missing required key '" + key +
                             "'");
        const std::string& v = it->second;
        return std::atoi(v[0] == 'r' ? v.c_str() + 1 : v.c_str());
    }

  private:
    std::string context_;
    std::map<std::string, std::string> values;
};

/**
 * The `lanes=` attribute of a memory op: the SM models [1, kWarpSize]
 * active lanes, and KernelBuilder asserts that range — reject it here
 * with the line number instead.
 */
int
parseLanes(const Params& p, const std::string& context)
{
    const std::uint64_t lanes = p.getU64("lanes", kWarpSize);
    if (lanes < 1 || lanes > static_cast<std::uint64_t>(kWarpSize)) {
        throwKernelError(context + ": lanes=" + std::to_string(lanes) +
                         " outside [1, " + std::to_string(kWarpSize) +
                         "]");
    }
    return static_cast<int>(lanes);
}

/** Parse an `r<N>` register name. */
int
parseReg(const std::string& token, const std::string& context)
{
    if (token.size() < 2 || token[0] != 'r')
        throwKernelError(context + ": expected register rN, got '" + token +
                         "'");
    return std::atoi(token.c_str() + 1);
}

} // namespace

AddressGenPtr
parseAddressGen(const std::string& text)
{
    std::istringstream in(text);
    std::string kind;
    in >> kind;
    Params p(in, "generator '" + kind + "'");

    if (kind == "uniform") {
        return std::make_unique<UniformGen>(p.requireU64("addr"));
    }
    if (kind == "window") {
        return std::make_unique<SharedWindowGen>(
            p.requireU64("base"), p.requireU64("footprint"),
            p.getI64("iter", 0), p.getI64("skew", 0), p.getI64("sm", 0));
    }
    if (kind == "strided") {
        return std::make_unique<StridedGen>(
            p.requireU64("base"), p.getI64("warp", 0), p.getI64("iter", 0),
            p.getI64("sm", 0));
    }
    if (kind == "irregular") {
        return std::make_unique<IrregularGen>(
            p.requireU64("base"), p.requireU64("lines") * 128,
            static_cast<int>(p.getU64("sharewarps", 1)),
            static_cast<int>(p.getU64("shareiters", 1)),
            p.getU64("seed", 1),
            static_cast<int>(p.getU64("lag", 0)));
    }
    if (kind == "zipf") {
        return std::make_unique<ZipfGen>(
            p.requireU64("base"),
            static_cast<std::size_t>(p.requireU64("lines")),
            p.getDouble("alpha", 1.0), p.getU64("seed", 1));
    }
    throwKernelError("unknown address generator kind: '" + kind + "'");
}

Kernel
parseKernelText(std::istream& input)
{
    std::string name = "kernel";
    std::uint64_t trips = 1;
    std::vector<AddressGenPtr> gens;
    std::unique_ptr<KernelBuilder> builder;
    std::map<int, int> reg_map;          // file register -> builder register
    std::map<std::string, int> labels;   // label name -> body index
    std::set<Pc> explicit_pcs;           // duplicate `pc=` detection
    int last_lanes = kWarpSize;          // divergence state at a barrier

    const auto mapped = [&](int file_reg, const std::string& ctx) {
        if (file_reg < 0)
            return kNoReg;
        const auto it = reg_map.find(file_reg);
        if (it == reg_map.end())
            throwKernelError(ctx + ": register r" +
                             std::to_string(file_reg) +
                             " used before definition");
        return it->second;
    };

    const auto checkExplicitPc = [&](const Params& p,
                                     const std::string& ctx) {
        if (!p.has("pc"))
            return static_cast<Pc>(kInvalidPc);
        const Pc pc = static_cast<Pc>(p.getU64("pc", kInvalidPc));
        if (!explicit_pcs.insert(pc).second) {
            std::ostringstream oss;
            oss << ctx << ": duplicate pc 0x" << std::hex << pc
                << " (PCs key the LLT/STR/PT tables and must be unique)";
            throwKernelError(oss.str());
        }
        return pc;
    };

    std::string line;
    int line_no = 0;
    while (std::getline(input, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream in(line);
        std::string op;
        if (!(in >> op))
            continue;
        const std::string ctx = "line " + std::to_string(line_no);

        if (op == "kernel") {
            if (!(in >> name >> trips) || trips < 1)
                throwKernelError(ctx + ": expected 'kernel NAME TRIPS'");
            builder = std::make_unique<KernelBuilder>(name);
        } else if (!builder) {
            throwKernelError(ctx + ": '" + op +
                             "' before the kernel header");
        } else if (op == "gen") {
            int id = 0;
            if (!(in >> id) || id != static_cast<int>(gens.size()))
                throwKernelError(ctx +
                                 ": generators must be numbered in order");
            std::string rest;
            std::getline(in, rest);
            gens.push_back(parseAddressGen(rest));
        } else if (op == "label") {
            std::string label_name;
            if (!(in >> label_name))
                throwKernelError(ctx + ": expected 'label NAME'");
            if (!labels.emplace(label_name, builder->bodySize()).second)
                throwKernelError(ctx + ": duplicate label '" + label_name +
                                 "'");
        } else if (op == "loop") {
            std::string label_name;
            if (!(in >> label_name))
                throwKernelError(ctx + ": expected 'loop NAME'");
            const auto it = labels.find(label_name);
            if (it == labels.end())
                throwKernelError(
                    ctx + ": unknown label '" + label_name +
                    "' (labels must be defined before 'loop' uses them, "
                    "so branch targets can never point out of range)");
            builder->setLoopTarget(it->second);
        } else if (op == "load") {
            std::string reg_token;
            if (!(in >> reg_token))
                throwKernelError(ctx + ": expected 'load rN key=value...'");
            const int file_reg = parseReg(reg_token, ctx);
            Params p(in, ctx);
            checkExplicitPc(p, ctx);
            const auto gen_id = p.requireU64("gen");
            if (gen_id >= gens.size() || gens[gen_id] == nullptr)
                throwKernelError(ctx + ": generator " +
                                 std::to_string(gen_id) +
                                 " not defined (each may be used once)");
            const int dep =
                p.has("dep") ? mapped(p.getReg("dep"), ctx) : kNoReg;
            const int lanes = parseLanes(p, ctx);
            const int reg = builder->load(
                std::move(gens[gen_id]),
                static_cast<int>(p.getU64("lanestride", 4)),
                static_cast<Pc>(p.getU64("pc", kInvalidPc)), dep, lanes);
            reg_map[file_reg] = reg;
            last_lanes = lanes;
        } else if (op == "alu" || op == "sfu") {
            std::string dst_token;
            if (!(in >> dst_token))
                throwKernelError(ctx + ": expected '" + op +
                                 " rDST [rSRC...]'");
            const int file_dst = parseReg(dst_token, ctx);
            std::vector<int> srcs;
            int latency = op == "alu" ? 8 : 20;
            std::string token;
            while (in >> token) {
                if (token.rfind("lat=", 0) == 0) {
                    latency = std::atoi(token.c_str() + 4);
                    if (latency < 1) {
                        throwKernelError(ctx + ": lat=" +
                                         token.substr(4) +
                                         " must be a positive cycle "
                                         "count");
                    }
                } else {
                    srcs.push_back(mapped(parseReg(token, ctx), ctx));
                }
            }
            const int reg = op == "alu" ? builder->alu(srcs, 1, latency)
                                        : builder->sfu(srcs, latency);
            reg_map[file_dst] = reg;
        } else if (op == "sload") {
            std::string reg_token;
            if (!(in >> reg_token))
                throwKernelError(ctx +
                                 ": expected 'sload rN key=value...'");
            const int file_reg = parseReg(reg_token, ctx);
            Params p(in, ctx);
            const auto gen_id = p.requireU64("gen");
            if (gen_id >= gens.size() || gens[gen_id] == nullptr)
                throwKernelError(ctx + ": generator " +
                                 std::to_string(gen_id) +
                                 " not defined (each may be used once)");
            const int dep =
                p.has("dep") ? mapped(p.getReg("dep"), ctx) : kNoReg;
            const int lanes = parseLanes(p, ctx);
            const int reg = builder->sharedLoad(
                std::move(gens[gen_id]),
                static_cast<int>(p.getU64("lanestride", 4)), dep, lanes);
            reg_map[file_reg] = reg;
            last_lanes = lanes;
        } else if (op == "store") {
            Params p(in, ctx);
            checkExplicitPc(p, ctx);
            const auto gen_id = p.requireU64("gen");
            if (gen_id >= gens.size() || gens[gen_id] == nullptr)
                throwKernelError(ctx + ": generator " +
                                 std::to_string(gen_id) +
                                 " not defined (each may be used once)");
            const int src =
                p.has("src") ? mapped(p.getReg("src"), ctx) : kNoReg;
            const int lanes = parseLanes(p, ctx);
            builder->store(std::move(gens[gen_id]), src,
                           static_cast<int>(p.getU64("lanestride", 4)),
                           static_cast<Pc>(p.getU64("pc", kInvalidPc)),
                           lanes);
            last_lanes = lanes;
        } else if (op == "barrier") {
            Params p(in, ctx);
            // Divergence checks: a barrier only some lanes (or some
            // warps) reach deadlocks the block on real hardware, so the
            // text format rejects both shapes outright. Partial
            // participant masks remain available to white-box tests
            // through KernelBuilder::barrier(mask).
            if (p.has("warps") &&
                p.getU64("warps", ~std::uint64_t{0}) != ~std::uint64_t{0}) {
                throwKernelError(
                    ctx + ": barrier with a partial warps= mask is a "
                    "barrier in a divergent context; kernel text only "
                    "expresses block-wide barriers");
            }
            if (last_lanes < kWarpSize) {
                throwKernelError(
                    ctx + ": barrier in a divergent context (preceding "
                    "memory op ran with lanes=" +
                    std::to_string(last_lanes) +
                    " < " + std::to_string(kWarpSize) +
                    "); real hardware would deadlock the block");
            }
            builder->barrier();
            last_lanes = kWarpSize; // a barrier reconverges the block
        } else {
            throwKernelError(ctx + ": unknown directive '" + op + "'");
        }
    }

    if (!builder)
        throwKernelError("kernel text: missing 'kernel NAME TRIPS' header");
    return builder->build(trips);
}

Kernel
parseKernelText(const std::string& text)
{
    std::istringstream in(text);
    return parseKernelText(in);
}

Kernel
loadKernelFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throwKernelError("cannot open kernel file: " + path);
    try {
        return parseKernelText(in);
    } catch (const SimError& e) {
        // Prefix the file name so multi-file drivers report usable
        // locations; the kind is preserved.
        throw SimError(e.kind(), path + ": " + e.detail());
    }
}

void
writeKernelText(const Kernel& kernel, std::ostream& output)
{
    output << "kernel " << kernel.name() << ' ' << kernel.tripCount()
           << '\n';
    // Generators first, numbered in addrGen order.
    int num_gens = 0;
    for (const Instruction& instr : kernel.code()) {
        if (instr.addrGenId >= 0)
            num_gens = std::max(num_gens, instr.addrGenId + 1);
    }
    for (int g = 0; g < num_gens; ++g)
        output << "gen " << g << ' ' << kernel.addrGen(g).serialize()
               << '\n';

    // A non-zero loop head round-trips as a label/loop pair.
    int loop_target = 0;
    for (const Instruction& instr : kernel.code()) {
        if (instr.op == Opcode::kBranch && instr.branchTarget > 0)
            loop_target = instr.branchTarget;
    }

    int index = 0;
    for (const Instruction& instr : kernel.code()) {
        if (loop_target > 0 && index == loop_target)
            output << "label head\n";
        ++index;
        switch (instr.op) {
          case Opcode::kSharedLoad:
            output << "sload r" << instr.dst << " gen=" << instr.addrGenId
                   << " lanestride=" << instr.laneStride
                   << " lanes=" << instr.activeLanes;
            if (instr.src[0] != kNoReg)
                output << " dep=r" << instr.src[0];
            output << '\n';
            break;
          case Opcode::kLoad:
            output << "load r" << instr.dst << " pc=0x" << std::hex
                   << instr.pc << std::dec << " gen=" << instr.addrGenId
                   << " lanestride=" << instr.laneStride
                   << " lanes=" << instr.activeLanes;
            if (instr.src[0] != kNoReg)
                output << " dep=r" << instr.src[0];
            output << '\n';
            break;
          case Opcode::kAlu:
          case Opcode::kSfu:
            output << (instr.op == Opcode::kAlu ? "alu r" : "sfu r")
                   << instr.dst;
            for (const int src : instr.src) {
                if (src != kNoReg)
                    output << " r" << src;
            }
            output << " lat=" << instr.latency << '\n';
            break;
          case Opcode::kStore:
            output << "store gen=" << instr.addrGenId
                   << " lanestride=" << instr.laneStride
                   << " lanes=" << instr.activeLanes;
            if (instr.src[0] != kNoReg)
                output << " src=r" << instr.src[0];
            output << '\n';
            break;
          case Opcode::kBarrier:
            output << "barrier\n";
            break;
          case Opcode::kBranch:
            if (instr.branchTarget > 0)
                output << "loop head\n";
            break; // otherwise implicit in the format
          case Opcode::kExit:
            break; // implicit in the format
        }
    }
}

} // namespace apres
