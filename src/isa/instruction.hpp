/**
 * @file
 * The compact kernel instruction set executed by simulated warps.
 *
 * apres-sim does not interpret PTX; the timing behaviour APRES depends
 * on (issue order, register dependencies, load PCs, per-lane
 * addresses) is fully captured by this small IR. Every instruction
 * carries the static PC that the warp schedulers and prefetchers key
 * their tables on.
 */

#ifndef APRES_ISA_INSTRUCTION_HPP
#define APRES_ISA_INSTRUCTION_HPP

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace apres {

/** Operation classes distinguished by the timing model. */
enum class Opcode : std::uint8_t {
    kAlu,     ///< integer/float arithmetic; fixed writeback latency
    kSfu,     ///< special function (longer latency ALU)
    kLoad,    ///< global-memory load through L1
    kStore,   ///< global-memory store (write-through, no-allocate)
    kSharedLoad, ///< scratchpad access (no cache; bank conflicts)
    kBranch,  ///< loop back-edge; re-executes the body until trip count
    kBarrier, ///< block-wide synchronization
    kExit,    ///< terminates the warp
};

/** Maximum number of source registers per instruction. */
inline constexpr int kMaxSrcRegs = 3;

/** Register index sentinel meaning "unused". */
inline constexpr int kNoReg = -1;

/**
 * One static instruction of a kernel.
 *
 * Instructions are stored in program order; @ref pc is the byte
 * address used by PC-indexed hardware structures (LLT, STR table, SAP
 * PT) and is unique per static instruction.
 */
struct Instruction
{
    Opcode op = Opcode::kAlu;

    /** Static program counter (byte address within the kernel). */
    Pc pc = 0;

    /** Destination register, or kNoReg. */
    int dst = kNoReg;

    /** Source registers; unused slots hold kNoReg. */
    std::array<int, kMaxSrcRegs> src = {kNoReg, kNoReg, kNoReg};

    /** Writeback latency in cycles for ALU/SFU results. */
    int latency = 8;

    /** For kLoad/kStore: index into the kernel's address generators. */
    int addrGenId = -1;

    /**
     * For kLoad/kStore: byte distance between consecutive lanes'
     * addresses. 4 = fully coalesced word accesses (one 128 B line per
     * warp), 128 = fully uncoalesced (32 lines per warp).
     */
    int laneStride = 4;

    /**
     * For kLoad/kStore: number of active lanes (1..kWarpSize). Models
     * static control divergence: partially-populated warps issue
     * fewer lane addresses and coalesce into fewer line requests.
     */
    int activeLanes = kWarpSize;

    /** For kBranch: target instruction *index* of the loop head. */
    int branchTarget = -1;

    /**
     * For kBarrier: which warps of a block participate (bit w = warp
     * w within its block). Warps outside the mask step over the
     * barrier without arriving — the early-exit shape of kernels
     * whose tail warps skip the synchronized epilogue. Default: all.
     */
    std::uint64_t participantMask = ~std::uint64_t{0};

    /** True for operations handled by the load-store unit. */
    bool isMemory() const { return op == Opcode::kLoad || op == Opcode::kStore; }
};

} // namespace apres

#endif // APRES_ISA_INSTRUCTION_HPP
