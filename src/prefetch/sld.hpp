/**
 * @file
 * SLD: Spatial Locality Detection based prefetching (Section III-C;
 * after Jog et al., ISCA 2013).
 *
 * Memory is viewed as macro blocks of four consecutive cache lines.
 * When two distinct lines of a macro block have been demanded, the
 * remaining two lines are prefetched. As the paper observes, this only
 * pays off when the access stride is under two cache lines (256 B
 * with 128 B lines) — larger strides never co-touch a macro block, so
 * SLD stays silent or mispredicts.
 */

#ifndef APRES_PREFETCH_SLD_HPP
#define APRES_PREFETCH_SLD_HPP

#include <cstdint>
#include <vector>

#include "core/prefetcher.hpp"

namespace apres {

/** SLD tuning knobs. */
struct SldConfig
{
    int linesPerBlock = 4; ///< macro block size in cache lines
    int tableEntries = 64; ///< tracked macro blocks
    std::uint32_t lineSize = 128;
};

/**
 * Macro-block spatial prefetcher.
 */
class SldPrefetcher final : public Prefetcher
{
  public:
    explicit SldPrefetcher(const SldConfig& config = {});

    void onAccess(const LoadAccessInfo& info, PrefetchIssuer& issuer) override;

    const char* name() const override { return "SLD"; }

  private:
    struct Entry
    {
        bool valid = false;
        Addr blockAddr = kInvalidAddr;
        std::uint32_t accessedMask = 0;
        bool fired = false;
        std::uint64_t lastUse = 0;
    };

    Entry& lookup(Addr block_addr);

    SldConfig cfg;
    std::vector<Entry> table;
    std::uint64_t useClock = 0;
};

} // namespace apres

#endif // APRES_PREFETCH_SLD_HPP
