/**
 * @file
 * STR implementation.
 */

#include "str.hpp"

#include <cassert>

namespace apres {

StrPrefetcher::StrPrefetcher(const StrConfig& config) : cfg(config)
{
    assert(cfg.tableEntries >= 1);
    assert(cfg.degree >= 1);
    assert(cfg.trainThreshold >= 1);
    table.resize(static_cast<std::size_t>(cfg.tableEntries));
}

StrPrefetcher::Entry&
StrPrefetcher::lookup(Pc pc)
{
    Entry* victim = &table[0];
    for (Entry& entry : table) {
        if (entry.valid && entry.pc == pc)
            return entry;
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid && entry.lastUse < victim->lastUse) {
            victim = &entry;
        }
    }
    *victim = Entry{};
    victim->valid = true;
    victim->pc = pc;
    return *victim;
}

void
StrPrefetcher::onAccess(const LoadAccessInfo& info, PrefetchIssuer& issuer)
{
    Entry& entry = lookup(info.pc);
    entry.lastUse = ++useClock;

    if (entry.lastAddr == kInvalidAddr) {
        entry.lastAddr = info.baseAddr;
        return;
    }

    // Confidence hysteresis: interleaved loop iterations inject
    // outlier deltas into the per-PC stream; an established stride is
    // replaced only after repeated disagreement.
    const std::int64_t stride =
        static_cast<std::int64_t>(info.baseAddr) -
        static_cast<std::int64_t>(entry.lastAddr);
    if (stride != 0 && stride == entry.stride) {
        if (entry.confidence < cfg.trainThreshold + 2)
            ++entry.confidence;
    } else if (entry.confidence > 0) {
        --entry.confidence;
    } else {
        entry.stride = stride;
        entry.confidence = 1;
    }
    entry.lastAddr = info.baseAddr;

    if (entry.confidence >= cfg.trainThreshold) {
        for (int d = 1; d <= cfg.degree; ++d) {
            const auto target = static_cast<Addr>(
                static_cast<std::int64_t>(info.baseAddr) + entry.stride * d);
            issuer.issuePrefetch(target, info.pc, info.warp);
        }
    }
}

} // namespace apres
