/**
 * @file
 * SLD implementation.
 */

#include "sld.hpp"

#include <bit>
#include <cassert>

namespace apres {

SldPrefetcher::SldPrefetcher(const SldConfig& config) : cfg(config)
{
    assert(cfg.linesPerBlock >= 2);
    assert(cfg.tableEntries >= 1);
    table.resize(static_cast<std::size_t>(cfg.tableEntries));
}

SldPrefetcher::Entry&
SldPrefetcher::lookup(Addr block_addr)
{
    Entry* victim = &table[0];
    for (Entry& entry : table) {
        if (entry.valid && entry.blockAddr == block_addr)
            return entry;
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid && entry.lastUse < victim->lastUse) {
            victim = &entry;
        }
    }
    *victim = Entry{};
    victim->valid = true;
    victim->blockAddr = block_addr;
    return *victim;
}

void
SldPrefetcher::onAccess(const LoadAccessInfo& info, PrefetchIssuer& issuer)
{
    const std::uint64_t block_bytes =
        static_cast<std::uint64_t>(cfg.linesPerBlock) * cfg.lineSize;
    const Addr block = info.baseLineAddr / block_bytes * block_bytes;
    const auto line_in_block = static_cast<std::uint32_t>(
        (info.baseLineAddr - block) / cfg.lineSize);

    Entry& entry = lookup(block);
    entry.lastUse = ++useClock;
    entry.accessedMask |= 1u << line_in_block;

    if (entry.fired || std::popcount(entry.accessedMask) < 2)
        return;
    entry.fired = true;
    for (int l = 0; l < cfg.linesPerBlock; ++l) {
        if (entry.accessedMask & (1u << l))
            continue;
        issuer.issuePrefetch(block + static_cast<Addr>(l) * cfg.lineSize,
                             info.pc, info.warp);
    }
}

} // namespace apres
