/**
 * @file
 * STR: per-PC stride prefetcher (Section III-C; Lee et al. MICRO 2010,
 * Sethia et al. PACT 2013 style).
 *
 * A small table indexed by load PC records the last observed address
 * and the stride between consecutive dynamic executions of that static
 * load. Under round-robin-like scheduling consecutive executions come
 * from consecutive warps, so the detected stride is exactly the
 * inter-warp stride of Table I — and unlike macro-block schemes it can
 * be arbitrarily large. Once a stride repeats, the prefetcher issues
 * @ref StrConfig::degree requests ahead of the stream.
 */

#ifndef APRES_PREFETCH_STR_HPP
#define APRES_PREFETCH_STR_HPP

#include <cstdint>
#include <vector>

#include "core/prefetcher.hpp"

namespace apres {

/** STR tuning knobs. */
struct StrConfig
{
    int tableEntries = 16;  ///< PC-indexed entries
    int degree = 8;         ///< prefetches per trigger
    int trainThreshold = 2; ///< stride repeats before prefetching
};

/**
 * Per-PC stride prefetcher.
 */
class StrPrefetcher final : public Prefetcher
{
  public:
    explicit StrPrefetcher(const StrConfig& config = {});

    void onAccess(const LoadAccessInfo& info, PrefetchIssuer& issuer) override;

    const char* name() const override { return "STR"; }

  private:
    struct Entry
    {
        bool valid = false;
        Pc pc = kInvalidPc;
        Addr lastAddr = kInvalidAddr;
        std::int64_t stride = 0;
        int confidence = 0;
        std::uint64_t lastUse = 0;
    };

    Entry& lookup(Pc pc);

    StrConfig cfg;
    std::vector<Entry> table;
    std::uint64_t useClock = 0;
};

} // namespace apres

#endif // APRES_PREFETCH_STR_HPP
