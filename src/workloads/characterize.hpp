/**
 * @file
 * Oracle per-load characterization (Table I's static columns).
 *
 * Replays each static load's address stream functionally (no timing)
 * to compute exactly the metrics of Table I that do not depend on
 * cache contention: the fraction of references per load (%Load), the
 * unique-lines-per-reference ratio (#L/#R), and the dominant
 * inter-warp stride with its share of all observed strides (%Stride).
 * The contention-dependent miss rate comes from the timing simulation
 * (LsuStats::perPc).
 */

#ifndef APRES_WORKLOADS_CHARACTERIZE_HPP
#define APRES_WORKLOADS_CHARACTERIZE_HPP

#include <cstdint>
#include <vector>

#include "isa/kernel.hpp"

namespace apres {

/** Static characterization of one load (Table I row, minus miss rate). */
struct LoadProfile
{
    Pc pc = kInvalidPc;
    std::uint64_t references = 0;   ///< coalesced line requests
    std::uint64_t uniqueLines = 0;
    double loadShare = 0.0;         ///< %Load
    double uniqueLinesPerRef = 0.0; ///< #L/#R
    std::int64_t dominantStride = 0;
    double dominantStrideShare = 0.0; ///< %Stride
};

/** Characterization knobs. */
struct CharacterizeOptions
{
    int numWarps = 48;       ///< warps replayed per SM
    int numSms = 1;          ///< SMs replayed
    std::uint64_t maxIters = 128; ///< iterations sampled per warp
    std::uint32_t lineSize = 128;
};

/**
 * Profile every static load of @p kernel.
 * @return one LoadProfile per load, in program order
 */
std::vector<LoadProfile> characterizeKernel(
    const Kernel& kernel, const CharacterizeOptions& options = {});

} // namespace apres

#endif // APRES_WORKLOADS_CHARACTERIZE_HPP
