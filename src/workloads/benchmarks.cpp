/**
 * @file
 * The 15 synthetic benchmarks.
 *
 * Every builder documents which Table I rows it reproduces and which
 * address-generator composition realizes the signature.
 *
 * Two structural choices matter as much as the address patterns:
 *
 *  - Loads inside one iteration are *chained* through the scoreboard
 *    (index/pointer dependences), bounding per-warp MLP near 1. With
 *    48 warps that keeps demand below the 64 L1 MSHRs — the regime
 *    real kernels run in, and the one where prefetching has both MSHR
 *    headroom and exposed latency to hide.
 *  - Streamed arrays are shared between SMs (thread blocks read
 *    interleaved rows of the same matrices), so repeat traffic merges
 *    in the L2/DRAM path and bandwidth is not the universal limiter.
 *
 * Loop trip counts are per job (block); each warp slot runs
 * SmConfig::jobsPerWarp jobs.
 */

#include "workload.hpp"

#include <cstdint>
#include <memory>

#include "common/log.hpp"

namespace apres {

namespace {

/** Disjoint 256 MB data regions per logical array. */
Addr
region(int index)
{
    return 0x4000'0000ull + 0x1000'0000ull * static_cast<Addr>(index);
}

/** High base for NW's negative-stride streams (stays positive). */
constexpr Addr kHighBase = 0x20'0000'0000ull;

std::uint64_t
trips(double base, double scale)
{
    const auto t = static_cast<std::uint64_t>(base * scale);
    return t < 8 ? 8 : t;
}

/**
 * BFS — cache-sensitive, irregular (Table I: loads 0x110/0xF0/0x198,
 * #L/#R 0.04-0.12, miss 0.78-0.90, stride 0). A chained
 * frontier->node->edge walk with strong inter-warp sharing but no
 * usable stride.
 */
Kernel
buildBfs(double scale)
{
    KernelBuilder b("BFS");
    const int a = b.load(std::make_unique<IrregularGen>(
                             region(0), 2 * 1024 * 1024, 8, 2, 0xBF51, 2),
                         4, 0x110);
    const int x = b.alu({a}, 1);
    const int c = b.load(std::make_unique<IrregularGen>(
                             region(1), 4 * 1024 * 1024, 4, 2, 0xBF52, 3),
                         4, 0xF0, x);
    const int y = b.alu({c}, 1);
    const int e = b.load(std::make_unique<IrregularGen>(
                             region(2), 1 * 1024 * 1024, 8, 2, 0xBF53, 2),
                         4, 0x198, y);
    b.alu({e}, 1);
    return b.build(trips(64, scale));
}

/**
 * MUM — cache-sensitive, irregular with very high locality (Table I:
 * miss 0.04-0.17): chained suffix-tree descent over a hot node set.
 */
Kernel
buildMum(double scale)
{
    KernelBuilder b("MUM");
    const int a = b.load(std::make_unique<IrregularGen>(
                             region(3), 256 * 1024, 16, 8, 0x3713),
                         4, 0x7A8);
    const int x = b.alu({a}, 1);
    const int c = b.load(std::make_unique<IrregularGen>(
                             region(4), 128 * 1024, 16, 8, 0x3714),
                         4, 0x460, x);
    const int y = b.alu({c}, 1);
    const int e = b.load(std::make_unique<IrregularGen>(
                             region(5), 512 * 1024, 8, 8, 0x3715),
                         4, 0x8A0, y);
    b.alu({e}, 2);
    return b.build(trips(64, scale));
}

/**
 * NW — cache-sensitive, huge negative stride (Table I: -1966080,
 * miss 1.0, #L/#R ~1): anti-diagonal matrix sweep, zero reuse, but
 * perfectly inter-warp predictable — SAP's best case.
 */
Kernel
buildNw(double scale)
{
    KernelBuilder b("NW");
    const std::int64_t stride = -1966080;
    const int a = b.load(std::make_unique<StridedGen>(
                             kHighBase, stride, stride * 48),
                         4, 0x490);
    const int x = b.alu({a}, 1);
    const int c = b.load(std::make_unique<StridedGen>(
                             kHighBase + 0x4'0000'0000ull, stride,
                             stride * 48),
                         4, 0xD18, x);
    const int y = b.alu({c}, 1);
    b.store(std::make_unique<StridedGen>(kHighBase + 0x8'0000'0000ull,
                                         stride, stride * 48),
            y, 4, 0x108);
    return b.build(trips(48, scale));
}

/**
 * SPMV — cache-sensitive mix (Table I: 0x1E0 #L/#R 0.13 miss 0.32;
 * 0x200 #L/#R 0.25 miss 0.25; 0xE0 #L/#R 0.65 miss 0.81): a chained
 * row-pointer -> column-index -> vector-value walk, the first two
 * skewed-hot, the last a colder wide window.
 */
Kernel
buildSpmv(double scale)
{
    KernelBuilder b("SPMV");
    const int a = b.load(std::make_unique<ZipfGen>(region(6), 8192, 0.9,
                                                   0x59B1),
                         4, 0x1E0);
    const int x = b.alu({a}, 1);
    const int c = b.load(std::make_unique<ZipfGen>(region(7), 2048, 1.1,
                                                   0x59B2),
                         4, 0x200, x);
    const int y = b.alu({c}, 1);
    const int e = b.load(std::make_unique<SharedWindowGen>(
                             region(8), 8 * 1024 * 1024, 4096, 4096 * 7),
                         4, 0xE0, y);
    b.alu({e}, 1);
    return b.build(trips(64, scale));
}

/**
 * KM — cache-sensitive, the paper's thrashing poster child (Table I:
 * one load, #L/#R 0.03, miss 0.99, stride 4352). Each warp cyclically
 * re-scans its slice of the centroid table every 24 iterations while
 * adjacent warps sit 4352 B apart: the re-touch distance is
 * 24 x activeWarps lines — hopeless at 48 warps, comfortable once the
 * active set is throttled, which is why CCWS beats APRES on exactly
 * this application (Section V-B). Windows are per-SM so the L2 cannot
 * absorb the thrash either.
 */
Kernel
buildKm(double scale)
{
    KernelBuilder b("KM");
    const std::int64_t ws = 4352;    // inter-warp stride (Table I)
    const std::int64_t is = ws * 48; // advance per iteration
    const int window = 24;           // iterations per re-scan
    const int a = b.load(std::make_unique<SharedWindowGen>(
                             region(9),
                             static_cast<std::uint64_t>(is) * window,
                             is, ws, is * window),
                         4, 0xE8);
    b.alu({a}, 2);
    return b.build(trips(241, scale));
}

/**
 * LUD — memory-intensive, stride 2048 (Table I: #L/#R 0.57-0.66 yet
 * miss 0.91-0.97): loads B and C revisit A's lines 8 and 16 iterations
 * later — locality exists but the full-TLP reuse distance exceeds the
 * L1, the Section III-B eviction story. Loads are chained (row index
 * computations), leaving latency exposed for SAP.
 */
Kernel
buildLud(double scale)
{
    KernelBuilder b("LUD");
    const std::int64_t ws = 2048;
    const std::int64_t is = ws * 48;
    const Addr base = region(10) + static_cast<Addr>(is) * 32;
    const int a = b.load(std::make_unique<StridedGen>(base, ws, is),
                         4, 0x20F0);
    const int x = b.alu({a}, 1);
    const int c = b.load(std::make_unique<StridedGen>(
                             base - static_cast<Addr>(is) * 8 +
                                 static_cast<Addr>(ws) * 24,
                             ws, is),
                         4, 0x2080, x);
    const int y = b.alu({c}, 1);
    const int e = b.load(std::make_unique<StridedGen>(
                             base - static_cast<Addr>(is) * 16 +
                                 static_cast<Addr>(ws) * 12,
                             ws, is),
                         4, 0x22E0, y);
    b.alu({e}, 1);
    return b.build(trips(56, scale));
}

/**
 * SRAD — memory-intensive, stride 16384 (Table I: three loads, miss
 * ~0.99, 75-81% regular stride). Two fresh diffusion streams, a
 * delayed revisit (0x350's #L/#R of 0.52) and a small high-locality
 * coefficient table — the locality/stride coexistence Section V-B
 * credits LAWS for separating.
 */
Kernel
buildSrad(double scale)
{
    KernelBuilder b("SRAD");
    const std::int64_t ws = 16384;
    const std::int64_t is = ws * 48;
    const Addr base = region(11) + static_cast<Addr>(is) * 16;
    const int a = b.load(std::make_unique<StridedGen>(base, ws, is),
                         4, 0x250);
    const int x = b.alu({a}, 1);
    const int c = b.load(std::make_unique<StridedGen>(
                             base + 0x400'0000, ws, is),
                         4, 0x230, x);
    const int y = b.alu({c}, 1);
    const int e = b.load(std::make_unique<StridedGen>(
                             base - static_cast<Addr>(is) * 4 +
                                 static_cast<Addr>(ws) * 24,
                             ws, is),
                         4, 0x350, y);
    const int z = b.alu({e}, 1);
    const int g = b.load(std::make_unique<ZipfGen>(region(12), 128, 1.0,
                                                   0x5AD1),
                         4, 0x360, z);
    b.alu({g}, 1);
    return b.build(trips(50, scale));
}

/**
 * PA — memory-intensive mix (Table I: 0x2210 stride 8832 miss 0.98;
 * 0x2230 #L/#R 0.002 miss 0.16; 0x2088 stride 256 miss 0.02).
 */
Kernel
buildPa(double scale)
{
    KernelBuilder b("PA");
    const int a = b.load(std::make_unique<StridedGen>(
                             region(13), 8832, 8832 * 48),
                         4, 0x2210);
    const int x = b.alu({a}, 1);
    const int c = b.load(std::make_unique<ZipfGen>(region(14), 256, 1.2,
                                                   0x9A01),
                         4, 0x2230, x);
    const int y = b.alu({c}, 1);
    const int e = b.load(std::make_unique<SharedWindowGen>(
                             region(15), 128 * 1024, 256, 256),
                         4, 0x2088, y);
    b.alu({e}, 2);
    return b.build(trips(62, scale));
}

/**
 * HISTO — memory-intensive (Table I: one load, stride 512, miss 1.0):
 * a pure input stream plus scattered bin-update stores.
 */
Kernel
buildHisto(double scale)
{
    KernelBuilder b("HISTO");
    const int a = b.load(std::make_unique<StridedGen>(
                             region(16), 512, 512 * 48),
                         4, 0x168);
    const int x = b.alu({a}, 2);
    b.store(std::make_unique<IrregularGen>(region(17), 64 * 1024, 1, 1,
                                           0x4151),
            x);
    return b.build(trips(75, scale));
}

/**
 * BP — memory-intensive, stride 128 (Table I: two streaming loads at
 * miss 1.0 and one high-locality load at miss 0.03): weight and delta
 * streams plus a resident layer table.
 */
Kernel
buildBp(double scale)
{
    KernelBuilder b("BP");
    const int a = b.load(std::make_unique<StridedGen>(
                             region(18), 128, 128 * 48),
                         4, 0x3F8);
    const int x = b.alu({a}, 1);
    const int c = b.load(std::make_unique<StridedGen>(
                             region(19), 128, 128 * 48),
                         4, 0x408, x);
    const int y = b.alu({c}, 1);
    const int e = b.load(std::make_unique<SharedWindowGen>(
                             region(20), 24 * 1024, 128, 128),
                         4, 0x478, y);
    const int z = b.alu({e}, 1);
    b.store(std::make_unique<StridedGen>(region(21), 128, 128 * 48), z);
    return b.build(trips(62, scale));
}

/**
 * PF — compute-intensive: a small wavefront table that fits in the L1
 * plus a light input stream, dominated by ALU work.
 */
Kernel
buildPf(double scale)
{
    KernelBuilder b("PF");
    const int a = b.load(std::make_unique<SharedWindowGen>(
                             region(22), 24 * 1024, 128, 256),
                         4, 0x100);
    const int c = b.load(std::make_unique<StridedGen>(
                             region(23), 2048, 2048 * 48),
                         4, 0x140);
    const int x = b.alu({a, c}, 10);
    b.alu({x}, 8);
    return b.build(trips(38, scale));
}

/**
 * CS — compute-intensive separable convolution: one fresh row stream
 * whose neighbour taps (previous row, same line) mostly hit, with a
 * regular stride SAP can extend — Section V-B attributes its APRES
 * gain to prefetching.
 */
Kernel
buildCs(double scale)
{
    KernelBuilder b("CS");
    const std::int64_t ws = 4096;
    const std::int64_t is = ws * 48;
    const Addr base = region(24) + static_cast<Addr>(is) * 8;
    const int a = b.load(std::make_unique<StridedGen>(base, ws, is),
                         4, 0x300);
    const int x = b.alu({a}, 2);
    const int c = b.load(std::make_unique<StridedGen>(
                             base - static_cast<Addr>(is) +
                                 static_cast<Addr>(ws) * 24,
                             ws, is),
                         4, 0x320, x);
    const int y = b.alu({c}, 2);
    const int e = b.load(std::make_unique<StridedGen>(
                             base - static_cast<Addr>(is) + 64 +
                                 static_cast<Addr>(ws) * 24,
                             ws, is),
                         4, 0x340, y);
    b.alu({e}, 5);
    return b.build(trips(64, scale));
}

/**
 * ST — compute-intensive 3D stencil: plane-strided streams with a
 * short-delay revisit and an irregular boundary load; prefetches are
 * only partially useful (the paper's Fig. 15 energy worst case).
 */
Kernel
buildSt(double scale)
{
    KernelBuilder b("ST");
    const std::int64_t ws = 32768;
    const std::int64_t is = ws * 48;
    const Addr base = region(25) + static_cast<Addr>(is) * 8;
    const int a = b.load(std::make_unique<StridedGen>(base, ws, is),
                         4, 0x200);
    const int x = b.alu({a}, 4);
    const int c = b.load(std::make_unique<StridedGen>(
                             base - static_cast<Addr>(is) * 2 +
                                 static_cast<Addr>(ws) * 24,
                             ws, is),
                         4, 0x240, x);
    const int y = b.alu({c}, 4);
    const int e = b.load(std::make_unique<IrregularGen>(
                             region(26), 1024 * 1024, 2, 2, 0x57E1),
                         4, 0x280, y);
    b.alu({e}, 6);
    return b.build(trips(32, scale));
}

/**
 * HS — compute-intensive HotSpot: a resident temperature tile plus a
 * power-input stream, ALU-dominated.
 */
Kernel
buildHs(double scale)
{
    KernelBuilder b("HS");
    const int a = b.load(std::make_unique<SharedWindowGen>(
                             region(27), 24 * 1024, 128, 512),
                         4, 0x180);
    const int c = b.load(std::make_unique<StridedGen>(
                             region(28), 4096, 4096 * 48),
                         4, 0x188);
    const int x = b.alu({a, c}, 12);
    b.alu({x}, 10);
    return b.build(trips(32, scale));
}

/**
 * SP — compute-intensive scalar product: two chained fresh streams
 * with zero reuse and perfect stride — the prefetch-dominated speedup
 * case of Section V-B.
 */
Kernel
buildSp(double scale)
{
    KernelBuilder b("SP");
    const int a = b.load(std::make_unique<StridedGen>(
                             region(29), 8192, 8192 * 48),
                         4, 0x400);
    const int x = b.alu({a}, 1);
    const int c = b.load(std::make_unique<StridedGen>(
                             region(30), 8192, 8192 * 48),
                         4, 0x410, x);
    const int y = b.alu({c}, 3);
    b.alu({y}, 3);
    return b.build(trips(64, scale));
}

struct Meta
{
    const char* abbr;
    const char* full;
    const char* suite;
    AppCategory category;
    Kernel (*build)(double);
};

const Meta kMeta[] = {
    {"BFS", "Breadth-First Search", "Rodinia",
     AppCategory::kCacheSensitive, buildBfs},
    {"MUM", "MUMmerGPU", "Rodinia", AppCategory::kCacheSensitive, buildMum},
    {"NW", "Needleman-Wunsch", "Rodinia", AppCategory::kCacheSensitive,
     buildNw},
    {"SPMV", "Sparse-Matrix dense-Vector multiplication", "Parboil",
     AppCategory::kCacheSensitive, buildSpmv},
    {"KM", "KMeans", "Rodinia", AppCategory::kCacheSensitive, buildKm},
    {"LUD", "LU Decomposition", "Rodinia", AppCategory::kCacheInsensitive,
     buildLud},
    {"SRAD", "Speckle Reducing Anisotropic Diffusion", "Rodinia",
     AppCategory::kCacheInsensitive, buildSrad},
    {"PA", "Particle Filter", "Rodinia", AppCategory::kCacheInsensitive,
     buildPa},
    {"HISTO", "Histogram", "Parboil", AppCategory::kCacheInsensitive,
     buildHisto},
    {"BP", "Back Propagation", "Rodinia", AppCategory::kCacheInsensitive,
     buildBp},
    {"PF", "PathFinder", "Rodinia", AppCategory::kComputeIntensive, buildPf},
    {"CS", "ConvolutionSeparable", "CUDA SDK",
     AppCategory::kComputeIntensive, buildCs},
    {"ST", "Stencil", "Parboil", AppCategory::kComputeIntensive, buildSt},
    {"HS", "HotSpot", "Rodinia", AppCategory::kComputeIntensive, buildHs},
    {"SP", "ScalarProd", "CUDA SDK", AppCategory::kComputeIntensive,
     buildSp},
};

} // namespace

const char*
categoryName(AppCategory category)
{
    switch (category) {
      case AppCategory::kCacheSensitive:   return "cache-sensitive";
      case AppCategory::kCacheInsensitive: return "cache-insensitive";
      case AppCategory::kComputeIntensive: return "compute-intensive";
    }
    return "?";
}

Workload
makeWorkload(const std::string& name, double scale)
{
    for (const Meta& m : kMeta) {
        if (name == m.abbr) {
            Workload w;
            w.abbr = m.abbr;
            w.fullName = m.full;
            w.suite = m.suite;
            w.category = m.category;
            w.kernel = m.build(scale);
            return w;
        }
    }
    fatal("unknown workload: " + name);
}

const std::vector<std::string>&
allWorkloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const Meta& m : kMeta)
            out.emplace_back(m.abbr);
        return out;
    }();
    return names;
}

std::vector<std::string>
workloadNames(AppCategory category)
{
    std::vector<std::string> out;
    for (const Meta& m : kMeta) {
        if (m.category == category)
            out.emplace_back(m.abbr);
    }
    return out;
}

bool
isMemoryIntensive(const std::string& name)
{
    for (const Meta& m : kMeta) {
        if (name == m.abbr)
            return m.category != AppCategory::kComputeIntensive;
    }
    return false;
}

} // namespace apres
