/**
 * @file
 * The paper's benchmark suite (Table IV) as synthetic kernels.
 *
 * Each benchmark is a kernel whose static loads reproduce the
 * per-load signatures the paper characterizes in Table I: the
 * high-locality loads (small #L/#R) of BFS/MUM/SPMV, the large-stride
 * streaming loads of NW/LUD/SRAD/HISTO/BP, KM's pathological
 * 2 MB-window thrashing, and the compute-heavy mixes of the five
 * compute-intensive applications. Absolute data values are irrelevant
 * to APRES (a timing mechanism), so only address streams and
 * dependency shapes are modelled — see DESIGN.md, substitution table.
 */

#ifndef APRES_WORKLOADS_WORKLOAD_HPP
#define APRES_WORKLOADS_WORKLOAD_HPP

#include <string>
#include <vector>

#include "isa/kernel.hpp"

namespace apres {

/** Table IV's three application categories. */
enum class AppCategory {
    kCacheSensitive,   ///< memory-intensive, cache-size sensitive
    kCacheInsensitive, ///< memory-intensive, cache-size insensitive
    kComputeIntensive,
};

/** Human-readable category name. */
const char* categoryName(AppCategory category);

/** A benchmark: metadata + the kernel to simulate. */
struct Workload
{
    std::string abbr;     ///< Table IV abbreviation (e.g. "KM")
    std::string fullName; ///< e.g. "KMeans"
    std::string suite;    ///< originating suite (Rodinia/Parboil/CUDA)
    AppCategory category = AppCategory::kCacheSensitive;
    Kernel kernel;
};

/**
 * Build a benchmark by its Table IV abbreviation.
 *
 * @param name  one of the 15 abbreviations (case-sensitive)
 * @param scale multiplies the loop trip count; tests use ~0.1 for
 *              fast runs, benches 1.0 for paper-shaped runs
 */
Workload makeWorkload(const std::string& name, double scale = 1.0);

/** All 15 abbreviations, in Table IV order. */
const std::vector<std::string>& allWorkloadNames();

/** Abbreviations of one category, in Table IV order. */
std::vector<std::string> workloadNames(AppCategory category);

/** True when @p name is a memory-intensive application. */
bool isMemoryIntensive(const std::string& name);

} // namespace apres

#endif // APRES_WORKLOADS_WORKLOAD_HPP
