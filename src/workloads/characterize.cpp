/**
 * @file
 * Oracle characterization implementation.
 */

#include "characterize.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "mem/coalescer.hpp"

namespace apres {

std::vector<LoadProfile>
characterizeKernel(const Kernel& kernel, const CharacterizeOptions& options)
{
    std::vector<LoadProfile> profiles;
    const Coalescer coalescer(options.lineSize);
    const std::uint64_t iters =
        std::min<std::uint64_t>(options.maxIters, kernel.tripCount());

    std::uint64_t total_refs = 0;

    for (const Instruction& instr : kernel.code()) {
        if (instr.op != Opcode::kLoad)
            continue;
        const AddressGen& gen = kernel.addrGen(instr.addrGenId);

        LoadProfile p;
        p.pc = instr.pc;
        std::unordered_set<Addr> lines;
        std::map<std::int64_t, std::uint64_t> strides;
        std::uint64_t stride_samples = 0;

        for (int sm = 0; sm < options.numSms; ++sm) {
            for (std::uint64_t it = 0; it < iters; ++it) {
                Addr prev_base = kInvalidAddr;
                for (int w = 0; w < options.numWarps; ++w) {
                    const AddrCtx ctx{sm, w, it};
                    const Addr base = gen.base(ctx);
                    for (const Addr line :
                         coalescer.coalesce(base, instr.laneStride)) {
                        lines.insert(line);
                        ++p.references;
                    }
                    if (prev_base != kInvalidAddr) {
                        // Paper: stride = address delta / warp-ID
                        // delta; consecutive warps give delta 1.
                        strides[static_cast<std::int64_t>(base) -
                                static_cast<std::int64_t>(prev_base)]++;
                        ++stride_samples;
                    }
                    prev_base = base;
                }
            }
        }

        p.uniqueLines = lines.size();
        p.uniqueLinesPerRef = p.references
            ? static_cast<double>(p.uniqueLines) /
                  static_cast<double>(p.references)
            : 0.0;
        if (stride_samples) {
            const auto dominant = std::max_element(
                strides.begin(), strides.end(),
                [](const auto& a, const auto& b) {
                    return a.second < b.second;
                });
            p.dominantStride = dominant->first;
            p.dominantStrideShare = static_cast<double>(dominant->second) /
                static_cast<double>(stride_samples);
        }
        total_refs += p.references;
        profiles.push_back(std::move(p));
    }

    for (LoadProfile& p : profiles) {
        p.loadShare = total_refs
            ? static_cast<double>(p.references) /
                  static_cast<double>(total_refs)
            : 0.0;
    }
    return profiles;
}

} // namespace apres
