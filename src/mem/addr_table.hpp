/**
 * @file
 * Hot-path address-keyed containers for the memory hierarchy.
 *
 * Like the LSU's TokenSlab (core/lsu_structures.hpp), both structures
 * exploit an invariant of the simulation that the general-purpose
 * node-based containers they replace cannot:
 *
 *  - keys are *line addresses*, which are never kInvalidAddr, so the
 *    sentinel marks an empty slot and no separate occupancy metadata
 *    is needed;
 *  - populations are small and bounded (MSHR files hold at most
 *    numMshrs entries; the residency sets grow with a workload's
 *    unique-line footprint), so a flat power-of-two open-addressing
 *    table with linear probing keeps every lookup inside one or two
 *    cache lines instead of chasing bucket-list pointers.
 *
 * Deletion uses backward-shift (Robin-Hood style compaction) rather
 * than tombstones so probe chains never degrade over a long run —
 * MSHR entries are erased on every fill, billions of times per
 * simulation.
 *
 * Neither container ever iterates in hash order on a simulation path
 * (only lookup / insert / erase), so the layout cannot perturb stats:
 * the bitwise-identity contract of ff_equivalence is preserved by
 * construction.
 */

#ifndef APRES_MEM_ADDR_TABLE_HPP
#define APRES_MEM_ADDR_TABLE_HPP

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace apres {

namespace detail {

/** Multiplicative mix (splitmix64 finalizer) — line addresses share
 *  their low bits (line-size aligned), so the index must come from the
 *  mixed high bits. */
inline std::size_t
mixAddr(Addr key)
{
    std::uint64_t x = key;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
}

/** Smallest power of two >= n (and >= 8). */
inline std::size_t
tableCapacityFor(std::size_t n)
{
    std::size_t cap = 8;
    while (cap < n)
        cap <<= 1;
    return cap;
}

} // namespace detail

/**
 * Open-addressing Addr -> V map with linear probing and backward-shift
 * deletion. kInvalidAddr is the empty-slot sentinel and is not a legal
 * key. Grows by doubling at ~70% load; reserve() the expected
 * population (e.g. an MSHR file's numMshrs) to make growth a
 * non-event on the simulation path.
 */
template <typename V>
class AddrMap
{
  public:
    explicit AddrMap(std::size_t expected = 8) { rebuild(expected); }

    /** Value behind @p key, or nullptr when absent. */
    V*
    find(Addr key)
    {
        assert(key != kInvalidAddr);
        std::size_t i = detail::mixAddr(key) & mask_;
        while (true) {
            Slot& slot = slots_[i];
            if (slot.key == key)
                return &slot.value;
            if (slot.key == kInvalidAddr)
                return nullptr;
            i = (i + 1) & mask_;
        }
    }

    const V*
    find(Addr key) const
    {
        return const_cast<AddrMap*>(this)->find(key);
    }

    /** True when @p key is present. */
    bool contains(Addr key) const { return find(key) != nullptr; }

    /**
     * Insert a default-constructed value for @p key unless present.
     * @return (value slot, true when newly inserted).
     */
    std::pair<V*, bool>
    insert(Addr key)
    {
        assert(key != kInvalidAddr);
        if (size_ + 1 > growAt_)
            rebuild(slots_.size() * 2);
        std::size_t i = detail::mixAddr(key) & mask_;
        while (true) {
            Slot& slot = slots_[i];
            if (slot.key == key)
                return {&slot.value, false};
            if (slot.key == kInvalidAddr) {
                slot.key = key;
                slot.value = V{};
                ++size_;
                return {&slot.value, true};
            }
            i = (i + 1) & mask_;
        }
    }

    /**
     * Erase @p key. Backward-shift compaction: every displaced
     * follower in the probe chain moves one slot closer to its home.
     * @return true when the key was present.
     */
    bool
    erase(Addr key)
    {
        assert(key != kInvalidAddr);
        std::size_t i = detail::mixAddr(key) & mask_;
        while (true) {
            Slot& slot = slots_[i];
            if (slot.key == kInvalidAddr)
                return false;
            if (slot.key == key)
                break;
            i = (i + 1) & mask_;
        }
        // Shift the tail of the probe cluster back over the hole.
        std::size_t hole = i;
        std::size_t next = (hole + 1) & mask_;
        while (slots_[next].key != kInvalidAddr) {
            const std::size_t home =
                detail::mixAddr(slots_[next].key) & mask_;
            // Move `next` into the hole unless that would hop it
            // before its home slot (circular distance test).
            if (((next - home) & mask_) >= ((next - hole) & mask_)) {
                slots_[hole] = std::move(slots_[next]);
                hole = next;
            }
            next = (next + 1) & mask_;
        }
        slots_[hole].key = kInvalidAddr;
        slots_[hole].value = V{};
        --size_;
        return true;
    }

    /** Drop every entry, keeping the current capacity. */
    void
    clear()
    {
        for (Slot& slot : slots_) {
            slot.key = kInvalidAddr;
            slot.value = V{};
        }
        size_ = 0;
    }

    /** Grow (never shrink) to hold @p expected entries without rehash. */
    void
    reserve(std::size_t expected)
    {
        const std::size_t cap =
            detail::tableCapacityFor(expected * 10 / 7 + 1);
        if (cap > slots_.size())
            rebuild(cap);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Slot count (tests observe growth through this). */
    std::size_t capacity() const { return slots_.size(); }

    /** Visit every (key, value) pair in unspecified order. Not used on
     *  any simulation path (see file comment). */
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (const Slot& slot : slots_) {
            if (slot.key != kInvalidAddr)
                fn(slot.key, slot.value);
        }
    }

  private:
    struct Slot
    {
        Addr key = kInvalidAddr;
        V value{};
    };

    void
    rebuild(std::size_t capacity)
    {
        capacity = detail::tableCapacityFor(capacity);
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(capacity, Slot{});
        mask_ = capacity - 1;
        growAt_ = capacity * 7 / 10;
        size_ = 0;
        for (Slot& slot : old) {
            if (slot.key == kInvalidAddr)
                continue;
            std::size_t i = detail::mixAddr(slot.key) & mask_;
            while (slots_[i].key != kInvalidAddr)
                i = (i + 1) & mask_;
            slots_[i] = std::move(slot);
            ++size_;
        }
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t growAt_ = 0;
    std::size_t size_ = 0;
};

/**
 * Open-addressing set of line addresses — AddrMap's probing scheme
 * with 8-byte slots. Backs the cache's miss-taxonomy residency sets,
 * which are hit on every demand miss.
 */
class AddrSet
{
  public:
    explicit AddrSet(std::size_t expected = 8) { rebuild(expected); }

    bool
    contains(Addr key) const
    {
        assert(key != kInvalidAddr);
        std::size_t i = detail::mixAddr(key) & mask_;
        while (true) {
            if (slots_[i] == key)
                return true;
            if (slots_[i] == kInvalidAddr)
                return false;
            i = (i + 1) & mask_;
        }
    }

    /** @return true when newly inserted. */
    bool
    insert(Addr key)
    {
        assert(key != kInvalidAddr);
        if (size_ + 1 > growAt_)
            rebuild(slots_.size() * 2);
        std::size_t i = detail::mixAddr(key) & mask_;
        while (true) {
            if (slots_[i] == key)
                return false;
            if (slots_[i] == kInvalidAddr) {
                slots_[i] = key;
                ++size_;
                return true;
            }
            i = (i + 1) & mask_;
        }
    }

    /** @return true when the key was present (backward-shift erase). */
    bool
    erase(Addr key)
    {
        assert(key != kInvalidAddr);
        std::size_t i = detail::mixAddr(key) & mask_;
        while (true) {
            if (slots_[i] == kInvalidAddr)
                return false;
            if (slots_[i] == key)
                break;
            i = (i + 1) & mask_;
        }
        std::size_t hole = i;
        std::size_t next = (hole + 1) & mask_;
        while (slots_[next] != kInvalidAddr) {
            const std::size_t home = detail::mixAddr(slots_[next]) & mask_;
            if (((next - home) & mask_) >= ((next - hole) & mask_)) {
                slots_[hole] = slots_[next];
                hole = next;
            }
            next = (next + 1) & mask_;
        }
        slots_[hole] = kInvalidAddr;
        --size_;
        return true;
    }

    void
    clear()
    {
        for (Addr& slot : slots_)
            slot = kInvalidAddr;
        size_ = 0;
    }

    /** Grow (never shrink) to hold @p expected entries without rehash. */
    void
    reserve(std::size_t expected)
    {
        const std::size_t cap =
            detail::tableCapacityFor(expected * 10 / 7 + 1);
        if (cap > slots_.size())
            rebuild(cap);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

  private:
    void
    rebuild(std::size_t capacity)
    {
        capacity = detail::tableCapacityFor(capacity);
        std::vector<Addr> old = std::move(slots_);
        slots_.assign(capacity, kInvalidAddr);
        mask_ = capacity - 1;
        growAt_ = capacity * 7 / 10;
        size_ = 0;
        for (Addr key : old) {
            if (key == kInvalidAddr)
                continue;
            std::size_t i = detail::mixAddr(key) & mask_;
            while (slots_[i] != kInvalidAddr)
                i = (i + 1) & mask_;
            slots_[i] = key;
            ++size_;
        }
    }

    std::vector<Addr> slots_;
    std::size_t mask_ = 0;
    std::size_t growAt_ = 0;
    std::size_t size_ = 0;
};

} // namespace apres

#endif // APRES_MEM_ADDR_TABLE_HPP
