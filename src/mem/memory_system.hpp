/**
 * @file
 * Shared memory-side hierarchy: L2 partitions + DRAM channels.
 *
 * The memory system sits below the per-SM L1s. L1 misses (demand or
 * prefetch) are submitted with submitRead(); responses are delivered
 * to the owning SM's MemClient when tick() passes their ready cycle.
 * Stores are write-through from L1 and fire-and-forget here.
 *
 * Topology follows Table III: the 768 KB L2 is split into 6 partitions
 * (128 KB, 8-way each), one per DRAM channel; lines map to partitions
 * by hashing the line address.
 */

#ifndef APRES_MEM_MEMORY_SYSTEM_HPP
#define APRES_MEM_MEMORY_SYSTEM_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/event_queue.hpp"
#include "mem/request.hpp"

namespace apres {

class Tracer;

/** Receiver of memory responses (one per SM; typically the SM). */
class MemClient
{
  public:
    virtual ~MemClient() = default;

    /** Called when data for @p req arrives back at the SM. */
    virtual void memResponse(const MemRequest& req, Cycle now) = 0;
};

/** Configuration of the shared memory side. */
struct MemSystemConfig
{
    int numPartitions = 6;            ///< L2/DRAM partitions (Table III)
    CacheConfig l2Partition{
        .sizeBytes = 768 * 1024 / 6,  ///< 128 KB per partition
        .ways = 8,
        .lineSize = 128,
        .numMshrs = 256,
        .maxMergesPerMshr = 64,
    };
    Cycle l2HitLatency = 200;         ///< SM-to-data round trip on L2 hit
    DramConfig dram;                  ///< per-partition DRAM timing
};

/** Interconnect/DRAM traffic counters in bytes. */
struct TrafficStats
{
    std::uint64_t requestBytesToL2 = 0; ///< miss request headers (32 B each)
    std::uint64_t fillBytesToL1 = 0;    ///< line fills L2 -> SM
    std::uint64_t storeBytesToL2 = 0;   ///< write-through store data
    std::uint64_t fillBytesFromDram = 0;///< DRAM -> L2 fills
    std::uint64_t storeBytesToDram = 0; ///< store misses written through

    /** Total bytes crossing the SM<->L2 interconnect (Fig. 14). */
    std::uint64_t
    interconnectBytes() const
    {
        return requestBytesToL2 + fillBytesToL1 + storeBytesToL2;
    }
};

/**
 * The shared L2 + DRAM model.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemSystemConfig& config);

    /** Register the response receiver for SM @p sm. */
    void registerClient(SmId sm, MemClient* client);

    /**
     * Submit an L1 read miss (demand or prefetch).
     * A response is delivered to the owning SM's client later.
     *
     * In staging mode (see setStaging) the request is only appended to
     * the submitting SM's staging queue — a single-writer, allocation-
     * amortised vector — and the L2/DRAM state transition is deferred
     * to drainStaged().
     */
    void submitRead(const MemRequest& req, Cycle now);

    /** Submit a write-through store (no response). Stages like reads. */
    void submitWrite(const MemRequest& req, Cycle now);

    /**
     * Enter or leave epoch-staging mode (the parallel engine's memory
     * boundary). While staging, submitRead/submitWrite only record the
     * request in a per-SM queue; each queue is written by exactly one
     * shard thread, so concurrent submission is race-free. All shared
     * state (L2 partitions, DRAM channels, MSHRs, counters) mutates
     * only inside drainStaged(), on the coordinating thread.
     */
    void setStaging(bool on) { staging_ = on; }

    /**
     * Replay every staged request into the memory system in canonical
     * order — submission cycle ascending, then SM id ascending, then
     * per-SM program order — using the original submission cycles.
     * This is exactly the order the serial engine would have issued
     * them in, so every L2/DRAM state transition (and therefore every
     * statistic) is bitwise identical to a serial run. Coordinator-
     * thread only.
     */
    void drainStaged();

    /**
     * Lower bound on cycles between a submitRead and its response
     * delivery: min(L2 hit latency, DRAM base latency). The parallel
     * engine uses it to bound epoch length — no request submitted
     * inside an epoch can mature before the epoch ends.
     */
    Cycle minResponseLatency() const;

    /** Deliver all responses with ready cycle <= @p now. */
    void tick(Cycle now);

    /** True when no responses are in flight. */
    bool idle() const { return events.empty(); }

    /** Earliest pending response cycle (kNever when idle). */
    Cycle nextEventCycle() const;

    /**
     * Read requests submitted by SM @p sm and not yet delivered back.
     * The invariant auditor matches this against the SM's L1 MSHR
     * occupancy: every L1 MSHR allocation pairs with exactly one
     * submitRead(), so (without adaptive bypass, whose requests skip
     * the L1) the two must agree between ticks.
     */
    std::uint64_t outstandingReads(SmId sm) const;

    /** Total read responses delivered (watchdog progress signal). */
    std::uint64_t responsesDelivered() const { return responsesDelivered_; }

    /** Partition a line address maps to. */
    int partitionOf(Addr line_addr) const;

    /** L2 partition caches (index 0..numPartitions-1). */
    const Cache& l2(int partition) const { return *l2s.at(partition); }

    /** DRAM channel of @p partition. */
    const DramPartition& dram(int partition) const
    {
        return drams.at(static_cast<std::size_t>(partition));
    }

    /** Byte traffic counters. */
    const TrafficStats& traffic() const { return traffic_; }

    /** Aggregated L2 stats across partitions. */
    CacheStats l2StatsTotal() const;

    /** Reset caches, channels and counters (for config sweeps). */
    void reset();

    /**
     * Install the event tracer (null = off). The memory side emits a
     * kDramService event on its lane whenever a read is scheduled on a
     * DRAM channel; pure observation.
     */
    void setTracer(Tracer* tracer) { tracer_ = tracer; }

  private:
    /** A scheduled completion (ready cycle and FIFO order live in the
     *  calendar queue). */
    struct Event
    {
        MemRequest req;
        bool fillsL2 = false;   ///< response must fill the L2 partition
    };

    /** One deferred submit captured while staging. */
    struct StagedRequest
    {
        Cycle at = 0;
        MemRequest req;
        bool isWrite = false;
    };

    /** Cursor into one SM's staged queue during the k-way drain. */
    struct DrainHead
    {
        Cycle at = 0;
        int sm = 0;
        std::size_t idx = 0;
    };

    void scheduleEvent(Cycle ready, const MemRequest& req, bool fills_l2);
    void deliver(const MemRequest& req, Cycle now);
    void processRead(const MemRequest& req, Cycle now);
    void processWrite(const MemRequest& req, Cycle now);
    std::vector<StagedRequest>& stagedQueueOf(SmId sm);

    MemSystemConfig cfg;
    std::vector<std::unique_ptr<Cache>> l2s;
    std::vector<DramPartition> drams;
    std::vector<MemClient*> clients;
    CalendarQueue<Event> events;
    TrafficStats traffic_;
    std::vector<std::uint64_t> outstandingReads_; ///< per SM, in flight
    std::uint64_t responsesDelivered_ = 0;
    Tracer* tracer_ = nullptr;
    bool staging_ = false;
    std::vector<std::vector<StagedRequest>> staged_; ///< one queue per SM
    std::vector<DrainHead> drainHeads_; ///< reused k-way merge heap
};

} // namespace apres

#endif // APRES_MEM_MEMORY_SYSTEM_HPP
