/**
 * @file
 * Warp-level memory access coalescer.
 *
 * GPUs merge the per-lane addresses of one warp access into the
 * minimal set of cache-line requests. The coalescer reproduces that:
 * given a base address and a lane stride it returns the unique
 * 128 B-aligned line addresses, preserving first-touch lane order
 * (lowest lane first, which SAP's demand-request queue relies on).
 */

#ifndef APRES_MEM_COALESCER_HPP
#define APRES_MEM_COALESCER_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace apres {

/**
 * Stateless coalescing helper.
 */
class Coalescer
{
  public:
    /** @param line_size cache line size in bytes (power of two). */
    explicit Coalescer(std::uint32_t line_size);

    /**
     * Coalesce a warp access.
     *
     * @param base        address of lane 0
     * @param lane_stride byte distance between consecutive lanes
     * @param active_lanes number of active lanes (1..kWarpSize)
     * @return unique line addresses in first-touch order
     */
    std::vector<Addr> coalesce(Addr base, int lane_stride,
                               int active_lanes = kWarpSize) const;

    /** Line size used. */
    std::uint32_t lineSize() const { return lineBytes; }

    /** Align @p addr to the line containing it. */
    Addr lineOf(Addr addr) const { return addr & ~static_cast<Addr>(lineBytes - 1); }

  private:
    std::uint32_t lineBytes;
};

} // namespace apres

#endif // APRES_MEM_COALESCER_HPP
