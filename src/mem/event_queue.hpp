/**
 * @file
 * Bucketed calendar queue for memory-system completion events.
 *
 * The std::priority_queue it replaces pays an O(log n) sift on every
 * push and pop and scatters events across a heap with no temporal
 * locality. Completion events have structure a binary heap ignores:
 *
 *  - ready cycles are bounded a few hundred cycles ahead of the drain
 *    point (L2 hit latency .. DRAM latency plus queueing), so a ring
 *    of single-cycle buckets covers almost every event;
 *  - the consumer drains strictly monotonically (tick(now) with
 *    non-decreasing now), so a bucket can be recycled as soon as its
 *    cycle has passed.
 *
 * Events whose ready cycle falls beyond the ring land in an unsorted
 * overflow list and migrate into the ring lazily, whenever the window
 * advances. Migration happens *eagerly on every window advance*, which
 * guarantees that a bucket never interleaves a migrated event after a
 * directly-pushed one with a larger sequence number — see popUntil().
 *
 * Delivery order is exactly the replaced heap's: (ready cycle, push
 * sequence). The bitwise-identity contract (ff_equivalence) depends on
 * that tie-break, and calendar_queue_test pins it.
 */

#ifndef APRES_MEM_EVENT_QUEUE_HPP
#define APRES_MEM_EVENT_QUEUE_HPP

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/bitutils.hpp"
#include "common/types.hpp"

namespace apres {

/** nextReady() result when no event is pending. */
inline constexpr Cycle kNoEventReady = std::numeric_limits<Cycle>::max();

template <typename T>
class CalendarQueue
{
  public:
    /** @param window ring size in cycles; rounded up to a power of 2. */
    explicit CalendarQueue(std::size_t window = 4096)
    {
        std::size_t w = 64;
        while (w < window)
            w <<= 1;
        buckets_.resize(w);
        liveBits_.assign(w / 64, 0);
        mask_ = w - 1;
    }

    /**
     * Schedule @p value at @p ready. @pre ready >= every cycle already
     * drained through popUntil (events are never scheduled in the
     * past).
     */
    void
    push(Cycle ready, const T& value)
    {
        assert(ready >= base_ && "event scheduled before the drain point");
        const std::uint64_t seq = seq_++;
        if (ready - base_ <= mask_) {
            const std::size_t b = static_cast<std::size_t>(ready) & mask_;
            buckets_[b].push_back(Item{seq, value});
            liveBits_[b >> 6] |= std::uint64_t{1} << (b & 63);
            ++nearCount_;
        } else {
            far_.push_back(FarItem{ready, seq, value});
            if (ready < farMin_)
                farMin_ = ready;
        }
        ++size_;
        if (ready < cachedNext_)
            cachedNext_ = ready;
    }

    /** Earliest pending ready cycle; kNoEventReady when empty. */
    Cycle
    nextReady() const
    {
        return cachedNext_;
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Ring capacity in cycles (tests observe wrap behavior). */
    std::size_t window() const { return mask_ + 1; }

    /**
     * Deliver every event with ready <= @p now, in (ready, seq) order,
     * as fn(ready, value). fn may push() new events, provided their
     * ready cycles are > now (true for any model with latency >= 1).
     */
    template <typename Fn>
    void
    popUntil(Cycle now, Fn&& fn)
    {
        if (cachedNext_ > now)
            return;
        while (size_ != 0) {
            const Cycle next = nearCount_ != 0 ? scanNear() : farMin_;
            if (next > now)
                break;
            if (nearCount_ == 0) {
                // Only far events are pending and the earliest is due:
                // jump the window to it and pull its era into the ring.
                base_ = next;
                migrateFar();
                continue;
            }
            const std::size_t b = static_cast<std::size_t>(next) & mask_;
            std::vector<Item>& bucket = buckets_[b];
            // The window invariant (all near events within mask_+1
            // cycles of base_) means this bucket holds exactly cycle
            // `next`; push order is seq order.
            liveBits_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
            nearCount_ -= bucket.size();
            size_ -= bucket.size();
            // Swap out first: fn may push, and a new event can never
            // land in this cycle's bucket again (its ready > now and
            // a same-index ready differs by >= window, hence far).
            scratch_.clear();
            scratch_.swap(bucket);
            base_ = next; // drained up to here
            migrateFar();
            for (Item& item : scratch_)
                fn(next, item.value);
        }
        if (now + 1 > base_) {
            base_ = now + 1;
            migrateFar();
        }
        recomputeNext();
    }

    /** Drop every pending event. */
    void
    clear()
    {
        for (std::vector<Item>& bucket : buckets_)
            bucket.clear();
        liveBits_.assign(liveBits_.size(), 0);
        far_.clear();
        nearCount_ = 0;
        size_ = 0;
        seq_ = 0;
        base_ = 0;
        farMin_ = kNoEventReady;
        cachedNext_ = kNoEventReady;
    }

  private:
    struct Item
    {
        std::uint64_t seq = 0;
        T value{};
    };

    struct FarItem
    {
        Cycle ready = 0;
        std::uint64_t seq = 0;
        T value{};
    };

    /** Earliest near cycle. @pre nearCount_ != 0 */
    Cycle
    scanNear() const
    {
        const std::size_t start = static_cast<std::size_t>(base_) & mask_;
        const std::size_t bit = findLive(start);
        return base_ + ((bit - start) & mask_);
    }

    /** First live bucket at or circularly after @p start. */
    std::size_t
    findLive(std::size_t start) const
    {
        const std::size_t words = liveBits_.size();
        std::size_t word = start >> 6;
        // Mask off bits before `start` in its word, then walk.
        std::uint64_t bits = liveBits_[word] &
            (~std::uint64_t{0} << (start & 63));
        for (std::size_t i = 0; i <= words; ++i) {
            if (bits != 0) {
                return (word << 6) +
                    static_cast<std::size_t>(std::countr_zero(bits));
            }
            word = word + 1 == words ? 0 : word + 1;
            bits = liveBits_[word];
        }
        assert(false && "findLive with no live bucket");
        return 0;
    }

    /** Pull far events that now fit the window into the ring. */
    void
    migrateFar()
    {
        if (farMin_ - base_ > mask_)
            return;
        std::size_t kept = 0;
        Cycle new_min = kNoEventReady;
        for (FarItem& item : far_) {
            if (item.ready - base_ <= mask_) {
                const std::size_t b =
                    static_cast<std::size_t>(item.ready) & mask_;
                buckets_[b].push_back(Item{item.seq, item.value});
                liveBits_[b >> 6] |= std::uint64_t{1} << (b & 63);
                ++nearCount_;
            } else {
                if (item.ready < new_min)
                    new_min = item.ready;
                far_[kept++] = std::move(item);
            }
        }
        far_.resize(kept);
        farMin_ = new_min;
    }

    void
    recomputeNext()
    {
        cachedNext_ = size_ == 0 ? kNoEventReady
            : nearCount_ != 0    ? scanNear()
                                 : farMin_;
    }

    std::vector<std::vector<Item>> buckets_;
    std::vector<std::uint64_t> liveBits_; ///< bit b = bucket b non-empty
    std::vector<FarItem> far_;            ///< beyond the window, unsorted
    std::vector<Item> scratch_;           ///< reused drain buffer
    std::size_t mask_ = 0;
    std::size_t nearCount_ = 0;
    std::size_t size_ = 0;
    std::uint64_t seq_ = 0;
    Cycle base_ = 0;                ///< all events have ready >= base_
    Cycle farMin_ = kNoEventReady;  ///< earliest far ready
    Cycle cachedNext_ = kNoEventReady;
};

} // namespace apres

#endif // APRES_MEM_EVENT_QUEUE_HPP
