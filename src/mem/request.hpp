/**
 * @file
 * Memory request type exchanged between the LSU, caches and DRAM.
 */

#ifndef APRES_MEM_REQUEST_HPP
#define APRES_MEM_REQUEST_HPP

#include <cstdint>

#include "common/types.hpp"

namespace apres {

/**
 * One line-granular memory request.
 *
 * Produced by the coalescer (demand) or a prefetcher (prefetch), and
 * tracked through L1 MSHRs, L2 and DRAM. @ref token ties a demand
 * request back to the warp-level load it belongs to so the LSU can
 * release the destination register once all of the load's line
 * requests complete.
 */
struct MemRequest
{
    /** 128 B-aligned line address. */
    Addr lineAddr = kInvalidAddr;

    /** SM that issued the request. */
    SmId sm = 0;

    /** SM-local warp that issued the request (kInvalidWarp for none). */
    WarpId warp = kInvalidWarp;

    /** Static PC of the originating load/store. */
    Pc pc = kInvalidPc;

    /** True for stores (write-through, no response expected). */
    bool isWrite = false;

    /** True for prefetcher-generated requests. */
    bool isPrefetch = false;

    /**
     * True when the request bypasses the L1 (adaptive bypass for
     * streaming loads): the response completes the load directly
     * without filling or disturbing the L1.
     */
    bool bypassL1 = false;

    /** Cycle the request entered the memory system. */
    Cycle issued = 0;

    /** LSU token of the owning warp-load (0 when not applicable). */
    std::uint64_t token = 0;
};

} // namespace apres

#endif // APRES_MEM_REQUEST_HPP
