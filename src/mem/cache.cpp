/**
 * @file
 * Cache model implementation.
 */

#include "cache.hpp"

#include <cassert>
#include <utility>

#include "common/bitutils.hpp"
#include "common/metrics.hpp"

namespace apres {

CacheStats&
CacheStats::operator+=(const CacheStats& other)
{
    demandAccesses += other.demandAccesses;
    demandHits += other.demandHits;
    demandMisses += other.demandMisses;
    hitAfterHit += other.hitAfterHit;
    hitAfterMiss += other.hitAfterMiss;
    coldMisses += other.coldMisses;
    capacityConflictMisses += other.capacityConflictMisses;
    mshrMerges += other.mshrMerges;
    mshrFullEvents += other.mshrFullEvents;
    storeAccesses += other.storeAccesses;
    storeHits += other.storeHits;
    fills += other.fills;
    evictions += other.evictions;
    prefetchesAccepted += other.prefetchesAccepted;
    prefetchDropHit += other.prefetchDropHit;
    prefetchDropPending += other.prefetchDropPending;
    prefetchDropMshrFull += other.prefetchDropMshrFull;
    prefetchFills += other.prefetchFills;
    usefulPrefetches += other.usefulPrefetches;
    demandMergedIntoPrefetch += other.demandMergedIntoPrefetch;
    earlyEvictions += other.earlyEvictions;
    uselessPrefetchEvictions += other.uselessPrefetchEvictions;
    return *this;
}

double
CacheStats::missRate() const
{
    return demandAccesses
        ? static_cast<double>(demandMisses) /
              static_cast<double>(demandAccesses)
        : 0.0;
}

std::uint64_t
CacheStats::correctPrefetches() const
{
    return usefulPrefetches + demandMergedIntoPrefetch + earlyEvictions;
}

double
CacheStats::earlyEvictionRatio() const
{
    const std::uint64_t correct = correctPrefetches();
    return correct ? static_cast<double>(earlyEvictions) /
                         static_cast<double>(correct)
                   : 0.0;
}

Cache::Cache(std::string name, const CacheConfig& config)
    : name_(std::move(name)), cfg(config)
{
    assert(isPowerOfTwo(cfg.lineSize));
    assert(cfg.ways >= 1);
    assert(cfg.sizeBytes >= static_cast<std::uint64_t>(cfg.lineSize) * cfg.ways);
    sets_ = static_cast<std::uint32_t>(cfg.sizeBytes /
                                       (static_cast<std::uint64_t>(cfg.lineSize)
                                        * cfg.ways));
    assert(isPowerOfTwo(sets_) && "sets must be a power of two");
    lines.resize(static_cast<std::size_t>(sets_) * cfg.ways);
}

std::uint32_t
Cache::setIndex(Addr line_addr) const
{
    std::uint64_t line = line_addr / cfg.lineSize;
    if (cfg.hashSetIndex) {
        const unsigned shift = log2Exact(sets_);
        // Fold three higher bit-groups onto the index bits.
        line ^= (line >> shift) ^ (line >> (2 * shift)) ^
            (line >> (3 * shift));
    }
    return static_cast<std::uint32_t>(line % sets_);
}

Cache::Line*
Cache::findLine(Addr line_addr)
{
    const std::uint32_t set = setIndex(line_addr);
    Line* base = &lines[static_cast<std::size_t>(set) * cfg.ways];
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
        if (base[w].valid && base[w].addr == line_addr)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line*
Cache::findLine(Addr line_addr) const
{
    return const_cast<Cache*>(this)->findLine(line_addr);
}

Cache::Line&
Cache::victimLine(std::uint32_t set)
{
    Line* base = &lines[static_cast<std::size_t>(set) * cfg.ways];
    // Invalid ways are always preferred, for every policy.
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
        if (!base[w].valid)
            return base[w];
    }
    if (cfg.replacement == ReplacementPolicy::kRandom) {
        // xorshift64: deterministic, seeded per cache.
        randomState ^= randomState << 13;
        randomState ^= randomState >> 7;
        randomState ^= randomState << 17;
        return base[randomState % cfg.ways];
    }
    // kLru and kFifo both evict the smallest timestamp; they differ in
    // whether hits refresh it (see recordDemandHit / fill).
    Line* victim = &base[0];
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    return *victim;
}

void
Cache::recordDemandHit(Line& line, const MemRequest& req)
{
    ++stats_.demandHits;
    if (lastDemandWasHit)
        ++stats_.hitAfterHit;
    else
        ++stats_.hitAfterMiss;
    lastDemandWasHit = true;
    if (cfg.replacement != ReplacementPolicy::kFifo)
        line.lastUse = ++useClock;
    line.toucherMask.set(req.warp);
    if (line.prefetched && !line.demandTouched) {
        ++stats_.usefulPrefetches;
        // Timeliness: the prefetch landed this many cycles before its
        // first demand consumer (req.issued = demand access cycle).
        if (metrics_ && req.issued >= line.prefetchIssuedAt) {
            metrics_->prefetchTimeliness.add(req.issued -
                                             line.prefetchIssuedAt);
        }
    }
    line.demandTouched = true;
}

void
Cache::classifyMiss(Addr line_addr)
{
    if (everResident.count(line_addr))
        ++stats_.capacityConflictMisses;
    else
        ++stats_.coldMisses;
    // A correctly predicted prefetch whose line was evicted before the
    // demand arrived: the paper's "early eviction" (Section III-C).
    const auto it = earlyEvictedLines.find(line_addr);
    if (it != earlyEvictedLines.end()) {
        ++stats_.earlyEvictions;
        // Reclassify: the eviction was provisionally counted useless.
        --stats_.uselessPrefetchEvictions;
        earlyEvictedLines.erase(it);
    }
}

void
Cache::evict(Line& line)
{
    if (!line.valid)
        return;
    ++stats_.evictions;
    if (line.prefetched && !line.demandTouched) {
        // Provisionally useless; reclassified as an early eviction if
        // a demand miss for this line shows up later.
        ++stats_.uselessPrefetchEvictions;
        earlyEvictedLines.insert(line.addr);
    }
    if (evictionListener)
        evictionListener(line.addr, line.toucherMask);
    line.valid = false;
}

void
Cache::setEvictionListener(EvictionListener listener)
{
    evictionListener = std::move(listener);
}

AccessOutcome
Cache::access(const MemRequest& req)
{
    assert(!req.isWrite && !req.isPrefetch);
    ++stats_.demandAccesses;

    if (Line* line = findLine(req.lineAddr)) {
        recordDemandHit(*line, req);
        return AccessOutcome::kHit;
    }

    // Outstanding miss for the same line: merge.
    const auto it = mshrs.find(req.lineAddr);
    if (it != mshrs.end()) {
        MshrEntry& entry = it->second;
        if (entry.waiters.size() >= cfg.maxMergesPerMshr) {
            ++stats_.mshrFullEvents;
            --stats_.demandAccesses; // the access will be replayed
            return AccessOutcome::kMshrFull;
        }
        ++stats_.demandMisses;
        lastDemandWasHit = false;
        classifyMiss(req.lineAddr);
        ++stats_.mshrMerges;
        if (entry.prefetchOnly) {
            ++stats_.demandMergedIntoPrefetch;
            // Merged-late coverage still has a timeliness distance:
            // demand arrived while the prefetch was in flight.
            if (metrics_ && req.issued >= entry.prefetchIssuedAt) {
                metrics_->prefetchTimeliness.add(req.issued -
                                                 entry.prefetchIssuedAt);
            }
            entry.prefetchOnly = false;
        }
        entry.waiters.push_back(req);
        return AccessOutcome::kMergedMshr;
    }

    if (mshrsFull()) {
        ++stats_.mshrFullEvents;
        --stats_.demandAccesses; // the access will be replayed
        return AccessOutcome::kMshrFull;
    }

    ++stats_.demandMisses;
    lastDemandWasHit = false;
    classifyMiss(req.lineAddr);
    MshrEntry entry;
    entry.prefetchOnly = false;
    entry.waiters.push_back(req);
    mshrs.emplace(req.lineAddr, std::move(entry));
    return AccessOutcome::kMiss;
}

PrefetchOutcome
Cache::prefetch(const MemRequest& req)
{
    assert(req.isPrefetch);
    if (findLine(req.lineAddr) != nullptr) {
        ++stats_.prefetchDropHit;
        return PrefetchOutcome::kDroppedHit;
    }
    if (mshrs.count(req.lineAddr)) {
        ++stats_.prefetchDropPending;
        return PrefetchOutcome::kDroppedPending;
    }
    if (mshrsFull()) {
        ++stats_.prefetchDropMshrFull;
        return PrefetchOutcome::kDroppedMshrFull;
    }
    ++stats_.prefetchesAccepted;
    MshrEntry entry;
    entry.prefetchOnly = true;
    entry.prefetchIssuedAt = req.issued;
    mshrs.emplace(req.lineAddr, std::move(entry));
    return PrefetchOutcome::kIssued;
}

bool
Cache::storeAccess(const MemRequest& req)
{
    assert(req.isWrite);
    ++stats_.storeAccesses;
    if (Line* line = findLine(req.lineAddr)) {
        // Write-through: update in place, keep resident.
        line->lastUse = ++useClock;
        line->demandTouched = true;
        ++stats_.storeHits;
        return true;
    }
    // No-allocate on store miss.
    return false;
}

Cache::FillResult
Cache::fill(Addr line_addr)
{
    FillResult result;
    Cycle pf_issued = 0;
    const auto it = mshrs.find(line_addr);
    if (it != mshrs.end()) {
        result.waiters = std::move(it->second.waiters);
        result.prefetchOnly = it->second.prefetchOnly;
        pf_issued = it->second.prefetchIssuedAt;
        mshrs.erase(it);
    }

    // Allocate-on-fill. The line may already be resident if a fill
    // races a previous one for the same address (possible when a line
    // was filled, evicted and re-fetched); refresh it in place then.
    if (Line* existing = findLine(line_addr)) {
        existing->lastUse = ++useClock;
        return result;
    }

    Line& victim = victimLine(setIndex(line_addr));
    evict(victim);

    ++stats_.fills;
    victim.addr = line_addr;
    victim.valid = true;
    victim.prefetched = result.prefetchOnly;
    victim.demandTouched = !result.prefetchOnly;
    victim.prefetchIssuedAt = result.prefetchOnly ? pf_issued : 0;
    victim.lastUse = ++useClock;
    victim.toucherMask.clear();
    for (const MemRequest& waiter : result.waiters)
        victim.toucherMask.set(waiter.warp);
    if (result.prefetchOnly)
        ++stats_.prefetchFills;
    everResident.insert(line_addr);
    return result;
}

bool
Cache::contains(Addr line_addr) const
{
    return findLine(line_addr) != nullptr;
}

bool
Cache::isPending(Addr line_addr) const
{
    return mshrs.count(line_addr) != 0;
}

void
Cache::reset()
{
    for (auto& line : lines)
        line = Line{};
    mshrs.clear();
    everResident.clear();
    earlyEvictedLines.clear();
    useClock = 0;
    lastDemandWasHit = false;
    stats_ = CacheStats{};
}

} // namespace apres
