/**
 * @file
 * Cache model implementation.
 */

#include "cache.hpp"

#include <cassert>
#include <sstream>
#include <utility>

#include "common/bitutils.hpp"
#include "common/metrics.hpp"
#include "common/profile.hpp"

namespace apres {

CacheStats&
CacheStats::operator+=(const CacheStats& other)
{
    demandAccesses += other.demandAccesses;
    demandHits += other.demandHits;
    demandMisses += other.demandMisses;
    hitAfterHit += other.hitAfterHit;
    hitAfterMiss += other.hitAfterMiss;
    coldMisses += other.coldMisses;
    capacityConflictMisses += other.capacityConflictMisses;
    mshrMerges += other.mshrMerges;
    mshrFullEvents += other.mshrFullEvents;
    storeAccesses += other.storeAccesses;
    storeHits += other.storeHits;
    fills += other.fills;
    evictions += other.evictions;
    prefetchesAccepted += other.prefetchesAccepted;
    prefetchDropHit += other.prefetchDropHit;
    prefetchDropPending += other.prefetchDropPending;
    prefetchDropMshrFull += other.prefetchDropMshrFull;
    prefetchFills += other.prefetchFills;
    usefulPrefetches += other.usefulPrefetches;
    demandMergedIntoPrefetch += other.demandMergedIntoPrefetch;
    earlyEvictions += other.earlyEvictions;
    uselessPrefetchEvictions += other.uselessPrefetchEvictions;
    return *this;
}

double
CacheStats::missRate() const
{
    return demandAccesses
        ? static_cast<double>(demandMisses) /
              static_cast<double>(demandAccesses)
        : 0.0;
}

std::uint64_t
CacheStats::correctPrefetches() const
{
    return usefulPrefetches + demandMergedIntoPrefetch + earlyEvictions;
}

double
CacheStats::earlyEvictionRatio() const
{
    const std::uint64_t correct = correctPrefetches();
    return correct ? static_cast<double>(earlyEvictions) /
                         static_cast<double>(correct)
                   : 0.0;
}

Cache::Cache(std::string name, const CacheConfig& config)
    : name_(std::move(name)), cfg(config)
{
    assert(isPowerOfTwo(cfg.lineSize));
    assert(cfg.ways >= 1);
    assert(cfg.sizeBytes >= static_cast<std::uint64_t>(cfg.lineSize) * cfg.ways);
    sets_ = static_cast<std::uint32_t>(cfg.sizeBytes /
                                       (static_cast<std::uint64_t>(cfg.lineSize)
                                        * cfg.ways));
    assert(isPowerOfTwo(sets_) && "sets must be a power of two");
    tags_.assign(static_cast<std::size_t>(sets_) * cfg.ways, kInvalidAddr);
    lines.resize(static_cast<std::size_t>(sets_) * cfg.ways);
    // The MSHR file is bounded by numMshrs: preallocate so no
    // simulation-path insert ever rehashes.
    mshrs.reserve(cfg.numMshrs);
    everResident.reserve(4 * static_cast<std::size_t>(sets_) * cfg.ways);
}

std::uint32_t
Cache::setIndex(Addr line_addr) const
{
    std::uint64_t line = line_addr / cfg.lineSize;
    if (cfg.hashSetIndex) {
        const unsigned shift = log2Exact(sets_);
        // Fold three higher bit-groups onto the index bits.
        line ^= (line >> shift) ^ (line >> (2 * shift)) ^
            (line >> (3 * shift));
    }
    return static_cast<std::uint32_t>(line % sets_);
}

std::size_t
Cache::findIdx(Addr line_addr) const
{
    const std::uint32_t set = setIndex(line_addr);
    const std::size_t base = static_cast<std::size_t>(set) * cfg.ways;
    // One contiguous run of 8-byte tags: a whole 8-way set is a single
    // 64-byte cache line of the host.
    const Addr* tags = &tags_[base];
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
        if (tags[w] == line_addr)
            return base + w;
    }
    return kNoIdx;
}

std::size_t
Cache::victimIdx(std::uint32_t set)
{
    const std::size_t base = static_cast<std::size_t>(set) * cfg.ways;
    // Invalid ways are always preferred, for every policy.
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
        if (tags_[base + w] == kInvalidAddr)
            return base + w;
    }
    if (cfg.replacement == ReplacementPolicy::kRandom) {
        // xorshift64: deterministic, seeded per cache.
        randomState ^= randomState << 13;
        randomState ^= randomState >> 7;
        randomState ^= randomState << 17;
        return base + randomState % cfg.ways;
    }
    // kLru and kFifo both evict the smallest timestamp; they differ in
    // whether hits refresh it (see recordDemandHit / fill).
    std::size_t victim = base;
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
        if (lines[base + w].lastUse < lines[victim].lastUse)
            victim = base + w;
    }
    return victim;
}

template <bool kMetrics>
void
Cache::recordDemandHit(std::size_t idx, const MemRequest& req)
{
    Line& line = lines[idx];
    ++stats_.demandHits;
    if (lastDemandWasHit)
        ++stats_.hitAfterHit;
    else
        ++stats_.hitAfterMiss;
    lastDemandWasHit = true;
    if (cfg.replacement != ReplacementPolicy::kFifo)
        line.lastUse = ++useClock;
    line.toucherMask.set(req.warp);
    if (line.prefetched && !line.demandTouched) {
        ++stats_.usefulPrefetches;
        // Timeliness: the prefetch landed this many cycles before its
        // first demand consumer (req.issued = demand access cycle).
        if (kMetrics && req.issued >= line.prefetchIssuedAt) {
            metrics_->prefetchTimeliness.add(req.issued -
                                             line.prefetchIssuedAt);
        }
    }
    line.demandTouched = true;
}

void
Cache::classifyMiss(Addr line_addr)
{
    if (everResident.contains(line_addr))
        ++stats_.capacityConflictMisses;
    else
        ++stats_.coldMisses;
    // A correctly predicted prefetch whose line was evicted before the
    // demand arrived: the paper's "early eviction" (Section III-C).
    if (earlyEvictedLines.erase(line_addr)) {
        ++stats_.earlyEvictions;
        // Reclassify: the eviction was provisionally counted useless.
        --stats_.uselessPrefetchEvictions;
    }
}

void
Cache::evict(std::size_t idx)
{
    if (tags_[idx] == kInvalidAddr)
        return;
    Line& line = lines[idx];
    ++stats_.evictions;
    if (line.prefetched && !line.demandTouched) {
        // Provisionally useless; reclassified as an early eviction if
        // a demand miss for this line shows up later.
        ++stats_.uselessPrefetchEvictions;
        earlyEvictedLines.insert(tags_[idx]);
    }
    if (evictionListener)
        evictionListener(tags_[idx], line.toucherMask);
    tags_[idx] = kInvalidAddr;
}

void
Cache::setEvictionListener(EvictionListener listener)
{
    evictionListener = std::move(listener);
}

template <bool kMetrics>
AccessOutcome
Cache::accessImpl(const MemRequest& req)
{
    assert(!req.isWrite && !req.isPrefetch);
    ++stats_.demandAccesses;

    const std::size_t idx = findIdx(req.lineAddr);
    if (idx != kNoIdx) {
        recordDemandHit<kMetrics>(idx, req);
        return AccessOutcome::kHit;
    }

    // Outstanding miss for the same line: merge.
    if (MshrEntry* entry = mshrs.find(req.lineAddr)) {
        if (entry->waiters.size() >= cfg.maxMergesPerMshr) {
            ++stats_.mshrFullEvents;
            --stats_.demandAccesses; // the access will be replayed
            return AccessOutcome::kMshrFull;
        }
        ++stats_.demandMisses;
        lastDemandWasHit = false;
        classifyMiss(req.lineAddr);
        ++stats_.mshrMerges;
        if (entry->prefetchOnly) {
            ++stats_.demandMergedIntoPrefetch;
            // Merged-late coverage still has a timeliness distance:
            // demand arrived while the prefetch was in flight.
            if (kMetrics && req.issued >= entry->prefetchIssuedAt) {
                metrics_->prefetchTimeliness.add(req.issued -
                                                 entry->prefetchIssuedAt);
            }
            entry->prefetchOnly = false;
        }
        entry->waiters.push_back(req);
        return AccessOutcome::kMergedMshr;
    }

    if (mshrsFull()) {
        ++stats_.mshrFullEvents;
        --stats_.demandAccesses; // the access will be replayed
        return AccessOutcome::kMshrFull;
    }

    ++stats_.demandMisses;
    lastDemandWasHit = false;
    classifyMiss(req.lineAddr);
    MshrEntry* entry = mshrs.insert(req.lineAddr).first;
    entry->prefetchOnly = false;
    entry->waiters.push_back(req);
    return AccessOutcome::kMiss;
}

AccessOutcome
Cache::access(const MemRequest& req)
{
    prof::Scope profile(prof::Phase::kCache);
    // One dispatch on the sink hoists every per-access metrics branch
    // into dead code of the <false> instantiation.
    return metrics_ ? accessImpl<true>(req) : accessImpl<false>(req);
}

PrefetchOutcome
Cache::prefetch(const MemRequest& req)
{
    assert(req.isPrefetch);
    if (findIdx(req.lineAddr) != kNoIdx) {
        ++stats_.prefetchDropHit;
        return PrefetchOutcome::kDroppedHit;
    }
    if (mshrs.contains(req.lineAddr)) {
        ++stats_.prefetchDropPending;
        return PrefetchOutcome::kDroppedPending;
    }
    if (mshrsFull()) {
        ++stats_.prefetchDropMshrFull;
        return PrefetchOutcome::kDroppedMshrFull;
    }
    ++stats_.prefetchesAccepted;
    MshrEntry* entry = mshrs.insert(req.lineAddr).first;
    entry->prefetchOnly = true;
    entry->prefetchIssuedAt = req.issued;
    return PrefetchOutcome::kIssued;
}

bool
Cache::storeAccess(const MemRequest& req)
{
    assert(req.isWrite);
    ++stats_.storeAccesses;
    const std::size_t idx = findIdx(req.lineAddr);
    if (idx != kNoIdx) {
        // Write-through: update in place, keep resident.
        lines[idx].lastUse = ++useClock;
        lines[idx].demandTouched = true;
        ++stats_.storeHits;
        return true;
    }
    // No-allocate on store miss.
    return false;
}

Cache::FillResult
Cache::fill(Addr line_addr)
{
    prof::Scope profile(prof::Phase::kCache);
    FillResult result;
    Cycle pf_issued = 0;
    if (MshrEntry* entry = mshrs.find(line_addr)) {
        result.waiters = std::move(entry->waiters);
        result.prefetchOnly = entry->prefetchOnly;
        pf_issued = entry->prefetchIssuedAt;
        mshrs.erase(line_addr);
    }

    // Allocate-on-fill. The line may already be resident if a fill
    // races a previous one for the same address (possible when a line
    // was filled, evicted and re-fetched); refresh it in place then.
    const std::size_t existing = findIdx(line_addr);
    if (existing != kNoIdx) {
        lines[existing].lastUse = ++useClock;
        return result;
    }

    const std::size_t idx = victimIdx(setIndex(line_addr));
    evict(idx);

    ++stats_.fills;
    Line& victim = lines[idx];
    tags_[idx] = line_addr;
    victim.prefetched = result.prefetchOnly;
    victim.demandTouched = !result.prefetchOnly;
    victim.prefetchIssuedAt = result.prefetchOnly ? pf_issued : 0;
    victim.lastUse = ++useClock;
    victim.toucherMask.clear();
    for (const MemRequest& waiter : result.waiters)
        victim.toucherMask.set(waiter.warp);
    if (result.prefetchOnly)
        ++stats_.prefetchFills;
    everResident.insert(line_addr);
    return result;
}

bool
Cache::contains(Addr line_addr) const
{
    return findIdx(line_addr) != kNoIdx;
}

bool
Cache::isPending(Addr line_addr) const
{
    return mshrs.contains(line_addr);
}

std::string
Cache::auditTags() const
{
    std::ostringstream out;
    for (std::uint32_t set = 0; set < sets_; ++set) {
        const std::size_t base = static_cast<std::size_t>(set) * cfg.ways;
        for (std::uint32_t w = 0; w < cfg.ways; ++w) {
            const Addr tag = tags_[base + w];
            if (tag == kInvalidAddr)
                continue;
            if (setIndex(tag) != set) {
                out << name_ << " set " << set << " way " << w << ": tag 0x"
                    << std::hex << tag << std::dec
                    << " indexes to set " << setIndex(tag) << "\n";
            }
            if (mshrs.contains(tag)) {
                out << name_ << " set " << set << " way " << w << ": tag 0x"
                    << std::hex << tag << std::dec
                    << " is resident and has an outstanding MSHR\n";
            }
            for (std::uint32_t v = w + 1; v < cfg.ways; ++v) {
                if (tags_[base + v] == tag) {
                    out << name_ << " set " << set << ": duplicate tag 0x"
                        << std::hex << tag << std::dec << " in ways " << w
                        << " and " << v << "\n";
                }
            }
        }
    }
    return out.str();
}

void
Cache::corruptTagForTest(std::uint32_t set, std::uint32_t way, Addr tag)
{
    tags_[static_cast<std::size_t>(set) * cfg.ways + way] = tag;
}

void
Cache::reset()
{
    tags_.assign(tags_.size(), kInvalidAddr);
    for (auto& line : lines)
        line = Line{};
    mshrs.clear();
    everResident.clear();
    earlyEvictedLines.clear();
    useClock = 0;
    lastDemandWasHit = false;
    stats_ = CacheStats{};
}

} // namespace apres
