/**
 * @file
 * DRAM partition implementation.
 */

#include "dram.hpp"

#include <cassert>

#include "common/profile.hpp"

namespace apres {

DramPartition::DramPartition(const DramConfig& config) : cfg(config)
{
    assert(cfg.serviceInterval >= 1);
    if (cfg.rowBufferModel) {
        assert(cfg.numBanks >= 1);
        assert(cfg.rowBytes >= 128);
        openRow.assign(static_cast<std::size_t>(cfg.numBanks), 0);
    }
}

Cycle
DramPartition::serviceCost(Addr line_addr)
{
    if (!cfg.rowBufferModel)
        return cfg.serviceInterval;

    // Rows interleave across banks: consecutive rows land in
    // consecutive banks, so streams exploit bank-level parallelism.
    const std::uint64_t global_row = line_addr / cfg.rowBytes;
    const auto bank = static_cast<std::size_t>(
        global_row % static_cast<std::uint64_t>(cfg.numBanks));
    const std::uint64_t row_tag = global_row + 1; // 0 = closed

    if (openRow[bank] == row_tag) {
        ++stats_.rowHits;
        return cfg.rowHitInterval;
    }
    ++stats_.rowMisses;
    openRow[bank] = row_tag;
    return cfg.rowMissInterval;
}

Cycle
DramPartition::schedule(Cycle now, Addr line_addr)
{
    prof::Scope profile(prof::Phase::kDram);
    const Cycle start = now > nextFree ? now : nextFree;
    nextFree = start + serviceCost(line_addr);
    ++stats_.requests;
    stats_.totalQueueDelay += start - now;
    return start + cfg.baseLatency;
}

void
DramPartition::reset()
{
    nextFree = 0;
    if (cfg.rowBufferModel)
        openRow.assign(openRow.size(), 0);
    stats_ = DramStats{};
}

} // namespace apres
