/**
 * @file
 * Coalescer implementation.
 */

#include "coalescer.hpp"

#include <cassert>

#include "common/bitutils.hpp"

namespace apres {

Coalescer::Coalescer(std::uint32_t line_size) : lineBytes(line_size)
{
    assert(isPowerOfTwo(line_size));
}

std::vector<Addr>
Coalescer::coalesce(Addr base, int lane_stride, int active_lanes) const
{
    assert(active_lanes >= 1 && active_lanes <= kWarpSize);
    std::vector<Addr> lines;
    lines.reserve(4);
    for (int lane = 0; lane < active_lanes; ++lane) {
        const Addr lane_addr =
            base + static_cast<Addr>(static_cast<std::int64_t>(lane) *
                                     lane_stride);
        const Addr line = lineOf(lane_addr);
        bool seen = false;
        for (const Addr l : lines) {
            if (l == line) {
                seen = true;
                break;
            }
        }
        if (!seen)
            lines.push_back(line);
    }
    return lines;
}

} // namespace apres
