/**
 * @file
 * Set-associative cache model with MSHR merging and prefetch
 * bookkeeping.
 *
 * The cache is *functional*: it answers hit/miss/merge immediately and
 * leaves all timing to the caller (LSU for L1, MemorySystem for L2).
 * It implements everything the paper's evaluation measures:
 *
 *  - miss taxonomy (cold vs capacity+conflict, Section III-A: a miss
 *    on a line that was previously resident counts as
 *    capacity+conflict),
 *  - hit-after-hit / hit-after-miss split (Section V-C),
 *  - MSHR merging of demand requests into outstanding (possibly
 *    prefetch-initiated) misses,
 *  - prefetch usefulness: useful (demand touched the prefetched line),
 *    merged-late (demand merged into the prefetch MSHR), early-evicted
 *    (correctly predicted line evicted before its demand arrived,
 *    Section III-C), and useless.
 *
 * Hot-path layout: tags live in a structure-of-arrays `tags_` vector
 * (kInvalidAddr = invalid way) so findLine() probes one contiguous
 * 64-byte run of tags per set instead of striding through the fat
 * per-line payload structs; MSHRs and the miss-taxonomy residency
 * sets are open-addressing tables (mem/addr_table.hpp) instead of
 * node-based std hashes.
 */

#ifndef APRES_MEM_CACHE_HPP
#define APRES_MEM_CACHE_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "common/warp_mask.hpp"
#include "mem/addr_table.hpp"
#include "mem/request.hpp"

namespace apres {

class MetricsRegistry;

/** Victim selection policy. */
enum class ReplacementPolicy {
    kLru,    ///< least-recently-used (the default; GPU L1s approximate it)
    kFifo,   ///< oldest fill evicted first (hits do not refresh)
    kRandom, ///< deterministic pseudo-random way selection
};

/** Geometry and MSHR capacity of one cache. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024; ///< total capacity
    std::uint32_t ways = 8;              ///< associativity
    std::uint32_t lineSize = 128;        ///< line size in bytes
    std::uint32_t numMshrs = 64;         ///< outstanding-miss entries
    std::uint32_t maxMergesPerMshr = 16; ///< merged requests per entry
    /** Victim selection policy. */
    ReplacementPolicy replacement = ReplacementPolicy::kLru;

    /**
     * XOR-fold upper line-address bits into the set index. GPUs
     * swizzle cache indexing to spread the power-of-two strides GPU
     * kernels love (row pitches, warp-count multiples) across sets;
     * without it such strides collapse onto one set and thrash its 8
     * ways no matter how the warps are scheduled.
     */
    bool hashSetIndex = true;
};

/** Result of a demand read access. */
enum class AccessOutcome {
    kHit,       ///< data present
    kMiss,      ///< MSHR allocated; caller must fetch from below
    kMergedMshr,///< merged into an outstanding miss; no new fetch
    kMshrFull,  ///< no MSHR available; caller must retry later
};

/** Result of a prefetch probe. */
enum class PrefetchOutcome {
    kIssued,         ///< MSHR allocated; caller must fetch from below
    kDroppedHit,     ///< line already resident
    kDroppedPending, ///< line already being fetched
    kDroppedMshrFull,///< no MSHR available; prefetch abandoned
};

/** Aggregate counters maintained by the cache. */
struct CacheStats
{
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandHits = 0;
    std::uint64_t demandMisses = 0;       ///< incl. merged misses
    std::uint64_t hitAfterHit = 0;
    std::uint64_t hitAfterMiss = 0;
    std::uint64_t coldMisses = 0;
    std::uint64_t capacityConflictMisses = 0;
    std::uint64_t mshrMerges = 0;
    std::uint64_t mshrFullEvents = 0;

    std::uint64_t storeAccesses = 0;
    std::uint64_t storeHits = 0;

    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;

    std::uint64_t prefetchesAccepted = 0;
    std::uint64_t prefetchDropHit = 0;
    std::uint64_t prefetchDropPending = 0;
    std::uint64_t prefetchDropMshrFull = 0;
    std::uint64_t prefetchFills = 0;
    std::uint64_t usefulPrefetches = 0;       ///< demand hit a prefetched line
    std::uint64_t demandMergedIntoPrefetch = 0; ///< late but covered
    std::uint64_t earlyEvictions = 0;         ///< correct prefetch evicted first
    std::uint64_t uselessPrefetchEvictions = 0;

    /** Sum another stat block into this one (per-SM aggregation). */
    CacheStats& operator+=(const CacheStats& other);

    /** Demand miss ratio over demand accesses. */
    double missRate() const;

    /** Correctly predicted prefetches (paper's Fig. 4 denominator). */
    std::uint64_t correctPrefetches() const;

    /** Early evictions over correct prefetches (Fig. 4 / Fig. 12). */
    double earlyEvictionRatio() const;
};

/**
 * The cache model. One instance per L1 (per SM) and one per L2
 * partition.
 */
class Cache
{
  public:
    /** Outcome of a fill: who was waiting on the line. */
    struct FillResult
    {
        /** Demand requests merged while the line was in flight. */
        std::vector<MemRequest> waiters;
        /** True when only a prefetch requested the line. */
        bool prefetchOnly = false;
    };

    /** @param name used in stat dumps; @param config geometry. */
    Cache(std::string name, const CacheConfig& config);

    /**
     * Demand read access.
     *
     * On kMiss the caller owns fetching the line from the next level
     * and calling fill() on arrival. On kMergedMshr the request was
     * appended to the outstanding entry and completes with that fill.
     */
    AccessOutcome access(const MemRequest& req);

    /**
     * Prefetch probe. On kIssued the caller fetches the line and calls
     * fill() on arrival; every other outcome drops the prefetch.
     */
    PrefetchOutcome prefetch(const MemRequest& req);

    /**
     * Write-through, no-allocate store access.
     * @return true when the store hit (line updated in place).
     */
    bool storeAccess(const MemRequest& req);

    /**
     * Deliver a line from the next level: releases the MSHR, inserts
     * the line (evicting the LRU victim) and returns the waiters.
     */
    FillResult fill(Addr line_addr);

    /** True when the line is resident. */
    bool contains(Addr line_addr) const;

    /** True when the line has an outstanding MSHR entry. */
    bool isPending(Addr line_addr) const;

    /** Number of MSHR entries currently allocated. */
    std::size_t mshrsInUse() const { return mshrs.size(); }

    /** True when every MSHR entry is allocated. */
    bool mshrsFull() const { return mshrs.size() >= cfg.numMshrs; }

    /**
     * Observer invoked on every eviction with the victim's line
     * address and the mask of warps (bit w = warp w) that touched the
     * line while resident. CCWS feeds its victim tag arrays from this
     * (lost intra-warp locality detection).
     */
    using EvictionListener = std::function<void(Addr, const WarpMask&)>;

    /** Install (or clear, with nullptr) the eviction observer. */
    void setEvictionListener(EvictionListener listener);

    /**
     * Install a metrics sink (null = off). The cache samples prefetch
     * timeliness — cycles between a prefetch's issue and the first
     * demand touching its line (on residency hit or MSHR merge); pure
     * observation, no outcome changes. The demand path dispatches once
     * on the sink's presence into a metrics-free template
     * instantiation, so a null sink costs nothing per access.
     */
    void setMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }

    /** Invalidate all lines and pending state (for reuse in sweeps). */
    void reset();

    /** Statistic counters. */
    const CacheStats& stats() const { return stats_; }

    /** Configured geometry. */
    const CacheConfig& config() const { return cfg; }

    /** Name given at construction. */
    const std::string& name() const { return name_; }

    /** Number of sets. */
    std::uint32_t numSets() const { return sets_; }

    /**
     * Audit the SoA tag array: every valid tag must index to its set,
     * a set must not hold duplicate tags, and a resident line must not
     * also have an outstanding MSHR entry.
     * @return "" when consistent, else a description of the violation.
     */
    std::string auditTags() const;

    /**
     * TEST HOOK: overwrite the tag of (@p set, @p way) with @p tag,
     * bypassing every fill/evict invariant, so hardening tests can
     * watch the auditor flag the corruption (SimError kInvariant).
     */
    void corruptTagForTest(std::uint32_t set, std::uint32_t way, Addr tag);

  private:
    /** Per-line payload; the tag itself lives in tags_ (SoA). */
    struct Line
    {
        bool prefetched = false;
        bool demandTouched = false;
        std::uint64_t lastUse = 0;
        WarpMask toucherMask;       ///< warps that touched the line
        Cycle prefetchIssuedAt = 0; ///< issue cycle when prefetched
    };

    struct MshrEntry
    {
        bool prefetchOnly = false;
        Cycle prefetchIssuedAt = 0; ///< issue cycle when prefetch-born
        std::vector<MemRequest> waiters;
    };

    /** "No such line" result of findIdx. */
    static constexpr std::size_t kNoIdx = ~static_cast<std::size_t>(0);

    std::uint32_t setIndex(Addr line_addr) const;
    std::size_t findIdx(Addr line_addr) const;
    std::size_t victimIdx(std::uint32_t set);
    template <bool kMetrics>
    void recordDemandHit(std::size_t idx, const MemRequest& req);
    template <bool kMetrics>
    AccessOutcome accessImpl(const MemRequest& req);
    void classifyMiss(Addr line_addr);
    void evict(std::size_t idx);

    std::string name_;
    CacheConfig cfg;
    std::uint32_t sets_;
    std::vector<Addr> tags_;  // sets_ * ways, SoA; kInvalidAddr = invalid
    std::vector<Line> lines;  // sets_ * ways, row-major payloads
    AddrMap<MshrEntry> mshrs;
    AddrSet everResident;       // for cold-miss taxonomy
    AddrSet earlyEvictedLines;  // prefetched, never touched
    std::uint64_t useClock = 0;
    std::uint64_t randomState = 0x243F6A8885A308D3ull; // deterministic
    bool lastDemandWasHit = false;
    EvictionListener evictionListener;
    MetricsRegistry* metrics_ = nullptr;
    CacheStats stats_;
};

} // namespace apres

#endif // APRES_MEM_CACHE_HPP
