/**
 * @file
 * DRAM partition timing model.
 *
 * Each of the six memory partitions (Table III) is modelled as a fixed
 * access latency plus a service-rate channel: one 128 B transfer can
 * start every @ref DramConfig::serviceInterval core cycles, so
 * requests arriving faster than the channel drains accumulate queueing
 * delay — the effect Section I attributes to limited bandwidth.
 *
 * An optional bank/row-buffer extension (off by default, so the
 * paper-shaped flat model stays the reference) charges a shorter
 * service interval when a request hits the open row of its bank and a
 * longer one on a row conflict — the first-order effect of FR-FCFS
 * scheduling on GDDR5: sequential (prefetch-friendly) streams see more
 * bandwidth than scattered ones.
 */

#ifndef APRES_MEM_DRAM_HPP
#define APRES_MEM_DRAM_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace apres {

/** Timing parameters of one DRAM partition. */
struct DramConfig
{
    /** Minimum request-to-data latency in core cycles (Table III). */
    Cycle baseLatency = 440;

    /**
     * Core cycles between consecutive line transfers on one partition
     * (flat model). Default 6 approximates ~21 B/core-cycle/partition
     * of GDDR5 bandwidth at the 1.4 GHz core clock.
     */
    Cycle serviceInterval = 6;

    /** Enable the bank/row-buffer timing extension. */
    bool rowBufferModel = false;

    /** Banks per partition (row-buffer model). */
    int numBanks = 8;

    /** Row size in bytes (row-buffer model). */
    std::uint32_t rowBytes = 2048;

    /** Service interval on an open-row hit. */
    Cycle rowHitInterval = 3;

    /** Service interval on a row miss/conflict (activate+precharge). */
    Cycle rowMissInterval = 12;
};

/** Counters of one DRAM partition. */
struct DramStats
{
    std::uint64_t requests = 0;
    std::uint64_t totalQueueDelay = 0; ///< cycles spent waiting for the channel
    std::uint64_t rowHits = 0;         ///< row-buffer model only
    std::uint64_t rowMisses = 0;       ///< row-buffer model only

    double
    avgQueueDelay() const
    {
        return requests ? static_cast<double>(totalQueueDelay) /
                              static_cast<double>(requests)
                        : 0.0;
    }

    /** Fraction of requests hitting an open row. */
    double
    rowHitRate() const
    {
        const std::uint64_t total = rowHits + rowMisses;
        return total ? static_cast<double>(rowHits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * One DRAM partition: bandwidth-limited, fixed-latency channel with an
 * optional bank/row-buffer service model.
 */
class DramPartition
{
  public:
    explicit DramPartition(const DramConfig& config);

    /**
     * Schedule a line transfer requested at @p now.
     *
     * @param now       request arrival cycle
     * @param line_addr line address (used by the row-buffer model;
     *                  ignored by the flat model)
     * @return cycle at which the data is available at the L2 partition
     */
    Cycle schedule(Cycle now, Addr line_addr = 0);

    /** First cycle a new transfer could start. */
    Cycle nextFreeCycle() const { return nextFree; }

    /** Counters. */
    const DramStats& stats() const { return stats_; }

    /** Reset channel state and counters. */
    void reset();

  private:
    Cycle serviceCost(Addr line_addr);

    DramConfig cfg;
    Cycle nextFree = 0;
    std::vector<std::uint64_t> openRow; ///< per-bank open row (+1; 0=none)
    DramStats stats_;
};

} // namespace apres

#endif // APRES_MEM_DRAM_HPP
