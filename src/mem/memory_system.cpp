/**
 * @file
 * MemorySystem implementation.
 */

#include "memory_system.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <string>

#include "common/log.hpp"
#include "common/profile.hpp"
#include "common/trace.hpp"
#include "isa/address_gen.hpp" // mix64

namespace apres {

namespace {

/** Bytes of a read-request header on the interconnect. */
constexpr std::uint64_t kRequestHeaderBytes = 32;

} // namespace

MemorySystem::MemorySystem(const MemSystemConfig& config) : cfg(config)
{
    assert(cfg.numPartitions >= 1);
    l2s.reserve(static_cast<std::size_t>(cfg.numPartitions));
    for (int p = 0; p < cfg.numPartitions; ++p) {
        l2s.push_back(std::make_unique<Cache>("l2p" + std::to_string(p),
                                              cfg.l2Partition));
        drams.emplace_back(cfg.dram);
    }
}

void
MemorySystem::registerClient(SmId sm, MemClient* client)
{
    assert(sm >= 0);
    if (static_cast<std::size_t>(sm) >= clients.size())
        clients.resize(static_cast<std::size_t>(sm) + 1, nullptr);
    clients[static_cast<std::size_t>(sm)] = client;
    // Presize the staging queues here, before any worker thread runs:
    // each inner vector is then written by exactly one shard and the
    // outer vector never reallocates under concurrent submission.
    if (static_cast<std::size_t>(sm) >= staged_.size())
        staged_.resize(static_cast<std::size_t>(sm) + 1);
}

int
MemorySystem::partitionOf(Addr line_addr) const
{
    // Hash so that strided streams spread across partitions instead of
    // camping on one channel.
    return static_cast<int>(mix64(line_addr / 128) %
                            static_cast<std::uint64_t>(cfg.numPartitions));
}

void
MemorySystem::scheduleEvent(Cycle ready, const MemRequest& req, bool fills_l2)
{
    events.push(ready, Event{req, fills_l2});
}

std::vector<MemorySystem::StagedRequest>&
MemorySystem::stagedQueueOf(SmId sm)
{
    assert(sm >= 0 && static_cast<std::size_t>(sm) < staged_.size() &&
           "staged submit from an SM that never registered a client");
    return staged_[static_cast<std::size_t>(sm)];
}

void
MemorySystem::submitRead(const MemRequest& req, Cycle now)
{
    if (staging_) {
        stagedQueueOf(req.sm).push_back(
            StagedRequest{now, req, /*isWrite=*/false});
        return;
    }
    processRead(req, now);
}

void
MemorySystem::submitWrite(const MemRequest& req, Cycle now)
{
    if (staging_) {
        stagedQueueOf(req.sm).push_back(
            StagedRequest{now, req, /*isWrite=*/true});
        return;
    }
    processWrite(req, now);
}

void
MemorySystem::drainStaged()
{
    prof::Scope profile(prof::Phase::kDrain);
    // Merge the per-SM queues into canonical order: cycle ascending,
    // then SM ascending, then per-SM program order. Each queue is
    // already cycle-ordered (an SM submits monotonically), so a k-way
    // merge over the queue heads — a min-heap keyed (cycle, smId) —
    // replays exactly the order a concatenate-and-stable-sort would,
    // at O(N log K) without copying a single request. Equal-cycle runs
    // within one SM drain as a batch: once (cycle, sm) is the heap
    // minimum, no other queue may precede any entry of that run.
    const auto later = [](const DrainHead& a, const DrainHead& b) {
        return a.at != b.at ? a.at > b.at : a.sm > b.sm;
    };
    drainHeads_.clear();
    for (std::size_t sm = 0; sm < staged_.size(); ++sm) {
        if (!staged_[sm].empty()) {
            drainHeads_.push_back(
                DrainHead{staged_[sm].front().at, static_cast<int>(sm), 0});
        }
    }
    std::make_heap(drainHeads_.begin(), drainHeads_.end(), later);
    while (!drainHeads_.empty()) {
        std::pop_heap(drainHeads_.begin(), drainHeads_.end(), later);
        DrainHead head = drainHeads_.back();
        drainHeads_.pop_back();
        std::vector<StagedRequest>& queue =
            staged_[static_cast<std::size_t>(head.sm)];
        std::size_t idx = head.idx;
        const Cycle at = head.at;
        do {
            const StagedRequest& s = queue[idx];
            if (s.isWrite)
                processWrite(s.req, s.at);
            else
                processRead(s.req, s.at);
            ++idx;
        } while (idx < queue.size() && queue[idx].at == at);
        if (idx < queue.size()) {
            drainHeads_.push_back(DrainHead{queue[idx].at, head.sm, idx});
            std::push_heap(drainHeads_.begin(), drainHeads_.end(), later);
        }
    }
    for (std::vector<StagedRequest>& queue : staged_)
        queue.clear();
}

Cycle
MemorySystem::minResponseLatency() const
{
    return std::min(cfg.l2HitLatency, cfg.dram.baseLatency);
}

void
MemorySystem::processRead(const MemRequest& req, Cycle now)
{
    if (static_cast<std::size_t>(req.sm) >= outstandingReads_.size())
        outstandingReads_.resize(static_cast<std::size_t>(req.sm) + 1, 0);
    ++outstandingReads_[static_cast<std::size_t>(req.sm)];

    const int p = partitionOf(req.lineAddr);
    Cache& l2 = *l2s[static_cast<std::size_t>(p)];
    traffic_.requestBytesToL2 += kRequestHeaderBytes;

    // The L2 sees every read as a demand access; the prefetch flag
    // only matters to the L1 that issued it.
    MemRequest probe = req;
    probe.isPrefetch = false;
    switch (l2.access(probe)) {
      case AccessOutcome::kHit:
        scheduleEvent(now + cfg.l2HitLatency, req, /*fills_l2=*/false);
        traffic_.fillBytesToL1 += cfg.l2Partition.lineSize;
        break;
      case AccessOutcome::kMergedMshr:
        // Completion rides on the outstanding DRAM fetch; the merged
        // request was recorded as an L2 MSHR waiter.
        break;
      case AccessOutcome::kMiss: {
        const Cycle done =
            drams[static_cast<std::size_t>(p)].schedule(now, req.lineAddr);
        traffic_.fillBytesFromDram += cfg.l2Partition.lineSize;
        if (tracer_) {
            tracer_->record(tracer_->memLane(),
                            TraceEventType::kDramService, now, req.pc,
                            req.warp, done - now);
        }
        scheduleEvent(done, req, /*fills_l2=*/true);
        break;
      }
      case AccessOutcome::kMshrFull: {
        // L2 MSHRs exhausted: bypass merging and stream straight from
        // DRAM. Rare with the default 256 entries.
        const Cycle done =
            drams[static_cast<std::size_t>(p)].schedule(now, req.lineAddr);
        traffic_.fillBytesFromDram += cfg.l2Partition.lineSize;
        traffic_.fillBytesToL1 += cfg.l2Partition.lineSize;
        if (tracer_) {
            tracer_->record(tracer_->memLane(),
                            TraceEventType::kDramService, now, req.pc,
                            req.warp, done - now);
        }
        scheduleEvent(done, req, /*fills_l2=*/false);
        break;
      }
    }
}

void
MemorySystem::processWrite(const MemRequest& req, Cycle now)
{
    assert(req.isWrite);
    const int p = partitionOf(req.lineAddr);
    Cache& l2 = *l2s[static_cast<std::size_t>(p)];
    traffic_.storeBytesToL2 += cfg.l2Partition.lineSize;
    if (!l2.storeAccess(req)) {
        // No-allocate at L2 either: write through to DRAM, consuming
        // channel bandwidth.
        drams[static_cast<std::size_t>(p)].schedule(now, req.lineAddr);
        traffic_.storeBytesToDram += cfg.l2Partition.lineSize;
    }
}

void
MemorySystem::deliver(const MemRequest& req, Cycle now)
{
    assert(static_cast<std::size_t>(req.sm) < clients.size() &&
           clients[static_cast<std::size_t>(req.sm)] != nullptr &&
           "response for an unregistered SM");
    assert(static_cast<std::size_t>(req.sm) < outstandingReads_.size() &&
           outstandingReads_[static_cast<std::size_t>(req.sm)] > 0 &&
           "delivering a response that was never submitted");
    --outstandingReads_[static_cast<std::size_t>(req.sm)];
    ++responsesDelivered_;
    clients[static_cast<std::size_t>(req.sm)]->memResponse(req, now);
}

void
MemorySystem::tick(Cycle now)
{
    events.popUntil(now, [&](Cycle, Event& ev) {
        if (ev.fillsL2) {
            const int p = partitionOf(ev.req.lineAddr);
            Cache::FillResult fill =
                l2s[static_cast<std::size_t>(p)]->fill(ev.req.lineAddr);
            // Everyone who merged on the L2 MSHR gets its data now.
            for (const MemRequest& waiter : fill.waiters) {
                traffic_.fillBytesToL1 += cfg.l2Partition.lineSize;
                deliver(waiter, now);
            }
        } else {
            deliver(ev.req, now);
        }
    });
}

Cycle
MemorySystem::nextEventCycle() const
{
    return events.nextReady();
}

std::uint64_t
MemorySystem::outstandingReads(SmId sm) const
{
    const auto i = static_cast<std::size_t>(sm);
    return i < outstandingReads_.size() ? outstandingReads_[i] : 0;
}

CacheStats
MemorySystem::l2StatsTotal() const
{
    CacheStats total;
    for (const auto& l2 : l2s)
        total += l2->stats();
    return total;
}

void
MemorySystem::reset()
{
    for (auto& l2 : l2s)
        l2->reset();
    for (auto& dram : drams)
        dram.reset();
    events.clear();
    traffic_ = TrafficStats{};
    outstandingReads_.assign(outstandingReads_.size(), 0);
    responsesDelivered_ = 0;
    staging_ = false;
    for (std::vector<StagedRequest>& queue : staged_)
        queue.clear();
}

} // namespace apres
