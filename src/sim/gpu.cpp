/**
 * @file
 * Gpu implementation: construction through the policy registry, run
 * loop, and result collection.
 *
 * Collection is policy-agnostic: schedulers and prefetchers report
 * their own statistics through the reportStats() virtual, so this
 * file needs no knowledge of (and no edits for) individual policies.
 */

#include "gpu.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <exception>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "common/log.hpp"
#include "common/profile.hpp"
#include "common/sim_error.hpp"
#include "sim/auditor.hpp"
#include "sim/config_registry.hpp"
#include "sim/policy_registry.hpp"

namespace apres {

namespace {

/** Simulated cycles between interrupt-hook polls (job deadlines). */
constexpr Cycle kInterruptCheckInterval = 16'384;

std::string
upperCased(const std::string& name)
{
    std::string out = name;
    for (char& c : out) {
        if (c >= 'a' && c <= 'z')
            c = static_cast<char>(c - 'a' + 'A');
    }
    return out;
}

} // namespace

std::string
GpuConfig::label() const
{
    if (scheduler == "laws" && prefetcher == "sap")
        return "APRES";
    std::string out = upperCased(scheduler);
    if (prefetcher != "none") {
        out += '+';
        out += upperCased(prefetcher);
    }
    return out;
}

Gpu::Gpu(const GpuConfig& config, const Kernel& kernel_ref)
    : cfg(config), rng_(config.seed), kernel(kernel_ref)
{
    assert(cfg.numSms >= 1);
    if (cfg.sm.warpsPerSm < 1)
        throwConfigError("warpsPerSm must be >= 1 (got " +
                         std::to_string(cfg.sm.warpsPerSm) + ")");
    // Warp sets (LAWS/WGT groups, the cache's per-line consumer
    // tracking) are dynamically sized WarpMasks, so warpsPerSm itself
    // is unbounded here. Barrier participant masks, however, are
    // per-block 64-bit lane masks baked into Instruction, so a block
    // wider than 64 warps is unrepresentable (real GPUs cap blocks at
    // 32 warps anyway).
    if (cfg.sm.warpsPerBlock > 64)
        throwConfigError(
            "warpsPerBlock=" + std::to_string(cfg.sm.warpsPerBlock) +
            " exceeds the 64-lane barrier participant mask width; "
            "configure at most 64 warps per block");
    memsys = std::make_unique<MemorySystem>(cfg.mem);
    for (int s = 0; s < cfg.numSms; ++s) {
        schedulers.push_back(makeScheduler(cfg));
        prefetchers.push_back(makePrefetcher(cfg, *schedulers.back()));
        sms.push_back(std::make_unique<Sm>(s, cfg.sm, kernel,
                                           *schedulers.back(),
                                           prefetchers.back().get(),
                                           *memsys));
        sms.back()->setFastForward(cfg.fastForward);
    }
    if (cfg.audit) {
        auditor_ = std::make_unique<Auditor>(cfg, kernel, sms, schedulers,
                                             prefetchers, *memsys);
    }
    // Observation sinks (both off by default). Installation is the
    // only state change: every emit site is null-guarded, and emitting
    // never feeds back into simulation state, so stats stay bitwise
    // identical with observation on or off.
    if (cfg.trace) {
        tracer_ = std::make_unique<Tracer>(
            cfg.numSms, static_cast<std::size_t>(cfg.traceBufferEvents));
    }
    if (cfg.metrics) {
        // Under the parallel engine every SM samples into a private
        // registry (no cross-thread contention); the serial engine
        // keeps the single shared one. Merged sums are identical
        // either way (integral samples, exact in double).
        if (resolveShardCount() > 1) {
            smMetrics_.reserve(sms.size());
            for (std::size_t i = 0; i < sms.size(); ++i)
                smMetrics_.push_back(std::make_unique<MetricsRegistry>());
        } else {
            metrics_ = std::make_unique<MetricsRegistry>();
        }
    }
    if (tracer_ || metrics_ || !smMetrics_.empty()) {
        memsys->setTracer(tracer_.get());
        for (std::size_t i = 0; i < sms.size(); ++i) {
            MetricsRegistry* m =
                smMetrics_.empty() ? metrics_.get() : smMetrics_[i].get();
            sms[i]->setObservability(tracer_.get(), m);
            schedulers[i]->setObservability(tracer_.get(), m);
            if (prefetchers[i])
                prefetchers[i]->setObservability(tracer_.get(), m);
        }
    }
}

Gpu::~Gpu() = default;

bool
Gpu::done() const
{
    // Sm::done() is monotone (a drained SM never wakes up again), so a
    // prefix pointer over the SM vector makes the per-cycle check
    // amortized O(1) instead of an SMs x warps scan: only the first
    // still-active SM is ever queried, and each SM is passed at most
    // once over the whole run.
    while (firstActiveSm_ < sms.size() && sms[firstActiveSm_]->done())
        ++firstActiveSm_;
    return firstActiveSm_ == sms.size() && memsys->idle();
}

void
Gpu::step(Cycle cycles)
{
    const Cycle end = cycle + cycles;
    while (cycle < end && !done()) {
        memsys->tick(cycle);
        for (auto& sm : sms)
            sm->tick(cycle);
        ++cycle;
    }
}

int
Gpu::resolveShardCount() const
{
    int shards = cfg.shards;
    if (shards == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        shards = hw == 0 ? 1 : static_cast<int>(hw);
    }
    shards = std::min(shards, cfg.numSms);
    return std::max(shards, 1);
}

RunResult
Gpu::run()
{
    const int shard_count = resolveShardCount();
    if (shard_count > 1)
        runParallelLoop(shard_count);
    else
        runSerialLoop();
    if (auditor_)
        auditor_->checkInvariants(cycle);
    RunResult result = collect();
    result.completed = done();
    if (!result.completed) {
        logWarn("simulation hit maxCycles=", cfg.maxCycles,
                " before the kernel drained");
    }
    writeTraceFile();
    return result;
}

void
Gpu::runSerialLoop()
{
    // Forward-progress watchdog state: "progress" is an instruction
    // issuing or a memory response arriving. Anything else (scheduler
    // throttling, barrier waits, MSHR pressure) resolves only through
    // one of those two, so their joint absence over watchdogCycles is
    // a genuine deadlock/livelock.
    const std::uint64_t watchdog = cfg.watchdogCycles;
    Cycle lastProgress = cycle;
    std::uint64_t lastResponses = memsys->responsesDelivered();
    Cycle nextAudit =
        auditor_ ? cycle + cfg.auditInterval : std::numeric_limits<Cycle>::max();
    Cycle nextInterrupt = cycle + kInterruptCheckInterval;

    while (cycle < cfg.maxCycles && !done()) {
        memsys->tick(cycle);
        bool issued = false;
        for (auto& sm : sms)
            issued = sm->tick(cycle) || issued;
        if (issued) {
            lastProgress = cycle;
        } else {
            const std::uint64_t responses = memsys->responsesDelivered();
            if (responses != lastResponses) {
                lastResponses = responses;
                lastProgress = cycle;
            }
        }
        ++cycle;

        if (auditor_ && cycle >= nextAudit) {
            auditor_->checkInvariants(cycle);
            nextAudit = cycle + cfg.auditInterval;
        }
        if (interruptCheck_ && cycle >= nextInterrupt) {
            interruptCheck_();
            nextInterrupt = cycle + kInterruptCheckInterval;
        }
        if (watchdog != 0 && cycle - lastProgress >= watchdog)
            reportDeadlock(lastProgress);

        // Re-check done() before considering a jump: the kernel can
        // drain *mid-iteration* without an issue (the final memory
        // response retires the last warp), and a jump computed over
        // all-done SMs has no wakeup to bound it — it would overshoot
        // to the cycle cap and credit the whole gap as idle.
        if (done())
            break;

        if (!cfg.fastForward || issued)
            continue;

        // Event-driven fast-forward: no SM issued this cycle. Find the
        // earliest cycle anything can happen again — a memory response
        // maturing, an L1-hit completing, or a stalled register
        // becoming ready — and jump there, crediting the provably
        // issue-free cycles in bulk. Statistics stay bitwise identical
        // to ticking through them (the skipped ticks would have been
        // pure idle increments). Skips clamp to the next watchdog
        // deadline, audit tick and interrupt poll so none of them can
        // be jumped over.
        Cycle wake = memsys->nextEventCycle();
        for (const auto& sm : sms)
            wake = std::min(wake, sm->nextWakeup(cycle));
        Cycle target = std::min(wake, cfg.maxCycles);
        if (watchdog != 0)
            target = std::min(target, lastProgress + watchdog);
        if (auditor_)
            target = std::min(target, nextAudit);
        if (interruptCheck_)
            target = std::min(target, nextInterrupt);
        if (target > cycle) {
            const Cycle skipped = target - cycle;
            for (auto& sm : sms)
                sm->skipIdle(skipped);
            if (auditor_)
                auditor_->checkSkipWindow(cycle, target);
            if (tracer_) {
                // Engine-lane span so the viewer shows where wall time
                // was jumped; ts = span start, dur = skipped cycles.
                tracer_->record(tracer_->engineLane(),
                                TraceEventType::kFfIdleSpan, cycle,
                                kInvalidPc, kInvalidWarp, skipped);
            }
            cycle = target;

            // Deadline checks fire *at the landing cycle* when a jump
            // was clamped by one, not one tick later — the parallel
            // engine checks at its epoch boundaries, and audits,
            // interrupt polls and watchdog reports must happen at the
            // same simulated cycle under every engine.
            if (auditor_ && cycle >= nextAudit) {
                auditor_->checkInvariants(cycle);
                nextAudit = cycle + cfg.auditInterval;
            }
            if (interruptCheck_ && cycle >= nextInterrupt) {
                interruptCheck_();
                nextInterrupt = cycle + kInterruptCheckInterval;
            }
            // wake > cycle proves the tick at the landing cycle cannot
            // issue or deliver anything, so reporting now (rather than
            // after ticking it) loses nothing.
            if (watchdog != 0 && cycle - lastProgress >= watchdog &&
                wake > cycle)
                reportDeadlock(lastProgress);
        }
    }
}

namespace {

/**
 * Generation-counted spin barrier for the epoch engine. Epochs are a
 * few hundred simulated cycles, so parties meet every few
 * microseconds of wall time — spinning beats a mutex+condvar
 * sleep/wake round trip at that cadence by an order of magnitude.
 *
 * The wait loop spins with a CPU relax hint first (a pause keeps the
 * waiting hyperthread from starving its sibling and cuts the
 * speculation flush when the generation flips), and falls back to
 * yield() once the wait has clearly outlived an epoch's useful spin
 * window — e.g. when shards are imbalanced or the host is
 * oversubscribed.
 */

/** One idle iteration of a spin-wait loop. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
}

class SpinBarrier
{
  public:
    explicit SpinBarrier(int parties)
        : parties_(parties),
          // Pause-spinning is only safe when every party can hold a
          // hardware thread; on an oversubscribed host the spinner
          // would burn the very core the straggler needs, so concede
          // it immediately.
          spinLimit_(std::thread::hardware_concurrency() >=
                             static_cast<unsigned>(parties)
                         ? kSpinsBeforeYield
                         : 0)
    {
    }

    void
    arriveAndWait()
    {
        prof::Scope profile(prof::Phase::kBarrier);
        const std::uint64_t gen = generation_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            arrived_.store(0, std::memory_order_relaxed);
            generation_.fetch_add(1, std::memory_order_release);
            return;
        }
        int spins = 0;
        while (generation_.load(std::memory_order_acquire) == gen) {
            if (++spins <= spinLimit_)
                cpuRelax();
            else
                std::this_thread::yield();
        }
    }

  private:
    /** ~1-2 us of pause-spinning before conceding the core. */
    static constexpr int kSpinsBeforeYield = 4096;

    const int parties_;
    const int spinLimit_;
    std::atomic<int> arrived_{0};
    std::atomic<std::uint64_t> generation_{0};
};

/** One worker's slice of the machine plus its per-epoch report. */
struct ShardState
{
    std::vector<Sm*> sms;        ///< owned SMs (contiguous slice)
    std::size_t donePrefix = 0;  ///< owned SMs [0, donePrefix) drained
    Cycle brokeAt = 0;           ///< cycle the epoch loop exited at
    Cycle lastIssue = 0;         ///< latest owned-SM issue this epoch
    bool issuedAny = false;      ///< any owned SM issued this epoch
    std::exception_ptr error;    ///< captured epoch failure, if any
};

} // namespace

void
Gpu::runParallelLoop(int shard_count)
{
    // Contiguous SM partition: shard s owns SMs [s*n/k, (s+1)*n/k).
    // The partition never affects results — SMs only interact through
    // the canonical epoch drain — it only balances work.
    std::vector<ShardState> shards(static_cast<std::size_t>(shard_count));
    for (int i = 0; i < cfg.numSms; ++i) {
        const int s = i * shard_count / cfg.numSms;
        shards[static_cast<std::size_t>(s)].sms.push_back(
            sms[static_cast<std::size_t>(i)].get());
    }

    // Epoch window, published by the coordinator before barrier A;
    // the barrier's generation counter orders the writes for workers.
    Cycle epochStart = 0;
    Cycle epochEnd = 0;
    std::atomic<bool> stop{false};
    SpinBarrier barrier(shard_count);

    // One shard's epoch: tick owned SMs over [epochStart, epochEnd),
    // exactly as the serial loop would have — SMs share no mutable
    // state (memory traffic is staged per SM), so the slice evolves
    // bit-identically regardless of the other shards' pacing. The
    // shard-local fast-forward skip is sound for the same reason:
    // Sm::nextWakeup() bounds depend only on the SM itself, and no
    // memory response can mature inside the epoch by construction.
    const auto runEpoch = [this, &epochStart, &epochEnd](ShardState& shard) {
        const Cycle end = epochEnd;
        Cycle c = epochStart;
        shard.issuedAny = false;
        while (c < end) {
            bool issued = false;
            for (Sm* sm : shard.sms)
                issued = sm->tick(c) || issued;
            if (issued) {
                shard.issuedAny = true;
                shard.lastIssue = c;
            }
            ++c;
            while (shard.donePrefix < shard.sms.size() &&
                   shard.sms[shard.donePrefix]->done())
                ++shard.donePrefix;
            if (shard.donePrefix == shard.sms.size())
                break; // drained; the coordinator credits [c, end)
            if (!cfg.fastForward || issued)
                continue;
            Cycle wake = end;
            for (Sm* sm : shard.sms)
                wake = std::min(wake, sm->nextWakeup(c));
            if (wake <= c)
                continue;
            const Cycle skipped = wake - c;
            for (Sm* sm : shard.sms)
                sm->skipIdle(skipped);
            if (auditor_) {
                // Shard-local skip-window audit: the memory-system
                // half of Auditor::checkSkipWindow holds by epoch
                // construction, and the other shards' SMs are not
                // ours to inspect mid-epoch.
                std::string violations;
                for (Sm* sm : shard.sms)
                    violations += sm->auditSkippedWindow(c, wake);
                if (!violations.empty()) {
                    std::ostringstream dump;
                    dump << "fast-forward skip audit failed for window ["
                         << c << ", " << wake << "):\n"
                         << violations << "--- state dump ---\n";
                    for (Sm* sm : shard.sms)
                        dump << sm->stallReport(c);
                    throwInvariantViolation(dump.str());
                }
            }
            c = wake;
        }
        shard.brokeAt = c;
    };

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(shard_count) - 1);
    for (int s = 1; s < shard_count; ++s) {
        workers.emplace_back([&, s] {
            ShardState& shard = shards[static_cast<std::size_t>(s)];
            while (true) {
                barrier.arriveAndWait(); // A: epoch published (or stop)
                if (stop.load(std::memory_order_acquire))
                    return;
                try {
                    runEpoch(shard);
                } catch (...) {
                    shard.error = std::current_exception();
                }
                barrier.arriveAndWait(); // B: epoch complete
            }
        });
    }

    // Release and join the pool exactly once, on every exit path.
    bool stopped = false;
    const auto shutdown = [&] {
        if (stopped)
            return;
        stopped = true;
        stop.store(true, std::memory_order_release);
        barrier.arriveAndWait();
        for (std::thread& t : workers)
            t.join();
        memsys->setStaging(false);
    };

    const std::uint64_t watchdog = cfg.watchdogCycles;
    Cycle lastProgress = cycle;
    std::uint64_t lastResponses = memsys->responsesDelivered();
    Cycle nextAudit = auditor_ ? cycle + cfg.auditInterval
                               : std::numeric_limits<Cycle>::max();
    Cycle nextInterrupt = cycle + kInterruptCheckInterval;
    const Cycle minRespLat =
        std::max<Cycle>(memsys->minResponseLatency(), 1);

    try {
        while (cycle < cfg.maxCycles && !done()) {
            // Deliveries happen only here: the epoch below is clamped
            // to the next event cycle, so mid-epoch the serial engine
            // would not have delivered anything either.
            memsys->tick(cycle);
            const std::uint64_t responses = memsys->responsesDelivered();
            if (responses != lastResponses) {
                lastResponses = responses;
                lastProgress = cycle;
            }

            // Epoch bound. Deliveries must happen only at epoch
            // start, so the epoch may run until the earliest cycle a
            // response can mature:
            //  - anything already in flight matures at
            //    nextEventCycle() at the earliest;
            //  - any request submitted *during* the epoch is submitted
            //    by an SM at a cycle >= that SM's nextWakeup(cycle)
            //    (deliveries at `cycle` just happened in tick() above
            //    and dirtied their SM, so nextWakeup is conservative),
            //    and matures >= minRespLat cycles after submission.
            // Hence min over SMs of nextWakeup + minRespLat is a sound
            // lookahead — typically far past the old cycle+minRespLat
            // clamp when the machine is waiting on DRAM. The remaining
            // clamps keep the watchdog, audit cadence, interrupt poll
            // and cycle cap on their exact serial cycles.
            Cycle minIssue = std::numeric_limits<Cycle>::max();
            for (const auto& sm : sms)
                minIssue = std::min(minIssue, sm->nextWakeup(cycle));
            const Cycle horizon =
                minIssue >= std::numeric_limits<Cycle>::max() - minRespLat
                    ? std::numeric_limits<Cycle>::max()
                    : minIssue + minRespLat;
            Cycle end = std::min(horizon, memsys->nextEventCycle());
            end = std::min(end, static_cast<Cycle>(cfg.maxCycles));
            if (watchdog != 0)
                end = std::min(end, lastProgress + watchdog);
            if (auditor_)
                end = std::min(end, nextAudit);
            if (interruptCheck_)
                end = std::min(end, nextInterrupt);
            if (end <= cycle)
                end = cycle + 1;

            epochStart = cycle;
            epochEnd = end;
            memsys->setStaging(true);
            barrier.arriveAndWait(); // A: workers start the epoch
            try {
                runEpoch(shards[0]);
            } catch (...) {
                shards[0].error = std::current_exception();
            }
            barrier.arriveAndWait(); // B: every shard finished
            memsys->setStaging(false);

            // Deterministic failure propagation: the lowest shard's
            // error wins regardless of wall-clock interleaving.
            for (ShardState& shard : shards) {
                if (shard.error) {
                    const std::exception_ptr error = shard.error;
                    shutdown();
                    std::rethrow_exception(error);
                }
            }

            // Replay the epoch's memory traffic in canonical order —
            // identical L2/DRAM state transitions to the serial
            // engine, at the original submission cycles.
            memsys->drainStaged();

            for (const ShardState& shard : shards) {
                if (shard.issuedAny)
                    lastProgress = std::max(lastProgress, shard.lastIssue);
            }

            // A shard whose SMs all drained broke out early; the
            // serial loop would have kept ticking those SMs (pure
            // idle) until the machine-wide end. Credit the difference,
            // and when the whole machine is done, end the run at the
            // latest break cycle — the serial exit cycle.
            Cycle globalEnd = end;
            if (done()) {
                Cycle latest = 0;
                for (const ShardState& shard : shards)
                    latest = std::max(latest, shard.brokeAt);
                globalEnd = latest;
            }
            for (const ShardState& shard : shards) {
                if (shard.brokeAt >= globalEnd)
                    continue;
                const Cycle missing = globalEnd - shard.brokeAt;
                for (Sm* sm : shard.sms)
                    sm->skipIdle(missing);
            }
            cycle = globalEnd;

            if (auditor_ && cycle >= nextAudit) {
                auditor_->checkInvariants(cycle);
                nextAudit = cycle + cfg.auditInterval;
            }
            if (interruptCheck_ && cycle >= nextInterrupt) {
                interruptCheck_();
                nextInterrupt = cycle + kInterruptCheckInterval;
            }
            if (watchdog != 0 && cycle - lastProgress >= watchdog)
                reportDeadlock(lastProgress);
        }
        shutdown();
    } catch (...) {
        shutdown();
        throw;
    }
}

const MetricsRegistry*
Gpu::metrics() const
{
    if (smMetrics_.empty())
        return metrics_.get();
    mergedMetrics_ = std::make_unique<MetricsRegistry>();
    for (const auto& m : smMetrics_)
        mergedMetrics_->merge(*m);
    return mergedMetrics_.get();
}

void
Gpu::writeTrace(std::ostream& os) const
{
    if (tracer_)
        tracer_->writeChromeTrace(os);
}

void
Gpu::writeTraceFile() const
{
    if (!tracer_ || cfg.traceFile.empty())
        return;
    std::ofstream os(cfg.traceFile);
    if (!os) {
        throwConfigError("cannot open trace file \"" + cfg.traceFile +
                         "\" for writing");
    }
    tracer_->writeChromeTrace(os);
}

void
Gpu::reportDeadlock(Cycle last_progress) const
{
    std::ostringstream out;
    out << "no forward progress for " << cfg.watchdogCycles
        << " cycles (zero instructions issued, zero memory responses "
           "delivered since cycle "
        << last_progress << "; now at cycle " << cycle << ")\n"
        << stallReport();
    throwDeadlockError(out.str());
}

void
Gpu::auditNow()
{
    if (auditor_)
        auditor_->checkInvariants(cycle);
}

std::uint64_t
Gpu::auditPasses() const
{
    return auditor_ ? auditor_->passes() : 0;
}

std::string
Gpu::stallReport() const
{
    std::string out;
    for (const auto& sm : sms)
        out += sm->stallReport(cycle);
    return out;
}

RunResult
Gpu::collect() const
{
    RunResult r;
    r.cycles = cycle;

    double load_sum = 0.0;
    std::uint64_t load_n = 0;
    double miss_sum = 0.0;
    std::uint64_t miss_n = 0;
    for (std::size_t i = 0; i < sms.size(); ++i) {
        const Sm& sm = *sms[i];
        r.instructions += sm.stats().issuedInstructions;
        r.l1 += sm.l1().stats();
        r.prefetchesRequested += sm.stats().prefetchesRequested;
        r.prefetchesIssued += sm.stats().prefetchesIssued;
        r.idleCycles += sm.stats().idleCycles;
        const LsuStats& lsu = sm.lsuStats();
        r.mshrReplays += lsu.mshrReplays;
        load_sum += lsu.loadLatency.sum();
        load_n += lsu.loadLatency.count();
        miss_sum += lsu.missLatency.sum();
        miss_n += lsu.missLatency.count();

        const std::string prefix = "sm" + std::to_string(i) + ".";
        const CacheStats& l1 = sm.l1().stats();
        r.perSm.set(prefix + "instructions",
                    static_cast<double>(sm.stats().issuedInstructions));
        r.perSm.set(prefix + "idleCycles",
                    static_cast<double>(sm.stats().idleCycles));
        r.perSm.set(prefix + "l1.accesses",
                    static_cast<double>(l1.demandAccesses));
        r.perSm.set(prefix + "l1.misses",
                    static_cast<double>(l1.demandMisses));
        r.perSm.set(prefix + "l1.missRate", l1.missRate());
        r.perSm.set(prefix + "prefetchesIssued",
                    static_cast<double>(sm.stats().prefetchesIssued));
    }

    // Policies report their own statistics; per-SM instances
    // accumulate into shared keys, summing GPU-wide.
    for (std::size_t i = 0; i < schedulers.size(); ++i) {
        schedulers[i]->reportStats(r.policy);
        if (prefetchers[i])
            prefetchers[i]->reportStats(r.policy);
    }
    // Opt-in metrics ride along under their own "metrics." namespace:
    // the keys exist only when metrics are on, and the base stat keys
    // are untouched either way. Under the parallel engine this merges
    // the per-SM registries first.
    if (const MetricsRegistry* m = metrics())
        m->report(r.policy);

    r.ipc = r.cycles ? static_cast<double>(r.instructions) /
                           static_cast<double>(r.cycles)
                     : 0.0;
    r.l2 = memsys->l2StatsTotal();
    r.traffic = memsys->traffic();
    r.avgLoadLatency = load_n ? load_sum / static_cast<double>(load_n) : 0.0;
    r.avgMissLatency = miss_n ? miss_sum / static_cast<double>(miss_n) : 0.0;

    for (int p = 0; p < cfg.mem.numPartitions; ++p) {
        const DramStats& dram = memsys->dram(p).stats();
        r.dramRequests += dram.requests;
        r.dramRowHits += dram.rowHits;
        r.dramRowMisses += dram.rowMisses;
    }

    // Echo the configuration so the result is self-describing. The
    // registry needs a mutable config; snapshot a copy.
    GpuConfig echo = cfg;
    r.config = ConfigRegistry(echo).snapshot();

    EnergyInputs ei;
    ei.instructions = r.instructions;
    ei.l1Accesses = r.l1.demandAccesses + r.l1.storeAccesses +
        r.l1.prefetchesAccepted + r.l1.fills;
    ei.l2Accesses = r.l2.demandAccesses + r.l2.storeAccesses + r.l2.fills;
    ei.dramAccesses = r.dramRequests;
    // Structure events: one table access per load observed by a
    // prefetcher plus one per LAWS grouping operation; approximated by
    // loads issued when any of the structures is active.
    std::uint64_t loads = 0;
    for (const auto& sm : sms)
        loads += sm->stats().issuedLoads;
    const bool has_structures = cfg.prefetcher != "none" ||
        cfg.scheduler == "laws" || cfg.scheduler == "ccws";
    ei.structureAccesses =
        has_structures ? loads + r.prefetchesRequested : 0;
    ei.smCycles = static_cast<std::uint64_t>(cfg.numSms) * r.cycles;
    r.energy = computeEnergy(ei, cfg.energy);
    return r;
}

double
RunResult::l1HitRate() const
{
    return l1.demandAccesses
        ? static_cast<double>(l1.demandHits) /
              static_cast<double>(l1.demandAccesses)
        : 0.0;
}

StatSet
RunResult::toStatSet() const
{
    StatSet s;
    s.set("sim.cycles", static_cast<double>(cycles));
    s.set("sim.instructions", static_cast<double>(instructions));
    s.set("sim.ipc", ipc);
    s.set("sim.completed", completed ? 1.0 : 0.0);

    s.set("l1.accesses", static_cast<double>(l1.demandAccesses));
    s.set("l1.hits", static_cast<double>(l1.demandHits));
    s.set("l1.misses", static_cast<double>(l1.demandMisses));
    s.set("l1.missRate", l1.missRate());
    s.set("l1.hitAfterHit", static_cast<double>(l1.hitAfterHit));
    s.set("l1.hitAfterMiss", static_cast<double>(l1.hitAfterMiss));
    s.set("l1.coldMisses", static_cast<double>(l1.coldMisses));
    s.set("l1.capacityConflictMisses",
          static_cast<double>(l1.capacityConflictMisses));
    s.set("l1.mshrMerges", static_cast<double>(l1.mshrMerges));
    s.set("l1.mshrFullEvents", static_cast<double>(l1.mshrFullEvents));
    s.set("l1.storeAccesses", static_cast<double>(l1.storeAccesses));
    s.set("l1.storeHits", static_cast<double>(l1.storeHits));
    s.set("l1.fills", static_cast<double>(l1.fills));
    s.set("l1.evictions", static_cast<double>(l1.evictions));
    s.set("l1.earlyEvictions", static_cast<double>(l1.earlyEvictions));
    s.set("l1.earlyEvictionRatio", l1.earlyEvictionRatio());
    s.set("l1.usefulPrefetches", static_cast<double>(l1.usefulPrefetches));
    s.set("l1.uselessPrefetchEvictions",
          static_cast<double>(l1.uselessPrefetchEvictions));
    s.set("l1.prefetchesAccepted",
          static_cast<double>(l1.prefetchesAccepted));
    s.set("l1.prefetchDropHit", static_cast<double>(l1.prefetchDropHit));
    s.set("l1.prefetchDropPending",
          static_cast<double>(l1.prefetchDropPending));
    s.set("l1.prefetchDropMshrFull",
          static_cast<double>(l1.prefetchDropMshrFull));
    s.set("l1.prefetchFills", static_cast<double>(l1.prefetchFills));
    s.set("l1.demandMergedIntoPrefetch",
          static_cast<double>(l1.demandMergedIntoPrefetch));

    s.set("l2.accesses", static_cast<double>(l2.demandAccesses));
    s.set("l2.hits", static_cast<double>(l2.demandHits));
    s.set("l2.misses", static_cast<double>(l2.demandMisses));
    s.set("l2.missRate", l2.missRate());

    s.set("mem.avgLoadLatency", avgLoadLatency);
    s.set("mem.avgMissLatency", avgMissLatency);
    s.set("mem.interconnectBytes",
          static_cast<double>(traffic.interconnectBytes()));
    s.set("mem.dramFillBytes",
          static_cast<double>(traffic.fillBytesFromDram));

    s.set("dram.requests", static_cast<double>(dramRequests));
    s.set("dram.rowHits", static_cast<double>(dramRowHits));
    s.set("dram.rowMisses", static_cast<double>(dramRowMisses));

    s.set("prefetch.requested", static_cast<double>(prefetchesRequested));
    s.set("prefetch.issued", static_cast<double>(prefetchesIssued));

    s.set("sm.idleCycles", static_cast<double>(idleCycles));
    s.set("lsu.mshrReplays", static_cast<double>(mshrReplays));

    s.set("energy.total", energy.total());
    s.set("energy.dram", energy.dram);
    s.set("energy.structures", energy.structures);

    s.mergeSum(policy);
    s.mergeSum(perSm);
    return s;
}

RunResult
simulate(const GpuConfig& config, const Kernel& kernel)
{
    Gpu gpu(config, kernel);
    return gpu.run();
}

} // namespace apres
