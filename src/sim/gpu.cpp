/**
 * @file
 * Gpu implementation: construction (scheduler/prefetcher factory),
 * run loop, and result collection.
 */

#include "gpu.hpp"

#include <cassert>

#include "apres/sap.hpp"
#include "common/log.hpp"
#include "prefetch/sld.hpp"
#include "prefetch/str.hpp"
#include "sched/ccws.hpp"
#include "sched/gto.hpp"
#include "sched/lrr.hpp"
#include "sched/mascar.hpp"
#include "sched/pa_twolevel.hpp"

namespace apres {

const char*
schedulerName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::kLrr:    return "LRR";
      case SchedulerKind::kGto:    return "GTO";
      case SchedulerKind::kCcws:   return "CCWS";
      case SchedulerKind::kMascar: return "MASCAR";
      case SchedulerKind::kPa:     return "PA";
      case SchedulerKind::kLaws:   return "LAWS";
    }
    return "?";
}

const char*
prefetcherName(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::kNone: return "none";
      case PrefetcherKind::kStr:  return "STR";
      case PrefetcherKind::kSld:  return "SLD";
      case PrefetcherKind::kSap:  return "SAP";
    }
    return "?";
}

std::string
GpuConfig::label() const
{
    if (scheduler == SchedulerKind::kLaws &&
        prefetcher == PrefetcherKind::kSap) {
        return "APRES";
    }
    std::string out = schedulerName(scheduler);
    if (prefetcher != PrefetcherKind::kNone) {
        out += '+';
        out += prefetcherName(prefetcher);
    }
    return out;
}

namespace {

std::unique_ptr<Scheduler>
makeScheduler(const GpuConfig& cfg)
{
    switch (cfg.scheduler) {
      case SchedulerKind::kLrr:
        return std::make_unique<LrrScheduler>();
      case SchedulerKind::kGto:
        return std::make_unique<GtoScheduler>();
      case SchedulerKind::kCcws:
        return std::make_unique<CcwsScheduler>(cfg.ccws);
      case SchedulerKind::kMascar:
        return std::make_unique<MascarScheduler>(cfg.mascar);
      case SchedulerKind::kPa:
        return std::make_unique<PaScheduler>(cfg.pa);
      case SchedulerKind::kLaws:
        return std::make_unique<LawsScheduler>(cfg.laws);
    }
    fatal("unknown scheduler kind");
}

std::unique_ptr<Prefetcher>
makePrefetcher(const GpuConfig& cfg, Scheduler& sched)
{
    switch (cfg.prefetcher) {
      case PrefetcherKind::kNone:
        return nullptr;
      case PrefetcherKind::kStr:
        return std::make_unique<StrPrefetcher>(cfg.str);
      case PrefetcherKind::kSld:
        return std::make_unique<SldPrefetcher>(cfg.sld);
      case PrefetcherKind::kSap: {
        auto* laws = dynamic_cast<LawsScheduler*>(&sched);
        if (laws == nullptr) {
            fatal("the SAP prefetcher requires the LAWS scheduler "
                  "(APRES = LAWS+SAP)");
        }
        return std::make_unique<SapPrefetcher>(*laws, cfg.sap);
      }
    }
    fatal("unknown prefetcher kind");
}

} // namespace

Gpu::Gpu(const GpuConfig& config, const Kernel& kernel_ref)
    : cfg(config), rng_(config.seed), kernel(kernel_ref)
{
    assert(cfg.numSms >= 1);
    if (cfg.sm.warpsPerSm < 1)
        fatal("warpsPerSm must be >= 1 (got " +
              std::to_string(cfg.sm.warpsPerSm) + ")");
    // Warp sets (LAWS/WGT groups, the cache's per-line consumer
    // tracking) are 64-bit masks indexed by warp ID: a wider machine
    // would silently drop warps 64+, so reject it outright.
    if (cfg.sm.warpsPerSm > 64)
        fatal("warpsPerSm=" + std::to_string(cfg.sm.warpsPerSm) +
              " exceeds the 64-warp group bit-mask width; configure at "
              "most 64 warps per SM");
    memsys = std::make_unique<MemorySystem>(cfg.mem);
    for (int s = 0; s < cfg.numSms; ++s) {
        schedulers.push_back(makeScheduler(cfg));
        prefetchers.push_back(makePrefetcher(cfg, *schedulers.back()));
        sms.push_back(std::make_unique<Sm>(s, cfg.sm, kernel,
                                           *schedulers.back(),
                                           prefetchers.back().get(),
                                           *memsys));
    }
}

Gpu::~Gpu() = default;

bool
Gpu::done() const
{
    for (const auto& sm : sms) {
        if (!sm->done())
            return false;
    }
    return memsys->idle();
}

void
Gpu::step(Cycle cycles)
{
    const Cycle end = cycle + cycles;
    while (cycle < end) {
        memsys->tick(cycle);
        for (auto& sm : sms)
            sm->tick(cycle);
        ++cycle;
    }
}

RunResult
Gpu::run()
{
    while (cycle < cfg.maxCycles && !done())
        step(1);
    RunResult result = collect();
    result.completed = done();
    if (!result.completed) {
        logWarn("simulation hit maxCycles=", cfg.maxCycles,
                " before the kernel drained");
    }
    return result;
}

RunResult
Gpu::collect() const
{
    RunResult r;
    r.cycles = cycle;

    double load_sum = 0.0;
    std::uint64_t load_n = 0;
    double miss_sum = 0.0;
    std::uint64_t miss_n = 0;
    for (const auto& sm : sms) {
        r.instructions += sm->stats().issuedInstructions;
        r.l1 += sm->l1().stats();
        r.prefetchesRequested += sm->stats().prefetchesRequested;
        r.prefetchesIssued += sm->stats().prefetchesIssued;
        r.idleCycles += sm->stats().idleCycles;
        const LsuStats& lsu = sm->lsuStats();
        r.mshrReplays += lsu.mshrReplays;
        load_sum += lsu.loadLatency.sum();
        load_n += lsu.loadLatency.count();
        miss_sum += lsu.missLatency.sum();
        miss_n += lsu.missLatency.count();
    }
    for (std::size_t i = 0; i < schedulers.size(); ++i) {
        if (const auto* ccws =
                dynamic_cast<const CcwsScheduler*>(schedulers[i].get())) {
            r.ccwsActiveLimitSum += ccws->activeLimit();
            r.ccwsScoreSum += static_cast<double>(ccws->totalScore());
            r.ccwsEvents += ccws->lostLocalityEvents();
        }
        if (const auto* laws =
                dynamic_cast<const LawsScheduler*>(schedulers[i].get())) {
            r.laws.groupsFormed += laws->stats().groupsFormed;
            r.laws.groupHits += laws->stats().groupHits;
            r.laws.groupMisses += laws->stats().groupMisses;
            r.laws.warpsPrioritized += laws->stats().warpsPrioritized;
            r.laws.prefetchTargetPromotions +=
                laws->stats().prefetchTargetPromotions;
        }
        if (const auto* sap =
                dynamic_cast<const SapPrefetcher*>(prefetchers[i].get())) {
            r.sap.groupMissesReceived += sap->stats().groupMissesReceived;
            r.sap.strideMatches += sap->stats().strideMatches;
            r.sap.strideMismatches += sap->stats().strideMismatches;
            r.sap.prefetchesGenerated += sap->stats().prefetchesGenerated;
            r.sap.prefetchesIssued += sap->stats().prefetchesIssued;
        }
    }
    r.ipc = r.cycles ? static_cast<double>(r.instructions) /
                           static_cast<double>(r.cycles)
                     : 0.0;
    r.l2 = memsys->l2StatsTotal();
    r.traffic = memsys->traffic();
    r.avgLoadLatency = load_n ? load_sum / static_cast<double>(load_n) : 0.0;
    r.avgMissLatency = miss_n ? miss_sum / static_cast<double>(miss_n) : 0.0;

    std::uint64_t dram_requests = 0;
    for (int p = 0; p < cfg.mem.numPartitions; ++p)
        dram_requests += memsys->dram(p).stats().requests;

    EnergyInputs ei;
    ei.instructions = r.instructions;
    ei.l1Accesses = r.l1.demandAccesses + r.l1.storeAccesses +
        r.l1.prefetchesAccepted + r.l1.fills;
    ei.l2Accesses = r.l2.demandAccesses + r.l2.storeAccesses + r.l2.fills;
    ei.dramAccesses = dram_requests;
    // Structure events: one table access per load observed by a
    // prefetcher plus one per LAWS grouping operation; approximated by
    // loads issued when any of the structures is active.
    std::uint64_t loads = 0;
    for (const auto& sm : sms)
        loads += sm->stats().issuedLoads;
    const bool has_structures =
        cfg.prefetcher != PrefetcherKind::kNone ||
        cfg.scheduler == SchedulerKind::kLaws ||
        cfg.scheduler == SchedulerKind::kCcws;
    ei.structureAccesses =
        has_structures ? loads + r.prefetchesRequested : 0;
    ei.smCycles = static_cast<std::uint64_t>(cfg.numSms) * r.cycles;
    r.energy = computeEnergy(ei, cfg.energy);
    return r;
}

double
RunResult::l1HitRate() const
{
    return l1.demandAccesses
        ? static_cast<double>(l1.demandHits) /
              static_cast<double>(l1.demandAccesses)
        : 0.0;
}

StatSet
RunResult::toStatSet() const
{
    StatSet s;
    s.set("sim.cycles", static_cast<double>(cycles));
    s.set("sim.instructions", static_cast<double>(instructions));
    s.set("sim.ipc", ipc);
    s.set("sim.completed", completed ? 1.0 : 0.0);

    s.set("l1.accesses", static_cast<double>(l1.demandAccesses));
    s.set("l1.hits", static_cast<double>(l1.demandHits));
    s.set("l1.misses", static_cast<double>(l1.demandMisses));
    s.set("l1.missRate", l1.missRate());
    s.set("l1.hitAfterHit", static_cast<double>(l1.hitAfterHit));
    s.set("l1.hitAfterMiss", static_cast<double>(l1.hitAfterMiss));
    s.set("l1.coldMisses", static_cast<double>(l1.coldMisses));
    s.set("l1.capacityConflictMisses",
          static_cast<double>(l1.capacityConflictMisses));
    s.set("l1.mshrMerges", static_cast<double>(l1.mshrMerges));
    s.set("l1.earlyEvictions", static_cast<double>(l1.earlyEvictions));
    s.set("l1.earlyEvictionRatio", l1.earlyEvictionRatio());
    s.set("l1.usefulPrefetches", static_cast<double>(l1.usefulPrefetches));
    s.set("l1.prefetchFills", static_cast<double>(l1.prefetchFills));

    s.set("l2.accesses", static_cast<double>(l2.demandAccesses));
    s.set("l2.missRate", l2.missRate());

    s.set("mem.avgLoadLatency", avgLoadLatency);
    s.set("mem.avgMissLatency", avgMissLatency);
    s.set("mem.interconnectBytes",
          static_cast<double>(traffic.interconnectBytes()));
    s.set("mem.dramFillBytes",
          static_cast<double>(traffic.fillBytesFromDram));

    s.set("prefetch.requested", static_cast<double>(prefetchesRequested));
    s.set("prefetch.issued", static_cast<double>(prefetchesIssued));

    s.set("sm.idleCycles", static_cast<double>(idleCycles));
    s.set("lsu.mshrReplays", static_cast<double>(mshrReplays));

    s.set("ccws.activeLimitSum", ccwsActiveLimitSum);
    s.set("ccws.scoreSum", ccwsScoreSum);
    s.set("ccws.events", static_cast<double>(ccwsEvents));
    s.set("laws.groupsFormed", static_cast<double>(laws.groupsFormed));
    s.set("laws.groupHits", static_cast<double>(laws.groupHits));
    s.set("laws.groupMisses", static_cast<double>(laws.groupMisses));
    s.set("laws.warpsPrioritized",
          static_cast<double>(laws.warpsPrioritized));
    s.set("sap.groupMissesReceived",
          static_cast<double>(sap.groupMissesReceived));
    s.set("sap.strideMatches", static_cast<double>(sap.strideMatches));
    s.set("sap.strideMismatches",
          static_cast<double>(sap.strideMismatches));
    s.set("sap.prefetchesIssued",
          static_cast<double>(sap.prefetchesIssued));

    s.set("energy.total", energy.total());
    s.set("energy.dram", energy.dram);
    s.set("energy.structures", energy.structures);
    return s;
}

RunResult
simulate(const GpuConfig& config, const Kernel& kernel)
{
    Gpu gpu(config, kernel);
    return gpu.run();
}

} // namespace apres
