/**
 * @file
 * Policy registry implementation and built-in policy registration.
 *
 * This file is the single registration point of the built-in
 * policies: a new scheduler or prefetcher adds one factory line here
 * (its "registration") and becomes reachable from the CLI, config
 * files, bench drivers and tests without further edits anywhere.
 */

#include "policy_registry.hpp"

#include <map>

#include "apres/sap.hpp"
#include "common/log.hpp"
#include "common/sim_error.hpp"
#include "prefetch/sld.hpp"
#include "prefetch/str.hpp"
#include "sched/ccws.hpp"
#include "sched/gto.hpp"
#include "sched/lrr.hpp"
#include "sched/mascar.hpp"
#include "sched/pa_twolevel.hpp"
#include "sim/config.hpp"

namespace apres {

namespace {

std::map<std::string, SchedulerFactory>&
schedulerFactories()
{
    // Built-ins live in the map initializer so lookups never race a
    // registration pass and link order cannot drop them.
    static std::map<std::string, SchedulerFactory> factories = {
        {"lrr",
         [](const GpuConfig&) { return std::make_unique<LrrScheduler>(); }},
        {"gto",
         [](const GpuConfig&) { return std::make_unique<GtoScheduler>(); }},
        {"ccws",
         [](const GpuConfig& cfg) {
             return std::make_unique<CcwsScheduler>(cfg.ccws);
         }},
        {"mascar",
         [](const GpuConfig& cfg) {
             return std::make_unique<MascarScheduler>(cfg.mascar);
         }},
        {"pa",
         [](const GpuConfig& cfg) {
             return std::make_unique<PaScheduler>(cfg.pa);
         }},
        {"laws",
         [](const GpuConfig& cfg) {
             return std::make_unique<LawsScheduler>(cfg.laws);
         }},
    };
    return factories;
}

std::map<std::string, PrefetcherFactory>&
prefetcherFactories()
{
    static std::map<std::string, PrefetcherFactory> factories = {
        {"none",
         [](const GpuConfig&, Scheduler&) {
             return std::unique_ptr<Prefetcher>();
         }},
        {"str",
         [](const GpuConfig& cfg, Scheduler&) -> std::unique_ptr<Prefetcher> {
             return std::make_unique<StrPrefetcher>(cfg.str);
         }},
        {"sld",
         [](const GpuConfig& cfg, Scheduler&) -> std::unique_ptr<Prefetcher> {
             return std::make_unique<SldPrefetcher>(cfg.sld);
         }},
        {"sap",
         [](const GpuConfig& cfg,
            Scheduler& sched) -> std::unique_ptr<Prefetcher> {
             auto* laws = dynamic_cast<LawsScheduler*>(&sched);
             if (laws == nullptr) {
                 throwConfigError(
                     "the SAP prefetcher requires the LAWS scheduler "
                     "(APRES = LAWS+SAP); configured scheduler: " +
                     cfg.scheduler);
             }
             return std::make_unique<SapPrefetcher>(*laws, cfg.sap);
         }},
    };
    return factories;
}

template <typename Map>
std::vector<std::string>
sortedKeys(const Map& map)
{
    std::vector<std::string> names;
    names.reserve(map.size());
    for (const auto& [name, factory] : map)
        names.push_back(name);
    return names; // std::map iterates sorted
}

std::string
joinNames(const std::vector<std::string>& names)
{
    std::string out;
    for (const std::string& n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

} // namespace

void
registerScheduler(const std::string& name, SchedulerFactory make)
{
    if (name.empty() || !make)
        fatal("registerScheduler: empty name or null factory");
    if (!schedulerFactories().emplace(name, std::move(make)).second)
        fatal("scheduler \"" + name + "\" is already registered");
}

void
registerPrefetcher(const std::string& name, PrefetcherFactory make)
{
    if (name.empty() || !make)
        fatal("registerPrefetcher: empty name or null factory");
    if (!prefetcherFactories().emplace(name, std::move(make)).second)
        fatal("prefetcher \"" + name + "\" is already registered");
}

bool
knownScheduler(const std::string& name)
{
    return schedulerFactories().count(name) != 0;
}

bool
knownPrefetcher(const std::string& name)
{
    return prefetcherFactories().count(name) != 0;
}

std::vector<std::string>
schedulerNames()
{
    return sortedKeys(schedulerFactories());
}

std::vector<std::string>
prefetcherNames()
{
    return sortedKeys(prefetcherFactories());
}

std::unique_ptr<Scheduler>
makeScheduler(const GpuConfig& cfg)
{
    const auto it = schedulerFactories().find(cfg.scheduler);
    if (it == schedulerFactories().end())
        throwConfigError("unknown scheduler \"" + cfg.scheduler +
                         "\" (known: " + joinNames(schedulerNames()) + ")");
    return it->second(cfg);
}

std::unique_ptr<Prefetcher>
makePrefetcher(const GpuConfig& cfg, Scheduler& sched)
{
    const auto it = prefetcherFactories().find(cfg.prefetcher);
    if (it == prefetcherFactories().end())
        throwConfigError("unknown prefetcher \"" + cfg.prefetcher +
                         "\" (known: " + joinNames(prefetcherNames()) + ")");
    return it->second(cfg, sched);
}

} // namespace apres
