/**
 * @file
 * Sweep runner implementation.
 */

#include "runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "common/log.hpp"
#include "isa/address_gen.hpp" // mix64

namespace apres {

std::uint64_t
deriveJobSeed(std::uint64_t base_seed, std::size_t job_index)
{
    // mix64 is the simulator's stateless hash; +1 keeps index 0 from
    // collapsing onto the plain base seed.
    return mix64(base_seed, static_cast<std::uint64_t>(job_index) + 1,
                 0x4150'5245'5357'4545ull); // "APRESWEE"
}

int
defaultJobCount()
{
    if (const char* env = std::getenv("APRES_BENCH_JOBS")) {
        char* end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed >= 1 &&
            parsed <= 1'000'000) {
            return static_cast<int>(parsed);
        }
        logWarn("ignoring APRES_BENCH_JOBS=\"", env,
                "\" (want a positive integer); using hardware concurrency");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(RunnerOptions options) : opts(options) {}

std::size_t
SweepRunner::submit(SweepJob job)
{
    if (!job.kernel)
        fatal("SweepRunner::submit: job \"" + job.label +
              "\" has no kernel");
    jobs.push_back(std::move(job));
    return jobs.size() - 1;
}

std::size_t
SweepRunner::submit(std::string label, const GpuConfig& config,
                    std::shared_ptr<const Kernel> kernel)
{
    SweepJob job;
    job.label = std::move(label);
    job.config = config;
    job.kernel = std::move(kernel);
    return submit(std::move(job));
}

int
SweepRunner::threadCount() const
{
    return opts.threads > 0 ? opts.threads : defaultJobCount();
}

namespace {

/** Progress reporting shared by the workers (serialized by a mutex). */
class ProgressLine
{
  public:
    ProgressLine(bool enabled, std::size_t total)
        : on(enabled && total > 0), n(total),
          tty(isatty(fileno(stderr)) != 0),
          stride(n >= 10 ? n / 10 : 1)
    {
    }

    void
    jobDone(const std::string& label)
    {
        if (!on)
            return;
        const std::lock_guard<std::mutex> lock(mu);
        ++done;
        // On a terminal: rewrite one line per completion. Elsewhere
        // (CI logs, redirects): one line every ~10% to bound output.
        if (tty) {
            std::fprintf(stderr, "\r[apres-sweep] %zu/%zu done (%s)\033[K",
                         done, n, label.c_str());
            if (done == n)
                std::fputc('\n', stderr);
            std::fflush(stderr);
        } else if (done == n || done % stride == 0) {
            std::fprintf(stderr, "[apres-sweep] %zu/%zu done\n", done, n);
        }
    }

  private:
    const bool on;
    const std::size_t n;
    const bool tty;
    const std::size_t stride;
    std::mutex mu;
    std::size_t done = 0;
};

} // namespace

std::vector<SweepResult>
SweepRunner::runAll()
{
    if (ran)
        fatal("SweepRunner::runAll may only be called once");
    ran = true;

    std::vector<SweepResult> results(jobs.size());
    if (jobs.empty())
        return results;

    const int want = threadCount();
    const std::size_t workers = std::min<std::size_t>(
        static_cast<std::size_t>(want), jobs.size());

    ProgressLine progress(opts.progress, jobs.size());
    std::atomic<std::size_t> next{0};
    std::atomic<bool> abort{false};
    std::vector<char> started(jobs.size(), 0);
    std::mutex failure_mu;
    std::exception_ptr first_failure;
    const JobExecutor executor(
        JobExecutionPolicy{opts.retries, opts.jobTimeoutSeconds});

    const auto work = [&] {
        for (;;) {
            if (abort.load(std::memory_order_relaxed))
                return;
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            started[i] = 1;
            const SweepJob& job = jobs[i];
            const std::uint64_t seed =
                opts.seedMode == SeedMode::kUseConfigSeed
                ? job.config.seed
                : deriveJobSeed(opts.baseSeed, i);

            SweepResult& slot = results[i];
            slot.label = job.label;
            slot.seed = seed;

            JobOutcome outcome = executor.execute(job, seed);
            slot.result = std::move(outcome.result);
            slot.wallSeconds = outcome.wallSeconds;

            if (outcome.failure && !opts.keepGoing) {
                const std::lock_guard<std::mutex> lock(failure_mu);
                if (!first_failure)
                    first_failure = outcome.failure;
                abort.store(true, std::memory_order_relaxed);
            }
            progress.jobDone(slot.label);
        }
    };

    if (workers <= 1) {
        work(); // run inline: exact same code path, no thread overhead
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t t = 0; t < workers; ++t)
            pool.emplace_back(work);
        for (std::thread& t : pool)
            t.join();
    }

    // Jobs never picked after an abort become explicit "skipped" rows,
    // so the result vector is always complete and self-describing.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (started[i])
            continue;
        SweepResult& slot = results[i];
        slot.label = jobs[i].label;
        slot.seed = opts.seedMode == SeedMode::kUseConfigSeed
            ? jobs[i].config.seed
            : deriveJobSeed(opts.baseSeed, i);
        slot.result.status = "skipped";
        slot.result.errorDetail =
            "not run: the sweep aborted after an earlier job failed";
    }

    if (first_failure)
        std::rethrow_exception(first_failure);
    return results;
}

std::string
failureSummary(const std::vector<SweepResult>& results)
{
    std::ostringstream out;
    std::size_t failed = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SweepResult& r = results[i];
        if (r.result.status == "ok")
            continue;
        ++failed;
        out << "  job " << i << " [" << r.label
            << "]: " << r.result.status;
        if (!r.result.errorKind.empty())
            out << " (" << r.result.errorKind << ")";
        if (!r.result.errorDetail.empty()) {
            // First line only: invariant dumps run long.
            const std::string& d = r.result.errorDetail;
            out << ": " << d.substr(0, d.find('\n'));
        }
        out << "\n";
    }
    if (failed == 0)
        return "";
    return std::to_string(failed) + " of " + std::to_string(results.size()) +
        " sweep job(s) did not complete:\n" + out.str();
}

} // namespace apres
