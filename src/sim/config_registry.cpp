/**
 * @file
 * ConfigRegistry implementation: field registration and strict
 * string-to-field assignment.
 */

#include "config_registry.hpp"

#include <fstream>
#include <limits>

#include "common/log.hpp"
#include "common/parse.hpp"
#include "common/sim_error.hpp"
#include "sim/policy_registry.hpp"

namespace apres {

namespace {

std::string
trim(const std::string& text)
{
    const auto begin = text.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    const auto end = text.find_last_not_of(" \t");
    return text.substr(begin, end - begin + 1);
}

std::string
joinNames(const std::vector<std::string>& names)
{
    std::string out;
    for (const std::string& n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

} // namespace

void
ConfigRegistry::addEntry(const std::string& key, Entry entry)
{
    if (!entries_.emplace(key, std::move(entry)).second)
        fatal("config key \"" + key + "\" registered twice");
}

void
ConfigRegistry::addInt(const std::string& key, int& field, int min_value,
                       int max_value)
{
    addEntry(key,
             {[&field, min_value, max_value, key](const std::string& value,
                                                  std::string* error) {
                  std::int64_t parsed = 0;
                  if (!parseInt64Strict(value, &parsed) ||
                      parsed > std::numeric_limits<int>::max()) {
                      *error = key + ": \"" + value + "\" is not an integer";
                      return false;
                  }
                  if (parsed < min_value) {
                      *error = key + ": " + value +
                          " is below the minimum of " +
                          std::to_string(min_value);
                      return false;
                  }
                  if (parsed > max_value) {
                      *error = key + ": " + value +
                          " is above the maximum of " +
                          std::to_string(max_value);
                      return false;
                  }
                  field = static_cast<int>(parsed);
                  return true;
              },
              [&field] { return std::to_string(field); }});
}

void
ConfigRegistry::addU32(const std::string& key, std::uint32_t& field,
                       std::uint32_t min_value, std::uint32_t max_value)
{
    addEntry(key,
             {[&field, min_value, max_value, key](const std::string& value,
                                                  std::string* error) {
                  std::uint64_t parsed = 0;
                  if (!parseUint64Strict(value, &parsed) ||
                      parsed > std::numeric_limits<std::uint32_t>::max()) {
                      *error = key + ": \"" + value +
                          "\" is not a 32-bit unsigned integer";
                      return false;
                  }
                  if (parsed < min_value) {
                      *error = key + ": " + value +
                          " is below the minimum of " +
                          std::to_string(min_value);
                      return false;
                  }
                  if (parsed > max_value) {
                      *error = key + ": " + value +
                          " is above the maximum of " +
                          std::to_string(max_value);
                      return false;
                  }
                  field = static_cast<std::uint32_t>(parsed);
                  return true;
              },
              [&field] { return std::to_string(field); }});
}

void
ConfigRegistry::addU64(const std::string& key, std::uint64_t& field,
                       std::uint64_t min_value, std::uint64_t max_value)
{
    addEntry(key,
             {[&field, min_value, max_value, key](const std::string& value,
                                                  std::string* error) {
                  std::uint64_t parsed = 0;
                  if (!parseUint64Strict(value, &parsed)) {
                      *error = key + ": \"" + value +
                          "\" is not an unsigned integer";
                      return false;
                  }
                  if (parsed < min_value) {
                      *error = key + ": " + value +
                          " is below the minimum of " +
                          std::to_string(min_value);
                      return false;
                  }
                  if (parsed > max_value) {
                      *error = key + ": " + value +
                          " is above the maximum of " +
                          std::to_string(max_value);
                      return false;
                  }
                  field = parsed;
                  return true;
              },
              [&field] { return std::to_string(field); }});
}

void
ConfigRegistry::addDouble(const std::string& key, double& field,
                          double min_value, double max_value)
{
    addEntry(key,
             {[&field, min_value, max_value, key](const std::string& value,
                                                  std::string* error) {
                  double parsed = 0.0;
                  if (!parseDoubleStrict(value, &parsed)) {
                      *error = key + ": \"" + value +
                          "\" is not a finite number";
                      return false;
                  }
                  if (parsed < min_value || parsed > max_value) {
                      *error = key + ": " + value + " is outside [" +
                          formatDouble(min_value) + ", " +
                          formatDouble(max_value) + "]";
                      return false;
                  }
                  field = parsed;
                  return true;
              },
              [&field] { return formatDouble(field); }});
}

void
ConfigRegistry::addBool(const std::string& key, bool& field)
{
    addEntry(key,
             {[&field, key](const std::string& value, std::string* error) {
                  bool parsed = false;
                  if (!parseBoolStrict(value, &parsed)) {
                      *error = key + ": \"" + value +
                          "\" is not a boolean (true/false/1/0/on/off)";
                      return false;
                  }
                  field = parsed;
                  return true;
              },
              [&field] { return field ? std::string("true")
                                      : std::string("false"); }});
}

void
ConfigRegistry::addString(const std::string& key, std::string& field)
{
    // Free-form strings (file paths): any value is accepted verbatim.
    addEntry(key, {[&field](const std::string& value, std::string*) {
                       field = value;
                       return true;
                   },
                   [&field] { return field; }});
}

void
ConfigRegistry::addPolicyName(const std::string& key, std::string& field,
                              bool (*known)(const std::string&),
                              std::vector<std::string> (*names)())
{
    addEntry(key,
             {[&field, known, names, key](const std::string& value,
                                          std::string* error) {
                  if (!known(value)) {
                      *error = key + ": unknown policy \"" + value +
                          "\" (known: " + joinNames(names()) + ")";
                      return false;
                  }
                  field = value;
                  return true;
              },
              [&field] { return field; }});
}

void
ConfigRegistry::addReplacement(const std::string& key,
                               ReplacementPolicy& field)
{
    addEntry(key,
             {[&field, key](const std::string& value, std::string* error) {
                  if (value == "lru")
                      field = ReplacementPolicy::kLru;
                  else if (value == "fifo")
                      field = ReplacementPolicy::kFifo;
                  else if (value == "random")
                      field = ReplacementPolicy::kRandom;
                  else {
                      *error = key + ": \"" + value +
                          "\" is not a replacement policy "
                          "(lru, fifo, random)";
                      return false;
                  }
                  return true;
              },
              [&field] {
                  switch (field) {
                    case ReplacementPolicy::kLru:    return std::string("lru");
                    case ReplacementPolicy::kFifo:   return std::string("fifo");
                    case ReplacementPolicy::kRandom: return std::string("random");
                  }
                  return std::string("?");
              }});
}

ConfigRegistry::ConfigRegistry(GpuConfig& c)
{
    const double inf = std::numeric_limits<double>::infinity();

    // Upper bounds on structural keys are sanity ceilings, not model
    // limits: generous enough for any plausible design-space sweep,
    // tight enough that a unit mixup (bytes-vs-KB, cycles-vs-seconds)
    // or a corrupted sweep script fails at parse time with the key
    // named, not deep inside the run.
    addInt("numSms", c.numSms, 1, 4096);
    addU64("maxCycles", c.maxCycles, 1);
    addU64("seed", c.seed, 0);
    addBool("sim.fastForward", c.fastForward);
    addInt("sim.shards", c.shards, 0, 4096); // 0 = one per hardware core
    addBool("sim.audit", c.audit);
    addU64("sim.auditInterval", c.auditInterval, 1, 1'000'000'000);
    addU64("sim.watchdogCycles", c.watchdogCycles, 0, // 0 = disabled
           1'000'000'000'000ull);
    addBool("sim.trace", c.trace);
    addString("sim.traceFile", c.traceFile);
    addU64("sim.traceBufferEvents", c.traceBufferEvents, 1,
           std::uint64_t{1} << 24);
    addBool("sim.metrics", c.metrics);
    addPolicyName("scheduler", c.scheduler, &knownScheduler,
                  &schedulerNames);
    addPolicyName("prefetcher", c.prefetcher, &knownPrefetcher,
                  &prefetcherNames);

    // Warp sets (LAWS groups, per-line consumer tracking) are
    // dynamically sized WarpMasks, so warpsPerSm goes up to the same
    // sanity ceiling as numSms — full-chip configs (2048 threads/SM =
    // 64 warps) and beyond are expressible. warpsPerBlock stays at 64:
    // barrier participant masks are per-block 64-bit lane masks.
    addInt("sm.warpsPerSm", c.sm.warpsPerSm, 1, 4096);
    addInt("sm.warpsPerBlock", c.sm.warpsPerBlock, 1, 64);
    addInt("sm.jobsPerWarp", c.sm.jobsPerWarp, 1, 1'000'000);
    addDouble("sm.prefetchMshrGate", c.sm.prefetchMshrGate, 0.0, 1.0);

    addU64("l1.sizeBytes", c.sm.l1.sizeBytes, 1, std::uint64_t{1} << 30);
    addU32("l1.ways", c.sm.l1.ways, 1, 256);
    addU32("l1.lineSize", c.sm.l1.lineSize, 1, 4096);
    addU32("l1.numMshrs", c.sm.l1.numMshrs, 1, 65'536);
    addU32("l1.maxMergesPerMshr", c.sm.l1.maxMergesPerMshr, 1, 65'536);
    addReplacement("l1.replacement", c.sm.l1.replacement);
    addBool("l1.hashSetIndex", c.sm.l1.hashSetIndex);

    addInt("lsu.queueCapacity", c.sm.lsu.queueCapacity, 1, 65'536);
    addInt("lsu.linesPerCycle", c.sm.lsu.linesPerCycle, 1, 1024);
    addU64("lsu.l1HitLatency", c.sm.lsu.l1HitLatency, 1, 1'000'000);
    addBool("lsu.adaptiveBypass", c.sm.lsu.adaptiveBypass);
    addU64("lsu.bypassMinAccesses", c.sm.lsu.bypassMinAccesses, 1);
    addDouble("lsu.bypassMissRate", c.sm.lsu.bypassMissRate, 0.0, 1.0);

    addU64("sharedMem.baseLatency", c.sm.sharedMem.baseLatency, 1,
           1'000'000);
    addInt("sharedMem.numBanks", c.sm.sharedMem.numBanks, 1, 1024);
    addU32("sharedMem.wordBytes", c.sm.sharedMem.wordBytes, 1, 4096);

    addInt("mem.numPartitions", c.mem.numPartitions, 1, 1024);
    addU64("mem.l2HitLatency", c.mem.l2HitLatency, 1, 1'000'000);

    addU64("l2.sizeBytes", c.mem.l2Partition.sizeBytes, 1,
           std::uint64_t{1} << 32);
    addU32("l2.ways", c.mem.l2Partition.ways, 1, 256);
    addU32("l2.lineSize", c.mem.l2Partition.lineSize, 1, 4096);
    addU32("l2.numMshrs", c.mem.l2Partition.numMshrs, 1, 65'536);
    addU32("l2.maxMergesPerMshr", c.mem.l2Partition.maxMergesPerMshr, 1,
           65'536);
    addReplacement("l2.replacement", c.mem.l2Partition.replacement);
    addBool("l2.hashSetIndex", c.mem.l2Partition.hashSetIndex);

    addU64("dram.baseLatency", c.mem.dram.baseLatency, 1, 100'000'000);
    addU64("dram.serviceInterval", c.mem.dram.serviceInterval, 1,
           100'000'000);
    addBool("dram.rowBufferModel", c.mem.dram.rowBufferModel);
    addInt("dram.numBanks", c.mem.dram.numBanks, 1, 4096);
    addU32("dram.rowBytes", c.mem.dram.rowBytes, 1,
           std::uint32_t{1} << 20);
    addU64("dram.rowHitInterval", c.mem.dram.rowHitInterval, 1,
           100'000'000);
    addU64("dram.rowMissInterval", c.mem.dram.rowMissInterval, 1,
           100'000'000);

    addInt("ccws.vtaEntries", c.ccws.vtaEntries, 1);
    addBool("ccws.sharedVta", c.ccws.sharedVta);
    addInt("ccws.sharedVtaEntries", c.ccws.sharedVtaEntries, 1);
    addInt("ccws.scoreBonus", c.ccws.scoreBonus, 0);
    addInt("ccws.scoreCap", c.ccws.scoreCap, 1);
    addInt("ccws.decayPeriod", c.ccws.decayPeriod, 1);
    addInt("ccws.throttleScale", c.ccws.throttleScale, 1);
    addInt("ccws.minActiveWarps", c.ccws.minActiveWarps, 1);

    addBool("laws.promoteOnHit", c.laws.promoteOnHit);
    addBool("laws.demoteOnMiss", c.laws.demoteOnMiss);
    addBool("laws.promotePrefetchTargets", c.laws.promotePrefetchTargets);
    addInt("laws.groupCap", c.laws.groupCap, 1);

    addDouble("mascar.saturateHigh", c.mascar.saturateHigh, 0.0, 1.0);
    addDouble("mascar.saturateLow", c.mascar.saturateLow, 0.0, 1.0);

    addInt("pa.groupSize", c.pa.groupSize, 1);

    addInt("str.tableEntries", c.str.tableEntries, 1);
    addInt("str.degree", c.str.degree, 1);
    addInt("str.trainThreshold", c.str.trainThreshold, 1);

    addInt("sld.linesPerBlock", c.sld.linesPerBlock, 1);
    addInt("sld.tableEntries", c.sld.tableEntries, 1);
    addU32("sld.lineSize", c.sld.lineSize, 1);

    addInt("sap.ptEntries", c.sap.ptEntries, 1, 4096);
    addInt("sap.wqEntries", c.sap.wqEntries, 1, 4096);
    addInt("sap.drqEntries", c.sap.drqEntries, 1, 4096);

    addDouble("energy.aluOp", c.energy.aluOp, 0.0, inf);
    addDouble("energy.registerAccess", c.energy.registerAccess, 0.0, inf);
    addDouble("energy.l1Access", c.energy.l1Access, 0.0, inf);
    addDouble("energy.l2Access", c.energy.l2Access, 0.0, inf);
    addDouble("energy.dramAccess", c.energy.dramAccess, 0.0, inf);
    addDouble("energy.structureAccess", c.energy.structureAccess, 0.0, inf);
    addDouble("energy.smCyclePipeline", c.energy.smCyclePipeline, 0.0, inf);

    // Everything registered above defaults to kSemantic; list the
    // exceptions explicitly. sim.fastForward qualifies because the
    // ff-equivalence suite pins its stats bitwise-identical to the
    // naive loop; sim.shards because the parallel epoch engine is
    // pinned bitwise-identical to the serial one by the same suite
    // (a cached result is valid for any shard count);
    // sim.watchdogCycles because it can only turn a hang into an
    // error, and errors are never cached.
    markObservation({"sim.audit", "sim.auditInterval", "sim.fastForward",
                     "sim.metrics", "sim.shards", "sim.trace",
                     "sim.traceBufferEvents", "sim.traceFile",
                     "sim.watchdogCycles"});
}

void
ConfigRegistry::markObservation(std::initializer_list<const char*> keys)
{
    for (const char* key : keys) {
        const auto it = entries_.find(key);
        if (it == entries_.end())
            fatal(std::string("markObservation: unknown config key \"") +
                  key + "\"");
        it->second.kind = ConfigKeyKind::kObservation;
    }
}

ConfigKeyKind
ConfigRegistry::keyKind(const std::string& key) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        throwConfigError("unknown config key \"" + key + "\"");
    return it->second.kind;
}

bool
ConfigRegistry::trySet(const std::string& key, const std::string& value,
                       std::string* error)
{
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        *error = "unknown config key \"" + key +
            "\" (apres_sim --list-keys prints the full namespace)";
        return false;
    }
    return it->second.set(value, error);
}

void
ConfigRegistry::set(const std::string& key, const std::string& value)
{
    std::string error;
    if (!trySet(key, value, &error))
        throwConfigError(error);
}

std::string
ConfigRegistry::get(const std::string& key) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        throwConfigError("unknown config key \"" + key + "\"");
    return it->second.get();
}

bool
ConfigRegistry::has(const std::string& key) const
{
    return entries_.count(key) != 0;
}

std::vector<std::string>
ConfigRegistry::keys() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [key, entry] : entries_)
        out.push_back(key);
    return out;
}

void
ConfigRegistry::applyAssignment(const std::string& assignment)
{
    const auto eq = assignment.find('=');
    if (eq == std::string::npos)
        throwConfigError("malformed override \"" + assignment +
                         "\" (expected key=value)");
    const std::string key = trim(assignment.substr(0, eq));
    const std::string value = trim(assignment.substr(eq + 1));
    if (key.empty())
        throwConfigError("malformed override \"" + assignment +
                         "\" (empty key)");
    set(key, value);
}

void
ConfigRegistry::loadFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throwConfigError("cannot open config file " + path);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const std::string stripped = trim(line);
        if (stripped.empty())
            continue;
        const auto eq = stripped.find('=');
        if (eq == std::string::npos)
            throwConfigError(path + ":" + std::to_string(lineno) +
                             ": expected `key = value`, got \"" + stripped +
                             "\"");
        const std::string key = trim(stripped.substr(0, eq));
        const std::string value = trim(stripped.substr(eq + 1));
        std::string error;
        if (key.empty() || !trySet(key, value, &error))
            throwConfigError(path + ":" + std::to_string(lineno) + ": " +
                             (key.empty() ? "empty key" : error));
    }
}

std::map<std::string, std::string>
ConfigRegistry::snapshot() const
{
    std::map<std::string, std::string> out;
    for (const auto& [key, entry] : entries_)
        out.emplace(key, entry.get());
    return out;
}

std::map<std::string, std::string>
ConfigRegistry::semanticSnapshot() const
{
    std::map<std::string, std::string> out;
    for (const auto& [key, entry] : entries_) {
        if (entry.kind == ConfigKeyKind::kSemantic)
            out.emplace(key, entry.get());
    }
    return out;
}

void
applyOverrides(
    GpuConfig& config,
    const std::vector<std::pair<std::string, std::string>>& overrides)
{
    ConfigRegistry registry(config);
    for (const auto& [key, value] : overrides)
        registry.set(key, value);
}

} // namespace apres
