/**
 * @file
 * Invariant auditor: cross-layer consistency checks over the live
 * simulation structures.
 *
 * When GpuConfig::audit is on, the Gpu calls checkInvariants() every
 * GpuConfig::auditInterval cycles and checkSkipWindow() after every
 * bulk fast-forward jump. A violated invariant throws
 * SimError(kInvariant) carrying a structured state dump (the failing
 * checks plus a per-SM stall report), so a corrupted run dies loudly
 * at the corruption site instead of producing silently-wrong numbers.
 *
 * Checked invariants (paper references in parentheses):
 *  - scoreboard: per warp, registers pinned at kNeverReady == loads
 *    in flight;
 *  - barriers: arrival counters match the parked warps, and a
 *    complete barrier has released;
 *  - L1 MSHRs pair one-to-one with in-flight MemorySystem reads;
 *  - LAWS (Section IV-A, Table II): scheduling queue is a permutation
 *    of valid warp IDs; WGT holds at most 3 entries whose owner and
 *    member bits fall inside the configured warp range; LLT has one
 *    entry per warp, each kInvalidPc or a static load PC;
 *  - SAP (Section IV-B, Table IV): PT holds at most ptEntries (10)
 *    valid entries keyed by static load PCs; WQ/DRQ peak occupancies
 *    stay within wqEntries (48) / drqEntries (32);
 *  - fast-forward: the ready-scan cache's "asleep until X" claim is
 *    re-derived from scratch, and every skipped window is re-verified
 *    to contain no issueable cycle.
 */

#ifndef APRES_SIM_AUDITOR_HPP
#define APRES_SIM_AUDITOR_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/prefetcher.hpp"
#include "core/scheduler.hpp"
#include "core/sm.hpp"
#include "isa/kernel.hpp"
#include "mem/memory_system.hpp"
#include "sim/config.hpp"

namespace apres {

/**
 * The invariant auditor. Holds references into one Gpu's innards and
 * must not outlive it.
 */
class Auditor
{
  public:
    Auditor(const GpuConfig& config, const Kernel& kernel,
            const std::vector<std::unique_ptr<Sm>>& sms,
            const std::vector<std::unique_ptr<Scheduler>>& schedulers,
            const std::vector<std::unique_ptr<Prefetcher>>& prefetchers,
            const MemorySystem& memsys);

    /**
     * Walk every live structure at cycle @p now; throws
     * SimError(kInvariant) with a state dump on the first audit tick
     * that finds a violation.
     */
    void checkInvariants(Cycle now) const;

    /**
     * Re-verify a just-skipped fast-forward window [@p begin, @p end):
     * no SM may have been able to issue inside it. Throws
     * SimError(kInvariant) on violation.
     */
    void checkSkipWindow(Cycle begin, Cycle end) const;

    /** Audit passes completed without a violation. */
    std::uint64_t passes() const { return passes_; }

  private:
    std::string checkPolicyStructures() const;

    const GpuConfig& cfg;
    const Kernel& kernel;
    const std::vector<std::unique_ptr<Sm>>& sms;
    const std::vector<std::unique_ptr<Scheduler>>& schedulers;
    const std::vector<std::unique_ptr<Prefetcher>>& prefetchers;
    const MemorySystem& memsys;
    mutable std::uint64_t passes_ = 0;
};

} // namespace apres

#endif // APRES_SIM_AUDITOR_HPP
