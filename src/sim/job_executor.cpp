/**
 * @file
 * Job-execution core implementation.
 */

#include "job_executor.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "common/fault_inject.hpp"
#include "common/log.hpp"
#include "common/sim_error.hpp"

namespace apres {

namespace {

/** Thrown by the interrupt hook when a job's deadline expires. */
struct JobTimeout
{
};

} // namespace

JobExecutor::JobExecutor(JobExecutionPolicy policy) : policy_(policy) {}

JobOutcome
JobExecutor::execute(const SweepJob& job, std::uint64_t seed) const
{
    if (!job.kernel)
        fatal("JobExecutor::execute: job \"" + job.label +
              "\" has no kernel");

    GpuConfig cfg = job.config;
    cfg.seed = seed;

    JobOutcome outcome;
    const int attempts = 1 + std::max(0, policy_.retries);
    const auto job_start = std::chrono::steady_clock::now();

    // Fault isolation: every attempt (same seed) runs under try/catch
    // plus an optional cooperative wall-clock deadline. A failure
    // becomes a machine-readable error row instead of tearing the
    // process down.
    for (int attempt = 0; attempt < attempts; ++attempt) {
        outcome.failure = nullptr;
        RunResult r;
        try {
            // Chaos seam: sleep actions make deterministically slow
            // jobs for overload tests, throw actions exercise the
            // error-row path. One relaxed load when disarmed.
            faultInjectAt("job.execute");
            executions_.fetch_add(1, std::memory_order_relaxed);
            Gpu gpu(cfg, *job.kernel);
            if (policy_.timeoutSeconds > 0.0) {
                const auto deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(policy_.timeoutSeconds);
                gpu.setInterruptCheck([deadline] {
                    if (std::chrono::steady_clock::now() >= deadline)
                        throw JobTimeout{};
                });
            }
            r = gpu.run();
            if (job.inspect)
                job.inspect(gpu, r);
            r.status = "ok";
        } catch (const JobTimeout&) {
            r = RunResult{};
            r.status = "timeout";
            r.errorKind = "Timeout";
            {
                std::ostringstream msg;
                msg << "job \"" << job.label
                    << "\" exceeded the per-job deadline of "
                    << policy_.timeoutSeconds << " s (attempt "
                    << attempt + 1 << "/" << attempts << ")";
                r.errorDetail = msg.str();
            }
            outcome.failure = std::make_exception_ptr(
                SimError(SimErrorKind::kDeadlock, r.errorDetail));
        } catch (const SimError& e) {
            r = RunResult{};
            r.status = "error";
            r.errorKind = e.kindName();
            r.errorDetail = e.detail();
            outcome.failure = std::make_exception_ptr(e);
        } catch (const std::exception& e) {
            r = RunResult{};
            r.status = "error";
            r.errorKind = "InternalError";
            r.errorDetail = e.what();
            outcome.failure = std::make_exception_ptr(
                std::runtime_error(r.errorDetail));
        }
        outcome.result = std::move(r);
        if (!outcome.failure)
            break;
        if (attempt + 1 < attempts) {
            logWarn("sweep job \"", job.label, "\" failed (",
                    outcome.result.errorKind, "); retrying (attempt ",
                    attempt + 2, "/", attempts, ")");
        }
    }

    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - job_start;
    outcome.wallSeconds = wall.count();
    return outcome;
}

} // namespace apres
