/**
 * @file
 * Pure job-execution core shared by every simulation frontend.
 *
 * A "job" is one simulation: a GpuConfig over an immutable Kernel.
 * JobExecutor::execute runs exactly one job — with fault isolation,
 * an optional cooperative wall-clock deadline and same-seed retries —
 * and reports the outcome as data (a RunResult row plus the failure,
 * if any). It never touches threads, queues or process state, so the
 * same core backs the CLI sweep runner (runner.hpp), the apres_serve
 * daemon's worker pool, and unit tests driving single jobs.
 *
 * Determinism contract: execute() runs the job with exactly the seed
 * it is given — seed *policy* (derive-from-index for sweeps, content
 * seed for the service) belongs to the frontend. A job is a pure
 * function of (config incl. seed, kernel), which is what makes
 * memoizing results in a content-addressed cache sound.
 */

#ifndef APRES_SIM_JOB_EXECUTOR_HPP
#define APRES_SIM_JOB_EXECUTOR_HPP

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>

#include "sim/gpu.hpp"

namespace apres {

/** One simulation to run: a config over a (shared, immutable) kernel. */
struct SweepJob
{
    std::string label;                     ///< for reports and progress
    GpuConfig config;                      ///< copied; seed is overwritten
    std::shared_ptr<const Kernel> kernel;  ///< must be non-null

    /**
     * Optional post-run hook, called on the worker thread with the
     * finished Gpu before it is destroyed. Lets drivers harvest
     * statistics RunResult does not carry (per-PC LSU stats, DRAM row
     * hits) without serializing the sweep. The hook must only touch
     * this job's own state.
     */
    std::function<void(const Gpu&, RunResult&)> inspect;
};

/** Failure handling applied to every job an executor runs. */
struct JobExecutionPolicy
{
    /**
     * Re-run attempts after a failed or timed-out job. Every attempt
     * uses the same seed, so a retry only helps against environmental
     * flakes — a deterministic failure fails all attempts identically,
     * which is itself diagnostic.
     */
    int retries = 0;

    /**
     * Per-job wall-clock deadline in seconds; 0 disables. Enforced
     * cooperatively through Gpu::setInterruptCheck (polled every ~16K
     * simulated cycles), so an expired job aborts at the next poll,
     * not instantaneously.
     */
    double timeoutSeconds = 0.0;
};

/** Everything one execution produced. */
struct JobOutcome
{
    /**
     * The job's result row. Always populated: a failed job carries
     * status "error"/"timeout" plus errorKind/errorDetail instead of
     * statistics, so batch reports stay complete and self-describing.
     */
    RunResult result;

    /** Wall-clock seconds across all attempts. */
    double wallSeconds = 0.0;

    /** The final attempt's failure; null when the job succeeded. */
    std::exception_ptr failure;

    bool ok() const { return failure == nullptr; }
};

/**
 * Executes jobs one at a time under a fixed policy. Stateless apart
 * from an execution counter; safe to share across threads.
 */
class JobExecutor
{
  public:
    explicit JobExecutor(JobExecutionPolicy policy = {});

    /**
     * Run @p job with GpuConfig::seed forced to @p seed. Exceptions
     * from the simulation become the outcome's failure — execute()
     * itself only throws on driver misuse (null kernel).
     */
    JobOutcome execute(const SweepJob& job, std::uint64_t seed) const;

    /**
     * Simulations actually started (attempts, not jobs), across all
     * threads. The service's cache tests assert this stays flat on a
     * fully warm batch — cache hits must mean zero re-simulation.
     */
    std::uint64_t executions() const
    {
        return executions_.load(std::memory_order_relaxed);
    }

    const JobExecutionPolicy& policy() const { return policy_; }

  private:
    JobExecutionPolicy policy_;
    mutable std::atomic<std::uint64_t> executions_{0};
};

} // namespace apres

#endif // APRES_SIM_JOB_EXECUTOR_HPP
