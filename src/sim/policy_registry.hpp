/**
 * @file
 * String-keyed scheduler/prefetcher factories.
 *
 * The Gpu constructs its policies exclusively through this registry:
 * GpuConfig names a scheduler and a prefetcher, the registry builds
 * them. Adding a policy is therefore a one-file change — implement
 * the Scheduler/Prefetcher interface and register a factory — with no
 * edits to gpu.cpp, the CLI flag ladder, or any bench driver. The
 * built-in policies (LRR, GTO, CCWS, MASCAR, PA, LAWS; STR, SLD, SAP)
 * register themselves in policy_registry.cpp; tests and downstream
 * users may register additional policies at startup.
 */

#ifndef APRES_SIM_POLICY_REGISTRY_HPP
#define APRES_SIM_POLICY_REGISTRY_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace apres {

class Scheduler;
class Prefetcher;
struct GpuConfig;

/** Builds a scheduler instance for one SM. */
using SchedulerFactory =
    std::function<std::unique_ptr<Scheduler>(const GpuConfig&)>;

/**
 * Builds a prefetcher instance for one SM. Receives the SM's already
 * constructed scheduler so coupled designs (SAP needs LAWS) can bind
 * to it; may return nullptr for "no prefetcher".
 */
using PrefetcherFactory =
    std::function<std::unique_ptr<Prefetcher>(const GpuConfig&, Scheduler&)>;

/**
 * Register a scheduler under @p name. Names are case-sensitive and
 * must be unique; re-registration is fatal (catches typos and
 * double-registration at startup rather than silently shadowing).
 */
void registerScheduler(const std::string& name, SchedulerFactory make);

/** Register a prefetcher under @p name (same rules as schedulers). */
void registerPrefetcher(const std::string& name, PrefetcherFactory make);

/** True when @p name is a registered scheduler. */
bool knownScheduler(const std::string& name);

/** True when @p name is a registered prefetcher. */
bool knownPrefetcher(const std::string& name);

/** All registered scheduler names, sorted. */
std::vector<std::string> schedulerNames();

/** All registered prefetcher names, sorted. */
std::vector<std::string> prefetcherNames();

/** Build the scheduler @p cfg names; fatal on an unknown name. */
std::unique_ptr<Scheduler> makeScheduler(const GpuConfig& cfg);

/**
 * Build the prefetcher @p cfg names (nullptr for "none"); fatal on an
 * unknown name.
 */
std::unique_ptr<Prefetcher> makePrefetcher(const GpuConfig& cfg,
                                           Scheduler& sched);

} // namespace apres

#endif // APRES_SIM_POLICY_REGISTRY_HPP
