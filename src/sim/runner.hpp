/**
 * @file
 * Parallel experiment runner: a thread-pool sweep engine for
 * (GpuConfig, Kernel) job lists.
 *
 * Reproducing the paper's evaluation means running 15 workloads x ~10
 * scheduler/prefetcher configurations per figure; each simulation is
 * independent, so the sweep parallelizes perfectly. The runner hands
 * every job a complete private Gpu instance on a worker thread and
 * collects RunResults in submission order, so a parallel sweep is
 * bit-identical to the sequential one:
 *
 *  - a simulation is a pure function of (GpuConfig, Kernel); kernels
 *    and their address generators are immutable during runs and may be
 *    shared across threads,
 *  - every job gets a deterministic seed derived from (base seed, job
 *    index) via deriveJobSeed(), independent of scheduling order,
 *  - there is no work stealing and no cross-job state: workers pull
 *    the next job index from one atomic counter and write into their
 *    own result slot.
 *
 * Thread count comes from RunnerOptions::threads, the APRES_BENCH_JOBS
 * environment variable, or std::thread::hardware_concurrency(), in
 * that order of precedence (see defaultJobCount()).
 *
 * The runner is a *frontend*: per-job execution (fault isolation,
 * timeouts, retries) lives in the pure JobExecutor core
 * (job_executor.hpp), which the apres_serve daemon shares. The runner
 * adds the thread pool, seed derivation, progress reporting and the
 * keep-going/abort sweep semantics.
 */

#ifndef APRES_SIM_RUNNER_HPP
#define APRES_SIM_RUNNER_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/gpu.hpp"
#include "sim/job_executor.hpp"

namespace apres {

/** Default base seed of a sweep (job seeds derive from it). */
inline constexpr std::uint64_t kDefaultSweepSeed = 0xA5E5'1CAF'FE15'CA16ull;

/** Where a job's Rng seed comes from. */
enum class SeedMode {
    /**
     * deriveJobSeed(baseSeed, index): every sweep job gets its own
     * deterministic stream (the CLI/bench default).
     */
    kDeriveFromBase,

    /**
     * The job's GpuConfig::seed is used untouched. The apres_serve
     * daemon runs in this mode: the seed is part of the semantic
     * configuration, so the cache key covers it and a job's identity
     * never depends on its position in a batch.
     */
    kUseConfigSeed,
};

/** How a sweep executes. */
struct RunnerOptions
{
    /** Worker threads; <= 0 selects defaultJobCount(). */
    int threads = 0;

    /** Base seed; job i runs with deriveJobSeed(baseSeed, i). */
    std::uint64_t baseSeed = kDefaultSweepSeed;

    /** Seed policy; see SeedMode. */
    SeedMode seedMode = SeedMode::kDeriveFromBase;

    /** Emit a progress line to stderr while the sweep runs. */
    bool progress = false;

    /**
     * Re-run attempts after a failed or timed-out job ("--retries").
     * Every attempt uses the same derived seed, so a retry only helps
     * against environmental flakes — a deterministic failure fails all
     * attempts identically, which is itself diagnostic.
     */
    int retries = 0;

    /**
     * Per-job wall-clock deadline in seconds ("--job-timeout"); 0
     * disables. Enforced cooperatively through Gpu::setInterruptCheck
     * (polled every ~16K simulated cycles), so an expired job aborts
     * at the next poll, not instantaneously.
     */
    double jobTimeoutSeconds = 0.0;

    /**
     * Fault isolation mode ("--keep-going"). A failed/timed-out job
     * always becomes an error row (RunResult::status/errorKind/
     * errorDetail) instead of tearing down the process. With
     * keepGoing the sweep still runs every remaining job and returns
     * the full result vector; without it the sweep stops picking new
     * jobs and runAll() rethrows the first failure after the workers
     * drain (jobs that never ran are marked "skipped").
     */
    bool keepGoing = false;
};

// SweepJob (one config over a shared, immutable kernel) lives in
// job_executor.hpp now: the execution core owns the job shape, and
// the runner is one of its frontends.

/** One finished job, in submission order. */
struct SweepResult
{
    std::string label;        ///< copied from the job
    RunResult result;         ///< the simulation's outcome
    std::uint64_t seed = 0;   ///< the derived per-job seed it ran with
    double wallSeconds = 0.0; ///< wall-clock time of this job
};

/**
 * Deterministic per-job seed: a pure function of (base seed, job
 * index), so results never depend on which thread ran the job or in
 * what order jobs finished.
 */
std::uint64_t deriveJobSeed(std::uint64_t base_seed, std::size_t job_index);

/**
 * Worker-thread count for sweeps: APRES_BENCH_JOBS when it parses as a
 * positive integer (a warning is emitted otherwise), else
 * std::thread::hardware_concurrency(), never less than 1.
 */
int defaultJobCount();

/**
 * The sweep engine. Submit jobs, then runAll() once.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(RunnerOptions options = {});

    /** Enqueue one job. @return its index (== result slot). */
    std::size_t submit(SweepJob job);

    /** Convenience submit without an inspect hook. */
    std::size_t submit(std::string label, const GpuConfig& config,
                       std::shared_ptr<const Kernel> kernel);

    /** Number of submitted jobs. */
    std::size_t size() const { return jobs.size(); }

    /**
     * Run every submitted job and return results in submission order.
     * Blocks until the sweep drains. May be called once.
     *
     * Fault isolation: each job runs under try/catch and (when
     * configured) a wall-clock deadline; see RunnerOptions::keepGoing
     * for how failures propagate.
     */
    std::vector<SweepResult> runAll();

    /** The thread count runAll() will use (after defaulting). */
    int threadCount() const;

  private:
    RunnerOptions opts;
    std::vector<SweepJob> jobs;
    bool ran = false;
};

/**
 * Human-readable summary of the failed rows in @p results, one line
 * per failure; empty when every job ran clean. Drivers print this and
 * exit non-zero under --keep-going.
 */
std::string failureSummary(const std::vector<SweepResult>& results);

} // namespace apres

#endif // APRES_SIM_RUNNER_HPP
