/**
 * @file
 * Top-level GPU configuration (Table III defaults).
 *
 * Scheduler and prefetcher are selected by *name* — the string keys
 * of the PolicyRegistry (policy_registry.hpp) — so adding a policy
 * never touches the Gpu, the CLI or the bench drivers: it registers a
 * factory and is immediately reachable from every sweep axis. Every
 * field (including the nested per-policy configs) is also reachable
 * under a dotted string key through the ConfigRegistry
 * (config_registry.hpp), which is the single override path shared by
 * `apres_sim --set`, config files and programmatic sweeps.
 */

#ifndef APRES_SIM_CONFIG_HPP
#define APRES_SIM_CONFIG_HPP

#include <cstdint>
#include <string>

#include "apres/laws.hpp"
#include "apres/sap.hpp"
#include "core/sm.hpp"
#include "energy/energy_model.hpp"
#include "mem/memory_system.hpp"
#include "prefetch/sld.hpp"
#include "prefetch/str.hpp"
#include "sched/ccws.hpp"
#include "sched/mascar.hpp"
#include "sched/pa_twolevel.hpp"

namespace apres {

/**
 * Complete configuration of one simulation.
 *
 * Defaults reproduce the paper's Table III: 15 SMs, 48 warps per SM,
 * 32 KB 8-way L1 with 128 B lines and 64 MSHRs, 768 KB 8-way L2 over
 * 6 partitions at 200 cycles, 440-cycle DRAM.
 */
struct GpuConfig
{
    int numSms = 15;
    SmConfig sm;                 ///< includes the L1 geometry
    MemSystemConfig mem;

    /** Scheduler name: a PolicyRegistry key ("lrr", "gto", ...). */
    std::string scheduler = "lrr";

    /** Prefetcher name: a PolicyRegistry key ("none", "str", ...). */
    std::string prefetcher = "none";

    CcwsConfig ccws;
    LawsConfig laws;
    MascarConfig mascar;
    PaConfig pa;
    StrConfig str;
    SldConfig sld;
    SapConfig sap;
    EnergyParams energy;

    /** Hard stop for non-terminating configurations. */
    std::uint64_t maxCycles = 50'000'000;

    /**
     * Event-driven fast-forward ("sim.fastForward"): Gpu::run() jumps
     * over stretches in which no SM can issue — straight to the next
     * memory response, L1-hit completion or scoreboard maturity —
     * crediting idle statistics in bulk. Results are bitwise identical
     * to the naive cycle-by-cycle loop (the equivalence suite pins
     * this down); turn off to run the naive loop as the oracle.
     */
    bool fastForward = true;

    /**
     * Worker shards for one run ("sim.shards"): Gpu::run() splits the
     * SMs across this many threads and steps them in deterministic
     * epochs bounded by the minimum memory response latency, staging
     * all memory-system traffic per epoch and draining it in canonical
     * (cycle, SM, program) order. Statistics are bitwise identical to
     * the serial engine for every shard count (the equivalence suite
     * pins this), so the key is classified as observation — it never
     * enters a result-cache key. 1 (the default) runs the serial
     * engine; 0 picks one shard per hardware core.
     */
    int shards = 1;

    /**
     * Runtime invariant auditing ("sim.audit", off by default): every
     * auditInterval cycles — and after every fast-forward skip — the
     * Auditor walks the live structures (WGT/LLT, SAP PT/WQ/DRQ
     * budgets, MSHR <-> outstanding-request matching, scoreboard
     * consistency, skip-window soundness) and throws
     * SimError(kInvariant) with a state dump on violation. Off, the
     * run loop only tests one null pointer per iteration.
     */
    bool audit = false;

    /** Cycles between audit walks ("sim.auditInterval"). */
    std::uint64_t auditInterval = 16'384;

    /**
     * Forward-progress watchdog ("sim.watchdogCycles"): when this many
     * cycles elapse with zero instructions issued and zero memory
     * responses delivered, Gpu::run throws SimError(kDeadlock) with a
     * per-warp stall report instead of spinning to maxCycles. 0
     * disables the watchdog.
     */
    std::uint64_t watchdogCycles = 10'000'000;

    /**
     * Structured event tracing ("sim.trace", off by default): the Gpu
     * owns a Tracer (common/trace.hpp) and every component emits typed
     * events into per-lane ring buffers. Like the auditor, tracing is
     * pure observation — all statistics are bitwise identical on/off
     * (the ff_equivalence suite pins this). Off, every emit site costs
     * one null-pointer test.
     */
    bool trace = false;

    /**
     * File the Chrome trace_event JSON is written to when the run
     * finishes ("sim.traceFile"). Empty keeps the trace in memory only
     * (tests read it through Gpu::tracer()).
     */
    std::string traceFile;

    /**
     * Ring capacity per trace lane in events
     * ("sim.traceBufferEvents"). A full lane overwrites its oldest
     * events, so long runs keep the most recent window.
     */
    std::uint64_t traceBufferEvents = 1 << 16;

    /**
     * Metrics histograms and counters ("sim.metrics", off by
     * default): load-to-use latency, MSHR occupancy, WGT group
     * lifetime and prefetch timeliness, reported under "metrics.*"
     * keys in RunResult::policy. Pure observation, same contract as
     * tracing.
     */
    bool metrics = false;

    /**
     * Seed of the Gpu-owned Rng. Every simulation is a pure function
     * of its configuration (including this field): any stochastic
     * model component must draw from Gpu::rng(), never from a global
     * or wall-clock source. Sweep runners overwrite this per job with
     * deriveJobSeed(baseSeed, jobIndex).
     */
    std::uint64_t seed = 0x9E3779B97F4A7C15ull;

    /** Shorthand: "APRES" = LAWS scheduling + SAP prefetching. */
    void
    useApres()
    {
        scheduler = "laws";
        prefetcher = "sap";
    }

    /** "SCHED+PF" label for reports ("APRES" for laws+sap). */
    std::string label() const;
};

} // namespace apres

#endif // APRES_SIM_CONFIG_HPP
