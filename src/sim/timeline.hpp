/**
 * @file
 * Timeline recording: periodic snapshots of a running simulation.
 *
 * Samples the full RunResult every N cycles and derives per-interval
 * deltas (IPC, miss rate, prefetch activity within the window), which
 * is how the phase behaviour of a kernel — warm-up, steady state,
 * drain, CCWS throttle oscillation — becomes visible. Rows export via
 * the CSV writer.
 */

#ifndef APRES_SIM_TIMELINE_HPP
#define APRES_SIM_TIMELINE_HPP

#include <vector>

#include "common/csv.hpp"
#include "sim/gpu.hpp"

namespace apres {

/** One sampled interval. */
struct TimelineSample
{
    Cycle cycleEnd = 0;       ///< end of the interval
    double intervalIpc = 0.0; ///< instructions/cycle within the interval
    double intervalMissRate = 0.0; ///< L1 miss rate within the interval
    std::uint64_t intervalPrefetches = 0; ///< prefetches issued within
    double cumulativeIpc = 0.0;
};

/**
 * Runs a Gpu to completion while sampling every @p interval cycles.
 */
class TimelineRecorder
{
  public:
    /** @param interval cycles per sample; fatal unless >= 1. */
    explicit TimelineRecorder(Cycle interval);

    /**
     * Drive @p gpu to completion (or its cycle cap), sampling as it
     * goes.
     * @return the final RunResult
     */
    RunResult record(Gpu& gpu);

    /** The collected samples. */
    const std::vector<TimelineSample>& samples() const { return samples_; }

    /** Export all samples through the CSV writer. */
    void toCsv(CsvWriter& csv) const;

  private:
    Cycle interval_;
    std::vector<TimelineSample> samples_;
};

} // namespace apres

#endif // APRES_SIM_TIMELINE_HPP
