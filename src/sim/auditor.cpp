/**
 * @file
 * Auditor implementation.
 */

#include "auditor.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <string>

#include "apres/laws.hpp"
#include "apres/sap.hpp"
#include "common/sim_error.hpp"

namespace apres {

Auditor::Auditor(const GpuConfig& config, const Kernel& kernel_ref,
                 const std::vector<std::unique_ptr<Sm>>& sms_ref,
                 const std::vector<std::unique_ptr<Scheduler>>& schedulers_ref,
                 const std::vector<std::unique_ptr<Prefetcher>>& prefetchers_ref,
                 const MemorySystem& memsys_ref)
    : cfg(config), kernel(kernel_ref), sms(sms_ref),
      schedulers(schedulers_ref), prefetchers(prefetchers_ref),
      memsys(memsys_ref)
{
}

std::string
Auditor::checkPolicyStructures() const
{
    std::ostringstream out;

    // Static load PCs: the only values PC-keyed hardware tables (LLT,
    // SAP PT) may legitimately hold.
    std::set<Pc> load_pcs;
    for (const Instruction& instr : kernel.code()) {
        if (instr.op == Opcode::kLoad)
            load_pcs.insert(instr.pc);
    }

    for (std::size_t s = 0; s < schedulers.size(); ++s) {
        const auto* laws =
            dynamic_cast<const LawsScheduler*>(schedulers[s].get());
        if (laws != nullptr) {
            // Scheduling queue: valid IDs, no duplicates.
            std::set<WarpId> seen;
            for (const WarpId w : laws->queueOrder()) {
                if (w < 0 || w >= cfg.sm.warpsPerSm) {
                    out << "sm" << s << " LAWS queue holds warp " << w
                        << " outside [0, " << cfg.sm.warpsPerSm << ")\n";
                } else if (!seen.insert(w).second) {
                    out << "sm" << s << " LAWS queue holds warp " << w
                        << " twice\n";
                }
            }

            // WGT: at most kEntries (3) entries of warp bits inside the
            // configured range (Table II: 48 bits x 3 entries).
            for (int e = 0; e < WarpGroupTable::kEntries; ++e) {
                const WarpGroupTable::Entry& entry =
                    laws->wgtForAudit().entry(e);
                if (!entry.valid)
                    continue;
                if (entry.owner < 0 || entry.owner >= cfg.sm.warpsPerSm) {
                    out << "sm" << s << " WGT entry " << e << " owner "
                        << entry.owner << " outside [0, "
                        << cfg.sm.warpsPerSm << ")\n";
                }
                if (entry.members.anyAtOrAbove(cfg.sm.warpsPerSm)) {
                    out << "sm" << s << " WGT entry " << e
                        << " member mask 0x" << entry.members.toHex()
                        << " sets bits outside the " << cfg.sm.warpsPerSm
                        << " configured warps\n";
                }
                if (load_pcs.count(entry.pc) == 0) {
                    out << "sm" << s << " WGT entry " << e << " pc 0x"
                        << std::hex << entry.pc << std::dec
                        << " is not a static load PC\n";
                }
            }

            // LLT: one entry per warp, each invalid or a real load PC.
            const LastLoadTable& llt = laws->lltForAudit();
            if (llt.size() != cfg.sm.warpsPerSm) {
                out << "sm" << s << " LLT has " << llt.size()
                    << " entries for " << cfg.sm.warpsPerSm << " warps\n";
            }
            for (int w = 0; w < llt.size(); ++w) {
                const Pc pc = llt.get(w);
                if (pc != kInvalidPc && load_pcs.count(pc) == 0) {
                    out << "sm" << s << " LLT warp " << w << " llpc 0x"
                        << std::hex << pc << std::dec
                        << " is not a static load PC\n";
                }
            }
        }

        if (s < prefetchers.size()) {
            const auto* sap =
                dynamic_cast<const SapPrefetcher*>(prefetchers[s].get());
            if (sap != nullptr) {
                // PT: physical slots and valid entries within the
                // configured sizing (Table II/IV: 10 entries).
                const int cap = sap->config().ptEntries;
                if (sap->ptSlotCount() > cap ||
                    sap->ptValidCount() > cap) {
                    out << "sm" << s << " SAP PT holds "
                        << sap->ptValidCount() << " valid entries in "
                        << sap->ptSlotCount() << " slots; configured cap "
                        << cap << "\n";
                }
                for (const Pc pc : sap->ptResidentPcs()) {
                    if (load_pcs.count(pc) == 0) {
                        out << "sm" << s << " SAP PT entry pc 0x"
                            << std::hex << pc << std::dec
                            << " is not a static load PC\n";
                    }
                }
                // WQ/DRQ occupancy peaks against Table IV capacities.
                const SapStats& st = sap->stats();
                if (st.wqPeak >
                    static_cast<std::uint64_t>(sap->config().wqEntries)) {
                    out << "sm" << s << " SAP Warp Queue peaked at "
                        << st.wqPeak << " entries; configured cap "
                        << sap->config().wqEntries << "\n";
                }
                if (st.drqPeak >
                    static_cast<std::uint64_t>(sap->config().drqEntries)) {
                    out << "sm" << s << " SAP DRQ peaked at " << st.drqPeak
                        << " entries; configured cap "
                        << sap->config().drqEntries << "\n";
                }
            }
        }
    }
    return out.str();
}

void
Auditor::checkInvariants(Cycle now) const
{
    std::string violations;
    for (const auto& sm : sms)
        violations += sm->auditInvariants(now);
    violations += checkPolicyStructures();
    if (violations.empty()) {
        ++passes_;
        return;
    }
    std::ostringstream dump;
    dump << "invariant audit failed at cycle " << now << ":\n"
         << violations << "--- state dump ---\n";
    for (const auto& sm : sms)
        dump << sm->stallReport(now);
    throwInvariantViolation(dump.str());
}

void
Auditor::checkSkipWindow(Cycle begin, Cycle end) const
{
    if (end <= begin)
        return;
    std::string violations;
    for (const auto& sm : sms)
        violations += sm->auditSkippedWindow(begin, end);
    // The memory system must not have had an event maturing inside the
    // window either, or responses (and the issues they enable) were
    // lost to the jump.
    if (memsys.nextEventCycle() < end) {
        std::ostringstream out;
        out << "memory system has an event at cycle "
            << memsys.nextEventCycle() << " inside the skipped window ["
            << begin << ", " << end << ")\n";
        violations += out.str();
    }
    if (violations.empty()) {
        ++passes_;
        return;
    }
    std::ostringstream dump;
    dump << "fast-forward skip audit failed for window [" << begin << ", "
         << end << "):\n"
         << violations << "--- state dump ---\n";
    for (const auto& sm : sms)
        dump << sm->stallReport(begin);
    throwInvariantViolation(dump.str());
}

} // namespace apres
