/**
 * @file
 * Top-level GPU simulator: N SMs over a shared memory system.
 *
 * A Gpu instance is built from a GpuConfig and a Kernel, runs the
 * kernel to completion (or to the cycle cap) and returns a RunResult
 * with every statistic the paper's evaluation plots: IPC, the L1
 * hit/miss breakdown, prefetch effectiveness and early evictions,
 * memory latency, interconnect traffic and dynamic energy.
 */

#ifndef APRES_SIM_GPU_HPP
#define APRES_SIM_GPU_HPP

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/trace.hpp"
#include "core/sm.hpp"
#include "energy/energy_model.hpp"
#include "isa/kernel.hpp"
#include "mem/memory_system.hpp"
#include "sim/config.hpp"

namespace apres {

class Auditor;

/** Everything a finished simulation reports. */
struct RunResult
{
    bool completed = false;      ///< false when maxCycles hit first

    /**
     * Job outcome under fault-isolated sweeps: "ok", "error" (the
     * simulation threw), "timeout" (the per-job wall-clock deadline
     * expired) or "skipped" (the sweep aborted before this job ran). A
     * directly-run Gpu always reports "ok" — failures propagate as
     * exceptions; the sweep runner converts them into these rows.
     */
    std::string status = "ok";
    std::string errorKind;   ///< SimError kind name, empty when ok
    std::string errorDetail; ///< error message, empty when ok
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;            ///< GPU-wide instructions per cycle

    CacheStats l1;               ///< summed over SMs
    CacheStats l2;               ///< summed over partitions
    TrafficStats traffic;

    double avgLoadLatency = 0.0; ///< per warp-load completion latency
    double avgMissLatency = 0.0; ///< per line miss round trip

    std::uint64_t prefetchesRequested = 0;
    std::uint64_t prefetchesIssued = 0;

    std::uint64_t idleCycles = 0;   ///< summed over SMs
    std::uint64_t mshrReplays = 0;  ///< LSU retries on MSHR-full

    std::uint64_t dramRequests = 0;  ///< summed over partitions
    std::uint64_t dramRowHits = 0;   ///< row-buffer hits (row model only)
    std::uint64_t dramRowMisses = 0; ///< row-buffer misses

    /**
     * Policy statistics, reported by the scheduler/prefetcher
     * instances themselves (Scheduler::reportStats /
     * Prefetcher::reportStats) and summed over SMs. Keys are dotted
     * ("ccws.events", "laws.groupsFormed", "sap.strideMatches");
     * empty for policies that report nothing.
     */
    StatSet policy;

    /**
     * Per-SM breakdowns under "sm<i>."-prefixed keys
     * ("sm0.instructions", "sm3.l1.missRate", ...); lets results
     * expose load imbalance without a side channel.
     */
    StatSet perSm;

    /**
     * The full configuration that produced this result, serialized
     * through ConfigRegistry::snapshot() (dotted key -> value string).
     * Makes every result self-describing.
     */
    std::map<std::string, std::string> config;

    EnergyBreakdown energy;

    /** L1 demand hit rate. */
    double l1HitRate() const;

    /** Early eviction ratio (Fig. 4 / Fig. 12 definition). */
    double earlyEvictionRatio() const { return l1.earlyEvictionRatio(); }

    /** Flatten everything into dotted-name scalars. */
    StatSet toStatSet() const;
};

/**
 * The simulator.
 */
class Gpu
{
  public:
    /**
     * @param config simulation configuration (copied)
     * @param kernel kernel run by every SM (must outlive the Gpu)
     */
    Gpu(const GpuConfig& config, const Kernel& kernel);
    ~Gpu();

    Gpu(const Gpu&) = delete;
    Gpu& operator=(const Gpu&) = delete;

    /**
     * Run to completion (or the cycle cap) and collect results.
     *
     * With GpuConfig::fastForward (default on) the loop is
     * event-driven: whenever no SM issued, it jumps straight to the
     * next cycle anything can happen (memory response, L1-hit
     * completion, scoreboard maturity, cycle cap) and credits the
     * skipped idle cycles in bulk. Every statistic is bitwise
     * identical to the naive cycle-by-cycle loop, which remains
     * available as the oracle via fastForward=false.
     *
     * With GpuConfig::shards > 1 (or 0 = one per hardware core) the
     * SMs are split across worker threads and stepped in deterministic
     * epochs bounded by the minimum memory response latency: inside an
     * epoch SMs only stage memory requests, and the coordinator drains
     * the staged traffic in canonical (cycle, SM, program) order at
     * the epoch barrier — exactly the order the serial engine would
     * have processed it. Statistics stay bitwise identical to the
     * serial engine for every shard count (the equivalence suite pins
     * this); the serial loop remains the oracle via shards=1.
     *
     * Throws SimError(kDeadlock) when GpuConfig::watchdogCycles pass
     * with zero instructions issued and zero memory responses
     * delivered, and SimError(kInvariant) when auditing is on and a
     * structural invariant breaks.
     */
    RunResult run();

    /**
     * Install a hook called every ~16K simulated cycles (and around
     * every fast-forward skip). The sweep runner uses it for
     * cooperative per-job wall-clock deadlines: the hook throws to
     * abort the run. Pass nullptr to clear.
     */
    void setInterruptCheck(std::function<void()> hook)
    {
        interruptCheck_ = std::move(hook);
    }

    /**
     * Run one invariant audit at the current cycle (no-op unless
     * GpuConfig::audit built an auditor). Throws SimError(kInvariant)
     * on violation; fault-injection tests corrupt a structure and call
     * this.
     */
    void auditNow();

    /** Audit passes completed without a violation (0 when audit off). */
    std::uint64_t auditPasses() const;

    /** Per-warp stall report over all SMs (deadlock diagnostics). */
    std::string stallReport() const;

    /**
     * Advance at most @p cycles (for incremental-driving tests and the
     * timeline recorder), stopping early when the kernel drains — so
     * now() after the final step is the true finish cycle, exactly as
     * run() would report, instead of the next interval boundary.
     */
    void step(Cycle cycles);

    /** True when all SMs drained. */
    bool done() const;

    /** Current cycle. */
    Cycle now() const { return cycle; }

    /** The configured cycle cap. */
    Cycle maxCycles() const { return cfg.maxCycles; }

    /** Collect results at the current point in time. */
    RunResult collect() const;

    /** SM @p index (for white-box tests). */
    const Sm& sm(int index) const { return *sms.at(static_cast<std::size_t>(index)); }

    /** TEST HOOK: mutable SM @p index for fault-injection tests. */
    Sm& smForTest(int index)
    {
        return *sms.at(static_cast<std::size_t>(index));
    }

    /** TEST HOOK: mutable scheduler of SM @p index. */
    Scheduler& schedulerForTest(int index)
    {
        return *schedulers.at(static_cast<std::size_t>(index));
    }

    /** TEST HOOK: prefetcher of SM @p index (null when "none"). */
    Prefetcher* prefetcherForTest(int index)
    {
        return prefetchers.at(static_cast<std::size_t>(index)).get();
    }

    /** The shared memory side. */
    const MemorySystem& memorySystem() const { return *memsys; }

    /**
     * This simulation's private random stream, seeded from
     * GpuConfig::seed. Stochastic model components must draw from it
     * (and only it) so concurrent simulations stay independent and a
     * run remains a pure function of its configuration.
     */
    Rng& rng() { return rng_; }

    /** The event tracer (null unless GpuConfig::trace). */
    const Tracer* tracer() const { return tracer_.get(); }

    /**
     * The metrics registry (null unless GpuConfig::metrics). Under the
     * parallel engine each SM samples into its own registry; this
     * accessor then returns a freshly merged snapshot (rebuilt per
     * call, owned by the Gpu).
     */
    const MetricsRegistry* metrics() const;

    /** Emit the Chrome trace JSON; no-op when tracing is off. */
    void writeTrace(std::ostream& os) const;

    /**
     * Write the trace to GpuConfig::traceFile; no-op when tracing is
     * off or no file is configured. run() calls this on completion;
     * timeline/step drivers call it themselves. Throws
     * SimError(kConfig) when the file cannot be opened.
     */
    void writeTraceFile() const;

  private:
    [[noreturn]] void reportDeadlock(Cycle last_progress) const;

    /**
     * GpuConfig::shards with 0 resolved to the hardware thread count,
     * clamped to [1, numSms].
     */
    int resolveShardCount() const;

    /** The classic cycle loop (shards == 1): the oracle engine. */
    void runSerialLoop();

    /**
     * The sharded epoch engine (shards > 1): SMs split across
     * @p shard_count threads, stepped in deterministic epochs with all
     * memory traffic staged per epoch and drained in canonical order
     * at the barrier. Bitwise identical statistics to runSerialLoop().
     */
    void runParallelLoop(int shard_count);

    GpuConfig cfg;
    Rng rng_;
    const Kernel& kernel;
    std::unique_ptr<MemorySystem> memsys;
    std::vector<std::unique_ptr<Scheduler>> schedulers;
    std::vector<std::unique_ptr<Prefetcher>> prefetchers;
    std::vector<std::unique_ptr<Sm>> sms;
    std::unique_ptr<Auditor> auditor_; ///< built when cfg.audit
    std::unique_ptr<Tracer> tracer_;   ///< built when cfg.trace

    /** Global metrics registry (cfg.metrics on, serial engine). */
    std::unique_ptr<MetricsRegistry> metrics_;

    /**
     * Per-SM metrics registries (cfg.metrics on, shards > 1): each SM
     * samples into its own registry so worker threads never contend;
     * merged on demand by metrics(). Sample values are integral, so
     * the merged double sums are exact and bitwise identical to the
     * serial engine's interleaved accumulation.
     */
    std::vector<std::unique_ptr<MetricsRegistry>> smMetrics_;

    /** Scratch for metrics(): the last merged per-SM snapshot. */
    mutable std::unique_ptr<MetricsRegistry> mergedMetrics_;
    std::function<void()> interruptCheck_;
    Cycle cycle = 0;

    /**
     * done() cache: SMs [0, firstActiveSm_) have drained. Sm::done()
     * is monotone, so this only ever advances (mutable: done() is a
     * const query whose cost the cache amortizes to O(1)).
     */
    mutable std::size_t firstActiveSm_ = 0;
};

/** Convenience: configure, run, return results. */
RunResult simulate(const GpuConfig& config, const Kernel& kernel);

} // namespace apres

#endif // APRES_SIM_GPU_HPP
