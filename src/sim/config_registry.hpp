/**
 * @file
 * Dotted-key string access to every GpuConfig field.
 *
 * One override path for all three front ends:
 *
 *  - CLI:          apres_sim --set l1.sizeBytes=65536
 *  - config files: apres_sim --config paper.cfg   (key = value lines)
 *  - programmatic: applyOverrides(cfg, {{"l1.sizeBytes", "65536"}})
 *
 * The registry binds each key to a typed setter/getter over one
 * GpuConfig instance. Parsing is strict (parse.hpp): garbage, wrong
 * types, out-of-range and unknown keys throw SimError(kConfig) with
 * the offending key in the message, never silently ignored.
 * Structural keys additionally carry upper bounds, so an absurd value
 * (a 2^31-way cache, a zero-cycle watchdog) is rejected at parse time
 * instead of failing deep inside a run.
 * snapshot() serializes the full configuration back to
 * strings, which is how results echo the configuration that produced
 * them (RunResult::config, the --json output).
 *
 * The registry holds references into the config it was built over and
 * must not outlive it; construction is cheap, so build one on demand.
 */

#ifndef APRES_SIM_CONFIG_REGISTRY_HPP
#define APRES_SIM_CONFIG_REGISTRY_HPP

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "mem/cache.hpp"
#include "sim/config.hpp"

namespace apres {

/**
 * How a config key affects a simulation's outcome.
 *
 * The split is what makes content-addressed result caching sound:
 * the cache key hashes only the semantic keys, so flipping a purely
 * observational knob (tracing, metrics, auditing) still hits the
 * cache. Observation purity is not an assumption — it is pinned by
 * FfEquivalence.ObservationIsPure and the ff-equivalence matrix,
 * which prove stats are bitwise identical with these knobs on or off.
 */
enum class ConfigKeyKind {
    /** Changes the simulated machine or workload: part of results. */
    kSemantic,

    /**
     * Pure observation or engine selection: never changes a single
     * statistic (sim.trace*, sim.metrics, sim.audit*, the proven
     * bitwise-equivalent sim.fastForward, and sim.watchdogCycles,
     * which only converts a hang into an error — and errors are
     * never cached).
     */
    kObservation,
};

/**
 * String-keyed view over one GpuConfig.
 */
class ConfigRegistry
{
  public:
    /** Register every field of @p config (must outlive the registry). */
    explicit ConfigRegistry(GpuConfig& config);

    /**
     * Set @p key from @p value. Returns false and fills @p error
     * (never null) on unknown key, parse failure or range violation;
     * the config is untouched in that case.
     */
    bool trySet(const std::string& key, const std::string& value,
                std::string* error);

    /** Like trySet, but throws SimError(kConfig) on any failure. */
    void set(const std::string& key, const std::string& value);

    /**
     * Current value of @p key as a string; throws SimError(kConfig)
     * on unknown key.
     */
    std::string get(const std::string& key) const;

    /** True when @p key is registered. */
    bool has(const std::string& key) const;

    /** All registered keys, sorted. */
    std::vector<std::string> keys() const;

    /**
     * Apply one "key=value" assignment (spaces around '=' allowed);
     * throws SimError(kConfig) on malformed input.
     */
    void applyAssignment(const std::string& assignment);

    /**
     * Load a GPGPU-Sim style config file: one `key = value` per line,
     * '#' starts a comment, blank lines ignored. Throws
     * SimError(kConfig) on an unreadable file or any
     * malformed/unknown/invalid line (with the file name and line
     * number).
     */
    void loadFile(const std::string& path);

    /** Every key with its current value, sorted by key. */
    std::map<std::string, std::string> snapshot() const;

    /**
     * Only the semantic keys with their current values, sorted by
     * key: the canonical input of a result-cache key. See
     * ConfigKeyKind for why observation keys are excluded.
     */
    std::map<std::string, std::string> semanticSnapshot() const;

    /** Classification of @p key; throws SimError(kConfig) if unknown. */
    ConfigKeyKind keyKind(const std::string& key) const;

  private:
    struct Entry
    {
        std::function<bool(const std::string&, std::string*)> set;
        std::function<std::string()> get;
        ConfigKeyKind kind = ConfigKeyKind::kSemantic;
    };

    /**
     * Mark @p keys observation-only (they must already be
     * registered; a typo is fatal so the list can never drift from
     * the real key namespace).
     */
    void markObservation(std::initializer_list<const char*> keys);

    void addEntry(const std::string& key, Entry entry);
    void addInt(const std::string& key, int& field, int min_value,
                int max_value = std::numeric_limits<int>::max());
    void addU32(const std::string& key, std::uint32_t& field,
                std::uint32_t min_value,
                std::uint32_t max_value =
                    std::numeric_limits<std::uint32_t>::max());
    void addU64(const std::string& key, std::uint64_t& field,
                std::uint64_t min_value,
                std::uint64_t max_value =
                    std::numeric_limits<std::uint64_t>::max());
    void addDouble(const std::string& key, double& field, double min_value,
                   double max_value);
    void addBool(const std::string& key, bool& field);
    void addString(const std::string& key, std::string& field);
    void addPolicyName(const std::string& key, std::string& field,
                       bool (*known)(const std::string&),
                       std::vector<std::string> (*names)());
    void addReplacement(const std::string& key, ReplacementPolicy& field);

    std::map<std::string, Entry> entries_;
};

/**
 * Convenience for drivers: apply string overrides to @p config
 * through a temporary registry. Throws SimError(kConfig) on any
 * invalid override.
 */
void applyOverrides(
    GpuConfig& config,
    const std::vector<std::pair<std::string, std::string>>& overrides);

} // namespace apres

#endif // APRES_SIM_CONFIG_REGISTRY_HPP
