/**
 * @file
 * Timeline recorder implementation.
 */

#include "timeline.hpp"

#include <algorithm>
#include <string>

#include "common/log.hpp"

namespace apres {

TimelineRecorder::TimelineRecorder(Cycle interval) : interval_(interval)
{
    // A zero interval would make record() step the Gpu by 0 cycles
    // forever; reject it up front instead of hanging in release builds.
    if (interval_ < 1)
        fatal("timeline interval must be >= 1 (got " +
              std::to_string(interval_) + ")");
}

RunResult
TimelineRecorder::record(Gpu& gpu)
{
    std::uint64_t last_instr = 0;
    std::uint64_t last_accesses = 0;
    std::uint64_t last_misses = 0;
    std::uint64_t last_prefetches = 0;

    while (!gpu.done() && gpu.now() < gpu.maxCycles()) {
        // The final interval may be cut short by the cycle cap (or by
        // the kernel finishing mid-window): never step past maxCycles,
        // and normalize the interval IPC by the cycles actually
        // simulated so the partial tail row is not diluted.
        const Cycle chunk =
            std::min<Cycle>(interval_, gpu.maxCycles() - gpu.now());
        const Cycle start = gpu.now();
        gpu.step(chunk);
        const Cycle elapsed = gpu.now() - start;
        if (elapsed == 0)
            break; // no forward progress: avoid a 0-width sample
        const RunResult snap = gpu.collect();

        TimelineSample sample;
        sample.cycleEnd = gpu.now();
        sample.intervalIpc =
            static_cast<double>(snap.instructions - last_instr) /
            static_cast<double>(elapsed);
        const std::uint64_t accesses =
            snap.l1.demandAccesses - last_accesses;
        const std::uint64_t misses = snap.l1.demandMisses - last_misses;
        sample.intervalMissRate = accesses
            ? static_cast<double>(misses) / static_cast<double>(accesses)
            : 0.0;
        sample.intervalPrefetches =
            snap.prefetchesIssued - last_prefetches;
        sample.cumulativeIpc = snap.ipc;
        samples_.push_back(sample);

        last_instr = snap.instructions;
        last_accesses = snap.l1.demandAccesses;
        last_misses = snap.l1.demandMisses;
        last_prefetches = snap.prefetchesIssued;
    }

    RunResult result = gpu.collect();
    result.completed = gpu.done();
    return result;
}

void
TimelineRecorder::toCsv(CsvWriter& csv) const
{
    for (const TimelineSample& s : samples_) {
        StatSet row;
        row.set("cycleEnd", static_cast<double>(s.cycleEnd));
        row.set("intervalIpc", s.intervalIpc);
        row.set("intervalMissRate", s.intervalMissRate);
        row.set("intervalPrefetches",
                static_cast<double>(s.intervalPrefetches));
        row.set("cumulativeIpc", s.cumulativeIpc);
        csv.addRow(std::to_string(s.cycleEnd), row);
    }
}

} // namespace apres
