/**
 * @file
 * Per-warp architectural and scoreboard state.
 */

#ifndef APRES_CORE_WARP_HPP
#define APRES_CORE_WARP_HPP

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.hpp"

namespace apres {

/** Scoreboard sentinel: register waits on an outstanding load. */
inline constexpr Cycle kNeverReady = std::numeric_limits<Cycle>::max();

/**
 * Runtime state of one warp on an SM.
 *
 * The scoreboard is a per-register ready cycle: ALU results become
 * ready a fixed latency after issue, while load destinations are
 * pinned at @ref kNeverReady until the LSU reports data return.
 */
struct WarpRuntime
{
    WarpId id = kInvalidWarp;

    /** Index of the next instruction in the kernel's code vector. */
    int pcIndex = 0;

    /** Current loop iteration (increments at the back-edge branch). */
    std::uint64_t iter = 0;

    /**
     * Iteration bound of the current job (block). The back-edge falls
     * through once iter reaches this; iterations continue counting
     * across jobs so address streams keep advancing.
     */
    std::uint64_t iterEnd = 0;

    /**
     * Remaining kernel instances (thread blocks) this warp slot will
     * run. GPUs oversubscribe blocks: a finished warp's slot is
     * refilled by a new block until the grid drains, which keeps the
     * SM occupied and makes "oldest warp" a rotating property.
     */
    int jobsRemaining = 1;

    /**
     * Launch order of the current job; schedulers using "oldest warp"
     * order by this, so refilled slots rejoin as the youngest.
     */
    std::uint64_t ageStamp = 0;

    /** True once the warp executed kExit with no jobs remaining. */
    bool finished = false;

    /** True while parked at a barrier. */
    bool atBarrier = false;

    /** Cycle at which each architectural register becomes readable. */
    std::vector<Cycle> regReadyAt;

    /** Number of loads in flight for this warp. */
    int outstandingLoads = 0;

    /** Dynamic instructions issued by this warp. */
    std::uint64_t instructionsIssued = 0;

    /** Cycle of the last instruction issue (scheduler tie-breaks). */
    Cycle lastIssueCycle = 0;

    /** True when a register is ready at @p now. kNoReg is ready. */
    bool
    regReady(int reg, Cycle now) const
    {
        return reg < 0 || regReadyAt[static_cast<std::size_t>(reg)] <= now;
    }
};

} // namespace apres

#endif // APRES_CORE_WARP_HPP
