/**
 * @file
 * Streaming Multiprocessor model.
 *
 * One SM owns 48 warp contexts, a scoreboard, one warp scheduler, an
 * optional prefetcher, a private L1 data cache and an LSU. Each cycle
 * it computes the ready-warp set, lets the scheduler pick one warp and
 * issues a single instruction (Section II's baseline issue model).
 *
 * The SM is also the integration point of the APRES feedback loops: it
 * forwards LSU access results to the scheduler (LAWS group
 * prioritization, CCWS scoring) and to the prefetcher (STR/SLD/SAP),
 * and exposes the PrefetchIssuer the prefetchers inject requests
 * through.
 */

#ifndef APRES_CORE_SM_HPP
#define APRES_CORE_SM_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/lsu.hpp"
#include "core/shared_memory.hpp"
#include "core/prefetcher.hpp"
#include "core/scheduler.hpp"
#include "core/warp.hpp"
#include "isa/kernel.hpp"
#include "mem/cache.hpp"
#include "mem/memory_system.hpp"

namespace apres {

/** Static configuration of one SM. */
struct SmConfig
{
    int warpsPerSm = 48;    ///< concurrent warp contexts (Table III)
    int warpsPerBlock = 48; ///< barrier scope (blocks of warps)
    /**
     * Kernel instances (blocks) run per warp slot. GPUs launch more
     * blocks than fit; finished warps are refilled, which keeps SMs
     * occupied and rotates scheduler age priorities.
     */
    int jobsPerWarp = 4;
    /**
     * Prefetches are dropped while L1 MSHR occupancy is at or above
     * this fraction: when the memory system is saturated, a prefetch
     * can only displace demand bandwidth (the adaptive issue policy
     * Section V-E credits for keeping traffic flat).
     */
    double prefetchMshrGate = 0.85;
    CacheConfig l1;         ///< L1 data cache geometry
    LsuConfig lsu;          ///< LSU sizing and hit latency
    SharedMemConfig sharedMem; ///< scratchpad timing
};

/** Per-SM counters. */
struct SmStats
{
    std::uint64_t cycles = 0;
    std::uint64_t issuedInstructions = 0;
    std::uint64_t issuedLoads = 0;
    std::uint64_t issuedStores = 0;
    std::uint64_t idleCycles = 0;      ///< no warp could issue
    std::uint64_t prefetchesRequested = 0;
    std::uint64_t prefetchesIssued = 0;///< accepted into the memory system
    std::uint64_t sharedAccesses = 0;  ///< scratchpad warp accesses
    std::uint64_t sharedConflictCycles = 0; ///< bank-conflict stalls

    /** Instructions per cycle of this SM. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(issuedInstructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/**
 * Read-only view of SM state offered to schedulers and prefetchers.
 */
class SmContext
{
  public:
    virtual ~SmContext() = default;

    /** This SM's ID. */
    virtual SmId id() const = 0;

    /** Number of warp contexts. */
    virtual int numWarps() const = 0;

    /** Runtime state of warp @p warp. */
    virtual const WarpRuntime& warpState(WarpId warp) const = 0;

    /** The kernel all warps execute. */
    virtual const Kernel& kernel() const = 0;

    /** This SM's L1 data cache (for saturation heuristics). */
    virtual const Cache& l1() const = 0;

    /** Depth of the LSU's op queue. */
    virtual std::size_t lsuQueueDepth() const = 0;

    /** True when @p warp's next instruction is a load or store. */
    virtual bool nextIsMemory(WarpId warp) const = 0;

    /**
     * Mutable L1, for schedulers that install cache observers (CCWS
     * hooks the eviction stream to feed its victim tag arrays).
     */
    virtual Cache& l1Mutable() = 0;
};

/**
 * The SM model.
 */
class Sm final : public SmContext,
                 public LsuOwner,
                 public MemClient,
                 public PrefetchIssuer
{
  public:
    /**
     * @param sm_id      this SM's ID (also its MemClient slot)
     * @param config     SM sizing
     * @param kernel     kernel executed by all warps (outlives the SM)
     * @param scheduler  warp scheduler (owned by caller, outlives SM)
     * @param prefetcher optional prefetcher, may be nullptr
     * @param memsys     shared memory side (outlives the SM)
     */
    Sm(SmId sm_id, const SmConfig& config, const Kernel& kernel,
       Scheduler& scheduler, Prefetcher* prefetcher, MemorySystem& memsys);

    /** Advance one cycle. @return true when an instruction issued. */
    bool tick(Cycle now);

    /**
     * Credit @p cycles provably issue-free cycles in bulk — the
     * fast-forward path's stand-in for that many idle tick() calls.
     * Statistics advance exactly as the skipped ticks would have.
     *
     * @pre nextWakeup() returned a cycle past the skipped range (the
     *      SM could not have issued, nor the LSU progressed, in it).
     */
    void skipIdle(Cycle cycles);

    /**
     * Earliest cycle >= @p next at which this SM might do any work:
     * @p next itself while the LSU is busy or warp state changed since
     * the last empty ready scan, otherwise the minimum of the stalled
     * warps' register-ready cycles and the LSU's pending hit events
     * (kNoPendingEvent when it can only be woken externally, i.e. by a
     * memory response). Cycles before the returned one are provably
     * issue-free, which is the invariant Gpu::run's fast-forward skip
     * relies on.
     */
    Cycle nextWakeup(Cycle next) const;

    /**
     * Enable the fast-forward support machinery (the incremental
     * ready-scan cache consulted by tick() and nextWakeup()). Off by
     * default so a directly-driven Sm behaves like the naive oracle;
     * Gpu enables it according to GpuConfig::fastForward.
     */
    void setFastForward(bool on) { fastForward_ = on; }

    /**
     * Install observation sinks (either may be null = off) on this SM
     * and forward them to its LSU and L1. Pure observation: emitting
     * events/samples never changes simulation state.
     */
    void setObservability(Tracer* tracer, MetricsRegistry* metrics);

    /**
     * True when all warps finished and no memory op is in flight.
     * Monotone: once an SM drained it never becomes busy again (no
     * issue source remains), which Gpu::done() exploits.
     */
    bool done() const;

    // SmContext
    SmId id() const override { return smId; }
    int numWarps() const override { return cfg.warpsPerSm; }
    const WarpRuntime& warpState(WarpId warp) const override;
    const Kernel& kernel() const override { return kernel_; }
    const Cache& l1() const override { return l1_; }
    std::size_t lsuQueueDepth() const override { return lsu_.queueDepth(); }
    bool nextIsMemory(WarpId warp) const override;
    Cache& l1Mutable() override { return l1_; }

    // LsuOwner
    void onAccessResult(const LoadAccessInfo& info) override;
    void onLoadComplete(WarpId warp, int dst_reg, Cycle now) override;

    // MemClient
    void memResponse(const MemRequest& req, Cycle now) override;

    // PrefetchIssuer
    bool issuePrefetch(Addr addr, Pc pc, WarpId target_warp) override;

    /** LSU counters. */
    const LsuStats& lsuStats() const { return lsu_.stats(); }

    /** SM counters. */
    const SmStats& stats() const { return stats_; }

    /**
     * Check this SM's structural invariants at cycle @p now; returns a
     * human-readable violation description, empty when everything
     * holds. Checked: the scoreboard (count of registers pinned at
     * kNeverReady must equal outstandingLoads per warp), barrier
     * bookkeeping (arrival counters must match the parked warps and a
     * complete barrier must have released), the L1-MSHR/memory-system
     * pairing (each L1 MSHR corresponds to one in-flight read; with
     * adaptive bypass off the counts are equal), and — under
     * fast-forward — the ready-scan cache (a "clean, asleep until
     * readyWakeAt_" claim is re-derived from scratch).
     */
    std::string auditInvariants(Cycle now) const;

    /**
     * Verify the fast-forward precondition over the just-skipped
     * window [@p begin, @p end): recompute from scratch that no warp
     * could have issued and no LSU event matured strictly before
     * @p end. Returns a violation description, empty when the skip
     * was sound.
     */
    std::string auditSkippedWindow(Cycle begin, Cycle end) const;

    /**
     * Multi-line stall report for deadlock diagnostics: per-warp
     * state (pc, opcode, stall reason), barrier arrival counts per
     * block, and LSU/MSHR occupancy.
     */
    std::string stallReport(Cycle now) const;

    /** Arrived-warp count of barrier @p block (tests/auditor). */
    int barrierArrivalCount(int block) const
    {
        return barrierArrivals.at(static_cast<std::size_t>(block));
    }

    /**
     * TEST HOOK: corrupt the ready-scan cache so the SM claims to be
     * asleep until @p fake_wake regardless of actual warp state. Used
     * by fault-injection tests to prove the auditor catches a
     * skipped-issueable-cycle bug; never call outside tests.
     */
    void debugForceReadyClean(Cycle fake_wake)
    {
        readyClean_ = true;
        readyCanAccept_ = lsu_.canAccept();
        readyWakeAt_ = fake_wake;
    }

  private:
    void collectReady(Cycle now, std::vector<WarpId>& out);
    bool warpReady(const WarpRuntime& warp, Cycle now) const;
    void issue(WarpId warp, Cycle now);
    void arriveBarrier(WarpId warp);
    void releaseBarrierIfComplete(std::size_t block);

    SmId smId;
    SmConfig cfg;
    const Kernel& kernel_;
    Scheduler& scheduler;
    Prefetcher* prefetcher;
    MemorySystem& memsys;
    Cache l1_;
    Lsu lsu_;
    std::vector<WarpRuntime> warps;
    std::vector<int> barrierArrivals; // per block
    std::vector<WarpId> readyScratch;
    std::uint64_t jobSeq = 0;
    Cycle now_ = 0;
    SmStats stats_;

    /** Warps not yet finished (makes done() O(1)). */
    int unfinishedWarps_ = 0;

    /** Fast-forward machinery enabled (Gpu sets from config). */
    bool fastForward_ = false;

    /** Observation sinks (null = off); lane = this SM's ID. */
    Tracer* tracer_ = nullptr;
    MetricsRegistry* metrics_ = nullptr;

    /**
     * Incremental ready-scan cache: when the last collectReady() came
     * back empty and no warp/scoreboard state changed since (no issue,
     * no load completion, no LSU-acceptance flip), the set stays empty
     * until readyWakeAt_, so tick() can skip the per-warp re-scan and
     * nextWakeup() can answer from the cached bound. Any mutation
     * clears readyClean_.
     */
    bool readyClean_ = false;
    bool readyCanAccept_ = true; ///< lsu_.canAccept() at scan time
    Cycle readyWakeAt_ = 0;      ///< earliest finite reg-ready cycle

    /**
     * Per-warp readiness memo. A warp's readiness between state
     * changes is a pure function of (pcIndex, the instruction's
     * registers' regReadyAt, lsu.canAccept, now); everything except
     * canAccept/now is frozen between the warp's own mutations, so
     * collectReady() caches the expensive part — the kernel fetch and
     * register scan — per warp and invalidates only at the mutation
     * sites (issue, load completion, barrier release, finish).
     * `inactive` mirrors finished/atBarrier so the hot scan never
     * dereferences the fat WarpRuntime for parked or finished warps.
     */
    struct WarpReadyMemo
    {
        Cycle regsReady = 0;      ///< max reg maturity (valid w/o load wait)
        bool valid = false;       ///< regsReady/waitsOnLoad/isMemory usable
        bool waitsOnLoad = false; ///< some register pinned at kNeverReady
        bool isMemory = false;    ///< instruction needs lsu.canAccept()
        bool inactive = false;    ///< finished or parked at a barrier
    };
    std::vector<WarpReadyMemo> readyMemo_;

    /**
     * Scan mask over readyMemo_: bit w set = warp w must be visited by
     * collectReady(). A clear bit is a *proof* that the warp cannot
     * become issueable through time alone — it is finished, parked at
     * a barrier, or waiting on a load — so the scan walks set bits
     * only (ctz iteration). Cleared lazily when a refreshed memo shows
     * waitsOnLoad; re-set at every event that could wake the warp
     * (issue, load completion, barrier release).
     */
    std::vector<std::uint64_t> scanMask_;

    void setScanBit(int w)
    {
        scanMask_[static_cast<std::size_t>(w) >> 6] |=
            std::uint64_t{1} << (w & 63);
    }
    void clearScanBit(int w)
    {
        scanMask_[static_cast<std::size_t>(w) >> 6] &=
            ~(std::uint64_t{1} << (w & 63));
    }
    bool scanBit(int w) const
    {
        return scanMask_[static_cast<std::size_t>(w) >> 6] >>
                   (w & 63) & 1;
    }

    void refreshReadyMemo(const WarpRuntime& warp, WarpReadyMemo& memo) const;
};

} // namespace apres

#endif // APRES_CORE_SM_HPP
