/**
 * @file
 * Load-Store Unit: per-SM memory pipeline front end.
 *
 * The LSU accepts one warp-level memory operation per cycle from the
 * issue stage, coalesces it into line requests and walks them through
 * the L1 at a configurable line rate (default 1 line/cycle, so a fully
 * uncoalesced load occupies the unit for 32 cycles). MSHR-full
 * outcomes replay the same line next cycle, which is safe because
 * address generation is stateless.
 *
 * The first line of each load carries the lowest-lane address; its L1
 * outcome is reported to the SM as the load's hit/miss result — the
 * feedback LAWS, CCWS and all prefetchers consume (paper Section IV-A:
 * the LSU sends warp ID, group and hit status to the scheduler).
 */

#ifndef APRES_CORE_LSU_HPP
#define APRES_CORE_LSU_HPP

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/lsu_structures.hpp"
#include "core/scheduler.hpp"
#include "mem/cache.hpp"
#include "mem/coalescer.hpp"
#include "mem/memory_system.hpp"

namespace apres {

/** Callbacks the LSU makes into its owning SM. */
class LsuOwner
{
  public:
    virtual ~LsuOwner() = default;

    /** First-line L1 outcome of a warp load (scheduler/prefetch feed). */
    virtual void onAccessResult(const LoadAccessInfo& info) = 0;

    /** All line requests of a warp load completed. */
    virtual void onLoadComplete(WarpId warp, int dst_reg, Cycle now) = 0;
};

/** LSU sizing and timing. */
struct LsuConfig
{
    int queueCapacity = 32;  ///< pending warp-level memory ops
    int linesPerCycle = 1;   ///< L1 accesses per cycle
    Cycle l1HitLatency = 28; ///< load-to-use latency on an L1 hit

    /**
     * Adaptive L1 bypass (off by default; a Section VI related-work
     * mechanism, not part of APRES): once a static load has proven to
     * be a pure stream — at least bypassMinAccesses executions with a
     * miss rate above bypassMissRate — its requests skip the L1
     * entirely, saving its lines from evicting reusable data and its
     * misses from occupying MSHRs.
     */
    bool adaptiveBypass = false;
    std::uint64_t bypassMinAccesses = 128;
    double bypassMissRate = 0.97;
};

/** Per-static-load counters (Table I's per-PC miss rates). */
struct PcLoadStats
{
    std::uint64_t accesses = 0; ///< warp-level load executions
    std::uint64_t hits = 0;     ///< first-line L1 hits

    double
    missRate() const
    {
        return accesses ? 1.0 - static_cast<double>(hits) /
                                    static_cast<double>(accesses)
                        : 0.0;
    }
};

/** LSU counters. */
struct LsuStats
{
    std::uint64_t loadsAccepted = 0;
    std::uint64_t storesAccepted = 0;
    std::uint64_t lineAccesses = 0;
    std::uint64_t mshrReplays = 0;
    std::uint64_t bypassedLines = 0; ///< adaptive-bypass line requests
    RunningStat loadLatency;    ///< per warp-load completion latency
    RunningStat missLatency;    ///< per line-request miss latency
    std::unordered_map<Pc, PcLoadStats> perPc; ///< per static load
};

/**
 * The load-store unit.
 */
class Lsu
{
  public:
    /**
     * @param sm      owning SM's ID (stamped into requests)
     * @param config  sizing and timing
     * @param owner   completion/feedback sink (the SM)
     * @param l1      this SM's L1 data cache
     * @param memsys  shared memory side
     */
    Lsu(SmId sm, const LsuConfig& config, LsuOwner& owner, Cache& l1,
        MemorySystem& memsys);

    /** True when another memory op can be accepted this cycle. */
    bool
    canAccept() const
    {
        return static_cast<int>(ops.size()) < cfg.queueCapacity;
    }

    /** Current op queue depth (MASCAR saturation heuristic input). */
    std::size_t queueDepth() const { return ops.size(); }

    /**
     * Accept a warp load.
     * @pre canAccept()
     */
    void pushLoad(WarpId warp, Pc pc, Addr base_addr, int lane_stride,
                  int dst_reg, Cycle now, int active_lanes = kWarpSize);

    /**
     * Accept a warp store (fire-and-forget, write-through).
     * @pre canAccept()
     */
    void pushStore(WarpId warp, Pc pc, Addr base_addr, int lane_stride,
                   Cycle now, int active_lanes = kWarpSize);

    /** Advance one cycle: deliver hit completions, process line reqs. */
    void tick(Cycle now);

    /** Memory-side response for a read this LSU issued. */
    void memResponse(const MemRequest& req, Cycle now);

    /** True when no op or outstanding load remains. */
    bool idle() const { return ops.empty() && tracks.empty(); }

    /** True when queued ops force the LSU to make progress each cycle. */
    bool busy() const { return !ops.empty(); }

    /**
     * Ready cycle of the earliest pending L1-hit completion;
     * kNoPendingEvent when none is queued (fast-forward wakeup input).
     */
    Cycle nextHitReady() const { return hitEvents.nextReady(); }

    /**
     * Install observation sinks (either may be null = off). The LSU
     * emits L1 hit/miss/bypass and MSHR-merge events and samples the
     * load-to-use and MSHR-occupancy histograms; pure observation.
     */
    void
    setObservability(Tracer* tracer, MetricsRegistry* metrics)
    {
        tracer_ = tracer;
        metrics_ = metrics;
        observing_ = tracer_ != nullptr || metrics_ != nullptr ||
            envTrace_;
    }

    /** Counters. */
    const LsuStats& stats() const { return stats_; }

  private:
    /** One warp-level memory operation in flight. */
    struct Op
    {
        std::uint64_t token = 0;
        WarpId warp = kInvalidWarp;
        Pc pc = kInvalidPc;
        bool isWrite = false;
        Addr baseAddr = kInvalidAddr; ///< exact lane-0 address
        std::vector<Addr> lines;  ///< coalesced line addresses
        std::size_t next = 0;     ///< next line to access
        Cycle accepted = 0;
    };

    /** Book-keeping for an outstanding load's completion. */
    struct Track
    {
        WarpId warp = kInvalidWarp;
        int dstReg = -1;
        int remaining = 0;
        Cycle accepted = 0;
    };

    void completeOne(std::uint64_t token, Cycle now);
    /**
     * Access the next line of @p op. Templating on the observation
     * sinks compiles every tracer/metrics/env-trace branch out of the
     * <false> instantiation — the one the hot measurement path runs —
     * instead of re-testing three null guards per line access.
     */
    template <bool kObserve> bool processLine(Op& op, Cycle now);
    /** The op-walk half of tick(), dispatched once per call. */
    template <bool kObserve> void tickOps(Cycle now);

    SmId smId;
    LsuConfig cfg;
    LsuOwner& owner;
    Cache& l1;
    MemorySystem& memsys;
    Coalescer coalescer;

    std::deque<Op> ops;
    /**
     * Outstanding-load tracks. The slab mints the token a load's line
     * requests carry (MemRequest::token, hit events), so completion is
     * an O(1) indexed lookup instead of a hash probe per line.
     */
    TokenSlab<Track> tracks;
    /**
     * Pending L1-hit completions. The hit latency is constant, so
     * completions mature in push order and a FIFO ring suffices.
     */
    HitEventRing hitEvents;
    LsuStats stats_;
    Tracer* tracer_ = nullptr;
    MetricsRegistry* metrics_ = nullptr;
    bool envTrace_ = false;  ///< APRES_TRACE debug stream requested
    bool observing_ = false; ///< any sink above is active
};

} // namespace apres

#endif // APRES_CORE_LSU_HPP
