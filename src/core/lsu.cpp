/**
 * @file
 * LSU implementation.
 */

#include "lsu.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace apres {

Lsu::Lsu(SmId sm, const LsuConfig& config, LsuOwner& owner_ref, Cache& l1_ref,
         MemorySystem& memsys_ref)
    : smId(sm), cfg(config), owner(owner_ref), l1(l1_ref),
      memsys(memsys_ref), coalescer(l1_ref.config().lineSize),
      envTrace_(std::getenv("APRES_TRACE") != nullptr),
      observing_(envTrace_)
{
    assert(cfg.queueCapacity >= 1);
    assert(cfg.linesPerCycle >= 1);
}

void
Lsu::pushLoad(WarpId warp, Pc pc, Addr base_addr, int lane_stride,
              int dst_reg, Cycle now, int active_lanes)
{
    assert(canAccept());
    Op op;
    op.warp = warp;
    op.pc = pc;
    op.isWrite = false;
    op.baseAddr = base_addr;
    op.lines = coalescer.coalesce(base_addr, lane_stride, active_lanes);
    op.accepted = now;
    ++stats_.loadsAccepted;

    Track track;
    track.warp = warp;
    track.dstReg = dst_reg;
    track.remaining = static_cast<int>(op.lines.size());
    track.accepted = now;
    op.token = tracks.insert(track);

    ops.push_back(std::move(op));
}

void
Lsu::pushStore(WarpId warp, Pc pc, Addr base_addr, int lane_stride,
               Cycle now, int active_lanes)
{
    assert(canAccept());
    Op op;
    op.token = 0; // stores are not tracked
    op.warp = warp;
    op.pc = pc;
    op.isWrite = true;
    op.baseAddr = base_addr;
    op.lines = coalescer.coalesce(base_addr, lane_stride, active_lanes);
    op.accepted = now;
    ++stats_.storesAccepted;
    ops.push_back(std::move(op));
}

void
Lsu::completeOne(std::uint64_t token, Cycle now)
{
    Track& track = tracks.at(token);
    assert(track.remaining > 0);
    if (--track.remaining == 0) {
        stats_.loadLatency.add(static_cast<double>(now - track.accepted));
        if (metrics_)
            metrics_->loadToUse.add(now - track.accepted);
        owner.onLoadComplete(track.warp, track.dstReg, now);
        tracks.erase(token);
    }
}

template <bool kObserve>
bool
Lsu::processLine(Op& op, Cycle now)
{
    const Addr line = op.lines[op.next];
    ++stats_.lineAccesses;

    if (op.isWrite) {
        MemRequest req;
        req.lineAddr = line;
        req.sm = smId;
        req.warp = op.warp;
        req.pc = op.pc;
        req.isWrite = true;
        req.issued = now;
        l1.storeAccess(req);
        memsys.submitWrite(req, now);
        ++op.next;
        return true;
    }

    MemRequest req;
    req.lineAddr = line;
    req.sm = smId;
    req.warp = op.warp;
    req.pc = op.pc;
    req.issued = now;
    req.token = op.token;

    // One perPc lookup per line access: the bypass check and the
    // first-line stat update share it. The first line of an op is
    // processed first, so the entry always exists by the time later
    // lines consult it.
    PcLoadStats* pc_stat = nullptr;
    if (cfg.adaptiveBypass || op.next == 0)
        pc_stat = &stats_.perPc[op.pc];

    // Adaptive bypass: proven pure streams skip the L1 entirely.
    if (cfg.adaptiveBypass && pc_stat->accesses >= cfg.bypassMinAccesses &&
        pc_stat->missRate() >= cfg.bypassMissRate) {
        req.bypassL1 = true;
        ++stats_.bypassedLines;
        if (kObserve && tracer_) {
            tracer_->record(smId, TraceEventType::kL1Bypass, now, op.pc,
                            op.warp, line);
        }
        if (op.next == 0) {
            LoadAccessInfo info;
            info.sm = smId;
            info.warp = op.warp;
            info.pc = op.pc;
            info.baseAddr = op.baseAddr;
            info.baseLineAddr = line;
            info.hit = false;
            info.now = now;
            owner.onAccessResult(info);
        }
        memsys.submitRead(req, now);
        ++op.next;
        return true;
    }

    // Sample MSHR occupancy as seen by the access about to probe the
    // L1 (one sample per warp load, on its first line).
    if (kObserve && metrics_ && op.next == 0)
        metrics_->mshrOccupancy.add(l1.mshrsInUse());

    const AccessOutcome outcome = l1.access(req);
    if (outcome == AccessOutcome::kMshrFull) {
        ++stats_.mshrReplays;
        return false; // replay this line next cycle
    }

    if (kObserve && tracer_) {
        if (op.next == 0) {
            tracer_->record(smId,
                            outcome == AccessOutcome::kHit
                                ? TraceEventType::kL1Hit
                                : TraceEventType::kL1Miss,
                            now, op.pc, op.warp, line);
        }
        if (outcome == AccessOutcome::kMergedMshr) {
            tracer_->record(smId, TraceEventType::kMshrMerge, now, op.pc,
                            op.warp, line);
        }
    }

    // Optional access trace for debugging (APRES_TRACE=1, SM 0 only).
    if (kObserve && envTrace_ && op.next == 0 && smId == 0) {
        std::fprintf(stderr, "%llu pc=%x w=%d addr=%llx %s\n",
                     static_cast<unsigned long long>(now), op.pc, op.warp,
                     static_cast<unsigned long long>(op.baseAddr),
                     outcome == AccessOutcome::kHit ? "H" : "M");
    }

    // The first (lowest-lane) line's outcome is the load's result as
    // seen by schedulers and prefetchers.
    if (op.next == 0) {
        ++pc_stat->accesses;
        if (outcome == AccessOutcome::kHit)
            ++pc_stat->hits;

        LoadAccessInfo info;
        info.sm = smId;
        info.warp = op.warp;
        info.pc = op.pc;
        info.baseAddr = op.baseAddr;
        info.baseLineAddr = line;
        info.hit = outcome == AccessOutcome::kHit;
        info.now = now;
        owner.onAccessResult(info);
    }

    switch (outcome) {
      case AccessOutcome::kHit:
        hitEvents.push(now + cfg.l1HitLatency, op.token);
        break;
      case AccessOutcome::kMiss:
        memsys.submitRead(req, now);
        break;
      case AccessOutcome::kMergedMshr:
        break; // completes with the pending fill
      case AccessOutcome::kMshrFull:
        break; // handled above
    }

    ++op.next;
    return true;
}

template <bool kObserve>
void
Lsu::tickOps(Cycle now)
{
    // Walk the front op's remaining lines at the configured rate.
    int budget = cfg.linesPerCycle;
    while (budget > 0 && !ops.empty()) {
        Op& op = ops.front();
        if (op.next >= op.lines.size()) {
            ops.pop_front();
            continue;
        }
        if (!processLine<kObserve>(op, now))
            break; // MSHR full: retry next cycle
        --budget;
        if (op.next >= op.lines.size())
            ops.pop_front();
    }
}

void
Lsu::tick(Cycle now)
{
    // Deliver matured L1-hit completions (FIFO order == ready order).
    while (hitEvents.nextReady() <= now) {
        const std::uint64_t token = hitEvents.front().token;
        hitEvents.pop();
        completeOne(token, now);
    }

    if (observing_)
        tickOps<true>(now);
    else
        tickOps<false>(now);
}

void
Lsu::memResponse(const MemRequest& req, Cycle now)
{
    if (!req.isPrefetch)
        stats_.missLatency.add(static_cast<double>(now - req.issued));
    if (req.bypassL1) {
        // Bypassed lines never touch the L1: complete directly.
        completeOne(req.token, now);
        return;
    }
    Cache::FillResult fill = l1.fill(req.lineAddr);
    for (const MemRequest& waiter : fill.waiters) {
        assert(!waiter.isWrite);
        completeOne(waiter.token, now);
    }
    // prefetchOnly fills have no waiters: the line is now resident and
    // flagged prefetched; nothing to complete.
}

} // namespace apres
