/**
 * @file
 * Warp scheduler interface.
 *
 * An SM owns exactly one Scheduler. Every cycle the SM computes the
 * set of *ready* warps (scoreboard-clean, not finished, not at a
 * barrier, structural resources available) and asks the scheduler to
 * pick one. Schedulers additionally receive the event stream they need
 * to maintain internal state: instruction issues, load issues (LAWS
 * group formation), and L1 access results (CCWS locality scoring, LAWS
 * hit/miss group prioritization).
 */

#ifndef APRES_CORE_SCHEDULER_HPP
#define APRES_CORE_SCHEDULER_HPP

#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace apres {

class MetricsRegistry;
class SmContext;
class StatSet;
class Tracer;

/** L1 access result of one warp load, reported by the LSU. */
struct LoadAccessInfo
{
    SmId sm = 0;
    WarpId warp = kInvalidWarp;
    Pc pc = kInvalidPc;
    Addr baseAddr = kInvalidAddr;     ///< exact lowest-lane byte address
    Addr baseLineAddr = kInvalidAddr; ///< lowest-lane line address
    bool hit = false;
    Cycle now = 0;
};

/**
 * Abstract warp scheduler.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /**
     * Bind to the SM that owns this scheduler. Called once before the
     * first cycle; schedulers size their per-warp state here.
     */
    virtual void attach(SmContext& sm) = 0;

    /**
     * Choose the next warp to issue.
     *
     * @param now   current cycle
     * @param ready warps eligible to issue this cycle (ascending IDs)
     * @return one element of @p ready, or kInvalidWarp to idle
     */
    virtual WarpId pick(Cycle now, const std::vector<WarpId>& ready) = 0;

    /** Called after every successful instruction issue. */
    virtual void notifyIssue(WarpId warp, const Instruction& instr,
                             Cycle now)
    {
        (void)warp;
        (void)instr;
        (void)now;
    }

    /**
     * Called when a global load is issued (before its L1 access). LAWS
     * forms warp groups here.
     */
    virtual void notifyLoadIssued(WarpId warp, Pc pc, Cycle now)
    {
        (void)warp;
        (void)pc;
        (void)now;
    }

    /** Called with the L1 hit/miss result of a warp load. */
    virtual void notifyAccessResult(const LoadAccessInfo& info)
    {
        (void)info;
    }

    /** Called once when a warp executes kExit with no jobs left. */
    virtual void notifyWarpFinished(WarpId warp) { (void)warp; }

    /**
     * Called when a finished warp's slot is refilled with a new block
     * (job). The warp rejoins as the youngest.
     */
    virtual void notifyWarpRelaunched(WarpId warp) { (void)warp; }

    /** Scheduler name for reports. */
    virtual const char* name() const = 0;

    /**
     * Accumulate this scheduler's policy statistics into @p out under
     * dotted keys (e.g. "ccws.events"). Called once per SM instance
     * when a run is collected; implementations must *accumulate*
     * (StatSet::accumulate) so per-SM instances sum GPU-wide. The
     * default reports nothing — stateless schedulers need no code.
     */
    virtual void reportStats(StatSet& out) const { (void)out; }

    /**
     * Install observation sinks (either may be null = off). Sinks are
     * strictly write-only from the scheduler's side: emitting an event
     * or a sample must never influence a scheduling decision, so
     * statistics stay bitwise identical with observation on or off.
     */
    void
    setObservability(Tracer* tracer, MetricsRegistry* metrics)
    {
        tracer_ = tracer;
        metrics_ = metrics;
    }

  protected:
    Tracer* tracer_ = nullptr;
    MetricsRegistry* metrics_ = nullptr;
};

} // namespace apres

#endif // APRES_CORE_SCHEDULER_HPP
