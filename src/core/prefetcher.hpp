/**
 * @file
 * Hardware prefetcher interface.
 *
 * Prefetchers observe the demand access stream (post-coalescing, one
 * event per warp load, carrying the lowest-lane address as in the
 * paper's SAP) and may issue line prefetches through the
 * PrefetchIssuer the SM provides. Issued prefetches allocate L1 MSHRs
 * and travel through L2/DRAM like demand misses; the cache model
 * accounts usefulness and early evictions.
 */

#ifndef APRES_CORE_PREFETCHER_HPP
#define APRES_CORE_PREFETCHER_HPP

#include "common/types.hpp"
#include "core/scheduler.hpp"

namespace apres {

/**
 * Callback the SM hands to prefetchers for issuing requests.
 */
class PrefetchIssuer
{
  public:
    virtual ~PrefetchIssuer() = default;

    /**
     * Issue a prefetch for the line containing @p addr.
     *
     * @param addr        target byte address
     * @param pc          static load the prediction derives from
     * @param target_warp warp expected to consume the line
     * @return true when the prefetch entered the memory system (false:
     *         dropped on hit/pending/MSHR-full)
     */
    virtual bool issuePrefetch(Addr addr, Pc pc, WarpId target_warp) = 0;
};

/**
 * Abstract prefetcher.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /** Bind to the owning SM (optional state sizing). */
    virtual void attach(SmContext& sm) { (void)sm; }

    /**
     * Observe one demand access result and optionally prefetch.
     */
    virtual void onAccess(const LoadAccessInfo& info,
                          PrefetchIssuer& issuer) = 0;

    /** Prefetcher name for reports. */
    virtual const char* name() const = 0;

    /**
     * Accumulate this prefetcher's policy statistics into @p out
     * under dotted keys (e.g. "sap.strideMatches"). Same contract as
     * Scheduler::reportStats: accumulate, one call per SM instance.
     */
    virtual void reportStats(StatSet& out) const { (void)out; }

    /**
     * Install observation sinks (either may be null = off); same
     * pure-observation contract as Scheduler::setObservability.
     */
    void
    setObservability(Tracer* tracer, MetricsRegistry* metrics)
    {
        tracer_ = tracer;
        metrics_ = metrics;
    }

  protected:
    Tracer* tracer_ = nullptr;
    MetricsRegistry* metrics_ = nullptr;
};

} // namespace apres

#endif // APRES_CORE_PREFETCHER_HPP
