/**
 * @file
 * SM implementation.
 */

#include "sm.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <string>

#include "common/bitutils.hpp"
#include "common/profile.hpp"
#include "common/trace.hpp"
#include "core/shared_memory.hpp"

namespace apres {

namespace {

const char*
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::kAlu: return "alu";
      case Opcode::kSfu: return "sfu";
      case Opcode::kLoad: return "load";
      case Opcode::kStore: return "store";
      case Opcode::kSharedLoad: return "sload";
      case Opcode::kBranch: return "branch";
      case Opcode::kBarrier: return "barrier";
      case Opcode::kExit: return "exit";
    }
    return "?";
}

} // namespace

Sm::Sm(SmId sm_id, const SmConfig& config, const Kernel& kernel,
       Scheduler& scheduler_ref, Prefetcher* prefetcher_ptr,
       MemorySystem& memsys_ref)
    : smId(sm_id), cfg(config), kernel_(kernel), scheduler(scheduler_ref),
      prefetcher(prefetcher_ptr), memsys(memsys_ref),
      l1_("sm" + std::to_string(sm_id) + ".l1", config.l1),
      lsu_(sm_id, config.lsu, *this, l1_, memsys_ref)
{
    assert(cfg.warpsPerSm >= 1);
    assert(cfg.warpsPerBlock >= 1);
    assert(cfg.jobsPerWarp >= 1);
    warps.resize(static_cast<std::size_t>(cfg.warpsPerSm));
    for (int w = 0; w < cfg.warpsPerSm; ++w) {
        WarpRuntime& warp = warps[static_cast<std::size_t>(w)];
        warp.id = w;
        warp.regReadyAt.assign(static_cast<std::size_t>(kernel.numRegs()),
                               0);
        warp.iterEnd = kernel.tripCount();
        warp.jobsRemaining = cfg.jobsPerWarp;
        warp.ageStamp = ++jobSeq;
    }
    readyMemo_.assign(static_cast<std::size_t>(cfg.warpsPerSm),
                      WarpReadyMemo{});
    scanMask_.assign((static_cast<std::size_t>(cfg.warpsPerSm) + 63) / 64,
                     0);
    for (int w = 0; w < cfg.warpsPerSm; ++w)
        setScanBit(w);
    unfinishedWarps_ = cfg.warpsPerSm;
    barrierArrivals.assign(
        static_cast<std::size_t>(divCeil(cfg.warpsPerSm, cfg.warpsPerBlock)),
        0);
    memsys.registerClient(smId, this);
    scheduler.attach(*this);
    if (prefetcher)
        prefetcher->attach(*this);
}

const WarpRuntime&
Sm::warpState(WarpId warp) const
{
    return warps.at(static_cast<std::size_t>(warp));
}

bool
Sm::nextIsMemory(WarpId warp) const
{
    const WarpRuntime& w = warpState(warp);
    if (w.finished)
        return false;
    return kernel_.at(static_cast<std::size_t>(w.pcIndex)).isMemory();
}

bool
Sm::warpReady(const WarpRuntime& warp, Cycle now) const
{
    if (warp.finished || warp.atBarrier)
        return false;
    const Instruction& instr =
        kernel_.at(static_cast<std::size_t>(warp.pcIndex));
    if (instr.isMemory() && !lsu_.canAccept())
        return false;
    for (const int src : instr.src) {
        if (!warp.regReady(src, now))
            return false;
    }
    // WAW: a destination still owed by an outstanding producer blocks
    // re-issue (loads in a loop reuse their destination register).
    if (!warp.regReady(instr.dst, now))
        return false;
    return true;
}

void
Sm::refreshReadyMemo(const WarpRuntime& warp, WarpReadyMemo& memo) const
{
    const Instruction& instr =
        kernel_.at(static_cast<std::size_t>(warp.pcIndex));
    Cycle regs_ready = 0;
    bool waits_on_load = false;
    const auto consider = [&](int reg) {
        if (reg < 0)
            return;
        const Cycle r = warp.regReadyAt[static_cast<std::size_t>(reg)];
        if (r == kNeverReady)
            waits_on_load = true;
        else if (r > regs_ready)
            regs_ready = r;
    };
    for (const int src : instr.src)
        consider(src);
    consider(instr.dst); // WAW: outstanding producer blocks re-issue
    memo.regsReady = regs_ready;
    memo.waitsOnLoad = waits_on_load;
    memo.isMemory = instr.isMemory();
    memo.valid = true;
}

void
Sm::collectReady(Cycle now, std::vector<WarpId>& out)
{
    out.clear();
    // One walk computes both the ready set and — for the empty case —
    // the earliest cycle a stalled warp's registers mature, which
    // seeds the ready-scan cache and the fast-forward wakeup. The walk
    // reads the 16-byte per-warp memo (see WarpReadyMemo) and only
    // falls back to the kernel-and-scoreboard scan for warps whose
    // state changed since their last refresh — readiness is a pure
    // function of that state, so the memo cannot drift from the
    // from-scratch scan this replaces.
    Cycle wake = kNeverReady;
    const bool can_accept = lsu_.canAccept();
    for (std::size_t word = 0; word < scanMask_.size(); ++word) {
        std::uint64_t bits = scanMask_[word];
        while (bits != 0) {
            const int w = static_cast<int>(word * 64) +
                std::countr_zero(bits);
            bits &= bits - 1;
            WarpReadyMemo& memo = readyMemo_[static_cast<std::size_t>(w)];
            if (!memo.valid)
                refreshReadyMemo(warps[static_cast<std::size_t>(w)], memo);
            if (memo.waitsOnLoad) {
                // Only a load completion can wake this warp, and that
                // re-sets the bit: drop it from future scans.
                clearScanBit(w);
                continue;
            }
            if (memo.regsReady <= now) {
                if (memo.isMemory && !can_accept)
                    continue; // woken by the LSU draining below capacity
                out.push_back(w);
            } else if (memo.regsReady < wake) {
                wake = memo.regsReady;
            }
        }
    }
    readyWakeAt_ = wake;
}

void
Sm::arriveBarrier(WarpId warp)
{
    const std::size_t block =
        static_cast<std::size_t>(warp) / cfg.warpsPerBlock;
    ++barrierArrivals[block];
    releaseBarrierIfComplete(block);
}

void
Sm::releaseBarrierIfComplete(std::size_t block)
{
    // Finished warps never arrive: the release threshold is the block's
    // live-warp count, recomputed here. Called both on arrival and when
    // a warp finishes (kExit): a warp exiting early while its siblings
    // wait lowers the threshold, and the barrier must release the
    // moment the remaining live warps have all arrived — counting live
    // warps only at arrival time deadlocks that block.
    const int first = static_cast<int>(block) * cfg.warpsPerBlock;
    const int last = std::min(first + cfg.warpsPerBlock, cfg.warpsPerSm);
    int live = 0;
    for (int w = first; w < last; ++w) {
        if (!warps[static_cast<std::size_t>(w)].finished)
            ++live;
    }
    if (barrierArrivals[block] > 0 && barrierArrivals[block] >= live) {
        barrierArrivals[block] = 0;
        for (int w = first; w < last; ++w) {
            WarpRuntime& warp = warps[static_cast<std::size_t>(w)];
            warp.atBarrier = false;
            WarpReadyMemo& memo = readyMemo_[static_cast<std::size_t>(w)];
            memo.inactive = warp.finished;
            memo.valid = false;
            if (memo.inactive)
                clearScanBit(w);
            else
                setScanBit(w);
        }
        readyClean_ = false; // released warps are issueable again
    }
}

void
Sm::issue(WarpId warp_id, Cycle now)
{
    WarpRuntime& warp = warps[static_cast<std::size_t>(warp_id)];
    const Instruction& instr =
        kernel_.at(static_cast<std::size_t>(warp.pcIndex));

    ++stats_.issuedInstructions;
    ++warp.instructionsIssued;
    warp.lastIssueCycle = now;
    if (tracer_) {
        tracer_->record(smId, TraceEventType::kWarpIssue, now, instr.pc,
                        warp_id, static_cast<std::uint64_t>(instr.op));
    }
    scheduler.notifyIssue(warp_id, instr, now);

    switch (instr.op) {
      case Opcode::kAlu:
      case Opcode::kSfu:
        warp.regReadyAt[static_cast<std::size_t>(instr.dst)] =
            now + static_cast<Cycle>(instr.latency);
        ++warp.pcIndex;
        break;

      case Opcode::kLoad: {
        const AddrCtx ctx{smId, warp_id, warp.iter};
        const Addr base = kernel_.addrGen(instr.addrGenId).base(ctx);
        warp.regReadyAt[static_cast<std::size_t>(instr.dst)] = kNeverReady;
        ++warp.outstandingLoads;
        lsu_.pushLoad(warp_id, instr.pc, base, instr.laneStride, instr.dst,
                      now, instr.activeLanes);
        ++stats_.issuedLoads;
        scheduler.notifyLoadIssued(warp_id, instr.pc, now);
        ++warp.pcIndex;
        break;
      }

      case Opcode::kStore: {
        const AddrCtx ctx{smId, warp_id, warp.iter};
        const Addr base = kernel_.addrGen(instr.addrGenId).base(ctx);
        lsu_.pushStore(warp_id, instr.pc, base, instr.laneStride, now,
                       instr.activeLanes);
        ++stats_.issuedStores;
        ++warp.pcIndex;
        break;
      }

      case Opcode::kSharedLoad: {
        const AddrCtx ctx{smId, warp_id, warp.iter};
        const Addr base = kernel_.addrGen(instr.addrGenId).base(ctx);
        const Cycle latency = sharedAccessLatency(
            base, instr.laneStride, instr.activeLanes, cfg.sharedMem);
        warp.regReadyAt[static_cast<std::size_t>(instr.dst)] =
            now + latency;
        ++stats_.sharedAccesses;
        stats_.sharedConflictCycles +=
            latency - cfg.sharedMem.baseLatency;
        ++warp.pcIndex;
        break;
      }

      case Opcode::kBranch:
        ++warp.iter;
        if (warp.iter < warp.iterEnd) {
            warp.pcIndex = instr.branchTarget;
        } else {
            ++warp.pcIndex;
        }
        break;

      case Opcode::kBarrier: {
        // Non-participants (divergent exit paths, partial-block tails)
        // step over the barrier without arriving.
        const int lane = static_cast<int>(warp_id) % cfg.warpsPerBlock;
        ++warp.pcIndex;
        if (instr.participantMask >> lane & 1) {
            warp.atBarrier = true;
            arriveBarrier(warp_id);
        }
        break;
      }

      case Opcode::kExit:
        if (--warp.jobsRemaining > 0) {
            // Refill the slot with the next block: restart the kernel
            // with iterations continuing, rejoining as the youngest.
            warp.pcIndex = 0;
            warp.iterEnd = warp.iter + kernel_.tripCount();
            warp.ageStamp = ++jobSeq;
            scheduler.notifyWarpRelaunched(warp_id);
        } else {
            warp.finished = true;
            --unfinishedWarps_;
            scheduler.notifyWarpFinished(warp_id);
            // A sibling barrier may now be complete: this warp's
            // arrival is no longer owed.
            releaseBarrierIfComplete(static_cast<std::size_t>(warp_id) /
                                     cfg.warpsPerBlock);
        }
        break;
    }

    // The issue changed this warp's pc and possibly its scoreboard:
    // its readiness memo must be re-derived on the next scan.
    // `inactive` reads the post-issue state — a kBarrier issue parks
    // the warp (unless its own arrival completed the barrier), a final
    // kExit retires it.
    WarpReadyMemo& memo = readyMemo_[static_cast<std::size_t>(warp_id)];
    memo.valid = false;
    memo.inactive = warp.finished || warp.atBarrier;
    if (memo.inactive)
        clearScanBit(warp_id);
    else
        setScanBit(warp_id);
}

bool
Sm::tick(Cycle now)
{
    prof::Scope profile(prof::Phase::kIssue);
    now_ = now;
    ++stats_.cycles;

    lsu_.tick(now); // load completions here clear readyClean_

    // Ready-scan cache: the last scan found nothing, nothing mutated
    // since, and no stalled register matures this cycle — the scan
    // would provably come back empty again, so skip it. Readiness
    // depends on the LSU only through the canAccept() boolean, hence
    // the flip check.
    if (fastForward_ && readyClean_ &&
        lsu_.canAccept() == readyCanAccept_ && now < readyWakeAt_) {
        ++stats_.idleCycles;
        return false;
    }

    collectReady(now, readyScratch);
    if (readyScratch.empty()) {
        readyClean_ = true;
        readyCanAccept_ = lsu_.canAccept();
        ++stats_.idleCycles;
        return false;
    }
    readyClean_ = false;
    const WarpId picked = scheduler.pick(now, readyScratch);
    if (picked == kInvalidWarp) {
        // The scheduler idled deliberately (e.g. CCWS throttling); its
        // decision can change with bare time, so never cache or skip
        // past this state.
        if (tracer_) {
            tracer_->record(smId, TraceEventType::kSchedulerIdle, now,
                            kInvalidPc, kInvalidWarp,
                            readyScratch.size());
        }
        ++stats_.idleCycles;
        return false;
    }
    issue(picked, now);
    return true;
}

void
Sm::setObservability(Tracer* tracer, MetricsRegistry* metrics)
{
    tracer_ = tracer;
    metrics_ = metrics;
    lsu_.setObservability(tracer, metrics);
    l1_.setMetrics(metrics);
}

void
Sm::skipIdle(Cycle cycles)
{
    // Exactly what `cycles` idle tick() calls would have recorded.
    stats_.cycles += cycles;
    stats_.idleCycles += cycles;
}

Cycle
Sm::nextWakeup(Cycle next) const
{
    if (!readyClean_)
        return next; // issued or mutated this cycle: state unknown
    if (lsu_.busy() || lsu_.canAccept() != readyCanAccept_)
        return next; // queued ops make progress every cycle
    const Cycle wake = std::min(readyWakeAt_, lsu_.nextHitReady());
    return std::max(wake, next);
}

bool
Sm::done() const
{
    return unfinishedWarps_ == 0 && lsu_.idle();
}

void
Sm::onAccessResult(const LoadAccessInfo& info)
{
    scheduler.notifyAccessResult(info);
    if (prefetcher)
        prefetcher->onAccess(info, *this);
}

void
Sm::onLoadComplete(WarpId warp_id, int dst_reg, Cycle now)
{
    WarpRuntime& warp = warps[static_cast<std::size_t>(warp_id)];
    warp.regReadyAt[static_cast<std::size_t>(dst_reg)] = now;
    assert(warp.outstandingLoads > 0);
    --warp.outstandingLoads;
    readyMemo_[static_cast<std::size_t>(warp_id)].valid = false;
    setScanBit(warp_id); // the load wait (if any) just resolved
    readyClean_ = false; // the warp may be issueable again
}

void
Sm::memResponse(const MemRequest& req, Cycle now)
{
    lsu_.memResponse(req, now);
}

bool
Sm::issuePrefetch(Addr addr, Pc pc, WarpId target_warp)
{
    ++stats_.prefetchesRequested;
    // Saturation gate: do not displace demand bandwidth.
    if (static_cast<double>(l1_.mshrsInUse()) >=
        cfg.prefetchMshrGate * l1_.config().numMshrs) {
        return false;
    }
    MemRequest req;
    req.lineAddr = alignDown(addr, l1_.config().lineSize);
    req.sm = smId;
    req.warp = target_warp;
    req.pc = pc;
    req.isPrefetch = true;
    req.issued = now_;
    if (l1_.prefetch(req) != PrefetchOutcome::kIssued)
        return false;
    memsys.submitRead(req, now_);
    ++stats_.prefetchesIssued;
    return true;
}

std::string
Sm::auditInvariants(Cycle now) const
{
    std::ostringstream out;

    // Scoreboard: registers pinned at kNeverReady are exactly the
    // destinations of loads in flight.
    for (const WarpRuntime& warp : warps) {
        int pinned = 0;
        for (const Cycle r : warp.regReadyAt)
            pinned += r == kNeverReady ? 1 : 0;
        if (pinned != warp.outstandingLoads) {
            out << "sm" << smId << " warp " << warp.id << ": " << pinned
                << " register(s) pinned at kNeverReady but outstandingLoads="
                << warp.outstandingLoads << "\n";
        }
    }

    // Barriers: the arrival counter of each block equals its parked
    // warps, and a complete barrier must already have released.
    for (std::size_t b = 0; b < barrierArrivals.size(); ++b) {
        const int first = static_cast<int>(b) * cfg.warpsPerBlock;
        const int last = std::min(first + cfg.warpsPerBlock, cfg.warpsPerSm);
        int parked = 0;
        int live = 0;
        for (int w = first; w < last; ++w) {
            const WarpRuntime& warp = warps[static_cast<std::size_t>(w)];
            parked += warp.atBarrier ? 1 : 0;
            live += warp.finished ? 0 : 1;
        }
        if (barrierArrivals[b] != parked) {
            out << "sm" << smId << " block " << b << ": barrier arrivals="
                << barrierArrivals[b] << " but " << parked
                << " warp(s) parked atBarrier\n";
        }
        if (barrierArrivals[b] > 0 && barrierArrivals[b] >= live) {
            out << "sm" << smId << " block " << b << ": barrier complete ("
                << barrierArrivals[b] << " arrived, " << live
                << " live) but not released\n";
        }
    }

    // Per-warp readiness memo: every valid entry must re-derive to the
    // same value from the kernel and scoreboard, and `inactive` must
    // mirror finished/atBarrier exactly (an over-eager inactive flag
    // would silently stop a live warp from ever issuing).
    for (int w = 0; w < cfg.warpsPerSm; ++w) {
        const WarpRuntime& warp = warps[static_cast<std::size_t>(w)];
        const WarpReadyMemo& memo = readyMemo_[static_cast<std::size_t>(w)];
        if (memo.inactive != (warp.finished || warp.atBarrier)) {
            out << "sm" << smId << " warp " << w << ": memo inactive="
                << memo.inactive << " but finished=" << warp.finished
                << " atBarrier=" << warp.atBarrier << "\n";
        }
        if (!scanBit(w) && !memo.inactive &&
            !(memo.valid && memo.waitsOnLoad)) {
            out << "sm" << smId << " warp " << w << ": dropped from the "
                << "ready scan without a proof it cannot issue (valid="
                << memo.valid << " waitsOnLoad=" << memo.waitsOnLoad
                << ")\n";
        }
        if (memo.valid && !memo.inactive) {
            WarpReadyMemo fresh;
            refreshReadyMemo(warp, fresh);
            if (fresh.regsReady != memo.regsReady ||
                fresh.waitsOnLoad != memo.waitsOnLoad ||
                fresh.isMemory != memo.isMemory) {
                out << "sm" << smId << " warp " << w
                    << ": stale readiness memo (regsReady "
                    << memo.regsReady << " vs " << fresh.regsReady
                    << ", waitsOnLoad " << memo.waitsOnLoad << " vs "
                    << fresh.waitsOnLoad << ", isMemory " << memo.isMemory
                    << " vs " << fresh.isMemory << ")\n";
            }
        }
    }

    // L1 tag array: set-index consistency, duplicate tags, and
    // resident-while-pending violations.
    out << l1_.auditTags();

    // L1 MSHRs pair one-to-one with in-flight memory-system reads;
    // adaptive-bypass requests skip the L1, so with bypass on the MSHR
    // count may only run below the in-flight count, never above.
    const std::uint64_t mshrs = l1_.mshrsInUse();
    const std::uint64_t inflight = memsys.outstandingReads(smId);
    const bool paired = cfg.lsu.adaptiveBypass ? mshrs <= inflight
                                               : mshrs == inflight;
    if (!paired) {
        out << "sm" << smId << ": l1 mshrsInUse=" << mshrs
            << " vs memory-system outstandingReads=" << inflight
            << (cfg.lsu.adaptiveBypass ? " (bypass on: expected <=)"
                                       : " (expected ==)")
            << "\n";
    }

    // Ready-scan cache: when it claims "asleep until readyWakeAt_",
    // re-derive readiness from scratch and cross-check the claim.
    if (fastForward_ && readyClean_ &&
        lsu_.canAccept() == readyCanAccept_ && now < readyWakeAt_) {
        const bool can_accept = lsu_.canAccept();
        Cycle true_wake = kNeverReady;
        for (const WarpRuntime& warp : warps) {
            if (warp.finished || warp.atBarrier)
                continue;
            const Instruction& instr =
                kernel_.at(static_cast<std::size_t>(warp.pcIndex));
            Cycle regs_ready = 0;
            bool waits_on_load = false;
            const auto consider = [&](int reg) {
                if (reg < 0)
                    return;
                const Cycle r =
                    warp.regReadyAt[static_cast<std::size_t>(reg)];
                if (r == kNeverReady)
                    waits_on_load = true;
                else if (r > regs_ready)
                    regs_ready = r;
            };
            for (const int src : instr.src)
                consider(src);
            consider(instr.dst);
            if (waits_on_load)
                continue;
            if (regs_ready <= now) {
                if (instr.isMemory() && !can_accept)
                    continue;
                out << "sm" << smId << " warp " << warp.id
                    << ": issueable at cycle " << now
                    << " but the ready-scan cache claims the SM sleeps "
                       "until cycle " << readyWakeAt_ << "\n";
            } else if (regs_ready < true_wake) {
                true_wake = regs_ready;
            }
        }
        if (true_wake < readyWakeAt_) {
            out << "sm" << smId << ": ready-scan cache wake bound "
                << readyWakeAt_ << " is later than the true earliest "
                   "register maturity " << true_wake
                << " (issueable cycles would be skipped)\n";
        }
    }

    return out.str();
}

std::string
Sm::auditSkippedWindow(Cycle begin, Cycle end) const
{
    std::ostringstream out;
    if (lsu_.busy()) {
        out << "sm" << smId << ": window [" << begin << ", " << end
            << ") skipped with " << lsu_.queueDepth()
            << " op(s) queued in the LSU\n";
    }
    if (lsu_.nextHitReady() < end) {
        out << "sm" << smId << ": window [" << begin << ", " << end
            << ") skipped over an L1-hit completion at cycle "
            << lsu_.nextHitReady() << "\n";
    }
    // The LSU was idle across the window (no queued op, no response
    // before `end`), so canAccept() could not flip: any live warp whose
    // registers mature strictly before `end` could have issued.
    const bool can_accept = lsu_.canAccept();
    for (const WarpRuntime& warp : warps) {
        if (warp.finished || warp.atBarrier)
            continue;
        const Instruction& instr =
            kernel_.at(static_cast<std::size_t>(warp.pcIndex));
        if (instr.isMemory() && !can_accept)
            continue;
        Cycle regs_ready = 0;
        bool waits_on_load = false;
        const auto consider = [&](int reg) {
            if (reg < 0)
                return;
            const Cycle r = warp.regReadyAt[static_cast<std::size_t>(reg)];
            if (r == kNeverReady)
                waits_on_load = true;
            else if (r > regs_ready)
                regs_ready = r;
        };
        for (const int src : instr.src)
            consider(src);
        consider(instr.dst);
        if (waits_on_load)
            continue;
        if (regs_ready < end) {
            out << "sm" << smId << " warp " << warp.id
                << ": could have issued at cycle "
                << std::max(begin, regs_ready)
                << " inside the skipped window [" << begin << ", " << end
                << ")\n";
        }
    }
    return out.str();
}

std::string
Sm::stallReport(Cycle now) const
{
    std::ostringstream out;
    out << "sm" << smId << ": lsuQueue=" << lsu_.queueDepth() << "/"
        << cfg.lsu.queueCapacity << " l1MshrsInUse=" << l1_.mshrsInUse()
        << " outstandingReads=" << memsys.outstandingReads(smId)
        << " unfinishedWarps=" << unfinishedWarps_ << "\n";
    for (std::size_t b = 0; b < barrierArrivals.size(); ++b) {
        if (barrierArrivals[b] > 0) {
            out << "  block " << b << ": " << barrierArrivals[b]
                << " warp(s) arrived at the barrier\n";
        }
    }
    const bool can_accept = lsu_.canAccept();
    for (const WarpRuntime& warp : warps) {
        if (warp.finished)
            continue;
        const Instruction& instr =
            kernel_.at(static_cast<std::size_t>(warp.pcIndex));
        out << "  warp " << warp.id << ": pcIndex=" << warp.pcIndex
            << " op=" << opcodeName(instr.op) << " ";
        if (warp.atBarrier) {
            const std::size_t b =
                static_cast<std::size_t>(warp.id) / cfg.warpsPerBlock;
            out << "at barrier (block " << b << ", "
                << barrierArrivals[b] << " arrived)";
        } else if (warp.outstandingLoads > 0 &&
                   !warpReady(warp, now)) {
            out << "waiting on " << warp.outstandingLoads
                << " outstanding load(s)";
        } else if (instr.isMemory() && !can_accept) {
            out << "blocked on a full LSU queue";
        } else if (!warpReady(warp, now)) {
            Cycle regs_ready = 0;
            for (const int src : instr.src) {
                if (src >= 0)
                    regs_ready = std::max(
                        regs_ready,
                        warp.regReadyAt[static_cast<std::size_t>(src)]);
            }
            if (instr.dst >= 0)
                regs_ready = std::max(
                    regs_ready,
                    warp.regReadyAt[static_cast<std::size_t>(instr.dst)]);
            out << "registers mature at cycle " << regs_ready;
        } else {
            out << "ready but never picked by the scheduler";
        }
        out << "\n";
    }
    return out.str();
}

} // namespace apres
