/**
 * @file
 * SM implementation.
 */

#include "sm.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "common/bitutils.hpp"
#include "core/shared_memory.hpp"

namespace apres {

Sm::Sm(SmId sm_id, const SmConfig& config, const Kernel& kernel,
       Scheduler& scheduler_ref, Prefetcher* prefetcher_ptr,
       MemorySystem& memsys_ref)
    : smId(sm_id), cfg(config), kernel_(kernel), scheduler(scheduler_ref),
      prefetcher(prefetcher_ptr), memsys(memsys_ref),
      l1_("sm" + std::to_string(sm_id) + ".l1", config.l1),
      lsu_(sm_id, config.lsu, *this, l1_, memsys_ref)
{
    assert(cfg.warpsPerSm >= 1);
    assert(cfg.warpsPerBlock >= 1);
    assert(cfg.jobsPerWarp >= 1);
    warps.resize(static_cast<std::size_t>(cfg.warpsPerSm));
    for (int w = 0; w < cfg.warpsPerSm; ++w) {
        WarpRuntime& warp = warps[static_cast<std::size_t>(w)];
        warp.id = w;
        warp.regReadyAt.assign(static_cast<std::size_t>(kernel.numRegs()),
                               0);
        warp.iterEnd = kernel.tripCount();
        warp.jobsRemaining = cfg.jobsPerWarp;
        warp.ageStamp = ++jobSeq;
    }
    unfinishedWarps_ = cfg.warpsPerSm;
    barrierArrivals.assign(
        static_cast<std::size_t>(divCeil(cfg.warpsPerSm, cfg.warpsPerBlock)),
        0);
    memsys.registerClient(smId, this);
    scheduler.attach(*this);
    if (prefetcher)
        prefetcher->attach(*this);
}

const WarpRuntime&
Sm::warpState(WarpId warp) const
{
    return warps.at(static_cast<std::size_t>(warp));
}

bool
Sm::nextIsMemory(WarpId warp) const
{
    const WarpRuntime& w = warpState(warp);
    if (w.finished)
        return false;
    return kernel_.at(static_cast<std::size_t>(w.pcIndex)).isMemory();
}

bool
Sm::warpReady(const WarpRuntime& warp, Cycle now) const
{
    if (warp.finished || warp.atBarrier)
        return false;
    const Instruction& instr =
        kernel_.at(static_cast<std::size_t>(warp.pcIndex));
    if (instr.isMemory() && !lsu_.canAccept())
        return false;
    for (const int src : instr.src) {
        if (!warp.regReady(src, now))
            return false;
    }
    // WAW: a destination still owed by an outstanding producer blocks
    // re-issue (loads in a loop reuse their destination register).
    if (!warp.regReady(instr.dst, now))
        return false;
    return true;
}

void
Sm::collectReady(Cycle now, std::vector<WarpId>& out)
{
    out.clear();
    // One walk computes both the ready set and — for the empty case —
    // the earliest cycle a stalled warp's registers mature, which
    // seeds the ready-scan cache and the fast-forward wakeup.
    Cycle wake = kNeverReady;
    const bool can_accept = lsu_.canAccept();
    for (const WarpRuntime& warp : warps) {
        if (warp.finished || warp.atBarrier)
            continue;
        const Instruction& instr =
            kernel_.at(static_cast<std::size_t>(warp.pcIndex));
        Cycle regs_ready = 0;
        bool waits_on_load = false;
        const auto consider = [&](int reg) {
            if (reg < 0)
                return;
            const Cycle r = warp.regReadyAt[static_cast<std::size_t>(reg)];
            if (r == kNeverReady)
                waits_on_load = true;
            else if (r > regs_ready)
                regs_ready = r;
        };
        for (const int src : instr.src)
            consider(src);
        consider(instr.dst); // WAW: outstanding producer blocks re-issue
        if (waits_on_load)
            continue; // woken by a load completion, not by time
        if (regs_ready <= now) {
            if (instr.isMemory() && !can_accept)
                continue; // woken by the LSU draining below capacity
            out.push_back(warp.id);
        } else if (regs_ready < wake) {
            wake = regs_ready;
        }
    }
    readyWakeAt_ = wake;
}

void
Sm::arriveBarrier(WarpId warp)
{
    const std::size_t block =
        static_cast<std::size_t>(warp) / cfg.warpsPerBlock;
    // Finished warps never arrive: count live members instead.
    const int first = static_cast<int>(block) * cfg.warpsPerBlock;
    const int last = std::min(first + cfg.warpsPerBlock, cfg.warpsPerSm);
    int live = 0;
    for (int w = first; w < last; ++w) {
        if (!warps[static_cast<std::size_t>(w)].finished)
            ++live;
    }
    if (++barrierArrivals[block] >= live) {
        barrierArrivals[block] = 0;
        for (int w = first; w < last; ++w)
            warps[static_cast<std::size_t>(w)].atBarrier = false;
    }
}

void
Sm::issue(WarpId warp_id, Cycle now)
{
    WarpRuntime& warp = warps[static_cast<std::size_t>(warp_id)];
    const Instruction& instr =
        kernel_.at(static_cast<std::size_t>(warp.pcIndex));

    ++stats_.issuedInstructions;
    ++warp.instructionsIssued;
    warp.lastIssueCycle = now;
    scheduler.notifyIssue(warp_id, instr, now);

    switch (instr.op) {
      case Opcode::kAlu:
      case Opcode::kSfu:
        warp.regReadyAt[static_cast<std::size_t>(instr.dst)] =
            now + static_cast<Cycle>(instr.latency);
        ++warp.pcIndex;
        break;

      case Opcode::kLoad: {
        const AddrCtx ctx{smId, warp_id, warp.iter};
        const Addr base = kernel_.addrGen(instr.addrGenId).base(ctx);
        warp.regReadyAt[static_cast<std::size_t>(instr.dst)] = kNeverReady;
        ++warp.outstandingLoads;
        lsu_.pushLoad(warp_id, instr.pc, base, instr.laneStride, instr.dst,
                      now, instr.activeLanes);
        ++stats_.issuedLoads;
        scheduler.notifyLoadIssued(warp_id, instr.pc, now);
        ++warp.pcIndex;
        break;
      }

      case Opcode::kStore: {
        const AddrCtx ctx{smId, warp_id, warp.iter};
        const Addr base = kernel_.addrGen(instr.addrGenId).base(ctx);
        lsu_.pushStore(warp_id, instr.pc, base, instr.laneStride, now,
                       instr.activeLanes);
        ++stats_.issuedStores;
        ++warp.pcIndex;
        break;
      }

      case Opcode::kSharedLoad: {
        const AddrCtx ctx{smId, warp_id, warp.iter};
        const Addr base = kernel_.addrGen(instr.addrGenId).base(ctx);
        const Cycle latency = sharedAccessLatency(
            base, instr.laneStride, instr.activeLanes, cfg.sharedMem);
        warp.regReadyAt[static_cast<std::size_t>(instr.dst)] =
            now + latency;
        ++stats_.sharedAccesses;
        stats_.sharedConflictCycles +=
            latency - cfg.sharedMem.baseLatency;
        ++warp.pcIndex;
        break;
      }

      case Opcode::kBranch:
        ++warp.iter;
        if (warp.iter < warp.iterEnd) {
            warp.pcIndex = instr.branchTarget;
        } else {
            ++warp.pcIndex;
        }
        break;

      case Opcode::kBarrier:
        warp.atBarrier = true;
        ++warp.pcIndex;
        arriveBarrier(warp_id);
        break;

      case Opcode::kExit:
        if (--warp.jobsRemaining > 0) {
            // Refill the slot with the next block: restart the kernel
            // with iterations continuing, rejoining as the youngest.
            warp.pcIndex = 0;
            warp.iterEnd = warp.iter + kernel_.tripCount();
            warp.ageStamp = ++jobSeq;
            scheduler.notifyWarpRelaunched(warp_id);
        } else {
            warp.finished = true;
            --unfinishedWarps_;
            scheduler.notifyWarpFinished(warp_id);
        }
        break;
    }
}

bool
Sm::tick(Cycle now)
{
    now_ = now;
    ++stats_.cycles;

    lsu_.tick(now); // load completions here clear readyClean_

    // Ready-scan cache: the last scan found nothing, nothing mutated
    // since, and no stalled register matures this cycle — the scan
    // would provably come back empty again, so skip it. Readiness
    // depends on the LSU only through the canAccept() boolean, hence
    // the flip check.
    if (fastForward_ && readyClean_ &&
        lsu_.canAccept() == readyCanAccept_ && now < readyWakeAt_) {
        ++stats_.idleCycles;
        return false;
    }

    collectReady(now, readyScratch);
    if (readyScratch.empty()) {
        readyClean_ = true;
        readyCanAccept_ = lsu_.canAccept();
        ++stats_.idleCycles;
        return false;
    }
    readyClean_ = false;
    const WarpId picked = scheduler.pick(now, readyScratch);
    if (picked == kInvalidWarp) {
        // The scheduler idled deliberately (e.g. CCWS throttling); its
        // decision can change with bare time, so never cache or skip
        // past this state.
        ++stats_.idleCycles;
        return false;
    }
    issue(picked, now);
    return true;
}

void
Sm::skipIdle(Cycle cycles)
{
    // Exactly what `cycles` idle tick() calls would have recorded.
    stats_.cycles += cycles;
    stats_.idleCycles += cycles;
}

Cycle
Sm::nextWakeup(Cycle next) const
{
    if (!readyClean_)
        return next; // issued or mutated this cycle: state unknown
    if (lsu_.busy() || lsu_.canAccept() != readyCanAccept_)
        return next; // queued ops make progress every cycle
    const Cycle wake = std::min(readyWakeAt_, lsu_.nextHitReady());
    return std::max(wake, next);
}

bool
Sm::done() const
{
    return unfinishedWarps_ == 0 && lsu_.idle();
}

void
Sm::onAccessResult(const LoadAccessInfo& info)
{
    scheduler.notifyAccessResult(info);
    if (prefetcher)
        prefetcher->onAccess(info, *this);
}

void
Sm::onLoadComplete(WarpId warp_id, int dst_reg, Cycle now)
{
    WarpRuntime& warp = warps[static_cast<std::size_t>(warp_id)];
    warp.regReadyAt[static_cast<std::size_t>(dst_reg)] = now;
    assert(warp.outstandingLoads > 0);
    --warp.outstandingLoads;
    readyClean_ = false; // the warp may be issueable again
}

void
Sm::memResponse(const MemRequest& req, Cycle now)
{
    lsu_.memResponse(req, now);
}

bool
Sm::issuePrefetch(Addr addr, Pc pc, WarpId target_warp)
{
    ++stats_.prefetchesRequested;
    // Saturation gate: do not displace demand bandwidth.
    if (static_cast<double>(l1_.mshrsInUse()) >=
        cfg.prefetchMshrGate * l1_.config().numMshrs) {
        return false;
    }
    MemRequest req;
    req.lineAddr = alignDown(addr, l1_.config().lineSize);
    req.sm = smId;
    req.warp = target_warp;
    req.pc = pc;
    req.isPrefetch = true;
    req.issued = now_;
    if (l1_.prefetch(req) != PrefetchOutcome::kIssued)
        return false;
    memsys.submitRead(req, now_);
    ++stats_.prefetchesIssued;
    return true;
}

} // namespace apres
