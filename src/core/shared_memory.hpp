/**
 * @file
 * Shared-memory (scratchpad) timing helpers.
 *
 * The baseline SM (paper §II, Fig. 1) carries a software-managed
 * scratchpad next to the L1. Scratchpad accesses never touch the cache
 * hierarchy; their cost is a fixed pipeline latency plus bank-conflict
 * serialization: the 32 banks are interleaved at 4-byte words, and
 * lanes that hit the same bank at *different* words serialize, while
 * lanes reading the same word broadcast for free.
 */

#ifndef APRES_CORE_SHARED_MEMORY_HPP
#define APRES_CORE_SHARED_MEMORY_HPP

#include <algorithm>
#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace apres {

/** Shared-memory timing parameters. */
struct SharedMemConfig
{
    Cycle baseLatency = 24;  ///< conflict-free load-to-use latency
    int numBanks = 32;       ///< word-interleaved banks
    std::uint32_t wordBytes = 4;
};

/**
 * Bank-conflict degree of one warp access: the largest number of
 * distinct words any single bank must serve. 1 = conflict-free (or
 * full broadcast); N = N-way serialization.
 */
inline int
sharedConflictDegree(Addr base, int lane_stride, int active_lanes,
                     const SharedMemConfig& cfg = {})
{
    // Count distinct words per bank. With <= 32 lanes and <= 32 banks
    // a fixed-size scan is cheaper than hashing.
    std::array<Addr, kWarpSize> words_seen{};
    std::array<int, 64> per_bank{};
    int degree = 1;
    int num_words = 0;
    for (int lane = 0; lane < active_lanes; ++lane) {
        const Addr addr = base +
            static_cast<Addr>(static_cast<std::int64_t>(lane) * lane_stride);
        const Addr word = addr / cfg.wordBytes;
        bool seen = false;
        for (int w = 0; w < num_words; ++w) {
            if (words_seen[static_cast<std::size_t>(w)] == word) {
                seen = true; // broadcast: same word costs nothing extra
                break;
            }
        }
        if (seen)
            continue;
        words_seen[static_cast<std::size_t>(num_words)] = word;
        ++num_words;
        const auto bank = static_cast<std::size_t>(
            word % static_cast<Addr>(cfg.numBanks));
        degree = std::max(degree, ++per_bank[bank]);
    }
    return degree;
}

/** Total cycles until a shared access's result is ready. */
inline Cycle
sharedAccessLatency(Addr base, int lane_stride, int active_lanes,
                    const SharedMemConfig& cfg = {})
{
    return cfg.baseLatency +
        static_cast<Cycle>(
            sharedConflictDegree(base, lane_stride, active_lanes, cfg) - 1);
}

} // namespace apres

#endif // APRES_CORE_SHARED_MEMORY_HPP
