/**
 * @file
 * Hot-path containers for the LSU's per-cycle bookkeeping.
 *
 * Both structures exploit an invariant of the simulation loop that the
 * general-purpose containers they replace cannot:
 *
 *  - TokenSlab: outstanding-load tracks are keyed by an opaque token
 *    the LSU itself mints, so instead of hashing into an
 *    unordered_map the token can simply *be* a slab index. A slot is
 *    recycled through a free list only after its last line request
 *    completed, so a live token always names a live slot.
 *  - HitEventRing: the L1 hit latency is a constant, so hit
 *    completions are pushed with monotonically non-decreasing ready
 *    cycles — arrival order is completion order and a FIFO ring
 *    replaces the binary heap (O(1) push/pop, no sift, contiguous
 *    memory).
 *
 * micro_structures.cpp benchmarks each against the container it
 * replaced.
 */

#ifndef APRES_CORE_LSU_STRUCTURES_HPP
#define APRES_CORE_LSU_STRUCTURES_HPP

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.hpp"

namespace apres {

/** Sentinel for "no pending event". */
inline constexpr Cycle kNoPendingEvent = std::numeric_limits<Cycle>::max();

/**
 * Free-list slab keyed by self-minted tokens.
 *
 * insert() returns a token (never 0, so 0 stays usable as the "not
 * tracked" sentinel in MemRequest); at()/erase() are O(1) with no
 * hashing. Tokens are slot indices and are reused after erase(), which
 * is safe for LSU tracks because every line request of a load
 * completes exactly once and the slot is only released when the last
 * one did.
 */
template <typename T>
class TokenSlab
{
  public:
    /** Store @p value; @return its token (> 0). */
    std::uint64_t
    insert(const T& value)
    {
        std::uint32_t index;
        if (!freeList_.empty()) {
            index = freeList_.back();
            freeList_.pop_back();
        } else {
            index = static_cast<std::uint32_t>(slots_.size());
            slots_.emplace_back();
        }
        Slot& slot = slots_[index];
        slot.value = value;
        assert(!slot.live);
        slot.live = true;
        ++active_;
        return static_cast<std::uint64_t>(index) + 1;
    }

    /** The value behind a live @p token. */
    T&
    at(std::uint64_t token)
    {
        Slot& slot = slots_[indexOf(token)];
        assert(slot.live && "stale or invalid LSU token");
        return slot.value;
    }

    /** Release @p token's slot back to the free list. */
    void
    erase(std::uint64_t token)
    {
        const std::size_t index = indexOf(token);
        assert(slots_[index].live && "double release of LSU token");
        slots_[index].live = false;
        freeList_.push_back(static_cast<std::uint32_t>(index));
        --active_;
    }

    /** Number of live entries. */
    std::size_t size() const { return active_; }

    /** True when no entry is live. */
    bool empty() const { return active_ == 0; }

  private:
    struct Slot
    {
        T value{};
        bool live = false;
    };

    static std::size_t
    indexOf(std::uint64_t token)
    {
        assert(token != 0 && "token 0 is the untracked sentinel");
        return static_cast<std::size_t>(token - 1);
    }

    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeList_;
    std::size_t active_ = 0;
};

/**
 * FIFO ring of (ready cycle, token) completions with non-decreasing
 * ready cycles. Push order is completion order, so the earliest event
 * is always at the head; capacity grows by doubling.
 */
class HitEventRing
{
  public:
    struct Event
    {
        Cycle ready = 0;
        std::uint64_t token = 0;
    };

    /** Append an event. @pre ready >= every previously pushed ready. */
    void
    push(Cycle ready, std::uint64_t token)
    {
        assert((empty() || ready >= lastReady_) &&
               "hit latency must be constant for FIFO completion order");
        if (count_ == buf_.size())
            grow();
        buf_[(head_ + count_) & (buf_.size() - 1)] = Event{ready, token};
        ++count_;
        lastReady_ = ready;
    }

    /** True when no event is pending. */
    bool empty() const { return count_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return count_; }

    /** The earliest pending event. @pre !empty() */
    const Event&
    front() const
    {
        assert(!empty());
        return buf_[head_];
    }

    /** Drop the earliest pending event. @pre !empty() */
    void
    pop()
    {
        assert(!empty());
        head_ = (head_ + 1) & (buf_.size() - 1);
        --count_;
    }

    /** Ready cycle of the earliest event; kNoPendingEvent when empty. */
    Cycle
    nextReady() const
    {
        return count_ ? buf_[head_].ready : kNoPendingEvent;
    }

  private:
    void
    grow()
    {
        const std::size_t capacity = buf_.empty() ? 64 : buf_.size() * 2;
        std::vector<Event> next(capacity);
        for (std::size_t i = 0; i < count_; ++i)
            next[i] = buf_[(head_ + i) & (buf_.size() - 1)];
        buf_ = std::move(next);
        head_ = 0;
    }

    std::vector<Event> buf_; // power-of-two capacity
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    Cycle lastReady_ = 0;
};

} // namespace apres

#endif // APRES_CORE_LSU_STRUCTURES_HPP
