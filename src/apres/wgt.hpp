/**
 * @file
 * Warp Group Table (WGT) — Section IV-A.
 *
 * Three entries (one per pipeline stage between issue and execute, so
 * every in-flight load's group survives until its cache outcome is
 * known). Each entry stores the issuing warp, the load PC and a warp
 * bit-vector of group members. Entries are looked up by (warp, pc)
 * when the LSU reports the load's hit/miss and are invalidated after
 * the group has been prioritized (Section IV-A). Hardware cost:
 * 48 bits x 3 entries (Table II).
 */

#ifndef APRES_APRES_WGT_HPP
#define APRES_APRES_WGT_HPP

#include <array>
#include <cstdint>
#include <utility>

#include "common/types.hpp"
#include "common/warp_mask.hpp"

namespace apres {

/**
 * Fixed-capacity warp group table.
 */
class WarpGroupTable
{
  public:
    /** Number of entries (pipeline-depth sized, per the paper). */
    static constexpr int kEntries = 3;

    /** One group record. */
    struct Entry
    {
        bool valid = false;
        WarpId owner = kInvalidWarp; ///< warp that issued the load
        Pc pc = kInvalidPc;          ///< PC of the issued load
        WarpMask members;            ///< bit w set = warp w in group
        std::uint64_t allocTick = 0; ///< age for replacement
    };

    /**
     * Insert a group, replacing the oldest entry when full. A prior
     * entry with the same (owner, pc) is overwritten in place.
     */
    void
    insert(WarpId owner, Pc pc, WarpMask members)
    {
        Entry* slot = &entries[0];
        for (Entry& e : entries) {
            if (e.valid && e.owner == owner && e.pc == pc) {
                slot = &e;
                break;
            }
            if (!e.valid) {
                slot = &e;
            } else if (slot->valid && e.allocTick < slot->allocTick) {
                slot = &e;
            }
        }
        slot->valid = true;
        slot->owner = owner;
        slot->pc = pc;
        slot->members = std::move(members);
        slot->allocTick = ++tick;
    }

    /**
     * Find and invalidate the group of (owner, pc).
     * @return the member mask, or an empty mask when no entry matched
     *         (e.g. the entry was replaced before the load's outcome
     *         arrived)
     */
    WarpMask
    take(WarpId owner, Pc pc)
    {
        for (Entry& e : entries) {
            if (e.valid && e.owner == owner && e.pc == pc) {
                e.valid = false;
                return e.members;
            }
        }
        return {};
    }

    /** Number of valid entries (for tests). */
    int
    validCount() const
    {
        int n = 0;
        for (const Entry& e : entries)
            n += e.valid ? 1 : 0;
        return n;
    }

    /** Entry @p index (invariant auditor; 0 <= index < kEntries). */
    const Entry&
    entry(int index) const
    {
        return entries.at(static_cast<std::size_t>(index));
    }

    /**
     * TEST HOOK: mutable entry for fault-injection tests (e.g.
     * setting a member bit outside the configured warp range to prove
     * the auditor catches it). Never call outside tests.
     */
    Entry&
    entryForTest(int index)
    {
        return entries.at(static_cast<std::size_t>(index));
    }

  private:
    std::array<Entry, kEntries> entries{};
    std::uint64_t tick = 0;
};

} // namespace apres

#endif // APRES_APRES_WGT_HPP
