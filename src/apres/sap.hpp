/**
 * @file
 * SAP: Scheduling-Aware Prefetcher (Section IV-B).
 *
 * SAP owns three structures (Table II):
 *  - PT, a 10-entry Prefetch Table keyed by load PC holding the last
 *    issuing warp ID, its memory address, and the inter-warp stride
 *    computed from the two most recent accesses;
 *  - WQ, the 48-entry Warp Queue of group-member warp IDs received
 *    from LAWS on a grouped miss;
 *  - DRQ, the 32-entry Demand Request Queue holding the missing
 *    access's (lowest-lane) address.
 *
 * On a grouped demand miss SAP computes the current inter-warp stride
 * `(addr - PT.lastAddr) / (warp - PT.lastWarp)` and prefetches only
 * when it matches the stored stride; the target for each group warp w
 * is `addr + (w - warp) * stride` (the Fig. 9 walk-through). Issued
 * target warps are reported back to LAWS for head-of-queue promotion,
 * so their demands merge into the prefetch MSHRs instead of arriving
 * after the line was evicted.
 */

#ifndef APRES_APRES_SAP_HPP
#define APRES_APRES_SAP_HPP

#include <cstdint>
#include <vector>

#include "apres/laws.hpp"
#include "core/prefetcher.hpp"

namespace apres {

/** SAP sizing (defaults = Table II). */
struct SapConfig
{
    int ptEntries = 10;  ///< prefetch table entries
    int wqEntries = 48;  ///< warp queue capacity
    int drqEntries = 32; ///< demand request queue capacity
};

/** SAP counters. */
struct SapStats
{
    std::uint64_t groupMissesReceived = 0;
    std::uint64_t strideMatches = 0;
    std::uint64_t strideMismatches = 0;
    std::uint64_t prefetchesGenerated = 0;
    std::uint64_t prefetchesIssued = 0; ///< accepted by the L1/memsys
    std::uint64_t wqPeak = 0;  ///< peak Warp Queue occupancy per walk
    std::uint64_t drqPeak = 0; ///< peak Demand Request Queue occupancy
};

/**
 * The SAP prefetcher. Requires a LAWS scheduler on the same SM.
 */
class SapPrefetcher final : public Prefetcher
{
  public:
    /**
     * @param laws   the LAWS instance on this SM (outlives SAP)
     * @param config structure sizing
     */
    explicit SapPrefetcher(LawsScheduler& laws, const SapConfig& config = {});

    void attach(SmContext& sm) override;

    void onAccess(const LoadAccessInfo& info, PrefetchIssuer& issuer) override;

    const char* name() const override { return "SAP"; }

    void reportStats(StatSet& out) const override;

    /** Counters. */
    const SapStats& stats() const { return stats_; }

    /** PCs resident in the PT, LRU first (for tests). */
    std::vector<Pc> ptResidentPcs() const;

    /** Valid PT entries (auditor: must fit SapConfig::ptEntries). */
    int ptValidCount() const;

    /** Physical PT slots (auditor: must equal SapConfig::ptEntries). */
    int ptSlotCount() const { return static_cast<int>(pt.size()); }

    /** The structure sizing this SAP was built with. */
    const SapConfig& config() const { return cfg; }

    /**
     * TEST HOOK: grow the PT past its configured capacity with
     * @p extra valid entries, so fault-injection tests can prove the
     * auditor enforces the Table II sizing. Never call outside tests.
     */
    void debugOversizePtForTest(int extra);

  private:
    /** Replacement hysteresis ceiling for PT stride confidence. */
    static constexpr int kMaxConfidence = 3;

    struct PtEntry
    {
        bool valid = false;
        Pc pc = kInvalidPc;
        WarpId lastWarp = kInvalidWarp;
        Addr lastAddr = kInvalidAddr;
        std::int64_t stride = 0;
        bool strideValid = false;
        int confidence = 0;
        std::uint64_t lastUse = 0;
    };

    PtEntry& lookup(Pc pc);

    LawsScheduler& laws;
    SapConfig cfg;
    int numWarps_ = 64; ///< group-walk bound; tightened by attach()
    SmId smId_ = 0;     ///< trace lane; set by attach()
    std::vector<PtEntry> pt;
    std::uint64_t useClock = 0;
    SapStats stats_;
};

} // namespace apres

#endif // APRES_APRES_SAP_HPP
