/**
 * @file
 * Last Load Table (LLT) — Section IV-A.
 *
 * One entry per warp, holding the PC of the last global load that warp
 * issued (its LLPC). LAWS groups warps whose LLPC matches the issuing
 * warp's: they executed the same static load last and are therefore
 * expected to execute the next load of that path within a short time
 * window. Hardware cost: 4 bytes x 48 warps (Table II).
 */

#ifndef APRES_APRES_LLT_HPP
#define APRES_APRES_LLT_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "common/warp_mask.hpp"

namespace apres {

/**
 * Per-warp last-load-PC table.
 */
class LastLoadTable
{
  public:
    /** @param num_warps warp contexts per SM. */
    explicit LastLoadTable(int num_warps)
        : llpc(static_cast<std::size_t>(num_warps), kInvalidPc)
    {
    }

    /** LLPC of @p warp (kInvalidPc before its first load). */
    Pc get(WarpId warp) const { return llpc.at(static_cast<std::size_t>(warp)); }

    /** Record @p pc as the last load PC of @p warp. */
    void
    set(WarpId warp, Pc pc)
    {
        llpc.at(static_cast<std::size_t>(warp)) = pc;
    }

    /**
     * All warps whose LLPC equals @p pc, as a WarpMask (bit w = warp
     * w). Covers every configured warp — the table is no longer capped
     * at 64 entries. Returns an empty mask when @p pc is kInvalidPc.
     */
    WarpMask
    matchMask(Pc pc) const
    {
        WarpMask mask;
        if (pc == kInvalidPc)
            return mask;
        for (std::size_t w = 0; w < llpc.size(); ++w) {
            if (llpc[w] == pc)
                mask.set(static_cast<WarpId>(w));
        }
        return mask;
    }

    /** Number of entries. */
    int size() const { return static_cast<int>(llpc.size()); }

  private:
    std::vector<Pc> llpc;
};

} // namespace apres

#endif // APRES_APRES_LLT_HPP
