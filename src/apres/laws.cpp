/**
 * @file
 * LAWS implementation.
 */

#include "laws.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "common/trace.hpp"

namespace apres {

void
LawsScheduler::attach(SmContext& sm_ref)
{
    sm = &sm_ref;
    llt = LastLoadTable(sm->numWarps());
    queue.clear();
    for (int w = 0; w < sm->numWarps(); ++w)
        queue.push_back(w);
    groupFormedAt_.assign(static_cast<std::size_t>(sm->numWarps()), 0);
}

WarpId
LawsScheduler::pick(Cycle now, const std::vector<WarpId>& ready)
{
    (void)now;
    if (ready.empty())
        return kInvalidWarp;
    // Greedy: the first ready warp in queue priority order.
    for (const WarpId w : queue) {
        if (std::find(ready.begin(), ready.end(), w) != ready.end())
            return w;
    }
    return kInvalidWarp;
}

void
LawsScheduler::notifyLoadIssued(WarpId warp, Pc pc, Cycle now)
{
    // Group every warp whose LLPC matches the issuing warp's previous
    // load (Section IV-A / Fig. 8); then advance the warp's LLPC.
    const Pc llpc = llt.get(warp);
    WarpMask members = llt.matchMask(llpc);
    members.set(warp); // the issuing warp belongs too
    // Optional group-size cap (Section IV argues ~8 leading warps
    // bound the working set; the default keeps the paper's uncapped
    // grouping).
    const int num_warps = sm != nullptr ? sm->numWarps() : 64;
    if (cfg.groupCap < num_warps && members.count() > cfg.groupCap) {
        WarpMask trimmed;
        int kept = 0;
        members.forEachSet([&](WarpId w) {
            if (kept < cfg.groupCap) {
                trimmed.set(w);
                ++kept;
            }
        });
        members = std::move(trimmed);
    }
    wgt.insert(warp, pc, members);
    ++stats_.groupsFormed;
    if (static_cast<std::size_t>(warp) < groupFormedAt_.size())
        groupFormedAt_[static_cast<std::size_t>(warp)] = now;
    llt.set(warp, pc);
}

void
LawsScheduler::moveToHead(const WarpMask& member_mask)
{
    if (member_mask.none())
        return;
    // Skip the reshuffle when the group already leads: for loads that
    // hit on every execution the same group would otherwise be
    // re-promoted at every access, and the constant reordering only
    // perturbs the pipeline without changing which warps lead.
    const int member_count = member_mask.count();
    int position = 0;
    int found_in_head = 0;
    for (const WarpId w : queue) {
        if (position >= 2 * member_count)
            break;
        if (member_mask.test(w))
            ++found_in_head;
        ++position;
    }
    if (found_in_head == member_count)
        return;

    std::vector<WarpId> promoted;
    promoted.reserve(static_cast<std::size_t>(member_count));
    for (auto it = queue.begin(); it != queue.end();) {
        if (member_mask.test(*it)) {
            promoted.push_back(*it);
            it = queue.erase(it);
        } else {
            ++it;
        }
    }
    stats_.warpsPrioritized += promoted.size();
    queue.insert(queue.begin(), promoted.begin(), promoted.end());
}

void
LawsScheduler::moveToTail(const WarpMask& member_mask)
{
    if (member_mask.none())
        return;
    std::vector<WarpId> demoted;
    demoted.reserve(static_cast<std::size_t>(member_mask.count()));
    for (auto it = queue.begin(); it != queue.end();) {
        if (member_mask.test(*it)) {
            demoted.push_back(*it);
            it = queue.erase(it);
        } else {
            ++it;
        }
    }
    queue.insert(queue.end(), demoted.begin(), demoted.end());
}

void
LawsScheduler::notifyAccessResult(const LoadAccessInfo& info)
{
    const WarpMask members = wgt.take(info.warp, info.pc);
    if (members.none())
        return; // group replaced before the outcome arrived

    // Lifetime of the group: formation (owner's load issue) to the
    // outcome that retires it from the WGT.
    if (metrics_ &&
        static_cast<std::size_t>(info.warp) < groupFormedAt_.size()) {
        metrics_->wgtGroupLifetime.add(
            info.now - groupFormedAt_[static_cast<std::size_t>(info.warp)]);
    }

    if (info.hit) {
        // High-locality load: the whole group is expected to hit; run
        // it immediately so the shared lines stay resident.
        ++stats_.groupHits;
        if (tracer_) {
            tracer_->record(info.sm, TraceEventType::kLawsGroupPromote,
                            info.now, info.pc, info.warp,
                            static_cast<std::uint64_t>(members.count()));
        }
        if (cfg.promoteOnHit)
            moveToHead(members);
        pendingMiss.valid = false;
        return;
    }

    // Streaming load: demote the group, and stage it for SAP, which
    // may promote the prefetch targets right back (Section IV-B).
    ++stats_.groupMisses;
    if (tracer_) {
        tracer_->record(info.sm, TraceEventType::kLawsGroupDemote, info.now,
                        info.pc, info.warp,
                        static_cast<std::uint64_t>(members.count()));
    }
    if (cfg.demoteOnMiss)
        moveToTail(members);
    pendingMiss.valid = true;
    pendingMiss.owner = info.warp;
    pendingMiss.pc = info.pc;
    pendingMiss.members = members;
    pendingMiss.members.reset(info.warp);
}

LawsScheduler::PendingGroupMiss
LawsScheduler::takePendingGroupMiss(WarpId warp, Pc pc)
{
    PendingGroupMiss result;
    if (pendingMiss.valid && pendingMiss.owner == warp &&
        pendingMiss.pc == pc) {
        result = pendingMiss;
        pendingMiss.valid = false;
    }
    return result;
}

void
LawsScheduler::prioritizeWarps(const std::vector<WarpId>& warps)
{
    if (!cfg.promotePrefetchTargets)
        return;
    WarpMask mask;
    for (const WarpId w : warps)
        mask.set(w);
    stats_.prefetchTargetPromotions += warps.size();
    moveToHead(mask);
}

void
LawsScheduler::notifyWarpFinished(WarpId warp)
{
    const auto it = std::find(queue.begin(), queue.end(), warp);
    if (it != queue.end())
        queue.erase(it);
}

void
LawsScheduler::notifyWarpRelaunched(WarpId warp)
{
    // A refilled slot carries a fresh block: it rejoins at the tail,
    // like a newly launched warp.
    const auto it = std::find(queue.begin(), queue.end(), warp);
    if (it != queue.end())
        queue.erase(it);
    queue.push_back(warp);
}

std::vector<WarpId>
LawsScheduler::queueOrder() const
{
    return {queue.begin(), queue.end()};
}

void
LawsScheduler::reportStats(StatSet& out) const
{
    out.accumulate("laws.groupsFormed",
                   static_cast<double>(stats_.groupsFormed));
    out.accumulate("laws.groupHits", static_cast<double>(stats_.groupHits));
    out.accumulate("laws.groupMisses",
                   static_cast<double>(stats_.groupMisses));
    out.accumulate("laws.warpsPrioritized",
                   static_cast<double>(stats_.warpsPrioritized));
    out.accumulate("laws.prefetchTargetPromotions",
                   static_cast<double>(stats_.prefetchTargetPromotions));
}

} // namespace apres
