/**
 * @file
 * APRES hardware cost model (Table II).
 *
 * Pure arithmetic over the structure dimensions the paper itemizes:
 * LLT (4 B per warp), WGT (one warp-bit-vector per entry), DRQ (8 B
 * addresses), WQ (1 B warp IDs) and PT (4 B PC + 1 B warp + 8 B
 * address + 8 B stride per entry). With the default parameters
 * (48 warps, 3 WGT entries, 32 DRQ, 48 WQ, 10 PT) the total is the
 * paper's 724 bytes per SM.
 */

#ifndef APRES_APRES_HARDWARE_COST_HPP
#define APRES_APRES_HARDWARE_COST_HPP

#include <cstdint>

#include "common/bitutils.hpp"

namespace apres {

/** Structure dimensions of one APRES instance. */
struct HardwareCostParams
{
    int warpsPerSm = 48;
    int wgtEntries = 3;
    int drqEntries = 32;
    int wqEntries = 48;
    int ptEntries = 10;
};

/** Per-structure and total storage in bytes. */
struct HardwareCost
{
    std::uint64_t lltBytes = 0;
    std::uint64_t wgtBytes = 0;
    std::uint64_t drqBytes = 0;
    std::uint64_t wqBytes = 0;
    std::uint64_t ptBytes = 0;

    /** LAWS portion (LLT + WGT). */
    std::uint64_t lawsBytes() const { return lltBytes + wgtBytes; }

    /** SAP portion (DRQ + WQ + PT). */
    std::uint64_t sapBytes() const { return drqBytes + wqBytes + ptBytes; }

    /** Full APRES storage per SM. */
    std::uint64_t totalBytes() const { return lawsBytes() + sapBytes(); }

    /** Overhead relative to an L1 of @p l1_bytes (paper: 2.06%). */
    double
    fractionOfL1(std::uint64_t l1_bytes) const
    {
        return l1_bytes ? static_cast<double>(totalBytes()) /
                              static_cast<double>(l1_bytes)
                        : 0.0;
    }
};

/** Compute Table II from structure dimensions. */
inline HardwareCost
computeHardwareCost(const HardwareCostParams& params = {})
{
    HardwareCost cost;
    // LLT: one 4-byte PC per warp.
    cost.lltBytes = 4ull * params.warpsPerSm;
    // WGT: one warp bit-vector per entry (48 warps -> 6 bytes).
    cost.wgtBytes =
        divCeil(static_cast<std::uint64_t>(params.warpsPerSm), 8) *
        params.wgtEntries;
    // DRQ: 8-byte addresses.
    cost.drqBytes = 8ull * params.drqEntries;
    // WQ: 1-byte warp IDs.
    cost.wqBytes = 1ull * params.wqEntries;
    // PT: 4 B PC + 1 B warp ID + 8 B address + 8 B stride per entry.
    cost.ptBytes = (4ull + 1 + 8 + 8) * params.ptEntries;
    return cost;
}

} // namespace apres

#endif // APRES_APRES_HARDWARE_COST_HPP
