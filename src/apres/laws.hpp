/**
 * @file
 * LAWS: Locality-Aware Warp Scheduler (Section IV-A).
 *
 * LAWS keeps a scheduling queue of warp IDs in priority order and
 * issues from the first ready warp scanning from the head — an
 * "advanced greedy" scheduler that concentrates execution in a small
 * set of leading warps.
 *
 * Group formation: when warp W issues a global load, every warp whose
 * LLT entry matches W's *previous* load PC (LLPC) is grouped with W
 * and the group is remembered in the WGT. When the LSU reports the
 * load's L1 outcome:
 *  - hit  -> the load has locality; the whole group moves to the queue
 *            head so the shared lines are re-referenced before
 *            eviction;
 *  - miss -> the load is streaming; the group moves to the tail — and
 *            is handed to SAP, which may prefetch for the member warps
 *            and ask LAWS to re-prioritize exactly those warps so
 *            their demands merge into the prefetch MSHRs.
 */

#ifndef APRES_APRES_LAWS_HPP
#define APRES_APRES_LAWS_HPP

#include <cstdint>
#include <deque>
#include <vector>

#include "apres/llt.hpp"
#include "apres/wgt.hpp"
#include "common/warp_mask.hpp"
#include "core/scheduler.hpp"
#include "core/sm.hpp"

namespace apres {

/** LAWS policy knobs (defaults = the paper's design; ablations flip). */
struct LawsConfig
{
    bool promoteOnHit = true;   ///< hit group -> queue head
    bool demoteOnMiss = true;   ///< miss group -> queue tail
    bool promotePrefetchTargets = true; ///< SAP targets -> queue head
    int groupCap = 48;          ///< max warps grouped per load
};

/** LAWS counters (for reports and tests). */
struct LawsStats
{
    std::uint64_t groupsFormed = 0;
    std::uint64_t groupHits = 0;        ///< groups prioritized to head
    std::uint64_t groupMisses = 0;      ///< groups demoted to tail
    std::uint64_t warpsPrioritized = 0; ///< moved to head in total
    std::uint64_t prefetchTargetPromotions = 0;
};

/**
 * The LAWS scheduler.
 */
class LawsScheduler final : public Scheduler
{
  public:
    explicit LawsScheduler(const LawsConfig& config = {}) : cfg(config) {}

    /** A group whose head warp missed, awaiting SAP's attention. */
    struct PendingGroupMiss
    {
        bool valid = false;
        WarpId owner = kInvalidWarp;
        Pc pc = kInvalidPc;
        WarpMask members; ///< excluding the owner
    };

    void attach(SmContext& sm) override;

    WarpId pick(Cycle now, const std::vector<WarpId>& ready) override;

    void notifyLoadIssued(WarpId warp, Pc pc, Cycle now) override;

    void notifyAccessResult(const LoadAccessInfo& info) override;

    void notifyWarpFinished(WarpId warp) override;

    void notifyWarpRelaunched(WarpId warp) override;

    const char* name() const override { return "LAWS"; }

    void reportStats(StatSet& out) const override;

    /**
     * SAP side-channel: consume the group stashed by the most recent
     * miss, if it belongs to (warp, pc). Invalidates the stash.
     */
    PendingGroupMiss takePendingGroupMiss(WarpId warp, Pc pc);

    /**
     * SAP feedback: the given warps are prefetch targets; move them to
     * the head of the scheduling queue (Section IV-B).
     */
    void prioritizeWarps(const std::vector<WarpId>& warps);

    /** Current queue order, head first (for tests). */
    std::vector<WarpId> queueOrder() const;

    /** Counters. */
    const LawsStats& stats() const { return stats_; }

    /** WGT view for the invariant auditor. */
    const WarpGroupTable& wgtForAudit() const { return wgt; }

    /** LLT view for the invariant auditor. */
    const LastLoadTable& lltForAudit() const { return llt; }

    /**
     * TEST HOOK: mutable WGT for fault-injection tests. Never call
     * outside tests.
     */
    WarpGroupTable& wgtForTest() { return wgt; }

  private:
    void moveToHead(const WarpMask& member_mask);
    void moveToTail(const WarpMask& member_mask);

    LawsConfig cfg;
    SmContext* sm = nullptr;
    std::deque<WarpId> queue;      ///< priority order, head = highest
    LastLoadTable llt{0};
    WarpGroupTable wgt;
    PendingGroupMiss pendingMiss;
    LawsStats stats_;
    /**
     * Cycle each warp's current WGT group was formed (indexed by owner
     * warp). Only sampled into the wgtGroupLifetime histogram when a
     * metrics sink is installed; never read by scheduling decisions.
     */
    std::vector<Cycle> groupFormedAt_;
};

} // namespace apres

#endif // APRES_APRES_LAWS_HPP
