/**
 * @file
 * SAP implementation.
 */

#include "sap.hpp"

#include <algorithm>
#include <cassert>

#include "common/stats.hpp"
#include "common/trace.hpp"

namespace apres {

SapPrefetcher::SapPrefetcher(LawsScheduler& laws_ref, const SapConfig& config)
    : laws(laws_ref), cfg(config)
{
    assert(cfg.ptEntries >= 1);
    pt.resize(static_cast<std::size_t>(cfg.ptEntries));
}

void
SapPrefetcher::attach(SmContext& sm)
{
    numWarps_ = sm.numWarps();
    smId_ = sm.id();
}

SapPrefetcher::PtEntry&
SapPrefetcher::lookup(Pc pc)
{
    // The touched entry is stamped MRU here, *before* returning: any
    // victim scan later in the same cycle (a second lookup for a
    // different PC) must already see this use, or it could evict the
    // entry it was just asked for.
    PtEntry* victim = &pt[0];
    for (PtEntry& entry : pt) {
        if (entry.valid && entry.pc == pc) {
            entry.lastUse = ++useClock;
            return entry;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid && entry.lastUse < victim->lastUse) {
            victim = &entry;
        }
    }
    *victim = PtEntry{};
    victim->valid = true;
    victim->pc = pc;
    victim->lastUse = ++useClock;
    return *victim;
}

std::vector<Pc>
SapPrefetcher::ptResidentPcs() const
{
    std::vector<const PtEntry*> live;
    for (const PtEntry& entry : pt) {
        if (entry.valid)
            live.push_back(&entry);
    }
    std::sort(live.begin(), live.end(),
              [](const PtEntry* a, const PtEntry* b) {
                  return a->lastUse < b->lastUse;
              });
    std::vector<Pc> pcs;
    pcs.reserve(live.size());
    for (const PtEntry* entry : live)
        pcs.push_back(entry->pc);
    return pcs;
}

void
SapPrefetcher::onAccess(const LoadAccessInfo& info, PrefetchIssuer& issuer)
{
    PtEntry& entry = lookup(info.pc);

    // Current inter-warp stride from the two most recent accesses of
    // this static load (exact division required: a fractional stride
    // cannot predict other warps' addresses).
    bool cur_valid = false;
    std::int64_t cur_stride = 0;
    if (entry.lastAddr != kInvalidAddr && entry.lastWarp != info.warp) {
        const std::int64_t addr_delta =
            static_cast<std::int64_t>(info.baseAddr) -
            static_cast<std::int64_t>(entry.lastAddr);
        const std::int64_t warp_delta = info.warp - entry.lastWarp;
        if (addr_delta % warp_delta == 0) {
            cur_stride = addr_delta / warp_delta;
            cur_valid = true;
        }
    }

    // A grouped miss staged by LAWS for this (warp, pc)?
    const LawsScheduler::PendingGroupMiss group =
        laws.takePendingGroupMiss(info.warp, info.pc);

    const bool stride_match =
        cur_valid && entry.strideValid && cur_stride == entry.stride;

    if (group.valid) {
        ++stats_.groupMissesReceived;
        if (stride_match) {
            ++stats_.strideMatches;
            if (tracer_) {
                tracer_->record(smId_, TraceEventType::kSapStrideMatch,
                                info.now, info.pc, info.warp,
                                group.members.lowWord());
            }
            // DRQ holds one address; WQ holds the member warps. Issue
            // one prefetch per member, capped by the WQ capacity. A
            // zero stride (the BFS-style shared-address loads of
            // Table I) predicts the very line that just missed: no
            // new request is needed, but promoting the member warps
            // makes their demands merge into the outstanding MSHR —
            // the paper's other path to the same cache line.
            // Walk only the configured warp contexts: the machine may
            // run fewer than the 64 warps the mask can hold (Table III
            // configures 48), and LawsConfig::groupCap is tunable.
            // One DRQ entry holds the missing demand address while the
            // group walk runs (the queues drain within the walk in
            // this model; the peaks feed the invariant auditor).
            stats_.drqPeak = std::max<std::uint64_t>(stats_.drqPeak, 1);
            std::vector<WarpId> targets;
            int enqueued = 0;
            for (int w = 0; w < numWarps_ && enqueued < cfg.wqEntries; ++w) {
                if (!group.members.test(w))
                    continue;
                ++enqueued;
                targets.push_back(w);
                if (cur_stride == 0)
                    continue;
                ++stats_.prefetchesGenerated;
                const auto target = static_cast<Addr>(
                    static_cast<std::int64_t>(info.baseAddr) +
                    (w - info.warp) * cur_stride);
                if (issuer.issuePrefetch(target, info.pc, w)) {
                    ++stats_.prefetchesIssued;
                    if (tracer_) {
                        tracer_->record(smId_,
                                        TraceEventType::kSapPrefetchIssue,
                                        info.now, info.pc, w, target);
                    }
                }
            }
            stats_.wqPeak = std::max(stats_.wqPeak,
                                     static_cast<std::uint64_t>(enqueued));
            if (tracer_) {
                tracer_->record(smId_, TraceEventType::kSapWqDrain, info.now,
                                info.pc, info.warp,
                                static_cast<std::uint64_t>(enqueued));
            }
            // Cooperative half: LAWS promotes the targeted warps so
            // their demands merge with the in-flight (pre)fetches.
            if (!targets.empty())
                laws.prioritizeWarps(targets);
        } else {
            ++stats_.strideMismatches;
        }
    }

    // Train the PT. Warps from different loop iterations interleave
    // in the access stream, so a single outlier pair must not destroy
    // an established stride: confidence hysteresis replaces the
    // stored stride only after repeated disagreement, and inexact
    // divisions (cross-iteration pairs) are ignored entirely.
    if (cur_valid) {
        if (tracer_) {
            tracer_->record(smId_, TraceEventType::kSapPtTrain, info.now,
                            info.pc, info.warp,
                            static_cast<std::uint64_t>(cur_stride));
        }
        if (entry.strideValid && cur_stride == entry.stride) {
            if (entry.confidence < kMaxConfidence)
                ++entry.confidence;
        } else if (entry.confidence > 0) {
            --entry.confidence;
        } else {
            entry.stride = cur_stride;
            entry.strideValid = true;
            entry.confidence = 1;
        }
    }
    entry.lastAddr = info.baseAddr;
    entry.lastWarp = info.warp;
}

int
SapPrefetcher::ptValidCount() const
{
    int n = 0;
    for (const PtEntry& entry : pt)
        n += entry.valid ? 1 : 0;
    return n;
}

void
SapPrefetcher::debugOversizePtForTest(int extra)
{
    for (int i = 0; i < extra; ++i) {
        PtEntry entry;
        entry.valid = true;
        entry.pc = static_cast<Pc>(0xDEAD'0000 + i);
        entry.lastUse = ++useClock;
        pt.push_back(entry);
    }
}

void
SapPrefetcher::reportStats(StatSet& out) const
{
    out.accumulate("sap.groupMissesReceived",
                   static_cast<double>(stats_.groupMissesReceived));
    out.accumulate("sap.strideMatches",
                   static_cast<double>(stats_.strideMatches));
    out.accumulate("sap.strideMismatches",
                   static_cast<double>(stats_.strideMismatches));
    out.accumulate("sap.prefetchesGenerated",
                   static_cast<double>(stats_.prefetchesGenerated));
    out.accumulate("sap.prefetchesIssued",
                   static_cast<double>(stats_.prefetchesIssued));
}

} // namespace apres
