/**
 * @file
 * LRR implementation.
 */

#include "lrr.hpp"

namespace apres {

WarpId
LrrScheduler::pick(Cycle now, const std::vector<WarpId>& ready)
{
    (void)now;
    if (ready.empty())
        return kInvalidWarp;
    // ready is sorted ascending: pick the first ID strictly greater
    // than the last issued warp, wrapping to the front.
    for (const WarpId w : ready) {
        if (w > lastIssued) {
            lastIssued = w;
            return w;
        }
    }
    lastIssued = ready.front();
    return ready.front();
}

} // namespace apres
