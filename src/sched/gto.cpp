/**
 * @file
 * GTO implementation.
 */

#include "gto.hpp"

namespace apres {

WarpId
GtoScheduler::pick(Cycle now, const std::vector<WarpId>& ready)
{
    (void)now;
    if (ready.empty())
        return kInvalidWarp;
    if (greedyWarp != kInvalidWarp) {
        for (const WarpId w : ready) {
            if (w == greedyWarp)
                return w;
        }
    }
    // Greedy warp stalled: the oldest ready warp (earliest block
    // launch) becomes the new greedy warp.
    WarpId oldest = ready.front();
    for (const WarpId w : ready) {
        if (sm->warpState(w).ageStamp < sm->warpState(oldest).ageStamp)
            oldest = w;
    }
    greedyWarp = oldest;
    return greedyWarp;
}

} // namespace apres
