/**
 * @file
 * PA two-level scheduler implementation.
 */

#include "pa_twolevel.hpp"

#include <cassert>

#include "common/bitutils.hpp"

namespace apres {

PaScheduler::PaScheduler(const PaConfig& config) : cfg(config)
{
    assert(cfg.groupSize >= 1);
}

void
PaScheduler::attach(SmContext& sm)
{
    numGroups = static_cast<int>(
        divCeil(static_cast<std::uint64_t>(sm.numWarps()),
                static_cast<std::uint64_t>(cfg.groupSize)));
}

WarpId
PaScheduler::pick(Cycle now, const std::vector<WarpId>& ready)
{
    (void)now;
    if (ready.empty())
        return kInvalidWarp;

    // Try the active group first, then rotate through the others.
    for (int probe = 0; probe < numGroups; ++probe) {
        const int g = (group + probe) % numGroups;
        // Round-robin inside the group: first ready warp after the
        // last issued one, wrapping.
        WarpId first_in_group = kInvalidWarp;
        for (const WarpId w : ready) {
            if (groupOf(w) != g)
                continue;
            if (first_in_group == kInvalidWarp)
                first_in_group = w;
            if (g == group && w > lastInGroup) {
                lastInGroup = w;
                return w;
            }
            if (g != group) {
                group = g;
                lastInGroup = w;
                return w;
            }
        }
        if (g == group && first_in_group != kInvalidWarp) {
            lastInGroup = first_in_group;
            return first_in_group;
        }
    }
    return kInvalidWarp;
}

} // namespace apres
