/**
 * @file
 * Cache-Conscious Wavefront Scheduling (Rogers et al., MICRO 2012).
 *
 * CCWS detects *lost intra-warp locality*: when a warp misses on a
 * line that was recently evicted while tagged as touched by that same
 * warp, the L1 is too small for the concurrently active working sets.
 * Each such event raises the warp's lost-locality score; the scheduler
 * throttles the number of schedulable warps as the total score grows,
 * effectively enlarging the per-warp cache share until the scores
 * decay.
 *
 * Implementation here: the L1's eviction stream (victim line address +
 * toucher-warp mask) feeds per-warp victim tag arrays (VTAs). A demand
 * miss probing its warp's VTA successfully is a lost-locality event.
 */

#ifndef APRES_SCHED_CCWS_HPP
#define APRES_SCHED_CCWS_HPP

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "common/warp_mask.hpp"
#include "core/scheduler.hpp"
#include "core/sm.hpp"

namespace apres {

/** CCWS tuning knobs. */
struct CcwsConfig
{
    int vtaEntries = 32;      ///< victim tags per warp
    /**
     * Also probe a shared (SM-wide) victim tag array. Detects lost
     * *inter-warp* locality — a line one warp fetched, another warp
     * re-misses after eviction — which per-warp VTAs are blind to.
     * GPU working sets are often shared between warps (Section III-B),
     * so throttling should react to both flavours.
     */
    bool sharedVta = false;
    int sharedVtaEntries = 256; ///< tags in the shared array
    int scoreBonus = 96;      ///< score added per lost-locality event
    int scoreCap = 288;       ///< per-warp score ceiling (anti-windup)
    int decayPeriod = 32;     ///< cycles per unit of linear score decay
    int throttleScale = 48;   ///< score needed to retire one warp slot
    int minActiveWarps = 12;  ///< never throttle below this
};

/**
 * CCWS scheduler.
 */
class CcwsScheduler final : public Scheduler
{
  public:
    explicit CcwsScheduler(const CcwsConfig& config = {});

    void attach(SmContext& sm) override;

    WarpId pick(Cycle now, const std::vector<WarpId>& ready) override;

    void notifyAccessResult(const LoadAccessInfo& info) override;

    void
    notifyWarpFinished(WarpId warp) override
    {
        if (warp == greedyWarp)
            greedyWarp = kInvalidWarp;
    }

    const char* name() const override { return "CCWS"; }

    void reportStats(StatSet& out) const override;

    /** Current number of schedulable warps (for tests/reports). */
    int activeLimit() const;

    /** Total lost-locality score (for tests). */
    std::int64_t totalScore() const;

    /** Lifetime count of lost-locality detections (for tests). */
    std::uint64_t lostLocalityEvents() const { return events; }

  private:
    void onEviction(Addr line_addr, const WarpMask& toucher_mask);
    void bump(WarpId warp);
    void decay(Cycle now);

    CcwsConfig cfg;
    SmContext* sm = nullptr;
    std::vector<std::deque<Addr>> vtas;      // per-warp victim tags
    std::deque<Addr> sharedVtaFifo;          // shared victim tags (FIFO)
    std::unordered_set<Addr> sharedVtaSet;   // membership index
    std::vector<std::int64_t> scores;        // per-warp lost locality
    std::vector<WarpId> eligibleScratch;
    WarpId greedyWarp = kInvalidWarp;
    Cycle lastDecay = 0;
    std::uint64_t events = 0;
};

} // namespace apres

#endif // APRES_SCHED_CCWS_HPP
