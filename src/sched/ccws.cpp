/**
 * @file
 * CCWS implementation.
 */

#include "ccws.hpp"

#include <algorithm>
#include <cassert>

#include "common/stats.hpp"

namespace apres {

CcwsScheduler::CcwsScheduler(const CcwsConfig& config) : cfg(config)
{
    assert(cfg.vtaEntries >= 1);
    assert(cfg.throttleScale >= 1);
    assert(cfg.minActiveWarps >= 1);
}

void
CcwsScheduler::attach(SmContext& sm_ref)
{
    sm = &sm_ref;
    vtas.assign(static_cast<std::size_t>(sm->numWarps()), {});
    scores.assign(static_cast<std::size_t>(sm->numWarps()), 0);
    sm->l1Mutable().setEvictionListener(
        [this](Addr line, const WarpMask& mask) { onEviction(line, mask); });
}

void
CcwsScheduler::onEviction(Addr line_addr, const WarpMask& toucher_mask)
{
    // Record the victim tag in the VTA of every warp that touched the
    // line: if that warp re-references it soon, locality was lost.
    toucher_mask.forEachSet([&](WarpId w) {
        if (static_cast<std::size_t>(w) >= vtas.size())
            return;
        std::deque<Addr>& vta = vtas[static_cast<std::size_t>(w)];
        vta.push_back(line_addr);
        if (static_cast<int>(vta.size()) > cfg.vtaEntries)
            vta.pop_front();
    });
    if (cfg.sharedVta && toucher_mask.any() &&
        sharedVtaSet.insert(line_addr).second) {
        sharedVtaFifo.push_back(line_addr);
        if (static_cast<int>(sharedVtaFifo.size()) > cfg.sharedVtaEntries) {
            sharedVtaSet.erase(sharedVtaFifo.front());
            sharedVtaFifo.pop_front();
        }
    }
}

void
CcwsScheduler::notifyAccessResult(const LoadAccessInfo& info)
{
    if (info.hit)
        return;
    std::deque<Addr>& vta = vtas[static_cast<std::size_t>(info.warp)];
    const auto it = std::find(vta.begin(), vta.end(), info.baseLineAddr);
    if (it != vta.end()) {
        vta.erase(it);
        bump(info.warp);
        return;
    }
    if (cfg.sharedVta) {
        const auto shared_it = sharedVtaSet.find(info.baseLineAddr);
        if (shared_it != sharedVtaSet.end()) {
            // Inter-warp lost locality: any warp would have hit had
            // the line survived.
            sharedVtaSet.erase(shared_it);
            const auto fifo_it = std::find(sharedVtaFifo.begin(),
                                           sharedVtaFifo.end(),
                                           info.baseLineAddr);
            if (fifo_it != sharedVtaFifo.end())
                sharedVtaFifo.erase(fifo_it);
            bump(info.warp);
        }
    }
}

void
CcwsScheduler::bump(WarpId warp)
{
    std::int64_t& s = scores[static_cast<std::size_t>(warp)];
    s = std::min<std::int64_t>(s + cfg.scoreBonus, cfg.scoreCap);
    ++events;
}

void
CcwsScheduler::decay(Cycle now)
{
    if (now < lastDecay + static_cast<Cycle>(cfg.decayPeriod))
        return;
    // Integral controller with anti-windup: slow linear decay makes
    // the throttle hover exactly at the level where lost-locality
    // events just keep occurring (the fit/thrash boundary), while the
    // per-warp score cap bounds how long recovery takes once the
    // working set fits.
    const auto delta = static_cast<std::int64_t>(
        (now - lastDecay) / static_cast<Cycle>(cfg.decayPeriod));
    lastDecay = now;
    for (std::int64_t& s : scores)
        s = std::max<std::int64_t>(0, s - delta);
}

std::int64_t
CcwsScheduler::totalScore() const
{
    std::int64_t total = 0;
    for (const std::int64_t s : scores)
        total += s;
    return total;
}

int
CcwsScheduler::activeLimit() const
{
    const int num_warps = static_cast<int>(scores.size());
    const auto throttled =
        static_cast<int>(totalScore() / cfg.throttleScale);
    const int floor_warps = std::min(cfg.minActiveWarps, num_warps);
    return std::max(floor_warps, num_warps - throttled);
}

WarpId
CcwsScheduler::pick(Cycle now, const std::vector<WarpId>& ready)
{
    decay(now);
    if (ready.empty())
        return kInvalidWarp;

    // Eligible warps: the `activeLimit()` oldest running warps by
    // block launch order. Throttling suspends the youngest warps
    // first, shrinking the combined working set.
    const int limit = activeLimit();
    eligibleScratch.clear();
    for (int w = 0; w < sm->numWarps(); ++w) {
        if (!sm->warpState(w).finished)
            eligibleScratch.push_back(w);
    }
    std::sort(eligibleScratch.begin(), eligibleScratch.end(),
              [this](WarpId a, WarpId b) {
                  return sm->warpState(a).ageStamp <
                      sm->warpState(b).ageStamp;
              });
    if (static_cast<int>(eligibleScratch.size()) > limit)
        eligibleScratch.resize(static_cast<std::size_t>(limit));

    const auto eligible = [this](WarpId w) {
        return std::find(eligibleScratch.begin(), eligibleScratch.end(),
                         w) != eligibleScratch.end();
    };

    // Greedy-then-oldest among eligible warps.
    if (greedyWarp != kInvalidWarp && eligible(greedyWarp)) {
        for (const WarpId w : ready) {
            if (w == greedyWarp)
                return w;
        }
    }
    for (const WarpId candidate : eligibleScratch) {
        if (std::find(ready.begin(), ready.end(), candidate) !=
            ready.end()) {
            greedyWarp = candidate;
            return candidate;
        }
    }
    // All ready warps are throttled: intentional stall.
    return kInvalidWarp;
}

void
CcwsScheduler::reportStats(StatSet& out) const
{
    out.accumulate("ccws.activeLimitSum",
                   static_cast<double>(activeLimit()));
    out.accumulate("ccws.scoreSum", static_cast<double>(totalScore()));
    out.accumulate("ccws.events", static_cast<double>(events));
}

} // namespace apres
