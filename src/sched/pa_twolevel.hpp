/**
 * @file
 * Prefetch-Aware two-level warp scheduler (Jog et al., ISCA 2013).
 *
 * Warps are statically partitioned into fetch groups of
 * @ref PaConfig::groupSize consecutive IDs. The scheduler round-robins
 * *within* the active group and only switches groups when the active
 * group has no ready warp (all stalled on memory). Keeping
 * non-consecutive groups apart in time creates the timeliness window
 * the paired prefetcher exploits: group g's demand accesses train the
 * stride tables whose prefetches land just before group g+1 issues the
 * same loads.
 */

#ifndef APRES_SCHED_PA_TWOLEVEL_HPP
#define APRES_SCHED_PA_TWOLEVEL_HPP

#include "core/scheduler.hpp"
#include "core/sm.hpp"

namespace apres {

/** PA two-level scheduler knobs. */
struct PaConfig
{
    int groupSize = 8; ///< warps per fetch group
};

/**
 * Prefetch-aware two-level scheduler.
 */
class PaScheduler final : public Scheduler
{
  public:
    explicit PaScheduler(const PaConfig& config = {});

    void attach(SmContext& sm) override;

    WarpId pick(Cycle now, const std::vector<WarpId>& ready) override;

    const char* name() const override { return "PA"; }

    /** Currently active fetch group (for tests). */
    int activeGroup() const { return group; }

  private:
    int groupOf(WarpId warp) const { return warp / cfg.groupSize; }

    PaConfig cfg;
    int numGroups = 1;
    int group = 0;
    WarpId lastInGroup = -1;
};

} // namespace apres

#endif // APRES_SCHED_PA_TWOLEVEL_HPP
