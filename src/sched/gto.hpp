/**
 * @file
 * Greedy-Then-Oldest warp scheduler.
 *
 * Keeps issuing from the same warp until it stalls, then falls back to
 * the oldest ready warp (lowest ID, since all warps launch together).
 * GTO creates a natural leader/laggard split that reduces cache
 * contention relative to LRR.
 */

#ifndef APRES_SCHED_GTO_HPP
#define APRES_SCHED_GTO_HPP

#include "core/scheduler.hpp"
#include "core/sm.hpp"

namespace apres {

/**
 * Greedy-then-oldest scheduler.
 */
class GtoScheduler final : public Scheduler
{
  public:
    void attach(SmContext& sm) override { this->sm = &sm; }

    WarpId pick(Cycle now, const std::vector<WarpId>& ready) override;

    void
    notifyWarpFinished(WarpId warp) override
    {
        if (warp == greedyWarp)
            greedyWarp = kInvalidWarp;
    }

    const char* name() const override { return "GTO"; }

  private:
    SmContext* sm = nullptr;
    WarpId greedyWarp = kInvalidWarp;
};

} // namespace apres

#endif // APRES_SCHED_GTO_HPP
