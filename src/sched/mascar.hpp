/**
 * @file
 * MASCAR: Memory-Aware Scheduling and Cache Access Re-execution
 * (Sethia et al., HPCA 2015) — scheduling half.
 *
 * MASCAR observes that when the memory subsystem saturates, issuing
 * memory instructions from many warps only lengthens the queues. In
 * *memory-saturation mode* it grants a single "owner" warp exclusive
 * permission to issue memory operations while the remaining warps may
 * only issue compute, overlapping the owner's misses with useful work.
 * Out of saturation it behaves greedily like GTO.
 */

#ifndef APRES_SCHED_MASCAR_HPP
#define APRES_SCHED_MASCAR_HPP

#include "core/scheduler.hpp"
#include "core/sm.hpp"

namespace apres {

/** MASCAR tuning knobs. */
struct MascarConfig
{
    /** MSHR occupancy fraction that enters saturation mode. */
    double saturateHigh = 0.9;
    /** MSHR occupancy fraction that leaves saturation mode. */
    double saturateLow = 0.6;
};

/**
 * MASCAR scheduler.
 */
class MascarScheduler final : public Scheduler
{
  public:
    explicit MascarScheduler(const MascarConfig& config = {});

    void attach(SmContext& sm) override { this->sm = &sm; }

    WarpId pick(Cycle now, const std::vector<WarpId>& ready) override;

    void
    notifyWarpFinished(WarpId warp) override
    {
        if (warp == ownerWarp)
            ownerWarp = kInvalidWarp;
        if (warp == greedyWarp)
            greedyWarp = kInvalidWarp;
    }

    const char* name() const override { return "MASCAR"; }

    /** True while in memory-saturation mode (for tests). */
    bool saturated() const { return inSaturation; }

  private:
    void updateSaturation();

    MascarConfig cfg;
    SmContext* sm = nullptr;
    bool inSaturation = false;
    WarpId ownerWarp = kInvalidWarp;
    WarpId greedyWarp = kInvalidWarp;
};

} // namespace apres

#endif // APRES_SCHED_MASCAR_HPP
