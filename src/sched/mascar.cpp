/**
 * @file
 * MASCAR implementation.
 */

#include "mascar.hpp"

namespace apres {

MascarScheduler::MascarScheduler(const MascarConfig& config) : cfg(config) {}

void
MascarScheduler::updateSaturation()
{
    const double occupancy =
        static_cast<double>(sm->l1().mshrsInUse()) /
        static_cast<double>(sm->l1().config().numMshrs);
    if (!inSaturation && occupancy >= cfg.saturateHigh)
        inSaturation = true;
    else if (inSaturation && occupancy <= cfg.saturateLow)
        inSaturation = false;
}

WarpId
MascarScheduler::pick(Cycle now, const std::vector<WarpId>& ready)
{
    (void)now;
    if (ready.empty())
        return kInvalidWarp;
    updateSaturation();

    if (!inSaturation) {
        // GTO behaviour when memory keeps up.
        if (greedyWarp != kInvalidWarp) {
            for (const WarpId w : ready) {
                if (w == greedyWarp)
                    return w;
            }
        }
        greedyWarp = ready.front();
        return greedyWarp;
    }

    // Saturation: only the owner warp may issue memory instructions.
    if (ownerWarp == kInvalidWarp ||
        sm->warpState(ownerWarp).finished) {
        // Adopt the oldest ready warp with a pending memory op; if no
        // warp wants memory, any ready warp may own.
        ownerWarp = kInvalidWarp;
        for (const WarpId w : ready) {
            if (sm->nextIsMemory(w)) {
                ownerWarp = w;
                break;
            }
        }
        if (ownerWarp == kInvalidWarp)
            ownerWarp = ready.front();
    }

    // Owner first (it may issue anything).
    for (const WarpId w : ready) {
        if (w == ownerWarp)
            return w;
    }
    // Otherwise: compute-only issue from the remaining warps.
    for (const WarpId w : ready) {
        if (!sm->nextIsMemory(w))
            return w;
    }
    // Every ready warp wants memory and none is the owner: stall so
    // the queues drain.
    return kInvalidWarp;
}

} // namespace apres
