/**
 * @file
 * Loose Round-Robin warp scheduler — the paper's baseline.
 *
 * All ready warps have equal priority; the scheduler issues from the
 * first ready warp after the one issued last cycle, wrapping around
 * warp IDs (Section II). LRR tends to advance all warps in lockstep,
 * which makes every warp reach the long-latency loads at roughly the
 * same time — the behaviour APRES sets out to fix.
 */

#ifndef APRES_SCHED_LRR_HPP
#define APRES_SCHED_LRR_HPP

#include "core/scheduler.hpp"
#include "core/sm.hpp"

namespace apres {

/**
 * Loose round-robin scheduler.
 */
class LrrScheduler final : public Scheduler
{
  public:
    void attach(SmContext& sm) override { numWarps = sm.numWarps(); }

    WarpId pick(Cycle now, const std::vector<WarpId>& ready) override;

    const char* name() const override { return "LRR"; }

  private:
    int numWarps = 0;
    WarpId lastIssued = -1;
};

} // namespace apres

#endif // APRES_SCHED_LRR_HPP
