/**
 * @file
 * CCWS controller sensitivity: sweep the lost-locality score gain, the
 * throttle scale and the active-warp floor on the two cache-sensitive
 * applications where throttling matters most (KM, SPMV), plus SRAD as
 * the over-throttling canary.
 *
 * The integral controller's defaults (bonus 96, cap 288, scale 48,
 * floor 12) sit where KM keeps most of its gain without SRAD
 * collapsing; this bench documents that trade-off.
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const double scale = benchScale();
    const char* apps[] = {"KM", "SPMV", "SRAD"};

    struct Variant
    {
        const char* label;
        int bonus;
        int cap;
        int throttleScale;
        int minActive;
    };
    const Variant variants[] = {
        {"default", 96, 288, 48, 12},
        {"gain/2", 48, 288, 48, 12},
        {"gain*2", 192, 288, 48, 12},
        {"scale*2", 96, 288, 96, 12},
        {"floor6", 96, 288, 48, 6},
        {"floor20", 96, 288, 48, 20},
        {"cap/2", 96, 144, 48, 12},
    };

    BenchSweep sweep(opts);
    std::vector<std::size_t> base_jobs;
    std::vector<std::vector<std::size_t>> var_jobs;
    for (const char* app : apps) {
        const auto kernel = loadKernel(app, scale);
        base_jobs.push_back(
            sweep.add(std::string(app) + "/base", baselineConfig(), kernel));
        auto& row = var_jobs.emplace_back();
        for (const Variant& v : variants) {
            const GpuConfig cfg = configWith({
                {"scheduler", "ccws"},
                {"ccws.scoreBonus", std::to_string(v.bonus)},
                {"ccws.scoreCap", std::to_string(v.cap)},
                {"ccws.throttleScale", std::to_string(v.throttleScale)},
                {"ccws.minActiveWarps", std::to_string(v.minActive)},
            });
            row.push_back(
                sweep.add(std::string(app) + "/" + v.label, cfg, kernel));
        }
    }
    sweep.run();

    std::cout << "=== CCWS controller sensitivity (IPC vs LRR baseline) "
                 "===\n\n";
    std::vector<std::string> headers;
    for (const Variant& v : variants)
        headers.emplace_back(v.label);
    printHeader("app", headers);

    for (std::size_t n = 0; n < std::size(apps); ++n) {
        const RunResult& base = sweep.result(base_jobs[n]);
        std::vector<double> row;
        for (std::size_t i = 0; i < std::size(variants); ++i) {
            const RunResult& r = sweep.result(var_jobs[n][i]);
            row.push_back(r.ipc / base.ipc);
        }
        printRow(apps[n], row);
    }
    return 0;
}
