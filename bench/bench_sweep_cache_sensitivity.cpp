/**
 * @file
 * L1 capacity sweep: IPC at 16 KB / 32 KB / 64 KB / 256 KB / 1 MB,
 * normalized to the 32 KB baseline — the sensitivity analysis behind
 * Table IV's three categories (cache-sensitive apps respond strongly,
 * cache-insensitive and compute-intensive ones barely).
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main()
{
    const double scale = benchScale();
    const std::vector<std::uint64_t> sizes = {
        16 * 1024, 32 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024,
    };

    std::cout << "=== L1 capacity sweep (IPC normalized to 32 KB) ===\n\n";
    printHeader("app", {"16K", "32K", "64K", "256K", "1M", "category"});

    for (const std::string& name : allWorkloadNames()) {
        const Workload wl = makeWorkload(name, scale);

        GpuConfig ref = baselineConfig();
        const RunResult base = runBench(ref, wl.kernel);

        std::vector<double> row;
        for (const std::uint64_t size : sizes) {
            GpuConfig cfg = baselineConfig();
            cfg.sm.l1.sizeBytes = size;
            const RunResult r = runBench(cfg, wl.kernel);
            row.push_back(r.ipc / base.ipc);
        }
        // Encode the category as a number for the fixed-width printer:
        // 0 = cache-sensitive, 1 = cache-insensitive, 2 = compute.
        row.push_back(static_cast<double>(static_cast<int>(wl.category)));
        printRow(name, row);
    }
    std::cout << "\n(category: 0=cache-sensitive 1=cache-insensitive "
                 "2=compute-intensive)\n";
    return 0;
}
