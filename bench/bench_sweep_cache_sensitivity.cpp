/**
 * @file
 * L1 capacity sweep: IPC at 16 KB / 32 KB / 64 KB / 256 KB / 1 MB,
 * normalized to the 32 KB baseline — the sensitivity analysis behind
 * Table IV's three categories (cache-sensitive apps respond strongly,
 * cache-insensitive and compute-intensive ones barely).
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const double scale = benchScale();
    const std::vector<std::uint64_t> sizes = {
        16 * 1024, 32 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024,
    };

    BenchSweep sweep(opts);
    std::vector<std::size_t> base_jobs;
    std::vector<std::vector<std::size_t>> size_jobs;
    std::vector<AppCategory> categories;
    for (const std::string& name : allWorkloadNames()) {
        const auto workload = loadWorkload(name, scale);
        categories.push_back(workload->category);
        const auto kernel = kernelOf(workload);
        base_jobs.push_back(
            sweep.add(name + "/ref", baselineConfig(), kernel));
        auto& row = size_jobs.emplace_back();
        for (const std::uint64_t size : sizes) {
            const GpuConfig cfg =
                configWith({{"l1.sizeBytes", std::to_string(size)}});
            row.push_back(sweep.add(
                name + "/" + std::to_string(size / 1024) + "K", cfg,
                kernel));
        }
    }
    sweep.run();

    std::cout << "=== L1 capacity sweep (IPC normalized to 32 KB) ===\n\n";
    printHeader("app", {"16K", "32K", "64K", "256K", "1M", "category"});

    const auto& names = allWorkloadNames();
    for (std::size_t n = 0; n < names.size(); ++n) {
        const RunResult& base = sweep.result(base_jobs[n]);
        std::vector<double> row;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const RunResult& r = sweep.result(size_jobs[n][i]);
            row.push_back(r.ipc / base.ipc);
        }
        // Encode the category as a number for the fixed-width printer:
        // 0 = cache-sensitive, 1 = cache-insensitive, 2 = compute.
        row.push_back(
            static_cast<double>(static_cast<int>(categories[n])));
        printRow(names[n], row);
    }
    std::cout << "\n(category: 0=cache-sensitive 1=cache-insensitive "
                 "2=compute-intensive)\n";
    return 0;
}
