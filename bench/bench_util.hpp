/**
 * @file
 * Shared helpers for the paper-reproduction benches: config builders
 * for the evaluated scheduler/prefetcher combinations, geometric-mean
 * aggregation, and fixed-width table printing.
 */

#ifndef APRES_BENCH_BENCH_UTIL_HPP
#define APRES_BENCH_BENCH_UTIL_HPP

#include <cmath>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "sim/gpu.hpp"
#include "workloads/workload.hpp"

namespace apres::bench {

/** Trip-count multiplier; override with APRES_BENCH_SCALE. */
double benchScale();

/** A config under evaluation, with its display label. */
struct NamedConfig
{
    std::string label;
    GpuConfig config;
};

/** Build a config for one scheduler/prefetcher pair. */
NamedConfig makeConfig(SchedulerKind sched, PrefetcherKind pf);

/** The paper's baseline (LRR, no prefetching, Table III sizes). */
GpuConfig baselineConfig();

/** Geometric mean; empty input yields 1. */
double geomean(const std::vector<double>& values);

/** Print a table header: first column wide, rest fixed width. */
void printHeader(const std::string& first,
                 const std::vector<std::string>& columns);

/** Print one row of doubles with @p precision decimals. */
void printRow(const std::string& first, const std::vector<double>& values,
              int precision = 3);

/** Run @p kernel under @p config at the bench scale. */
RunResult runBench(const GpuConfig& config, const Kernel& kernel);

} // namespace apres::bench

#endif // APRES_BENCH_BENCH_UTIL_HPP
