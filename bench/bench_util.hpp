/**
 * @file
 * Shared helpers for the paper-reproduction benches: config builders
 * for the evaluated scheduler/prefetcher combinations, geometric-mean
 * aggregation, fixed-width table printing, and the BenchSweep front
 * end to the parallel sweep runner every driver submits through.
 */

#ifndef APRES_BENCH_BENCH_UTIL_HPP
#define APRES_BENCH_BENCH_UTIL_HPP

#include <cmath>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/gpu.hpp"
#include "sim/runner.hpp"
#include "workloads/workload.hpp"

namespace apres::bench {

/**
 * Trip-count multiplier; override with APRES_BENCH_SCALE. Non-numeric,
 * zero, negative or otherwise unusable values are rejected with a
 * warning and fall back to the default of 1.0.
 */
double benchScale();

/** Strict APRES_BENCH_SCALE parse; @return the fallback on bad input. */
double parseBenchScale(const char* text, double fallback = 1.0);

/** Common bench command-line options. */
struct BenchOptions
{
    /** Worker threads (--jobs N / APRES_BENCH_JOBS); 0 = auto. */
    int jobs = 0;

    /** Per-job wall-clock deadline in seconds (--job-timeout); 0 = off. */
    double jobTimeoutSeconds = 0.0;

    /** Re-run attempts after a failed job (--retries). */
    int retries = 0;

    /** Finish the sweep despite failures (--keep-going). */
    bool keepGoing = false;
};

/**
 * Parse bench argv: `--jobs N` (or `-j N`) sets the sweep thread
 * count; `--job-timeout S`, `--retries N` and `--keep-going` configure
 * fault isolation (see RunnerOptions); `--help` prints usage and
 * exits. Unknown arguments terminate via fatal() so typos never
 * silently run a full sweep.
 */
BenchOptions parseBenchArgs(int argc, char** argv);

/** A config under evaluation, with its display label. */
struct NamedConfig
{
    std::string label;
    GpuConfig config;
};

/** Build a config for one scheduler/prefetcher pair (registry names). */
NamedConfig makeConfig(const std::string& sched, const std::string& pf);

/** The paper's baseline (LRR, no prefetching, Table III sizes). */
GpuConfig baselineConfig();

/**
 * The baseline with dotted-key overrides applied through the
 * ConfigRegistry, e.g. configWith({{"l1.sizeBytes", "65536"}}).
 * Fatal on unknown keys or invalid values.
 */
GpuConfig configWith(
    const std::vector<std::pair<std::string, std::string>>& overrides);

/** Geometric mean; empty input yields 1. */
double geomean(const std::vector<double>& values);

/** Print a table header: first column wide, rest fixed width. */
void printHeader(const std::string& first,
                 const std::vector<std::string>& columns);

/** Print one row of doubles with @p precision decimals. */
void printRow(const std::string& first, const std::vector<double>& values,
              int precision = 3);

/** Build workload @p name at @p scale as a shared handle. */
std::shared_ptr<const Workload> loadWorkload(const std::string& name,
                                             double scale);

/**
 * Build workload @p name at bench scale and return its kernel as a
 * shared handle the sweep jobs can co-own (the workload stays alive
 * as long as any job references the kernel).
 */
std::shared_ptr<const Kernel> loadKernel(const std::string& name,
                                         double scale);

/** Aliasing kernel handle into an already-loaded workload. */
std::shared_ptr<const Kernel> kernelOf(std::shared_ptr<const Workload> wl);

/**
 * Sweep front end used by the bench drivers: collect jobs up front,
 * run them all in parallel (results in submission order), then read
 * results back by the index add() returned.
 */
class BenchSweep
{
  public:
    explicit BenchSweep(const BenchOptions& options = {});

    /** Enqueue a job. @return its result index. */
    std::size_t add(std::string label, const GpuConfig& config,
                    std::shared_ptr<const Kernel> kernel);

    /** Enqueue a job with a post-run inspect hook (worker thread). */
    std::size_t add(std::string label, const GpuConfig& config,
                    std::shared_ptr<const Kernel> kernel,
                    std::function<void(const Gpu&, RunResult&)> inspect);

    /**
     * Run everything; prints a progress line to stderr. On a job
     * failure the process exits non-zero with a failure summary —
     * after the whole sweep drained when --keep-going was given,
     * immediately (remaining jobs skipped) otherwise.
     */
    void run();

    /** Result of job @p index (valid after run()). */
    const RunResult& result(std::size_t index) const;

    /** Full per-job record (seed, wall time) of job @p index. */
    const SweepResult& record(std::size_t index) const;

    /** Number of submitted jobs. */
    std::size_t size() const { return runner.size(); }

  private:
    SweepRunner runner;
    std::vector<SweepResult> results;
    bool ran = false;
};

/** Run @p kernel under @p config at the bench scale (single run). */
RunResult runBench(const GpuConfig& config, const Kernel& kernel);

} // namespace apres::bench

#endif // APRES_BENCH_BENCH_UTIL_HPP
