/**
 * @file
 * Figure 10: IPC of CCWS, LAWS, CCWS+STR, LAWS+STR and APRES,
 * normalized to the LRR baseline, per benchmark plus the geometric
 * means per category and overall.
 *
 * Paper reference points: CCWS +12.8%, LAWS +14.0%, CCWS+STR +17.5%,
 * LAWS+STR +18.8%, APRES +24.2% over all 15 benchmarks; APRES +31.7%
 * on the memory-intensive set; KM is the one cache-sensitive app
 * where CCWS(+STR) beats APRES.
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const double scale = benchScale();
    const std::vector<NamedConfig> configs = {
        makeConfig("ccws", "none"),
        makeConfig("laws", "none"),
        makeConfig("ccws", "str"),
        makeConfig("laws", "str"),
        makeConfig("laws", "sap"), // APRES
    };

    BenchSweep sweep(opts);
    std::vector<std::size_t> base_jobs;
    std::vector<std::vector<std::size_t>> cfg_jobs;
    for (const std::string& name : allWorkloadNames()) {
        const auto kernel = loadKernel(name, scale);
        base_jobs.push_back(
            sweep.add(name + "/base", baselineConfig(), kernel));
        auto& row = cfg_jobs.emplace_back();
        for (const NamedConfig& c : configs)
            row.push_back(sweep.add(name + "/" + c.label, c.config, kernel));
    }
    sweep.run();

    std::cout << "=== Figure 10: IPC normalized to baseline (LRR) ===\n\n";
    std::vector<std::string> headers;
    for (const NamedConfig& c : configs)
        headers.push_back(c.label);
    printHeader("app", headers);

    std::vector<std::vector<double>> all(configs.size());
    std::vector<std::vector<double>> memint(configs.size());

    const auto& names = allWorkloadNames();
    for (std::size_t n = 0; n < names.size(); ++n) {
        const RunResult& base = sweep.result(base_jobs[n]);
        std::vector<double> row;
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const RunResult& r = sweep.result(cfg_jobs[n][i]);
            const double speedup = r.ipc / base.ipc;
            row.push_back(speedup);
            all[i].push_back(speedup);
            if (isMemoryIntensive(names[n]))
                memint[i].push_back(speedup);
        }
        printRow(names[n], row);
    }

    std::vector<double> gm_all;
    std::vector<double> gm_mem;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        gm_all.push_back(geomean(all[i]));
        gm_mem.push_back(geomean(memint[i]));
    }
    std::cout << '\n';
    printRow("GM-all", gm_all);
    printRow("GM-mem", gm_mem);
    return 0;
}
