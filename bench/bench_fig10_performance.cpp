/**
 * @file
 * Figure 10: IPC of CCWS, LAWS, CCWS+STR, LAWS+STR and APRES,
 * normalized to the LRR baseline, per benchmark plus the geometric
 * means per category and overall.
 *
 * Paper reference points: CCWS +12.8%, LAWS +14.0%, CCWS+STR +17.5%,
 * LAWS+STR +18.8%, APRES +24.2% over all 15 benchmarks; APRES +31.7%
 * on the memory-intensive set; KM is the one cache-sensitive app
 * where CCWS(+STR) beats APRES.
 */

#include <map>

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main()
{
    const double scale = benchScale();
    const std::vector<NamedConfig> configs = {
        makeConfig(SchedulerKind::kCcws, PrefetcherKind::kNone),
        makeConfig(SchedulerKind::kLaws, PrefetcherKind::kNone),
        makeConfig(SchedulerKind::kCcws, PrefetcherKind::kStr),
        makeConfig(SchedulerKind::kLaws, PrefetcherKind::kStr),
        makeConfig(SchedulerKind::kLaws, PrefetcherKind::kSap), // APRES
    };

    std::cout << "=== Figure 10: IPC normalized to baseline (LRR) ===\n\n";
    std::vector<std::string> headers;
    for (const NamedConfig& c : configs)
        headers.push_back(c.label);
    printHeader("app", headers);

    std::map<std::string, std::vector<double>> by_category;
    std::vector<std::vector<double>> all(configs.size());
    std::vector<std::vector<double>> memint(configs.size());

    for (const std::string& name : allWorkloadNames()) {
        const Workload wl = makeWorkload(name, scale);
        const RunResult base = runBench(baselineConfig(), wl.kernel);
        std::vector<double> row;
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const RunResult r = runBench(configs[i].config, wl.kernel);
            const double speedup = r.ipc / base.ipc;
            row.push_back(speedup);
            all[i].push_back(speedup);
            if (isMemoryIntensive(name))
                memint[i].push_back(speedup);
        }
        printRow(name, row);
    }

    std::vector<double> gm_all;
    std::vector<double> gm_mem;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        gm_all.push_back(geomean(all[i]));
        gm_mem.push_back(geomean(memint[i]));
    }
    std::cout << '\n';
    printRow("GM-all", gm_all);
    printRow("GM-mem", gm_mem);
    return 0;
}
