/**
 * @file
 * DRAM-model ablation: the flat service-rate channel (the reference
 * configuration, matched to Table III's aggregate bandwidth) vs the
 * bank/row-buffer extension, under the baseline and under APRES.
 *
 * The row-buffer model rewards sequential streams (row hits) and
 * punishes scattered ones, so it shifts the balance between the
 * thrash-dominated and stream-dominated applications; the reference
 * results in EXPERIMENTS.md use the flat model.
 */

#include <array>

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const double scale = benchScale();

    GpuConfig base_flat = baselineConfig();
    GpuConfig base_rows = baselineConfig();
    base_rows.mem.dram.rowBufferModel = true;
    GpuConfig apres_flat = baselineConfig();
    apres_flat.useApres();
    GpuConfig apres_rows = apres_flat;
    apres_rows.mem.dram.rowBufferModel = true;

    std::vector<std::string> apps;
    for (const std::string& name : allWorkloadNames()) {
        if (isMemoryIntensive(name))
            apps.push_back(name);
    }

    struct RowStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };
    std::vector<RowStats> row_stats(apps.size());

    BenchSweep sweep(opts);
    std::vector<std::array<std::size_t, 4>> jobs(apps.size());
    for (std::size_t n = 0; n < apps.size(); ++n) {
        const auto kernel = loadKernel(apps[n], scale);
        jobs[n][0] = sweep.add(apps[n] + "/B.flat", base_flat, kernel);
        jobs[n][1] = sweep.add(apps[n] + "/B.rows", base_rows, kernel);
        jobs[n][2] = sweep.add(apps[n] + "/APRES.flat", apres_flat, kernel);
        // The row-hit percentage lives in the DRAM model, not in
        // RunResult: harvest it on the worker thread via the inspect
        // hook (each job writes only its own slot).
        RowStats* slot = &row_stats[n];
        jobs[n][3] = sweep.add(
            apps[n] + "/APRES.rows", apres_rows, kernel,
            [slot, num_partitions = apres_rows.mem.numPartitions](
                const Gpu& gpu, RunResult&) {
                for (int p = 0; p < num_partitions; ++p) {
                    slot->hits += gpu.memorySystem().dram(p).stats().rowHits;
                    slot->misses +=
                        gpu.memorySystem().dram(p).stats().rowMisses;
                }
            });
    }
    sweep.run();

    std::cout << "=== DRAM model ablation: flat channel vs bank/row "
                 "buffer ===\n"
                 "(IPC normalized to the flat-channel baseline; rowHit% "
                 "from the row model)\n\n";
    printHeader("app", {"B.rows", "APRES.flat", "APRES.rows", "rowHit%"});

    for (std::size_t n = 0; n < apps.size(); ++n) {
        const RunResult& rbf = sweep.result(jobs[n][0]);
        const RunResult& rbr = sweep.result(jobs[n][1]);
        const RunResult& raf = sweep.result(jobs[n][2]);
        const RunResult& rar = sweep.result(jobs[n][3]);
        const RowStats& rows = row_stats[n];
        const double hit_pct = rows.hits + rows.misses
            ? 100.0 * static_cast<double>(rows.hits) /
                  static_cast<double>(rows.hits + rows.misses)
            : 0.0;

        printRow(apps[n], {rbr.ipc / rbf.ipc, raf.ipc / rbf.ipc,
                           rar.ipc / rbf.ipc, hit_pct});
    }
    return 0;
}
