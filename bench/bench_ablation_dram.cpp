/**
 * @file
 * DRAM-model ablation: the flat service-rate channel (the reference
 * configuration, matched to Table III's aggregate bandwidth) vs the
 * bank/row-buffer extension, under the baseline and under APRES.
 *
 * The row-buffer model rewards sequential streams (row hits) and
 * punishes scattered ones, so it shifts the balance between the
 * thrash-dominated and stream-dominated applications; the reference
 * results in EXPERIMENTS.md use the flat model.
 */

#include <array>

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const double scale = benchScale();

    const GpuConfig base_flat = baselineConfig();
    const GpuConfig base_rows = configWith({{"dram.rowBufferModel", "true"}});
    const GpuConfig apres_flat =
        configWith({{"scheduler", "laws"}, {"prefetcher", "sap"}});
    const GpuConfig apres_rows = configWith({{"scheduler", "laws"},
                                             {"prefetcher", "sap"},
                                             {"dram.rowBufferModel", "true"}});

    std::vector<std::string> apps;
    for (const std::string& name : allWorkloadNames()) {
        if (isMemoryIntensive(name))
            apps.push_back(name);
    }

    BenchSweep sweep(opts);
    std::vector<std::array<std::size_t, 4>> jobs(apps.size());
    for (std::size_t n = 0; n < apps.size(); ++n) {
        const auto kernel = loadKernel(apps[n], scale);
        jobs[n][0] = sweep.add(apps[n] + "/B.flat", base_flat, kernel);
        jobs[n][1] = sweep.add(apps[n] + "/B.rows", base_rows, kernel);
        jobs[n][2] = sweep.add(apps[n] + "/APRES.flat", apres_flat, kernel);
        jobs[n][3] = sweep.add(apps[n] + "/APRES.rows", apres_rows, kernel);
    }
    sweep.run();

    std::cout << "=== DRAM model ablation: flat channel vs bank/row "
                 "buffer ===\n"
                 "(IPC normalized to the flat-channel baseline; rowHit% "
                 "from the row model)\n\n";
    printHeader("app", {"B.rows", "APRES.flat", "APRES.rows", "rowHit%"});

    for (std::size_t n = 0; n < apps.size(); ++n) {
        const RunResult& rbf = sweep.result(jobs[n][0]);
        const RunResult& rbr = sweep.result(jobs[n][1]);
        const RunResult& raf = sweep.result(jobs[n][2]);
        const RunResult& rar = sweep.result(jobs[n][3]);
        // RunResult carries the row-buffer counters directly now; no
        // inspect-hook side channel needed.
        const std::uint64_t row_total = rar.dramRowHits + rar.dramRowMisses;
        const double hit_pct = row_total
            ? 100.0 * static_cast<double>(rar.dramRowHits) /
                  static_cast<double>(row_total)
            : 0.0;

        printRow(apps[n], {rbr.ipc / rbf.ipc, raf.ipc / rbf.ipc,
                           rar.ipc / rbf.ipc, hit_pct});
    }
    return 0;
}
