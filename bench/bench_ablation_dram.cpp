/**
 * @file
 * DRAM-model ablation: the flat service-rate channel (the reference
 * configuration, matched to Table III's aggregate bandwidth) vs the
 * bank/row-buffer extension, under the baseline and under APRES.
 *
 * The row-buffer model rewards sequential streams (row hits) and
 * punishes scattered ones, so it shifts the balance between the
 * thrash-dominated and stream-dominated applications; the reference
 * results in EXPERIMENTS.md use the flat model.
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main()
{
    const double scale = benchScale();

    GpuConfig base_flat = baselineConfig();
    GpuConfig base_rows = baselineConfig();
    base_rows.mem.dram.rowBufferModel = true;
    GpuConfig apres_flat = baselineConfig();
    apres_flat.useApres();
    GpuConfig apres_rows = apres_flat;
    apres_rows.mem.dram.rowBufferModel = true;

    std::cout << "=== DRAM model ablation: flat channel vs bank/row "
                 "buffer ===\n"
                 "(IPC normalized to the flat-channel baseline; rowHit% "
                 "from the row model)\n\n";
    printHeader("app", {"B.rows", "APRES.flat", "APRES.rows", "rowHit%"});

    for (const std::string& name : allWorkloadNames()) {
        if (!isMemoryIntensive(name))
            continue;
        const Workload wl = makeWorkload(name, scale);
        const RunResult rbf = runBench(base_flat, wl.kernel);
        const RunResult rbr = runBench(base_rows, wl.kernel);
        const RunResult raf = runBench(apres_flat, wl.kernel);

        Gpu gpu(apres_rows, wl.kernel);
        const RunResult rar = gpu.run();
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        for (int p = 0; p < apres_rows.mem.numPartitions; ++p) {
            hits += gpu.memorySystem().dram(p).stats().rowHits;
            misses += gpu.memorySystem().dram(p).stats().rowMisses;
        }
        const double hit_pct = hits + misses
            ? 100.0 * static_cast<double>(hits) /
                  static_cast<double>(hits + misses)
            : 0.0;

        printRow(name, {rbr.ipc / rbf.ipc, raf.ipc / rbf.ipc,
                        rar.ipc / rbf.ipc, hit_pct});
    }
    return 0;
}
