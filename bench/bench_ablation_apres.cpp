/**
 * @file
 * Ablation study of the APRES design choices DESIGN.md calls out:
 *
 *  - LAWS hit-group promotion on/off,
 *  - LAWS miss-group demotion on/off,
 *  - SAP prefetch-target promotion on/off (the LAWS/SAP cooperation),
 *  - LAWS group-size cap (uncapped vs the 8-warp pipeline argument of
 *    Section IV),
 *  - SAP prefetch-table size (10 entries per Table II vs smaller),
 *  - the prefetch MSHR saturation gate.
 *
 * Run on the memory-intensive applications; IPC normalized to full
 * APRES.
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

namespace {

GpuConfig
apresConfig()
{
    GpuConfig cfg;
    cfg.useApres();
    return cfg;
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const double scale = benchScale();

    std::vector<NamedConfig> variants;
    variants.push_back({"full", apresConfig()});

    {
        NamedConfig v{"-hitProm", apresConfig()};
        v.config.laws.promoteOnHit = false;
        variants.push_back(v);
    }
    {
        NamedConfig v{"-missDem", apresConfig()};
        v.config.laws.demoteOnMiss = false;
        variants.push_back(v);
    }
    {
        NamedConfig v{"-pfProm", apresConfig()};
        v.config.laws.promotePrefetchTargets = false;
        variants.push_back(v);
    }
    {
        NamedConfig v{"cap8", apresConfig()};
        v.config.laws.groupCap = 8;
        variants.push_back(v);
    }
    {
        NamedConfig v{"pt2", apresConfig()};
        v.config.sap.ptEntries = 2;
        variants.push_back(v);
    }
    {
        NamedConfig v{"-gate", apresConfig()};
        v.config.sm.prefetchMshrGate = 1.0; // gate disabled
        variants.push_back(v);
    }

    std::vector<std::string> apps;
    for (const std::string& name : allWorkloadNames()) {
        if (isMemoryIntensive(name))
            apps.push_back(name);
    }

    BenchSweep sweep(opts);
    std::vector<std::vector<std::size_t>> jobs; // [app][variant]
    for (const std::string& name : apps) {
        const auto kernel = loadKernel(name, scale);
        auto& row = jobs.emplace_back();
        for (const NamedConfig& v : variants)
            row.push_back(sweep.add(name + "/" + v.label, v.config, kernel));
    }
    sweep.run();

    std::cout << "=== APRES ablations (IPC normalized to full APRES, "
                 "memory-intensive apps) ===\n\n";
    std::vector<std::string> headers;
    for (std::size_t i = 1; i < variants.size(); ++i)
        headers.push_back(variants[i].label);
    printHeader("app", headers);

    std::vector<std::vector<double>> per_variant(variants.size() - 1);
    for (std::size_t n = 0; n < apps.size(); ++n) {
        const RunResult& full = sweep.result(jobs[n][0]);
        std::vector<double> row;
        for (std::size_t i = 1; i < variants.size(); ++i) {
            const RunResult& r = sweep.result(jobs[n][i]);
            row.push_back(r.ipc / full.ipc);
            per_variant[i - 1].push_back(row.back());
        }
        printRow(apps[n], row);
    }

    std::vector<double> gm;
    for (const auto& values : per_variant)
        gm.push_back(geomean(values));
    std::cout << '\n';
    printRow("GM", gm);
    return 0;
}
