/**
 * @file
 * Ablation study of the APRES design choices DESIGN.md calls out:
 *
 *  - LAWS hit-group promotion on/off,
 *  - LAWS miss-group demotion on/off,
 *  - SAP prefetch-target promotion on/off (the LAWS/SAP cooperation),
 *  - LAWS group-size cap (uncapped vs the 8-warp pipeline argument of
 *    Section IV),
 *  - SAP prefetch-table size (10 entries per Table II vs smaller),
 *  - the prefetch MSHR saturation gate.
 *
 * Run on the memory-intensive applications; IPC normalized to full
 * APRES.
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

namespace {

/** Full APRES plus the ablation's dotted-key config overrides. */
NamedConfig
variantConfig(std::string label,
              std::vector<std::pair<std::string, std::string>> overrides)
{
    std::vector<std::pair<std::string, std::string>> all = {
        {"scheduler", "laws"}, {"prefetcher", "sap"}};
    all.insert(all.end(), overrides.begin(), overrides.end());
    return {std::move(label), configWith(all)};
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const double scale = benchScale();

    const std::vector<NamedConfig> variants = {
        variantConfig("full", {}),
        variantConfig("-hitProm", {{"laws.promoteOnHit", "false"}}),
        variantConfig("-missDem", {{"laws.demoteOnMiss", "false"}}),
        variantConfig("-pfProm", {{"laws.promotePrefetchTargets", "false"}}),
        variantConfig("cap8", {{"laws.groupCap", "8"}}),
        variantConfig("pt2", {{"sap.ptEntries", "2"}}),
        // gate disabled
        variantConfig("-gate", {{"sm.prefetchMshrGate", "1.0"}}),
    };

    std::vector<std::string> apps;
    for (const std::string& name : allWorkloadNames()) {
        if (isMemoryIntensive(name))
            apps.push_back(name);
    }

    BenchSweep sweep(opts);
    std::vector<std::vector<std::size_t>> jobs; // [app][variant]
    for (const std::string& name : apps) {
        const auto kernel = loadKernel(name, scale);
        auto& row = jobs.emplace_back();
        for (const NamedConfig& v : variants)
            row.push_back(sweep.add(name + "/" + v.label, v.config, kernel));
    }
    sweep.run();

    std::cout << "=== APRES ablations (IPC normalized to full APRES, "
                 "memory-intensive apps) ===\n\n";
    std::vector<std::string> headers;
    for (std::size_t i = 1; i < variants.size(); ++i)
        headers.push_back(variants[i].label);
    printHeader("app", headers);

    std::vector<std::vector<double>> per_variant(variants.size() - 1);
    for (std::size_t n = 0; n < apps.size(); ++n) {
        const RunResult& full = sweep.result(jobs[n][0]);
        std::vector<double> row;
        for (std::size_t i = 1; i < variants.size(); ++i) {
            const RunResult& r = sweep.result(jobs[n][i]);
            row.push_back(r.ipc / full.ipc);
            per_variant[i - 1].push_back(row.back());
        }
        printRow(apps[n], row);
    }

    std::vector<double> gm;
    for (const auto& values : per_variant)
        gm.push_back(geomean(values));
    std::cout << '\n';
    printRow("GM", gm);
    return 0;
}
