/**
 * @file
 * Table II: the hardware cost of APRES, recomputed from the structure
 * dimensions the paper itemizes. Expected total: 724 bytes per SM,
 * ~2% of the 32 KB L1.
 */

#include <iomanip>
#include <iostream>

#include "apres/hardware_cost.hpp"

using namespace apres;

int
main()
{
    const HardwareCostParams params;
    const HardwareCost cost = computeHardwareCost(params);

    std::cout << "=== Table II: hardware cost of APRES ===\n\n";
    std::cout << "LAWS:\n"
              << "  LLT  (4B x " << params.warpsPerSm
              << " warps)          = " << cost.lltBytes << " B\n"
              << "  WGT  (" << params.warpsPerSm << "b x "
              << params.wgtEntries << " entries)        = " << cost.wgtBytes
              << " B\n"
              << "SAP:\n"
              << "  DRQ  (8B x " << params.drqEntries
              << " entries)        = " << cost.drqBytes << " B\n"
              << "  WQ   (1B x " << params.wqEntries
              << " entries)        = " << cost.wqBytes << " B\n"
              << "  PT   ((4+1+8+8)B x " << params.ptEntries
              << ")       = " << cost.ptBytes << " B\n\n"
              << "LAWS subtotal = " << cost.lawsBytes() << " B\n"
              << "SAP subtotal  = " << cost.sapBytes() << " B\n"
              << "Total         = " << cost.totalBytes()
              << " B  (paper: 724 B)\n\n"
              << "Fraction of a 32 KB L1: " << std::fixed
              << std::setprecision(2)
              << 100.0 * cost.fractionOfL1(32 * 1024)
              << "% (paper, CACTI-based: 2.06%)\n";
    return 0;
}
