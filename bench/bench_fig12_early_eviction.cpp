/**
 * @file
 * Figure 12: early-eviction ratio, CCWS+STR vs APRES.
 *
 * Paper reference points: 13.0% (CCWS+STR) vs 8.6% (APRES) on
 * average — the cooperative LAWS/SAP loop merges the targeted warps'
 * demands into the prefetch MSHRs before the lines can be evicted.
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main()
{
    const double scale = benchScale();
    const NamedConfig ccws_str =
        makeConfig(SchedulerKind::kCcws, PrefetcherKind::kStr);
    const NamedConfig apres_cfg =
        makeConfig(SchedulerKind::kLaws, PrefetcherKind::kSap);

    std::cout << "=== Figure 12: early eviction ratio ===\n\n";
    printHeader("app", {"CCWS+STR", "APRES"});

    double sum_s = 0.0;
    double sum_a = 0.0;
    int n = 0;
    for (const std::string& name : allWorkloadNames()) {
        const Workload wl = makeWorkload(name, scale);
        const RunResult rs = runBench(ccws_str.config, wl.kernel);
        const RunResult ra = runBench(apres_cfg.config, wl.kernel);
        printRow(name, {rs.earlyEvictionRatio(), ra.earlyEvictionRatio()});
        sum_s += rs.earlyEvictionRatio();
        sum_a += ra.earlyEvictionRatio();
        ++n;
    }
    std::cout << '\n';
    printRow("AVG", {sum_s / n, sum_a / n});
    return 0;
}
