/**
 * @file
 * Figure 12: early-eviction ratio, CCWS+STR vs APRES.
 *
 * Paper reference points: 13.0% (CCWS+STR) vs 8.6% (APRES) on
 * average — the cooperative LAWS/SAP loop merges the targeted warps'
 * demands into the prefetch MSHRs before the lines can be evicted.
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const double scale = benchScale();
    const NamedConfig ccws_str =
        makeConfig("ccws", "str");
    const NamedConfig apres_cfg =
        makeConfig("laws", "sap");

    BenchSweep sweep(opts);
    std::vector<std::size_t> s_jobs;
    std::vector<std::size_t> a_jobs;
    for (const std::string& name : allWorkloadNames()) {
        const auto kernel = loadKernel(name, scale);
        s_jobs.push_back(
            sweep.add(name + "/CCWS+STR", ccws_str.config, kernel));
        a_jobs.push_back(
            sweep.add(name + "/APRES", apres_cfg.config, kernel));
    }
    sweep.run();

    std::cout << "=== Figure 12: early eviction ratio ===\n\n";
    printHeader("app", {"CCWS+STR", "APRES"});

    double sum_s = 0.0;
    double sum_a = 0.0;
    int n_apps = 0;
    const auto& names = allWorkloadNames();
    for (std::size_t n = 0; n < names.size(); ++n) {
        const RunResult& rs = sweep.result(s_jobs[n]);
        const RunResult& ra = sweep.result(a_jobs[n]);
        printRow(names[n],
                 {rs.earlyEvictionRatio(), ra.earlyEvictionRatio()});
        sum_s += rs.earlyEvictionRatio();
        sum_a += ra.earlyEvictionRatio();
        ++n_apps;
    }
    std::cout << '\n';
    printRow("AVG", {sum_s / n_apps, sum_a / n_apps});
    return 0;
}
