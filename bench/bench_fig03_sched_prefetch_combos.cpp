/**
 * @file
 * Figure 3: speedups of the existing scheduler x prefetcher
 * combinations — {PA, GTO, MASCAR, CCWS} x {STR, SLD} — normalized to
 * the LRR baseline.
 *
 * Paper reference points: CCWS+STR is the best existing combination
 * (+17.5%); SLD trails STR everywhere except under PA because its
 * macro blocks only cover strides below 256 B while Table I's strides
 * are usually far larger.
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const double scale = benchScale();
    const std::vector<NamedConfig> configs = {
        makeConfig("pa", "str"),
        makeConfig("pa", "sld"),
        makeConfig("gto", "str"),
        makeConfig("gto", "sld"),
        makeConfig("mascar", "str"),
        makeConfig("mascar", "sld"),
        makeConfig("ccws", "str"),
        makeConfig("ccws", "sld"),
    };

    BenchSweep sweep(opts);
    std::vector<std::size_t> base_jobs;
    std::vector<std::vector<std::size_t>> cfg_jobs;
    for (const std::string& name : allWorkloadNames()) {
        const auto kernel = loadKernel(name, scale);
        base_jobs.push_back(
            sweep.add(name + "/base", baselineConfig(), kernel));
        auto& row = cfg_jobs.emplace_back();
        for (const NamedConfig& c : configs)
            row.push_back(sweep.add(name + "/" + c.label, c.config, kernel));
    }
    sweep.run();

    std::cout << "=== Figure 3: existing scheduling x prefetching combos "
                 "(IPC vs LRR) ===\n\n";
    std::vector<std::string> headers;
    for (const NamedConfig& c : configs)
        headers.push_back(c.label);
    printHeader("app", headers);

    std::vector<std::vector<double>> per_config(configs.size());
    const auto& names = allWorkloadNames();
    for (std::size_t n = 0; n < names.size(); ++n) {
        const RunResult& base = sweep.result(base_jobs[n]);
        std::vector<double> row;
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const RunResult& r = sweep.result(cfg_jobs[n][i]);
            row.push_back(r.ipc / base.ipc);
            per_config[i].push_back(row.back());
        }
        printRow(names[n], row);
    }

    std::vector<double> gm;
    for (const auto& values : per_config)
        gm.push_back(geomean(values));
    std::cout << '\n';
    printRow("GM", gm);
    return 0;
}
