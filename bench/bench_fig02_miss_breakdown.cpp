/**
 * @file
 * Figure 2: L1 miss-rate breakdown (cold vs capacity+conflict) for the
 * baseline 32 KB L1 (B) and a hypothetical 32 MB L1 (C), plus the
 * relative performance of C over B — the motivation experiment showing
 * that capacity/conflict misses dominate the memory-intensive
 * applications and that removing them pays.
 *
 * Paper reference points: capacity+conflict misses are 62.8% of the
 * memory-intensive miss rate; KM speeds up 3.4x with the huge cache.
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const double scale = benchScale();

    GpuConfig huge = baselineConfig();
    huge.sm.l1.sizeBytes = 32 * 1024 * 1024;

    BenchSweep sweep(opts);
    std::vector<std::size_t> b_jobs;
    std::vector<std::size_t> c_jobs;
    for (const std::string& name : allWorkloadNames()) {
        const auto kernel = loadKernel(name, scale);
        b_jobs.push_back(sweep.add(name + "/32K", baselineConfig(), kernel));
        c_jobs.push_back(sweep.add(name + "/32M", huge, kernel));
    }
    sweep.run();

    std::cout << "=== Figure 2: L1 miss breakdown, 32KB (B) vs 32MB (C) "
                 "===\n\n";
    printHeader("app", {"B.cold", "B.capconf", "B.miss", "C.cold",
                        "C.capconf", "C.miss", "C-perf"});

    double mem_capconf_share_sum = 0.0;
    int mem_apps = 0;

    const auto& names = allWorkloadNames();
    for (std::size_t n = 0; n < names.size(); ++n) {
        const RunResult& rb = sweep.result(b_jobs[n]);
        const RunResult& rc = sweep.result(c_jobs[n]);

        const auto frac = [](std::uint64_t num, std::uint64_t den) {
            return den ? static_cast<double>(num) / static_cast<double>(den)
                       : 0.0;
        };
        printRow(names[n],
                 {frac(rb.l1.coldMisses, rb.l1.demandAccesses),
                  frac(rb.l1.capacityConflictMisses, rb.l1.demandAccesses),
                  rb.l1.missRate(),
                  frac(rc.l1.coldMisses, rc.l1.demandAccesses),
                  frac(rc.l1.capacityConflictMisses, rc.l1.demandAccesses),
                  rc.l1.missRate(),
                  rc.ipc / rb.ipc});

        if (isMemoryIntensive(names[n]) && rb.l1.demandMisses > 0) {
            mem_capconf_share_sum +=
                frac(rb.l1.capacityConflictMisses, rb.l1.demandMisses);
            ++mem_apps;
        }
    }

    std::cout << "\ncapacity+conflict share of memory-intensive misses: "
              << std::fixed << std::setprecision(1)
              << 100.0 * mem_capconf_share_sum / mem_apps
              << "% (paper: 62.8%)\n";
    return 0;
}
