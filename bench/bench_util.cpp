/**
 * @file
 * Bench helper implementation.
 */

#include "bench_util.hpp"

#include <cstdlib>
#include <cstring>

#include "common/log.hpp"
#include "common/parse.hpp"
#include "sim/config_registry.hpp"

namespace apres::bench {

double
parseBenchScale(const char* text, double fallback)
{
    if (text == nullptr || *text == '\0')
        return fallback;
    double parsed = 0.0;
    if (!parseDoubleStrict(text, &parsed) || parsed <= 0.0) {
        logWarn("ignoring APRES_BENCH_SCALE=\"", text,
                "\" (want a positive number); using ", fallback);
        return fallback;
    }
    return parsed;
}

double
benchScale()
{
    return parseBenchScale(std::getenv("APRES_BENCH_SCALE"));
}

BenchOptions
parseBenchArgs(int argc, char** argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
            std::cout << "usage: " << argv[0]
                      << " [--jobs N] [--job-timeout S] [--retries N]"
                         " [--keep-going]\n"
                      << "  --jobs N, -j N  sweep worker threads "
                         "(default: APRES_BENCH_JOBS or hardware "
                         "concurrency)\n"
                      << "  --job-timeout S per-job wall-clock deadline in "
                         "seconds (default: none)\n"
                      << "  --retries N     re-run a failed job up to N "
                         "times (same seed; default 0)\n"
                      << "  --keep-going    run every job despite "
                         "failures; exit non-zero with a summary\n"
                      << "  APRES_BENCH_SCALE  trip-count multiplier "
                         "(default 1.0)\n";
            std::exit(0);
        }
        if (std::strcmp(arg, "--jobs") == 0 || std::strcmp(arg, "-j") == 0) {
            if (i + 1 >= argc)
                fatal(std::string(arg) + " requires a value");
            opts.jobs = static_cast<int>(
                parsePositiveUintOption(arg, argv[++i]));
            continue;
        }
        if (std::strcmp(arg, "--job-timeout") == 0) {
            if (i + 1 >= argc)
                fatal(std::string(arg) + " requires a value");
            opts.jobTimeoutSeconds =
                parsePositiveDoubleOption(arg, argv[++i]);
            continue;
        }
        if (std::strcmp(arg, "--retries") == 0) {
            if (i + 1 >= argc)
                fatal(std::string(arg) + " requires a value");
            opts.retries = static_cast<int>(
                parsePositiveUintOption(arg, argv[++i]));
            continue;
        }
        if (std::strcmp(arg, "--keep-going") == 0) {
            opts.keepGoing = true;
            continue;
        }
        fatal(std::string("unknown argument \"") + arg +
              "\" (try --help)");
    }
    return opts;
}

GpuConfig
baselineConfig()
{
    return GpuConfig{}; // defaults are Table III
}

NamedConfig
makeConfig(const std::string& sched, const std::string& pf)
{
    NamedConfig named;
    named.config.scheduler = sched;
    named.config.prefetcher = pf;
    named.label = named.config.label();
    return named;
}

GpuConfig
configWith(const std::vector<std::pair<std::string, std::string>>& overrides)
{
    GpuConfig cfg = baselineConfig();
    applyOverrides(cfg, overrides);
    return cfg;
}

double
geomean(const std::vector<double>& values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (const double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

void
printHeader(const std::string& first, const std::vector<std::string>& columns)
{
    std::cout << std::left << std::setw(8) << first << std::right;
    for (const std::string& c : columns)
        std::cout << std::setw(12) << c;
    std::cout << '\n';
}

void
printRow(const std::string& first, const std::vector<double>& values,
         int precision)
{
    std::cout << std::left << std::setw(8) << first << std::right
              << std::fixed << std::setprecision(precision);
    for (const double v : values)
        std::cout << std::setw(12) << v;
    std::cout << '\n';
}

std::shared_ptr<const Workload>
loadWorkload(const std::string& name, double scale)
{
    return std::make_shared<Workload>(makeWorkload(name, scale));
}

std::shared_ptr<const Kernel>
kernelOf(std::shared_ptr<const Workload> wl)
{
    // Aliasing handle: shares ownership of the workload, points at its
    // kernel.
    const Kernel* kernel = &wl->kernel;
    return {std::move(wl), kernel};
}

std::shared_ptr<const Kernel>
loadKernel(const std::string& name, double scale)
{
    return kernelOf(loadWorkload(name, scale));
}

namespace {

RunnerOptions
runnerOptions(const BenchOptions& options)
{
    RunnerOptions ropts;
    ropts.threads = options.jobs;
    ropts.progress = true;
    ropts.jobTimeoutSeconds = options.jobTimeoutSeconds;
    ropts.retries = options.retries;
    ropts.keepGoing = options.keepGoing;
    return ropts;
}

} // namespace

BenchSweep::BenchSweep(const BenchOptions& options)
    : runner(runnerOptions(options))
{
}

std::size_t
BenchSweep::add(std::string label, const GpuConfig& config,
                std::shared_ptr<const Kernel> kernel)
{
    return runner.submit(std::move(label), config, std::move(kernel));
}

std::size_t
BenchSweep::add(std::string label, const GpuConfig& config,
                std::shared_ptr<const Kernel> kernel,
                std::function<void(const Gpu&, RunResult&)> inspect)
{
    SweepJob job;
    job.label = std::move(label);
    job.config = config;
    job.kernel = std::move(kernel);
    job.inspect = std::move(inspect);
    return runner.submit(std::move(job));
}

void
BenchSweep::run()
{
    // Without --keep-going a failure propagates out of runAll();
    // surface it as a clean error instead of std::terminate.
    try {
        results = runner.runAll();
    } catch (const std::exception& e) {
        std::cerr << "[apres-sweep] sweep aborted: " << e.what() << '\n';
        std::exit(1);
    }
    ran = true;
    const std::string failures = failureSummary(results);
    if (!failures.empty()) {
        // --keep-going path: the sweep drained, but some rows are
        // error rows a table/geomean must not silently average in.
        std::cerr << "[apres-sweep] " << failures;
        std::exit(1);
    }
}

const RunResult&
BenchSweep::result(std::size_t index) const
{
    return record(index).result;
}

const SweepResult&
BenchSweep::record(std::size_t index) const
{
    if (!ran)
        fatal("BenchSweep::result called before run()");
    return results.at(index);
}

RunResult
runBench(const GpuConfig& config, const Kernel& kernel)
{
    return simulate(config, kernel);
}

} // namespace apres::bench
