/**
 * @file
 * Bench helper implementation.
 */

#include "bench_util.hpp"

#include <cstdlib>

namespace apres::bench {

double
benchScale()
{
    if (const char* env = std::getenv("APRES_BENCH_SCALE"))
        return std::atof(env);
    return 1.0;
}

GpuConfig
baselineConfig()
{
    return GpuConfig{}; // defaults are Table III
}

NamedConfig
makeConfig(SchedulerKind sched, PrefetcherKind pf)
{
    NamedConfig named;
    named.config.scheduler = sched;
    named.config.prefetcher = pf;
    named.label = named.config.label();
    return named;
}

double
geomean(const std::vector<double>& values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (const double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

void
printHeader(const std::string& first, const std::vector<std::string>& columns)
{
    std::cout << std::left << std::setw(8) << first << std::right;
    for (const std::string& c : columns)
        std::cout << std::setw(12) << c;
    std::cout << '\n';
}

void
printRow(const std::string& first, const std::vector<double>& values,
         int precision)
{
    std::cout << std::left << std::setw(8) << first << std::right
              << std::fixed << std::setprecision(precision);
    for (const double v : values)
        std::cout << std::setw(12) << v;
    std::cout << '\n';
}

RunResult
runBench(const GpuConfig& config, const Kernel& kernel)
{
    return simulate(config, kernel);
}

} // namespace apres::bench
