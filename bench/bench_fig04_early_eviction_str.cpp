/**
 * @file
 * Figure 4: early-eviction ratio of the STR prefetcher under the four
 * existing schedulers, over the memory-intensive applications.
 *
 * Early eviction = a correctly predicted prefetched line evicted
 * before its demand access arrives (Section III-C). Paper reference
 * points: CCWS+STR 13.0%, PA+STR 14.2%, GTO+STR 16.0%, MASCAR+STR
 * 15.2% — the headroom APRES's cooperative scheduling reclaims.
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const double scale = benchScale();
    const std::vector<NamedConfig> configs = {
        makeConfig("pa", "str"),
        makeConfig("gto", "str"),
        makeConfig("mascar", "str"),
        makeConfig("ccws", "str"),
    };

    std::vector<std::string> apps;
    for (const std::string& name : allWorkloadNames()) {
        if (isMemoryIntensive(name))
            apps.push_back(name);
    }

    BenchSweep sweep(opts);
    std::vector<std::vector<std::size_t>> cfg_jobs;
    for (const std::string& name : apps) {
        const auto kernel = loadKernel(name, scale);
        auto& row = cfg_jobs.emplace_back();
        for (const NamedConfig& c : configs)
            row.push_back(sweep.add(name + "/" + c.label, c.config, kernel));
    }
    sweep.run();

    std::cout << "=== Figure 4: early eviction ratio of STR prefetching "
                 "===\n\n";
    std::vector<std::string> headers;
    for (const NamedConfig& c : configs)
        headers.push_back(c.label);
    printHeader("app", headers);

    std::vector<std::vector<double>> per_config(configs.size());
    for (std::size_t n = 0; n < apps.size(); ++n) {
        std::vector<double> row;
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const RunResult& r = sweep.result(cfg_jobs[n][i]);
            row.push_back(r.earlyEvictionRatio());
            per_config[i].push_back(row.back());
        }
        printRow(apps[n], row);
    }

    std::cout << '\n';
    std::vector<double> avg;
    for (const auto& values : per_config) {
        double sum = 0.0;
        for (const double v : values)
            sum += v;
        avg.push_back(values.empty() ? 0.0 : sum / values.size());
    }
    printRow("AVG", avg);
    return 0;
}
