/**
 * @file
 * Figure 13: average memory latency of CCWS+STR and APRES, normalized
 * to the LRR baseline.
 *
 * Paper reference points: APRES cuts average memory latency by 16.5%
 * vs the baseline and 9.7% vs CCWS+STR; the reduction tracks the
 * cache-hit gains (a less congested memory system queues less).
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const double scale = benchScale();
    const NamedConfig ccws_str =
        makeConfig("ccws", "str");
    const NamedConfig apres_cfg =
        makeConfig("laws", "sap");

    BenchSweep sweep(opts);
    std::vector<std::size_t> b_jobs;
    std::vector<std::size_t> s_jobs;
    std::vector<std::size_t> a_jobs;
    for (const std::string& name : allWorkloadNames()) {
        const auto kernel = loadKernel(name, scale);
        b_jobs.push_back(
            sweep.add(name + "/base", baselineConfig(), kernel));
        s_jobs.push_back(
            sweep.add(name + "/CCWS+STR", ccws_str.config, kernel));
        a_jobs.push_back(
            sweep.add(name + "/APRES", apres_cfg.config, kernel));
    }
    sweep.run();

    std::cout << "=== Figure 13: average memory latency (normalized to "
                 "baseline) ===\n\n";
    printHeader("app", {"CCWS+STR", "APRES"});

    std::vector<double> s_vals;
    std::vector<double> a_vals;
    const auto& names = allWorkloadNames();
    for (std::size_t n = 0; n < names.size(); ++n) {
        const RunResult& rb = sweep.result(b_jobs[n]);
        const RunResult& rs = sweep.result(s_jobs[n]);
        const RunResult& ra = sweep.result(a_jobs[n]);
        const double s = rs.avgLoadLatency / rb.avgLoadLatency;
        const double a = ra.avgLoadLatency / rb.avgLoadLatency;
        printRow(names[n], {s, a});
        s_vals.push_back(s);
        a_vals.push_back(a);
    }
    std::cout << '\n';
    printRow("GM", {geomean(s_vals), geomean(a_vals)});
    return 0;
}
