/**
 * @file
 * Figure 13: average memory latency of CCWS+STR and APRES, normalized
 * to the LRR baseline.
 *
 * Paper reference points: APRES cuts average memory latency by 16.5%
 * vs the baseline and 9.7% vs CCWS+STR; the reduction tracks the
 * cache-hit gains (a less congested memory system queues less).
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main()
{
    const double scale = benchScale();
    const NamedConfig ccws_str =
        makeConfig(SchedulerKind::kCcws, PrefetcherKind::kStr);
    const NamedConfig apres_cfg =
        makeConfig(SchedulerKind::kLaws, PrefetcherKind::kSap);

    std::cout << "=== Figure 13: average memory latency (normalized to "
                 "baseline) ===\n\n";
    printHeader("app", {"CCWS+STR", "APRES"});

    std::vector<double> s_vals;
    std::vector<double> a_vals;
    for (const std::string& name : allWorkloadNames()) {
        const Workload wl = makeWorkload(name, scale);
        const RunResult rb = runBench(baselineConfig(), wl.kernel);
        const RunResult rs = runBench(ccws_str.config, wl.kernel);
        const RunResult ra = runBench(apres_cfg.config, wl.kernel);
        const double s = rs.avgLoadLatency / rb.avgLoadLatency;
        const double a = ra.avgLoadLatency / rb.avgLoadLatency;
        printRow(name, {s, a});
        s_vals.push_back(s);
        a_vals.push_back(a);
    }
    std::cout << '\n';
    printRow("GM", {geomean(s_vals), geomean(a_vals)});
    return 0;
}
