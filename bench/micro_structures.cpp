/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot structures:
 * cache access/fill, coalescing, the LAWS queue operations, SAP and
 * STR table lookups, address generation and the RNG.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "apres/laws.hpp"
#include "core/lsu_structures.hpp"
#include "apres/sap.hpp"
#include "common/rng.hpp"
#include "core/prefetcher.hpp"
#include "isa/address_gen.hpp"
#include "mem/cache.hpp"
#include "mem/coalescer.hpp"
#include "prefetch/str.hpp"
#include "sim/gpu.hpp"
#include "workloads/workload.hpp"

namespace apres {
namespace {

void
BM_RngNext(benchmark::State& state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_Mix64(benchmark::State& state)
{
    std::uint64_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(mix64(++i));
}
BENCHMARK(BM_Mix64);

void
BM_AddressGenStrided(benchmark::State& state)
{
    StridedGen gen(0x1000, 4352, 4352 * 48);
    std::uint64_t i = 0;
    for (auto _ : state) {
        const AddrCtx ctx{0, static_cast<WarpId>(i % 48), i / 48};
        benchmark::DoNotOptimize(gen.base(ctx));
        ++i;
    }
}
BENCHMARK(BM_AddressGenStrided);

void
BM_AddressGenIrregular(benchmark::State& state)
{
    IrregularGen gen(0x1000, 2 * 1024 * 1024, 8, 2, 7, 2);
    std::uint64_t i = 0;
    for (auto _ : state) {
        const AddrCtx ctx{0, static_cast<WarpId>(i % 48), i / 48};
        benchmark::DoNotOptimize(gen.base(ctx));
        ++i;
    }
}
BENCHMARK(BM_AddressGenIrregular);

void
BM_CoalesceCoalesced(benchmark::State& state)
{
    Coalescer c(128);
    for (auto _ : state)
        benchmark::DoNotOptimize(c.coalesce(0x1000, 4));
}
BENCHMARK(BM_CoalesceCoalesced);

void
BM_CoalesceScattered(benchmark::State& state)
{
    Coalescer c(128);
    for (auto _ : state)
        benchmark::DoNotOptimize(c.coalesce(0x1000, 128));
}
BENCHMARK(BM_CoalesceScattered);

void
BM_CacheHit(benchmark::State& state)
{
    CacheConfig cfg;
    Cache cache("b", cfg);
    MemRequest req;
    req.lineAddr = 0x1000;
    cache.access(req);
    cache.fill(0x1000);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(req));
}
BENCHMARK(BM_CacheHit);

void
BM_CacheMissFillCycle(benchmark::State& state)
{
    CacheConfig cfg;
    Cache cache("b", cfg);
    Addr line = 0;
    for (auto _ : state) {
        MemRequest req;
        req.lineAddr = line;
        benchmark::DoNotOptimize(cache.access(req));
        cache.fill(line);
        line += 128;
    }
}
BENCHMARK(BM_CacheMissFillCycle);

void
BM_StrOnAccess(benchmark::State& state)
{
    StrPrefetcher str;
    class NullIssuer : public PrefetchIssuer
    {
      public:
        bool issuePrefetch(Addr, Pc, WarpId) override { return false; }
    } issuer;
    Addr addr = 0x1000;
    for (auto _ : state) {
        LoadAccessInfo info;
        info.pc = 0x100;
        info.baseAddr = addr;
        info.baseLineAddr = addr & ~Addr{127};
        str.onAccess(info, issuer);
        addr += 4352;
    }
}
BENCHMARK(BM_StrOnAccess);

/**
 * LSU hot-structure shootout: the free-list TokenSlab / FIFO
 * HitEventRing that replaced the token->Track unordered_map and the
 * HitEvent priority queue (PR 3). Both pairs are driven with the
 * LSU's actual steady-state pattern: a bounded population of live
 * entries with constant insert/complete churn (tokens complete in
 * roughly insertion order; hit completions *exactly* in order since
 * the hit latency is constant).
 */
struct BenchTrack
{
    int warp = 0;
    int dstReg = -1;
    int remaining = 0;
    std::uint64_t accepted = 0;
};

constexpr int kLiveTracks = 64; // ~MSHR-bounded live population

void
BM_TokenMapChurn(benchmark::State& state)
{
    std::unordered_map<std::uint64_t, BenchTrack> tracks;
    std::uint64_t next_token = 0;
    std::uint64_t oldest = 0;
    for (int i = 0; i < kLiveTracks; ++i)
        tracks.emplace(next_token++, BenchTrack{});
    for (auto _ : state) {
        tracks.emplace(next_token++, BenchTrack{});
        auto it = tracks.find(oldest++);
        benchmark::DoNotOptimize(it->second.remaining);
        tracks.erase(it);
    }
}
BENCHMARK(BM_TokenMapChurn);

void
BM_TokenSlabChurn(benchmark::State& state)
{
    TokenSlab<BenchTrack> tracks;
    std::vector<std::uint64_t> live;
    for (int i = 0; i < kLiveTracks; ++i)
        live.push_back(tracks.insert(BenchTrack{}));
    std::size_t oldest = 0;
    for (auto _ : state) {
        live.push_back(tracks.insert(BenchTrack{}));
        const std::uint64_t token = live[oldest++];
        benchmark::DoNotOptimize(tracks.at(token).remaining);
        tracks.erase(token);
    }
}
BENCHMARK(BM_TokenSlabChurn);

constexpr std::uint64_t kHitLatency = 28;

void
BM_HitHeapChurn(benchmark::State& state)
{
    struct HitEvent
    {
        std::uint64_t ready = 0;
        std::uint64_t token = 0;
        bool operator>(const HitEvent& other) const
        {
            return ready > other.ready;
        }
    };
    std::priority_queue<HitEvent, std::vector<HitEvent>,
                        std::greater<HitEvent>>
        events;
    std::uint64_t now = 0;
    for (int i = 0; i < kLiveTracks; ++i) {
        events.push({now + kHitLatency, now});
        ++now;
    }
    for (auto _ : state) {
        events.push({now + kHitLatency, now});
        ++now;
        benchmark::DoNotOptimize(events.top().token);
        events.pop();
    }
}
BENCHMARK(BM_HitHeapChurn);

void
BM_HitRingChurn(benchmark::State& state)
{
    HitEventRing events;
    std::uint64_t now = 0;
    for (int i = 0; i < kLiveTracks; ++i) {
        events.push(now + kHitLatency, now);
        ++now;
    }
    for (auto _ : state) {
        events.push(now + kHitLatency, now);
        ++now;
        benchmark::DoNotOptimize(events.front().token);
        events.pop();
    }
}
BENCHMARK(BM_HitRingChurn);

void
BM_SimulatedKiloCycles(benchmark::State& state)
{
    // End-to-end simulator throughput: cost of 1000 GPU cycles of KM
    // under APRES on a 4-SM configuration.
    const Workload wl = makeWorkload("KM", 1.0);
    GpuConfig cfg;
    cfg.useApres();
    cfg.numSms = 4;
    Gpu gpu(cfg, wl.kernel);
    for (auto _ : state)
        gpu.step(1000);
}
BENCHMARK(BM_SimulatedKiloCycles)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace apres

BENCHMARK_MAIN();
