/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot structures:
 * cache access/fill, coalescing, the LAWS queue operations, SAP and
 * STR table lookups, address generation and the RNG.
 */

#include <benchmark/benchmark.h>

#include "apres/laws.hpp"
#include "apres/sap.hpp"
#include "common/rng.hpp"
#include "core/prefetcher.hpp"
#include "isa/address_gen.hpp"
#include "mem/cache.hpp"
#include "mem/coalescer.hpp"
#include "prefetch/str.hpp"
#include "sim/gpu.hpp"
#include "workloads/workload.hpp"

namespace apres {
namespace {

void
BM_RngNext(benchmark::State& state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_Mix64(benchmark::State& state)
{
    std::uint64_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(mix64(++i));
}
BENCHMARK(BM_Mix64);

void
BM_AddressGenStrided(benchmark::State& state)
{
    StridedGen gen(0x1000, 4352, 4352 * 48);
    std::uint64_t i = 0;
    for (auto _ : state) {
        const AddrCtx ctx{0, static_cast<WarpId>(i % 48), i / 48};
        benchmark::DoNotOptimize(gen.base(ctx));
        ++i;
    }
}
BENCHMARK(BM_AddressGenStrided);

void
BM_AddressGenIrregular(benchmark::State& state)
{
    IrregularGen gen(0x1000, 2 * 1024 * 1024, 8, 2, 7, 2);
    std::uint64_t i = 0;
    for (auto _ : state) {
        const AddrCtx ctx{0, static_cast<WarpId>(i % 48), i / 48};
        benchmark::DoNotOptimize(gen.base(ctx));
        ++i;
    }
}
BENCHMARK(BM_AddressGenIrregular);

void
BM_CoalesceCoalesced(benchmark::State& state)
{
    Coalescer c(128);
    for (auto _ : state)
        benchmark::DoNotOptimize(c.coalesce(0x1000, 4));
}
BENCHMARK(BM_CoalesceCoalesced);

void
BM_CoalesceScattered(benchmark::State& state)
{
    Coalescer c(128);
    for (auto _ : state)
        benchmark::DoNotOptimize(c.coalesce(0x1000, 128));
}
BENCHMARK(BM_CoalesceScattered);

void
BM_CacheHit(benchmark::State& state)
{
    CacheConfig cfg;
    Cache cache("b", cfg);
    MemRequest req;
    req.lineAddr = 0x1000;
    cache.access(req);
    cache.fill(0x1000);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(req));
}
BENCHMARK(BM_CacheHit);

void
BM_CacheMissFillCycle(benchmark::State& state)
{
    CacheConfig cfg;
    Cache cache("b", cfg);
    Addr line = 0;
    for (auto _ : state) {
        MemRequest req;
        req.lineAddr = line;
        benchmark::DoNotOptimize(cache.access(req));
        cache.fill(line);
        line += 128;
    }
}
BENCHMARK(BM_CacheMissFillCycle);

void
BM_StrOnAccess(benchmark::State& state)
{
    StrPrefetcher str;
    class NullIssuer : public PrefetchIssuer
    {
      public:
        bool issuePrefetch(Addr, Pc, WarpId) override { return false; }
    } issuer;
    Addr addr = 0x1000;
    for (auto _ : state) {
        LoadAccessInfo info;
        info.pc = 0x100;
        info.baseAddr = addr;
        info.baseLineAddr = addr & ~Addr{127};
        str.onAccess(info, issuer);
        addr += 4352;
    }
}
BENCHMARK(BM_StrOnAccess);

void
BM_SimulatedKiloCycles(benchmark::State& state)
{
    // End-to-end simulator throughput: cost of 1000 GPU cycles of KM
    // under APRES on a 4-SM configuration.
    const Workload wl = makeWorkload("KM", 1.0);
    GpuConfig cfg;
    cfg.useApres();
    cfg.numSms = 4;
    Gpu gpu(cfg, wl.kernel);
    for (auto _ : state)
        gpu.step(1000);
}
BENCHMARK(BM_SimulatedKiloCycles)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace apres

BENCHMARK_MAIN();
