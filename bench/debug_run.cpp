/**
 * @file
 * Diagnostic driver: run one (workload, scheduler, prefetcher) combo
 * and dump the full StatSet plus DRAM channel state.
 *
 * Usage: debug_run WORKLOAD SCHED PF [scale]
 *   SCHED in {lrr,gto,ccws,mascar,pa,laws}; PF in {none,str,sld,sap}
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/parse.hpp"
#include "sim/config_registry.hpp"

using namespace apres;
using namespace apres::bench;

namespace {

/**
 * APRES_<NAME> environment knobs, mapped onto registry keys so the
 * strict typed parsing and range checks apply to them too.
 */
constexpr std::pair<const char*, const char*> kEnvKnobs[] = {
    {"APRES_MSHRS", "l1.numMshrs"},
    {"APRES_NUM_SMS", "numSms"},
    {"APRES_L1_BYTES", "l1.sizeBytes"},
    {"APRES_LSU_Q", "lsu.queueCapacity"},
    {"APRES_DRAM_INTERVAL", "dram.serviceInterval"},
    {"APRES_CCWS_BONUS", "ccws.scoreBonus"},
    {"APRES_CCWS_CAP", "ccws.scoreCap"},
    {"APRES_CCWS_SCALE", "ccws.throttleScale"},
    {"APRES_CCWS_DECAY", "ccws.decayPeriod"},
    {"APRES_CCWS_MIN", "ccws.minActiveWarps"},
    {"APRES_CCWS_VTA", "ccws.vtaEntries"},
    {"APRES_LAWS_PROMOTE", "laws.promoteOnHit"},
    {"APRES_LAWS_DEMOTE", "laws.demoteOnMiss"},
    {"APRES_LAWS_PFPROMOTE", "laws.promotePrefetchTargets"},
    {"APRES_LAWS_GROUPCAP", "laws.groupCap"},
};

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 4) {
        std::cerr << "usage: debug_run WORKLOAD SCHED PF [scale]\n";
        return 1;
    }
    const std::string name = argv[1];
    GpuConfig cfg;
    ConfigRegistry registry(cfg);
    registry.set("scheduler", argv[2]);
    registry.set("prefetcher", argv[3]);
    const double scale = argc > 4
        ? parsePositiveDoubleOption("scale", argv[4])
        : benchScale();

    // Sensitivity knobs for experiments.
    for (const auto& [env, key] : kEnvKnobs) {
        if (const char* e = std::getenv(env))
            registry.set(key, e);
    }

    const Workload wl = makeWorkload(name, scale);
    Gpu gpu(cfg, wl.kernel);

    // Optional phase profile: IPC per 2000-cycle window (sm 0 only
    // would need SM stats; use GPU-wide instruction deltas).
    const bool profile = std::getenv("APRES_PROFILE") != nullptr;
    RunResult r;
    if (profile) {
        std::uint64_t last_instr = 0;
        while (!gpu.done() && gpu.now() < cfg.maxCycles) {
            gpu.step(2000);
            const RunResult snap = gpu.collect();
            std::cerr << "cycle " << gpu.now() << " ipc "
                      << (snap.instructions - last_instr) / 2000.0 << '\n';
            last_instr = snap.instructions;
        }
        r = gpu.collect();
        r.completed = gpu.done();
    } else {
        r = gpu.run();
    }

    std::cout << "== " << name << " under " << cfg.label() << " ==\n";
    r.toStatSet().dump(std::cout);

    for (int p = 0; p < cfg.mem.numPartitions; ++p) {
        const DramStats& d = gpu.memorySystem().dram(p).stats();
        std::cout << "dram" << p << ".requests = " << d.requests
                  << "  avgQueueDelay = " << d.avgQueueDelay() << '\n';
    }

    // Per-warp issue distribution of SM 0 (scheduler fairness view).
    if (std::getenv("APRES_WARPSTATS")) {
        const Sm& sm0 = gpu.sm(0);
        std::uint64_t lo = ~0ull;
        std::uint64_t hi = 0;
        for (int w = 0; w < sm0.numWarps(); ++w) {
            const auto n = sm0.warpState(w).instructionsIssued;
            lo = std::min(lo, n);
            hi = std::max(hi, n);
            std::cout << "warp" << w << ".instructions = " << n << '\n';
        }
        std::cout << "warpstats.spread = " << (hi - lo) << '\n';
    }
    return 0;
}
