/**
 * @file
 * Diagnostic driver: run one (workload, scheduler, prefetcher) combo
 * and dump the full StatSet plus DRAM channel state.
 *
 * Usage: debug_run WORKLOAD SCHED PF [scale]
 *   SCHED in {lrr,gto,ccws,mascar,pa,laws}; PF in {none,str,sld,sap}
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "common/log.hpp"

using namespace apres;
using namespace apres::bench;

namespace {

SchedulerKind
parseSched(const std::string& s)
{
    if (s == "lrr") return SchedulerKind::kLrr;
    if (s == "gto") return SchedulerKind::kGto;
    if (s == "ccws") return SchedulerKind::kCcws;
    if (s == "mascar") return SchedulerKind::kMascar;
    if (s == "pa") return SchedulerKind::kPa;
    if (s == "laws") return SchedulerKind::kLaws;
    fatal("unknown scheduler: " + s);
}

PrefetcherKind
parsePf(const std::string& s)
{
    if (s == "none") return PrefetcherKind::kNone;
    if (s == "str") return PrefetcherKind::kStr;
    if (s == "sld") return PrefetcherKind::kSld;
    if (s == "sap") return PrefetcherKind::kSap;
    fatal("unknown prefetcher: " + s);
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 4) {
        std::cerr << "usage: debug_run WORKLOAD SCHED PF [scale]\n";
        return 1;
    }
    const std::string name = argv[1];
    GpuConfig cfg;
    cfg.scheduler = parseSched(argv[2]);
    cfg.prefetcher = parsePf(argv[3]);
    const double scale = argc > 4 ? std::atof(argv[4]) : benchScale();

    // Sensitivity knobs for experiments.
    if (const char* e = std::getenv("APRES_MSHRS"))
        cfg.sm.l1.numMshrs = static_cast<std::uint32_t>(std::atoi(e));
    if (const char* e = std::getenv("APRES_NUM_SMS"))
        cfg.numSms = std::atoi(e);
    if (const char* e = std::getenv("APRES_L1_BYTES"))
        cfg.sm.l1.sizeBytes = std::strtoull(e, nullptr, 10);
    if (const char* e = std::getenv("APRES_LSU_Q"))
        cfg.sm.lsu.queueCapacity = std::atoi(e);
    if (const char* e = std::getenv("APRES_DRAM_INTERVAL"))
        cfg.mem.dram.serviceInterval = std::strtoull(e, nullptr, 10);
    if (const char* e = std::getenv("APRES_CCWS_BONUS"))
        cfg.ccws.scoreBonus = std::atoi(e);
    if (const char* e = std::getenv("APRES_CCWS_CAP"))
        cfg.ccws.scoreCap = std::atoi(e);
    if (const char* e = std::getenv("APRES_CCWS_SCALE"))
        cfg.ccws.throttleScale = std::atoi(e);
    if (const char* e = std::getenv("APRES_CCWS_DECAY"))
        cfg.ccws.decayPeriod = std::atoi(e);
    if (const char* e = std::getenv("APRES_CCWS_MIN"))
        cfg.ccws.minActiveWarps = std::atoi(e);
    if (const char* e = std::getenv("APRES_CCWS_VTA"))
        cfg.ccws.vtaEntries = std::atoi(e);
    if (const char* e = std::getenv("APRES_LAWS_PROMOTE"))
        cfg.laws.promoteOnHit = std::atoi(e) != 0;
    if (const char* e = std::getenv("APRES_LAWS_DEMOTE"))
        cfg.laws.demoteOnMiss = std::atoi(e) != 0;
    if (const char* e = std::getenv("APRES_LAWS_PFPROMOTE"))
        cfg.laws.promotePrefetchTargets = std::atoi(e) != 0;
    if (const char* e = std::getenv("APRES_LAWS_GROUPCAP"))
        cfg.laws.groupCap = std::atoi(e);

    const Workload wl = makeWorkload(name, scale);
    Gpu gpu(cfg, wl.kernel);

    // Optional phase profile: IPC per 2000-cycle window (sm 0 only
    // would need SM stats; use GPU-wide instruction deltas).
    const bool profile = std::getenv("APRES_PROFILE") != nullptr;
    RunResult r;
    if (profile) {
        std::uint64_t last_instr = 0;
        while (!gpu.done() && gpu.now() < cfg.maxCycles) {
            gpu.step(2000);
            const RunResult snap = gpu.collect();
            std::cerr << "cycle " << gpu.now() << " ipc "
                      << (snap.instructions - last_instr) / 2000.0 << '\n';
            last_instr = snap.instructions;
        }
        r = gpu.collect();
        r.completed = gpu.done();
    } else {
        r = gpu.run();
    }

    std::cout << "== " << name << " under " << cfg.label() << " ==\n";
    r.toStatSet().dump(std::cout);

    for (int p = 0; p < cfg.mem.numPartitions; ++p) {
        const DramStats& d = gpu.memorySystem().dram(p).stats();
        std::cout << "dram" << p << ".requests = " << d.requests
                  << "  avgQueueDelay = " << d.avgQueueDelay() << '\n';
    }

    // Per-warp issue distribution of SM 0 (scheduler fairness view).
    if (std::getenv("APRES_WARPSTATS")) {
        const Sm& sm0 = gpu.sm(0);
        std::uint64_t lo = ~0ull;
        std::uint64_t hi = 0;
        for (int w = 0; w < sm0.numWarps(); ++w) {
            const auto n = sm0.warpState(w).instructionsIssued;
            lo = std::min(lo, n);
            hi = std::max(hi, n);
            std::cout << "warp" << w << ".instructions = " << n << '\n';
        }
        std::cout << "warpstats.spread = " << (hi - lo) << '\n';
    }
    return 0;
}
