/**
 * @file
 * Figure 15: dynamic energy of APRES normalized to the LRR baseline
 * (with CCWS+STR as the secondary comparison).
 *
 * Paper reference points: APRES saves 10.8% dynamic energy on average
 * (>15% on BFS, KM, SP); ST is the worst case (+<10%) where
 * ineffective prefetches add traffic; the APRES structures themselves
 * stay below 3% of total energy.
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main()
{
    const double scale = benchScale();
    const NamedConfig ccws_str =
        makeConfig(SchedulerKind::kCcws, PrefetcherKind::kStr);
    const NamedConfig apres_cfg =
        makeConfig(SchedulerKind::kLaws, PrefetcherKind::kSap);

    std::cout << "=== Figure 15: dynamic energy (normalized to baseline) "
                 "===\n\n";
    printHeader("app", {"CCWS+STR", "APRES", "A.structs%"});

    std::vector<double> s_vals;
    std::vector<double> a_vals;
    for (const std::string& name : allWorkloadNames()) {
        const Workload wl = makeWorkload(name, scale);
        const RunResult rb = runBench(baselineConfig(), wl.kernel);
        const RunResult rs = runBench(ccws_str.config, wl.kernel);
        const RunResult ra = runBench(apres_cfg.config, wl.kernel);
        const double s = rs.energy.total() / rb.energy.total();
        const double a = ra.energy.total() / rb.energy.total();
        printRow(name,
                 {s, a, 100.0 * ra.energy.structureFraction()});
        s_vals.push_back(s);
        a_vals.push_back(a);
    }
    std::cout << '\n';
    printRow("GM", {geomean(s_vals), geomean(a_vals), 0.0});
    return 0;
}
