/**
 * @file
 * Figure 15: dynamic energy of APRES normalized to the LRR baseline
 * (with CCWS+STR as the secondary comparison).
 *
 * Paper reference points: APRES saves 10.8% dynamic energy on average
 * (>15% on BFS, KM, SP); ST is the worst case (+<10%) where
 * ineffective prefetches add traffic; the APRES structures themselves
 * stay below 3% of total energy.
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const double scale = benchScale();
    const NamedConfig ccws_str =
        makeConfig("ccws", "str");
    const NamedConfig apres_cfg =
        makeConfig("laws", "sap");

    BenchSweep sweep(opts);
    std::vector<std::size_t> b_jobs;
    std::vector<std::size_t> s_jobs;
    std::vector<std::size_t> a_jobs;
    for (const std::string& name : allWorkloadNames()) {
        const auto kernel = loadKernel(name, scale);
        b_jobs.push_back(
            sweep.add(name + "/base", baselineConfig(), kernel));
        s_jobs.push_back(
            sweep.add(name + "/CCWS+STR", ccws_str.config, kernel));
        a_jobs.push_back(
            sweep.add(name + "/APRES", apres_cfg.config, kernel));
    }
    sweep.run();

    std::cout << "=== Figure 15: dynamic energy (normalized to baseline) "
                 "===\n\n";
    printHeader("app", {"CCWS+STR", "APRES", "A.structs%"});

    std::vector<double> s_vals;
    std::vector<double> a_vals;
    const auto& names = allWorkloadNames();
    for (std::size_t n = 0; n < names.size(); ++n) {
        const RunResult& rb = sweep.result(b_jobs[n]);
        const RunResult& rs = sweep.result(s_jobs[n]);
        const RunResult& ra = sweep.result(a_jobs[n]);
        const double s = rs.energy.total() / rb.energy.total();
        const double a = ra.energy.total() / rb.energy.total();
        printRow(names[n],
                 {s, a, 100.0 * ra.energy.structureFraction()});
        s_vals.push_back(s);
        a_vals.push_back(a);
    }
    std::cout << '\n';
    printRow("GM", {geomean(s_vals), geomean(a_vals), 0.0});
    return 0;
}
