/**
 * @file
 * Table I: per-static-load characterization of the memory-intensive
 * applications — %Load, #L/#R, L1 miss rate, dominant inter-warp
 * stride and its share — combining the oracle address-stream replay
 * (static columns) with a baseline timing run (miss rates).
 */

#include <iomanip>
#include <unordered_map>

#include "bench_util.hpp"
#include "workloads/characterize.hpp"

using namespace apres;
using namespace apres::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const double scale = benchScale();

    std::vector<std::string> apps;
    for (const std::string& name : allWorkloadNames()) {
        if (isMemoryIntensive(name))
            apps.push_back(name);
    }

    // Timing runs for the per-PC miss rates (baseline GPU), through
    // the sweep runner. Per-PC LSU stats are not part of RunResult, so
    // each job harvests them via its inspect hook (worker thread, own
    // slot only).
    std::vector<std::shared_ptr<const Workload>> workloads;
    std::vector<std::unordered_map<Pc, PcLoadStats>> per_pc(apps.size());
    BenchSweep sweep(opts);
    std::vector<std::size_t> jobs;
    const GpuConfig base = baselineConfig();
    for (std::size_t n = 0; n < apps.size(); ++n) {
        workloads.push_back(loadWorkload(apps[n], scale));
        auto* slot = &per_pc[n];
        jobs.push_back(sweep.add(
            apps[n] + "/base", base, kernelOf(workloads[n]),
            [slot, num_sms = base.numSms](const Gpu& gpu, RunResult&) {
                for (int s = 0; s < num_sms; ++s) {
                    for (const auto& [pc, stat] :
                         gpu.sm(s).lsuStats().perPc) {
                        (*slot)[pc].accesses += stat.accesses;
                        (*slot)[pc].hits += stat.hits;
                    }
                }
            }));
    }
    sweep.run();

    std::cout << "=== Table I: characteristics of frequently executed "
                 "loads ===\n\n";
    std::cout << std::left << std::setw(7) << "app" << std::setw(8) << "PC"
              << std::right << std::setw(9) << "%Load" << std::setw(9)
              << "#L/#R" << std::setw(10) << "miss" << std::setw(12)
              << "stride" << std::setw(10) << "%stride" << '\n';

    for (std::size_t n = 0; n < apps.size(); ++n) {
        // Oracle replay for the contention-free columns.
        const auto profiles = characterizeKernel(workloads[n]->kernel);

        bool first = true;
        for (const LoadProfile& p : profiles) {
            std::cout << std::left << std::setw(7)
                      << (first ? apps[n] : "") << "0x" << std::hex
                      << std::setw(6) << p.pc << std::dec << std::right
                      << std::fixed << std::setw(8) << std::setprecision(1)
                      << 100.0 * p.loadShare << "%" << std::setw(9)
                      << std::setprecision(2) << p.uniqueLinesPerRef
                      << std::setw(10) << std::setprecision(2)
                      << per_pc[n][p.pc].missRate() << std::setw(12)
                      << p.dominantStride << std::setw(9)
                      << std::setprecision(1)
                      << 100.0 * p.dominantStrideShare << "%" << '\n';
            first = false;
        }
    }
    return 0;
}
