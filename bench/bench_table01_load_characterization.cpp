/**
 * @file
 * Table I: per-static-load characterization of the memory-intensive
 * applications — %Load, #L/#R, L1 miss rate, dominant inter-warp
 * stride and its share — combining the oracle address-stream replay
 * (static columns) with a baseline timing run (miss rates).
 */

#include <iomanip>

#include "bench_util.hpp"
#include "workloads/characterize.hpp"

using namespace apres;
using namespace apres::bench;

int
main()
{
    const double scale = benchScale();
    std::cout << "=== Table I: characteristics of frequently executed "
                 "loads ===\n\n";
    std::cout << std::left << std::setw(7) << "app" << std::setw(8) << "PC"
              << std::right << std::setw(9) << "%Load" << std::setw(9)
              << "#L/#R" << std::setw(10) << "miss" << std::setw(12)
              << "stride" << std::setw(10) << "%stride" << '\n';

    for (const std::string& name : allWorkloadNames()) {
        if (!isMemoryIntensive(name))
            continue;
        const Workload wl = makeWorkload(name, scale);

        // Timing run for the per-PC miss rates: the baseline GPU.
        Gpu gpu(baselineConfig(), wl.kernel);
        gpu.run();
        std::unordered_map<Pc, PcLoadStats> per_pc;
        for (int s = 0; s < baselineConfig().numSms; ++s) {
            for (const auto& [pc, stat] : gpu.sm(s).lsuStats().perPc) {
                per_pc[pc].accesses += stat.accesses;
                per_pc[pc].hits += stat.hits;
            }
        }

        // Oracle replay for the contention-free columns.
        const auto profiles = characterizeKernel(wl.kernel);

        bool first = true;
        for (const LoadProfile& p : profiles) {
            std::cout << std::left << std::setw(7) << (first ? name : "")
                      << "0x" << std::hex << std::setw(6) << p.pc
                      << std::dec << std::right << std::fixed
                      << std::setw(8) << std::setprecision(1)
                      << 100.0 * p.loadShare << "%" << std::setw(9)
                      << std::setprecision(2) << p.uniqueLinesPerRef
                      << std::setw(10) << std::setprecision(2)
                      << per_pc[p.pc].missRate() << std::setw(12)
                      << p.dominantStride << std::setw(9)
                      << std::setprecision(1)
                      << 100.0 * p.dominantStrideShare << "%" << '\n';
            first = false;
        }
    }
    return 0;
}
