/**
 * @file
 * Simulator-throughput bench: simulated cycles per wall-second across
 * the three engines (BENCH_throughput) — the naive cycle-by-cycle
 * loop (sim.fastForward=false, the oracle), the event-driven
 * fast-forward engine, and the sharded parallel epoch engine
 * (sim.shards, --shards column).
 *
 * Each scenario's runs report cycles/sec plus the ff-over-naive and
 * parallel-over-ff speedups. All runs' full RunResult::toStatSet()
 * dumps are compared entry-by-entry as a built-in equivalence check:
 * any divergence fails the bench, because an engine is only a win if
 * it is *free* in simulation semantics.
 *
 * Scenarios cover the two regimes the engine sees:
 *  - "SLD-stream" — the headline memory-bound scenario: an SLD-style
 *    streaming kernel (sequential 128 B lines through per-warp
 *    macro-blocks, one outstanding load per warp) at 4 warps/SM.
 *    Latency-bound: SMs sit stalled for most cycles and the engine
 *    jumps response-to-response. This is where the >= 3x acceptance
 *    bar is measured.
 *  - "KM" / "NW" at full Table III occupancy (48 warps/SM) —
 *    bandwidth-saturated; skips are short, the win is smaller and
 *    comes mostly from the per-SM ready-scan cache.
 *  - "KM-fullchip" — 80 SMs x 64 warps/SM (2048 threads/SM), the
 *    machine size the parallel engine targets; the naive run is
 *    skipped (it adds minutes and no information) and the headline
 *    number is the parallel-over-ff speedup.
 *
 * Output: a table on stdout and a JSON document (default
 * BENCH_throughput.json) for the CI regression gate.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "common/profile.hpp"
#include "isa/address_gen.hpp"
#include "isa/kernel.hpp"
#include "sim/gpu.hpp"
#include "workloads/workload.hpp"

namespace apres::bench {
namespace {

/** One throughput measurement scenario. */
struct Scenario
{
    std::string name;
    GpuConfig config;
    std::shared_ptr<const Kernel> kernel;
    std::shared_ptr<const Workload> workload; // keeps kernel alive

    /**
     * Skip the naive cycle-by-cycle run (full-chip scenarios: the
     * naive loop is 10-100x slower there and adds nothing — the
     * ff-vs-naive equivalence is already measured on the small
     * scenarios and pinned by the test suite).
     */
    bool skipNaive = false;
};

/** One shard count's timing within a scenario's sweep. */
struct ShardPoint
{
    int shards = 0;
    double parSeconds = 0.0;
};

/** Result of the serial / fast-forward / parallel runs of a scenario. */
struct Measurement
{
    std::string name;
    Cycle cycles = 0;
    bool naiveSkipped = false; ///< naive run not performed (full chip)
    double naiveSeconds = 0.0; ///< meaningless when naiveSkipped
    double ffSeconds = 0.0;
    double parSeconds = 0.0;   ///< best sweep point (ff on)
    int shards = 1;            ///< shard count of the best sweep point
    std::vector<ShardPoint> sweep; ///< every shard count tried
    bool identical = false;    ///< naive == ff == parallel, bitwise

    double naiveCyclesPerSec() const
    {
        return naiveSeconds > 0.0
                   ? static_cast<double>(cycles) / naiveSeconds
                   : 0.0;
    }
    double ffCyclesPerSec() const
    {
        return ffSeconds > 0.0 ? static_cast<double>(cycles) / ffSeconds
                               : 0.0;
    }
    double parCyclesPerSec() const
    {
        return parSeconds > 0.0 ? static_cast<double>(cycles) / parSeconds
                                : 0.0;
    }
    double speedup() const
    {
        return ffSeconds > 0.0 ? naiveSeconds / ffSeconds : 0.0;
    }
    /** Parallel-engine speedup over the serial fast-forward engine. */
    double parSpeedup() const
    {
        return parSeconds > 0.0 ? ffSeconds / parSeconds : 0.0;
    }
};

/**
 * The SLD-style streaming kernel: every iteration loads one fresh,
 * perfectly coalesced 128 B line (warps walk disjoint 1 MB
 * macro-blocks sequentially — the access shape the SLD prefetcher
 * targets) and feeds it through a short dependent ALU chain. The
 * loop-carried WAW on the load destination caps each warp at one
 * outstanding load, so at 4 warps/SM the machine is latency-bound:
 * SMs spend most cycles with every warp stalled on DRAM.
 */
Kernel
makeSldStreamKernel(std::uint64_t trip_count)
{
    KernelBuilder b("SLD-stream");
    const int v = b.load(
        std::make_unique<StridedGen>(Addr{0x1000'0000}, /*warp_stride=*/
                                     std::int64_t{1} << 20,
                                     /*iter_stride=*/128));
    b.alu({v}, /*count=*/2);
    return b.build(trip_count);
}

std::vector<Scenario>
makeScenarios(double scale)
{
    std::vector<Scenario> scenarios;

    {
        Scenario s;
        s.name = "SLD-stream";
        s.config = baselineConfig();
        s.config.sm.warpsPerSm = 4;
        s.config.sm.warpsPerBlock = 4;
        const auto trips = static_cast<std::uint64_t>(2000 * scale);
        s.kernel = std::make_shared<const Kernel>(
            makeSldStreamKernel(trips < 1 ? 1 : trips));
        scenarios.push_back(std::move(s));
    }
    for (const char* name : {"KM", "NW"}) {
        Scenario s;
        s.name = name;
        s.config = baselineConfig();
        s.workload = loadWorkload(name, scale);
        s.kernel = kernelOf(s.workload);
        scenarios.push_back(std::move(s));
    }
    {
        // Full-chip scale: 80 SMs x 64 warps (2048 threads/SM) — the
        // machine size the parallel epoch engine exists for. Serial
        // engines crawl here, so the naive run is skipped and the
        // headline number is the parallel-over-ff speedup.
        Scenario s;
        s.name = "KM-fullchip";
        s.config = baselineConfig();
        s.config.numSms = 80;
        s.config.sm.warpsPerSm = 64;
        s.config.sm.warpsPerBlock = 64;
        s.workload = loadWorkload("KM", scale);
        s.kernel = kernelOf(s.workload);
        s.skipNaive = true;
        scenarios.push_back(std::move(s));
    }
    return scenarios;
}

/** Wall-clock one run; @return (result, seconds). */
std::pair<RunResult, double>
timedRun(const GpuConfig& config, const Kernel& kernel)
{
    const auto t0 = std::chrono::steady_clock::now();
    RunResult result = simulate(config, kernel);
    const auto t1 = std::chrono::steady_clock::now();
    return {std::move(result),
            std::chrono::duration<double>(t1 - t0).count()};
}

/** Entry-by-entry comparison; prints the first divergence. */
bool
statSetsIdentical(const std::string& name, const RunResult& naive,
                  const RunResult& ff)
{
    const StatSet naive_stats = naive.toStatSet();
    const StatSet ff_stats = ff.toStatSet();
    const auto& a = naive_stats.entries();
    const auto& b = ff_stats.entries();
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() && ib != b.end()) {
        if (ia->first != ib->first || ia->second != ib->second) {
            std::cerr << "FAIL " << name << ": stat divergence at '"
                      << ia->first << "' naive=" << ia->second << " vs '"
                      << ib->first << "'=" << ib->second << "\n";
            return false;
        }
        ++ia;
        ++ib;
    }
    if (ia != a.end() || ib != b.end()) {
        std::cerr << "FAIL " << name << ": stat-set sizes differ ("
                  << a.size() << " vs " << b.size() << ")\n";
        return false;
    }
    return true;
}

/**
 * Shard counts to sweep: {2, 4, hardware threads}, deduplicated and
 * ascending. A fixed count from --shards overrides the sweep.
 */
std::vector<int>
shardSweep(int forced)
{
    if (forced > 0)
        return {forced};
    // shards == 1 selects the serial loop, so 2 is the smallest count
    // that exercises the epoch engine — even on a single-core host.
    const int hw =
        std::max(2, static_cast<int>(std::thread::hardware_concurrency()));
    std::vector<int> counts{2, 4, hw};
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
    return counts;
}

Measurement
measure(const Scenario& scenario, const std::vector<int>& sweep)
{
    Measurement m;
    m.name = scenario.name;
    m.naiveSkipped = scenario.skipNaive;

    GpuConfig ff_cfg = scenario.config;
    ff_cfg.fastForward = true;

    auto [ff_result, ff_s] = timedRun(ff_cfg, *scenario.kernel);
    m.cycles = ff_result.cycles;
    m.ffSeconds = ff_s;

    // Sweep shard counts; the best wall time is the headline parallel
    // number. Every sweep point must stay bitwise identical.
    m.identical = true;
    for (const int count : sweep) {
        GpuConfig par_cfg = ff_cfg;
        par_cfg.shards = count;
        auto [par_result, par_s] = timedRun(par_cfg, *scenario.kernel);
        m.identical =
            statSetsIdentical(scenario.name + " (parallel x" +
                                  std::to_string(count) + ")",
                              ff_result, par_result) &&
            m.identical;
        m.sweep.push_back(ShardPoint{count, par_s});
        if (m.parSeconds == 0.0 || par_s < m.parSeconds) {
            m.parSeconds = par_s;
            m.shards = count;
        }
    }
    if (!scenario.skipNaive) {
        GpuConfig naive_cfg = scenario.config;
        naive_cfg.fastForward = false;
        auto [naive_result, naive_s] =
            timedRun(naive_cfg, *scenario.kernel);
        m.naiveSeconds = naive_s;
        m.identical = statSetsIdentical(scenario.name, naive_result,
                                        ff_result) &&
                      m.identical;
    }
    return m;
}

void
writeJson(const std::string& path, double scale,
          const std::vector<Measurement>& measurements)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << "\n";
        std::exit(1);
    }
    JsonWriter json(out);
    json.beginObject();
    json.field("bench", "throughput");
    json.field("scale", scale);
    json.field("hwThreads",
               static_cast<std::uint64_t>(std::max(
                   1u, std::thread::hardware_concurrency())));
    json.beginArray("scenarios");
    for (const Measurement& m : measurements) {
        json.beginObject();
        json.field("name", m.name);
        json.field("cycles", static_cast<std::uint64_t>(m.cycles));
        // A skipped naive run is flagged and its fields are omitted
        // entirely — a 0.0 would read as "infinitely slow" to any
        // consumer that divides by it.
        json.field("naiveSkipped", m.naiveSkipped);
        if (!m.naiveSkipped)
            json.field("naiveSeconds", m.naiveSeconds);
        json.field("ffSeconds", m.ffSeconds);
        json.field("parSeconds", m.parSeconds);
        json.field("shards", static_cast<std::uint64_t>(
                                 m.shards < 0 ? 0 : m.shards));
        if (!m.naiveSkipped)
            json.field("naiveCyclesPerSec", m.naiveCyclesPerSec());
        json.field("ffCyclesPerSec", m.ffCyclesPerSec());
        json.field("parCyclesPerSec", m.parCyclesPerSec());
        if (!m.naiveSkipped)
            json.field("speedup", m.speedup());
        json.field("parSpeedup", m.parSpeedup());
        json.beginArray("shardSweep");
        for (const ShardPoint& p : m.sweep) {
            json.beginObject();
            json.field("shards", static_cast<std::uint64_t>(p.shards));
            json.field("parSeconds", p.parSeconds);
            json.field("parCyclesPerSec",
                       p.parSeconds > 0.0
                           ? static_cast<double>(m.cycles) / p.parSeconds
                           : 0.0);
            json.endObject();
        }
        json.endArray();
        json.field("statsIdentical", m.identical);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    json.finish();
    out << "\n";
}

/**
 * Re-run each scenario with the phase profiler enabled (one ff run,
 * one parallel run at its best shard count) and dump the per-phase
 * wall-time breakdown. Profiled runs are separate from the timed
 * ones, so rdtsc overhead never contaminates the throughput numbers.
 */
void
writeProfile(const std::string& path, double scale,
             const std::vector<Scenario>& scenarios,
             const std::vector<Measurement>& measurements)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << "\n";
        std::exit(1);
    }
    JsonWriter json(out);
    json.beginObject();
    json.field("bench", "throughput-profile");
    json.field("scale", scale);
    json.beginArray("scenarios");
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const Scenario& scenario = scenarios[i];
        const int best_shards = measurements[i].shards;
        json.beginObject();
        json.field("name", scenario.name);
        json.beginArray("engines");
        for (const bool parallel : {false, true}) {
            GpuConfig cfg = scenario.config;
            cfg.fastForward = true;
            cfg.shards = parallel ? best_shards : 1;
            prof::enable();
            simulate(cfg, *scenario.kernel);
            prof::disable();
            const prof::Report rep = prof::report();
            json.beginObject();
            json.field("engine", parallel ? "parallel" : "ff");
            if (parallel) {
                json.field("shards",
                           static_cast<std::uint64_t>(best_shards));
            }
            json.field("wallSeconds", rep.wallSeconds);
            json.beginArray("phases");
            for (const prof::PhaseReport& phase : rep.phases) {
                json.beginObject();
                json.field("name", phase.name);
                json.field("seconds", phase.seconds);
                json.field("calls", phase.calls);
                json.endObject();
            }
            json.endArray();
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    json.finish();
    out << "\n";
}

int
run(int argc, char** argv)
{
    double scale = benchScale();
    std::string out_path = "BENCH_throughput.json";
    std::string profile_path;
    int shards = 0; // 0 = sweep {2, 4, hw cores}
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--scale" && i + 1 < argc) {
            scale = parseBenchScale(argv[++i], scale);
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--profile" && i + 1 < argc) {
            profile_path = argv[++i];
        } else if (arg == "--shards" && i + 1 < argc) {
            shards = std::atoi(argv[++i]);
            if (shards < 0) {
                std::cerr << "--shards must be >= 0\n";
                return 1;
            }
        } else if (arg == "--help") {
            std::cout << "usage: bench_throughput [--scale F] [--out FILE]"
                         " [--shards N] [--profile FILE]\n"
                         "  --shards N      fix the parallel column's "
                         "shard count (0 = sweep {2,4,hw}, default)\n"
                         "  --profile FILE  re-run scenarios with phase "
                         "timers on; write per-phase JSON to FILE\n";
            return 0;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 1;
        }
    }

    const std::vector<int> sweep = shardSweep(shards);
    const std::vector<Scenario> scenarios = makeScenarios(scale);
    std::vector<Measurement> measurements;
    printHeader("scenario", {"Mcycles", "naive c/s", "ff c/s", "ff x",
                             "par c/s", "par x", "shards"});
    bool all_identical = true;
    for (const Scenario& scenario : scenarios) {
        const Measurement m = measure(scenario, sweep);
        printRow(m.name,
                 {static_cast<double>(m.cycles) / 1e6,
                  m.naiveCyclesPerSec(), m.ffCyclesPerSec(), m.speedup(),
                  m.parCyclesPerSec(), m.parSpeedup(),
                  static_cast<double>(m.shards)},
                 /*precision=*/2);
        all_identical = all_identical && m.identical;
        measurements.push_back(m);
    }
    writeJson(out_path, scale, measurements);
    std::cout << "wrote " << out_path << "\n";
    if (!profile_path.empty()) {
        writeProfile(profile_path, scale, scenarios, measurements);
        std::cout << "wrote " << profile_path << "\n";
    }

    if (!all_identical) {
        std::cerr << "FAIL: engine stats diverged (naive vs ff vs "
                     "parallel must be bitwise identical)\n";
        return 1;
    }
    return 0;
}

} // namespace
} // namespace apres::bench

int
main(int argc, char** argv)
{
    return apres::bench::run(argc, argv);
}
