/**
 * @file
 * Simulator-throughput bench: simulated cycles per wall-second with
 * the event-driven fast-forward engine on vs off (BENCH_throughput).
 *
 * Each scenario runs twice on one thread — once with the naive
 * cycle-by-cycle loop (sim.fastForward=false, the oracle) and once
 * with fast-forward — and reports cycles/sec for both plus the
 * speedup. The two runs' full RunResult::toStatSet() dumps are
 * compared entry-by-entry as a built-in equivalence check: any
 * divergence fails the bench, because fast-forward is only a win if
 * it is *free* in simulation semantics.
 *
 * Scenarios cover the two regimes the engine sees:
 *  - "SLD-stream" — the headline memory-bound scenario: an SLD-style
 *    streaming kernel (sequential 128 B lines through per-warp
 *    macro-blocks, one outstanding load per warp) at 4 warps/SM.
 *    Latency-bound: SMs sit stalled for most cycles and the engine
 *    jumps response-to-response. This is where the >= 3x acceptance
 *    bar is measured.
 *  - "KM" / "NW" at full Table III occupancy (48 warps/SM) —
 *    bandwidth-saturated; skips are short, the win is smaller and
 *    comes mostly from the per-SM ready-scan cache.
 *
 * Output: a table on stdout and a JSON document (default
 * BENCH_throughput.json) for the CI regression gate.
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "isa/address_gen.hpp"
#include "isa/kernel.hpp"
#include "sim/gpu.hpp"
#include "workloads/workload.hpp"

namespace apres::bench {
namespace {

/** One throughput measurement scenario. */
struct Scenario
{
    std::string name;
    GpuConfig config;
    std::shared_ptr<const Kernel> kernel;
    std::shared_ptr<const Workload> workload; // keeps kernel alive
};

/** Result of the naive-vs-fast-forward pair for one scenario. */
struct Measurement
{
    std::string name;
    Cycle cycles = 0;
    double naiveSeconds = 0.0;
    double ffSeconds = 0.0;
    bool identical = false;

    double naiveCyclesPerSec() const
    {
        return naiveSeconds > 0.0
                   ? static_cast<double>(cycles) / naiveSeconds
                   : 0.0;
    }
    double ffCyclesPerSec() const
    {
        return ffSeconds > 0.0 ? static_cast<double>(cycles) / ffSeconds
                               : 0.0;
    }
    double speedup() const
    {
        return ffSeconds > 0.0 ? naiveSeconds / ffSeconds : 0.0;
    }
};

/**
 * The SLD-style streaming kernel: every iteration loads one fresh,
 * perfectly coalesced 128 B line (warps walk disjoint 1 MB
 * macro-blocks sequentially — the access shape the SLD prefetcher
 * targets) and feeds it through a short dependent ALU chain. The
 * loop-carried WAW on the load destination caps each warp at one
 * outstanding load, so at 4 warps/SM the machine is latency-bound:
 * SMs spend most cycles with every warp stalled on DRAM.
 */
Kernel
makeSldStreamKernel(std::uint64_t trip_count)
{
    KernelBuilder b("SLD-stream");
    const int v = b.load(
        std::make_unique<StridedGen>(Addr{0x1000'0000}, /*warp_stride=*/
                                     std::int64_t{1} << 20,
                                     /*iter_stride=*/128));
    b.alu({v}, /*count=*/2);
    return b.build(trip_count);
}

std::vector<Scenario>
makeScenarios(double scale)
{
    std::vector<Scenario> scenarios;

    {
        Scenario s;
        s.name = "SLD-stream";
        s.config = baselineConfig();
        s.config.sm.warpsPerSm = 4;
        s.config.sm.warpsPerBlock = 4;
        const auto trips = static_cast<std::uint64_t>(2000 * scale);
        s.kernel = std::make_shared<const Kernel>(
            makeSldStreamKernel(trips < 1 ? 1 : trips));
        scenarios.push_back(std::move(s));
    }
    for (const char* name : {"KM", "NW"}) {
        Scenario s;
        s.name = name;
        s.config = baselineConfig();
        s.workload = loadWorkload(name, scale);
        s.kernel = kernelOf(s.workload);
        scenarios.push_back(std::move(s));
    }
    return scenarios;
}

/** Wall-clock one run; @return (result, seconds). */
std::pair<RunResult, double>
timedRun(const GpuConfig& config, const Kernel& kernel)
{
    const auto t0 = std::chrono::steady_clock::now();
    RunResult result = simulate(config, kernel);
    const auto t1 = std::chrono::steady_clock::now();
    return {std::move(result),
            std::chrono::duration<double>(t1 - t0).count()};
}

/** Entry-by-entry comparison; prints the first divergence. */
bool
statSetsIdentical(const std::string& name, const RunResult& naive,
                  const RunResult& ff)
{
    const StatSet naive_stats = naive.toStatSet();
    const StatSet ff_stats = ff.toStatSet();
    const auto& a = naive_stats.entries();
    const auto& b = ff_stats.entries();
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() && ib != b.end()) {
        if (ia->first != ib->first || ia->second != ib->second) {
            std::cerr << "FAIL " << name << ": stat divergence at '"
                      << ia->first << "' naive=" << ia->second << " vs '"
                      << ib->first << "'=" << ib->second << "\n";
            return false;
        }
        ++ia;
        ++ib;
    }
    if (ia != a.end() || ib != b.end()) {
        std::cerr << "FAIL " << name << ": stat-set sizes differ ("
                  << a.size() << " vs " << b.size() << ")\n";
        return false;
    }
    return true;
}

Measurement
measure(const Scenario& scenario)
{
    Measurement m;
    m.name = scenario.name;

    GpuConfig naive_cfg = scenario.config;
    naive_cfg.fastForward = false;
    GpuConfig ff_cfg = scenario.config;
    ff_cfg.fastForward = true;

    auto [naive_result, naive_s] = timedRun(naive_cfg, *scenario.kernel);
    auto [ff_result, ff_s] = timedRun(ff_cfg, *scenario.kernel);

    m.cycles = ff_result.cycles;
    m.naiveSeconds = naive_s;
    m.ffSeconds = ff_s;
    m.identical = statSetsIdentical(scenario.name, naive_result, ff_result);
    return m;
}

void
writeJson(const std::string& path, double scale,
          const std::vector<Measurement>& measurements)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << "\n";
        std::exit(1);
    }
    JsonWriter json(out);
    json.beginObject();
    json.field("bench", "throughput");
    json.field("scale", scale);
    json.beginArray("scenarios");
    for (const Measurement& m : measurements) {
        json.beginObject();
        json.field("name", m.name);
        json.field("cycles", static_cast<std::uint64_t>(m.cycles));
        json.field("naiveSeconds", m.naiveSeconds);
        json.field("ffSeconds", m.ffSeconds);
        json.field("naiveCyclesPerSec", m.naiveCyclesPerSec());
        json.field("ffCyclesPerSec", m.ffCyclesPerSec());
        json.field("speedup", m.speedup());
        json.field("statsIdentical", m.identical);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    json.finish();
    out << "\n";
}

int
run(int argc, char** argv)
{
    double scale = benchScale();
    std::string out_path = "BENCH_throughput.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--scale" && i + 1 < argc) {
            scale = parseBenchScale(argv[++i], scale);
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--help") {
            std::cout << "usage: bench_throughput [--scale F] [--out FILE]\n";
            return 0;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 1;
        }
    }

    std::vector<Measurement> measurements;
    printHeader("scenario", {"Mcycles", "naive c/s", "ff c/s", "speedup"});
    bool all_identical = true;
    for (const Scenario& scenario : makeScenarios(scale)) {
        const Measurement m = measure(scenario);
        printRow(m.name,
                 {static_cast<double>(m.cycles) / 1e6,
                  m.naiveCyclesPerSec(), m.ffCyclesPerSec(), m.speedup()},
                 /*precision=*/2);
        all_identical = all_identical && m.identical;
        measurements.push_back(m);
    }
    writeJson(out_path, scale, measurements);
    std::cout << "wrote " << out_path << "\n";

    if (!all_identical) {
        std::cerr << "FAIL: fast-forward stats diverged from the naive "
                     "loop\n";
        return 1;
    }
    return 0;
}

} // namespace
} // namespace apres::bench

int
main(int argc, char** argv)
{
    return apres::bench::run(argc, argv);
}
