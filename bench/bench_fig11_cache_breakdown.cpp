/**
 * @file
 * Figure 11: L1 cache utilization breakdown — hit-after-hit,
 * hit-after-miss, cold miss and capacity+conflict miss as fractions of
 * demand accesses — for Baseline (B), CCWS (C), LAWS (L), CCWS+STR (S)
 * and APRES (A).
 *
 * Paper reference points: LAWS raises hit-after-hit over CCWS by ~3%
 * (10%+ on the hit-friendly apps); APRES has the highest hit-after-hit
 * and ~10.3% lower miss rate than the baseline.
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const double scale = benchScale();
    const std::vector<NamedConfig> configs = {
        {"B", baselineConfig()},
        makeConfig("ccws", "none"),
        makeConfig("laws", "none"),
        makeConfig("ccws", "str"),
        makeConfig("laws", "sap"),
    };
    const char* tags[] = {"B", "C", "L", "S", "A"};

    BenchSweep sweep(opts);
    std::vector<std::vector<std::size_t>> cfg_jobs;
    for (const std::string& name : allWorkloadNames()) {
        const auto kernel = loadKernel(name, scale);
        auto& row = cfg_jobs.emplace_back();
        for (std::size_t i = 0; i < configs.size(); ++i) {
            row.push_back(sweep.add(name + "/" + tags[i],
                                    configs[i].config, kernel));
        }
    }
    sweep.run();

    std::cout << "=== Figure 11: L1 hit/miss breakdown (fractions of "
                 "accesses) ===\n";
    std::cout << "(B=baseline C=CCWS L=LAWS S=CCWS+STR A=APRES)\n\n";
    printHeader("app/cfg",
                {"hitAfterHit", "hitAfterMiss", "cold", "cap+conf"});

    const auto& names = allWorkloadNames();
    for (std::size_t n = 0; n < names.size(); ++n) {
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const RunResult& r = sweep.result(cfg_jobs[n][i]);
            const double total =
                static_cast<double>(r.l1.demandAccesses);
            const auto frac = [total](std::uint64_t count) {
                return total > 0 ? static_cast<double>(count) / total : 0.0;
            };
            printRow(names[n] + "/" + tags[i],
                     {frac(r.l1.hitAfterHit), frac(r.l1.hitAfterMiss),
                      frac(r.l1.coldMisses),
                      frac(r.l1.capacityConflictMisses)});
        }
        std::cout << '\n';
    }
    return 0;
}
