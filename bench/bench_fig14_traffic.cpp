/**
 * @file
 * Figure 14: SM<->memory data traffic of CCWS+STR and APRES,
 * normalized to the LRR baseline.
 *
 * Paper reference points: traffic stays roughly flat (CCWS+STR -3.8%,
 * APRES -2.1%) because both prefetchers only fire on confirmed
 * strides; BP is the paper's outlier at +16.4% without a performance
 * penalty.
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main()
{
    const double scale = benchScale();
    const NamedConfig ccws_str =
        makeConfig(SchedulerKind::kCcws, PrefetcherKind::kStr);
    const NamedConfig apres_cfg =
        makeConfig(SchedulerKind::kLaws, PrefetcherKind::kSap);

    std::cout << "=== Figure 14: data traffic (normalized to baseline) "
                 "===\n\n";
    printHeader("app", {"CCWS+STR", "APRES"});

    std::vector<double> s_vals;
    std::vector<double> a_vals;
    for (const std::string& name : allWorkloadNames()) {
        const Workload wl = makeWorkload(name, scale);
        const RunResult rb = runBench(baselineConfig(), wl.kernel);
        const RunResult rs = runBench(ccws_str.config, wl.kernel);
        const RunResult ra = runBench(apres_cfg.config, wl.kernel);
        const auto base =
            static_cast<double>(rb.traffic.interconnectBytes());
        const double s = rs.traffic.interconnectBytes() / base;
        const double a = ra.traffic.interconnectBytes() / base;
        printRow(name, {s, a});
        s_vals.push_back(s);
        a_vals.push_back(a);
    }
    std::cout << '\n';
    printRow("GM", {geomean(s_vals), geomean(a_vals)});
    return 0;
}
