/**
 * @file
 * Figure 14: SM<->memory data traffic of CCWS+STR and APRES,
 * normalized to the LRR baseline.
 *
 * Paper reference points: traffic stays roughly flat (CCWS+STR -3.8%,
 * APRES -2.1%) because both prefetchers only fire on confirmed
 * strides; BP is the paper's outlier at +16.4% without a performance
 * penalty.
 */

#include "bench_util.hpp"

using namespace apres;
using namespace apres::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const double scale = benchScale();
    const NamedConfig ccws_str =
        makeConfig("ccws", "str");
    const NamedConfig apres_cfg =
        makeConfig("laws", "sap");

    BenchSweep sweep(opts);
    std::vector<std::size_t> b_jobs;
    std::vector<std::size_t> s_jobs;
    std::vector<std::size_t> a_jobs;
    for (const std::string& name : allWorkloadNames()) {
        const auto kernel = loadKernel(name, scale);
        b_jobs.push_back(
            sweep.add(name + "/base", baselineConfig(), kernel));
        s_jobs.push_back(
            sweep.add(name + "/CCWS+STR", ccws_str.config, kernel));
        a_jobs.push_back(
            sweep.add(name + "/APRES", apres_cfg.config, kernel));
    }
    sweep.run();

    std::cout << "=== Figure 14: data traffic (normalized to baseline) "
                 "===\n\n";
    printHeader("app", {"CCWS+STR", "APRES"});

    std::vector<double> s_vals;
    std::vector<double> a_vals;
    const auto& names = allWorkloadNames();
    for (std::size_t n = 0; n < names.size(); ++n) {
        const RunResult& rb = sweep.result(b_jobs[n]);
        const RunResult& rs = sweep.result(s_jobs[n]);
        const RunResult& ra = sweep.result(a_jobs[n]);
        const auto base =
            static_cast<double>(rb.traffic.interconnectBytes());
        const double s = rs.traffic.interconnectBytes() / base;
        const double a = ra.traffic.interconnectBytes() / base;
        printRow(names[n], {s, a});
        s_vals.push_back(s);
        a_vals.push_back(a);
    }
    std::cout << '\n';
    printRow("GM", {geomean(s_vals), geomean(a_vals)});
    return 0;
}
