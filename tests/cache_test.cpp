/**
 * @file
 * Unit tests for the cache model: hit/miss behaviour, LRU, miss
 * taxonomy, MSHR merging, prefetch bookkeeping and early evictions.
 */

#include <gtest/gtest.h>

#include "mem/cache.hpp"

namespace apres {
namespace {

CacheConfig
tinyConfig()
{
    CacheConfig cfg;
    cfg.sizeBytes = 2 * 1024; // 2 sets x 8 ways x 128 B
    cfg.ways = 8;
    cfg.lineSize = 128;
    cfg.numMshrs = 4;
    cfg.maxMergesPerMshr = 3;
    cfg.hashSetIndex = false; // deterministic set mapping for tests
    return cfg;
}

MemRequest
read(Addr line, WarpId warp = 0)
{
    MemRequest req;
    req.lineAddr = line;
    req.warp = warp;
    return req;
}

MemRequest
prefetchReq(Addr line, WarpId warp = 0)
{
    MemRequest req;
    req.lineAddr = line;
    req.warp = warp;
    req.isPrefetch = true;
    return req;
}

TEST(Cache, MissThenFillThenHit)
{
    Cache cache("t", tinyConfig());
    EXPECT_EQ(cache.access(read(0)), AccessOutcome::kMiss);
    EXPECT_TRUE(cache.isPending(0));
    const auto fill = cache.fill(0);
    EXPECT_EQ(fill.waiters.size(), 1u);
    EXPECT_FALSE(fill.prefetchOnly);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_EQ(cache.access(read(0)), AccessOutcome::kHit);
    EXPECT_EQ(cache.stats().demandHits, 1u);
    EXPECT_EQ(cache.stats().demandMisses, 1u);
}

TEST(Cache, MergesIntoOutstandingMiss)
{
    Cache cache("t", tinyConfig());
    EXPECT_EQ(cache.access(read(0, 0)), AccessOutcome::kMiss);
    EXPECT_EQ(cache.access(read(0, 1)), AccessOutcome::kMergedMshr);
    EXPECT_EQ(cache.access(read(0, 2)), AccessOutcome::kMergedMshr);
    EXPECT_EQ(cache.stats().mshrMerges, 2u);
    const auto fill = cache.fill(0);
    EXPECT_EQ(fill.waiters.size(), 3u);
}

TEST(Cache, MergeCapacityBounded)
{
    Cache cache("t", tinyConfig()); // 3 merges per entry
    EXPECT_EQ(cache.access(read(0, 0)), AccessOutcome::kMiss);
    EXPECT_EQ(cache.access(read(0, 1)), AccessOutcome::kMergedMshr);
    EXPECT_EQ(cache.access(read(0, 2)), AccessOutcome::kMergedMshr);
    EXPECT_EQ(cache.access(read(0, 3)), AccessOutcome::kMshrFull);
}

TEST(Cache, MshrExhaustion)
{
    Cache cache("t", tinyConfig()); // 4 MSHRs
    for (Addr line = 0; line < 4; ++line)
        EXPECT_EQ(cache.access(read(line * 128)), AccessOutcome::kMiss);
    EXPECT_TRUE(cache.mshrsFull());
    EXPECT_EQ(cache.access(read(4 * 128)), AccessOutcome::kMshrFull);
    // The rejected access will be replayed: it must not count.
    EXPECT_EQ(cache.stats().demandAccesses, 4u);
    cache.fill(0);
    EXPECT_FALSE(cache.mshrsFull());
    EXPECT_EQ(cache.access(read(4 * 128)), AccessOutcome::kMiss);
}

TEST(Cache, ColdVersusCapacityClassification)
{
    Cache cache("t", tinyConfig());
    // Fill set 0 beyond capacity: lines 0, 2*128... map to set 0 when
    // the set index is line % 2 (2 sets).
    for (int i = 0; i < 9; ++i) {
        const Addr line = static_cast<Addr>(i) * 2 * 128; // all set 0
        EXPECT_EQ(cache.access(read(line)), AccessOutcome::kMiss);
        cache.fill(line);
    }
    EXPECT_EQ(cache.stats().coldMisses, 9u);
    // Line 0 was evicted by the 9th fill (LRU): re-access = capacity.
    EXPECT_EQ(cache.access(read(0)), AccessOutcome::kMiss);
    EXPECT_EQ(cache.stats().capacityConflictMisses, 1u);
}

TEST(Cache, LruVictimSelection)
{
    Cache cache("t", tinyConfig());
    // Fill all 8 ways of set 0.
    for (int i = 0; i < 8; ++i) {
        const Addr line = static_cast<Addr>(i) * 2 * 128;
        cache.access(read(line));
        cache.fill(line);
    }
    // Touch line 0 so line 1*256 becomes LRU.
    EXPECT_EQ(cache.access(read(0)), AccessOutcome::kHit);
    // Insert a 9th line: victim must be line 256 (LRU), not 0.
    const Addr newcomer = 8 * 2 * 128;
    cache.access(read(newcomer));
    cache.fill(newcomer);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(256));
}

TEST(Cache, HitAfterHitAndHitAfterMiss)
{
    Cache cache("t", tinyConfig());
    cache.access(read(0));
    cache.fill(0);
    cache.access(read(128));
    cache.fill(128);
    // Sequence: miss, miss, hit(after miss), hit(after hit).
    EXPECT_EQ(cache.access(read(0)), AccessOutcome::kHit);
    EXPECT_EQ(cache.access(read(128)), AccessOutcome::kHit);
    EXPECT_EQ(cache.stats().hitAfterMiss, 1u);
    EXPECT_EQ(cache.stats().hitAfterHit, 1u);
    EXPECT_EQ(cache.stats().demandHits,
              cache.stats().hitAfterHit + cache.stats().hitAfterMiss);
}

TEST(Cache, PrefetchDroppedOnHitOrPending)
{
    Cache cache("t", tinyConfig());
    cache.access(read(0));
    EXPECT_EQ(cache.prefetch(prefetchReq(0)),
              PrefetchOutcome::kDroppedPending);
    cache.fill(0);
    EXPECT_EQ(cache.prefetch(prefetchReq(0)), PrefetchOutcome::kDroppedHit);
    EXPECT_EQ(cache.prefetch(prefetchReq(128)), PrefetchOutcome::kIssued);
    EXPECT_EQ(cache.stats().prefetchesAccepted, 1u);
}

TEST(Cache, PrefetchDroppedWhenMshrsFull)
{
    Cache cache("t", tinyConfig());
    for (Addr line = 0; line < 4; ++line)
        cache.access(read(line * 128));
    EXPECT_EQ(cache.prefetch(prefetchReq(4 * 128)),
              PrefetchOutcome::kDroppedMshrFull);
}

TEST(Cache, UsefulPrefetchCountedOnFirstDemandHit)
{
    Cache cache("t", tinyConfig());
    cache.prefetch(prefetchReq(0));
    const auto fill = cache.fill(0);
    EXPECT_TRUE(fill.prefetchOnly);
    EXPECT_EQ(cache.stats().prefetchFills, 1u);
    EXPECT_EQ(cache.access(read(0)), AccessOutcome::kHit);
    EXPECT_EQ(cache.stats().usefulPrefetches, 1u);
    // Second hit must not double count.
    cache.access(read(0));
    EXPECT_EQ(cache.stats().usefulPrefetches, 1u);
}

TEST(Cache, DemandMergedIntoPrefetchCounted)
{
    Cache cache("t", tinyConfig());
    cache.prefetch(prefetchReq(0));
    EXPECT_EQ(cache.access(read(0)), AccessOutcome::kMergedMshr);
    EXPECT_EQ(cache.stats().demandMergedIntoPrefetch, 1u);
    const auto fill = cache.fill(0);
    EXPECT_FALSE(fill.prefetchOnly); // demand joined the fetch
    EXPECT_EQ(fill.waiters.size(), 1u);
}

TEST(Cache, EarlyEvictionDetection)
{
    Cache cache("t", tinyConfig());
    // Prefetch line 0 into set 0 and fill it.
    cache.prefetch(prefetchReq(0));
    cache.fill(0);
    // Push 8 demand lines through set 0 to evict the prefetched line
    // before any demand touched it.
    for (int i = 1; i <= 8; ++i) {
        const Addr line = static_cast<Addr>(i) * 2 * 128;
        cache.access(read(line));
        cache.fill(line);
    }
    EXPECT_FALSE(cache.contains(0));
    EXPECT_EQ(cache.stats().uselessPrefetchEvictions, 1u);
    // The demand for line 0 arrives late: the prefetch was correct but
    // evicted early.
    cache.access(read(0));
    EXPECT_EQ(cache.stats().earlyEvictions, 1u);
    EXPECT_EQ(cache.stats().uselessPrefetchEvictions, 0u);
    EXPECT_GT(cache.stats().earlyEvictionRatio(), 0.0);
}

TEST(Cache, CorrectPrefetchAccounting)
{
    CacheStats stats;
    stats.usefulPrefetches = 3;
    stats.demandMergedIntoPrefetch = 2;
    stats.earlyEvictions = 1;
    EXPECT_EQ(stats.correctPrefetches(), 6u);
    EXPECT_DOUBLE_EQ(stats.earlyEvictionRatio(), 1.0 / 6.0);
}

TEST(Cache, StoreWriteThroughNoAllocate)
{
    Cache cache("t", tinyConfig());
    MemRequest store;
    store.lineAddr = 0;
    store.isWrite = true;
    EXPECT_FALSE(cache.storeAccess(store));
    EXPECT_FALSE(cache.contains(0));
    // After the line is resident, stores hit and refresh it.
    cache.access(read(0));
    cache.fill(0);
    EXPECT_TRUE(cache.storeAccess(store));
    EXPECT_EQ(cache.stats().storeHits, 1u);
}

TEST(Cache, EvictionListenerReceivesToucherMask)
{
    Cache cache("t", tinyConfig());
    Addr evicted = kInvalidAddr;
    WarpMask mask;
    cache.setEvictionListener([&](Addr line, const WarpMask& m) {
        evicted = line;
        mask = m;
    });
    cache.access(read(0, 3));
    cache.fill(0);
    cache.access(read(0, 5)); // hit adds warp 5 to the toucher mask
    for (int i = 1; i <= 8; ++i) {
        const Addr line = static_cast<Addr>(i) * 2 * 128;
        cache.access(read(line, 0));
        cache.fill(line);
    }
    EXPECT_EQ(evicted, 0u);
    EXPECT_EQ(mask, WarpMask::ofWord((1ull << 3) | (1ull << 5)));
}

TEST(Cache, ToucherMaskTracksWarpsBeyond64)
{
    // The per-line toucher mask used to be a raw uint64 that silently
    // dropped warps 64+; the WarpMask migration must deliver them to
    // the eviction listener (CCWS victim-tag feeding on wide SMs).
    Cache cache("t", tinyConfig());
    WarpMask mask;
    cache.setEvictionListener(
        [&](Addr, const WarpMask& m) { mask = m; });
    cache.access(read(0, 3));
    cache.fill(0);
    cache.access(read(0, 100)); // warp 100 touches the resident line
    for (int i = 1; i <= 8; ++i) {
        const Addr line = static_cast<Addr>(i) * 2 * 128;
        cache.access(read(line, 0));
        cache.fill(line);
    }
    EXPECT_TRUE(mask.test(3));
    EXPECT_TRUE(mask.test(100));
    EXPECT_EQ(mask.count(), 2);
}

TEST(Cache, SetHashSpreadsAlignedStrides)
{
    CacheConfig plain = tinyConfig();
    CacheConfig hashed = tinyConfig();
    hashed.hashSetIndex = true;
    Cache cache_plain("p", plain);
    Cache cache_hashed("h", hashed);
    // 16 lines exactly one set-period apart: all land in set 0 without
    // hashing and thrash its 8 ways.
    const Addr period = 2 * 128;
    for (int round = 0; round < 2; ++round) {
        for (int i = 0; i < 16; ++i) {
            const Addr line = static_cast<Addr>(i) * period;
            if (cache_plain.access(read(line)) != AccessOutcome::kHit)
                cache_plain.fill(line);
            if (cache_hashed.access(read(line)) != AccessOutcome::kHit)
                cache_hashed.fill(line);
        }
    }
    // The hashed cache holds all 16 lines (capacity 16): round 2 hits.
    EXPECT_GT(cache_hashed.stats().demandHits,
              cache_plain.stats().demandHits);
}

TEST(Cache, ResetClearsEverything)
{
    Cache cache("t", tinyConfig());
    cache.access(read(0));
    cache.fill(0);
    cache.reset();
    EXPECT_FALSE(cache.contains(0));
    EXPECT_EQ(cache.stats().demandAccesses, 0u);
    EXPECT_EQ(cache.mshrsInUse(), 0u);
    // After reset the first access is a cold miss again.
    EXPECT_EQ(cache.access(read(0)), AccessOutcome::kMiss);
    EXPECT_EQ(cache.stats().coldMisses, 1u);
}

TEST(Cache, StatsSumOperator)
{
    CacheStats a;
    a.demandAccesses = 10;
    a.demandHits = 4;
    CacheStats b;
    b.demandAccesses = 5;
    b.demandHits = 1;
    a += b;
    EXPECT_EQ(a.demandAccesses, 15u);
    EXPECT_EQ(a.demandHits, 5u);
}

TEST(Cache, FifoIgnoresHitRecency)
{
    CacheConfig cfg = tinyConfig();
    cfg.replacement = ReplacementPolicy::kFifo;
    Cache cache("t", cfg);
    // Fill all 8 ways of set 0 (lines i * 256).
    for (int i = 0; i < 8; ++i) {
        const Addr line = static_cast<Addr>(i) * 2 * 128;
        cache.access(read(line));
        cache.fill(line);
    }
    // Touch line 0 repeatedly: under FIFO this must NOT protect it.
    cache.access(read(0));
    cache.access(read(0));
    const Addr newcomer = 8 * 2 * 128;
    cache.access(read(newcomer));
    cache.fill(newcomer);
    EXPECT_FALSE(cache.contains(0)); // oldest fill evicted despite hits
    EXPECT_TRUE(cache.contains(256));
}

TEST(Cache, RandomReplacementIsDeterministic)
{
    CacheConfig cfg = tinyConfig();
    cfg.replacement = ReplacementPolicy::kRandom;
    const auto run = [&cfg] {
        Cache cache("t", cfg);
        std::uint64_t hits = 0;
        for (int round = 0; round < 4; ++round) {
            for (int i = 0; i < 12; ++i) {
                const Addr line = static_cast<Addr>(i) * 2 * 128;
                if (cache.access(read(line)) == AccessOutcome::kHit)
                    ++hits;
                else
                    cache.fill(line);
            }
        }
        return hits;
    };
    EXPECT_EQ(run(), run());
}

TEST(Cache, RandomPrefersInvalidWays)
{
    CacheConfig cfg = tinyConfig();
    cfg.replacement = ReplacementPolicy::kRandom;
    Cache cache("t", cfg);
    // With free ways available, fills never evict.
    for (int i = 0; i < 8; ++i) {
        const Addr line = static_cast<Addr>(i) * 2 * 128;
        cache.access(read(line));
        cache.fill(line);
    }
    EXPECT_EQ(cache.stats().evictions, 0u);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(cache.contains(static_cast<Addr>(i) * 2 * 128));
}

TEST(Cache, MissRateComputation)
{
    Cache cache("t", tinyConfig());
    cache.access(read(0));
    cache.fill(0);
    cache.access(read(0));
    EXPECT_DOUBLE_EQ(cache.stats().missRate(), 0.5);
}

} // namespace
} // namespace apres
