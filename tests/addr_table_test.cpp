/**
 * @file
 * Tests for the open-addressing address tables (AddrMap / AddrSet)
 * backing the cache MSHR file and residency sets.
 *
 * The tables use linear probing with backward-shift deletion, so the
 * interesting cases are collision chains that wrap the table, erases
 * in the middle of a chain (the backward shift must not strand a
 * later key), and growth rehashes. Keys here are real line addresses
 * (multiples of 128) — the same shape the caches store.
 */

#include "mem/addr_table.hpp"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/types.hpp"

namespace apres {
namespace {

TEST(AddrMap, InsertFindErase)
{
    AddrMap<int> map;
    EXPECT_EQ(map.size(), 0u);
    EXPECT_FALSE(map.contains(0x1000));

    auto [slot, inserted] = map.insert(0x1000);
    ASSERT_TRUE(inserted);
    *slot = 7;
    EXPECT_TRUE(map.contains(0x1000));
    ASSERT_NE(map.find(0x1000), nullptr);
    EXPECT_EQ(*map.find(0x1000), 7);
    EXPECT_EQ(map.size(), 1u);

    // Second insert of the same key merges: same slot, not inserted.
    auto [slot2, inserted2] = map.insert(0x1000);
    EXPECT_FALSE(inserted2);
    EXPECT_EQ(slot2, map.find(0x1000));
    EXPECT_EQ(map.size(), 1u);

    EXPECT_TRUE(map.erase(0x1000));
    EXPECT_FALSE(map.contains(0x1000));
    EXPECT_FALSE(map.erase(0x1000));
    EXPECT_EQ(map.size(), 0u);
}

TEST(AddrMap, GrowthPreservesEntries)
{
    AddrMap<std::uint64_t> map;
    // Far past any initial capacity: every entry survives the
    // rehashes and finds its own value afterwards.
    constexpr std::uint64_t kN = 5000;
    for (std::uint64_t i = 0; i < kN; ++i) {
        auto [slot, inserted] = map.insert(i * 128);
        ASSERT_TRUE(inserted) << i;
        *slot = i;
    }
    EXPECT_EQ(map.size(), kN);
    for (std::uint64_t i = 0; i < kN; ++i) {
        auto* v = map.find(i * 128);
        ASSERT_NE(v, nullptr) << i;
        EXPECT_EQ(*v, i);
    }
}

TEST(AddrMap, EraseInCollisionChain)
{
    // Build dense clusters so linear-probe chains form, then erase
    // every other key; the backward shift must keep the rest
    // findable.
    AddrMap<int> map;
    std::vector<Addr> keys;
    for (Addr base : {Addr{0}, Addr{1} << 32, Addr{0x7fff'0000}}) {
        for (Addr i = 0; i < 200; ++i)
            keys.push_back(base + i * 128);
    }
    for (std::size_t i = 0; i < keys.size(); ++i)
        *map.insert(keys[i]).first = static_cast<int>(i);

    for (std::size_t i = 0; i < keys.size(); i += 2)
        ASSERT_TRUE(map.erase(keys[i]));

    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (i % 2 == 0) {
            EXPECT_FALSE(map.contains(keys[i])) << i;
        } else {
            ASSERT_NE(map.find(keys[i]), nullptr) << i;
            EXPECT_EQ(*map.find(keys[i]), static_cast<int>(i));
        }
    }
    EXPECT_EQ(map.size(), keys.size() / 2);
}

TEST(AddrMap, MatchesUnorderedMapUnderChurn)
{
    // Deterministic pseudo-random insert/erase churn, checked against
    // std::unordered_map as the oracle. Small key space forces heavy
    // slot reuse after backward-shift deletions.
    AddrMap<std::uint32_t> map;
    std::unordered_map<Addr, std::uint32_t> oracle;
    std::uint64_t rng = 0x243f'6a88'85a3'08d3;
    for (int step = 0; step < 50000; ++step) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        const Addr key = ((rng >> 33) % 512) * 128;
        if ((rng >> 20) & 1) {
            auto [slot, inserted] = map.insert(key);
            const bool oracle_inserted = !oracle.count(key);
            ASSERT_EQ(inserted, oracle_inserted) << step;
            if (inserted) {
                *slot = static_cast<std::uint32_t>(step);
                oracle[key] = static_cast<std::uint32_t>(step);
            }
        } else {
            ASSERT_EQ(map.erase(key), oracle.erase(key) > 0) << step;
        }
    }
    ASSERT_EQ(map.size(), oracle.size());
    for (const auto& [key, value] : oracle) {
        ASSERT_NE(map.find(key), nullptr);
        EXPECT_EQ(*map.find(key), value);
    }
}

TEST(AddrMap, ClearAndReserve)
{
    AddrMap<int> map;
    map.reserve(256);
    const std::size_t cap = map.capacity();
    for (Addr i = 0; i < 256; ++i)
        *map.insert(i * 128).first = 1;
    EXPECT_EQ(map.capacity(), cap) << "reserve(n) must cover n inserts";
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    for (Addr i = 0; i < 256; ++i)
        EXPECT_FALSE(map.contains(i * 128));
}

TEST(AddrSet, InsertEraseContains)
{
    AddrSet set;
    EXPECT_TRUE(set.insert(128));
    EXPECT_FALSE(set.insert(128));
    EXPECT_TRUE(set.contains(128));
    EXPECT_FALSE(set.contains(256));
    EXPECT_TRUE(set.erase(128));
    EXPECT_FALSE(set.erase(128));
    EXPECT_EQ(set.size(), 0u);
}

TEST(AddrSet, MatchesUnorderedSetUnderChurn)
{
    AddrSet set;
    std::unordered_set<Addr> oracle;
    std::uint64_t rng = 0x1337;
    for (int step = 0; step < 50000; ++step) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        const Addr key = ((rng >> 33) % 1024) * 128;
        if ((rng >> 20) & 1) {
            ASSERT_EQ(set.insert(key), oracle.insert(key).second) << step;
        } else {
            ASSERT_EQ(set.erase(key), oracle.erase(key) > 0) << step;
        }
    }
    ASSERT_EQ(set.size(), oracle.size());
    for (Addr key : oracle)
        EXPECT_TRUE(set.contains(key));
}

} // namespace
} // namespace apres
