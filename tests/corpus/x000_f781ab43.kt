# sig: sig v1 seed=8875234207140228613 trips=8 barrier=3 store=0 | kind=irregular region=10 warp=128 iter=4096 fp=32 sw=2 si=8 lag=2 aq=6 ls=8 lanes=32 dep=0 alu=0 | kind=strided region=36 warp=1024 iter=256 fp=2048 sw=6 si=5 lag=0 aq=2 ls=4 lanes=32 dep=0 alu=2 | kind=irregular region=20 warp=0 iter=4096 fp=8192 sw=6 si=5 lag=1 aq=2 ls=32 lanes=8 dep=0 alu=3 | kind=zipf region=8 warp=0 iter=128 fp=2048 sw=1 si=2 lag=2 aq=8 ls=8 lanes=8 dep=1 alu=4 | kind=strided region=61 warp=4 iter=4 fp=32 sw=7 si=2 lag=0 aq=2 ls=8 lanes=8 dep=0 alu=3
kernel x000_f781ab43 8
gen 0 irregular base=41943040 lines=32 sharewarps=2 shareiters=8 seed=17664810020824229201 lag=2
gen 1 strided base=150994944 warp=1024 iter=256 sm=0
gen 2 irregular base=83886080 lines=8192 sharewarps=6 shareiters=5 seed=6941284836832864646 lag=1
gen 3 zipf base=33554432 lines=2048 alpha=2 seed=2904596042622643129
gen 4 strided base=255852544 warp=4 iter=4 sm=0
load r0 pc=0x0 gen=0 lanestride=8 lanes=32
load r1 pc=0x8 gen=1 lanestride=4 lanes=32
alu r2 r1 lat=8
alu r3 r2 lat=8
load r4 pc=0x20 gen=2 lanestride=32 lanes=8
alu r5 r4 lat=8
alu r6 r5 lat=8
alu r7 r6 lat=8
load r8 pc=0x40 gen=3 lanestride=8 lanes=8 dep=r7
alu r9 r8 lat=8
alu r10 r9 lat=8
alu r11 r10 lat=8
alu r12 r11 lat=8
load r13 pc=0x68 gen=4 lanestride=8 lanes=8
alu r14 r13 lat=8
alu r15 r14 lat=8
alu r16 r15 lat=8
