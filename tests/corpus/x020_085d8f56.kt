# sig: sig v1 seed=12692198212475801339 trips=64 barrier=0 store=1 | kind=strided region=59 warp=0 iter=4 fp=8 sw=1 si=1 lag=2 aq=4 ls=64 lanes=32 dep=0 alu=0 | kind=strided region=8 warp=128 iter=4 fp=128 sw=5 si=4 lag=2 aq=4 ls=8 lanes=8 dep=1 alu=4 | kind=irregular region=22 warp=0 iter=1024 fp=8 sw=2 si=2 lag=0 aq=8 ls=4 lanes=4 dep=1 alu=1
kernel x020_085d8f56 64
gen 0 strided base=247463936 warp=0 iter=4 sm=0
gen 1 strided base=33554432 warp=128 iter=4 sm=0
gen 2 irregular base=92274688 lines=8 sharewarps=2 shareiters=2 seed=12754624082177451313 lag=0
load r0 pc=0x0 gen=0 lanestride=64 lanes=32
load r1 pc=0x8 gen=1 lanestride=8 lanes=8 dep=r0
alu r2 r1 lat=8
alu r3 r2 lat=8
alu r4 r3 lat=8
alu r5 r4 lat=8
load r6 pc=0x30 gen=2 lanestride=4 lanes=4 dep=r5
alu r7 r6 lat=8
