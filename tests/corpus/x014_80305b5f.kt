# sig: sig v1 seed=15526212921227352873 trips=8 barrier=1 store=0 | kind=strided region=25 warp=4 iter=4096 fp=512 sw=3 si=6 lag=3 aq=6 ls=128 lanes=8 dep=1 alu=0 | kind=strided region=49 warp=1024 iter=4 fp=128 sw=4 si=6 lag=1 aq=2 ls=8 lanes=16 dep=0 alu=3 | kind=zipf region=56 warp=4 iter=4096 fp=2048 sw=3 si=2 lag=3 aq=6 ls=128 lanes=32 dep=1 alu=1 | kind=irregular region=63 warp=4 iter=4096 fp=512 sw=7 si=7 lag=3 aq=4 ls=32 lanes=2 dep=1 alu=0 | kind=strided region=33 warp=4 iter=128 fp=8 sw=7 si=4 lag=1 aq=0 ls=128 lanes=8 dep=0 alu=1 | kind=strided region=20 warp=16384 iter=4096 fp=128 sw=3 si=5 lag=0 aq=6 ls=4 lanes=1 dep=0 alu=0
kernel x014_80305b5f 8
gen 0 strided base=104857600 warp=4 iter=4096 sm=0
gen 1 strided base=205520896 warp=1024 iter=4 sm=0
gen 2 zipf base=234881024 lines=2048 alpha=1.5 seed=14718181601343780918
gen 3 irregular base=264241152 lines=512 sharewarps=7 shareiters=7 seed=10246301504827598023 lag=3
gen 4 strided base=138412032 warp=4 iter=128 sm=0
gen 5 strided base=83886080 warp=16384 iter=4096 sm=0
load r0 pc=0x0 gen=0 lanestride=128 lanes=8
load r1 pc=0x8 gen=1 lanestride=8 lanes=16
alu r2 r1 lat=8
alu r3 r2 lat=8
alu r4 r3 lat=8
load r5 pc=0x28 gen=2 lanestride=128 lanes=32 dep=r4
alu r6 r5 lat=8
barrier
load r7 pc=0x40 gen=3 lanestride=32 lanes=2 dep=r6
load r8 pc=0x48 gen=4 lanestride=128 lanes=8
alu r9 r8 lat=8
load r10 pc=0x58 gen=5 lanestride=4 lanes=1
