# sig: sig v1 seed=15526212921227352873 trips=8 barrier=1 store=0 | kind=strided region=25 warp=4 iter=4096 fp=512 sw=3 si=6 lag=3 aq=6 ls=128 lanes=8 dep=1 alu=0 | kind=strided region=21 warp=1024 iter=4 fp=8192 sw=4 si=6 lag=1 aq=2 ls=8 lanes=16 dep=0 alu=3 | kind=uniform region=53 warp=4 iter=0 fp=128 sw=8 si=7 lag=2 aq=6 ls=4 lanes=8 dep=1 alu=4 | kind=zipf region=60 warp=4 iter=4096 fp=128 sw=3 si=2 lag=3 aq=6 ls=128 lanes=32 dep=1 alu=1 | kind=irregular region=63 warp=4 iter=4096 fp=512 sw=7 si=7 lag=3 aq=4 ls=32 lanes=2 dep=1 alu=0 | kind=strided region=20 warp=16384 iter=4096 fp=128 sw=3 si=5 lag=0 aq=6 ls=4 lanes=1 dep=0 alu=0
kernel x005_7cc75fc2 8
gen 0 strided base=104857600 warp=4 iter=4096 sm=0
gen 1 strided base=88080384 warp=1024 iter=4 sm=0
gen 2 uniform addr=222298176
gen 3 zipf base=251658240 lines=128 alpha=1.5 seed=10246301504827598023
gen 4 irregular base=264241152 lines=512 sharewarps=7 shareiters=7 seed=28396373731018747 lag=3
gen 5 strided base=83886080 warp=16384 iter=4096 sm=0
load r0 pc=0x0 gen=0 lanestride=128 lanes=8
load r1 pc=0x8 gen=1 lanestride=8 lanes=16
alu r2 r1 lat=8
alu r3 r2 lat=8
alu r4 r3 lat=8
load r5 pc=0x28 gen=2 lanestride=4 lanes=8 dep=r4
alu r6 r5 lat=8
alu r7 r6 lat=8
alu r8 r7 lat=8
alu r9 r8 lat=8
load r10 pc=0x50 gen=3 lanestride=128 lanes=32 dep=r9
alu r11 r10 lat=8
barrier
load r12 pc=0x68 gen=4 lanestride=32 lanes=2 dep=r11
load r13 pc=0x70 gen=5 lanestride=4 lanes=1
