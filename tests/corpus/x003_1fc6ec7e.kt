# sig: sig v1 seed=6167099419719382015 trips=8 barrier=2 store=0 | kind=irregular region=61 warp=16384 iter=4 fp=512 sw=3 si=3 lag=1 aq=2 ls=32 lanes=8 dep=1 alu=4 | kind=irregular region=22 warp=1024 iter=0 fp=128 sw=6 si=6 lag=2 aq=4 ls=64 lanes=1 dep=0 alu=3 | kind=strided region=2 warp=256 iter=4096 fp=8192 sw=4 si=2 lag=3 aq=6 ls=64 lanes=8 dep=0 alu=3 | kind=window region=33 warp=0 iter=1024 fp=512 sw=6 si=2 lag=0 aq=2 ls=64 lanes=4 dep=1 alu=2 | kind=irregular region=55 warp=1024 iter=0 fp=8192 sw=2 si=1 lag=2 aq=6 ls=128 lanes=4 dep=1 alu=3
kernel x003_1fc6ec7e 8
gen 0 irregular base=255852544 lines=512 sharewarps=3 shareiters=3 seed=13475827311570541435 lag=1
gen 1 irregular base=92274688 lines=128 sharewarps=6 shareiters=6 seed=9523641661431258407 lag=2
gen 2 strided base=8388608 warp=256 iter=4096 sm=0
gen 3 window base=138412032 footprint=65536 iter=1024 skew=0 sm=0
gen 4 irregular base=230686720 lines=8192 sharewarps=2 shareiters=1 seed=5416194861937122981 lag=2
load r0 pc=0x0 gen=0 lanestride=32 lanes=8
alu r1 r0 lat=8
alu r2 r1 lat=8
alu r3 r2 lat=8
alu r4 r3 lat=8
load r5 pc=0x28 gen=1 lanestride=64 lanes=1
alu r6 r5 lat=8
alu r7 r6 lat=8
alu r8 r7 lat=8
load r9 pc=0x48 gen=2 lanestride=64 lanes=8
alu r10 r9 lat=8
alu r11 r10 lat=8
alu r12 r11 lat=8
load r13 pc=0x68 gen=3 lanestride=64 lanes=4 dep=r12
alu r14 r13 lat=8
alu r15 r14 lat=8
load r16 pc=0x80 gen=4 lanestride=128 lanes=4 dep=r15
alu r17 r16 lat=8
alu r18 r17 lat=8
alu r19 r18 lat=8
