# sig: sig v1 seed=8875234207140228613 trips=8 barrier=3 store=0 | kind=irregular region=10 warp=128 iter=4096 fp=32 sw=2 si=8 lag=2 aq=6 ls=8 lanes=32 dep=0 alu=0 | kind=uniform region=18 warp=0 iter=4096 fp=512 sw=4 si=4 lag=0 aq=6 ls=4 lanes=16 dep=0 alu=1 | kind=strided region=36 warp=1024 iter=256 fp=2048 sw=6 si=5 lag=0 aq=2 ls=4 lanes=32 dep=0 alu=2 | kind=irregular region=20 warp=0 iter=4096 fp=8192 sw=6 si=5 lag=1 aq=2 ls=32 lanes=8 dep=0 alu=3 | kind=zipf region=8 warp=0 iter=128 fp=2048 sw=1 si=2 lag=2 aq=8 ls=8 lanes=8 dep=1 alu=4 | kind=strided region=61 warp=4 iter=4 fp=32 sw=7 si=2 lag=0 aq=2 ls=8 lanes=8 dep=0 alu=3
kernel x018_42545746 8
gen 0 irregular base=41943040 lines=32 sharewarps=2 shareiters=8 seed=17664810020824229201 lag=2
gen 1 uniform addr=75497536
gen 2 strided base=150994944 warp=1024 iter=256 sm=0
gen 3 irregular base=83886080 lines=8192 sharewarps=6 shareiters=5 seed=2904596042622643129 lag=1
gen 4 zipf base=33554432 lines=2048 alpha=2 seed=13165072522182686528
gen 5 strided base=255852544 warp=4 iter=4 sm=0
load r0 pc=0x0 gen=0 lanestride=8 lanes=32
load r1 pc=0x8 gen=1 lanestride=4 lanes=16
alu r2 r1 lat=8
load r3 pc=0x18 gen=2 lanestride=4 lanes=32
alu r4 r3 lat=8
alu r5 r4 lat=8
load r6 pc=0x30 gen=3 lanestride=32 lanes=8
alu r7 r6 lat=8
alu r8 r7 lat=8
alu r9 r8 lat=8
load r10 pc=0x50 gen=4 lanestride=8 lanes=8 dep=r9
alu r11 r10 lat=8
alu r12 r11 lat=8
alu r13 r12 lat=8
alu r14 r13 lat=8
load r15 pc=0x78 gen=5 lanestride=8 lanes=8
alu r16 r15 lat=8
alu r17 r16 lat=8
alu r18 r17 lat=8
