# sig: sig v1 seed=8428266109976347033 trips=32 barrier=3 store=1 | kind=irregular region=25 warp=4 iter=4096 fp=512 sw=3 si=6 lag=3 aq=6 ls=128 lanes=8 dep=1 alu=0 | kind=strided region=49 warp=1024 iter=4 fp=128 sw=4 si=6 lag=1 aq=2 ls=8 lanes=16 dep=0 alu=3 | kind=strided region=7 warp=32 iter=4 fp=32 sw=2 si=7 lag=4 aq=4 ls=8 lanes=32 dep=0 alu=4 | kind=zipf region=56 warp=32 iter=4 fp=2048 sw=3 si=2 lag=3 aq=6 ls=128 lanes=32 dep=0 alu=4 | kind=window region=63 warp=4 iter=4096 fp=512 sw=7 si=7 lag=3 aq=4 ls=32 lanes=2 dep=1 alu=0 | kind=strided region=20 warp=16384 iter=4096 fp=128 sw=3 si=5 lag=0 aq=6 ls=4 lanes=1 dep=0 alu=0
kernel x015_021431ea 32
gen 0 irregular base=104857600 lines=512 sharewarps=3 shareiters=6 seed=6625617980968858443 lag=3
gen 1 strided base=205520896 warp=1024 iter=4 sm=0
gen 2 strided base=29360128 warp=32 iter=4 sm=0
gen 3 zipf base=234881024 lines=2048 alpha=1.5 seed=5352841309102825890
gen 4 window base=264241152 footprint=65536 iter=4096 skew=4 sm=0
gen 5 strided base=83886080 warp=16384 iter=4096 sm=0
load r0 pc=0x0 gen=0 lanestride=128 lanes=8
load r1 pc=0x8 gen=1 lanestride=8 lanes=16
alu r2 r1 lat=8
alu r3 r2 lat=8
alu r4 r3 lat=8
load r5 pc=0x28 gen=2 lanestride=8 lanes=32
alu r6 r5 lat=8
alu r7 r6 lat=8
alu r8 r7 lat=8
alu r9 r8 lat=8
load r10 pc=0x50 gen=3 lanestride=128 lanes=32
alu r11 r10 lat=8
alu r12 r11 lat=8
alu r13 r12 lat=8
alu r14 r13 lat=8
load r15 pc=0x78 gen=4 lanestride=32 lanes=2 dep=r14
load r16 pc=0x80 gen=5 lanestride=4 lanes=1
