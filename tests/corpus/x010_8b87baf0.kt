# sig: sig v1 seed=3038381137843885517 trips=16 barrier=1 store=0 | kind=strided region=25 warp=256 iter=1024 fp=512 sw=3 si=6 lag=3 aq=6 ls=128 lanes=8 dep=1 alu=0 | kind=strided region=49 warp=1024 iter=4 fp=128 sw=4 si=6 lag=1 aq=2 ls=8 lanes=16 dep=0 alu=3 | kind=zipf region=56 warp=4 iter=4096 fp=2048 sw=2 si=3 lag=2 aq=0 ls=128 lanes=32 dep=1 alu=1 | kind=irregular region=63 warp=4 iter=4096 fp=512 sw=7 si=7 lag=3 aq=4 ls=32 lanes=2 dep=1 alu=0 | kind=uniform region=10 warp=4096 iter=4 fp=512 sw=1 si=5 lag=4 aq=4 ls=4 lanes=1 dep=1 alu=3 | kind=strided region=20 warp=0 iter=4096 fp=128 sw=3 si=5 lag=0 aq=6 ls=4 lanes=1 dep=0 alu=0
kernel x010_8b87baf0 16
gen 0 strided base=104857600 warp=256 iter=1024 sm=0
gen 1 strided base=205520896 warp=1024 iter=4 sm=0
gen 2 zipf base=234881024 lines=2048 alpha=0 seed=8799538760248849420
gen 3 irregular base=264241152 lines=512 sharewarps=7 shareiters=7 seed=4399365776488912003 lag=3
gen 4 uniform addr=41943104
gen 5 strided base=83886080 warp=0 iter=4096 sm=0
load r0 pc=0x0 gen=0 lanestride=128 lanes=8
load r1 pc=0x8 gen=1 lanestride=8 lanes=16
alu r2 r1 lat=8
alu r3 r2 lat=8
alu r4 r3 lat=8
load r5 pc=0x28 gen=2 lanestride=128 lanes=32 dep=r4
alu r6 r5 lat=8
barrier
load r7 pc=0x40 gen=3 lanestride=32 lanes=2 dep=r6
load r8 pc=0x48 gen=4 lanestride=4 lanes=1 dep=r7
alu r9 r8 lat=8
alu r10 r9 lat=8
alu r11 r10 lat=8
load r12 pc=0x68 gen=5 lanestride=4 lanes=1
