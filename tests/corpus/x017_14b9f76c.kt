# sig: sig v1 seed=18183204079462787387 trips=8 barrier=0 store=0 | kind=zipf region=24 warp=4 iter=128 fp=8192 sw=5 si=2 lag=1 aq=6 ls=128 lanes=16 dep=0 alu=2 | kind=window region=14 warp=256 iter=0 fp=512 sw=4 si=4 lag=1 aq=4 ls=8 lanes=1 dep=0 alu=4 | kind=window region=27 warp=16384 iter=1024 fp=8 sw=8 si=5 lag=0 aq=4 ls=128 lanes=1 dep=0 alu=4 | kind=strided region=10 warp=128 iter=0 fp=32 sw=7 si=6 lag=4 aq=6 ls=32 lanes=8 dep=0 alu=3 | kind=strided region=21 warp=4096 iter=4096 fp=2048 sw=7 si=2 lag=1 aq=8 ls=32 lanes=16 dep=0 alu=2
kernel x017_14b9f76c 8
gen 0 zipf base=100663296 lines=8192 alpha=1.5 seed=5468147514376739236
gen 1 window base=58720256 footprint=65536 iter=0 skew=256 sm=0
gen 2 window base=113246208 footprint=1024 iter=1024 skew=16384 sm=0
gen 3 strided base=41943040 warp=128 iter=0 sm=0
gen 4 strided base=88080384 warp=4096 iter=4096 sm=0
load r0 pc=0x0 gen=0 lanestride=128 lanes=16
alu r1 r0 lat=8
alu r2 r1 lat=8
load r3 pc=0x18 gen=1 lanestride=8 lanes=1
alu r4 r3 lat=8
alu r5 r4 lat=8
alu r6 r5 lat=8
alu r7 r6 lat=8
load r8 pc=0x40 gen=2 lanestride=128 lanes=1
alu r9 r8 lat=8
alu r10 r9 lat=8
alu r11 r10 lat=8
alu r12 r11 lat=8
load r13 pc=0x68 gen=3 lanestride=32 lanes=8
alu r14 r13 lat=8
alu r15 r14 lat=8
alu r16 r15 lat=8
load r17 pc=0x88 gen=4 lanestride=32 lanes=16
alu r18 r17 lat=8
alu r19 r18 lat=8
