# sig: sig v1 seed=60604374848987633 trips=8 barrier=3 store=1 | kind=uniform region=11 warp=1024 iter=4 fp=2048 sw=3 si=5 lag=0 aq=0 ls=8 lanes=4 dep=0 alu=1
kernel x012_cd7f792e 8
gen 0 uniform addr=46137408
load r0 pc=0x0 gen=0 lanestride=8 lanes=4
alu r1 r0 lat=8
