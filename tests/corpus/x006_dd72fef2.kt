# sig: sig v1 seed=8428266109976347033 trips=32 barrier=1 store=0 | kind=strided region=49 warp=1024 iter=4 fp=128 sw=4 si=6 lag=1 aq=2 ls=8 lanes=16 dep=0 alu=3 | kind=strided region=7 warp=32 iter=4 fp=32 sw=2 si=7 lag=4 aq=4 ls=8 lanes=32 dep=0 alu=4 | kind=zipf region=56 warp=4 iter=4096 fp=2048 sw=3 si=2 lag=3 aq=6 ls=128 lanes=32 dep=1 alu=1 | kind=irregular region=63 warp=4 iter=4096 fp=512 sw=7 si=7 lag=3 aq=4 ls=32 lanes=2 dep=1 alu=0 | kind=strided region=20 warp=16384 iter=4096 fp=128 sw=3 si=5 lag=0 aq=6 ls=4 lanes=1 dep=0 alu=0
kernel x006_dd72fef2 32
gen 0 strided base=205520896 warp=1024 iter=4 sm=0
gen 1 strided base=29360128 warp=32 iter=4 sm=0
gen 2 zipf base=234881024 lines=2048 alpha=1.5 seed=401301781003808112
gen 3 irregular base=264241152 lines=512 sharewarps=7 shareiters=7 seed=5352841309102825890 lag=3
gen 4 strided base=83886080 warp=16384 iter=4096 sm=0
load r0 pc=0x0 gen=0 lanestride=8 lanes=16
alu r1 r0 lat=8
alu r2 r1 lat=8
alu r3 r2 lat=8
load r4 pc=0x20 gen=1 lanestride=8 lanes=32
alu r5 r4 lat=8
alu r6 r5 lat=8
alu r7 r6 lat=8
alu r8 r7 lat=8
barrier
load r9 pc=0x50 gen=2 lanestride=128 lanes=32 dep=r8
alu r10 r9 lat=8
barrier
load r11 pc=0x68 gen=3 lanestride=32 lanes=2 dep=r10
load r12 pc=0x70 gen=4 lanestride=4 lanes=1
