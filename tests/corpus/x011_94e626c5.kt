# sig: sig v1 seed=3259728536563167507 trips=64 barrier=1 store=1 | kind=strided region=37 warp=1024 iter=0 fp=32 sw=3 si=2 lag=4 aq=6 ls=4 lanes=32 dep=1 alu=1
kernel x011_94e626c5 64
gen 0 strided base=155189248 warp=1024 iter=0 sm=0
gen 1 strided base=268435456 warp=4096 iter=128 sm=0
load r0 pc=0x0 gen=0 lanestride=4 lanes=32
alu r1 r0 lat=8
store gen=1 lanestride=4 lanes=32 src=r1
