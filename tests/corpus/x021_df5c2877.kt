# sig: sig v1 seed=12378223899724390293 trips=64 barrier=3 store=1 | kind=strided region=63 warp=4 iter=4096 fp=128 sw=2 si=1 lag=4 aq=6 ls=8 lanes=4 dep=1 alu=3 | kind=uniform region=51 warp=32 iter=1024 fp=512 sw=7 si=7 lag=1 aq=6 ls=32 lanes=4 dep=1 alu=4
kernel x021_df5c2877 64
gen 0 strided base=264241152 warp=4 iter=4096 sm=0
gen 1 uniform addr=213909568
load r0 pc=0x0 gen=0 lanestride=8 lanes=4
alu r1 r0 lat=8
alu r2 r1 lat=8
alu r3 r2 lat=8
load r4 pc=0x20 gen=1 lanestride=32 lanes=4 dep=r3
alu r5 r4 lat=8
alu r6 r5 lat=8
alu r7 r6 lat=8
alu r8 r7 lat=8
