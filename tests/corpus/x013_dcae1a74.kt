# sig: sig v1 seed=4525734764875920761 trips=16 barrier=1 store=0 | kind=irregular region=57 warp=512 iter=256 fp=2048 sw=2 si=5 lag=2 aq=0 ls=64 lanes=2 dep=1 alu=0 | kind=strided region=25 warp=4 iter=4096 fp=512 sw=3 si=6 lag=3 aq=6 ls=128 lanes=8 dep=1 alu=0 | kind=strided region=49 warp=1024 iter=4 fp=128 sw=4 si=6 lag=1 aq=2 ls=8 lanes=16 dep=0 alu=3 | kind=zipf region=56 warp=4 iter=4096 fp=2048 sw=3 si=2 lag=3 aq=6 ls=128 lanes=32 dep=1 alu=1 | kind=irregular region=63 warp=4 iter=4096 fp=512 sw=7 si=7 lag=3 aq=4 ls=32 lanes=2 dep=1 alu=0 | kind=strided region=20 warp=16384 iter=4096 fp=128 sw=3 si=5 lag=0 aq=6 ls=4 lanes=1 dep=0 alu=0
kernel x013_dcae1a74 16
gen 0 irregular base=239075328 lines=2048 sharewarps=2 shareiters=5 seed=5776093647272695488 lag=2
gen 1 strided base=104857600 warp=4 iter=4096 sm=0
gen 2 strided base=205520896 warp=1024 iter=4 sm=0
gen 3 zipf base=234881024 lines=2048 alpha=1.5 seed=14302287604860665603
gen 4 irregular base=264241152 lines=512 sharewarps=7 shareiters=7 seed=3515554592569033554 lag=3
gen 5 strided base=83886080 warp=16384 iter=4096 sm=0
load r0 pc=0x0 gen=0 lanestride=64 lanes=2
load r1 pc=0x8 gen=1 lanestride=128 lanes=8 dep=r0
load r2 pc=0x10 gen=2 lanestride=8 lanes=16
alu r3 r2 lat=8
alu r4 r3 lat=8
alu r5 r4 lat=8
load r6 pc=0x30 gen=3 lanestride=128 lanes=32 dep=r5
alu r7 r6 lat=8
barrier
load r8 pc=0x48 gen=4 lanestride=32 lanes=2 dep=r7
load r9 pc=0x50 gen=5 lanestride=4 lanes=1
