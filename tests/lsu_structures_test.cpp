/**
 * @file
 * Unit tests of the LSU's hot data structures: the free-list
 * TokenSlab (token -> in-flight load track) and the FIFO
 * HitEventRing (constant hit latency makes completion order equal
 * arrival order, so a ring replaces the old priority queue).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/lsu_structures.hpp"

namespace apres {
namespace {

TEST(TokenSlab, InsertLookupErase)
{
    TokenSlab<int> slab;
    EXPECT_TRUE(slab.empty());
    const std::uint64_t a = slab.insert(10);
    const std::uint64_t b = slab.insert(20);
    EXPECT_NE(a, 0u); // 0 is the untracked sentinel
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
    EXPECT_EQ(slab.size(), 2u);
    EXPECT_EQ(slab.at(a), 10);
    EXPECT_EQ(slab.at(b), 20);
    slab.at(a) = 11;
    EXPECT_EQ(slab.at(a), 11);
    slab.erase(a);
    EXPECT_EQ(slab.size(), 1u);
    slab.erase(b);
    EXPECT_TRUE(slab.empty());
}

TEST(TokenSlab, ReusesFreedSlots)
{
    TokenSlab<int> slab;
    const std::uint64_t a = slab.insert(1);
    slab.insert(2);
    slab.erase(a);
    // The freed slot comes back (same token value) before the slab
    // grows; the value is the new one.
    const std::uint64_t c = slab.insert(3);
    EXPECT_EQ(c, a);
    EXPECT_EQ(slab.at(c), 3);
    EXPECT_EQ(slab.size(), 2u);
}

TEST(TokenSlab, SurvivesChurnAtSteadyState)
{
    TokenSlab<std::uint64_t> slab;
    std::vector<std::uint64_t> live;
    for (std::uint64_t i = 0; i < 64; ++i)
        live.push_back(slab.insert(i));
    for (std::uint64_t round = 0; round < 1000; ++round) {
        const std::size_t slot = round % live.size();
        slab.erase(live[slot]);
        live[slot] = slab.insert(round + 100);
        EXPECT_EQ(slab.at(live[slot]), round + 100);
    }
    EXPECT_EQ(slab.size(), 64u);
    // Steady-state churn never grows the slab past its peak population
    // (tokens stay small: every insert reuses a freed slot).
    for (const std::uint64_t token : live)
        EXPECT_LE(token, 65u);
}

TEST(HitEventRing, FifoOrder)
{
    HitEventRing ring;
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.nextReady(), kNoPendingEvent);
    ring.push(100, 1);
    ring.push(100, 2); // same cycle: arrival order preserved
    ring.push(105, 3);
    EXPECT_EQ(ring.nextReady(), 100u);
    EXPECT_EQ(ring.front().token, 1u);
    ring.pop();
    EXPECT_EQ(ring.front().token, 2u);
    ring.pop();
    EXPECT_EQ(ring.nextReady(), 105u);
    EXPECT_EQ(ring.front().token, 3u);
    ring.pop();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.nextReady(), kNoPendingEvent);
}

TEST(HitEventRing, GrowsPastInitialCapacityKeepingOrder)
{
    HitEventRing ring;
    // Offset head first so growth has to unwrap a wrapped ring.
    for (std::uint64_t i = 0; i < 5; ++i)
        ring.push(i, i);
    for (int i = 0; i < 5; ++i)
        ring.pop();
    const std::uint64_t n = 1000;
    for (std::uint64_t i = 0; i < n; ++i)
        ring.push(10 + i, i);
    EXPECT_EQ(ring.size(), n);
    for (std::uint64_t i = 0; i < n; ++i) {
        EXPECT_EQ(ring.front().ready, 10 + i);
        EXPECT_EQ(ring.front().token, i);
        ring.pop();
    }
    EXPECT_TRUE(ring.empty());
}

} // namespace
} // namespace apres
