/**
 * @file
 * Unit tests for the STR and SLD prefetchers.
 */

#include <gtest/gtest.h>

#include "fake_sm.hpp"
#include "prefetch/sld.hpp"
#include "prefetch/str.hpp"

namespace apres {
namespace {

LoadAccessInfo
access(Pc pc, Addr addr, WarpId warp = 0, bool hit = false)
{
    LoadAccessInfo info;
    info.pc = pc;
    info.warp = warp;
    info.baseAddr = addr;
    info.baseLineAddr = addr & ~Addr{127};
    info.hit = hit;
    return info;
}

TEST(Str, DetectsStrideAfterTraining)
{
    StrPrefetcher str({.tableEntries = 4, .degree = 2, .trainThreshold = 2});
    RecordingIssuer issuer;
    // Stride 4352 between consecutive executions of PC 0x100.
    str.onAccess(access(0x100, 10000), issuer);
    str.onAccess(access(0x100, 14352), issuer);  // stride learned
    str.onAccess(access(0x100, 18704), issuer);  // confidence 2 -> fire
    ASSERT_EQ(issuer.requests.size(), 2u);
    EXPECT_EQ(issuer.requests[0].addr, 18704u + 4352);
    EXPECT_EQ(issuer.requests[1].addr, 18704u + 2 * 4352);
}

TEST(Str, NoPrefetchBeforeConfidence)
{
    StrPrefetcher str({.tableEntries = 4, .degree = 2, .trainThreshold = 2});
    RecordingIssuer issuer;
    str.onAccess(access(0x100, 1000), issuer);
    str.onAccess(access(0x100, 2000), issuer);
    EXPECT_TRUE(issuer.requests.empty());
}

TEST(Str, NegativeStrideSupported)
{
    StrPrefetcher str({.tableEntries = 4, .degree = 1, .trainThreshold = 2});
    RecordingIssuer issuer;
    const Addr base = 0x10'0000'0000ull;
    str.onAccess(access(0x490, base), issuer);
    str.onAccess(access(0x490, base - 1966080), issuer);
    str.onAccess(access(0x490, base - 2 * 1966080), issuer);
    ASSERT_EQ(issuer.requests.size(), 1u);
    EXPECT_EQ(issuer.requests[0].addr, base - 3 * 1966080);
}

TEST(Str, HysteresisSurvivesOneOutlier)
{
    StrPrefetcher str({.tableEntries = 4, .degree = 1, .trainThreshold = 2});
    RecordingIssuer issuer;
    str.onAccess(access(0x100, 1000), issuer);
    str.onAccess(access(0x100, 2000), issuer); // stride 1000, conf 1
    str.onAccess(access(0x100, 3000), issuer); // conf 2 -> fires
    const auto fired = issuer.requests.size();
    EXPECT_GE(fired, 1u);
    str.onAccess(access(0x100, 9999), issuer);  // outlier: conf--
    str.onAccess(access(0x100, 10999), issuer); // stride 1000 again
    str.onAccess(access(0x100, 11999), issuer); // confidence recovered
    EXPECT_GT(issuer.requests.size(), fired);
    EXPECT_EQ(issuer.requests.back().addr, 11999u + 1000);
}

TEST(Str, PerPcEntriesIndependent)
{
    StrPrefetcher str({.tableEntries = 4, .degree = 1, .trainThreshold = 2});
    RecordingIssuer issuer;
    // Interleave two PCs with different strides.
    str.onAccess(access(0x100, 1000), issuer);
    str.onAccess(access(0x200, 50000), issuer);
    str.onAccess(access(0x100, 1128), issuer);
    str.onAccess(access(0x200, 50512), issuer);
    str.onAccess(access(0x100, 1256), issuer);
    str.onAccess(access(0x200, 51024), issuer);
    ASSERT_EQ(issuer.requests.size(), 2u);
    EXPECT_EQ(issuer.requests[0].addr, 1256u + 128);
    EXPECT_EQ(issuer.requests[1].addr, 51024u + 512);
}

TEST(Str, TableReplacementEvictsLru)
{
    StrPrefetcher str({.tableEntries = 2, .degree = 1, .trainThreshold = 2});
    RecordingIssuer issuer;
    // Train PC A fully.
    str.onAccess(access(0xA, 100), issuer);
    str.onAccess(access(0xA, 200), issuer);
    // Touch two more PCs: PC A gets evicted (2-entry table).
    str.onAccess(access(0xB, 0), issuer);
    str.onAccess(access(0xC, 0), issuer);
    // PC A restarts training: no immediate prefetch.
    issuer.requests.clear();
    str.onAccess(access(0xA, 300), issuer);
    EXPECT_TRUE(issuer.requests.empty());
}

TEST(Sld, FiresAfterTwoLinesOfMacroBlock)
{
    SldPrefetcher sld({.linesPerBlock = 4, .tableEntries = 8,
                       .lineSize = 128});
    RecordingIssuer issuer;
    // Macro block = 512 B. Touch lines 0 and 1 of block at 0x2000.
    sld.onAccess(access(0x100, 0x2000), issuer);
    EXPECT_TRUE(issuer.requests.empty());
    sld.onAccess(access(0x100, 0x2080), issuer);
    ASSERT_EQ(issuer.requests.size(), 2u);
    EXPECT_EQ(issuer.requests[0].addr, 0x2100u);
    EXPECT_EQ(issuer.requests[1].addr, 0x2180u);
}

TEST(Sld, FiresOncePerBlock)
{
    SldPrefetcher sld{SldConfig{}};
    RecordingIssuer issuer;
    sld.onAccess(access(0x100, 0x2000), issuer);
    sld.onAccess(access(0x100, 0x2080), issuer);
    const auto fired = issuer.requests.size();
    sld.onAccess(access(0x100, 0x2100), issuer);
    sld.onAccess(access(0x100, 0x2180), issuer);
    EXPECT_EQ(issuer.requests.size(), fired);
}

TEST(Sld, LargeStridesNeverCoTouchABlock)
{
    // The paper's point: strides beyond two lines defeat macro-block
    // prefetching entirely.
    SldPrefetcher sld{SldConfig{}};
    RecordingIssuer issuer;
    for (int i = 0; i < 16; ++i)
        sld.onAccess(access(0x100, static_cast<Addr>(i) * 4352), issuer);
    EXPECT_TRUE(issuer.requests.empty());
}

TEST(Sld, SmallStridesCovered)
{
    // 256 B stride = 2 lines: every other line of each block is
    // touched, so the second touch of a block fires.
    SldPrefetcher sld{SldConfig{}};
    RecordingIssuer issuer;
    for (int i = 0; i < 8; ++i)
        sld.onAccess(access(0x100, static_cast<Addr>(i) * 256), issuer);
    EXPECT_FALSE(issuer.requests.empty());
}

} // namespace
} // namespace apres
