/**
 * @file
 * Metrics registry tests: histogram bucket arithmetic at the edges of
 * the uint64 range, cross-SM merging, StatSet folding, and round-trips
 * through the JSON and RFC-4180 CSV writers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "sim/gpu.hpp"
#include "workloads/workload.hpp"

namespace apres {
namespace {

// ---------------------------------------------------------------------
// Bucket boundaries
// ---------------------------------------------------------------------

TEST(MetricsHistogram, BucketBoundariesAreHalfOpen)
{
    // Buckets: [10,15) [15,20) [20,25) [25,30); <10 under, >=30 over.
    MetricsHistogram h("h", /*lo=*/10, /*width=*/5, /*num_buckets=*/4);
    h.add(9);  // underflow, by one
    h.add(10); // exact lower edge -> b0
    h.add(14); // last value of b0
    h.add(15); // exact boundary -> b1
    h.add(29); // last regular value
    h.add(30); // first overflow value
    h.add(0);  // deep underflow

    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.underflow(), 2u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.sum(), 9 + 10 + 14 + 15 + 29 + 30 + 0);
    EXPECT_EQ(h.bucketLo(0), 10u);
    EXPECT_EQ(h.bucketLo(3), 25u);
    EXPECT_EQ(h.bucketLabel(1), "[15,20)");
}

TEST(MetricsHistogram, SingleValueLandsInExactlyOneBin)
{
    MetricsHistogram h("h", 0, 32, 8);
    h.add(31);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    std::uint64_t occupied = 0;
    for (std::size_t i = 0; i < h.numBuckets(); ++i)
        occupied += h.bucketCount(i);
    EXPECT_EQ(occupied, 1u);
    EXPECT_EQ(h.bucketCount(0), 1u);
}

TEST(MetricsHistogram, MaxUint64ClassifiesWithoutWrapping)
{
    const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();

    // With lo > 0 the index subtraction must not wrap: max lands in
    // overflow, not in a bogus regular bucket.
    MetricsHistogram h("h", /*lo=*/100, /*width=*/7, /*num_buckets=*/3);
    h.add(max);
    EXPECT_EQ(h.overflow(), 1u);

    // And when the bucket range actually reaches the top of the
    // domain, max must land in its regular bucket.
    MetricsHistogram top("top", max - 10, /*width=*/11, /*num_buckets=*/1);
    top.add(max);
    EXPECT_EQ(top.overflow(), 0u);
    EXPECT_EQ(top.bucketCount(0), 1u);

    // Underflow of a high-lo histogram.
    MetricsHistogram hi("hi", max - 1, 1, 1);
    hi.add(0);
    EXPECT_EQ(hi.underflow(), 1u);
}

// ---------------------------------------------------------------------
// Merging (per-SM registries folding into one report)
// ---------------------------------------------------------------------

TEST(MetricsRegistry, MergeSumsHistogramsAndCounters)
{
    MetricsRegistry sm0;
    MetricsRegistry sm1;
    sm0.loadToUse.add(5);
    sm0.loadToUse.add(40);
    sm1.loadToUse.add(40);
    sm0.count("prefetch.drops", 2);
    sm1.count("prefetch.drops", 3);
    sm1.count("wq.walks");

    sm0.merge(sm1);
    EXPECT_EQ(sm0.loadToUse.count(), 3u);
    EXPECT_DOUBLE_EQ(sm0.loadToUse.sum(), 85.0);
    EXPECT_EQ(sm0.loadToUse.bucketCount(0), 1u); // 5 in [0,32)
    EXPECT_EQ(sm0.loadToUse.bucketCount(1), 2u); // both 40s in [32,64)
    EXPECT_EQ(sm0.counterValue("prefetch.drops"), 5u);
    EXPECT_EQ(sm0.counterValue("wq.walks"), 1u);
    EXPECT_EQ(sm0.counterValue("never.touched"), 0u);
    // The source registry is unchanged.
    EXPECT_EQ(sm1.loadToUse.count(), 1u);
}

// ---------------------------------------------------------------------
// Reporting: StatSet keys, JSON, CSV
// ---------------------------------------------------------------------

TEST(MetricsRegistry, ReportsUnderMetricsKeyPrefix)
{
    MetricsRegistry m;
    m.loadToUse.add(100);
    m.count("l1.events", 7);
    StatSet out;
    m.report(out);

    EXPECT_DOUBLE_EQ(out.get("metrics.loadToUse.count"), 1.0);
    EXPECT_DOUBLE_EQ(out.get("metrics.loadToUse.sum"), 100.0);
    EXPECT_DOUBLE_EQ(out.get("metrics.loadToUse.b3"), 1.0); // [96,128)
    EXPECT_DOUBLE_EQ(out.get("metrics.loadToUse.underflow"), 0.0);
    EXPECT_DOUBLE_EQ(out.get("metrics.loadToUse.overflow"), 0.0);
    EXPECT_DOUBLE_EQ(out.get("metrics.ctr.l1.events"), 7.0);
    // Every declared histogram reports, touched or not.
    EXPECT_TRUE(out.has("metrics.mshrOccupancy.count"));
    EXPECT_TRUE(out.has("metrics.wgtGroupLifetime.count"));
    EXPECT_TRUE(out.has("metrics.prefetchTimeliness.count"));
}

TEST(MetricsHistogram, JsonEmissionIsStructuredAndLabelled)
{
    MetricsHistogram h("loadToUse", 0, 4, 2);
    h.add(1);
    h.add(5);
    h.add(100);
    std::ostringstream os;
    {
        JsonWriter json(os);
        json.beginObject();
        json.beginArray("histograms");
        h.writeJson(json);
        json.endArray();
        json.endObject();
    }
    const std::string text = os.str();
    EXPECT_NE(text.find("\"name\": \"loadToUse\""), std::string::npos);
    EXPECT_NE(text.find("\"count\": 3"), std::string::npos);
    EXPECT_NE(text.find("\"range\": \"[0,4)\""), std::string::npos);
    EXPECT_NE(text.find("\"range\": \"[4,8)\""), std::string::npos);
    EXPECT_NE(text.find("\"overflow\": 1"), std::string::npos);
    EXPECT_EQ(text.front(), '{');
    EXPECT_EQ(text.find_last_not_of(" \n"),
              text.rfind('}')); // document closes cleanly
}

/**
 * Minimal RFC-4180 line splitter for the round-trip check: handles
 * quoted fields with embedded commas and doubled quotes (exactly what
 * csvEscapeField produces).
 */
std::vector<std::string>
splitCsvLine(const std::string& line)
{
    std::vector<std::string> fields;
    std::string cur;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char ch = line[i];
        if (quoted) {
            if (ch == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cur += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cur += ch;
            }
        } else if (ch == '"') {
            quoted = true;
        } else if (ch == ',') {
            fields.push_back(cur);
            cur.clear();
        } else {
            cur += ch;
        }
    }
    fields.push_back(cur);
    return fields;
}

TEST(MetricsRegistry, HistogramRowsRoundTripThroughCsv)
{
    MetricsRegistry m;
    m.loadToUse.add(0);
    m.loadToUse.add(33);
    m.loadToUse.add(1u << 20); // overflow
    m.mshrOccupancy.add(3);
    m.count("merges", 11);
    StatSet row;
    m.report(row);

    // A label with comma, quote and newline exercises the RFC-4180
    // escaping path end to end.
    const std::string label = "KM,laws+sap \"run\"\n1";
    CsvWriter csv("label");
    csv.addRow(label, row);
    std::ostringstream os;
    csv.write(os);

    // Parse back: header line, then the row (the embedded newline is
    // inside quotes, so split records by scanning quote state).
    const std::string text = os.str();
    std::vector<std::string> records;
    {
        std::string cur;
        bool quoted = false;
        for (const char ch : text) {
            if (ch == '"')
                quoted = !quoted;
            if (ch == '\n' && !quoted) {
                records.push_back(cur);
                cur.clear();
            } else {
                cur += ch;
            }
        }
        if (!cur.empty())
            records.push_back(cur);
    }
    ASSERT_EQ(records.size(), 2u);
    const std::vector<std::string> header = splitCsvLine(records[0]);
    const std::vector<std::string> fields = splitCsvLine(records[1]);
    ASSERT_EQ(header.size(), fields.size());
    ASSERT_GT(header.size(), 1u);
    EXPECT_EQ(header[0], "label");
    EXPECT_EQ(fields[0], label);

    // Every reported stat survives the trip at full double precision.
    for (std::size_t i = 1; i < header.size(); ++i) {
        ASSERT_TRUE(row.has(header[i])) << header[i];
        EXPECT_EQ(std::stod(fields[i]), row.get(header[i])) << header[i];
    }
    // Spot-check the interesting bins made it.
    const auto column = [&](const std::string& key) {
        for (std::size_t i = 1; i < header.size(); ++i) {
            if (header[i] == key)
                return std::stod(fields[i]);
        }
        ADD_FAILURE() << "missing column " << key;
        return -1.0;
    };
    EXPECT_EQ(column("metrics.loadToUse.count"), 3.0);
    EXPECT_EQ(column("metrics.loadToUse.overflow"), 1.0);
    EXPECT_EQ(column("metrics.mshrOccupancy.count"), 1.0);
    EXPECT_EQ(column("metrics.ctr.merges"), 11.0);
}

// ---------------------------------------------------------------------
// End-to-end: a metrics-enabled run populates the histograms
// ---------------------------------------------------------------------

TEST(Metrics, EndToEndRunPopulatesHistogramsInStats)
{
    const Workload wl = makeWorkload("KM", 0.02);
    GpuConfig cfg;
    cfg.useApres(); // LAWS+SAP: exercises WGT lifetime + timeliness
    cfg.numSms = 2;
    cfg.sm.warpsPerSm = 8;
    cfg.sm.warpsPerBlock = 8;
    cfg.sm.jobsPerWarp = 1;
    cfg.metrics = true;
    const RunResult r = simulate(cfg, wl.kernel);
    ASSERT_TRUE(r.completed);
    const StatSet stats = r.toStatSet();
    EXPECT_GT(stats.get("metrics.loadToUse.count"), 0.0);
    EXPECT_GT(stats.get("metrics.mshrOccupancy.count"), 0.0);
    EXPECT_GT(stats.get("metrics.wgtGroupLifetime.count"), 0.0);
    // Every load-to-use sample is a positive latency: bucket 0 starts
    // at 0 cycles but the sum must be positive.
    EXPECT_GT(stats.get("metrics.loadToUse.sum"), 0.0);
}

TEST(Metrics, OffByDefaultAddsNoStatKeys)
{
    const Workload wl = makeWorkload("NW", 0.02);
    GpuConfig cfg;
    cfg.numSms = 1;
    cfg.sm.warpsPerSm = 8;
    cfg.sm.warpsPerBlock = 8;
    cfg.sm.jobsPerWarp = 1;
    const RunResult r = simulate(cfg, wl.kernel);
    const StatSet stats = r.toStatSet();
    for (const auto& [key, value] : stats.entries()) {
        (void)value;
        EXPECT_EQ(key.rfind("metrics.", 0), std::string::npos) << key;
    }
}

} // namespace
} // namespace apres
