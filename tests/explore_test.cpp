/**
 * @file
 * Tests of the explore subsystem: signature genome round-trips,
 * coverage-bin extraction, the campaign's determinism contract, the
 * bootstrap statistics, and the checked-in adversarial corpus as
 * regression workloads.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/sim_error.hpp"
#include "common/trace.hpp"
#include "explore/coverage.hpp"
#include "explore/explorer.hpp"
#include "explore/policy_compare.hpp"
#include "explore/signature.hpp"
#include "isa/kernel_text.hpp"
#include "sim/config_registry.hpp"
#include "sim/gpu.hpp"

using namespace apres;

namespace {

namespace fs = std::filesystem;

/** Checked-in corpus files, sorted by name. */
std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> files;
    for (const auto& entry :
         fs::directory_iterator(APRES_EXPLORE_CORPUS_DIR)) {
        if (entry.path().extension() == ".kt")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Fast campaign options for determinism tests. */
ExploreOptions
quickOptions(std::uint64_t seed, int budget)
{
    ExploreOptions opts;
    opts.seed = seed;
    opts.budget = budget;
    opts.overrides = {{"maxCycles", "60000"}};
    return opts;
}

} // namespace

// ---------------------------------------------------------------------------
// Signature genome

TEST(Signature, SerializationRoundTrips)
{
    Rng rng(42);
    for (int i = 0; i < 200; ++i) {
        const KernelSignature sig = randomSignature(rng);
        const std::string text = serializeSignature(sig);
        const KernelSignature back = parseSignature(text);
        EXPECT_EQ(text, serializeSignature(back)) << "iteration " << i;
    }
}

TEST(Signature, MutationRoundTrips)
{
    Rng rng(43);
    KernelSignature sig = randomSignature(rng);
    for (int i = 0; i < 200; ++i) {
        sig = mutateSignature(sig, rng);
        const std::string text = serializeSignature(sig);
        EXPECT_EQ(text, serializeSignature(parseSignature(text)))
            << "iteration " << i;
    }
}

TEST(Signature, GenerationIsDeterministic)
{
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(serializeSignature(randomSignature(a)),
                  serializeSignature(randomSignature(b)));
    }
}

TEST(Signature, EveryGenomeBuildsAndKernelTextRoundTrips)
{
    // The value tables must keep every random/mutated genome inside
    // the kernel-text contract: buildable, and the emitted text
    // parses back into an identical kernel.
    Rng rng(44);
    KernelSignature sig = randomSignature(rng);
    for (int i = 0; i < 100; ++i) {
        sig = (i % 3 == 0) ? randomSignature(rng)
                           : mutateSignature(sig, rng);
        const std::string text = kernelTextOf(sig, "roundtrip");
        const Kernel back = parseKernelText(text);
        std::ostringstream re;
        re << "# sig: " << serializeSignature(sig) << "\n";
        writeKernelText(back, re);
        EXPECT_EQ(text, re.str()) << "iteration " << i;
    }
}

TEST(Signature, ParseRejectsMalformedInput)
{
    EXPECT_THROW(parseSignature("not a signature"), SimError);
    EXPECT_THROW(parseSignature("sig v2 seed=1"), SimError);
    EXPECT_THROW(parseSignature("sig v1 seed=1 trips=4 barrier=0 store=1"),
                 SimError); // no loads
    EXPECT_THROW(
        parseSignature("sig v1 trips=4 | kind=strided bogus=1"),
        SimError);
    EXPECT_THROW(
        parseSignature("sig v1 trips=4 | kind=wat region=1"),
        SimError);
}

// ---------------------------------------------------------------------------
// Coverage bins

TEST(Coverage, BinsAreDeterministicSortedAndProbed)
{
    Rng rng(45);
    const KernelSignature sig = randomSignature(rng);
    GpuConfig cfg;
    ConfigRegistry reg(cfg);
    reg.set("numSms", "1");
    reg.set("maxCycles", "60000");
    reg.set("scheduler", "laws");
    reg.set("prefetcher", "sap");
    reg.set("sim.metrics", "true");
    const Kernel kernel = buildKernel(sig, "cov");
    const RunResult r = simulate(cfg, kernel);

    const auto bins = coverageBins("probe", r);
    EXPECT_FALSE(bins.empty());
    EXPECT_TRUE(std::is_sorted(bins.begin(), bins.end()));
    EXPECT_EQ(bins, coverageBins("probe", r));
    for (const std::string& bin : bins)
        EXPECT_EQ(bin.rfind("probe/", 0), 0u) << bin;
    // The run completed, so the status bin must be the ok one.
    EXPECT_NE(std::find(bins.begin(), bins.end(),
                        std::string("probe/status:ok")),
              bins.end());
}

TEST(Coverage, ErrorRowsOnlyContributeStatusBins)
{
    RunResult r;
    r.status = "error";
    r.errorKind = "DeadlockError";
    const auto bins = coverageBins("p", r);
    ASSERT_EQ(bins.size(), 2u);
    EXPECT_EQ(bins[0], "p/completed:0");
    EXPECT_EQ(bins[1], "p/status:error:DeadlockError");
}

TEST(Coverage, MapTracksNoveltyAndRarity)
{
    CoverageMap map;
    const auto first = map.add({"a", "b"});
    EXPECT_EQ(first, (std::vector<std::string>{"a", "b"}));
    const auto second = map.add({"b", "c"});
    EXPECT_EQ(second, (std::vector<std::string>{"c"}));
    EXPECT_EQ(map.size(), 3u);
    EXPECT_EQ(map.timesLit("b"), 2u);
    EXPECT_TRUE(map.covers("a"));
    EXPECT_FALSE(map.covers("z"));
    // b (lit twice) contributes 1/2, a and c contribute 1 each.
    EXPECT_DOUBLE_EQ(map.rarity({"a", "b", "c"}), 2.5);
    EXPECT_DOUBLE_EQ(map.rarity({"z"}), 0.0);
}

// ---------------------------------------------------------------------------
// Campaign determinism

TEST(Explorer, SameSeedSameReportAndCoverage)
{
    Explorer a(quickOptions(11, 4));
    Explorer b(quickOptions(11, 4));
    a.run();
    b.run();
    std::ostringstream ra;
    std::ostringstream rb;
    a.writeReport(ra);
    b.writeReport(rb);
    EXPECT_EQ(ra.str(), rb.str());
    EXPECT_EQ(a.coverage().bins(), b.coverage().bins());
    ASSERT_EQ(a.corpus().size(), b.corpus().size());
    for (std::size_t i = 0; i < a.corpus().size(); ++i) {
        EXPECT_EQ(serializeSignature(a.corpus()[i].signature),
                  serializeSignature(b.corpus()[i].signature));
    }
}

TEST(Explorer, DifferentSeedsDiverge)
{
    Explorer a(quickOptions(11, 4));
    Explorer b(quickOptions(12, 4));
    a.run();
    b.run();
    std::ostringstream ra;
    std::ostringstream rb;
    a.writeReport(ra);
    b.writeReport(rb);
    EXPECT_NE(ra.str(), rb.str());
}

TEST(Explorer, CampaignFindsCoverageFromColdStart)
{
    Explorer explorer(quickOptions(11, 4));
    const std::size_t new_bins = explorer.run();
    EXPECT_GT(new_bins, 0u);
    EXPECT_FALSE(explorer.corpus().empty());
    EXPECT_EQ(explorer.rounds().size(), 4u);
}

TEST(Explorer, WritesSelfDescribingCorpusFiles)
{
    const fs::path dir =
        fs::temp_directory_path() / "apres_explore_test_corpus";
    fs::remove_all(dir);
    ExploreOptions opts = quickOptions(13, 3);
    opts.corpusDir = dir.string();
    Explorer explorer(opts);
    explorer.run();

    std::size_t kept = 0;
    for (const CorpusEntry& entry : explorer.corpus())
        kept += entry.kept ? 1 : 0;
    std::size_t files = 0;
    for (const auto& file : fs::directory_iterator(dir)) {
        ++files;
        const std::string text = readFile(file.path().string());
        EXPECT_EQ(text.rfind("# sig: ", 0), 0u);
        // Files must parse both as a signature and as kernel text.
        const std::string first = text.substr(0, text.find('\n'));
        parseSignature(first.substr(7));
        parseKernelText(text);
    }
    EXPECT_EQ(files, kept);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Checked-in corpus: regression workloads

TEST(Corpus, HasAtLeastFiveKernels)
{
    EXPECT_GE(corpusFiles().size(), 5u);
}

TEST(Corpus, FilesRegenerateExactlyFromTheirSignatures)
{
    // Every corpus file must be bitwise-regenerable from its own
    // `# sig:` header: this pins the generator (value tables, gen
    // seeding, barrier placement) — any drift silently changes what
    // the corpus tests, so it must fail here instead.
    for (const std::string& path : corpusFiles()) {
        const std::string text = readFile(path);
        ASSERT_EQ(text.rfind("# sig: ", 0), 0u) << path;
        const std::string header = text.substr(7, text.find('\n') - 7);
        const KernelSignature sig = parseSignature(header);
        const std::string name = fs::path(path).stem().string();
        EXPECT_EQ(kernelTextOf(sig, name), text) << path;
    }
}

TEST(Corpus, KernelsRunCleanUnderTheApresStack)
{
    // The adversarial kernels are regression workloads: each must
    // still parse, simulate without faulting under the full APRES
    // configuration, and actually execute instructions.
    for (const std::string& path : corpusFiles()) {
        const Kernel kernel = parseKernelText(readFile(path));
        GpuConfig cfg;
        ConfigRegistry reg(cfg);
        reg.set("numSms", "2");
        reg.set("sm.warpsPerSm", "16");
        reg.set("sm.warpsPerBlock", "8");
        reg.set("scheduler", "laws");
        reg.set("prefetcher", "sap");
        reg.set("maxCycles", "400000");
        const RunResult r = simulate(cfg, kernel);
        EXPECT_EQ(r.status, "ok") << path;
        EXPECT_GT(r.instructions, 0u) << path;
    }
}

TEST(Corpus, EveryKernelOwnsUniqueCoverage)
{
    // Minimization already dropped redundant members at generation
    // time; the checked-in set must stay minimal, i.e. every kernel
    // holds at least one bin no other corpus member lights. Uses the
    // campaign probes, so this also re-derives each member's
    // coverage from scratch (fixed probe seeds make that exact).
    const auto files = corpusFiles();
    Explorer explorer{ExploreOptions{}};
    std::vector<std::vector<std::string>> all_bins;
    for (const std::string& path : files) {
        const std::string text = readFile(path);
        const std::string header = text.substr(7, text.find('\n') - 7);
        all_bins.push_back(
            explorer.probeSignature(parseSignature(header),
                                    fs::path(path).stem().string()));
    }
    std::map<std::string, int> owners;
    for (const auto& bins : all_bins) {
        for (const std::string& bin : bins)
            ++owners[bin];
    }
    for (std::size_t i = 0; i < files.size(); ++i) {
        const bool unique = std::any_of(
            all_bins[i].begin(), all_bins[i].end(),
            [&](const std::string& bin) { return owners[bin] == 1; });
        EXPECT_TRUE(unique) << files[i] << " is redundant";
    }
}

// ---------------------------------------------------------------------------
// Bootstrap statistics

TEST(Bootstrap, DeterministicAndOrdered)
{
    const std::vector<double> samples = {1.0, 1.1, 0.9, 1.3, 1.05};
    Rng a(99);
    Rng b(99);
    const auto ci1 = bootstrapMeanCi(samples, 500, 0.95, a);
    const auto ci2 = bootstrapMeanCi(samples, 500, 0.95, b);
    EXPECT_EQ(ci1, ci2);
    EXPECT_LE(ci1.first, ci1.second);
    // The CI must bracket the sample mean for any sane resampling.
    const double mean = 1.07;
    EXPECT_LE(ci1.first, mean);
    EXPECT_GE(ci1.second, mean);
}

TEST(Bootstrap, DegenerateSamplesGiveZeroWidth)
{
    const std::vector<double> samples(10, 2.5);
    Rng rng(1);
    const auto ci = bootstrapMeanCi(samples, 100, 0.95, rng);
    EXPECT_DOUBLE_EQ(ci.first, 2.5);
    EXPECT_DOUBLE_EQ(ci.second, 2.5);
}

TEST(Bootstrap, WiderConfidenceGivesWiderInterval)
{
    std::vector<double> samples;
    Rng gen(5);
    for (int i = 0; i < 30; ++i)
        samples.push_back(0.8 + 0.4 * gen.nextDouble());
    Rng a(7);
    Rng b(7);
    const auto narrow = bootstrapMeanCi(samples, 1000, 0.5, a);
    const auto wide = bootstrapMeanCi(samples, 1000, 0.99, b);
    EXPECT_LE(wide.first, narrow.first);
    EXPECT_GE(wide.second, narrow.second);
}

TEST(Bootstrap, RejectsBadInputs)
{
    Rng rng(1);
    EXPECT_THROW(bootstrapMeanCi({}, 100, 0.95, rng), SimError);
    EXPECT_THROW(bootstrapMeanCi({1.0}, 0, 0.95, rng), SimError);
    EXPECT_THROW(bootstrapMeanCi({1.0}, 100, 1.5, rng), SimError);
}

// ---------------------------------------------------------------------------
// Policy comparison harness

TEST(Compare, PairedSeedsWithBootstrapCi)
{
    CompareOptions opts;
    opts.seed = 3;
    opts.numSeeds = 4;
    opts.resamples = 200;
    opts.policies = {{"lrr", "none"}, {"laws", "sap"}};
    CompareKernel k;
    k.label = "KM";
    k.workload = "KM";
    k.scale = 0.02;
    opts.kernels = {k};
    opts.overrides = {{"maxCycles", "2000000"}, {"numSms", "2"}};
    opts.threads = 2;

    const CompareReport report = runComparison(opts);
    ASSERT_EQ(report.pairs.size(), 1u);
    const ComparePair& pair = report.pairs[0];
    EXPECT_EQ(pair.baseline, "lrr+none");
    EXPECT_EQ(pair.candidate, "laws+sap");
    EXPECT_EQ(pair.n, 4);
    EXPECT_EQ(pair.speedups.size(), 4u);
    EXPECT_GT(pair.meanIpcBaseline, 0.0);
    EXPECT_GT(pair.meanSpeedup, 0.0);
    EXPECT_LE(pair.ciLow, pair.meanSpeedup);
    EXPECT_GE(pair.ciHigh, pair.meanSpeedup);
    EXPECT_EQ(report.simulations, 8u);
    EXPECT_EQ(report.cacheHits, 0u);

    // Determinism: the same options produce a bitwise-identical
    // document, thread pool and all.
    std::ostringstream j1;
    std::ostringstream j2;
    report.writeJson(j1);
    runComparison(opts).writeJson(j2);
    EXPECT_EQ(j1.str(), j2.str());
}

TEST(Compare, WarmRerunsComeFromTheResultCache)
{
    const fs::path dir =
        fs::temp_directory_path() / "apres_explore_test_cache";
    fs::remove_all(dir);

    CompareOptions opts;
    opts.seed = 4;
    opts.numSeeds = 2;
    opts.resamples = 50;
    opts.policies = {{"lrr", "none"}, {"gto", "none"}};
    CompareKernel k;
    k.label = "BFS";
    k.workload = "BFS";
    k.scale = 0.02;
    opts.kernels = {k};
    opts.overrides = {{"maxCycles", "2000000"}, {"numSms", "1"}};
    opts.cacheDir = dir.string();

    const CompareReport cold = runComparison(opts);
    EXPECT_EQ(cold.simulations, 4u);
    EXPECT_EQ(cold.cacheHits, 0u);

    const CompareReport warm = runComparison(opts);
    EXPECT_EQ(warm.simulations, 0u);
    EXPECT_EQ(warm.cacheHits, 4u);
    ASSERT_EQ(warm.pairs.size(), cold.pairs.size());
    EXPECT_EQ(warm.pairs[0].speedups, cold.pairs[0].speedups);
    EXPECT_EQ(warm.pairs[0].meanSpeedup, cold.pairs[0].meanSpeedup);
    fs::remove_all(dir);
}

TEST(Compare, RejectsMalformedOptions)
{
    CompareOptions opts;
    opts.policies = {{"lrr", "none"}};
    EXPECT_THROW(runComparison(opts), SimError);
    opts.policies = {{"lrr", "none"}, {"gto", "none"}};
    EXPECT_THROW(runComparison(opts), SimError); // no kernels
    CompareKernel k;
    k.label = "empty";
    opts.kernels = {k};
    opts.numSeeds = 2;
    EXPECT_THROW(runComparison(opts), SimError); // kernel has no source
}

// ---------------------------------------------------------------------------
// Trace event-type totals (the explore-facing Tracer hook)

TEST(TraceCounts, SurviveRingOverwritesAndExcludeEngine)
{
    Tracer tracer(1, 2); // 2-slot rings: overwrites guaranteed
    for (int i = 0; i < 10; ++i)
        tracer.record(0, TraceEventType::kL1Miss, i);
    tracer.record(tracer.memLane(), TraceEventType::kDramService, 11);
    tracer.record(tracer.engineLane(), TraceEventType::kFfIdleSpan, 12);

    EXPECT_EQ(tracer.eventTypeCount(TraceEventType::kL1Miss), 10u);
    EXPECT_EQ(tracer.eventTypeCount(TraceEventType::kDramService), 1u);
    // Engine-lane events are timing artifacts, not machine behaviour.
    EXPECT_EQ(tracer.eventTypeCount(TraceEventType::kFfIdleSpan), 0u);

    const auto counts = tracer.eventTypeCounts();
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0].first, "l1-miss");
    EXPECT_EQ(counts[0].second, 10u);
    EXPECT_EQ(counts[1].first, "dram-service");
    EXPECT_EQ(counts[1].second, 1u);
}
