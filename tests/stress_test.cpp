/**
 * @file
 * Randomized robustness stress (fixed seed, fully deterministic):
 *
 *  - random kernel shapes x random small machine configurations run
 *    with auditing and the watchdog armed; every run must either
 *    complete or stop at the cycle cap, with zero invariant
 *    violations and zero watchdog trips;
 *  - kernel-text fuzzing: corrupted serializations must either parse
 *    or throw a typed KernelError — never crash, never mis-execute
 *    silently.
 *
 * The generator draws from a private std::mt19937_64 with a fixed
 * seed, so a failure reproduces exactly and CI can bisect it.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "isa/address_gen.hpp"
#include "isa/kernel.hpp"
#include "isa/kernel_text.hpp"
#include "sim/config_registry.hpp"
#include "sim/gpu.hpp"
#include "sim_error_matchers.hpp"
#include "workloads/workload.hpp"

namespace apres {
namespace {

constexpr std::uint64_t kStressSeed = 0xA9'7E5'15CA'2016ull;

/** Random but well-formed kernel: loads, ALU chains, stores, barriers. */
Kernel
randomKernel(std::mt19937_64& rng, int index)
{
    KernelBuilder b("stress" + std::to_string(index));
    std::uniform_int_distribution<int> ops(2, 6);
    std::uniform_int_distribution<int> kind(0, 99);
    std::uniform_int_distribution<std::uint64_t> region(1, 200);
    std::uniform_int_distribution<int> alu_count(1, 4);
    std::uniform_int_distribution<std::uint64_t> stride_pow(7, 18);

    int last_reg = -1;
    const int n = ops(rng);
    for (int i = 0; i < n; ++i) {
        const int k = kind(rng);
        const Addr base = Addr{region(rng)} << 22;
        const auto wstride =
            static_cast<std::int64_t>(1ull << stride_pow(rng));
        if (k < 45) {
            AddressGenPtr gen = (k < 15)
                ? AddressGenPtr(std::make_unique<IrregularGen>(
                      base, 1 << 16, 2, 2, 0x1234 + index))
                : AddressGenPtr(std::make_unique<StridedGen>(base, wstride,
                                                             128));
            last_reg = b.load(std::move(gen), 4, kInvalidPc, last_reg);
        } else if (k < 75) {
            last_reg = b.alu(last_reg >= 0 ? std::vector<int>{last_reg}
                                           : std::vector<int>{},
                             alu_count(rng));
        } else if (k < 90) {
            b.store(std::make_unique<StridedGen>(base, wstride, 128),
                    last_reg);
        } else {
            b.barrier(); // block-wide: always safe
        }
    }
    if (last_reg < 0)
        last_reg = b.alu({}, 1);
    std::uniform_int_distribution<std::uint64_t> trips(2, 12);
    return b.build(trips(rng));
}

/** Random small machine: every policy pair, audit + watchdog armed. */
GpuConfig
randomConfig(std::mt19937_64& rng)
{
    static const std::vector<std::pair<const char*, const char*>> combos =
        {{"lrr", "none"},  {"gto", "none"}, {"ccws", "none"},
         {"mascar", "none"}, {"pa", "none"}, {"laws", "none"},
         {"laws", "sap"},  {"lrr", "str"},  {"gto", "sld"}};
    GpuConfig cfg;
    std::uniform_int_distribution<std::size_t> combo(0, combos.size() - 1);
    const auto& [sched, pf] = combos[combo(rng)];
    cfg.scheduler = sched;
    cfg.prefetcher = pf;
    cfg.numSms = std::uniform_int_distribution<int>(1, 4)(rng);
    const int wpsm = std::uniform_int_distribution<int>(1, 4)(rng) * 4;
    cfg.sm.warpsPerSm = wpsm;
    cfg.sm.warpsPerBlock =
        std::uniform_int_distribution<int>(0, 1)(rng) ? wpsm : wpsm / 2;
    cfg.sm.jobsPerWarp = std::uniform_int_distribution<int>(1, 2)(rng);
    cfg.sm.l1.sizeBytes = 1u << std::uniform_int_distribution<int>(12, 15)(rng);
    cfg.sm.l1.numMshrs = std::uniform_int_distribution<int>(4, 64)(rng);
    cfg.fastForward = std::uniform_int_distribution<int>(0, 3)(rng) != 0;
    // Sharding axis: serial, explicit 2/3-way sharding, or the
    // hardware default; counts above numSms clamp, so every draw is
    // legal and the parallel epoch engine fuzzes alongside serial.
    cfg.shards = std::uniform_int_distribution<int>(0, 3)(rng);
    cfg.audit = true;
    cfg.auditInterval = 2'000;
    cfg.watchdogCycles = 2'000'000;
    cfg.maxCycles = 1'500'000;
    cfg.seed = rng();
    return cfg;
}

/**
 * Per-iteration generator seed: each fuzz iteration draws from its
 * own stream, so one iteration replays exactly without re-drawing its
 * predecessors (APRES_STRESS_REPLAY below).
 */
std::uint64_t
iterationSeed(int iteration)
{
    return kStressSeed ^
           (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(iteration + 1));
}

/**
 * The full reproduction tuple of one fuzz iteration: everything the
 * draws produced, printable, so a CI failure log alone is enough to
 * re-run the exact case.
 */
std::string
describeIteration(int iteration, const GpuConfig& cfg,
                  const Kernel& kernel)
{
    std::ostringstream os;
    os << "iteration " << iteration << " (re-run just this case with"
       << " APRES_STRESS_REPLAY=" << iteration << "): iterationSeed=0x"
       << std::hex << iterationSeed(iteration) << std::dec
       << " kernel=" << kernel.name()
       << " trips=" << kernel.tripCount()
       << " config{" << cfg.scheduler << "+" << cfg.prefetcher
       << " numSms=" << cfg.numSms
       << " warpsPerSm=" << cfg.sm.warpsPerSm
       << " warpsPerBlock=" << cfg.sm.warpsPerBlock
       << " jobsPerWarp=" << cfg.sm.jobsPerWarp
       << " l1.sizeBytes=" << cfg.sm.l1.sizeBytes
       << " l1.numMshrs=" << cfg.sm.l1.numMshrs
       << " fastForward=" << (cfg.fastForward ? 1 : 0)
       << " shards=" << cfg.shards
       << " seed=" << cfg.seed << "}";
    return os.str();
}

TEST(Stress, RandomKernelsUnderAuditAndWatchdog)
{
    // APRES_STRESS_REPLAY=<index> re-runs exactly one iteration: the
    // per-iteration seeding above makes the draws independent of
    // every other iteration, so the replayed case is bit-identical to
    // the full run's (the shard count and config seed included, which
    // the fuzzer draws internally).
    int replay = -1;
    if (const char* env = std::getenv("APRES_STRESS_REPLAY"))
        replay = std::atoi(env);

    int audited_runs = 0;
    for (int i = 0; i < 40; ++i) {
        if (replay >= 0 && i != replay)
            continue;
        std::mt19937_64 rng(iterationSeed(i));
        const GpuConfig cfg = randomConfig(rng);
        const Kernel kernel = randomKernel(rng, i);
        SCOPED_TRACE(describeIteration(i, cfg, kernel));
        // Every run must terminate cleanly: completion or the cycle
        // cap. An InvariantViolation or DeadlockError here is a real
        // simulator bug surfaced by the fuzzer.
        Gpu gpu(cfg, kernel);
        const RunResult r = gpu.run();
        EXPECT_GT(r.cycles, 0u);
        if (gpu.auditPasses() > 0)
            ++audited_runs;
    }
    // The audit cadence fired on a healthy majority of runs (not
    // meaningful when replaying a single iteration).
    if (replay < 0)
        EXPECT_GT(audited_runs, 20);
}

TEST(Stress, KernelTextFuzzParsesOrThrowsTyped)
{
    // Start from a real serialized workload and inject random single
    // character corruptions plus random line shuffles/truncations.
    std::ostringstream oss;
    writeKernelText(makeWorkload("NW", 0.05).kernel, oss);
    const std::string clean = oss.str();
    ASSERT_FALSE(clean.empty());

    std::mt19937_64 rng(kStressSeed ^ 0xF00D);
    std::uniform_int_distribution<std::size_t> pos(0, clean.size() - 1);
    std::uniform_int_distribution<int> printable(32, 126);
    std::uniform_int_distribution<int> edits(1, 4);

    for (int i = 0; i < 200; ++i) {
        std::string text = clean;
        const int n = edits(rng);
        for (int e = 0; e < n; ++e) {
            if (text.empty())
                break;
            const std::size_t p = pos(rng) % text.size();
            switch (rng() % 3) {
              case 0: // overwrite
                text[p] = static_cast<char>(printable(rng));
                break;
              case 1: // delete tail
                text.erase(p);
                break;
              default: // duplicate a chunk
                text.insert(p, clean.substr(pos(rng) % clean.size(), 16));
                break;
            }
        }
        try {
            const Kernel k = parseKernelText(text);
            // Parsed: the kernel must at least be structurally sound
            // enough to describe itself.
            EXPECT_FALSE(k.name().empty());
        } catch (const SimError& e) {
            EXPECT_EQ(e.kind(), SimErrorKind::kKernel)
                << "iteration " << i << ": " << e.what();
        }
        // Anything else (segfault, std::bad_alloc, assert) fails the
        // test by crashing the binary.
    }
}

TEST(Stress, RandomConfigAssignmentsRejectedOrApplied)
{
    // Random key=value soup through the registry: either it applies
    // cleanly or throws ConfigError; structural bounds must hold.
    std::mt19937_64 rng(kStressSeed ^ 0xCAFE);
    const std::vector<std::string> keys = {
        "numSms",       "sm.warpsPerSm", "sm.warpsPerBlock",
        "l1.sizeBytes", "l1.numMshrs",   "sap.ptEntries",
        "sim.auditInterval", "sim.watchdogCycles", "no.such.key",
    };
    std::uniform_int_distribution<std::size_t> key(0, keys.size() - 1);
    std::uniform_int_distribution<int> val(-4, 1'000'000);
    for (int i = 0; i < 300; ++i) {
        GpuConfig cfg;
        ConfigRegistry reg(cfg);
        try {
            reg.set(keys[key(rng)], std::to_string(val(rng)));
            // Applied: the structural floors survived.
            EXPECT_GE(cfg.numSms, 1);
            EXPECT_GE(cfg.sm.warpsPerSm, 1);
        } catch (const SimError& e) {
            EXPECT_EQ(e.kind(), SimErrorKind::kConfig) << e.what();
        }
    }
}

} // namespace
} // namespace apres
