/**
 * @file
 * Unit tests for src/common: RNG determinism, Zipf shape, stats
 * containers and bit utilities.
 */

#include <gtest/gtest.h>

#include <cstring>

#include <limits>
#include <sstream>

#include "common/bitutils.hpp"
#include "common/csv.hpp"
#include "common/json.hpp"
#include "common/json_value.hpp"
#include "common/parse.hpp"
#include "common/rng.hpp"
#include "common/sim_error.hpp"
#include "common/stats.hpp"

namespace apres {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    const std::uint64_t first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng rng(0);
    EXPECT_NE(rng.next(), rng.next());
}

TEST(Zipf, SkewConcentratesOnLowRanks)
{
    Rng rng(11);
    ZipfSampler zipf(1000, 1.2);
    std::uint64_t head = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        head += zipf.sample(rng) < 10 ? 1 : 0;
    // With alpha=1.2 the top-10 of 1000 should absorb a large share.
    EXPECT_GT(static_cast<double>(head) / draws, 0.35);
}

TEST(Zipf, AlphaZeroIsRoughlyUniform)
{
    Rng rng(13);
    ZipfSampler zipf(100, 0.0);
    std::uint64_t head = 0;
    const int draws = 50000;
    for (int i = 0; i < draws; ++i)
        head += zipf.sample(rng) < 10 ? 1 : 0;
    const double frac = static_cast<double>(head) / draws;
    EXPECT_NEAR(frac, 0.10, 0.02);
}

TEST(RunningStat, MomentsMatchSamples)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.add(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.sum(), 9.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, ResetForgetsSamples)
{
    RunningStat s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 3); // [0,10) [10,20) [20,30) + overflow
    h.add(5.0);
    h.add(15.0);
    h.add(25.0);
    h.add(99.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.bucketFraction(0), 0.25);
}

TEST(StatSet, SetAccumulateGet)
{
    StatSet s;
    s.set("a", 1.0);
    s.accumulate("a", 2.0);
    s.accumulate("b", 5.0);
    EXPECT_DOUBLE_EQ(s.get("a"), 3.0);
    EXPECT_DOUBLE_EQ(s.get("b"), 5.0);
    EXPECT_DOUBLE_EQ(s.get("missing", -1.0), -1.0);
    EXPECT_TRUE(s.has("a"));
    EXPECT_FALSE(s.has("c"));
}

TEST(StatSet, MergeSumsOverlappingKeys)
{
    StatSet a;
    a.set("x", 1.0);
    a.set("y", 2.0);
    StatSet b;
    b.set("y", 3.0);
    b.set("z", 4.0);
    a.mergeSum(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 1.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 5.0);
    EXPECT_DOUBLE_EQ(a.get("z"), 4.0);
}

TEST(StatSet, DumpIsSorted)
{
    StatSet s;
    s.set("b", 2.0);
    s.set("a", 1.0);
    std::ostringstream oss;
    s.dump(oss);
    EXPECT_EQ(oss.str(), "a = 1\nb = 2\n");
}

TEST(BitUtils, PowerOfTwoChecks)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(128));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(96));
}

TEST(BitUtils, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(128), 7u);
    EXPECT_EQ(log2Exact(1ull << 40), 40u);
}

TEST(BitUtils, Alignment)
{
    EXPECT_EQ(alignDown(130, 128), 128u);
    EXPECT_EQ(alignDown(128, 128), 128u);
    EXPECT_EQ(alignUp(129, 128), 256u);
    EXPECT_EQ(alignUp(128, 128), 128u);
}

TEST(BitUtils, DivCeil)
{
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
    EXPECT_EQ(divCeil(1, 128), 1u);
}

TEST(Stats, RatioHandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(ratio(5.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(6.0, 2.0), 3.0);
}

TEST(Parse, StrictIntegersRejectGarbage)
{
    std::int64_t i = 0;
    EXPECT_TRUE(parseInt64Strict("-42", &i));
    EXPECT_EQ(i, -42);
    EXPECT_FALSE(parseInt64Strict("", &i));
    EXPECT_FALSE(parseInt64Strict("12abc", &i));
    EXPECT_FALSE(parseInt64Strict("12 ", &i));
    EXPECT_FALSE(parseInt64Strict("0x10", &i));
    EXPECT_FALSE(parseInt64Strict("99999999999999999999999", &i));

    std::uint64_t u = 0;
    EXPECT_TRUE(parseUint64Strict("18446744073709551615", &u));
    EXPECT_EQ(u, ~0ull);
    EXPECT_FALSE(parseUint64Strict("-1", &u));
    EXPECT_FALSE(parseUint64Strict("18446744073709551616", &u));
}

TEST(Parse, StrictDoubleRejectsGarbageAndNonFinite)
{
    double d = 0.0;
    EXPECT_TRUE(parseDoubleStrict("2.5e-3", &d));
    EXPECT_DOUBLE_EQ(d, 2.5e-3);
    EXPECT_FALSE(parseDoubleStrict("", &d));
    EXPECT_FALSE(parseDoubleStrict("1.5x", &d));
    EXPECT_FALSE(parseDoubleStrict("inf", &d));
    EXPECT_FALSE(parseDoubleStrict("nan", &d));
}

TEST(Parse, StrictBoolAcceptsCommonSpellings)
{
    bool b = false;
    EXPECT_TRUE(parseBoolStrict("true", &b));
    EXPECT_TRUE(b);
    EXPECT_TRUE(parseBoolStrict("0", &b));
    EXPECT_FALSE(b);
    EXPECT_TRUE(parseBoolStrict("on", &b));
    EXPECT_TRUE(b);
    EXPECT_FALSE(parseBoolStrict("TRUE", &b));
    EXPECT_FALSE(parseBoolStrict("2", &b));
}

TEST(Parse, OptionWrappersFatalOnBadInput)
{
    EXPECT_EQ(parseUintOption("--sms", "15"), 15u);
    EXPECT_EXIT(parseUintOption("--sms", "lots"),
                testing::ExitedWithCode(1), "--sms");
    EXPECT_EXIT(parsePositiveUintOption("--interval", "0"),
                testing::ExitedWithCode(1), "--interval");
    EXPECT_EXIT(parsePositiveDoubleOption("--scale", "-1.5"),
                testing::ExitedWithCode(1), "--scale");
    EXPECT_EXIT(parsePositiveDoubleOption("--scale", "fast"),
                testing::ExitedWithCode(1), "--scale");
}

TEST(Parse, FormatDoubleRoundTrips)
{
    for (const double v : {0.0, 1.0, -2.5, 0.1, 1.0 / 3.0, 12345.678,
                           2.2250738585072014e-308}) {
        double back = 0.0;
        ASSERT_TRUE(parseDoubleStrict(formatDouble(v), &back))
            << formatDouble(v);
        EXPECT_EQ(back, v) << formatDouble(v);
    }
}

TEST(Parse, FormatDoubleRoundTripsEdgeValues)
{
    // The shortest-round-trip contract must hold bit-exactly even at
    // the awkward corners: denormals, the extremes of the exponent
    // range, negative zero, and integers near 2^64 that a double can
    // only represent approximately.
    const double cases[] = {
        -0.0,
        std::numeric_limits<double>::denorm_min(),
        -std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::min(),
        std::numeric_limits<double>::max(),
        -std::numeric_limits<double>::max(),
        std::numeric_limits<double>::epsilon(),
        1.0 + std::numeric_limits<double>::epsilon(),
        static_cast<double>(UINT64_MAX),
        static_cast<double>(UINT64_MAX - 1024),
        9007199254740993.0, // 2^53 + 1, rounds to 2^53
        1e-323,             // deep denormal
        5e-324,             // the smallest positive double
        123456789.123456789,
        2.5e-3,
    };
    for (const double v : cases) {
        const std::string text = formatDouble(v);
        double back = 0.0;
        ASSERT_TRUE(parseDoubleStrict(text, &back)) << text;
        EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0)
            << text << " reparsed as " << formatDouble(back);
    }
}

TEST(Parse, FormatDoubleIsCanonical)
{
    // Exact integers print without an exponent or trailing ".0", and
    // the output never depends on the global locale.
    EXPECT_EQ(formatDouble(1.0), "1");
    EXPECT_EQ(formatDouble(-0.0), "-0");
    EXPECT_EQ(formatDouble(0.5), "0.5");
    EXPECT_EQ(formatDouble(1e100), "1e+100");
}

TEST(Csv, EscapesFieldsPerRfc4180)
{
    EXPECT_EQ(csvEscapeField("plain"), "plain");
    EXPECT_EQ(csvEscapeField("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscapeField("line\nbreak"), "\"line\nbreak\"");
    EXPECT_EQ(csvEscapeField(""), "");
}

TEST(Csv, WriterQuotesLabelsAndHeaders)
{
    CsvWriter csv("work,load");
    StatSet row;
    row.set("a\"quote", 1.0);
    csv.addRow("KM:a,b", row);
    std::ostringstream os;
    csv.write(os);
    EXPECT_EQ(os.str(),
              "\"work,load\",\"a\"\"quote\"\n\"KM:a,b\",1\n");
}

TEST(Json, WriterEscapesAndNests)
{
    std::ostringstream os;
    {
        JsonWriter json(os);
        json.beginObject();
        json.field("name", "a\"b\\c\n");
        json.field("count", std::uint64_t{18446744073709551615ull});
        json.field("ok", true);
        json.beginArray("runs");
        json.beginObject();
        json.field("ipc", 1.5);
        json.endObject();
        json.endArray();
        json.endObject();
    }
    const std::string text = os.str();
    EXPECT_NE(text.find("\"name\": \"a\\\"b\\\\c\\n\""), std::string::npos);
    EXPECT_NE(text.find("\"count\": 18446744073709551615"),
              std::string::npos);
    EXPECT_NE(text.find("\"ipc\": 1.5"), std::string::npos);
}

TEST(Json, NonFiniteDoublesBecomeTaggedSentinels)
{
    // null would erase the distinction between "stat was NaN" and
    // "stat was absent"; the writer emits tagged string sentinels so
    // consumers can tell (and scripts can skip them explicitly).
    std::ostringstream os;
    {
        JsonWriter json(os);
        json.beginObject();
        json.field("nan", std::numeric_limits<double>::quiet_NaN());
        json.field("inf", std::numeric_limits<double>::infinity());
        json.field("ninf", -std::numeric_limits<double>::infinity());
        json.endObject();
        json.finish();
    }
    const std::string text = os.str();
    EXPECT_NE(text.find("\"nan\": \"NaN\""), std::string::npos);
    EXPECT_NE(text.find("\"inf\": \"Infinity\""), std::string::npos);
    EXPECT_NE(text.find("\"ninf\": \"-Infinity\""), std::string::npos);
}

TEST(Json, FinishThrowsOnUnclosedScopes)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.beginArray("runs");
    try {
        json.finish();
        FAIL() << "finish() accepted a truncated document";
    } catch (const SimError& e) {
        EXPECT_EQ(e.kind(), SimErrorKind::kSerialization);
    }
    // Recover so the destructor sees a closed document.
    json.endArray();
    json.endObject();
    json.finish();
}

TEST(Json, EndWithoutBeginThrows)
{
    std::ostringstream os;
    JsonWriter json(os);
    EXPECT_THROW(json.endObject(), SimError);
    EXPECT_THROW(json.endArray(), SimError);
}

TEST(Json, RawSplicesVerbatim)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.raw("result", "{\"ipc\": 1.5}");
    json.endObject();
    json.finish();
    EXPECT_NE(os.str().find("\"result\": {\"ipc\": 1.5}"),
              std::string::npos);
}

TEST(JsonValue, ParsesScalarsAndContainers)
{
    const JsonValue doc = JsonValue::parse(
        "{\"b\": true, \"n\": null, \"x\": -2.5e3,"
        " \"s\": \"a\\\"b\\\\c\\n\\u0041\","
        " \"arr\": [1, 2, 3], \"nested\": {\"k\": \"v\"}}");
    ASSERT_TRUE(doc.isObject());
    EXPECT_TRUE(doc.at("b").asBool());
    EXPECT_TRUE(doc.at("n").isNull());
    EXPECT_DOUBLE_EQ(doc.at("x").asDouble(), -2500.0);
    EXPECT_EQ(doc.at("s").asString(), "a\"b\\c\nA");
    ASSERT_EQ(doc.at("arr").size(), 3u);
    EXPECT_DOUBLE_EQ(doc.at("arr").at(1).asDouble(), 2.0);
    EXPECT_EQ(doc.at("nested").at("k").asString(), "v");
    EXPECT_TRUE(doc.has("b"));
    EXPECT_FALSE(doc.has("zzz"));
    EXPECT_EQ(doc.find("zzz"), nullptr);
}

TEST(JsonValue, Uint64SurvivesViaLexeme)
{
    // 2^64-1 is not representable as a double; the exact value must
    // round-trip through the preserved source lexeme.
    const JsonValue doc =
        JsonValue::parse("{\"seed\": 18446744073709551615}");
    EXPECT_EQ(doc.at("seed").asUint64(), ~0ull);
    EXPECT_EQ(doc.at("seed").numberLexeme(), "18446744073709551615");
}

TEST(JsonValue, WriterOutputReparses)
{
    std::ostringstream os;
    {
        JsonWriter json(os);
        json.beginObject();
        json.field("name", "a\"b\\c\n");
        json.field("count", std::uint64_t{18446744073709551615ull});
        json.beginArray("runs");
        json.beginObject();
        json.field("ipc", 1.5);
        json.endObject();
        json.endArray();
        json.endObject();
        json.finish();
    }
    const JsonValue doc = JsonValue::parse(os.str());
    EXPECT_EQ(doc.at("name").asString(), "a\"b\\c\n");
    EXPECT_EQ(doc.at("count").asUint64(), ~0ull);
    EXPECT_DOUBLE_EQ(doc.at("runs").at(0).at("ipc").asDouble(), 1.5);
}

TEST(JsonValue, RejectsMalformedDocuments)
{
    const char* bad[] = {
        "",
        "{",
        "{\"a\": }",
        "{\"a\": 1,}",       // trailing comma
        "[1 2]",
        "{'a': 1}",          // unquoted/single-quoted keys
        "{\"a\": 1} extra",  // trailing garbage
        "{\"a\": 01}",       // leading zero
        "\"unterminated",
        "{\"a\": tru}",
    };
    for (const char* text : bad) {
        try {
            JsonValue::parse(text);
            FAIL() << "accepted: " << text;
        } catch (const SimError& e) {
            EXPECT_EQ(e.kind(), SimErrorKind::kSerialization) << text;
            // Every parse error carries a byte offset.
            EXPECT_NE(std::string(e.detail()).find("at byte"),
                      std::string::npos)
                << text << " -> " << e.detail();
        }
    }
}

TEST(JsonValue, TypeMismatchesThrow)
{
    const JsonValue doc = JsonValue::parse("{\"x\": 1.5}");
    EXPECT_THROW(doc.at("x").asString(), SimError);
    EXPECT_THROW(doc.at("x").asBool(), SimError);
    EXPECT_THROW(doc.at("missing"), SimError);
    EXPECT_THROW(doc.at("x").asUint64(), SimError); // 1.5 is not a uint
    EXPECT_THROW(doc.at(std::size_t{0}), SimError); // not an array
}

} // namespace
} // namespace apres
